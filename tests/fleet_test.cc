/**
 * @file
 * Tests for the fleet compilation service: content-addressed cache
 * hit/miss/eviction, shard routing stability, miss coalescing, the
 * lockstep cluster, and the acceptance properties of the full fleet
 * simulation (dedup across servers, byte-identical double runs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace protean {
namespace fleet {
namespace {

/** Fleet state is observed through the global registry/tracer, so
 *  every test starts clean. */
class FleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::metrics().reset();
        obs::tracer().clear();
    }

    void
    TearDown() override
    {
        obs::tracer().clear();
        obs::metrics().reset();
    }
};

runtime::CompileJob
job(uint64_t key, uint64_t cost = 1000, uint64_t bytes = 256)
{
    runtime::CompileJob j;
    j.contentKey = key;
    j.func = 0;
    j.costCycles = cost;
    j.codeBytes = bytes;
    j.name = "f";
    return j;
}

ServiceConfig
oneShard(size_t capacity = 4)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    cfg.shardCapacity = capacity;
    return cfg;
}

TEST_F(FleetTest, MissThenHit)
{
    CompileService svc(oneShard());
    runtime::CompileOutcome first, second;
    svc.submit(0, job(7), 100,
               [&](const runtime::CompileOutcome &o) { first = o; });
    svc.advance(50000);
    EXPECT_FALSE(first.remoteHit);
    EXPECT_GT(first.readyCycle, first.startCycle);
    EXPECT_EQ(svc.stats().misses, 1u);
    EXPECT_EQ(svc.stats().compiles, 1u);

    // Same content key from another server, long after the compile
    // finished: a cache hit, served without any compile cycles.
    svc.submit(1, job(7), 60000,
               [&](const runtime::CompileOutcome &o) { second = o; });
    svc.advance(120000);
    EXPECT_TRUE(second.remoteHit);
    EXPECT_EQ(svc.stats().hits, 1u);
    EXPECT_EQ(svc.stats().compiles, 1u);
    EXPECT_DOUBLE_EQ(svc.hitRate(), 0.5);
}

TEST_F(FleetTest, HitResponseChargesNetworkNotCompile)
{
    ServiceConfig cfg = oneShard();
    CompileService svc(cfg);
    svc.submit(0, job(9, 100000, 512), 0,
               [](const runtime::CompileOutcome &) {});
    svc.advance(200000);

    runtime::CompileOutcome hit;
    svc.submit(1, job(9, 100000, 512), 300000,
               [&](const runtime::CompileOutcome &o) { hit = o; });
    svc.advance(400000);
    ASSERT_TRUE(hit.remoteHit);
    // Ready = batch close + lookup + response latency + transfer;
    // nowhere near the 100k compile cost.
    uint64_t close = 300000 + cfg.batchWindowCycles;
    EXPECT_EQ(hit.readyCycle,
              close + cfg.lookupCycles +
                  cfg.net.responseLatencyCycles +
                  cfg.net.transferCycles(512));
}

TEST_F(FleetTest, LruEviction)
{
    // Capacity 2: A, B cached; touching A makes B the LRU victim
    // when C installs, so B misses again while A still hits.
    CompileService svc(oneShard(2));
    uint64_t t = 0;
    auto compileAt = [&](uint64_t key) {
        svc.submit(0, job(key), t, [](const runtime::CompileOutcome &) {});
        t += 50000;
        svc.advance(t);
    };
    compileAt(1); // A
    compileAt(2); // B
    compileAt(1); // touch A (hit)
    compileAt(3); // C -> evicts B
    EXPECT_EQ(svc.stats().evictions, 1u);

    runtime::CompileOutcome a, b;
    svc.submit(0, job(1), t,
               [&](const runtime::CompileOutcome &o) { a = o; });
    t += 50000;
    svc.advance(t);
    svc.submit(0, job(2), t,
               [&](const runtime::CompileOutcome &o) { b = o; });
    t += 50000;
    svc.advance(t);
    EXPECT_TRUE(a.remoteHit);
    EXPECT_FALSE(b.remoteHit);
}

TEST_F(FleetTest, ShardRoutingStableAndSpread)
{
    ServiceConfig cfg;
    cfg.numShards = 4;
    CompileService a(cfg), b(cfg);
    std::set<uint32_t> used;
    for (uint64_t key = 1; key <= 256; ++key) {
        uint32_t s = a.shardOf(key);
        // Same key -> same shard, on any service instance.
        EXPECT_EQ(s, b.shardOf(key));
        EXPECT_LT(s, cfg.numShards);
        used.insert(s);
    }
    EXPECT_EQ(used.size(), 4u);
}

TEST_F(FleetTest, ConcurrentMissesCoalesce)
{
    // Two servers request the same key within one batch window:
    // one compile, the second rides it. A third arrives while the
    // compile is still in flight (after the window) and coalesces
    // across batches too.
    CompileService svc(oneShard());
    runtime::CompileOutcome o1, o2, o3;
    svc.submit(0, job(5, 100000), 1000,
               [&](const runtime::CompileOutcome &o) { o1 = o; });
    svc.submit(1, job(5, 100000), 1100,
               [&](const runtime::CompileOutcome &o) { o2 = o; });
    svc.submit(2, job(5, 100000), 5000,
               [&](const runtime::CompileOutcome &o) { o3 = o; });
    svc.advance(500000);
    EXPECT_EQ(svc.stats().compiles, 1u);
    EXPECT_EQ(svc.stats().misses, 1u);
    EXPECT_EQ(svc.stats().coalesced, 2u);
    EXPECT_FALSE(o1.remoteHit);
    EXPECT_TRUE(o2.remoteHit);
    EXPECT_TRUE(o3.remoteHit);
    // Coalesced responses cannot be ready before the one compile is.
    uint64_t done = o1.readyCycle -
        svc.config().net.responseLatencyCycles -
        svc.config().net.transferCycles(256);
    EXPECT_GE(o2.readyCycle, done);
    EXPECT_GE(o3.readyCycle, done);
}

TEST_F(FleetTest, RequestsProcessedInArrivalOrder)
{
    // Submission order differs from arrival order; stats and
    // outcomes must follow arrival order (the late submit with the
    // early arrival is the miss that compiles).
    CompileService svc(oneShard());
    runtime::CompileOutcome late, early;
    svc.submit(0, job(11), 9000,
               [&](const runtime::CompileOutcome &o) { late = o; });
    svc.submit(1, job(11), 1000,
               [&](const runtime::CompileOutcome &o) { early = o; });
    svc.advance(300000);
    EXPECT_FALSE(early.remoteHit);
    EXPECT_TRUE(late.remoteHit);
}

TEST_F(FleetTest, ClusterQuantumCapsAtRoundTrip)
{
    ServiceConfig cfg;
    cfg.net.requestLatencyCycles = 300;
    cfg.net.responseLatencyCycles = 200;
    CompileService svc(cfg);
    Cluster cluster(svc);
    EXPECT_EQ(cluster.quantum(), 500u);
    sim::Machine m;
    cluster.addMachine(m);
    cluster.runFor(1234);
    EXPECT_EQ(cluster.now(), 1234u);
    EXPECT_EQ(m.now(), 1234u);
}

TEST_F(FleetTest, FleetDedupAcrossServers)
{
    FleetConfig cfg;
    cfg.numServers = 4;
    cfg.meanRequestMs = 2.0;
    FleetConfig local = cfg;
    local.remoteBackend = false;

    FleetStats remote_st;
    {
        FleetSim sim(cfg);
        sim.run(80.0);
        remote_st = sim.stats();
    }
    obs::metrics().reset();
    FleetStats local_st;
    {
        FleetSim sim(local);
        sim.run(80.0);
        local_st = sim.stats();
    }

    // Both fleets materialize variants; the shared service compiles
    // each unique key once while the local fleet pays per server.
    ASSERT_GT(remote_st.serverCompiles, 0u);
    EXPECT_GT(remote_st.remoteHits, 0u);
    EXPECT_GT(remote_st.dedupFactor(), 2.0);
    EXPECT_DOUBLE_EQ(local_st.dedupFactor(), 1.0);
    EXPECT_LT(remote_st.totalCompileCycles() * 2,
              local_st.totalCompileCycles());
    EXPECT_EQ(remote_st.service.compiles +
                  remote_st.service.hits +
                  remote_st.service.coalesced,
              remote_st.service.requests);
}

TEST_F(FleetTest, DoubleRunExportsAreByteIdentical)
{
    auto runOnce = [](const std::string &mpath,
                      const std::string &tpath) {
        obs::metrics().reset();
        obs::tracer().clear();
        obs::tracer().setEnabled(true);
        FleetConfig cfg;
        cfg.numServers = 3;
        cfg.meanRequestMs = 2.0;
        FleetSim sim(cfg);
        sim.run(40.0);
        sim.exportObsMetrics();
        obs::metrics().writeJson(mpath);
        obs::tracer().writeChromeJson(tpath);
        obs::tracer().setEnabled(false);
    };
    std::string m1 = testing::TempDir() + "fleet_m1.json";
    std::string m2 = testing::TempDir() + "fleet_m2.json";
    std::string t1 = testing::TempDir() + "fleet_t1.json";
    std::string t2 = testing::TempDir() + "fleet_t2.json";
    runOnce(m1, t1);
    runOnce(m2, t2);

    auto slurp = [](const std::string &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string metrics1 = slurp(m1);
    EXPECT_FALSE(metrics1.empty());
    EXPECT_EQ(metrics1, slurp(m2));
    std::string trace1 = slurp(t1);
    EXPECT_FALSE(trace1.empty());
    EXPECT_EQ(trace1, slurp(t2));
    // The export carries the service's cache behavior.
    EXPECT_NE(metrics1.find("fleet.service.hits"), std::string::npos);
    EXPECT_NE(metrics1.find("fleet.service.coalesced"),
              std::string::npos);
    std::remove(m1.c_str());
    std::remove(m2.c_str());
    std::remove(t1.c_str());
    std::remove(t2.c_str());
}

TEST_F(FleetTest, CatalogAndConfigValidation)
{
    FleetConfig cfg;
    cfg.numServers = 2;
    FleetSim sim(cfg);
    EXPECT_GT(sim.catalogSize(), 0u);
    EXPECT_EQ(sim.cluster().numMachines(), 2u);

    FleetConfig bad;
    bad.numServers = 0;
    EXPECT_DEATH({ FleetSim s(bad); }, "numServers");
}

} // namespace
} // namespace fleet
} // namespace protean
