/**
 * @file
 * Tests for the protean runtime: attach/discovery, EVT management,
 * the dynamic compiler (caching, latency, dispatch), monitoring
 * (PC sampling, HPM windows, phase detection), the nap governor and
 * flux QoS monitor, and the stress engine.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "pcc/pcc.h"
#include "runtime/runtime.h"
#include "runtime/stress.h"
#include "workloads/registry.h"

namespace protean {
namespace runtime {
namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Reg;

/** Host program: main loops forever calling hot(), which walks an
 *  array with two loads per iteration; result accumulates into a
 *  global so behaviour is observable. */
ir::Module
makeHostModule()
{
    ir::Module m("host");
    ir::GlobalId arr = m.addGlobal("arr", 1 << 16);
    ir::GlobalId out = m.addGlobal("out", 8);
    IRBuilder b(m);

    b.startFunction("hot", 0);
    Reg base = b.globalAddr(arr);
    Reg obase = b.globalAddr(out);
    Reg one = b.constInt(1);
    Reg n = b.constInt(64);
    Reg mask = b.constInt((1 << 16) - 64);
    Reg i = b.constInt(0);
    Reg cur = b.constInt(0);
    Reg sum = b.constInt(0);
    Reg tmp = b.func().newReg();
    Reg x = b.func().newReg();
    b.func().noteReg(tmp);
    b.func().noteReg(x);
    BlockId loop = b.newBlock();
    BlockId done = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(tmp, ir::Opcode::And, cur, mask);
    b.binaryInto(tmp, ir::Opcode::Add, tmp, base);
    b.loadInto(x, tmp, 0);
    b.binaryInto(sum, ir::Opcode::Add, sum, x);
    b.loadInto(x, tmp, 64);
    b.binaryInto(sum, ir::Opcode::Add, sum, x);
    Reg stride = b.constInt(128);
    b.binaryInto(cur, ir::Opcode::Add, cur, stride);
    b.binaryInto(i, ir::Opcode::Add, i, one);
    Reg c = b.cmpLt(i, n);
    b.condBr(c, loop, done);
    b.setBlock(done);
    b.store(obase, sum);
    b.ret();

    b.startFunction("main", 0);
    BlockId loop2 = b.newBlock();
    b.br(loop2);
    b.setBlock(loop2);
    b.callVoid(0);
    b.br(loop2);
    return m;
}

struct HostRig
{
    sim::Machine machine;
    ir::Module module;
    isa::Image image;
    sim::Process *proc;

    HostRig()
        : module(makeHostModule()), image(pcc::compile(module)),
          proc(&machine.load(image, 0))
    {
    }
};

TEST(Attach, DiscoversMetadata)
{
    HostRig rig;
    Attachment att = attach(*rig.proc);
    EXPECT_EQ(att.evtBase, rig.image.evtBase);
    EXPECT_EQ(att.evtCount, rig.image.evtCount);
    ASSERT_TRUE(att.hasIr());
    EXPECT_EQ(ir::toString(*att.module), ir::toString(rig.module));
    // hot is virtualized (multi-block); slot mapping recovered.
    ir::FuncId hot = rig.module.findFunction("hot")->id();
    EXPECT_EQ(att.slots.count(hot), 1u);
}

TEST(Attach, NonProteanIsFatal)
{
    ir::Module m = makeHostModule();
    isa::Image plain = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(plain, 0);
    EXPECT_DEATH({ attach(proc); }, "not a protean binary");
}

TEST(EvtManager, RetargetAndRevert)
{
    HostRig rig;
    Attachment att = attach(*rig.proc);
    EvtManager evt(*rig.proc, att.evtBase, att.slots);
    ir::FuncId hot = rig.module.findFunction("hot")->id();
    isa::CodeAddr original = rig.image.function(hot).entry;

    ASSERT_TRUE(evt.virtualized(hot));
    EXPECT_EQ(evt.target(hot), original);
    evt.retarget(hot, 12345);
    EXPECT_EQ(evt.target(hot), 12345u);
    evt.revertAll();
    EXPECT_EQ(evt.target(hot), original);
    EXPECT_EQ(evt.retargetCount(), 1 + att.slots.size());
}

TEST(RuntimeCompiler, CompilesAndCaches)
{
    HostRig rig;
    Attachment att = attach(*rig.proc);
    RuntimeCompiler rc(rig.machine, *rig.proc, *att.module,
                       att.slots, 1);
    ir::FuncId hot = att.module->findFunction("hot")->id();
    BitVector mask(att.module->numLoads(), true);

    isa::CodeAddr got = isa::kInvalidCodeAddr;
    rc.requestVariant(hot, mask,
                      [&](isa::CodeAddr e) { got = e; });
    EXPECT_EQ(got, isa::kInvalidCodeAddr); // not ready yet
    rig.machine.runFor(rig.machine.msToCycles(50));
    ASSERT_NE(got, isa::kInvalidCodeAddr);
    EXPECT_GE(got, rig.image.code.size()); // appended to code cache
    EXPECT_EQ(rc.compileCount(), 1u);

    // Identical request hits the cache: no new compile.
    isa::CodeAddr again = isa::kInvalidCodeAddr;
    rc.requestVariant(hot, mask,
                      [&](isa::CodeAddr e) { again = e; });
    rig.machine.runFor(1000);
    EXPECT_EQ(again, got);
    EXPECT_EQ(rc.compileCount(), 1u);
}

TEST(RuntimeCompiler, MaskKeyRestrictsToFunction)
{
    HostRig rig;
    Attachment att = attach(*rig.proc);
    RuntimeCompiler rc(rig.machine, *rig.proc, *att.module,
                       att.slots, 1);
    ir::FuncId hot = att.module->findFunction("hot")->id();
    // Masks differing only outside hot's loads share a key.
    BitVector a(att.module->numLoads());
    BitVector c(att.module->numLoads());
    EXPECT_EQ(rc.maskKey(hot, a), rc.maskKey(hot, c));
    a.set(0);
    EXPECT_NE(rc.maskKey(hot, a), rc.maskKey(hot, c));
}

TEST(RuntimeCompiler, CompileChargedToRuntimeCore)
{
    HostRig rig;
    Attachment att = attach(*rig.proc);
    RuntimeCompiler rc(rig.machine, *rig.proc, *att.module,
                       att.slots, 2);
    ir::FuncId hot = att.module->findFunction("hot")->id();
    BitVector mask(att.module->numLoads(), true);
    rc.requestVariant(hot, mask, [](isa::CodeAddr) {});
    rig.machine.runFor(rig.machine.msToCycles(50));
    EXPECT_EQ(rig.machine.core(2).hpm().stolenCycles,
              rc.compileCycles());
    EXPECT_GT(rc.compileCycles(), 0u);
}

TEST(ProteanRuntime, DeployVariantSwitchesExecution)
{
    HostRig rig;
    RuntimeOptions opts;
    opts.runtimeCore = 1;
    ProteanRuntime rt(rig.machine, *rig.proc, opts);
    rt.start();
    rig.machine.runFor(rig.machine.msToCycles(20));

    uint64_t hints_before = rig.machine.core(0).hpm().hints;
    EXPECT_EQ(hints_before, 0u);

    ir::FuncId hot = rt.module().findFunction("hot")->id();
    BitVector mask(rt.module().numLoads(), true);
    bool dispatched = false;
    rt.deployVariant(hot, mask, [&] { dispatched = true; });
    rig.machine.runFor(rig.machine.msToCycles(100));
    EXPECT_TRUE(dispatched);
    // The host now executes hint instructions: the variant is live.
    EXPECT_GT(rig.machine.core(0).hpm().hints, 0u);

    // Revert: hint rate drops back to zero.
    rt.revertAll();
    uint64_t hints_at_revert = rig.machine.core(0).hpm().hints;
    rig.machine.runFor(rig.machine.msToCycles(50));
    uint64_t tail = rig.machine.core(0).hpm().hints -
        hints_at_revert;
    // Allow the in-flight call to finish its current invocation.
    EXPECT_LT(tail, 200u);
}

TEST(ProteanRuntime, VariantPreservesSemantics)
{
    // Run plain to completion-equivalent window, compare the global
    // accumulator progression with the all-NT variant active.
    HostRig plain_rig;
    plain_rig.machine.runFor(plain_rig.machine.msToCycles(150));
    uint64_t out_addr = plain_rig.image.layout.base(1);
    uint64_t plain_out = plain_rig.proc->readWord(out_addr);
    // All loads read zero-initialized memory, so out == 0; the real
    // check is that the variant's accumulator matches.
    HostRig rig;
    RuntimeOptions opts;
    opts.runtimeCore = 1;
    ProteanRuntime rt(rig.machine, *rig.proc, opts);
    rt.start();
    ir::FuncId hot = rt.module().findFunction("hot")->id();
    BitVector mask(rt.module().numLoads(), true);
    rt.deployVariant(hot, mask);
    rig.machine.runFor(rig.machine.msToCycles(150));
    EXPECT_EQ(rig.proc->readWord(out_addr), plain_out);
}

TEST(ProteanRuntime, RuntimeCycleShareSmall)
{
    HostRig rig;
    RuntimeOptions opts;
    opts.runtimeCore = 1;
    ProteanRuntime rt(rig.machine, *rig.proc, opts);
    rt.start();
    rig.machine.runFor(rig.machine.msToCycles(500));
    EXPECT_GT(rt.ticks(), 50u);
    EXPECT_LT(rt.serverCycleShare(), 0.01);
}

TEST(PcSampler, FindsHotFunction)
{
    HostRig rig;
    PcSampler sampler(rig.machine, *rig.proc, 0);
    for (int i = 0; i < 100; ++i) {
        rig.machine.runFor(5000);
        sampler.sample();
    }
    auto hot = sampler.hotFunctions();
    ASSERT_FALSE(hot.empty());
    ir::FuncId hot_id = rig.module.findFunction("hot")->id();
    EXPECT_EQ(hot.front(), hot_id);
    EXPECT_EQ(sampler.totalSamples(), 100u);
}

TEST(PcSampler, VariantRangesAttributeToOriginal)
{
    HostRig rig;
    PcSampler sampler(rig.machine, *rig.proc, 0);
    isa::CodeAddr end = rig.proc->codeSize();
    sampler.registerVariantRange(end + 100, end + 200, 7);
    // No direct way to set the PC; exercise attribution through the
    // public sample() path by checking it tolerates unknown PCs and
    // the hot map stays consistent.
    sampler.sample();
    EXPECT_LE(sampler.hotness().size(), 1u);
}

TEST(PcSampler, DecayReducesWeights)
{
    HostRig rig;
    PcSampler sampler(rig.machine, *rig.proc, 0);
    rig.machine.runFor(10000);
    sampler.sample();
    double before = 0;
    for (auto &[f, w] : sampler.hotness())
        before += w;
    sampler.decay(0.5);
    double after = 0;
    for (auto &[f, w] : sampler.hotness())
        after += w;
    EXPECT_NEAR(after, before * 0.5, 1e-9);
}

TEST(PcSampler, HotFunctionsCumulativeFractionCutoff)
{
    HostRig rig;
    PcSampler s(rig.machine, *rig.proc, 0);
    // Synthetic distribution: 70% / 20% / 10%.
    s.addWeight(3, 70.0);
    s.addWeight(1, 20.0);
    s.addWeight(2, 10.0);
    // The top function alone covers 50%.
    EXPECT_EQ(s.hotFunctions(0.5), (std::vector<ir::FuncId>{3}));
    // 80% needs the top two (70 + 20).
    EXPECT_EQ(s.hotFunctions(0.8), (std::vector<ir::FuncId>{3, 1}));
    // 95% needs all three.
    EXPECT_EQ(s.hotFunctions(0.95),
              (std::vector<ir::FuncId>{3, 1, 2}));
}

TEST(PcSampler, HotFunctionsTieBreakByFuncId)
{
    HostRig rig;
    PcSampler s(rig.machine, *rig.proc, 0);
    s.addWeight(5, 1.0);
    s.addWeight(2, 1.0);
    EXPECT_EQ(s.hotFunctions(1.0), (std::vector<ir::FuncId>{2, 5}));
}

TEST(PcSampler, ZeroWeightFunctionsNeverAppear)
{
    // Fully decayed weights are the "uncovered code" PC3D prunes:
    // they must not show up however generous the fraction.
    HostRig rig;
    PcSampler s(rig.machine, *rig.proc, 0);
    s.addWeight(1, 4.0);
    s.addWeight(2, 1.0);
    s.decay(0.0);
    EXPECT_TRUE(s.hotFunctions(1.0).empty());
}

TEST(HpmMonitor, WindowsAreDeltas)
{
    HostRig rig;
    HpmMonitor mon(rig.machine);
    rig.machine.runFor(50'000);
    sim::HpmCounters w1 = mon.window(0);
    EXPECT_GT(w1.instructions, 0u);
    sim::HpmCounters none = mon.window(0);
    EXPECT_EQ(none.instructions, 0u);
    rig.machine.runFor(50'000);
    sim::HpmCounters w2 = mon.window(0);
    EXPECT_GT(w2.instructions, 0u);
    // Peek does not consume.
    rig.machine.runFor(10'000);
    sim::HpmCounters p = mon.peek(0);
    EXPECT_EQ(mon.window(0).instructions, p.instructions);
}

TEST(PhaseDetector, DetectsRateShift)
{
    PhaseDetector det(0.3);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(det.update(1.0));
    // 50% drop: a phase change.
    bool changed = false;
    for (int i = 0; i < 10; ++i)
        changed |= det.update(0.5);
    EXPECT_TRUE(changed);
}

TEST(PhaseDetector, IgnoresSmallDrift)
{
    PhaseDetector det(0.3);
    det.update(1.0);
    bool changed = false;
    for (int i = 0; i < 20; ++i)
        changed |= det.update(1.0 + 0.05 * ((i % 2) ? 1 : -1));
    EXPECT_FALSE(changed);
}

TEST(PhaseDetector, DetectsHotSetTurnover)
{
    PhaseDetector det(0.5);
    det.update(1.0, {1, 2});
    EXPECT_FALSE(det.update(1.0, {1, 2}));
    EXPECT_TRUE(det.update(1.0, {3, 4}));
}

TEST(PhaseDetector, FirstUpdatePrimesWithoutReporting)
{
    // The first window anchors the EWMA; however extreme, it can
    // never be a "change" (there is nothing to change from).
    PhaseDetector det(0.1, 1.0, 2);
    EXPECT_FALSE(det.update(100.0, {1, 2, 3}));
    EXPECT_DOUBLE_EQ(det.anchorIpc(), 100.0);
    EXPECT_FALSE(det.update(100.0, {1, 2, 3}));
}

TEST(PhaseDetector, CooldownSuppressesAndAnchorTracks)
{
    // alpha = 1 disables smoothing so the arithmetic is exact.
    PhaseDetector det(0.3, 1.0, 3);
    det.update(1.0);
    EXPECT_TRUE(det.update(2.0)); // 100% shift -> change, quiet=3
    // During cooldown even large shifts stay quiet while the anchor
    // tracks the signal.
    EXPECT_FALSE(det.update(8.0));
    EXPECT_DOUBLE_EQ(det.anchorIpc(), 8.0);
    EXPECT_FALSE(det.update(1.0));
    EXPECT_FALSE(det.update(4.0));
    // Re-armed: 4.0 -> 8.0 is a 100% shift again.
    EXPECT_TRUE(det.update(8.0));
}

TEST(PhaseDetector, EwmaRidesOutSingleWindowSpike)
{
    PhaseDetector det(0.3, 0.1, 2);
    for (int i = 0; i < 10; ++i)
        det.update(1.0);
    // One extreme window moves the EWMA by only alpha: 10% < 30%.
    EXPECT_FALSE(det.update(2.0));
}

TEST(NapGovernor, ProbeOverridesController)
{
    sim::Machine machine;
    NapGovernor gov(machine, 0);
    gov.setControllerNap(0.3);
    EXPECT_DOUBLE_EQ(machine.core(0).napIntensity(), 0.3);
    gov.setProbeActive(true);
    EXPECT_DOUBLE_EQ(machine.core(0).napIntensity(), 1.0);
    gov.setProbeActive(false);
    EXPECT_DOUBLE_EQ(machine.core(0).napIntensity(), 0.3);
}

TEST(NapGovernor, ClampsRange)
{
    sim::Machine machine;
    NapGovernor gov(machine, 0);
    gov.setControllerNap(7.0);
    EXPECT_DOUBLE_EQ(gov.controllerNap(), 1.0);
    gov.setControllerNap(-2.0);
    EXPECT_DOUBLE_EQ(gov.controllerNap(), 0.0);
}

TEST(QosMonitor, ProbesPrimeSoloReference)
{
    // Host on core 0 (throttled), co-runner on core 1.
    HostRig rig;
    ir::Module co_m = makeHostModule();
    isa::Image co_img = pcc::compilePlain(co_m);
    rig.machine.load(co_img, 1);

    NapGovernor gov(rig.machine, 0);
    QosOptions qopts;
    qopts.probePeriodMs = 100.0;
    qopts.probeLenMs = 10.0;
    qopts.initialDelayMs = 10.0;
    qopts.primingPeriodMs = 100.0;
    QosMonitor qos(rig.machine, gov, {1}, qopts);
    EXPECT_EQ(qos.soloIps(1), 0.0);
    qos.start();
    rig.machine.runFor(rig.machine.msToCycles(250));
    EXPECT_GT(qos.soloIps(1), 0.0);
    EXPECT_GE(qos.probeCount(), 2u);
    // During the probe the host core naps fully; afterwards it is
    // restored.
    EXPECT_DOUBLE_EQ(rig.machine.core(0).napIntensity(), 0.0);
}

TEST(QosMonitor, QosNearOneWithoutContention)
{
    // Co-runner alone (host halts immediately): QoS should be ~1.
    ir::Module trivial("t");
    {
        IRBuilder b(trivial);
        b.startFunction("main", 0);
        b.ret();
    }
    isa::Image t_img = pcc::compilePlain(trivial);
    sim::Machine machine;
    machine.load(t_img, 0);
    ir::Module co_m = makeHostModule();
    isa::Image co_img = pcc::compilePlain(co_m);
    machine.load(co_img, 1);

    NapGovernor gov(machine, 0);
    QosOptions qopts;
    qopts.probePeriodMs = 50.0;
    qopts.probeLenMs = 5.0;
    QosMonitor qos(machine, gov, {1}, qopts);
    qos.start();
    machine.runFor(machine.msToCycles(200));
    qos.clearTaint();
    qos.minQosWindow();
    machine.runFor(machine.msToCycles(40));
    double q = qos.minQosWindow();
    EXPECT_GT(q, 0.9);
    EXPECT_LT(q, 1.2);
}

TEST(QosMonitor, TaintedWhileProbeActive)
{
    HostRig rig;
    ir::Module co_m = makeHostModule();
    isa::Image co_img = pcc::compilePlain(co_m);
    rig.machine.load(co_img, 1);
    NapGovernor gov(rig.machine, 0);
    QosOptions qopts;
    qopts.initialDelayMs = 1.0;
    QosMonitor qos(rig.machine, gov, {1}, qopts);
    qos.start();
    rig.machine.runFor(rig.machine.msToCycles(2.0));
    // Probe in flight now.
    EXPECT_TRUE(qos.windowTainted());
    qos.clearTaint();
    // Probe still in flight: stays tainted.
    EXPECT_TRUE(qos.windowTainted());
}

TEST(StressEngine, RecompilesPeriodically)
{
    HostRig rig;
    RuntimeOptions opts;
    opts.runtimeCore = 1;
    ProteanRuntime rt(rig.machine, *rig.proc, opts);
    StressEngine engine(20.0, 7); // every 20 ms
    rt.setEngine(&engine);
    rt.start();
    rig.machine.runFor(rig.machine.msToCycles(500));
    EXPECT_GE(engine.recompiles(), 20u);
    EXPECT_GT(rt.compiler().compileCount(), 0u);
    // Host still makes progress.
    EXPECT_GT(rig.machine.core(0).hpm().instructions, 100'000u);
}

TEST(StressEngine, OverheadNegligibleOnSeparateCore)
{
    auto host_instrs = [&](bool stress) {
        HostRig rig;
        RuntimeOptions opts;
        opts.runtimeCore = 1;
        ProteanRuntime rt(rig.machine, *rig.proc, opts);
        StressEngine engine(5.0, 7);
        if (stress)
            rt.setEngine(&engine);
        rt.start();
        rig.machine.runFor(rig.machine.msToCycles(400));
        return rig.machine.core(0).hpm().instructions;
    };
    uint64_t idle = host_instrs(false);
    uint64_t stressed = host_instrs(true);
    EXPECT_GT(static_cast<double>(stressed),
              0.97 * static_cast<double>(idle));
}

} // namespace
} // namespace runtime
} // namespace protean
