/**
 * @file
 * Tests for the scale-out analysis (Figures 17-18 models).
 */

#include <gtest/gtest.h>

#include "datacenter/scaleout.h"

namespace protean {
namespace datacenter {
namespace {

TEST(ScaleOut, ServerCountFollowsUtilization)
{
    ScaleOutResult low = analyzeMix("web-search", "WL", {0.3, 0.3});
    ScaleOutResult high = analyzeMix("web-search", "WL", {0.9, 0.9});
    EXPECT_EQ(low.pc3dServers, 10000u);
    EXPECT_EQ(low.noColoServers, 13000u);
    EXPECT_EQ(high.noColoServers, 19000u);
    EXPECT_GT(high.noColoServers, low.noColoServers);
}

TEST(ScaleOut, PaperRangeForTypicalUtilizations)
{
    // Paper: 3.5k - 8k extra servers for utilizations in the
    // observed range.
    ScaleOutResult r = analyzeMix("s", "m", {0.35, 0.55, 0.8});
    uint32_t extra = r.noColoServers - r.pc3dServers;
    EXPECT_GE(extra, 3000u);
    EXPECT_LE(extra, 8000u);
}

TEST(ScaleOut, EnergyEfficiencyAboveOne)
{
    // Consolidation always wins under the linear power model with
    // nonzero idle power.
    for (double u : {0.2, 0.5, 0.8, 1.0}) {
        ScaleOutResult r = analyzeMix("s", "m", {u});
        EXPECT_GT(r.energyEfficiencyRatio, 1.0) << u;
        EXPECT_LT(r.energyEfficiencyRatio, 2.0) << u;
    }
}

TEST(ScaleOut, PaperEnergyRange)
{
    // The paper reports 18-34% efficiency gains; our linear model
    // lands in the same band, running slightly higher at very high
    // batch utilizations (idle power dominates the no-co-location
    // cluster).
    ScaleOutResult r = analyzeMix("s", "m", {0.5, 0.6, 0.7, 0.8});
    EXPECT_GT(r.energyEfficiencyRatio, 1.10);
    EXPECT_LT(r.energyEfficiencyRatio, 1.60);
}

TEST(ScaleOut, ZeroIdlePowerRemovesConsolidationWin)
{
    // With perfectly energy-proportional servers the two designs
    // converge (power follows work exactly).
    ScaleOutParams params;
    params.idlePowerFraction = 0.0;
    ScaleOutResult r = analyzeMix("s", "m", {0.5}, params);
    EXPECT_NEAR(r.energyEfficiencyRatio, 1.0, 0.01);
}

TEST(ScaleOut, FullIdlePowerCapsTheWinAtServerCount)
{
    // idlePowerFraction = 1: power is pure server count, so the
    // efficiency ratio degenerates to noColo/pc3d server counts.
    ScaleOutParams params;
    params.idlePowerFraction = 1.0;
    ScaleOutResult r = analyzeMix("s", "m", {0.5}, params);
    EXPECT_NEAR(r.energyEfficiencyRatio,
                static_cast<double>(r.noColoServers) /
                    static_cast<double>(r.pc3dServers),
                1e-12);
}

TEST(ScaleOut, SingleServerCluster)
{
    // The model holds at N=1: one PC3D server vs one LS server plus
    // one (fractionally utilized, fully powered) batch server.
    ScaleOutParams params;
    params.baseServers = 1;
    ScaleOutResult r = analyzeMix("s", "m", {0.5}, params);
    EXPECT_EQ(r.pc3dServers, 1u);
    EXPECT_EQ(r.noColoServers, 2u);
    EXPECT_GT(r.energyEfficiencyRatio, 1.0);
}

TEST(ScaleOut, HigherIdleFractionIncreasesWin)
{
    ScaleOutParams low;
    low.idlePowerFraction = 0.3;
    ScaleOutParams high;
    high.idlePowerFraction = 0.7;
    double a = analyzeMix("s", "m", {0.5}, low).energyEfficiencyRatio;
    double b = analyzeMix("s", "m", {0.5}, high).energyEfficiencyRatio;
    EXPECT_GT(b, a);
}

TEST(ScaleOut, MeanUtilizationReported)
{
    ScaleOutResult r = analyzeMix("s", "m", {0.2, 0.4, 0.6});
    EXPECT_NEAR(r.meanUtilization, 0.4, 1e-12);
    EXPECT_EQ(r.service, "s");
    EXPECT_EQ(r.mixName, "m");
}

TEST(ScaleOut, EmptyMixIsFatal)
{
    EXPECT_DEATH({ analyzeMix("s", "m", {}); }, "empty");
}

TEST(ScaleOut, TableThreeMixesMatchPaper)
{
    const auto &mixes = tableThreeMixes();
    ASSERT_EQ(mixes.size(), 3u);
    EXPECT_EQ(mixes[0].first, "WL1");
    EXPECT_EQ(mixes[0].second,
              (std::vector<std::string>{"libquantum", "bzip2",
                                        "sphinx3", "milc"}));
    EXPECT_EQ(mixes[1].second,
              (std::vector<std::string>{"soplex", "bst", "milc",
                                        "lbm"}));
    EXPECT_EQ(mixes[2].second,
              (std::vector<std::string>{"sledge", "soplex",
                                        "sphinx3", "libquantum"}));
}

TEST(ScaleOut, CustomBaseServers)
{
    ScaleOutParams params;
    params.baseServers = 100;
    ScaleOutResult r = analyzeMix("s", "m", {0.5}, params);
    EXPECT_EQ(r.pc3dServers, 100u);
    EXPECT_EQ(r.noColoServers, 150u);
}

} // namespace
} // namespace datacenter
} // namespace protean
