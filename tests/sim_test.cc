/**
 * @file
 * Tests for the simulator substrate: functional memory, caches (LRU
 * and non-temporal insertion), the memory system, core timing
 * mechanisms (nap, stolen cycles, binary translation), and the
 * event-driven machine.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "pcc/pcc.h"
#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/memsys.h"

namespace protean {
namespace sim {
namespace {

TEST(PagedMemory, DefaultZero)
{
    PagedMemory mem;
    EXPECT_EQ(mem.read(0), 0u);
    EXPECT_EQ(mem.read(1 << 20), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(PagedMemory, ReadBack)
{
    PagedMemory mem;
    mem.write(8, 42);
    mem.write(1 << 30, 7);
    EXPECT_EQ(mem.read(8), 42u);
    EXPECT_EQ(mem.read(1 << 30), 7u);
    EXPECT_EQ(mem.read(16), 0u);
}

TEST(PagedMemory, LoadImage)
{
    PagedMemory mem;
    std::vector<uint8_t> img(16, 0);
    img[0] = 0x01;
    img[8] = 0xff;
    img[15] = 0x80;
    mem.loadImage(img);
    EXPECT_EQ(mem.read(0), 0x01u);
    EXPECT_EQ(mem.read(8), 0x80000000000000ffULL);
}

TEST(PagedMemory, Sparseness)
{
    PagedMemory mem;
    mem.write(0, 1);
    mem.write(1ULL << 40, 1);
    EXPECT_EQ(mem.residentPages(), 2u);
}

CacheConfig
tinyCache()
{
    // 2 sets x 2 ways x 64B lines = 256 B.
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.ways = 2;
    cfg.lineBytes = 64;
    cfg.latency = 1;
    return cfg;
}

TEST(Cache, HitAfterFill)
{
    Cache c("t", tinyCache());
    EXPECT_FALSE(c.access(0));
    c.fill(0, false);
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(63));  // same line
    EXPECT_FALSE(c.access(64)); // next line, other set
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    Cache c("t", tinyCache());
    // Set 0 holds lines with addresses 0, 128, 256 (stride 128).
    c.fill(0, false);
    c.fill(128, false);
    c.access(0); // make 0 MRU; 128 becomes LRU
    c.fill(256, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(128));
    EXPECT_TRUE(c.contains(256));
}

TEST(Cache, NtInsertEvictedFirst)
{
    Cache c("t", tinyCache());
    c.fill(0, false);
    c.fill(128, true); // NT: inserted at LRU position
    // 0 was inserted earlier but normally; the NT line must be the
    // first victim.
    c.fill(256, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(128));
}

TEST(Cache, NtLinePromotedOnHit)
{
    Cache c("t", tinyCache());
    c.fill(0, false);
    c.fill(128, true);  // NT: would be the next victim...
    c.access(128);      // ...but reuse promotes it above 0
    c.fill(256, false); // one eviction needed
    EXPECT_TRUE(c.contains(128));
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, OccupancyAccounting)
{
    Cache c("t", tinyCache());
    c.fill(0, false);
    c.fill(64, false);
    c.fill(1 << 20, false);
    EXPECT_EQ(c.linesOwnedBy(0, 4096), 2u);
    EXPECT_EQ(c.linesOwnedBy(1 << 20, 4096), 1u);
}

TEST(Cache, StatsTrackNtFills)
{
    Cache c("t", tinyCache());
    c.fill(0, true);
    c.fill(64, false);
    EXPECT_EQ(c.stats().ntFills, 1u);
}

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.prefetchDegree = 0; // precise latency checks
    return cfg;
}

TEST(MemorySystem, LatencyAccumulatesDownHierarchy)
{
    MachineConfig cfg = smallConfig();
    MemorySystem ms(cfg);
    HpmCounters hpm;
    AccessResult r = ms.access(0, 0x1000, false, 0, hpm);
    EXPECT_TRUE(r.dram);
    EXPECT_EQ(r.latency, cfg.l1.latency + cfg.l2.latency +
              cfg.l3.latency + cfg.dramLatency);
    // Second access: L1 hit.
    r = ms.access(0, 0x1000, false, 1000, hpm);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, cfg.l1.latency);
    EXPECT_EQ(hpm.l1Misses, 1u);
    EXPECT_EQ(hpm.dramAccesses, 1u);
}

TEST(MemorySystem, PrivateL1PerCore)
{
    MemorySystem ms(smallConfig());
    HpmCounters hpm;
    ms.access(0, 0x1000, false, 0, hpm);
    // Core 1 misses its own L1/L2 but hits the shared L3.
    AccessResult r = ms.access(1, 0x1000, false, 100, hpm);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l3Hit);
}

TEST(MemorySystem, DramQueueingDelays)
{
    MachineConfig cfg = smallConfig();
    MemorySystem ms(cfg);
    HpmCounters hpm;
    // Two back-to-back DRAM accesses at the same instant: the second
    // waits for the channel.
    AccessResult a = ms.access(0, 0x10000, false, 0, hpm);
    AccessResult b = ms.access(1, 0x20000, false, 0, hpm);
    EXPECT_EQ(b.latency, a.latency + cfg.dramOccupancy);
}

TEST(MemorySystem, NtFillGoesToLruInL3)
{
    MachineConfig cfg = smallConfig();
    MemorySystem ms(cfg);
    HpmCounters hpm;
    ms.access(0, 0x1000, true, 0, hpm);
    EXPECT_GT(ms.l3().stats().ntFills, 0u);
    // Value still resident (LruInsert, not bypass).
    EXPECT_TRUE(ms.l3().contains(0x1000));
}

TEST(MemorySystem, NtBypassSkipsSharedLevels)
{
    MachineConfig cfg = smallConfig();
    cfg.ntPolicy = NtPolicy::Bypass;
    MemorySystem ms(cfg);
    HpmCounters hpm;
    ms.access(0, 0x1000, true, 0, hpm);
    EXPECT_FALSE(ms.l3().contains(0x1000));
    EXPECT_FALSE(ms.l2(0).contains(0x1000));
    // L1 still fills so the core's own locality survives.
    EXPECT_TRUE(ms.l1(0).contains(0x1000));
}

TEST(MemorySystem, PrefetcherFillsAhead)
{
    MachineConfig cfg = smallConfig();
    cfg.prefetchDegree = 2;
    cfg.prefetchMinRun = 4;
    MemorySystem ms(cfg);
    HpmCounters hpm;
    // Establish a sequential run so the stride detector arms; once
    // armed, the walk's future lines are covered by prefetch.
    for (int i = 0; i < 8; ++i)
        ms.access(0, 0x3e00 + 64ULL * i, false, 0, hpm);
    EXPECT_GT(ms.prefetches(), 0u);
    // The next line in the walk was prefetched: it hits, not DRAM.
    AccessResult r = ms.access(0, 0x4000, false, 500, hpm);
    EXPECT_FALSE(r.dram);
    // Far-away lines were not touched.
    EXPECT_FALSE(ms.l3().contains(0x4000 + 64ULL * 32));
}

TEST(MemorySystem, PrefetchInheritsNtFlag)
{
    MachineConfig cfg = smallConfig();
    cfg.prefetchDegree = 1;
    cfg.prefetchMinRun = 4;
    MemorySystem ms(cfg);
    HpmCounters hpm;
    for (int i = 0; i < 8; ++i)
        ms.access(0, 0x7e00 + 64ULL * i, true, 0, hpm);
    uint64_t before = ms.l3().stats().ntFills;
    ms.access(0, 0x8000, true, 0, hpm);
    // Demand NT fill + prefetch NT fill.
    EXPECT_EQ(ms.l3().stats().ntFills, before + 2);
}

TEST(MemorySystem, NoPrefetchForStridedAccess)
{
    MachineConfig cfg = smallConfig();
    cfg.prefetchDegree = 4;
    cfg.prefetchMinRun = 4;
    MemorySystem ms(cfg);
    HpmCounters hpm;
    // Stride of 5 lines never arms the detector.
    for (int i = 0; i < 20; ++i)
        ms.access(0, 0x10000 + 320ULL * i, false, 0, hpm);
    EXPECT_EQ(ms.prefetches(), 0u);
}

/** Build a tiny infinite-loop program for timing tests. */
ir::Module
spinModule(const std::string &name = "spin")
{
    ir::Module m(name);
    ir::IRBuilder b(m);
    b.startFunction("main", 0);
    ir::BlockId loop = b.newBlock();
    ir::Reg one = b.constInt(1);
    ir::Reg acc = b.constInt(0);
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(acc, ir::Opcode::Add, acc, one);
    b.br(loop);
    return m;
}

TEST(Core, NapDutyCycleThrottles)
{
    ir::Module m = spinModule();
    isa::Image image = pcc::compilePlain(m);

    auto run_with_nap = [&](double nap) {
        Machine machine;
        Process &proc = machine.load(image, 0);
        (void)proc;
        machine.core(0).setNapIntensity(nap);
        machine.runFor(1'000'000);
        return machine.core(0).hpm().instructions;
    };

    uint64_t full = run_with_nap(0.0);
    uint64_t half = run_with_nap(0.5);
    uint64_t tenth = run_with_nap(0.9);
    EXPECT_NEAR(static_cast<double>(half) / full, 0.5, 0.05);
    EXPECT_NEAR(static_cast<double>(tenth) / full, 0.1, 0.05);
}

TEST(Core, NappedCyclesCounted)
{
    ir::Module m = spinModule();
    isa::Image image = pcc::compilePlain(m);
    Machine machine;
    machine.load(image, 0);
    machine.core(0).setNapIntensity(0.25);
    machine.runFor(400'000);
    double frac = static_cast<double>(
        machine.core(0).hpm().nappedCycles) /
        machine.core(0).hpm().cycles;
    EXPECT_NEAR(frac, 0.25, 0.03);
}

TEST(Core, StolenCyclesDelayHost)
{
    ir::Module m = spinModule();
    isa::Image image = pcc::compilePlain(m);

    Machine base;
    base.load(image, 0);
    base.runFor(100'000);
    uint64_t unimpeded = base.core(0).hpm().instructions;

    Machine machine;
    machine.load(image, 0);
    machine.core(0).stealCycles(50'000);
    machine.runFor(100'000);
    uint64_t impeded = machine.core(0).hpm().instructions;
    EXPECT_NEAR(static_cast<double>(impeded) / unimpeded, 0.5, 0.05);
    EXPECT_EQ(machine.core(0).hpm().stolenCycles, 50'000u);
}

TEST(Core, StolenCyclesOnIdleCore)
{
    Machine machine;
    machine.core(2).stealCycles(10'000);
    machine.runFor(50'000);
    EXPECT_EQ(machine.core(2).hpm().stolenCycles, 10'000u);
}

TEST(Core, BinaryTranslationAddsOverhead)
{
    ir::Module m = spinModule();
    isa::Image image = pcc::compilePlain(m);

    Machine native;
    native.load(image, 0);
    native.runFor(500'000);
    uint64_t native_instrs = native.core(0).hpm().instructions;

    Machine bt;
    bt.load(image, 0);
    BtConfig cfg;
    cfg.enabled = true;
    bt.core(0).setBtConfig(cfg);
    bt.runFor(500'000);
    uint64_t bt_instrs = bt.core(0).hpm().instructions;

    EXPECT_LT(bt_instrs, native_instrs);
    // The spin loop is a worst case (a taken branch every other
    // instruction), so the dispatch tax is huge but bounded.
    EXPECT_GT(bt_instrs, native_instrs / 40);
}

TEST(Core, BtIndirectCostExceedsDirect)
{
    // A call-heavy program suffers more under BT than a jump-heavy
    // one of equal instruction count.
    ir::Module calls("calls");
    {
        ir::IRBuilder b(calls);
        b.startFunction("leaf", 0);
        b.ret();
        b.startFunction("main", 0);
        ir::BlockId loop = b.newBlock();
        b.br(loop);
        b.setBlock(loop);
        b.callVoid(0);
        b.br(loop);
    }
    isa::Image ci = pcc::compilePlain(calls);

    auto ipc_under = [&](const isa::Image &img, bool bt_on) {
        Machine machine;
        machine.load(img, 0);
        if (bt_on) {
            BtConfig cfg;
            cfg.enabled = true;
            machine.core(0).setBtConfig(cfg);
        }
        machine.runFor(300'000);
        return machine.core(0).hpm().ipc();
    };

    ir::Module jumps = spinModule("jumps");
    isa::Image ji = pcc::compilePlain(jumps);

    double call_slowdown = ipc_under(ci, false) / ipc_under(ci, true);
    double jump_slowdown = ipc_under(ji, false) / ipc_under(ji, true);
    EXPECT_GT(call_slowdown, jump_slowdown);
}

TEST(Machine, EventsFireInOrder)
{
    Machine machine;
    std::vector<int> order;
    machine.schedule(100, [&] { order.push_back(2); });
    machine.schedule(50, [&] { order.push_back(1); });
    machine.schedule(100, [&] { order.push_back(3); }); // FIFO at tie
    machine.runFor(200);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_EQ(machine.now(), 200u);
}

TEST(Machine, EventsCanReschedule)
{
    Machine machine;
    int fires = 0;
    std::function<void()> tick = [&] {
        ++fires;
        if (fires < 5)
            machine.scheduleAfter(10, tick);
    };
    machine.scheduleAfter(10, tick);
    machine.runFor(1000);
    EXPECT_EQ(fires, 5);
}

TEST(Machine, RunToCompletionHalts)
{
    ir::Module m("finite");
    ir::IRBuilder b(m);
    b.startFunction("main", 0);
    b.ret();
    isa::Image image = pcc::compilePlain(m);
    Machine machine;
    Process &proc = machine.load(image, 0);
    machine.runToCompletion();
    EXPECT_EQ(proc.state(), ProcState::Halted);
    EXPECT_TRUE(machine.allHalted());
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto run = [] {
        ir::Module m = spinModule();
        isa::Image image = pcc::compilePlain(m);
        Machine machine;
        machine.load(image, 0);
        machine.load(image, 1);
        machine.runFor(123'456);
        return std::make_pair(machine.core(0).hpm().instructions,
                              machine.core(1).hpm().instructions);
    };
    EXPECT_EQ(run(), run());
}

/** A looping walker over `bytes` of data. `stride_bytes` of one
 *  line is prefetch-friendly streaming; five lines defeats the
 *  stride prefetcher (a latency-sensitive pattern). */
ir::Module
walkerModule(uint64_t bytes, const std::string &name,
             int64_t stride_bytes = 64)
{
    ir::Module m(name);
    ir::IRBuilder b(m);
    ir::GlobalId g = m.addGlobal("a", bytes + 4096);
    b.startFunction("main", 0);
    ir::Reg base = b.globalAddr(g);
    ir::Reg mask = b.constInt(static_cast<int64_t>(bytes - 64));
    ir::Reg stride = b.constInt(stride_bytes);
    ir::Reg cur = b.constInt(0);
    ir::Reg x = b.func().newReg();
    ir::Reg addr = b.func().newReg();
    b.func().noteReg(x);
    b.func().noteReg(addr);
    ir::BlockId loop = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(addr, ir::Opcode::And, cur, mask);
    b.binaryInto(addr, ir::Opcode::Add, addr, base);
    b.loadInto(x, addr);
    b.binaryInto(cur, ir::Opcode::Add, cur, stride);
    b.br(loop);
    return m;
}

TEST(Machine, SharedL3Contention)
{
    // A reuse walker (fits the LLC) is slowed by a streaming
    // co-runner that thrashes the LLC.
    ir::Module victim_m = walkerModule(64 * 1024, "victim", 320);
    isa::Image victim = pcc::compilePlain(victim_m);
    ir::Module streamer_m = walkerModule(4 << 20, "streamer");
    isa::Image streamer = pcc::compilePlain(streamer_m);

    Machine solo;
    solo.load(victim, 0);
    solo.runFor(3'000'000);
    uint64_t alone = solo.core(0).hpm().instructions;

    Machine duo;
    duo.load(victim, 0);
    duo.load(streamer, 1);
    duo.runFor(3'000'000);
    uint64_t together = duo.core(0).hpm().instructions;
    EXPECT_LT(static_cast<double>(together),
              0.92 * static_cast<double>(alone));
}

TEST(Machine, NtHintsShieldCoRunner)
{
    // The paper's core effect: the same streamer with non-temporal
    // loads takes far less from its co-runner.
    ir::Module victim_m = walkerModule(64 * 1024, "victim", 320);
    isa::Image victim = pcc::compilePlain(victim_m);

    auto victim_speed = [&](bool nt) {
        ir::Module sm = walkerModule(4 << 20, "streamer");
        sm.renumberLoads();
        isa::Image streamer = pcc::compilePlain(sm);
        if (nt) {
            for (auto &inst : streamer.code) {
                if (inst.op == isa::MOp::Load)
                    inst.nonTemporal = true;
            }
        }
        Machine duo;
        duo.load(victim, 0);
        duo.load(streamer, 1);
        duo.runFor(3'000'000);
        return duo.core(0).hpm().instructions;
    };

    uint64_t with_plain = victim_speed(false);
    uint64_t with_nt = victim_speed(true);
    EXPECT_GT(static_cast<double>(with_nt),
              1.05 * static_cast<double>(with_plain));
}

TEST(Machine, LoadRejectsBusyCore)
{
    ir::Module m = spinModule();
    isa::Image image = pcc::compilePlain(m);
    Machine machine;
    machine.load(image, 0);
    EXPECT_DEATH(
        { Machine bad; bad.load(image, 0); bad.load(image, 0); },
        "already busy");
}

TEST(Machine, PcSamplingSeesHostPc)
{
    ir::Module m = spinModule();
    isa::Image image = pcc::compilePlain(m);
    Machine machine;
    Process &proc = machine.load(image, 0);
    machine.runFor(10'000);
    isa::CodeAddr pc = machine.core(0).pc();
    const isa::FunctionInfo *fi = proc.image().functionAt(pc);
    ASSERT_NE(fi, nullptr);
    EXPECT_EQ(fi->name, "main");
}

} // namespace
} // namespace sim
} // namespace protean
