/**
 * @file
 * Execution-engine equivalence suite (DESIGN.md §8).
 *
 * The horizon-batched engine and the parallel fleet stepper are pure
 * host-side optimizations: every simulated observable must match the
 * reference Step engine and the serial cluster schedule exactly.
 * These tests pin that down — per-core HPM counter files, cache
 * stats, event ordering, and byte-identical metrics exports — plus
 * unit tests for the movable event heap and the MRU-way cache
 * shortcut the fast path relies on.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "ir/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcc/pcc.h"
#include "sim/cache.h"
#include "sim/event_heap.h"
#include "sim/machine.h"
#include "support/threadpool.h"
#include "workloads/registry.h"

namespace protean {
namespace sim {
namespace {

/** Process-wide engine default is test-visible state; pin it. */
class EngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = defaultEngine();
        obs::metrics().reset();
        obs::tracer().clear();
    }

    void
    TearDown() override
    {
        setDefaultEngine(saved_);
        obs::tracer().clear();
        obs::metrics().reset();
    }

  private:
    Engine saved_ = Engine::Batch;
};

TEST(EventHeap, PopsInCycleOrder)
{
    EventHeap h;
    std::vector<uint64_t> fired;
    uint64_t seq = 0;
    for (uint64_t c : {50u, 10u, 40u, 20u, 30u})
        h.push({c, seq++, [&fired, c] { fired.push_back(c); }});
    EXPECT_EQ(h.size(), 5u);
    while (!h.empty())
        h.pop().fn();
    EXPECT_EQ(fired, (std::vector<uint64_t>{10, 20, 30, 40, 50}));
}

TEST(EventHeap, SameCycleFiresInSchedulingOrder)
{
    // All entries share a cycle: seq (scheduling order) breaks the
    // tie, so the calendar stays deterministic.
    EventHeap h;
    std::vector<int> fired;
    for (int i = 0; i < 8; ++i)
        h.push({100, static_cast<uint64_t>(i),
                [&fired, i] { fired.push_back(i); }});
    while (!h.empty())
        h.pop().fn();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

/** Counts copy-constructions of a lambda capture. */
struct CopyCounter
{
    int *copies;
    explicit CopyCounter(int *c) : copies(c) {}
    CopyCounter(const CopyCounter &o) : copies(o.copies)
    {
        ++*copies;
    }
    CopyCounter(CopyCounter &&o) noexcept : copies(o.copies) {}
};

TEST(EventHeap, PopMovesCallbackOut)
{
    // The point of replacing priority_queue (whose const top()
    // forced copying the callback out before popping): callbacks
    // move through push, sift and pop without a single copy of
    // their captured state.
    EventHeap h;
    int copies = 0;
    h.push({5, 0, [c = CopyCounter(&copies)] { (void)c; }});
    h.push({1, 1, [] {}});
    h.push({9, 2, [c = CopyCounter(&copies)] { (void)c; }});
    h.pop().fn();                 // cycle 1
    EventHeap::Entry e = h.pop(); // cycle 5
    e.fn();
    h.pop().fn(); // cycle 9
    EXPECT_EQ(copies, 0);
    EXPECT_TRUE(h.empty());
}

TEST(EventHeap, InterleavedPushPop)
{
    EventHeap h;
    uint64_t seq = 0;
    std::vector<uint64_t> fired;
    auto add = [&](uint64_t c) {
        h.push({c, seq++, [&fired, c] { fired.push_back(c); }});
    };
    add(30);
    add(10);
    h.pop().fn(); // 10
    add(20);
    add(5);
    h.pop().fn(); // 5
    h.pop().fn(); // 20
    add(1);
    while (!h.empty())
        h.pop().fn();
    EXPECT_EQ(fired, (std::vector<uint64_t>{10, 5, 20, 1, 30}));
}

ir::Module
spinModule(const std::string &name = "spin")
{
    ir::Module m(name);
    ir::IRBuilder b(m);
    b.startFunction("main", 0);
    ir::BlockId loop = b.newBlock();
    ir::Reg one = b.constInt(1);
    ir::Reg acc = b.constInt(0);
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(acc, ir::Opcode::Add, acc, one);
    b.br(loop);
    return m;
}

/** A looping strided walker over `bytes` of data (misses in the
 *  memory hierarchy, unlike the spin loop). */
ir::Module
walkerModule(uint64_t bytes, const std::string &name,
             int64_t stride_bytes = 64)
{
    ir::Module m(name);
    ir::IRBuilder b(m);
    ir::GlobalId g = m.addGlobal("a", bytes + 4096);
    b.startFunction("main", 0);
    ir::Reg base = b.globalAddr(g);
    ir::Reg mask = b.constInt(static_cast<int64_t>(bytes - 64));
    ir::Reg stride = b.constInt(stride_bytes);
    ir::Reg cur = b.constInt(0);
    ir::Reg x = b.func().newReg();
    ir::Reg addr = b.func().newReg();
    b.func().noteReg(x);
    b.func().noteReg(addr);
    ir::BlockId loop = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(addr, ir::Opcode::And, cur, mask);
    b.binaryInto(addr, ir::Opcode::Add, addr, base);
    b.loadInto(x, addr);
    b.binaryInto(cur, ir::Opcode::Add, cur, stride);
    b.br(loop);
    return m;
}

void
expectHpmEq(const HpmCounters &a, const HpmCounters &b, uint32_t core)
{
    SCOPED_TRACE("core " + std::to_string(core));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nappedCycles, b.nappedCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.hints, b.hints);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l3Accesses, b.l3Accesses);
    EXPECT_EQ(a.l3Misses, b.l3Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.stolenCycles, b.stolenCycles);
}

/** Everything one engine run can observe. */
struct RunRecord
{
    uint64_t now = 0;
    std::vector<HpmCounters> hpm;
    uint64_t l3Misses = 0;
    uint64_t dramAccesses = 0;
    std::vector<int> eventLog;
    std::string metricsJson;
};

/**
 * Drive `images[i]` on core i under `engine`, in uneven runFor
 * chunks (so until-cycle horizons land mid-stream), with mid-run
 * scheduled events that perturb core timing (stolen cycles, naps) —
 * the interleavings the batch engine must not reorder.
 */
RunRecord
runEngine(Engine engine, const std::vector<const isa::Image *> &images,
          uint64_t total_cycles)
{
    obs::metrics().reset();
    Machine machine;
    machine.setEngine(engine);
    for (uint32_t c = 0; c < images.size(); ++c)
        machine.load(*images[c], c);

    RunRecord rec;
    machine.scheduleAfter(total_cycles / 3, [&machine, &rec] {
        rec.eventLog.push_back(1);
        machine.core(0).stealCycles(5'000);
    });
    machine.scheduleAfter(total_cycles / 3, [&machine, &rec] {
        // Same cycle as the steal: order must hold in both engines.
        rec.eventLog.push_back(2);
        if (machine.numCores() > 1)
            machine.core(1).setNapIntensity(0.5);
    });
    machine.scheduleAfter(2 * total_cycles / 3, [&machine, &rec] {
        rec.eventLog.push_back(3);
        if (machine.numCores() > 1)
            machine.core(1).setNapIntensity(0.0);
    });

    uint64_t chunks[] = {total_cycles / 7, total_cycles / 3 + 11, 1,
                         total_cycles};
    for (uint64_t c : chunks)
        machine.runFor(c);

    rec.now = machine.now();
    for (uint32_t c = 0; c < machine.numCores(); ++c)
        rec.hpm.push_back(machine.core(c).hpm());
    rec.l3Misses = machine.memsys().l3().stats().misses;
    rec.dramAccesses = machine.memsys().dramAccesses();
    machine.exportObsMetrics();
    rec.metricsJson = obs::metrics().toJson();
    return rec;
}

void
expectRunsEq(const RunRecord &step, const RunRecord &batch)
{
    EXPECT_EQ(step.now, batch.now);
    ASSERT_EQ(step.hpm.size(), batch.hpm.size());
    for (uint32_t c = 0; c < step.hpm.size(); ++c)
        expectHpmEq(step.hpm[c], batch.hpm[c], c);
    EXPECT_EQ(step.l3Misses, batch.l3Misses);
    EXPECT_EQ(step.dramAccesses, batch.dramAccesses);
    EXPECT_EQ(step.eventLog, batch.eventLog);
    EXPECT_EQ(step.metricsJson, batch.metricsJson);
}

TEST_F(EngineTest, StepVsBatchSpinPlusWalker)
{
    // Asymmetric per-instruction costs: the cores' clocks leapfrog,
    // exercising the horizon bound against the other-core minimum.
    ir::Module sm = spinModule();
    isa::Image spin = pcc::compilePlain(sm);
    ir::Module wm = walkerModule(1 << 20, "walker", 320);
    isa::Image walker = pcc::compilePlain(wm);
    RunRecord step =
        runEngine(Engine::Step, {&spin, &walker}, 600'000);
    RunRecord batch =
        runEngine(Engine::Batch, {&spin, &walker}, 600'000);
    expectRunsEq(step, batch);
}

TEST_F(EngineTest, StepVsBatchColocatedWalkers)
{
    // Two walkers share the L3: interleaving at the shared level is
    // the most fragile observable, since a reordered access changes
    // which line gets evicted.
    ir::Module am = walkerModule(64 * 1024, "reuse", 320);
    isa::Image a = pcc::compilePlain(am);
    ir::Module bm = walkerModule(4 << 20, "stream");
    isa::Image b = pcc::compilePlain(bm);
    RunRecord step = runEngine(Engine::Step, {&a, &b}, 800'000);
    RunRecord batch = runEngine(Engine::Batch, {&a, &b}, 800'000);
    expectRunsEq(step, batch);
}

TEST_F(EngineTest, StepVsBatchProteanBinary)
{
    // A realistic protean-compiled batch app (virtualized calls,
    // padded loads) on a single hot core — the fleet shape, and the
    // configuration where batching runs longest uninterrupted.
    workloads::BatchSpec spec = workloads::batchSpec("soplex");
    ir::Module m = workloads::buildBatch(spec);
    isa::Image image = pcc::compile(m);
    RunRecord step = runEngine(Engine::Step, {&image}, 400'000);
    RunRecord batch = runEngine(Engine::Batch, {&image}, 400'000);
    expectRunsEq(step, batch);
}

TEST_F(EngineTest, StepVsBatchTwoComputeProcs)
{
    // Two pure-ALU spinners keep their clocks in near-lockstep: the
    // worst case for pairwise bounding (per-instruction ping-pong)
    // and the best case for the joint fenced window, which should
    // run each core's whole window in one call. Byte-identity of the
    // HPM files and metric exports is the contract either way.
    ir::Module am = spinModule("spin_a");
    isa::Image a = pcc::compilePlain(am);
    ir::Module bm = spinModule("spin_b");
    isa::Image b = pcc::compilePlain(bm);
    RunRecord step = runEngine(Engine::Step, {&a, &b}, 500'000);
    RunRecord batch = runEngine(Engine::Batch, {&a, &b}, 500'000);
    expectRunsEq(step, batch);
}

TEST_F(EngineTest, StepVsBatchFourProcMixed)
{
    // All four cores busy: compute, a cache-resident walker, a
    // streaming walker, and a protean batch app contending in the
    // shared L3, with mid-run events throttling cores 0 and 1 —
    // every joint window here has at least one fenced fallback.
    ir::Module sm = spinModule();
    isa::Image spin = pcc::compilePlain(sm);
    ir::Module rm = walkerModule(64 * 1024, "reuse", 320);
    isa::Image reuse = pcc::compilePlain(rm);
    ir::Module tm = walkerModule(4 << 20, "stream");
    isa::Image stream = pcc::compilePlain(tm);
    workloads::BatchSpec spec = workloads::batchSpec("soplex");
    ir::Module bm = workloads::buildBatch(spec);
    isa::Image app = pcc::compile(bm);
    RunRecord step = runEngine(Engine::Step,
                               {&spin, &reuse, &stream, &app},
                               700'000);
    RunRecord batch = runEngine(Engine::Batch,
                                {&spin, &reuse, &stream, &app},
                                700'000);
    expectRunsEq(step, batch);
}

/** A hot loop whose body re-materializes a distinctive constant
 *  every iteration and stores the accumulator to a global — the
 *  superblock cache decodes the Const, so patching it mid-run must
 *  retire the stale block before the next dispatch. */
ir::Module
patchableModule()
{
    ir::Module m("patchable");
    ir::IRBuilder b(m);
    ir::GlobalId g = m.addGlobal("acc", 64);
    b.startFunction("main", 0);
    ir::Reg base = b.globalAddr(g);
    ir::Reg acc = b.constInt(0);
    ir::BlockId loop = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    ir::Reg k = b.constInt(7777);
    b.binaryInto(acc, ir::Opcode::Add, acc, k);
    b.store(base, acc);
    b.br(loop);
    return m;
}

TEST_F(EngineTest, SuperblockCacheRetiresPatchedCode)
{
    ir::Module m = patchableModule();
    isa::Image image = pcc::compilePlain(m);
    // The loop-body constant this test patches mid-hot-loop.
    isa::CodeAddr patch_addr = isa::kInvalidCodeAddr;
    for (isa::CodeAddr a = 0;
         a < static_cast<isa::CodeAddr>(image.code.size()); ++a) {
        if (image.code[a].op == isa::MOp::Const &&
            image.code[a].imm == 7777)
            patch_addr = a;
    }
    ASSERT_NE(patch_addr, isa::kInvalidCodeAddr);

    struct Out
    {
        uint64_t acc;
        uint64_t invalidations;
    };
    auto run = [&](Engine e, bool patch) {
        Machine machine;
        machine.setEngine(e);
        Process &p = machine.load(image, 0);
        if (patch) {
            machine.schedule(50'000, [&p, patch_addr] {
                isa::MInst inst = p.inst(patch_addr);
                inst.imm = 1111;
                p.patchInst(patch_addr, inst);
            });
        }
        machine.runFor(200'000);
        return Out{p.readWord(image.layout.base(0)),
                   machine.core(0).superblockStats().invalidations};
    };
    Out step_plain = run(Engine::Step, false);
    Out step_patch = run(Engine::Step, true);
    Out batch_patch = run(Engine::Batch, true);
    // The patch changed the reference run (it landed mid-hot-loop)...
    EXPECT_NE(step_plain.acc, step_patch.acc);
    // ...and the batch engine executed zero stale instructions: its
    // accumulator matches the always-fresh Step engine exactly.
    EXPECT_EQ(batch_patch.acc, step_patch.acc);
    // The version bump retired the decoded blocks, not a lucky miss.
    EXPECT_GT(batch_patch.invalidations, 0u);
}

TEST_F(EngineTest, SuperblockCacheRetiresFlippedVariantMidHotLoop)
{
    // RuntimeCompiler's install path, emulated mid-hot-loop: append
    // a variant to the code-cache region, then flip EVT slot 0 to
    // it. The append bumps codeVersion(), so decoded blocks from
    // before the install can never serve a post-flip dispatch.
    workloads::BatchSpec spec = workloads::batchSpec("soplex");
    ir::Module m = workloads::buildBatch(spec);
    isa::Image image = pcc::compile(m);
    ASSERT_TRUE(image.isProtean());

    struct Out
    {
        HpmCounters hpm;
        uint64_t flipped_to;
        uint64_t invalidations;
    };
    auto run = [&](Engine e) {
        obs::metrics().reset();
        Machine machine;
        machine.setEngine(e);
        Process &p = machine.load(image, 0);
        machine.schedule(60'000, [&p] {
            std::vector<isa::MInst> stub(2);
            stub[0].op = isa::MOp::Const;
            stub[0].rd = 0;
            stub[0].imm = 42;
            stub[1].op = isa::MOp::Ret;
            isa::CodeAddr entry = p.appendCode(stub);
            p.writeWord(p.image().evtBase, entry);
        });
        machine.runFor(300'000);
        return Out{machine.core(0).hpm(),
                   p.readWord(image.evtBase),
                   machine.core(0).superblockStats().invalidations};
    };
    Out step = run(Engine::Step);
    Out batch = run(Engine::Batch);
    EXPECT_EQ(step.flipped_to, batch.flipped_to);
    EXPECT_EQ(step.flipped_to, image.code.size()); // stub entry
    expectHpmEq(step.hpm, batch.hpm, 0);
    EXPECT_GT(batch.invalidations, 0u);
}

TEST_F(EngineTest, SameCycleEventsFireInScheduleOrderBothEngines)
{
    for (Engine e : {Engine::Step, Engine::Batch}) {
        SCOPED_TRACE(e == Engine::Step ? "step" : "batch");
        Machine machine;
        machine.setEngine(e);
        std::vector<int> order;
        machine.schedule(1000, [&order] { order.push_back(1); });
        machine.schedule(1000, [&order] { order.push_back(2); });
        machine.schedule(500, [&order] { order.push_back(0); });
        machine.schedule(1000, [&order] { order.push_back(3); });
        machine.runFor(2000);
        EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    }
}

TEST_F(EngineTest, EventsCanRescheduleUnderBatch)
{
    Machine machine;
    machine.setEngine(Engine::Batch);
    ir::Module m = spinModule();
    isa::Image image = pcc::compilePlain(m);
    machine.load(image, 0);
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        if (ticks < 5)
            machine.scheduleAfter(100, tick);
    };
    machine.scheduleAfter(100, tick);
    machine.runFor(10'000);
    EXPECT_EQ(ticks, 5);
}

TEST_F(EngineTest, DefaultEngineSelectsNewMachines)
{
    setDefaultEngine(Engine::Step);
    Machine a;
    EXPECT_EQ(a.engine(), Engine::Step);
    setDefaultEngine(Engine::Batch);
    Machine b;
    EXPECT_EQ(b.engine(), Engine::Batch);
    EXPECT_EQ(a.engine(), Engine::Step); // existing machines keep theirs
}

TEST(Cache, MruHintStaleStillHits)
{
    // Alternating ways in one set keeps the MRU hint stale half the
    // time; the fallback scan must still find every line.
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.ways = 2;
    cfg.lineBytes = 64;
    Cache c("t", cfg);
    c.fill(0, false);
    c.fill(128, false); // same set, other way
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(c.access(0));
        EXPECT_TRUE(c.access(128));
    }
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, MruHintNeverAffectsReplacement)
{
    // Recency is decided by access order alone: hammering one way
    // (parking the hint there) must not save it from LRU eviction
    // once the other way is touched more recently.
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    cfg.ways = 2;
    cfg.lineBytes = 64;
    Cache c("t", cfg);
    c.fill(0, false);
    c.fill(128, false);
    for (int i = 0; i < 10; ++i)
        c.access(0); // hint parks on 0's way
    c.access(128);   // ...but 0 is now LRU
    c.access(0);     // 128 LRU again
    c.fill(256, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(128));
    EXPECT_TRUE(c.contains(256));
}

} // namespace
} // namespace sim

namespace fleet {
namespace {

/** Serial/parallel cluster equivalence: stats + exports must be
 *  byte-identical (the whole contract of Cluster::setParallel). */
class ParallelFleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::metrics().reset();
        obs::tracer().clear();
    }

    void
    TearDown() override
    {
        obs::tracer().clear();
        obs::metrics().reset();
    }
};

struct FleetRecord
{
    FleetStats stats;
    std::string metricsJson;
};

FleetRecord
runFleet(uint32_t servers, uint32_t workers, double ms)
{
    obs::metrics().reset();
    FleetConfig cfg;
    cfg.numServers = servers;
    cfg.parallelWorkers = workers;
    FleetSim sim(cfg);
    // setParallel clamps to the host's useful lane ceiling: requests
    // beyond hardware_concurrency degrade to fewer lanes (serial on
    // a 1-hw-thread container) instead of spinning against each
    // other.
    EXPECT_EQ(sim.cluster().parallel(),
              std::min(std::max(workers, 1u),
                       WorkerPool::recommendedLanes()));
    sim.run(ms);
    FleetRecord rec;
    rec.stats = sim.stats();
    sim.exportObsMetrics();
    rec.metricsJson = obs::metrics().toJson();
    return rec;
}

void
expectFleetEq(const FleetRecord &serial, const FleetRecord &par)
{
    EXPECT_EQ(serial.stats.deployRequests, par.stats.deployRequests);
    EXPECT_EQ(serial.stats.serverCompiles, par.stats.serverCompiles);
    EXPECT_EQ(serial.stats.serverCompileCycles,
              par.stats.serverCompileCycles);
    EXPECT_EQ(serial.stats.remoteHits, par.stats.remoteHits);
    EXPECT_EQ(serial.stats.hostBranches, par.stats.hostBranches);
    EXPECT_EQ(serial.stats.service.requests,
              par.stats.service.requests);
    EXPECT_EQ(serial.stats.service.hits, par.stats.service.hits);
    EXPECT_EQ(serial.stats.service.misses, par.stats.service.misses);
    EXPECT_EQ(serial.stats.service.coalesced,
              par.stats.service.coalesced);
    EXPECT_EQ(serial.stats.service.evictions,
              par.stats.service.evictions);
    EXPECT_EQ(serial.stats.service.batches, par.stats.service.batches);
    EXPECT_EQ(serial.stats.service.compiles,
              par.stats.service.compiles);
    EXPECT_EQ(serial.stats.service.compileCycles,
              par.stats.service.compileCycles);
    EXPECT_EQ(serial.stats.service.bytesOut, par.stats.service.bytesOut);
    EXPECT_EQ(serial.metricsJson, par.metricsJson);
}

TEST(WorkerPoolTest, RecommendedLanesIsPositive)
{
    EXPECT_GE(WorkerPool::recommendedLanes(), 1u);
}

TEST(WorkerPoolTest, StealingRunsEachIndexExactlyOnce)
{
    // The per-lane cursors hand every index to exactly one claimant
    // no matter how the stealing races resolve (TSan runs this).
    for (uint32_t lanes : {2u, 4u, 8u}) {
        SCOPED_TRACE("lanes " + std::to_string(lanes));
        WorkerPool pool(lanes);
        constexpr size_t kN = 1024;
        std::vector<std::atomic<uint32_t>> counts(kN);
        for (int round = 0; round < 3; ++round) {
            for (auto &c : counts)
                c.store(0, std::memory_order_relaxed);
            pool.parallelFor(kN, [&counts](size_t i) {
                counts[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (size_t i = 0; i < kN; ++i)
                ASSERT_EQ(counts[i].load(), 1u) << "index " << i;
        }
    }
}

TEST(WorkerPoolTest, UnevenChunksGetStolenAndComplete)
{
    // Front-loads the first chunk with almost all the work: the
    // other lanes drain early and must steal for the job to finish
    // in one pass.
    WorkerPool pool(4);
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(64, [&sum](size_t i) {
        volatile uint64_t x = 0;
        uint64_t iters = i < 8 ? 50'000 : 1;
        for (uint64_t k = 0; k < iters; ++k)
            x = x + k;
        sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64u * 65u / 2u);
}

TEST(WorkerPoolTest, ResultsIdenticalAcrossRepeatedJobs)
{
    // Which lane runs an item is racy; what the item computes is
    // not. Every repeat must produce the same per-index values.
    WorkerPool pool(8);
    std::vector<uint64_t> first(512);
    for (int round = 0; round < 4; ++round) {
        std::vector<uint64_t> out(512);
        pool.parallelFor(out.size(), [&out](size_t i) {
            out[i] = i * 2654435761ull + 17;
        });
        if (round == 0)
            first = out;
        else
            EXPECT_EQ(out, first);
    }
}

TEST_F(ParallelFleetTest, SerialVsParallelByteIdentical)
{
    for (uint32_t servers : {2u, 4u, 8u}) {
        SCOPED_TRACE("servers " + std::to_string(servers));
        FleetRecord serial = runFleet(servers, 1, 30.0);
        for (uint32_t workers : {2u, 4u}) {
            SCOPED_TRACE("workers " + std::to_string(workers));
            FleetRecord par = runFleet(servers, workers, 30.0);
            expectFleetEq(serial, par);
        }
    }
}

TEST_F(ParallelFleetTest, ParallelRepeatsAreDeterministic)
{
    // Thread scheduling varies run to run; results must not.
    FleetRecord a = runFleet(4, 4, 25.0);
    FleetRecord b = runFleet(4, 4, 25.0);
    expectFleetEq(a, b);
}

TEST_F(ParallelFleetTest, MoreWorkersThanMachines)
{
    FleetRecord serial = runFleet(2, 1, 20.0);
    FleetRecord par = runFleet(2, 8, 20.0);
    expectFleetEq(serial, par);
}

TEST_F(ParallelFleetTest, TracerForcesSerialPathStaysIdentical)
{
    // With the tracer armed, the parallel cluster silently runs
    // serially — exports (including the trace) must match a
    // workers=1 run exactly.
    auto traced = [](uint32_t workers) {
        obs::metrics().reset();
        obs::tracer().clear();
        obs::tracer().setEnabled(true);
        FleetConfig cfg;
        cfg.numServers = 2;
        cfg.parallelWorkers = workers;
        FleetSim sim(cfg);
        sim.run(15.0);
        obs::tracer().setEnabled(false);
        std::ostringstream os;
        os << sim.stats().hostBranches << "|"
           << sim.stats().deployRequests;
        return os.str();
    };
    EXPECT_EQ(traced(1), traced(4));
}

} // namespace
} // namespace fleet
} // namespace protean
