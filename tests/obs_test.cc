/**
 * @file
 * Tests for the observability layer: the metrics registry, the
 * cycle-stamped tracer, machine clock registration, and the
 * acceptance property that two identical runs produce byte-identical
 * exports.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "datacenter/experiment.h"
#include "obs/hdr.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace protean {
namespace obs {
namespace {

/** Every test starts from a clean global registry/tracer. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        metrics().reset();
        tracer().clear();
        tracer().setEnabled(true);
    }

    void
    TearDown() override
    {
        tracer().setEnabled(false);
        tracer().clear();
        metrics().reset();
    }
};

TEST_F(ObsTest, CounterFindOrCreateAndInc)
{
    Counter &c = metrics().counter("runtime.test.events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name -> same handle (hot paths cache the pointer).
    EXPECT_EQ(&metrics().counter("runtime.test.events"), &c);
    EXPECT_EQ(metrics().counter("runtime.test.events").value(), 42u);
}

TEST_F(ObsTest, GaugeKeepsLastValue)
{
    Gauge &g = metrics().gauge("sim.test.ipc");
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(1.5);
    g.set(0.25);
    EXPECT_DOUBLE_EQ(metrics().gauge("sim.test.ipc").value(), 0.25);
}

TEST_F(ObsTest, HistogramRecordsExactSmallValues)
{
    Histogram &h = metrics().histogram("t.lat");
    h.observe(0.4);  // rounds to 0
    h.observe(1.0);
    h.observe(1.4);  // rounds to 1
    h.observe(63.0); // last exact unit bucket
    h.observe(1e9);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.0 + 1.0 + 63.0 + 1e9);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 1'000'000'000u);
    // Values < 64 are exact; p50 over {0,1,1,63,1e9} is 1.
    EXPECT_EQ(h.quantile(0.5), 1u);
    EXPECT_EQ(&metrics().histogram("t.lat"), &h);
}

TEST(HdrHistogramTest, EmptyHistogram)
{
    HdrHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(0.999), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_TRUE(h.nonZeroBuckets().empty());
}

TEST(HdrHistogramTest, SingleSampleEveryQuantile)
{
    HdrHistogram h;
    h.record(777);
    EXPECT_EQ(h.total(), 1u);
    // Every quantile of a single sample is that sample (the bucket
    // edge clamps to the exact max).
    for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 0.999, 1.0})
        EXPECT_EQ(h.quantile(q), 777u) << q;
    EXPECT_EQ(h.minValue(), 777u);
    EXPECT_EQ(h.maxValue(), 777u);
}

TEST(HdrHistogramTest, BucketLayoutAndEdges)
{
    // Unit buckets below 64.
    for (uint64_t v : {0ull, 1ull, 63ull}) {
        uint32_t i = HdrHistogram::indexFor(v);
        EXPECT_EQ(HdrHistogram::lowerEdge(i), v);
        EXPECT_EQ(HdrHistogram::upperEdge(i), v);
    }
    // First octave: width-2 buckets.
    EXPECT_EQ(HdrHistogram::indexFor(64), 64u);
    EXPECT_EQ(HdrHistogram::lowerEdge(64), 64u);
    EXPECT_EQ(HdrHistogram::upperEdge(64), 65u);
    EXPECT_EQ(HdrHistogram::indexFor(65), 64u);
    EXPECT_EQ(HdrHistogram::indexFor(127),
              HdrHistogram::indexFor(126));
    // Every value maps inside its bucket's [lower, upper] range.
    for (uint64_t v = 1; v < (1ull << 40); v = v * 3 + 1) {
        uint32_t i = HdrHistogram::indexFor(v);
        EXPECT_LE(HdrHistogram::lowerEdge(i), v) << v;
        EXPECT_GE(HdrHistogram::upperEdge(i), v) << v;
        // Relative bucket error <= 1/32.
        if (v >= 64) {
            EXPECT_LE(HdrHistogram::upperEdge(i) -
                          HdrHistogram::lowerEdge(i) + 1,
                      v / 32 + 1)
                << v;
        }
    }
}

TEST(HdrHistogramTest, OverflowBucketSaturates)
{
    HdrHistogram h;
    h.record(UINT64_MAX);
    h.observe(1e30); // far beyond uint64 -> saturates, not lost
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.maxValue(), UINT64_MAX);
    EXPECT_EQ(h.quantile(1.0), UINT64_MAX);
    uint32_t top = HdrHistogram::indexFor(UINT64_MAX);
    EXPECT_EQ(top, HdrHistogram::kNumBuckets - 1);
    EXPECT_EQ(HdrHistogram::upperEdge(top), UINT64_MAX);
}

TEST(HdrHistogramTest, MergeMatchesDirectRecording)
{
    // Merging per-server histograms then querying must equal
    // querying one histogram that saw every sample: the telemetry
    // plane's core property.
    HdrHistogram a, b, direct;
    for (uint64_t v = 1; v < 2'000'000; v = v * 2 + 17) {
        a.record(v, 3);
        direct.record(v, 3);
    }
    for (uint64_t v = 5; v < 900'000; v = v * 3 + 1) {
        b.record(v);
        direct.record(v);
    }
    HdrHistogram merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.total(), direct.total());
    EXPECT_EQ(merged.sum(), direct.sum());
    EXPECT_EQ(merged.minValue(), direct.minValue());
    EXPECT_EQ(merged.maxValue(), direct.maxValue());
    for (double q : {0.5, 0.95, 0.99, 0.999})
        EXPECT_EQ(merged.quantile(q), direct.quantile(q)) << q;
    // Merging an empty histogram changes nothing.
    merged.merge(HdrHistogram());
    EXPECT_EQ(merged.total(), direct.total());
    // clear() resets to the empty state.
    merged.clear();
    EXPECT_TRUE(merged.empty());
    EXPECT_EQ(merged.quantile(0.99), 0u);
}

TEST(HdrHistogramTest, QuantileWithinRelativeErrorBound)
{
    HdrHistogram h;
    for (uint64_t v = 1; v <= 100'000; ++v)
        h.record(v);
    // True p50 = 50000; bucketed answer must be within 1/32 above.
    for (double q : {0.5, 0.95, 0.99, 0.999}) {
        uint64_t truth =
            static_cast<uint64_t>(std::ceil(q * 100'000));
        uint64_t got = h.quantile(q);
        EXPECT_GE(got, truth) << q;
        EXPECT_LE(got, truth + truth / 32 + 1) << q;
    }
}

TEST(SloMonitorTest, MultiWindowBurnRaisesAndClears)
{
    SloMonitor mon;
    SloSpec spec;
    spec.name = "lat_p99";
    spec.field = "p99";
    spec.threshold = 100.0;
    spec.budget = 0.25; // 1 bad window in 4 is tolerated
    spec.shortWindows = 2;
    spec.longWindows = 4;
    spec.burnThreshold = 1.5;
    mon.addSpec(spec);

    // Good windows: silent.
    for (uint64_t w = 0; w < 4; ++w) {
        auto raised = mon.observeWindow(w, {{"p99", 50.0}});
        EXPECT_TRUE(raised.empty()) << w;
    }
    EXPECT_FALSE(mon.firing("lat_p99"));
    EXPECT_FALSE(mon.everFired("lat_p99"));

    // One bad window: short burn = (1/2)/0.25 = 2 >= 1.5 but long
    // burn = (1/4)/0.25 = 1 < 1.5 -> still silent (blip tolerance).
    auto raised = mon.observeWindow(4, {{"p99", 500.0}});
    EXPECT_TRUE(raised.empty());

    // Second consecutive bad window: long burn = 2 >= 1.5 -> raise.
    raised = mon.observeWindow(5, {{"p99", 500.0}});
    ASSERT_EQ(raised.size(), 1u);
    EXPECT_EQ(raised[0], "lat_p99");
    EXPECT_TRUE(mon.firing("lat_p99"));
    ASSERT_EQ(mon.alerts().size(), 1u);
    EXPECT_EQ(mon.alerts()[0].raisedWindow, 5u);
    EXPECT_EQ(mon.alerts()[0].clearedWindow, UINT64_MAX);

    // Still bad: same episode, no duplicate alert.
    raised = mon.observeWindow(6, {{"p99", 500.0}});
    EXPECT_TRUE(raised.empty());
    EXPECT_EQ(mon.alerts().size(), 1u);

    // Two good windows drain the short burn -> alert clears.
    mon.observeWindow(7, {{"p99", 10.0}});
    mon.observeWindow(8, {{"p99", 10.0}});
    EXPECT_FALSE(mon.firing("lat_p99"));
    EXPECT_EQ(mon.alerts()[0].clearedWindow, 8u);
    EXPECT_TRUE(mon.everFired("lat_p99"));
    EXPECT_EQ(mon.badWindows("lat_p99"), 3u);
}

TEST(SloMonitorTest, MissingFieldCountsAsGood)
{
    SloMonitor mon;
    SloSpec spec;
    spec.name = "s";
    spec.field = "absent";
    spec.threshold = 0.0;
    spec.budget = 0.01;
    spec.shortWindows = 1;
    spec.longWindows = 1;
    mon.addSpec(spec);
    for (uint64_t w = 0; w < 10; ++w)
        EXPECT_TRUE(mon.observeWindow(w, {{"other", 1e9}}).empty());
    EXPECT_FALSE(mon.everFired("s"));
    EXPECT_EQ(mon.badWindows("s"), 0u);
}

TEST(SloMonitorTest, JsonStableAndCompletes)
{
    SloMonitor mon;
    SloSpec spec;
    spec.name = "avail";
    spec.field = "crashes";
    spec.threshold = 0.0;
    spec.budget = 0.05;
    spec.shortWindows = 1;
    spec.longWindows = 2;
    mon.addSpec(spec);
    mon.observeWindow(0, {{"crashes", 0.0}});
    mon.observeWindow(1, {{"crashes", 3.0}});
    std::string json = mon.toJson();
    EXPECT_EQ(json, mon.toJson());
    EXPECT_NE(json.find("\"slo\": \"avail\""), std::string::npos);
    EXPECT_NE(json.find("\"raised_window\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"cleared_window\": null"),
              std::string::npos);
    EXPECT_NE(json.find("\"bad_windows\": 1"), std::string::npos);
}

TEST_F(ObsTest, JsonNumberDeterministicAndRoundTrips)
{
    EXPECT_EQ(detail::jsonNumber(3.0), "3");
    EXPECT_EQ(detail::jsonNumber(-2.0), "-2");
    EXPECT_EQ(detail::jsonNumber(0.5), "0.5");
    for (double v : {0.1, 1.0 / 3.0, 1e-12, 123456.789}) {
        std::string s = detail::jsonNumber(v);
        EXPECT_EQ(s, detail::jsonNumber(v));
        EXPECT_DOUBLE_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST_F(ObsTest, JsonEscapeControlCharacters)
{
    EXPECT_EQ(detail::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(detail::jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(detail::jsonEscape("plain.name"), "plain.name");
}

TEST_F(ObsTest, RegistryJsonSortedAndStable)
{
    // Created out of order; exported keys must be sorted.
    metrics().counter("z.last").inc(7);
    metrics().counter("a.first").inc();
    metrics().gauge("m.middle").set(2.5);
    metrics().histogram("h.one").observe(3.0);

    std::string json = metrics().toJson();
    EXPECT_LT(json.find("\"a.first\": 1"), json.find("\"z.last\": 7"));
    EXPECT_NE(json.find("\"m.middle\": 2.5"), std::string::npos);
    // Histograms export stable quantile summaries with a fixed,
    // alphabetical key order.
    EXPECT_NE(json.find("\"h.one\": {\"buckets\": [[3,3,1]], "
                        "\"max\": 3, \"min\": 3, \"p50\": 3, "
                        "\"p95\": 3, \"p99\": 3, \"p999\": 3, "
                        "\"sum\": 3, \"total\": 1}"),
              std::string::npos);
    // Two snapshots of the same state are byte-identical.
    EXPECT_EQ(json, metrics().toJson());
}

TEST_F(ObsTest, RegistryResetDropsEverything)
{
    metrics().counter("x").inc();
    metrics().gauge("y").set(1.0);
    metrics().histogram("z").observe(1.0);
    EXPECT_EQ(metrics().size(), 3u);
    metrics().reset();
    EXPECT_EQ(metrics().size(), 0u);
    EXPECT_EQ(metrics().counter("x").value(), 0u);
}

TEST_F(ObsTest, HostScopedMetricsStayOutOfSnapshots)
{
    // Host-scoped metrics (clamped worker pools, hardware thread
    // counts) describe the execution host: they stay queryable but
    // must not leak into the deterministic JSON exports, which are
    // byte-compared across hosts and serial/parallel modes.
    metrics().counter("run.value").inc(3);
    std::string before = metrics().toJson();

    metrics().setHostScoped("fleet.pool.clamped");
    metrics().counter("fleet.pool.clamped").inc(2);
    metrics().setHostScoped("host.gauge");
    metrics().gauge("host.gauge").set(8.0);
    metrics().setHostScoped("host.hist");
    metrics().histogram("host.hist").observe(1.0);

    EXPECT_TRUE(metrics().isHostScoped("fleet.pool.clamped"));
    EXPECT_FALSE(metrics().isHostScoped("run.value"));
    EXPECT_EQ(metrics().counter("fleet.pool.clamped").value(), 2u);
    EXPECT_EQ(metrics().toJson(), before);
}

TEST_F(ObsTest, RegistryResetClearsHostScoping)
{
    metrics().setHostScoped("h");
    EXPECT_TRUE(metrics().isHostScoped("h"));
    metrics().reset();
    EXPECT_FALSE(metrics().isHostScoped("h"));
}

TEST_F(ObsTest, TracerDisabledRecordsNothing)
{
    tracer().setEnabled(false);
    tracer().instant("lane", "event");
    tracer().counter("lane", "value", 1.0);
    tracer().complete("lane", "span", 0, 10);
    EXPECT_EQ(tracer().eventCount(), 0u);
}

TEST_F(ObsTest, TracerChromeExportShape)
{
    uint64_t t = 0;
    tracer().setClock([&] { return t; }, &t);

    t = 5;
    tracer().instant("runtime", "attach", "\"functions\":3");
    tracer().complete("pc3d", "search", 2, 9, "\"windows\":4");
    t = 7;
    tracer().counter("runtime", "nap", 0.25);
    tracer().clearClock(&t);
    EXPECT_EQ(tracer().eventCount(), 3u);

    std::string json = tracer().toChromeJson();
    // Lane metadata in first-use order: runtime=0, pc3d=1.
    EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\","
                        "\"pid\":1,\"tid\":0,\"args\":{\"name\":"
                        "\"runtime\"}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":1,\"args\":{\"name\":\"pc3d\"}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"attach\",\"pid\":1,\"tid\":0,"
                        "\"ts\":5,\"ph\":\"i\",\"s\":\"t\","
                        "\"args\":{\"functions\":3}}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"search\",\"pid\":1,\"tid\":1,"
                        "\"ts\":2,\"ph\":\"X\",\"dur\":7,"
                        "\"args\":{\"windows\":4}}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"nap\",\"pid\":1,\"tid\":0,"
                        "\"ts\":7,\"ph\":\"C\","
                        "\"args\":{\"value\":0.25}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("],\"displayTimeUnit\":\"ns\"}"),
              std::string::npos);
}

TEST_F(ObsTest, TracerClearKeepsClock)
{
    uint64_t t = 11;
    tracer().setClock([&] { return t; }, &t);
    tracer().instant("a", "e");
    tracer().clear();
    EXPECT_EQ(tracer().eventCount(), 0u);
    EXPECT_EQ(tracer().now(), 11u);
    tracer().clearClock(&t);
    EXPECT_EQ(tracer().now(), 0u);
}

TEST_F(ObsTest, ClockStackingNewestWinsRemovalRestores)
{
    int a = 0, b = 0;
    tracer().setClock([] { return uint64_t{10}; }, &a);
    EXPECT_EQ(tracer().now(), 10u);
    tracer().setClock([] { return uint64_t{20}; }, &b);
    EXPECT_EQ(tracer().now(), 20u);
    // Removing the newest restores the previous owner.
    tracer().clearClock(&b);
    EXPECT_EQ(tracer().now(), 10u);
    // Removing a non-top owner leaves the top in charge.
    tracer().setClock([] { return uint64_t{20}; }, &b);
    tracer().clearClock(&a);
    EXPECT_EQ(tracer().now(), 20u);
    tracer().clearClock(&b);
    EXPECT_EQ(tracer().now(), 0u);
}

TEST_F(ObsTest, MachineRegistersTracerClock)
{
    {
        sim::Machine outer;
        outer.runFor(1000);
        EXPECT_EQ(tracer().now(), outer.now());
        {
            // Nested machines (solo references) take over the clock
            // for their lifetime, then hand it back.
            sim::Machine inner;
            inner.runFor(5);
            EXPECT_EQ(tracer().now(), inner.now());
        }
        EXPECT_EQ(tracer().now(), outer.now());
    }
    EXPECT_EQ(tracer().now(), 0u);
}

/** One small PC3D colocation with full observability on. */
std::pair<std::string, std::string>
tracedColocation()
{
    metrics().reset();
    tracer().clear();
    tracer().setEnabled(true);

    datacenter::ColoConfig cfg;
    cfg.service = "web-search";
    cfg.batch = "libquantum";
    cfg.qosTarget = 0.95;
    cfg.qps = 120.0;
    cfg.system = datacenter::System::Pc3d;
    cfg.settleMs = 1500.0;
    cfg.measureMs = 800.0;
    datacenter::runColocationTrace(cfg, 200.0);

    return {tracer().toChromeJson(), metrics().toJson()};
}

TEST_F(ObsTest, IdenticalRunsExportByteIdenticalFiles)
{
    auto [trace1, metrics1] = tracedColocation();
    auto [trace2, metrics2] = tracedColocation();
    EXPECT_EQ(trace1, trace2);
    EXPECT_EQ(metrics1, metrics2);

    // And the run actually recorded the instrumented subsystems.
    EXPECT_NE(trace1.find("\"name\":\"experiment\""),
              std::string::npos);
    EXPECT_NE(trace1.find("\"name\":\"sim.core0\""),
              std::string::npos);
    EXPECT_NE(trace1.find("\"name\":\"attach\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"runtime.ticks\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"sim.l3.misses\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"runtime.compile.cycles_hist\""),
              std::string::npos);
}

} // namespace
} // namespace obs
} // namespace protean
