/**
 * @file
 * Tests for the observability layer: the metrics registry, the
 * cycle-stamped tracer, machine clock registration, and the
 * acceptance property that two identical runs produce byte-identical
 * exports.
 */

#include <gtest/gtest.h>

#include "datacenter/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace protean {
namespace obs {
namespace {

/** Every test starts from a clean global registry/tracer. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        metrics().reset();
        tracer().clear();
        tracer().setEnabled(true);
    }

    void
    TearDown() override
    {
        tracer().setEnabled(false);
        tracer().clear();
        metrics().reset();
    }
};

TEST_F(ObsTest, CounterFindOrCreateAndInc)
{
    Counter &c = metrics().counter("runtime.test.events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Same name -> same handle (hot paths cache the pointer).
    EXPECT_EQ(&metrics().counter("runtime.test.events"), &c);
    EXPECT_EQ(metrics().counter("runtime.test.events").value(), 42u);
}

TEST_F(ObsTest, GaugeKeepsLastValue)
{
    Gauge &g = metrics().gauge("sim.test.ipc");
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(1.5);
    g.set(0.25);
    EXPECT_DOUBLE_EQ(metrics().gauge("sim.test.ipc").value(), 0.25);
}

TEST_F(ObsTest, HistogramBucketsInclusiveUpperEdges)
{
    Histogram &h =
        metrics().histogram("t.lat", std::vector<double>{1, 10, 100});
    h.observe(0.5);   // <= 1
    h.observe(1.0);   // == upper edge -> still bucket 0
    h.observe(1.5);   // (1, 10]
    h.observe(100.0); // (10, 100]
    h.observe(1e9);   // overflow
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 2u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.counts()[3], 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 100.0 + 1e9);
    // Bounds apply only on creation.
    EXPECT_EQ(&metrics().histogram("t.lat", {7.0}), &h);
    EXPECT_EQ(h.bounds().size(), 3u);
}

TEST_F(ObsTest, HistogramDefaultBoundsPowersOfFour)
{
    Histogram &h = metrics().histogram("t.cycles");
    ASSERT_EQ(h.bounds().size(), 13u); // 4^0 .. 4^12
    EXPECT_DOUBLE_EQ(h.bounds().front(), 1.0);
    EXPECT_DOUBLE_EQ(h.bounds().back(), 16'777'216.0);
    EXPECT_EQ(h.counts().size(), 14u);
}

TEST_F(ObsTest, JsonNumberDeterministicAndRoundTrips)
{
    EXPECT_EQ(detail::jsonNumber(3.0), "3");
    EXPECT_EQ(detail::jsonNumber(-2.0), "-2");
    EXPECT_EQ(detail::jsonNumber(0.5), "0.5");
    for (double v : {0.1, 1.0 / 3.0, 1e-12, 123456.789}) {
        std::string s = detail::jsonNumber(v);
        EXPECT_EQ(s, detail::jsonNumber(v));
        EXPECT_DOUBLE_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST_F(ObsTest, JsonEscapeControlCharacters)
{
    EXPECT_EQ(detail::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(detail::jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(detail::jsonEscape("plain.name"), "plain.name");
}

TEST_F(ObsTest, RegistryJsonSortedAndStable)
{
    // Created out of order; exported keys must be sorted.
    metrics().counter("z.last").inc(7);
    metrics().counter("a.first").inc();
    metrics().gauge("m.middle").set(2.5);
    metrics().histogram("h.one", {4.0}).observe(3.0);

    std::string json = metrics().toJson();
    EXPECT_LT(json.find("\"a.first\": 1"), json.find("\"z.last\": 7"));
    EXPECT_NE(json.find("\"m.middle\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"h.one\": {\"bounds\": [4], \"counts\": "
                        "[1,0], \"total\": 1, \"sum\": 3}"),
              std::string::npos);
    // Two snapshots of the same state are byte-identical.
    EXPECT_EQ(json, metrics().toJson());
}

TEST_F(ObsTest, RegistryResetDropsEverything)
{
    metrics().counter("x").inc();
    metrics().gauge("y").set(1.0);
    metrics().histogram("z").observe(1.0);
    EXPECT_EQ(metrics().size(), 3u);
    metrics().reset();
    EXPECT_EQ(metrics().size(), 0u);
    EXPECT_EQ(metrics().counter("x").value(), 0u);
}

TEST_F(ObsTest, TracerDisabledRecordsNothing)
{
    tracer().setEnabled(false);
    tracer().instant("lane", "event");
    tracer().counter("lane", "value", 1.0);
    tracer().complete("lane", "span", 0, 10);
    EXPECT_EQ(tracer().eventCount(), 0u);
}

TEST_F(ObsTest, TracerChromeExportShape)
{
    uint64_t t = 0;
    tracer().setClock([&] { return t; }, &t);

    t = 5;
    tracer().instant("runtime", "attach", "\"functions\":3");
    tracer().complete("pc3d", "search", 2, 9, "\"windows\":4");
    t = 7;
    tracer().counter("runtime", "nap", 0.25);
    tracer().clearClock(&t);
    EXPECT_EQ(tracer().eventCount(), 3u);

    std::string json = tracer().toChromeJson();
    // Lane metadata in first-use order: runtime=0, pc3d=1.
    EXPECT_NE(json.find("{\"name\":\"thread_name\",\"ph\":\"M\","
                        "\"pid\":1,\"tid\":0,\"args\":{\"name\":"
                        "\"runtime\"}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":1,\"args\":{\"name\":\"pc3d\"}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"attach\",\"pid\":1,\"tid\":0,"
                        "\"ts\":5,\"ph\":\"i\",\"s\":\"t\","
                        "\"args\":{\"functions\":3}}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"search\",\"pid\":1,\"tid\":1,"
                        "\"ts\":2,\"ph\":\"X\",\"dur\":7,"
                        "\"args\":{\"windows\":4}}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"nap\",\"pid\":1,\"tid\":0,"
                        "\"ts\":7,\"ph\":\"C\","
                        "\"args\":{\"value\":0.25}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("],\"displayTimeUnit\":\"ns\"}"),
              std::string::npos);
}

TEST_F(ObsTest, TracerClearKeepsClock)
{
    uint64_t t = 11;
    tracer().setClock([&] { return t; }, &t);
    tracer().instant("a", "e");
    tracer().clear();
    EXPECT_EQ(tracer().eventCount(), 0u);
    EXPECT_EQ(tracer().now(), 11u);
    tracer().clearClock(&t);
    EXPECT_EQ(tracer().now(), 0u);
}

TEST_F(ObsTest, ClockStackingNewestWinsRemovalRestores)
{
    int a = 0, b = 0;
    tracer().setClock([] { return uint64_t{10}; }, &a);
    EXPECT_EQ(tracer().now(), 10u);
    tracer().setClock([] { return uint64_t{20}; }, &b);
    EXPECT_EQ(tracer().now(), 20u);
    // Removing the newest restores the previous owner.
    tracer().clearClock(&b);
    EXPECT_EQ(tracer().now(), 10u);
    // Removing a non-top owner leaves the top in charge.
    tracer().setClock([] { return uint64_t{20}; }, &b);
    tracer().clearClock(&a);
    EXPECT_EQ(tracer().now(), 20u);
    tracer().clearClock(&b);
    EXPECT_EQ(tracer().now(), 0u);
}

TEST_F(ObsTest, MachineRegistersTracerClock)
{
    {
        sim::Machine outer;
        outer.runFor(1000);
        EXPECT_EQ(tracer().now(), outer.now());
        {
            // Nested machines (solo references) take over the clock
            // for their lifetime, then hand it back.
            sim::Machine inner;
            inner.runFor(5);
            EXPECT_EQ(tracer().now(), inner.now());
        }
        EXPECT_EQ(tracer().now(), outer.now());
    }
    EXPECT_EQ(tracer().now(), 0u);
}

/** One small PC3D colocation with full observability on. */
std::pair<std::string, std::string>
tracedColocation()
{
    metrics().reset();
    tracer().clear();
    tracer().setEnabled(true);

    datacenter::ColoConfig cfg;
    cfg.service = "web-search";
    cfg.batch = "libquantum";
    cfg.qosTarget = 0.95;
    cfg.qps = 120.0;
    cfg.system = datacenter::System::Pc3d;
    cfg.settleMs = 1500.0;
    cfg.measureMs = 800.0;
    datacenter::runColocationTrace(cfg, 200.0);

    return {tracer().toChromeJson(), metrics().toJson()};
}

TEST_F(ObsTest, IdenticalRunsExportByteIdenticalFiles)
{
    auto [trace1, metrics1] = tracedColocation();
    auto [trace2, metrics2] = tracedColocation();
    EXPECT_EQ(trace1, trace2);
    EXPECT_EQ(metrics1, metrics2);

    // And the run actually recorded the instrumented subsystems.
    EXPECT_NE(trace1.find("\"name\":\"experiment\""),
              std::string::npos);
    EXPECT_NE(trace1.find("\"name\":\"sim.core0\""),
              std::string::npos);
    EXPECT_NE(trace1.find("\"name\":\"attach\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"runtime.ticks\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"sim.l3.misses\""), std::string::npos);
    EXPECT_NE(metrics1.find("\"runtime.compile.cycles_hist\""),
              std::string::npos);
}

} // namespace
} // namespace obs
} // namespace protean
