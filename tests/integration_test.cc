/**
 * @file
 * End-to-end colocation experiments through the harness: the full
 * stack (pcc -> simulated server -> protean runtime -> PC3D / ReQoS)
 * on real registry workloads. These assert the qualitative results
 * the paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "datacenter/experiment.h"

namespace protean {
namespace datacenter {
namespace {

ColoConfig
baseConfig()
{
    ColoConfig cfg;
    cfg.service = "web-search";
    cfg.batch = "libquantum";
    cfg.qosTarget = 0.95;
    cfg.qps = 120.0;
    cfg.settleMs = 5000.0;
    cfg.measureMs = 3000.0;
    return cfg;
}

TEST(Colocation, UnmanagedViolatesQos)
{
    ColoConfig cfg = baseConfig();
    cfg.system = System::None;
    cfg.settleMs = 1500.0;
    ColoResult r = runColocation(cfg);
    EXPECT_LT(r.qos, 0.9);
    EXPECT_GT(r.utilization, 0.9); // batch runs unthrottled
    EXPECT_DOUBLE_EQ(r.nap, 0.0);
}

TEST(Colocation, ReQosMeetsTargetByNapping)
{
    ColoConfig cfg = baseConfig();
    cfg.system = System::ReQos;
    ColoResult r = runColocation(cfg);
    EXPECT_GE(r.qos, cfg.qosTarget - 0.04);
    EXPECT_GT(r.nap, 0.3); // heavy napping required
    EXPECT_LT(r.utilization, 0.7);
}

TEST(Colocation, Pc3dMeetsTargetWithHighUtilization)
{
    ColoConfig cfg = baseConfig();
    cfg.system = System::Pc3d;
    ColoResult r = runColocation(cfg);
    EXPECT_GE(r.qos, cfg.qosTarget - 0.04);
    // Streaming batch: hints fix contention nearly for free.
    EXPECT_GT(r.utilization, 0.7);
    EXPECT_LT(r.nap, 0.4);
    // Search-space accounting populated (Figure 8 plumbing).
    EXPECT_GT(r.fullLoads, 0u);
    EXPECT_GT(r.activeLoads, 0u);
    EXPECT_GE(r.activeLoads, r.maxDepthLoads);
    EXPECT_LT(r.maxDepthLoads, r.fullLoads);
    // Runtime stays within the datacenter overhead budget.
    EXPECT_LT(r.runtimeShare, 0.02);
}

TEST(Colocation, Pc3dBeatsReQos)
{
    ColoConfig cfg = baseConfig();
    cfg.system = System::ReQos;
    ColoResult reqos = runColocation(cfg);
    cfg.system = System::Pc3d;
    ColoResult pc3d = runColocation(cfg);
    EXPECT_GT(pc3d.utilization, 1.2 * reqos.utilization);
    EXPECT_GE(pc3d.qos, cfg.qosTarget - 0.04);
    EXPECT_GE(reqos.qos, cfg.qosTarget - 0.04);
}

TEST(Colocation, TraceRecordsTimeline)
{
    ColoConfig cfg = baseConfig();
    cfg.system = System::Pc3d;
    cfg.settleMs = 1200.0;
    cfg.measureMs = 800.0;
    ColoResult r = runColocationTrace(cfg, 100.0);
    ASSERT_GE(r.trace.size(), 18u);
    // Time advances monotonically; fields are sane.
    for (size_t i = 1; i < r.trace.size(); ++i)
        EXPECT_GT(r.trace[i].tMs, r.trace[i - 1].tMs);
    for (const auto &s : r.trace) {
        EXPECT_GE(s.qos, 0.0);
        EXPECT_LE(s.qos, 1.25);
        EXPECT_GE(s.nap, 0.0);
        EXPECT_LE(s.nap, 1.0);
        EXPECT_GE(s.runtimeShare, 0.0);
    }
}

TEST(Colocation, SoloBpcMemoized)
{
    sim::MachineConfig mcfg;
    double a = soloBatchBpc("er-naive", mcfg);
    double b = soloBatchBpc("er-naive", mcfg);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
}

TEST(Colocation, LowLoadNeedsNoMitigation)
{
    // At low QPS the service is insensitive (idle spin dominates):
    // PC3D should keep the batch at (nearly) full speed.
    ColoConfig cfg = baseConfig();
    cfg.system = System::Pc3d;
    cfg.qps = 5.0;
    ColoResult r = runColocation(cfg);
    EXPECT_GT(r.utilization, 0.85);
    EXPECT_LT(r.nap, 0.15);
}

} // namespace
} // namespace datacenter
} // namespace protean
