/**
 * @file
 * Tests for the protean code compiler: edge-virtualization policy,
 * data-region layout and metadata embedding, EVT initialization, and
 * the key deployability property — protean binaries run correctly
 * with no runtime attached, at negligible overhead.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/serializer.h"
#include "pcc/pcc.h"
#include "sim/machine.h"
#include "support/compression.h"
#include "workloads/registry.h"

namespace protean {
namespace pcc {
namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Reg;

/** Module with a single-block leaf, a multi-block callee, and main
 *  calling both; result lands in global "out". */
ir::Module
makeCallModule()
{
    ir::Module m("calls");
    ir::GlobalId out = m.addGlobal("out", 8);
    IRBuilder b(m);

    b.startFunction("leaf", 1); // 1 block: not virtualized
    Reg two = b.constInt(2);
    Reg r = b.mul(0, two);
    b.ret(r);

    b.startFunction("looper", 1); // >1 block: virtualized
    Reg one = b.constInt(1);
    Reg acc = b.constInt(0);
    Reg i = b.constInt(0);
    BlockId loop = b.newBlock();
    BlockId done = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(acc, ir::Opcode::Add, acc, 0u);
    b.binaryInto(i, ir::Opcode::Add, i, one);
    Reg c = b.cmpLt(i, one);
    b.condBr(c, loop, done);
    b.setBlock(done);
    b.ret(acc);

    b.startFunction("main", 0);
    Reg base = b.globalAddr(out);
    Reg x = b.constInt(21);
    Reg a = b.call(0, {x});    // leaf: 42
    Reg v = b.call(1, {a});    // looper: 42
    b.store(base, v);
    b.ret();
    return m;
}

TEST(EdgePolicy, MultiBlockCalleesOnly)
{
    ir::Module m = makeCallModule();
    auto map = chooseVirtualizedCallees(
        m, EdgePolicy::MultiBlockCallees);
    EXPECT_EQ(map.count(0), 0u); // leaf: single block
    EXPECT_EQ(map.count(1), 1u); // looper has several blocks
    EXPECT_EQ(map.count(2), 0u); // main is straight-line
}

TEST(EdgePolicy, AllAndNone)
{
    ir::Module m = makeCallModule();
    EXPECT_EQ(chooseVirtualizedCallees(m, EdgePolicy::None).size(),
              0u);
    EXPECT_EQ(chooseVirtualizedCallees(m, EdgePolicy::AllCallees)
              .size(), m.numFunctions());
}

TEST(Pcc, HeaderFieldsCorrect)
{
    ir::Module m = makeCallModule();
    isa::Image image = compile(m);
    EXPECT_TRUE(image.isProtean());
    EXPECT_EQ(image.initialWord(isa::kHdrMagic), isa::kImageMagic);
    EXPECT_EQ(image.initialWord(isa::kHdrEvtBase), image.evtBase);
    EXPECT_EQ(image.initialWord(isa::kHdrEvtCount), image.evtCount);
    EXPECT_EQ(image.initialWord(isa::kHdrIrBase), image.irBase);
    EXPECT_EQ(image.initialWord(isa::kHdrIrSize), image.irSizeBytes);
    EXPECT_EQ(image.initialWord(isa::kHdrDataSize),
              image.layout.sizeBytes);
    EXPECT_GT(image.irSizeBytes, 0u);
}

TEST(Pcc, EvtPointsAtFunctionEntries)
{
    ir::Module m = makeCallModule();
    isa::Image image = compile(m);
    ASSERT_GT(image.evtCount, 0u);
    for (uint32_t slot = 0; slot < image.evtCount; ++slot) {
        uint64_t target =
            image.initialWord(image.evtBase + 8ULL * slot);
        ir::FuncId f = image.evtSlotFunc[slot];
        EXPECT_EQ(target, image.functions[f].entry);
    }
}

TEST(Pcc, EmbeddedIrRoundtrips)
{
    ir::Module m = makeCallModule();
    isa::Image image = compile(m);
    std::vector<uint8_t> blob(
        image.initialData.begin() + image.irBase,
        image.initialData.begin() + image.irBase +
            image.irSizeBytes);
    auto back = ir::deserializeCompressed(blob);
    EXPECT_EQ(ir::toString(m), ir::toString(*back));
}

TEST(Pcc, GlobalsAligned)
{
    ir::Module m = makeCallModule();
    isa::Image image = compile(m);
    for (uint64_t base : image.layout.globalBase) {
        EXPECT_EQ(base % 64, 0u);
        EXPECT_GE(base, isa::kHdrBytes);
    }
    EXPECT_GE(image.layout.sizeBytes, image.layout.globalBase.back());
}

TEST(Pcc, GlobalsDoNotOverlapMetadata)
{
    ir::Module m = makeCallModule();
    isa::Image image = compile(m);
    uint64_t meta_end = image.irBase + image.irSizeBytes;
    for (uint64_t base : image.layout.globalBase)
        EXPECT_GE(base, meta_end);
}

TEST(Pcc, VirtualizedCallsAreIndirect)
{
    ir::Module m = makeCallModule();
    isa::Image image = compile(m);
    const isa::FunctionInfo &main_fi =
        *image.functionAt(image.entryPoint());
    int direct = 0, indirect = 0;
    for (isa::CodeAddr a = main_fi.entry; a < main_fi.end; ++a) {
        if (image.code[a].op == isa::MOp::CallDirect)
            ++direct;
        if (image.code[a].op == isa::MOp::CallIndirect)
            ++indirect;
    }
    EXPECT_EQ(direct, 1);   // leaf
    EXPECT_EQ(indirect, 1); // looper
}

TEST(Pcc, ProteanBinaryRunsWithoutRuntime)
{
    ir::Module m1 = makeCallModule();
    isa::Image plain = compilePlain(m1);
    ir::Module m2 = makeCallModule();
    isa::Image protean = compile(m2);

    auto result = [](const isa::Image &img) {
        sim::Machine machine;
        sim::Process &proc = machine.load(img, 0);
        machine.runToCompletion(10'000'000);
        EXPECT_EQ(proc.state(), sim::ProcState::Halted);
        return proc.readWord(img.layout.base(0));
    };
    EXPECT_EQ(result(plain), 42u);
    EXPECT_EQ(result(protean), 42u);
}

TEST(Pcc, VirtualizationOverheadSmall)
{
    // The headline claim: protean binaries cost <1% with no runtime.
    workloads::BatchSpec spec = workloads::batchSpec("milc");
    spec.targetStaticLoads = 0; // skip cold padding for speed

    auto ipc_of = [&](bool protean) {
        ir::Module m = workloads::buildBatch(spec);
        isa::Image img = protean ? compile(m) : compilePlain(m);
        sim::Machine machine;
        machine.load(img, 0);
        machine.runFor(200'000); // warm
        sim::HpmCounters before = machine.core(0).hpm();
        machine.runFor(3'000'000);
        sim::HpmCounters d = machine.core(0).hpm() - before;
        return d.ipc();
    };

    double plain = ipc_of(false);
    double prot = ipc_of(true);
    EXPECT_GT(prot, 0.0);
    EXPECT_GT(prot / plain, 0.98);
}

TEST(Pcc, MissingEntryIsFatal)
{
    ir::Module m("noentry");
    IRBuilder b(m);
    b.startFunction("f", 0);
    b.ret();
    EXPECT_DEATH({ compile(m); }, "no entry function");
}

TEST(Pcc, PlainImageHasNoMetadata)
{
    ir::Module m = makeCallModule();
    isa::Image image = compilePlain(m);
    EXPECT_FALSE(image.isProtean());
    EXPECT_EQ(image.evtCount, 0u);
    EXPECT_EQ(image.irSizeBytes, 0u);
    // Every call is direct.
    for (const auto &inst : image.code)
        EXPECT_NE(inst.op, isa::MOp::CallIndirect);
}

TEST(Pcc, AllCalleesPolicyVirtualizesLeaf)
{
    ir::Module m = makeCallModule();
    PccOptions opts;
    opts.policy = EdgePolicy::AllCallees;
    isa::Image image = compile(m, opts);
    const isa::FunctionInfo &main_fi = image.function(2);
    for (isa::CodeAddr a = main_fi.entry; a < main_fi.end; ++a)
        EXPECT_NE(image.code[a].op, isa::MOp::CallDirect);
}

} // namespace
} // namespace pcc
} // namespace protean
