/**
 * @file
 * Tests for bench::ArgParser, in particular the duplicate-flag
 * rejection: `--seed=1 --seed=2` used to resolve silently as
 * last-one-wins, which corrupts sweeps driven by generated command
 * lines. Duplicates of built-ins, custom value flags and custom
 * switches must all be fatal; `-v` stays repeatable.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../bench/common.h"

namespace protean {
namespace bench {
namespace {

/** Build a mutable argv from string literals (argv[0] included). */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args)
        : strings_(std::move(args))
    {
        strings_.insert(strings_.begin(), "bench_args_test");
        for (std::string &s : strings_)
            ptrs_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

TEST(BenchArgsTest, ParsesBuiltinsAndCustomFlags)
{
    uint64_t iters = 7;
    double rate = 0.5;
    bool quick = false;
    ArgParser parser;
    parser.addFlag("iters", &iters, "iterations");
    parser.addFlag("rate", &rate, "a rate");
    parser.addSwitch("quick", &quick, "fast mode");

    Argv a({"--seed=123", "--parallel=2", "--iters=9",
            "--rate=0.25", "--quick"});
    ObsConfig cfg = parser.parse(a.argc(), a.argv());
    EXPECT_EQ(cfg.seed, 123u);
    EXPECT_EQ(cfg.parallel, 2u);
    EXPECT_EQ(iters, 9u);
    EXPECT_DOUBLE_EQ(rate, 0.25);
    EXPECT_TRUE(quick);
}

TEST(BenchArgsTest, DuplicateBuiltinFlagIsFatal)
{
    ArgParser parser;
    Argv a({"--seed=1", "--seed=2"});
    EXPECT_DEATH(parser.parse(a.argc(), a.argv()),
                 "--seed given more than once");
}

TEST(BenchArgsTest, DuplicateCustomValueFlagIsFatal)
{
    uint64_t iters = 0;
    ArgParser parser;
    parser.addFlag("iters", &iters, "iterations");
    Argv a({"--iters=1", "--iters=2"});
    EXPECT_DEATH(parser.parse(a.argc(), a.argv()),
                 "--iters given more than once");
}

TEST(BenchArgsTest, DuplicateCustomSwitchIsFatal)
{
    bool quick = false;
    ArgParser parser;
    parser.addSwitch("quick", &quick, "fast mode");
    Argv a({"--quick", "--quick"});
    EXPECT_DEATH(parser.parse(a.argc(), a.argv()),
                 "--quick given more than once");
}

TEST(BenchArgsTest, RepeatedVerbositySwitchIsAllowed)
{
    ArgParser parser;
    Argv a({"-v", "-v", "--seed=5"});
    ObsConfig cfg = parser.parse(a.argc(), a.argv());
    EXPECT_EQ(cfg.seed, 5u);
    setLogLevel(LogLevel::Warn); // undo -v for later tests
}

TEST(BenchArgsTest, DistinctFlagsDoNotCollide)
{
    // One flag's name being a prefix of another must not trip the
    // duplicate check or misroute values.
    uint64_t ms = 0, mslong = 0;
    ArgParser parser;
    parser.addFlag("ms", &ms, "short");
    parser.addFlag("ms-long", &mslong, "long");
    Argv a({"--ms=3", "--ms-long=4"});
    parser.parse(a.argc(), a.argv());
    EXPECT_EQ(ms, 3u);
    EXPECT_EQ(mslong, 4u);
}

} // namespace
} // namespace bench
} // namespace protean
