/**
 * @file
 * Unit tests for the IR: construction, verification, printing,
 * serialization, dominators, and loop analysis.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/dominators.h"
#include "ir/loops.h"
#include "ir/printer.h"
#include "ir/serializer.h"
#include "ir/verifier.h"

namespace protean {
namespace ir {
namespace {

/** Straight-line function: returns (a + b) * 3. */
Module
makeSimpleModule()
{
    Module m("simple");
    IRBuilder b(m);
    b.startFunction("main", 2);
    Reg sum = b.add(0, 1);
    Reg three = b.constInt(3);
    Reg out = b.mul(sum, three);
    b.ret(out);
    return m;
}

/** Diamond CFG: entry -> {left, right} -> join. */
Module
makeDiamond()
{
    Module m("diamond");
    IRBuilder b(m);
    b.startFunction("main", 1);
    BlockId left = b.newBlock();
    BlockId right = b.newBlock();
    BlockId join = b.newBlock();
    Reg zero = b.constInt(0);
    Reg c = b.cmpNe(0, zero);
    b.condBr(c, left, right);
    b.setBlock(left);
    b.br(join);
    b.setBlock(right);
    b.br(join);
    b.setBlock(join);
    b.ret(zero);
    return m;
}

/** Doubly nested loop with loads at both depths. */
Module
makeNestedLoops()
{
    Module m("nested");
    GlobalId g = m.addGlobal("data", 4096);
    IRBuilder b(m);
    b.startFunction("main", 0);
    Reg base = b.globalAddr(g);
    Reg one = b.constInt(1);
    Reg n = b.constInt(4);
    Reg i = b.constInt(0);
    Reg j = b.func().newReg();
    b.func().noteReg(j);
    Reg acc = b.constInt(0);

    BlockId outer = b.newBlock();
    BlockId inner = b.newBlock();
    BlockId after_inner = b.newBlock();
    BlockId exit = b.newBlock();
    b.br(outer);

    b.setBlock(outer);
    Reg x = b.load(base, 0); // depth-1 load
    b.binaryInto(acc, Opcode::Add, acc, x);
    b.constInto(j, 0);
    b.br(inner);

    b.setBlock(inner);
    Reg y = b.load(base, 8); // depth-2 load
    b.binaryInto(acc, Opcode::Add, acc, y);
    b.binaryInto(j, Opcode::Add, j, one);
    Reg c1 = b.cmpLt(j, n);
    b.condBr(c1, inner, after_inner);

    b.setBlock(after_inner);
    b.binaryInto(i, Opcode::Add, i, one);
    Reg c2 = b.cmpLt(i, n);
    b.condBr(c2, outer, exit);

    b.setBlock(exit);
    b.ret(acc);
    return m;
}

TEST(IrBuilder, SimpleFunctionShape)
{
    Module m = makeSimpleModule();
    const Function &fn = *m.findFunction("main");
    EXPECT_EQ(fn.numParams(), 2u);
    EXPECT_EQ(fn.numBlocks(), 1u);
    EXPECT_EQ(fn.instructionCount(), 4u);
    EXPECT_TRUE(verify(m));
}

TEST(IrBuilder, NewRegsAreSequential)
{
    Module m("regs");
    IRBuilder b(m);
    Function &fn = b.startFunction("f", 2);
    EXPECT_EQ(fn.newReg(), 2u);
    EXPECT_EQ(fn.newReg(), 3u);
    EXPECT_EQ(fn.numRegs(), 4u);
}

TEST(IrModule, FunctionLookup)
{
    Module m = makeSimpleModule();
    EXPECT_NE(m.findFunction("main"), nullptr);
    EXPECT_EQ(m.findFunction("nope"), nullptr);
    EXPECT_EQ(m.function(0).name(), "main");
}

TEST(IrModule, RenumberLoadsIsDense)
{
    Module m = makeNestedLoops();
    uint32_t n = m.renumberLoads();
    EXPECT_EQ(n, 2u);
    std::vector<LoadId> seen;
    for (const auto &bb : m.function(0).blocks()) {
        for (const auto &inst : bb.insts) {
            if (inst.op == Opcode::Load)
                seen.push_back(inst.loadId);
        }
    }
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 0u);
    EXPECT_EQ(seen[1], 1u);
}

TEST(IrVerifier, AcceptsWellFormed)
{
    Module m = makeDiamond();
    std::vector<std::string> errors;
    EXPECT_TRUE(verify(m, &errors))
        << (errors.empty() ? "" : errors.front());
}

TEST(IrVerifier, RejectsMissingTerminator)
{
    Module m("bad");
    IRBuilder b(m);
    b.startFunction("f", 0);
    b.constInt(1); // no terminator
    std::vector<std::string> errors;
    EXPECT_FALSE(verify(m, &errors));
    EXPECT_FALSE(errors.empty());
}

TEST(IrVerifier, RejectsBadRegister)
{
    Module m("bad");
    IRBuilder b(m);
    b.startFunction("f", 0);
    b.ret();
    // Corrupt: reference an out-of-range register.
    Instruction inst;
    inst.op = Opcode::Mov;
    inst.dest = 0;
    inst.srcs = {999};
    m.function(0).noteReg(0);
    m.function(0).block(0).insts.insert(
        m.function(0).block(0).insts.begin(), inst);
    EXPECT_FALSE(verify(m));
}

TEST(IrVerifier, RejectsBadBranchTarget)
{
    Module m("bad");
    IRBuilder b(m);
    b.startFunction("f", 0);
    b.ret();
    Instruction &term = m.function(0).block(0).insts.back();
    term.op = Opcode::Br;
    term.targets[0] = 42;
    EXPECT_FALSE(verify(m));
}

TEST(IrVerifier, RejectsCallArityMismatch)
{
    Module m("bad");
    IRBuilder b(m);
    b.startFunction("callee", 2);
    b.ret();
    b.startFunction("caller", 0);
    Reg x = b.constInt(1);
    b.call(0, {x}); // needs 2 args
    b.ret();
    EXPECT_FALSE(verify(m));
}

TEST(IrVerifier, RejectsInconsistentRetArity)
{
    Module m("bad");
    IRBuilder b(m);
    b.startFunction("f", 1);
    BlockId other = b.newBlock();
    Reg z = b.constInt(0);
    Reg c = b.cmpEq(0, z);
    BlockId t = b.newBlock();
    b.condBr(c, t, other);
    b.setBlock(t);
    b.ret(z);
    b.setBlock(other);
    b.ret(); // void vs value
    EXPECT_FALSE(verify(m));
}

TEST(IrPrinter, ContainsStructure)
{
    Module m = makeNestedLoops();
    m.renumberLoads();
    std::string text = toString(m);
    EXPECT_NE(text.find("module nested"), std::string::npos);
    EXPECT_NE(text.find("global @g0 data"), std::string::npos);
    EXPECT_NE(text.find("func main"), std::string::npos);
    EXPECT_NE(text.find("load"), std::string::npos);
    EXPECT_NE(text.find("load#1"), std::string::npos);
    EXPECT_NE(text.find("condbr"), std::string::npos);
}

/** Deep structural comparison via the printer. */
void
expectModulesEqual(const Module &a, const Module &b)
{
    EXPECT_EQ(toString(a), toString(b));
    EXPECT_EQ(a.numLoads(), b.numLoads());
}

TEST(IrSerializer, RoundtripSimple)
{
    Module m = makeSimpleModule();
    m.renumberLoads();
    auto bytes = serialize(m);
    auto back = deserialize(bytes);
    expectModulesEqual(m, *back);
}

TEST(IrSerializer, RoundtripNested)
{
    Module m = makeNestedLoops();
    m.renumberLoads();
    auto back = deserialize(serialize(m));
    expectModulesEqual(m, *back);
    EXPECT_TRUE(verify(*back));
}

TEST(IrSerializer, CompressedRoundtrip)
{
    Module m = makeNestedLoops();
    m.renumberLoads();
    auto packed = serializeCompressed(m);
    auto back = deserializeCompressed(packed);
    expectModulesEqual(m, *back);
}

TEST(IrSerializer, RoundtripMultiFunction)
{
    Module m("multi");
    GlobalId g = m.addGlobal("g", 128);
    IRBuilder b(m);
    b.startFunction("leaf", 1);
    Reg base = b.globalAddr(g);
    Reg v = b.load(base, 16);
    Reg s = b.add(v, 0);
    b.ret(s);
    b.startFunction("main", 0);
    Reg x = b.constInt(5);
    Reg r = b.call(0, {x});
    b.ret(r);
    m.renumberLoads();
    auto back = deserialize(serialize(m));
    expectModulesEqual(m, *back);
}

TEST(Dominators, StraightLine)
{
    Module m = makeSimpleModule();
    DominatorTree dom(m.function(0));
    EXPECT_TRUE(dom.dominates(0, 0));
    EXPECT_TRUE(dom.reachable(0));
}

TEST(Dominators, Diamond)
{
    Module m = makeDiamond();
    DominatorTree dom(m.function(0));
    // Entry dominates everything.
    for (BlockId bb = 0; bb < 4; ++bb)
        EXPECT_TRUE(dom.dominates(0, bb));
    // Neither branch arm dominates the join.
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_FALSE(dom.dominates(2, 3));
    EXPECT_EQ(dom.idom(3), 0u);
}

TEST(Dominators, UnreachableBlock)
{
    Module m("unreach");
    IRBuilder b(m);
    b.startFunction("f", 0);
    BlockId dead = b.newBlock();
    b.ret();
    b.setBlock(dead);
    b.ret();
    DominatorTree dom(m.function(0));
    EXPECT_TRUE(dom.reachable(0));
    EXPECT_FALSE(dom.reachable(dead));
    EXPECT_FALSE(dom.dominates(0, dead));
}

TEST(Loops, NestedDepths)
{
    Module m = makeNestedLoops();
    LoopInfo loops(m.function(0));
    EXPECT_EQ(loops.maxDepth(), 2u);
    EXPECT_EQ(loops.loops().size(), 2u);
    EXPECT_EQ(loops.depth(0), 0u); // entry
    EXPECT_EQ(loops.depth(1), 1u); // outer header
    EXPECT_EQ(loops.depth(2), 2u); // inner
    EXPECT_EQ(loops.depth(3), 1u); // after_inner (outer latch)
    EXPECT_EQ(loops.depth(4), 0u); // exit
    EXPECT_TRUE(loops.atMaxDepth(2));
    EXPECT_FALSE(loops.atMaxDepth(1));
}

TEST(Loops, NoLoops)
{
    Module m = makeDiamond();
    LoopInfo loops(m.function(0));
    EXPECT_EQ(loops.maxDepth(), 0u);
    EXPECT_TRUE(loops.loops().empty());
    EXPECT_FALSE(loops.atMaxDepth(0));
}

TEST(Loops, SelfLoop)
{
    Module m("self");
    IRBuilder b(m);
    b.startFunction("f", 0);
    BlockId body = b.newBlock();
    BlockId exit = b.newBlock();
    Reg z = b.constInt(0);
    b.br(body);
    b.setBlock(body);
    Reg c = b.cmpEq(z, z);
    b.condBr(c, body, exit);
    b.setBlock(exit);
    b.ret();
    LoopInfo loops(m.function(0));
    EXPECT_EQ(loops.maxDepth(), 1u);
    ASSERT_EQ(loops.loops().size(), 1u);
    EXPECT_EQ(loops.loops()[0].header, body);
    EXPECT_EQ(loops.loops()[0].blocks.size(), 1u);
}

TEST(Loops, SharedHeaderMerged)
{
    // Two back edges into the same header form one loop.
    Module m("shared");
    IRBuilder b(m);
    b.startFunction("f", 0);
    BlockId header = b.newBlock();
    BlockId a = b.newBlock();
    BlockId c = b.newBlock();
    BlockId exit = b.newBlock();
    Reg z = b.constInt(0);
    b.br(header);
    b.setBlock(header);
    Reg cond = b.cmpEq(z, z);
    b.condBr(cond, a, c);
    b.setBlock(a);
    b.condBr(cond, header, exit); // back edge 1
    b.setBlock(c);
    b.br(header); // back edge 2
    b.setBlock(exit);
    b.ret();
    LoopInfo loops(m.function(0));
    ASSERT_EQ(loops.loops().size(), 1u);
    EXPECT_EQ(loops.loops()[0].blocks.size(), 3u);
    EXPECT_EQ(loops.maxDepth(), 1u);
}

TEST(Instruction, TerminatorClassification)
{
    Instruction i;
    i.op = Opcode::Br;
    EXPECT_TRUE(i.isTerminator());
    i.op = Opcode::Ret;
    EXPECT_TRUE(i.isTerminator());
    i.op = Opcode::Load;
    EXPECT_FALSE(i.isTerminator());
}

TEST(Instruction, OpcodeNamesUnique)
{
    std::set<std::string> names;
    for (uint8_t k = 0; k < kNumOpcodes; ++k)
        names.insert(opcodeName(static_cast<Opcode>(k)));
    EXPECT_EQ(names.size(), kNumOpcodes);
}

} // namespace
} // namespace ir
} // namespace protean
