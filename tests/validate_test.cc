/**
 * @file
 * Tests for the translation-validation install gate (DESIGN.md §12):
 * the sandboxed PISA interpreter agrees with the real simulator core,
 * tier 1 proves clean variants and refutes every injected miscompile
 * class, tier 2 refutes the executable classes (and is documented
 * blind to the one class only tier 1 can see), verdicts are
 * deterministic, the CompileService rejects-and-recompiles at install
 * time so no bad build ever reaches a shard or a replica, and
 * faulted+validated fleet runs stay byte-identical serial vs
 * parallel.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fleet/fleet.h"
#include "ir/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcc/pcc.h"
#include "sim/machine.h"
#include "validate/sandbox.h"
#include "validate/validator.h"

namespace protean {
namespace validate {
namespace {

using ir::IRBuilder;

class ValidateTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::metrics().reset();
        obs::tracer().clear();
    }

    void
    TearDown() override
    {
        obs::tracer().clear();
        obs::metrics().reset();
    }
};

/**
 * A module whose kernel exercises every miscompile class: stores
 * (droppable), loads (NT-maskable), and non-commutative arithmetic
 * on registers holding distinct values (swappable). Values derive
 * from the parameter so differential inputs actually distinguish
 * operand orders (a = n+3 and b = 7n are never equal).
 */
struct TestProgram
{
    ir::Module module{"valmod"};
    ir::GlobalId buf;
    ir::FuncId kernel = ir::kInvalidId;
    isa::Image image;
    codegen::VirtualizationMap slots;

    TestProgram() : buf(module.addGlobal("buf", 64))
    {
        IRBuilder b(module);
        ir::Function &kf = b.startFunction("kernel", 1);
        kernel = kf.id();
        ir::Reg n{0};
        ir::Reg base = b.globalAddr(buf);
        ir::Reg v1 = b.add(n, b.constInt(3));
        b.store(base, v1, 0);
        ir::Reg v2 = b.mul(n, b.constInt(7));
        b.store(base, v2, 8);
        ir::Reg a = b.load(base, 0);
        ir::Reg c = b.load(base, 8);
        ir::Reg s = b.sub(a, c);
        ir::Reg q = b.div(a, c);
        ir::Reg acc = b.add(s, q);
        b.store(base, acc, 16);
        ir::Reg t = b.load(base, 16);
        ir::BlockId bt = b.newBlock();
        ir::BlockId bf = b.newBlock();
        ir::BlockId join = b.newBlock();
        ir::Reg cond = b.cmpLt(t, a);
        b.condBr(cond, bt, bf);
        b.setBlock(bt);
        b.store(base, a, 24);
        b.br(join);
        b.setBlock(bf);
        b.store(base, c, 24);
        b.br(join);
        b.setBlock(join);
        ir::Reg r = b.load(base, 24);
        b.ret(b.add(r, acc));

        b.startFunction("main", 0);
        b.callVoid(kernel, {b.constInt(9)});
        b.ret();

        image = pcc::compile(module);
        slots = pcc::chooseVirtualizedCallees(
            module, pcc::EdgePolicy::MultiBlockCallees);
    }

    /** A prefix NT mask over the module's renumbered loads. */
    BitVector
    mask(size_t depth) const
    {
        BitVector m(module.numLoads());
        for (size_t i = 0; i < depth && i < m.size(); ++i)
            m.set(i);
        return m;
    }

    Validator
    validator(const ValidateConfig &cfg = ValidateConfig{}) const
    {
        return Validator(module, image, slots, cfg);
    }

    runtime::CompileJob
    job(uint64_t key, const BitVector &m) const
    {
        runtime::CompileJob j;
        j.contentKey = key;
        j.func = kernel;
        j.costCycles = 1000;
        j.codeBytes = 256;
        j.name = "kernel";
        j.ntMask = m;
        return j;
    }
};

// ---------------------------------------------------------------- //
//                             Sandbox                              //
// ---------------------------------------------------------------- //

TEST_F(ValidateTest, SandboxMatchesSimCoreExecution)
{
    // The tier-2 sandbox must mirror Core::execute exactly; run the
    // same plain image both ways and compare architectural state and
    // HPM-style counts.
    TestProgram p;
    isa::Image plain = pcc::compilePlain(p.module);

    sim::Machine machine;
    machine.load(plain, 0);
    machine.runToCompletion(50'000'000);
    const sim::HpmCounters &hpm = machine.core(0).hpm();

    Sandbox box(plain);
    SandboxResult r = box.run(plain.code, plain.entryPoint(),
                              {0, 0, 0, 0}, 1'000'000);

    EXPECT_EQ(r.trap, Trap::None);
    // The core counts hints as instructions; the sandbox keeps them
    // out of `steps` so step budgets cut original and NT variants at
    // the same logical point.
    EXPECT_EQ(r.steps + r.hints, hpm.instructions);
    EXPECT_EQ(r.loads, hpm.loads);
    EXPECT_EQ(r.stores, hpm.stores);
    EXPECT_EQ(r.branches, hpm.branches);
    for (uint32_t i = 0; i < isa::kNumMachineRegs; ++i)
        EXPECT_EQ(r.regs[i], machine.core(0).reg(i)) << "r" << i;
}

// ---------------------------------------------------------------- //
//                    Tier 1: structural checker                    //
// ---------------------------------------------------------------- //

TEST_F(ValidateTest, Tier1ProvesCleanVariantsAtEveryDepth)
{
    TestProgram p;
    Validator v = p.validator();
    ASSERT_GT(p.module.numLoads(), 0u);
    for (size_t depth = 0; depth <= p.module.numLoads(); ++depth) {
        BitVector m = p.mask(depth);
        codegen::LoweredFunction cand = v.lowerVariant(p.kernel, m);
        std::string reason;
        EXPECT_EQ(v.structuralCheck(p.kernel, m, cand, &reason),
                  Tier1::Equivalent)
            << "depth " << depth << ": " << reason;
    }
}

TEST_F(ValidateTest, Tier1RefutesEveryMiscompileClass)
{
    TestProgram p;
    Validator v = p.validator();
    BitVector m = p.mask(2);
    for (uint32_t kind = 0; kind < faults::kNumMiscompileKinds;
         ++kind) {
        for (uint64_t site = 0; site < 5; ++site) {
            faults::MiscompileSpec spec;
            spec.kind = static_cast<faults::MiscompileKind>(kind);
            spec.siteSeed = site;
            codegen::LoweredFunction cand =
                v.lowerVariant(p.kernel, m);
            ASSERT_TRUE(applyMiscompile(cand.code, spec))
                << faults::miscompileKindName(spec.kind);
            std::string reason;
            EXPECT_EQ(v.structuralCheck(p.kernel, m, cand, &reason),
                      Tier1::Refuted)
                << faults::miscompileKindName(spec.kind) << " site "
                << site << " not refuted (" << reason << ")";
        }
    }
}

TEST_F(ValidateTest, Tier1RefutesMaskSubstitution)
{
    // A correct lowering of the WRONG mask must not pass for the
    // requested one: the gate checks what was asked, not merely that
    // the stream is self-consistent.
    TestProgram p;
    Validator v = p.validator();
    codegen::LoweredFunction deeper =
        v.lowerVariant(p.kernel, p.mask(3));
    EXPECT_EQ(v.structuralCheck(p.kernel, p.mask(1), deeper),
              Tier1::Refuted);
    codegen::LoweredFunction clean =
        v.lowerVariant(p.kernel, p.mask(0));
    EXPECT_EQ(v.structuralCheck(p.kernel, p.mask(2), clean),
              Tier1::Refuted);
}

// ---------------------------------------------------------------- //
//                  Tier 2: differential execution                  //
// ---------------------------------------------------------------- //

TEST_F(ValidateTest, Tier2RefutesExecutableMiscompiles)
{
    TestProgram p;
    Validator v = p.validator();
    BitVector m = p.mask(2);
    for (faults::MiscompileKind kind :
         {faults::MiscompileKind::DroppedStore,
          faults::MiscompileKind::SwappedOperand}) {
        faults::MiscompileSpec spec;
        spec.kind = kind;
        spec.siteSeed = 1;
        codegen::LoweredFunction cand = v.lowerVariant(p.kernel, m);
        ASSERT_TRUE(applyMiscompile(cand.code, spec));
        uint64_t steps = 0;
        std::string reason;
        EXPECT_FALSE(v.differentialCheck(p.kernel, m, cand, &steps,
                                         &reason))
            << faults::miscompileKindName(kind);
        EXPECT_GT(steps, 0u);
    }
}

TEST_F(ValidateTest, FlippedNtBitIsInvisibleToTier2ButNotTier1)
{
    // The asymmetry that makes tier-1 refutations final: an NT-bit
    // flip has zero architectural effect, so differential execution
    // passes it — only the structural tier can catch this class.
    TestProgram p;
    Validator v = p.validator();
    BitVector m = p.mask(2);
    faults::MiscompileSpec spec;
    spec.kind = faults::MiscompileKind::FlippedNtBit;
    spec.siteSeed = 0;
    codegen::LoweredFunction cand = v.lowerVariant(p.kernel, m);
    ASSERT_TRUE(applyMiscompile(cand.code, spec));

    uint64_t steps = 0;
    EXPECT_TRUE(v.differentialCheck(p.kernel, m, cand, &steps));

    EXPECT_EQ(v.structuralCheck(p.kernel, m, cand), Tier1::Refuted);
    // And the full verdict (any mode) rejects via tier 1.
    ValidateConfig cfg;
    cfg.mode = Mode::Diff;
    Verdict verdict = p.validator(cfg).validate(
        p.job(1, m), &spec);
    EXPECT_FALSE(verdict.pass);
    EXPECT_EQ(verdict.tier, 1);
}

// ---------------------------------------------------------------- //
//                      Verdicts and policy                         //
// ---------------------------------------------------------------- //

TEST_F(ValidateTest, InconclusiveTier1FollowsModePolicy)
{
    TestProgram p;
    BitVector m = p.mask(1);

    // A zero walk budget forces tier 1 inconclusive. Ir mode has no
    // tier 2: unproven code must not install.
    ValidateConfig ir;
    ir.irCheckMaxInsts = 0;
    ir.mode = Mode::Ir;
    Verdict v1 = p.validator(ir).validate(p.job(1, m));
    EXPECT_FALSE(v1.pass);
    EXPECT_EQ(v1.tier, 1);
    EXPECT_FALSE(v1.escalated);

    // Diff mode escalates the same case and tier 2 proves it.
    ValidateConfig diff = ir;
    diff.mode = Mode::Diff;
    Verdict v2 = p.validator(diff).validate(p.job(1, m));
    EXPECT_TRUE(v2.pass);
    EXPECT_EQ(v2.tier, 2);
    EXPECT_TRUE(v2.escalated);
    EXPECT_GT(v2.cycles, v1.cycles); // tier 2 work is charged

    // Paranoid re-checks even a conclusive tier-1 pass.
    ValidateConfig para;
    para.mode = Mode::Paranoid;
    Verdict v3 = p.validator(para).validate(p.job(1, m));
    EXPECT_TRUE(v3.pass);
    EXPECT_EQ(v3.tier, 2);
    EXPECT_TRUE(v3.escalated);
}

TEST_F(ValidateTest, VerdictsAreDeterministic)
{
    TestProgram p;
    BitVector m = p.mask(2);
    faults::MiscompileSpec spec;
    spec.kind = faults::MiscompileKind::SwappedOperand;
    spec.siteSeed = 7;
    ValidateConfig cfg;
    cfg.mode = Mode::Paranoid;

    Validator a = p.validator(cfg);
    Validator b = p.validator(cfg);
    const faults::MiscompileSpec *injections[] = {nullptr, &spec};
    for (const faults::MiscompileSpec *inject : injections) {
        Verdict va = a.validate(p.job(5, m), inject);
        Verdict vb = b.validate(p.job(5, m), inject);
        EXPECT_EQ(va.pass, vb.pass);
        EXPECT_EQ(va.tier, vb.tier);
        EXPECT_EQ(va.escalated, vb.escalated);
        EXPECT_EQ(va.cycles, vb.cycles);
        EXPECT_EQ(va.reason, vb.reason);
        // Double-run on the same instance too.
        Verdict va2 = a.validate(p.job(5, m), inject);
        EXPECT_EQ(va.pass, va2.pass);
        EXPECT_EQ(va.cycles, va2.cycles);
    }
}

TEST_F(ValidateTest, ModeParsingRoundTrips)
{
    for (Mode m :
         {Mode::Off, Mode::Ir, Mode::Diff, Mode::Paranoid})
        EXPECT_EQ(parseMode(modeName(m)), m);
}

// ---------------------------------------------------------------- //
//                   The service install gate                       //
// ---------------------------------------------------------------- //

TEST_F(ValidateTest, GateRejectsRecompilesThenInstalls)
{
    TestProgram p;
    Validator validator = p.validator();
    fleet::ServiceConfig cfg;
    cfg.numShards = 2;
    cfg.replication = 2;
    fleet::CompileService svc(cfg);
    svc.setValidator(&validator);

    faults::FaultPlan plan{faults::FaultConfig{}};
    faults::MiscompileSpec spec;
    spec.kind = faults::MiscompileKind::DroppedStore;
    spec.siteSeed = 0;
    BitVector m = p.mask(2);
    const uint64_t key = 42;
    plan.addMiscompile(key, 0, spec); // first attempt only
    svc.setFaultPlan(&plan);

    runtime::CompileOutcome out;
    svc.submit(0, p.job(key, m), 100,
               [&](const runtime::CompileOutcome &o) { out = o; });
    svc.advance(10'000'000);

    // The miscompiled first build was rejected before install; the
    // clean recompile installed and answered the waiter.
    const fleet::ServiceStats &st = svc.stats();
    EXPECT_FALSE(out.failed);
    EXPECT_EQ(st.miscompilesInjected, 1u);
    EXPECT_EQ(st.validateFails, 1u);
    EXPECT_EQ(st.validateRecompiles, 1u);
    EXPECT_EQ(st.validatePasses, 1u);
    EXPECT_EQ(st.compiles, 2u);
    EXPECT_GT(st.validateCycles, 0u);
    // The defining guarantee: zero bad installs, anywhere.
    EXPECT_EQ(st.miscompilesInstalled, 0u);
    // Primary and replica hold the (validated) variant; the replica
    // fan-out only ever saw the passing build.
    EXPECT_EQ(st.replicaInstalls, 1u);
    for (uint32_t s : svc.replicaSet(key))
        EXPECT_TRUE(svc.shardHasKey(s, key)) << "shard " << s;
    // The reject delayed the response: validation + recompile are
    // accounted like compile time, not hidden.
    EXPECT_GT(out.readyCycle, 2 * 1000u);
}

TEST_F(ValidateTest, GateGivesUpAfterBoundedAttempts)
{
    TestProgram p;
    Validator validator = p.validator();
    fleet::ServiceConfig cfg;
    cfg.numShards = 1;
    fleet::CompileService svc(cfg);
    svc.setValidator(&validator);

    faults::FaultPlan plan{faults::FaultConfig{}};
    faults::MiscompileSpec spec;
    spec.kind = faults::MiscompileKind::SwappedOperand;
    spec.siteSeed = 3;
    BitVector m = p.mask(1);
    const uint64_t key = 7;
    for (uint32_t attempt = 0; attempt < 8; ++attempt)
        plan.addMiscompile(key, attempt, spec);
    svc.setFaultPlan(&plan);

    runtime::CompileOutcome out;
    bool answered = false;
    svc.submit(0, p.job(key, m), 100,
               [&](const runtime::CompileOutcome &o) {
                   out = o;
                   answered = true;
               });
    svc.advance(50'000'000);

    // Every attempt came out miscompiled; the gate refused them all
    // and failed the waiter explicitly (clients retry/fall back)
    // rather than installing garbage or stalling forever.
    ASSERT_TRUE(answered);
    EXPECT_TRUE(out.failed);
    const fleet::ServiceStats &st = svc.stats();
    EXPECT_EQ(st.validateFails, 4u);
    EXPECT_EQ(st.compiles, 4u);
    EXPECT_EQ(st.validateRecompiles, 3u);
    EXPECT_EQ(st.validatePasses, 0u);
    EXPECT_EQ(st.miscompilesInstalled, 0u);
    EXPECT_FALSE(svc.shardHasKey(0, key));
}

// ---------------------------------------------------------------- //
//                         Fleet-level                              //
// ---------------------------------------------------------------- //

TEST_F(ValidateTest, CleanFleetHasZeroFalseRejects)
{
    fleet::FleetConfig cfg;
    cfg.numServers = 3;
    cfg.meanRequestMs = 2.0;
    ASSERT_EQ(cfg.validate.mode, Mode::Ir); // gate on by default
    fleet::FleetSim sim(cfg);
    sim.run(40.0);

    fleet::FleetStats st = sim.stats();
    ASSERT_GT(st.service.compiles, 0u);
    EXPECT_EQ(st.service.validatePasses, st.service.compiles);
    EXPECT_EQ(st.service.validateFails, 0u);
    EXPECT_EQ(st.service.miscompilesInstalled, 0u);
    // Tier-1 overhead stays a small fraction of compile work.
    EXPECT_LT(static_cast<double>(st.service.validateCycles),
              0.05 * static_cast<double>(st.service.compileCycles));
}

TEST_F(ValidateTest, MiscompilingFleetInstallsNothingBad)
{
    fleet::FleetConfig cfg;
    cfg.numServers = 3;
    cfg.meanRequestMs = 2.0;
    cfg.service.replication = 2;
    // High enough that several of the handful of distinct content
    // keys draw a miscompile; the ladder is on because keys whose
    // every attempt miscompiles degrade to a local compile.
    cfg.faults.miscompileProb = 0.9;
    cfg.retry.enabled = true;
    cfg.retry.attemptTimeoutCycles = 30000;
    cfg.retry.hedgeAfterCycles = 15000;
    cfg.validate.mode = Mode::Diff;
    fleet::FleetSim sim(cfg);
    sim.run(40.0);

    fleet::FleetStats st = sim.stats();
    ASSERT_GT(st.service.miscompilesInjected, 0u);
    EXPECT_EQ(st.service.miscompilesInstalled, 0u);
    EXPECT_GE(st.service.validateFails,
              st.service.miscompilesInjected);
    EXPECT_GT(st.service.validateRecompiles, 0u);
}

TEST_F(ValidateTest, FaultedValidatedRunsByteIdenticalSerialParallel)
{
    auto runOnce = [](const std::string &mpath, uint32_t workers) {
        obs::metrics().reset();
        fleet::FleetConfig cfg;
        cfg.numServers = 4;
        cfg.meanRequestMs = 2.0;
        cfg.faults.miscompileProb = 0.9;
        cfg.faults.shardCrashMeanCycles = 80000.0;
        cfg.faults.requestDropProb = 0.03;
        cfg.retry.enabled = true;
        cfg.service.replication = 2;
        cfg.validate.mode = Mode::Diff;
        cfg.telemetry.enabled = true;
        cfg.parallelWorkers = workers;
        fleet::FleetSim sim(cfg);
        sim.run(40.0);
        sim.flushTelemetry();
        sim.exportObsMetrics();
        obs::metrics().writeJson(mpath);
        return sim.telemetry()->toJson();
    };
    std::string m1 = testing::TempDir() + "validate_m1.json";
    std::string m2 = testing::TempDir() + "validate_m2.json";
    std::string t1 = runOnce(m1, 1);
    std::string t4 = runOnce(m2, 4);

    auto slurp = [](const std::string &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string serial = slurp(m1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, slurp(m2));
    EXPECT_EQ(t1, t4);
    // The rollups actually carry the gate series.
    EXPECT_NE(t1.find("validate_pass"), std::string::npos);
    EXPECT_NE(serial.find("fleet.validate.pass"),
              std::string::npos);
    std::remove(m1.c_str());
    std::remove(m2.c_str());
}

} // namespace
} // namespace validate
} // namespace protean
