/**
 * @file
 * Tests for the workload generators and registry: structural
 * properties (verification, static load counts matching Figure 8),
 * behavioral properties (streaming vs pointer-chase, phase
 * alternation), the service model, and the load driver.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/loops.h"
#include "ir/verifier.h"
#include "pcc/pcc.h"
#include "sim/machine.h"
#include "workloads/driver.h"
#include "workloads/registry.h"

namespace protean {
namespace workloads {
namespace {

TEST(Registry, AllSpecNamesResolve)
{
    for (const auto &name : specBenchmarkNames()) {
        EXPECT_TRUE(hasBatchSpec(name)) << name;
        EXPECT_EQ(batchSpec(name).name, name);
    }
    EXPECT_EQ(specBenchmarkNames().size(), 18u);
}

TEST(Registry, ContentiousSetMatchesPaper)
{
    const auto &names = contentiousBatchNames();
    EXPECT_EQ(names.size(), 10u);
    for (const auto &n : names)
        EXPECT_TRUE(hasBatchSpec(n)) << n;
    EXPECT_EQ(names.front(), "blockie");
    EXPECT_EQ(names.back(), "sphinx3");
}

TEST(Registry, WebserviceNames)
{
    EXPECT_EQ(webserviceNames().size(), 3u);
    for (const auto &n : webserviceNames())
        EXPECT_EQ(serviceSpec(n).name, n);
    // PARSEC external app also present.
    EXPECT_EQ(serviceSpec("streamcluster").name, "streamcluster");
}

TEST(Registry, UnknownNamesAreFatal)
{
    EXPECT_DEATH({ batchSpec("nonesuch"); }, "unknown workload");
    EXPECT_DEATH({ serviceSpec("nonesuch"); }, "unknown service");
}

/** Figure 8's static load counts per contentious application. */
class Fig8LoadCounts
    : public ::testing::TestWithParam<std::pair<const char *, uint32_t>>
{};

TEST_P(Fig8LoadCounts, StaticLoadCountMatches)
{
    auto [name, count] = GetParam();
    ir::Module m = buildBatch(batchSpec(name));
    EXPECT_EQ(m.numLoads(), count);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Fig8LoadCounts,
    ::testing::Values(std::make_pair("blockie", 64u),
                      std::make_pair("bst", 70u),
                      std::make_pair("er-naive", 25u),
                      std::make_pair("sledge", 35u),
                      std::make_pair("bzip2", 2582u),
                      std::make_pair("milc", 3632u),
                      std::make_pair("soplex", 15666u),
                      std::make_pair("libquantum", 636u),
                      std::make_pair("lbm", 257u),
                      std::make_pair("sphinx3", 4963u)));

class BatchBuilds : public ::testing::TestWithParam<std::string>
{};

TEST_P(BatchBuilds, VerifiesAndRuns)
{
    BatchSpec spec = batchSpec(GetParam());
    spec.targetStaticLoads = 0; // skip padding for speed
    ir::Module m = buildBatch(spec);
    EXPECT_TRUE(ir::verify(m));
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    machine.load(image, 0);
    // Long enough for pointer-chase initializers to finish.
    machine.runFor(4'000'000);
    // Batch programs run forever and retire work.
    EXPECT_GT(machine.core(0).hpm().instructions, 10'000u);
    EXPECT_GT(machine.core(0).hpm().loads, 1'000u);
    EXPECT_EQ(machine.allHalted(), false);
}

INSTANTIATE_TEST_SUITE_P(AllSpec, BatchBuilds,
                         ::testing::ValuesIn(specBenchmarkNames()));

TEST(BatchGenerator, HotLoopLoadsAtMaxDepth)
{
    ir::Module m = buildBatch(batchSpec("libquantum"));
    const ir::Function *hot = m.findFunction("hot_0");
    ASSERT_NE(hot, nullptr);
    ir::LoopInfo loops(*hot);
    EXPECT_EQ(loops.maxDepth(), 2u);
    // Streaming loads live in the inner loop; outer loads at depth 1.
    size_t inner = 0, outer = 0;
    for (const auto &bb : hot->blocks()) {
        for (const auto &inst : bb.insts) {
            if (inst.op != ir::Opcode::Load)
                continue;
            if (loops.atMaxDepth(bb.id))
                ++inner;
            else if (loops.depth(bb.id) >= 1)
                ++outer;
        }
    }
    EXPECT_EQ(inner, batchSpec("libquantum").streamLoadsPerIter);
    EXPECT_EQ(outer, batchSpec("libquantum").outerLoads);
}

TEST(BatchGenerator, ColdFunctionsNeverExecute)
{
    BatchSpec spec = batchSpec("er-naive");
    ir::Module m = buildBatch(spec);
    ASSERT_NE(m.findFunction("cold_0"), nullptr);
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    std::set<std::string> seen;
    for (int i = 0; i < 500; ++i) {
        machine.runFor(2'000);
        const isa::FunctionInfo *fi =
            proc.image().functionAt(machine.core(0).pc());
        if (fi)
            seen.insert(fi->name);
    }
    for (const auto &name : seen)
        EXPECT_EQ(name.rfind("cold_", 0), std::string::npos) << name;
}

TEST(BatchGenerator, PointerChaseVisitsManyLines)
{
    BatchSpec spec = batchSpec("bst");
    spec.targetStaticLoads = 0;
    spec.streamBytes = 1 << 16; // small for a fast init
    ir::Module m = buildBatch(spec);
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    machine.load(image, 0);
    machine.runFor(3'000'000);
    // A full-period chase touches the whole array: L1 must miss a
    // lot (random-ish order, 64 KiB > L1).
    const sim::HpmCounters &h = machine.core(0).hpm();
    EXPECT_GT(h.l1Misses, h.loads / 8);
}

TEST(BatchGenerator, PhasesAlternate)
{
    BatchSpec spec = batchSpec("bzip2"); // 2 phases
    spec.targetStaticLoads = 0;
    spec.callsPerPhase = 4;
    ir::Module m = buildBatch(spec);
    ASSERT_EQ(spec.phases, 2u);
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    std::set<std::string> seen;
    for (int i = 0; i < 3000 && seen.size() < 2; ++i) {
        machine.runFor(3'000);
        const isa::FunctionInfo *fi =
            proc.image().functionAt(machine.core(0).pc());
        if (fi && fi->name.rfind("hot_", 0) == 0)
            seen.insert(fi->name);
    }
    EXPECT_EQ(seen.size(), 2u);
}

TEST(BatchGenerator, RejectsBadGeometry)
{
    BatchSpec spec;
    spec.streamBytes = 1000; // not a power of two
    EXPECT_DEATH({ buildBatch(spec); }, "power of two");
}

TEST(ServiceGenerator, BuildsAndIdles)
{
    ir::Module m = buildService(serviceSpec("web-search"));
    EXPECT_TRUE(ir::verify(m));
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    machine.load(image, 0);
    machine.runFor(500'000);
    const sim::HpmCounters &h = machine.core(0).hpm();
    // With no requests the service spins on an L1-resident line
    // (essentially every load hits L1) at an IPC deliberately close
    // to request-processing IPC (see service.cc).
    EXPECT_GT(h.ipc(), 0.25);
    EXPECT_LT(h.ipc(), 0.6);
    EXPECT_LT(h.l1Misses, h.loads / 100);
}

TEST(ServiceGenerator, ProcessesRequests)
{
    ir::Module m = buildService(serviceSpec("web-search"));
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    uint64_t req = globalAddr(image, m, kServiceReqGlobal);
    uint64_t done = globalAddr(image, m, kServiceDoneGlobal);

    proc.writeWord(req, 5);
    machine.runFor(machine.msToCycles(100));
    EXPECT_EQ(proc.readWord(done), 5u);
    EXPECT_EQ(proc.readWord(req), 0u);
}

TEST(ServiceGenerator, LoadRaisesMemoryActivity)
{
    ir::Module m = buildService(serviceSpec("web-search"));
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    uint64_t req = globalAddr(image, m, kServiceReqGlobal);

    machine.runFor(machine.msToCycles(50));
    uint64_t idle_misses = machine.core(0).hpm().l1Misses;
    proc.writeWord(req, 50);
    machine.runFor(machine.msToCycles(50));
    uint64_t busy_misses =
        machine.core(0).hpm().l1Misses - idle_misses;
    // Request processing reaches past L1; the idle spin does not.
    EXPECT_GT(busy_misses, idle_misses * 5 + 1000);
}

TEST(Driver, GlobalAddrFindsAndRejects)
{
    ir::Module m = buildService(serviceSpec("graph-analytics"));
    isa::Image image = pcc::compilePlain(m);
    EXPECT_GE(globalAddr(image, m, "svc_ws"), isa::kHdrBytes);
    EXPECT_DEATH({ globalAddr(image, m, "nope"); }, "no global");
}

TEST(Driver, IssuesAtConfiguredRate)
{
    ir::Module m = buildService(serviceSpec("web-search"));
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    ServiceDriver driver(machine, proc,
                         globalAddr(image, m, kServiceReqGlobal),
                         globalAddr(image, m, kServiceDoneGlobal));
    driver.setQps(60.0);
    driver.start();
    machine.runFor(machine.msToCycles(1000));
    EXPECT_NEAR(static_cast<double>(driver.issued()), 60.0, 4.0);
    // The service keeps up at this rate.
    EXPECT_NEAR(static_cast<double>(driver.completed()), 60.0, 6.0);
}

TEST(Driver, TraceChangesRate)
{
    ir::Module m = buildService(serviceSpec("web-search"));
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    ServiceDriver driver(machine, proc,
                         globalAddr(image, m, kServiceReqGlobal),
                         globalAddr(image, m, kServiceDoneGlobal));
    driver.setTrace({{0.0, 20.0}, {500.0, 200.0}});
    driver.start();
    machine.runFor(machine.msToCycles(400));
    EXPECT_DOUBLE_EQ(driver.currentQps(), 20.0);
    uint64_t early = driver.issued();
    machine.runFor(machine.msToCycles(400));
    EXPECT_DOUBLE_EQ(driver.currentQps(), 200.0);
    uint64_t late = driver.issued() - early;
    EXPECT_GT(late, early * 3);
}

TEST(Driver, RejectsUnorderedTrace)
{
    ir::Module m = buildService(serviceSpec("web-search"));
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    ServiceDriver driver(machine, proc, 64, 72);
    EXPECT_DEATH({ driver.setTrace({{100.0, 1.0}, {0.0, 2.0}}); },
                 "out of order");
}

TEST(ServiceSensitivity, StreamerDegradesServiceThroughput)
{
    // End-to-end contention check at workload level: a streaming
    // batch app sharing the LLC slows request processing.
    auto request_cycles = [&](bool with_streamer) {
        ir::Module m = buildService(serviceSpec("web-search"));
        isa::Image image = pcc::compilePlain(m);
        sim::Machine machine;
        sim::Process &proc = machine.load(image, 0);

        BatchSpec bs = batchSpec("libquantum");
        bs.targetStaticLoads = 0;
        ir::Module bm = buildBatch(bs);
        isa::Image bimg = pcc::compilePlain(bm);
        if (with_streamer)
            machine.load(bimg, 1);

        uint64_t req = globalAddr(image, m, kServiceReqGlobal);
        uint64_t done = globalAddr(image, m, kServiceDoneGlobal);
        ServiceDriver driver(machine, proc, req, done);
        driver.setQps(150.0);
        driver.start();
        machine.runFor(machine.msToCycles(1500));
        return driver.completed();
    };
    uint64_t alone = request_cycles(false);
    uint64_t contended = request_cycles(true);
    EXPECT_LT(static_cast<double>(contended),
              0.9 * static_cast<double>(alone));
}

} // namespace
} // namespace workloads
} // namespace protean
