/**
 * @file
 * Property-based tests: invariants that must hold across the whole
 * workload registry, random cache access streams, and randomized
 * search oracles.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/printer.h"
#include "ir/serializer.h"
#include "ir/verifier.h"
#include "pc3d/search.h"
#include "pcc/pcc.h"
#include "sim/cache.h"
#include "sim/machine.h"
#include "support/random.h"
#include "workloads/registry.h"

namespace protean {
namespace {

// --------------------------------------------------------------
// Registry-wide structural invariants.

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
  protected:
    ir::Module
    build()
    {
        workloads::BatchSpec spec =
            workloads::batchSpec(GetParam());
        return workloads::buildBatch(spec);
    }
};

TEST_P(EveryWorkload, SerializerRoundtripIsExact)
{
    ir::Module m = build();
    auto back = ir::deserializeCompressed(
        ir::serializeCompressed(m));
    EXPECT_EQ(ir::toString(m), ir::toString(*back));
    EXPECT_EQ(m.numLoads(), back->numLoads());
    EXPECT_TRUE(ir::verify(*back));
}

TEST_P(EveryWorkload, ImageStructuralInvariants)
{
    ir::Module m = build();
    isa::Image image = pcc::compile(m);

    // Function ranges tile the code array without gaps or overlap.
    isa::CodeAddr cursor = 0;
    for (const auto &fi : image.functions) {
        EXPECT_EQ(fi.entry, cursor) << fi.name;
        EXPECT_GT(fi.end, fi.entry) << fi.name;
        cursor = fi.end;
    }
    EXPECT_EQ(cursor, image.code.size());

    for (const auto &fi : image.functions) {
        for (isa::CodeAddr a = fi.entry; a < fi.end; ++a) {
            const isa::MInst &inst = image.code[a];
            switch (inst.op) {
              case isa::MOp::Jmp:
              case isa::MOp::Bnz:
                // Intra-function branches stay in the function.
                EXPECT_GE(inst.target, fi.entry);
                EXPECT_LT(inst.target, fi.end);
                break;
              case isa::MOp::CallDirect:
                // Every direct call is patched to a function entry.
                ASSERT_NE(inst.target, isa::kInvalidCodeAddr);
                EXPECT_NE(image.functionAt(inst.target), nullptr);
                EXPECT_EQ(image.functionAt(inst.target)->entry,
                          inst.target);
                break;
              case isa::MOp::CallIndirect:
                EXPECT_LT(inst.evtSlot, image.evtCount);
                break;
              default:
                break;
            }
        }
    }

    // Every EVT slot initially targets the entry of its function.
    for (uint32_t slot = 0; slot < image.evtCount; ++slot) {
        ir::FuncId f = image.evtSlotFunc[slot];
        EXPECT_EQ(image.initialWord(image.evtBase + 8ULL * slot),
                  image.functions[f].entry);
    }

    // The static loads in the machine code carry valid LoadIds.
    std::set<ir::LoadId> seen;
    for (const auto &inst : image.code) {
        if (inst.op == isa::MOp::Load &&
            inst.loadId != ir::kInvalidId) {
            EXPECT_LT(inst.loadId, m.numLoads());
            seen.insert(inst.loadId);
        }
    }
    EXPECT_EQ(seen.size(), m.numLoads());
}

TEST_P(EveryWorkload, ProteanBinaryRunsAndMakesProgress)
{
    ir::Module m = build();
    isa::Image image = pcc::compile(m);
    sim::Machine machine;
    machine.load(image, 0);
    machine.runFor(4'000'000);
    EXPECT_GT(machine.core(0).hpm().instructions, 10'000u);
    EXPECT_FALSE(machine.allHalted());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryWorkload,
    ::testing::ValuesIn(workloads::specBenchmarkNames()));

INSTANTIATE_TEST_SUITE_P(
    Smash, EveryWorkload,
    ::testing::Values("blockie", "bst", "er-naive", "sledge"));

// --------------------------------------------------------------
// Cache invariants under random access streams.

struct CacheGeom
{
    uint32_t size;
    uint32_t ways;
};

class CacheProperties : public ::testing::TestWithParam<CacheGeom>
{};

TEST_P(CacheProperties, ContentsSubsetOfAccessed)
{
    sim::CacheConfig cfg;
    cfg.sizeBytes = GetParam().size;
    cfg.ways = GetParam().ways;
    cfg.lineBytes = 64;
    sim::Cache cache("prop", cfg);

    Rng rng(GetParam().size + GetParam().ways);
    std::set<uint64_t> filled;
    for (int i = 0; i < 5000; ++i) {
        uint64_t addr = rng.nextBelow(1 << 20) & ~63ULL;
        bool nt = rng.nextBool(0.3);
        if (!cache.access(addr))
            cache.fill(addr, nt);
        filled.insert(addr / 64);
    }
    // Every resident line was filled at some point; capacity holds.
    uint64_t resident = cache.linesOwnedBy(0, 1 << 20);
    EXPECT_LE(resident, cfg.sizeBytes / 64);
    for (uint64_t line : filled) {
        if (cache.contains(line * 64)) {
            // contains() implies a prior fill (trivially true since
            // we only fill accessed lines); re-access must hit.
            EXPECT_TRUE(cache.access(line * 64));
        }
    }
}

TEST_P(CacheProperties, HitAfterFillUntilCapacityPressure)
{
    sim::CacheConfig cfg;
    cfg.sizeBytes = GetParam().size;
    cfg.ways = GetParam().ways;
    cfg.lineBytes = 64;
    sim::Cache cache("prop", cfg);

    // Fill exactly one set to capacity: all ways must be resident.
    uint32_t sets = cfg.sizeBytes / (cfg.ways * 64);
    for (uint32_t w = 0; w < cfg.ways; ++w)
        cache.fill(static_cast<uint64_t>(w) * sets * 64, false);
    for (uint32_t w = 0; w < cfg.ways; ++w)
        EXPECT_TRUE(cache.contains(
            static_cast<uint64_t>(w) * sets * 64));
    // One more fill in the set evicts exactly one line.
    cache.fill(static_cast<uint64_t>(cfg.ways) * sets * 64, false);
    uint32_t resident = 0;
    for (uint32_t w = 0; w <= cfg.ways; ++w) {
        resident += cache.contains(
            static_cast<uint64_t>(w) * sets * 64);
    }
    EXPECT_EQ(resident, cfg.ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperties,
    ::testing::Values(CacheGeom{1024, 2}, CacheGeom{4096, 4},
                      CacheGeom{16384, 8}, CacheGeom{131072, 16}));

// --------------------------------------------------------------
// Search correctness over randomized oracles.

struct SearchOracle
{
    std::vector<double> benefit;
    std::vector<double> cost;
    double base = 0.0;

    double
    qos(const BitVector &mask, double nap) const
    {
        double c = base;
        for (size_t i = 0; i < benefit.size(); ++i) {
            if (mask.test(i))
                c -= benefit[i];
        }
        c = std::max(c, 0.0);
        return std::min(1.0, 1.0 - c * (1.0 - nap));
    }

    double
    bps(const BitVector &mask, double nap) const
    {
        double slow = 0.0;
        for (size_t i = 0; i < cost.size(); ++i) {
            if (mask.test(i))
                slow += cost[i];
        }
        return (1.0 - nap) * std::max(0.0, 1.0 - slow);
    }
};

class RandomOracles : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomOracles, ResultIsFeasibleAndBeatsNapOnly)
{
    Rng rng(GetParam());
    size_t n = 2 + rng.nextBelow(10);
    SearchOracle oracle;
    oracle.base = 0.1 + 0.4 * rng.nextDouble();
    for (size_t i = 0; i < n; ++i) {
        oracle.benefit.push_back(
            rng.nextDouble() * oracle.base / n * 1.5);
        oracle.cost.push_back(rng.nextDouble() * 0.1);
    }

    pc3d::SearchConfig cfg;
    cfg.qosTarget = 0.95;
    cfg.napEpsilon = 0.02;
    pc3d::VariantSearch search(cfg, n);
    size_t guard = 0;
    while (!search.done() && guard++ < 5000) {
        auto req = search.current();
        pc3d::Measurement meas;
        meas.hostBps = oracle.bps(req.mask, req.nap);
        meas.minQos = oracle.qos(req.mask, req.nap);
        search.onMeasurement(meas);
    }
    ASSERT_TRUE(search.done());

    // 1. The chosen operating point satisfies QoS (within epsilon of
    //    the binary-search resolution).
    double q = oracle.qos(search.bestMask(), search.bestNap());
    EXPECT_GE(q, cfg.qosTarget - 0.02) << "seed " << GetParam();

    // 2. It is at least as good as the nap-only configuration at
    //    ITS minimum feasible nap (the ReQoS operating point).
    BitVector none(n);
    double nap_only = 1.0;
    for (double f = 0.0; f <= 0.99; f += 0.005) {
        if (oracle.qos(none, f) >= cfg.qosTarget) {
            nap_only = f;
            break;
        }
    }
    double reqos_bps = oracle.bps(none, nap_only);
    EXPECT_GE(search.bestBps(), reqos_bps - 0.03)
        << "seed " << GetParam();

    // 3. Window count is bounded by the O(n log 1/eps) budget.
    size_t budget = (n + 2) * 12 + 8;
    EXPECT_LE(search.windowsUsed(), budget);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOracles,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
} // namespace protean
