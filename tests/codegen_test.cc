/**
 * @file
 * Tests for the compiler backend: lowering correctness (validated by
 * executing the generated code on the simulator), non-temporal mask
 * application (the Figure 2 variants), and the optimization passes.
 */

#include <gtest/gtest.h>

#include "codegen/cost.h"
#include "codegen/lowering.h"
#include "codegen/passes.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "pcc/pcc.h"
#include "sim/machine.h"

namespace protean {
namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Opcode;
using ir::Reg;

/** Run a module's main() to completion and return the halted
 *  process. */
sim::Process &
execute(sim::Machine &machine, ir::Module &module)
{
    isa::Image image = pcc::compilePlain(module);
    sim::Process &proc = machine.load(image, 0);
    machine.runToCompletion(50'000'000);
    EXPECT_EQ(proc.state(), sim::ProcState::Halted);
    return proc;
}

/** Build main() that stores `value-producing` code's result to g. */
struct ResultProgram
{
    ir::Module module{"prog"};
    ir::GlobalId out;

    explicit ResultProgram()
        : out(module.addGlobal("out", 64))
    {
    }

    uint64_t
    run()
    {
        sim::Machine machine;
        sim::Process &proc = execute(machine, module);
        isa::Image image = pcc::compilePlain(module);
        return proc.readWord(image.layout.base(out));
    }
};

TEST(Lowering, ArithmeticSemantics)
{
    ResultProgram p;
    IRBuilder b(p.module);
    b.startFunction("main", 0);
    Reg base = b.globalAddr(p.out);
    Reg a = b.constInt(100);
    Reg c3 = b.constInt(3);
    Reg v = b.mul(a, c3);        // 300
    Reg c7 = b.constInt(7);
    v = b.sub(v, c7);            // 293
    Reg c10 = b.constInt(10);
    Reg q = b.div(v, c10);       // 29
    Reg r = b.mod(v, c10);       // 3
    Reg x = b.shl(q, r);         // 29 << 3 = 232
    b.store(base, x);
    b.ret();
    EXPECT_EQ(p.run(), 232u);
}

TEST(Lowering, CompareAndBitwise)
{
    ResultProgram p;
    IRBuilder b(p.module);
    b.startFunction("main", 0);
    Reg base = b.globalAddr(p.out);
    Reg a = b.constInt(0xf0);
    Reg c = b.constInt(0x0f);
    Reg o = b.orOp(a, c);     // 0xff
    Reg n = b.andOp(o, a);    // 0xf0
    Reg x = b.xorOp(n, c);    // 0xff
    Reg lt = b.cmpLt(c, a);   // 1
    Reg sum = b.add(x, lt);   // 0x100
    b.store(base, sum);
    b.ret();
    EXPECT_EQ(p.run(), 0x100u);
}

TEST(Lowering, DivModByZero)
{
    ResultProgram p;
    IRBuilder b(p.module);
    b.startFunction("main", 0);
    Reg base = b.globalAddr(p.out);
    Reg a = b.constInt(17);
    Reg z = b.constInt(0);
    Reg q = b.div(a, z); // defined as 0
    Reg r = b.mod(a, z); // defined as a
    Reg s = b.add(q, r);
    b.store(base, s);
    b.ret();
    EXPECT_EQ(p.run(), 17u);
}

TEST(Lowering, LoopComputesSum)
{
    // sum of 1..10 via a loop = 55
    ResultProgram p;
    IRBuilder b(p.module);
    b.startFunction("main", 0);
    Reg base = b.globalAddr(p.out);
    Reg one = b.constInt(1);
    Reg n = b.constInt(10);
    Reg i = b.constInt(0);
    Reg acc = b.constInt(0);
    BlockId loop = b.newBlock();
    BlockId done = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(i, Opcode::Add, i, one);
    b.binaryInto(acc, Opcode::Add, acc, i);
    Reg c = b.cmpLt(i, n);
    b.condBr(c, loop, done);
    b.setBlock(done);
    b.store(base, acc);
    b.ret();
    EXPECT_EQ(p.run(), 55u);
}

TEST(Lowering, CallsAndRegisterWindows)
{
    // callee(a, b) = a*10 + b; caller must keep its registers.
    ResultProgram p;
    IRBuilder b(p.module);
    b.startFunction("callee", 2);
    Reg ten = b.constInt(10);
    Reg t = b.mul(0, ten);
    Reg s = b.add(t, 1);
    b.ret(s);

    b.startFunction("main", 0);
    Reg base = b.globalAddr(p.out);
    Reg a = b.constInt(4);
    Reg c = b.constInt(2);
    Reg r1 = b.call(0, {a, c});   // 42
    // A second call must not clobber r1 (window restore).
    Reg r2 = b.call(0, {c, a});   // 24
    Reg hundred = b.constInt(100);
    Reg hi = b.mul(r1, hundred);
    Reg sum = b.add(hi, r2);      // 4224
    b.store(base, sum);
    b.ret();
    EXPECT_EQ(p.run(), 4224u);
}

TEST(Lowering, RecursionFibonacci)
{
    // fib(12) = 144 via naive recursion.
    ResultProgram p;
    IRBuilder b(p.module);
    ir::Function &fib = b.startFunction("fib", 1);
    BlockId rec = b.newBlock();
    BlockId basecase = b.newBlock();
    Reg two = b.constInt(2);
    Reg c = b.cmpLt(0, two);
    b.condBr(c, basecase, rec);
    b.setBlock(basecase);
    b.ret(0);
    b.setBlock(rec);
    Reg one = b.constInt(1);
    Reg n1 = b.sub(0, one);
    Reg f1 = b.call(fib.id(), {n1});
    Reg n2 = b.sub(0, two);
    Reg f2 = b.call(fib.id(), {n2});
    Reg s = b.add(f1, f2);
    b.ret(s);

    b.startFunction("main", 0);
    Reg base = b.globalAddr(p.out);
    Reg n = b.constInt(12);
    Reg r = b.call(fib.id(), {n});
    b.store(base, r);
    b.ret();
    EXPECT_EQ(p.run(), 144u);
}

TEST(Lowering, LoadStoreRoundtrip)
{
    ResultProgram p;
    ir::GlobalId arr = p.module.addGlobal("arr", 256);
    IRBuilder b(p.module);
    b.startFunction("main", 0);
    Reg base = b.globalAddr(arr);
    Reg out = b.globalAddr(p.out);
    Reg v = b.constInt(777);
    b.store(base, v, 64);
    Reg x = b.load(base, 64);
    b.store(out, x);
    b.ret();
    EXPECT_EQ(p.run(), 777u);
}

/** Two-load region lowered under each of the four Figure 2 masks. */
class Figure2Variants : public ::testing::TestWithParam<int>
{};

TEST_P(Figure2Variants, HintPlacementMatchesMask)
{
    int mask_bits = GetParam();

    ir::Module m("fig2");
    ir::GlobalId g = m.addGlobal("g", 4096);
    IRBuilder b(m);
    b.startFunction("region", 0);
    Reg base = b.globalAddr(g);
    Reg m1 = b.load(base, 0);
    Reg m2 = b.load(base, 128);
    Reg s = b.add(m1, m2);
    b.ret(s);
    m.renumberLoads();
    ASSERT_EQ(m.numLoads(), 2u);

    BitVector mask(2);
    if (mask_bits & 1)
        mask.set(0);
    if (mask_bits & 2)
        mask.set(1);

    isa::DataLayout layout;
    layout.globalBase = {64};
    codegen::LowerOptions opts;
    opts.layout = &layout;
    opts.ntMask = &mask;
    codegen::LoweredFunction lowered =
        codegen::lowerFunction(m, m.function(0), opts);

    // Count hints and check each hint immediately precedes its load,
    // and that exactly the masked loads are non-temporal.
    int hints = 0;
    std::vector<bool> load_nt;
    for (size_t i = 0; i < lowered.code.size(); ++i) {
        const isa::MInst &inst = lowered.code[i];
        if (inst.op == isa::MOp::Hint) {
            ++hints;
            ASSERT_LT(i + 1, lowered.code.size());
            EXPECT_EQ(lowered.code[i + 1].op, isa::MOp::Load);
            EXPECT_TRUE(lowered.code[i + 1].nonTemporal);
            EXPECT_EQ(inst.loadId, lowered.code[i + 1].loadId);
        }
        if (inst.op == isa::MOp::Load)
            load_nt.push_back(inst.nonTemporal);
    }
    ASSERT_EQ(load_nt.size(), 2u);
    EXPECT_EQ(load_nt[0], (mask_bits & 1) != 0);
    EXPECT_EQ(load_nt[1], (mask_bits & 2) != 0);
    EXPECT_EQ(hints, __builtin_popcount(mask_bits));
}

INSTANTIATE_TEST_SUITE_P(AllMasks, Figure2Variants,
                         ::testing::Values(0, 1, 2, 3));

TEST(Lowering, VariantSemanticsUnchangedByMask)
{
    // The NT mask is control-invariant: results must be identical.
    for (int mask_bits = 0; mask_bits < 4; ++mask_bits) {
        ResultProgram p;
        ir::GlobalId arr = p.module.addGlobal("arr", 4096);
        IRBuilder b(p.module);
        b.startFunction("main", 0);
        Reg base = b.globalAddr(arr);
        Reg out = b.globalAddr(p.out);
        Reg v1 = b.constInt(40);
        Reg v2 = b.constInt(2);
        b.store(base, v1, 0);
        b.store(base, v2, 128);
        Reg a = b.load(base, 0);
        Reg c = b.load(base, 128);
        Reg s = b.add(a, c);
        b.store(out, s);
        b.ret();
        p.module.renumberLoads();

        // Compile through pcc with the mask applied by a runtime-
        // style lowering of main.
        pcc::PccOptions opts;
        isa::Image image = pcc::compile(p.module, opts);
        BitVector mask(p.module.numLoads());
        if (mask_bits & 1)
            mask.set(0);
        if (mask_bits & 2)
            mask.set(1);
        codegen::LowerOptions lopts;
        lopts.layout = &image.layout;
        lopts.ntMask = &mask;
        codegen::LoweredFunction lowered = codegen::lowerFunction(
            p.module, *p.module.findFunction("main"), lopts);

        // Execute the masked variant directly as the entry.
        isa::Image variant = image;
        variant.functions.clear();
        isa::FunctionInfo fi;
        fi.name = "main";
        fi.irFunc = 0;
        fi.entry = static_cast<isa::CodeAddr>(variant.code.size());
        codegen::relocate(lowered, fi.entry);
        variant.code.insert(variant.code.end(), lowered.code.begin(),
                            lowered.code.end());
        fi.end = static_cast<isa::CodeAddr>(variant.code.size());
        // Re-point every function slot at the variant for entry.
        variant.functions.assign(image.functions.size(), fi);
        variant.entryFunc = p.module.findFunction("main")->id();

        sim::Machine machine;
        sim::Process &proc = machine.load(variant, 0);
        machine.runToCompletion(1'000'000);
        EXPECT_EQ(proc.readWord(image.layout.base(p.out)), 42u)
            << "mask " << mask_bits;
    }
}

TEST(Passes, ConstantFolding)
{
    ir::Module m("fold");
    IRBuilder b(m);
    b.startFunction("f", 0);
    Reg a = b.constInt(6);
    Reg c = b.constInt(7);
    Reg p = b.mul(a, c);
    b.ret(p);
    size_t changed = codegen::foldConstants(m.function(0));
    EXPECT_GT(changed, 0u);
    const ir::Instruction &inst = m.function(0).block(0).insts[2];
    EXPECT_EQ(inst.op, Opcode::ConstInt);
    EXPECT_EQ(inst.imm, 42);
}

TEST(Passes, CopyPropagation)
{
    ir::Module m("copy");
    IRBuilder b(m);
    b.startFunction("f", 1);
    Reg c = b.mov(0);
    Reg d = b.mov(c);
    Reg e = b.add(d, d);
    b.ret(e);
    codegen::foldConstants(m.function(0));
    // add should now read the original register directly.
    const ir::Instruction &add = m.function(0).block(0).insts[2];
    EXPECT_EQ(add.srcs[0], 0u);
    EXPECT_EQ(add.srcs[1], 0u);
}

TEST(Passes, DeadCodeElimination)
{
    ir::Module m("dce");
    ir::GlobalId g = m.addGlobal("g", 64);
    IRBuilder b(m);
    b.startFunction("f", 0);
    Reg base = b.globalAddr(g);
    Reg dead = b.constInt(999);
    Reg dead2 = b.add(dead, dead);
    (void)dead2;
    Reg live = b.load(base, 0);
    b.ret(live);
    size_t before = m.function(0).instructionCount();
    size_t removed = codegen::eliminateDeadCode(m.function(0));
    EXPECT_EQ(removed, 2u);
    EXPECT_EQ(m.function(0).instructionCount(), before - 2);
    EXPECT_TRUE(ir::verify(m));
}

TEST(Passes, KeepsSideEffects)
{
    ir::Module m("keep");
    ir::GlobalId g = m.addGlobal("g", 64);
    IRBuilder b(m);
    b.startFunction("f", 0);
    Reg base = b.globalAddr(g);
    Reg v = b.constInt(1);
    b.store(base, v);
    b.ret();
    size_t removed = codegen::eliminateDeadCode(m.function(0));
    EXPECT_EQ(removed, 0u);
}

TEST(Passes, LivenessAcrossBlocks)
{
    // A value defined in the entry and used after a loop must stay.
    ir::Module m("liveness");
    IRBuilder b(m);
    b.startFunction("f", 1);
    Reg keep = b.constInt(5);
    Reg one = b.constInt(1);
    Reg i = b.constInt(0);
    BlockId loop = b.newBlock();
    BlockId exit = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(i, Opcode::Add, i, one);
    Reg c = b.cmpLt(i, 0);
    b.condBr(c, loop, exit);
    b.setBlock(exit);
    Reg r = b.add(keep, i);
    b.ret(r);
    codegen::eliminateDeadCode(m.function(0));
    // "keep" definition must survive.
    bool found = false;
    for (const auto &inst : m.function(0).block(0).insts)
        found |= inst.op == Opcode::ConstInt && inst.imm == 5;
    EXPECT_TRUE(found);
    EXPECT_TRUE(ir::verify(m));
}

TEST(Passes, OptimizeModuleReachesFixpoint)
{
    ir::Module m("fix");
    IRBuilder b(m);
    b.startFunction("f", 0);
    Reg a = b.constInt(1);
    Reg c = b.constInt(2);
    Reg d = b.add(a, c);   // folds to 3
    Reg e = b.add(d, a);   // then folds to 4
    b.ret(e);
    size_t total = codegen::optimizeModule(m);
    EXPECT_GT(total, 0u);
    // Second run must be a no-op.
    EXPECT_EQ(codegen::optimizeModule(m), 0u);
}

TEST(Passes, SemanticsPreserved)
{
    // Run the same computation with and without optimization.
    auto build = [](ResultProgram &p) {
        IRBuilder b(p.module);
        b.startFunction("main", 0);
        Reg base = b.globalAddr(p.out);
        Reg a = b.constInt(21);
        Reg two = b.constInt(2);
        Reg r = b.mul(a, two);
        Reg unused = b.add(r, a);
        (void)unused;
        b.store(base, r);
        b.ret();
    };
    ResultProgram plain;
    build(plain);
    uint64_t expected = plain.run();

    ResultProgram optimized;
    build(optimized);
    codegen::optimizeModule(optimized.module);
    EXPECT_EQ(optimized.run(), expected);
    EXPECT_EQ(expected, 42u);
}

TEST(CostModel, ScalesWithSize)
{
    ir::Module m("cost");
    IRBuilder b(m);
    b.startFunction("small", 0);
    b.ret();
    b.startFunction("big", 0);
    Reg acc = b.constInt(0);
    for (int i = 0; i < 100; ++i)
        b.binaryInto(acc, Opcode::Add, acc, acc);
    b.ret();
    codegen::CompileCostModel cost;
    EXPECT_GT(cost.cost(m.function(1)), cost.cost(m.function(0)));
    EXPECT_EQ(cost.cost(m.function(0)),
              cost.baseCycles + cost.cyclesPerInst * 1);
}

} // namespace
} // namespace protean
