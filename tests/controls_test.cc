/**
 * @file
 * Tests for the adaptive control machinery added on top of the basic
 * monitoring: QoS-reference repriming on co-phase changes, the phase
 * detector's post-detection cooldown, forced recompilation, the
 * ReQoS fast-attack/slow-release controller, and the table emitter
 * used by the figure benches.
 */

#include <gtest/gtest.h>

#include "pcc/pcc.h"
#include "reqos/reqos.h"
#include "runtime/runtime.h"
#include "support/table.h"
#include "workloads/driver.h"
#include "workloads/registry.h"

namespace protean {
namespace {

// --------------------------------------------------------------
// TextTable (the figure benches' output path).

TEST(TextTable, AlignsColumns)
{
    TextTable t("title");
    t.setHeader({"a", "long-header"});
    t.addRow({"xx", "1"});
    t.addRow({"y", "22"});
    std::string out = t.toText();
    EXPECT_NE(out.find("== title =="), std::string::npos);
    // Each data line starts at column 0 and columns line up.
    size_t h = out.find("a   long-header");
    EXPECT_NE(h, std::string::npos);
    EXPECT_NE(out.find("xx  1"), std::string::npos);
    EXPECT_NE(out.find("y   22"), std::string::npos);
}

TEST(TextTable, CsvEscaping)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"with,comma", "quote\"inside"});
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TextTable, RaggedRowsPadded)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    std::string out = t.toText();
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(TextTable, FmtPrecision)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
}

// --------------------------------------------------------------
// PhaseDetector cooldown.

TEST(PhaseDetectorCooldown, QuietAfterDetection)
{
    runtime::PhaseDetector det(0.3, 1.0, 4);
    det.update(1.0);
    EXPECT_TRUE(det.update(2.0)); // big shift detected
    // Oscillation during cooldown stays quiet.
    EXPECT_FALSE(det.update(1.0));
    EXPECT_FALSE(det.update(2.0));
    EXPECT_FALSE(det.update(1.0));
    EXPECT_FALSE(det.update(2.0));
}

TEST(PhaseDetectorCooldown, RearmsAfterCooldown)
{
    runtime::PhaseDetector det(0.3, 1.0, 2);
    det.update(1.0);
    EXPECT_TRUE(det.update(2.0));
    det.update(2.0); // cooldown 1
    det.update(2.0); // cooldown 2
    EXPECT_TRUE(det.update(4.0)); // re-armed
}

// --------------------------------------------------------------
// QosMonitor repriming.

struct QosRig
{
    sim::Machine machine;
    ir::Module host_m;
    ir::Module co_m;
    isa::Image host_img;
    isa::Image co_img;
    runtime::NapGovernor governor{machine, 0};

    QosRig()
        : host_m(workloads::buildBatch([] {
              workloads::BatchSpec s = workloads::batchSpec("milc");
              s.targetStaticLoads = 0;
              return s;
          }())),
          co_m(workloads::buildBatch([] {
              workloads::BatchSpec s =
                  workloads::batchSpec("blockie");
              s.targetStaticLoads = 0;
              return s;
          }())),
          host_img(pcc::compilePlain(host_m)),
          co_img(pcc::compilePlain(co_m))
    {
        machine.load(host_img, 0);
        machine.load(co_img, 1);
    }
};

TEST(QosReprime, InvalidatesAndRecovers)
{
    QosRig rig;
    runtime::QosOptions opts;
    opts.initialDelayMs = 10.0;
    opts.primingPeriodMs = 100.0;
    opts.probePeriodMs = 500.0;
    opts.probeLenMs = 10.0;
    runtime::QosMonitor qos(rig.machine, rig.governor, {1}, opts);
    qos.start();
    EXPECT_TRUE(qos.priming());
    rig.machine.runFor(rig.machine.msToCycles(500));
    EXPECT_FALSE(qos.priming());
    double solo = qos.soloIps(1);
    EXPECT_GT(solo, 0.0);

    qos.reprime();
    EXPECT_TRUE(qos.priming());
    EXPECT_TRUE(qos.windowTainted());
    EXPECT_EQ(qos.soloIps(1), 0.0); // reference invalidated
    rig.machine.runFor(rig.machine.msToCycles(600));
    EXPECT_FALSE(qos.priming());
    EXPECT_GT(qos.soloIps(1), 0.0);
    // The fresh estimate describes the same (unchanged) co-runner.
    EXPECT_NEAR(qos.soloIps(1) / solo, 1.0, 0.25);
}

TEST(QosReprime, WindowsTaintedWhilePriming)
{
    QosRig rig;
    runtime::QosOptions opts;
    opts.initialDelayMs = 10.0;
    opts.primingPeriodMs = 200.0;
    runtime::QosMonitor qos(rig.machine, rig.governor, {1}, opts);
    qos.start();
    rig.machine.runFor(rig.machine.msToCycles(100));
    // One probe done, still priming.
    EXPECT_TRUE(qos.priming());
    qos.clearTaint();
    EXPECT_TRUE(qos.windowTainted());
}

// --------------------------------------------------------------
// Forced recompilation.

TEST(ForceRecompile, BypassesCache)
{
    workloads::BatchSpec spec = workloads::batchSpec("milc");
    spec.targetStaticLoads = 0;
    ir::Module m = workloads::buildBatch(spec);
    isa::Image image = pcc::compile(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    runtime::Attachment att = runtime::attach(proc);
    runtime::RuntimeCompiler rc(machine, proc, *att.module,
                                att.slots, 1);
    ir::FuncId hot = att.module->findFunction("hot_0")->id();
    BitVector mask(att.module->numLoads());

    rc.requestVariant(hot, mask, [](isa::CodeAddr) {});
    rc.requestVariant(hot, mask, [](isa::CodeAddr) {});
    machine.runFor(machine.msToCycles(100));
    EXPECT_EQ(rc.compileCount(), 1u); // second hit the cache

    rc.requestVariant(hot, mask, [](isa::CodeAddr) {}, true);
    machine.runFor(machine.msToCycles(100));
    EXPECT_EQ(rc.compileCount(), 2u); // forced
}

// --------------------------------------------------------------
// ReQoS controller properties on a live rig.

TEST(ReQosController, ReleasesWhenUncontended)
{
    // A trivial co-runner that the host cannot hurt: nap must drain
    // back toward zero even if it starts high.
    workloads::BatchSpec hs = workloads::batchSpec("namd");
    hs.targetStaticLoads = 0;
    ir::Module hm = workloads::buildBatch(hs);
    isa::Image hi = pcc::compilePlain(hm);
    workloads::BatchSpec cs = workloads::batchSpec("povray");
    cs.targetStaticLoads = 0;
    ir::Module cm = workloads::buildBatch(cs);
    isa::Image ci = pcc::compilePlain(cm);

    sim::Machine machine;
    machine.load(hi, 0);
    machine.load(ci, 1);
    runtime::NapGovernor gov(machine, 0);
    runtime::QosMonitor qos(machine, gov, {1});
    reqos::ReQosOptions opts;
    opts.qosTarget = 0.90;
    reqos::ReQosController ctl(machine, gov, qos, opts);
    ctl.start();
    machine.runFor(machine.msToCycles(6000));
    EXPECT_LT(ctl.nap(), 0.2);
    EXPECT_GT(ctl.lastQos(), 0.85);
}

} // namespace
} // namespace protean
