/**
 * @file
 * Tests for the fleet observability plane: TelemetryHub windowed
 * rollups (delta correctness, flip-histogram merging, scrape cost
 * accounting), trace-ID propagation through the compile service,
 * SLO burn-rate alerts raised from hub windows, and byte-identical
 * telemetry exports across repeats and serial-vs-parallel stepping.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace protean {
namespace fleet {
namespace {

class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::metrics().reset();
        obs::tracer().clear();
        obs::tracer().setEnabled(false);
    }

    void
    TearDown() override
    {
        obs::tracer().setEnabled(false);
        obs::tracer().clear();
        obs::metrics().reset();
    }
};

FleetConfig
telemetryConfig(uint32_t workers = 1)
{
    FleetConfig cfg;
    cfg.numServers = 3;
    cfg.meanRequestMs = 1.0;
    cfg.parallelWorkers = workers;
    cfg.telemetry.enabled = true;
    return cfg;
}

RetryPolicy
testLadder()
{
    RetryPolicy p;
    p.enabled = true;
    p.maxAttempts = 3;
    p.attemptTimeoutCycles = 30000;
    p.backoffBaseCycles = 1000;
    p.backoffCapCycles = 8000;
    p.hedgeAfterCycles = 15000;
    return p;
}

faults::FaultConfig
pauseFaults()
{
    faults::FaultConfig f;
    f.serverPauseProb = 0.05;
    return f;
}

// ---------------------------------------------------------------- //
//                        Windowed rollups                          //
// ---------------------------------------------------------------- //

TEST_F(TelemetryTest, DisabledTelemetryBuildsNoHub)
{
    FleetConfig cfg;
    cfg.numServers = 2;
    FleetSim sim(cfg);
    EXPECT_EQ(sim.telemetry(), nullptr);
    sim.run(5.0);
    sim.flushTelemetry(); // must be a harmless no-op
}

TEST_F(TelemetryTest, WindowDeltasSumToServiceTotals)
{
    FleetSim sim(telemetryConfig());
    sim.run(45.0);
    sim.flushTelemetry();

    ASSERT_NE(sim.telemetry(), nullptr);
    const TelemetryHub &hub = *sim.telemetry();
    ASSERT_FALSE(hub.windows().empty());

    uint64_t requests = 0, hits = 0, misses = 0, coalesced = 0;
    uint64_t prev_end = 0;
    for (const FleetWindow &w : hub.windows()) {
        EXPECT_EQ(w.startCycle, prev_end);
        EXPECT_GT(w.endCycle, w.startCycle);
        prev_end = w.endCycle;
        requests += w.requests;
        hits += w.hits;
        misses += w.misses;
        coalesced += w.coalesced;
        EXPECT_EQ(w.shardUp.size(),
                  static_cast<size_t>(
                      sim.service().config().numShards));
    }
    const ServiceStats &st = sim.service().stats();
    EXPECT_EQ(requests, st.requests);
    EXPECT_EQ(hits, st.hits);
    EXPECT_EQ(misses, st.misses);
    EXPECT_EQ(coalesced, st.coalesced);
    EXPECT_GT(requests, 0u);
}

TEST_F(TelemetryTest, FlushClosesThePartialTailWindow)
{
    FleetSim sim(telemetryConfig());
    // 13 ms = 65000 cycles: one full 50k window plus a 15k tail that
    // only flush() rolls up.
    sim.run(13.0);
    size_t before = sim.telemetry()->windows().size();
    sim.flushTelemetry();
    const TelemetryHub &hub = *sim.telemetry();
    ASSERT_GT(hub.windows().size(), before);
    EXPECT_EQ(hub.windows().back().endCycle, sim.cluster().now());
}

TEST_F(TelemetryTest, FleetFlipMergesAllWindows)
{
    FleetSim sim(telemetryConfig());
    sim.run(45.0);
    sim.flushTelemetry();
    const TelemetryHub &hub = *sim.telemetry();

    uint64_t per_window = 0;
    for (const FleetWindow &w : hub.windows())
        per_window += w.flip.total();
    obs::HdrHistogram all = hub.fleetFlip();
    EXPECT_EQ(all.total(), per_window);
    EXPECT_GT(all.total(), 0u);
    EXPECT_GE(all.quantile(0.99), all.quantile(0.50));
}

TEST_F(TelemetryTest, ScrapeCostIsCycleAccounted)
{
    FleetConfig cfg = telemetryConfig();
    FleetSim sim(cfg);
    sim.run(45.0);
    sim.flushTelemetry();
    const TelemetryHub &hub = *sim.telemetry();

    uint64_t bytes = 0, net = 0, cpu = 0;
    const NetworkModel &nm = sim.service().config().net;
    for (const FleetWindow &w : hub.windows()) {
        // Every server ships at least the base payload, and the
        // transfer pays at least the per-request network latency.
        EXPECT_GE(w.scrapeBytes,
                  cfg.numServers * cfg.telemetry.scrapeBaseBytes);
        EXPECT_GE(w.scrapeNetworkCycles,
                  cfg.numServers * nm.requestLatencyCycles);
        EXPECT_EQ(w.scrapeCpuCycles,
                  cfg.numServers * cfg.telemetry.scrapeCpuCycles);
        bytes += w.scrapeBytes;
        net += w.scrapeNetworkCycles;
        cpu += w.scrapeCpuCycles;
    }
    EXPECT_EQ(hub.scrapeBytesTotal(), bytes);
    EXPECT_EQ(hub.scrapeNetworkCyclesTotal(), net);
    EXPECT_EQ(hub.scrapeCpuCyclesTotal(), cpu);
}

TEST_F(TelemetryTest, FieldsExposeEveryScalarSeries)
{
    FleetSim sim(telemetryConfig());
    sim.run(25.0);
    sim.flushTelemetry();
    const FleetWindow &w = sim.telemetry()->windows().front();
    std::map<std::string, double> f = w.fields();
    for (const char *key :
         {"requests", "hits", "misses", "hit_rate", "crashes",
          "timeouts", "delayed", "dropped", "corrupt_rejects",
          "corrupt_responses", "flip_p50", "flip_p99", "flip_p999",
          "stranded", "breakers_open", "server_pauses",
          "scrape_bytes"}) {
        EXPECT_TRUE(f.count(key)) << "missing field " << key;
    }
    EXPECT_DOUBLE_EQ(f.at("requests"),
                     static_cast<double>(w.requests));
    EXPECT_DOUBLE_EQ(f.at("flip_p99"),
                     static_cast<double>(w.flip.quantile(0.99)));
}

// ---------------------------------------------------------------- //
//                      Trace-ID propagation                        //
// ---------------------------------------------------------------- //

TEST_F(TelemetryTest, TraceIdsPropagateClientToServiceToFlip)
{
    obs::tracer().setEnabled(true);
    FleetConfig cfg;
    cfg.numServers = 3;
    cfg.meanRequestMs = 1.0;
    FleetSim sim(cfg);
    sim.run(25.0);
    std::string json = obs::tracer().toChromeJson();
    obs::tracer().setEnabled(false);

    // Collect every trace id stamped into span args.
    std::map<uint64_t, int> ids;
    size_t pos = 0;
    while ((pos = json.find("\"trace\":", pos)) != std::string::npos) {
        pos += 8;
        uint64_t id = std::strtoull(json.c_str() + pos, nullptr, 10);
        ++ids[id];
    }
    ASSERT_FALSE(ids.empty());
    // The id encodes the issuing client: high half = server id + 1.
    // Every id must come from a registered server, never id 0
    // (0 marks an untraced job).
    int multi_span = 0;
    for (const auto &[id, count] : ids) {
        EXPECT_NE(id, 0u);
        uint64_t client = (id >> 32) - 1;
        EXPECT_LT(client, cfg.numServers);
        if (count >= 2)
            ++multi_span;
    }
    // Propagation means one request's id shows up on spans emitted
    // by different layers (client hop, service queue/compile, flip).
    EXPECT_GT(multi_span, 0);
    // And the service-side lanes actually carry them.
    EXPECT_NE(json.find("request hop"), std::string::npos);
    EXPECT_NE(json.find("queue wait"), std::string::npos);
    EXPECT_NE(json.find("flip"), std::string::npos);
}

TEST_F(TelemetryTest, TracedRunsAreRepeatable)
{
    auto traced = [] {
        obs::metrics().reset();
        obs::tracer().clear();
        obs::tracer().setEnabled(true);
        FleetConfig cfg;
        cfg.numServers = 2;
        cfg.meanRequestMs = 1.0;
        FleetSim sim(cfg);
        sim.run(15.0);
        std::string json = obs::tracer().toChromeJson();
        obs::tracer().setEnabled(false);
        obs::tracer().clear();
        return json;
    };
    std::string a = traced();
    std::string b = traced();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- //
//                       SLO alerts from windows                    //
// ---------------------------------------------------------------- //

TEST_F(TelemetryTest, SloAlertRaisesOnInjectedPausesOnly)
{
    obs::SloSpec spec;
    spec.name = "pause_free";
    spec.field = "server_pauses";
    spec.threshold = 0;
    spec.budget = 0.10;

    {
        FleetConfig cfg = telemetryConfig();
        cfg.faults = pauseFaults();
        cfg.retry = testLadder();
        FleetSim sim(cfg);
        sim.telemetry()->addSlo(spec);
        sim.run(45.0);
        sim.flushTelemetry();
        const obs::SloMonitor &slo = sim.telemetry()->slo();
        EXPECT_TRUE(slo.everFired("pause_free"));
        EXPECT_GT(slo.badWindows("pause_free"), 0u);
        ASSERT_FALSE(slo.alerts().empty());
        EXPECT_EQ(slo.alerts().front().slo, "pause_free");
    }
    {
        FleetConfig cfg = telemetryConfig();
        FleetSim sim(cfg);
        sim.telemetry()->addSlo(spec);
        sim.run(45.0);
        sim.flushTelemetry();
        EXPECT_TRUE(sim.telemetry()->slo().alerts().empty());
    }
}

// ---------------------------------------------------------------- //
//                    Determinism of the exports                    //
// ---------------------------------------------------------------- //

TEST_F(TelemetryTest, TelemetryJsonByteIdenticalSerialVsParallel4)
{
    auto runOnce = [](uint32_t workers) {
        obs::metrics().reset();
        FleetConfig cfg = telemetryConfig(workers);
        cfg.faults = pauseFaults();
        cfg.retry = testLadder();
        cfg.service.replication = 2;
        FleetSim sim(cfg);
        sim.run(40.0);
        sim.flushTelemetry();
        return sim.telemetry()->toJson();
    };
    std::string serial = runOnce(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, runOnce(1)); // repeatable
    EXPECT_EQ(serial, runOnce(4)); // parallel stepping identical
    EXPECT_NE(serial.find("\"windows\""), std::string::npos);
    EXPECT_NE(serial.find("\"flip\""), std::string::npos);
    EXPECT_NE(serial.find("\"slo\""), std::string::npos);
}

TEST_F(TelemetryTest, ExportObsMetricsPublishesHubGauges)
{
    FleetSim sim(telemetryConfig());
    sim.run(25.0);
    sim.flushTelemetry();
    sim.exportObsMetrics();
    std::string json = obs::metrics().toJson();
    EXPECT_NE(json.find("fleet.telemetry.windows"),
              std::string::npos);
    EXPECT_NE(json.find("fleet.telemetry.flip_p99"),
              std::string::npos);
    EXPECT_NE(json.find("fleet.telemetry.scrape_bytes"),
              std::string::npos);
}

} // namespace
} // namespace fleet
} // namespace protean
