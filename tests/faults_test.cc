/**
 * @file
 * Tests for the fault-injection layer and the degradation ladder:
 * seeded FaultPlan reproducibility, circuit-breaker state machine,
 * replication surviving a single-shard crash with zero
 * unique-variant loss, checksum rejection of corrupted payloads,
 * client timeout/retry/local-fallback behavior, and byte-identical
 * faulted runs (repeat and serial-vs-parallel).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace protean {
namespace fleet {
namespace {

class FaultsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::metrics().reset();
        obs::tracer().clear();
    }

    void
    TearDown() override
    {
        obs::tracer().clear();
        obs::metrics().reset();
    }
};

runtime::CompileJob
job(uint64_t key, uint64_t cost = 1000, uint64_t bytes = 256)
{
    runtime::CompileJob j;
    j.contentKey = key;
    j.func = 0;
    j.costCycles = cost;
    j.codeBytes = bytes;
    j.name = "f";
    return j;
}

// ---------------------------------------------------------------- //
//                            FaultPlan                             //
// ---------------------------------------------------------------- //

TEST_F(FaultsTest, GeneratedSchedulesAreSeedReproducible)
{
    faults::FaultConfig cfg;
    cfg.seed = 0x1234;
    cfg.shardCrashMeanCycles = 50000.0;
    cfg.shardRestartCycles = 10000;

    faults::FaultPlan a(cfg), b(cfg);
    for (uint32_t shard = 0; shard < 4; ++shard) {
        for (uint64_t c = 0; c <= 500000; c += 777)
            ASSERT_EQ(a.shardDownAt(shard, c),
                      b.shardDownAt(shard, c))
                << "shard " << shard << " cycle " << c;
    }

    // A different seed places crashes elsewhere.
    faults::FaultConfig other = cfg;
    other.seed = 0x5678;
    faults::FaultPlan c(other);
    bool differs = false;
    for (uint64_t cyc = 0; cyc <= 500000 && !differs; cyc += 777)
        differs = a.shardDownAt(0, cyc) != c.shardDownAt(0, cyc);
    EXPECT_TRUE(differs);
}

TEST_F(FaultsTest, PureDecisionsAreOrderIndependent)
{
    faults::FaultConfig cfg;
    cfg.requestDropProb = 0.3;
    cfg.responseCorruptProb = 0.3;
    faults::FaultPlan a(cfg), b(cfg);

    // Query one plan forward and the other backward: pure hashes
    // cannot depend on evaluation order (the serial/parallel
    // byte-identity argument).
    std::vector<bool> fwd, bwd(1000);
    for (uint64_t i = 0; i < 1000; ++i)
        fwd.push_back(a.dropRequest(i));
    for (uint64_t i = 1000; i-- > 0;)
        bwd[i] = b.dropRequest(i);
    EXPECT_EQ(fwd, bwd);

    uint64_t drops = 0;
    for (uint64_t i = 0; i < 1000; ++i)
        drops += fwd[i] ? 1 : 0;
    // ~300 expected; loose bounds catch a broken hash (all-true or
    // all-false).
    EXPECT_GT(drops, 150u);
    EXPECT_LT(drops, 450u);
}

TEST_F(FaultsTest, ScriptedOutageWindowSemantics)
{
    faults::FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    plan.addShardOutage(0, 100, 200);
    EXPECT_TRUE(plan.enabled());

    EXPECT_FALSE(plan.shardDownAt(0, 99));
    EXPECT_TRUE(plan.shardDownAt(0, 100));  // crash cycle inclusive
    EXPECT_TRUE(plan.shardDownAt(0, 199));
    EXPECT_FALSE(plan.shardDownAt(0, 200)); // restart cycle exclusive
    EXPECT_FALSE(plan.shardDownAt(1, 150)); // other shards unaffected

    EXPECT_EQ(plan.peekOutage(0, 50), nullptr);
    const faults::ShardOutage *o = plan.peekOutage(0, 150);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->at, 100u);
    EXPECT_EQ(o->until, 200u);
    plan.consumeOutage(0);
    EXPECT_EQ(plan.peekOutage(0, 1000000), nullptr);
}

TEST_F(FaultsTest, ScriptedOutageValidation)
{
    faults::FaultPlan plan;
    EXPECT_DEATH(plan.addShardOutage(0, 200, 200), "end after");
    plan.addShardOutage(0, 100, 200);
    EXPECT_DEATH(plan.addShardOutage(0, 150, 300), "in order");
}

// ---------------------------------------------------------------- //
//                          CircuitBreaker                          //
// ---------------------------------------------------------------- //

CircuitBreaker::Config
breakerCfg()
{
    CircuitBreaker::Config cfg;
    cfg.failureThreshold = 3;
    cfg.openCycles = 1000;
    cfg.closeThreshold = 2;
    return cfg;
}

TEST_F(FaultsTest, BreakerOpensAfterConsecutiveFailures)
{
    CircuitBreaker br(breakerCfg());
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    br.onFailure(10);
    br.onFailure(20);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(br.allowRequest(30));
    br.onFailure(30);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(br.opens(), 1u);
    EXPECT_FALSE(br.allowRequest(500));

    // A success resets the consecutive count while closed.
    CircuitBreaker br2(breakerCfg());
    br2.onFailure(10);
    br2.onFailure(20);
    br2.onSuccess(25);
    br2.onFailure(30);
    br2.onFailure(40);
    EXPECT_EQ(br2.state(), CircuitBreaker::State::Closed);
}

TEST_F(FaultsTest, BreakerHalfOpenClosesAfterProbeSuccesses)
{
    CircuitBreaker br(breakerCfg());
    for (int i = 0; i < 3; ++i)
        br.onFailure(100);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);

    // Open window elapsed: the next request is a probe.
    EXPECT_TRUE(br.allowRequest(1100));
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    br.onSuccess(1200);
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    br.onSuccess(1300);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
}

TEST_F(FaultsTest, BreakerReopensOnProbeFailure)
{
    CircuitBreaker br(breakerCfg());
    for (int i = 0; i < 3; ++i)
        br.onFailure(100);
    EXPECT_TRUE(br.allowRequest(1100));
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    br.onFailure(1200);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(br.opens(), 2u);
    EXPECT_FALSE(br.allowRequest(1300));
    EXPECT_TRUE(br.allowRequest(2300));
}

// ---------------------------------------------------------------- //
//                    Service under fault plans                     //
// ---------------------------------------------------------------- //

TEST_F(FaultsTest, ReplicationSurvivesSingleShardCrash)
{
    ServiceConfig cfg;
    cfg.numShards = 4;
    cfg.replication = 2;
    CompileService svc(cfg);
    faults::FaultPlan plan;
    svc.setFaultPlan(&plan);

    const uint64_t key = 7;
    uint32_t primary = svc.shardOf(key);
    std::vector<uint32_t> set = svc.replicaSet(key);
    ASSERT_EQ(set.size(), 2u);
    ASSERT_EQ(set[0], primary);

    runtime::CompileOutcome first;
    svc.submit(0, job(key), 100,
               [&](const runtime::CompileOutcome &o) { first = o; });
    svc.advance(60000);
    ASSERT_FALSE(first.failed);
    // The compiled variant is resident on the primary AND its
    // replica.
    EXPECT_TRUE(svc.shardHasKey(primary, key));
    EXPECT_TRUE(svc.shardHasKey(set[1], key));
    EXPECT_EQ(svc.stats().replicaInstalls, 1u);

    // Crash the primary; a request arriving mid-outage reroutes to
    // the replica and hits — the crash lost no unique work.
    plan.addShardOutage(primary, 70000, 90000);
    runtime::CompileOutcome second;
    svc.submit(1, job(key), 75000,
               [&](const runtime::CompileOutcome &o) { second = o; });
    svc.advance(120000);
    EXPECT_FALSE(second.failed);
    EXPECT_TRUE(second.remoteHit);
    EXPECT_EQ(svc.stats().hits, 1u);
    EXPECT_EQ(svc.stats().compiles, 1u);
    EXPECT_EQ(svc.stats().replicaRoutes, 1u);
    EXPECT_EQ(svc.stats().crashes, 1u);
    EXPECT_EQ(svc.stats().lostEntries, 1u);
    EXPECT_FALSE(svc.shardHasKey(primary, key));
    EXPECT_TRUE(svc.shardHasKey(set[1], key));
}

TEST_F(FaultsTest, CrashMidCompileFailsStrandedWaiters)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    CompileService svc(cfg);
    faults::FaultPlan plan;
    svc.setFaultPlan(&plan);
    plan.addShardOutage(0, 5000, 20000);

    // The miss's compile would finish long after the crash: the
    // waiter gets an explicit failure at the crash cycle.
    runtime::CompileOutcome out;
    svc.submit(0, job(1, /*cost=*/100000), 100,
               [&](const runtime::CompileOutcome &o) { out = o; });
    svc.advance(50000);
    EXPECT_TRUE(out.failed);
    EXPECT_EQ(out.readyCycle,
              5000 + cfg.net.responseLatencyCycles);
    EXPECT_EQ(svc.stats().failed, 1u);
    EXPECT_EQ(svc.stats().crashes, 1u);
    EXPECT_FALSE(svc.shardUp(0, 10000));
    EXPECT_TRUE(svc.shardUp(0, 20000));

    // After the restart the shard compiles again.
    runtime::CompileOutcome retry;
    svc.submit(0, job(1, 1000), 25000,
               [&](const runtime::CompileOutcome &o) { retry = o; });
    svc.advance(80000);
    EXPECT_FALSE(retry.failed);
    EXPECT_FALSE(retry.remoteHit);
}

TEST_F(FaultsTest, WholeReplicaSetDownFailsFast)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    CompileService svc(cfg);
    faults::FaultPlan plan;
    svc.setFaultPlan(&plan);
    plan.addShardOutage(0, 100, 50000);

    runtime::CompileOutcome out;
    svc.submit(0, job(1), 1000,
               [&](const runtime::CompileOutcome &o) { out = o; });
    svc.advance(10000);
    EXPECT_TRUE(out.failed);
    EXPECT_EQ(out.readyCycle, 1000 + cfg.net.responseLatencyCycles);
    EXPECT_EQ(svc.stats().failed, 1u);
    // The failure is the health-based router refusing the request;
    // the (empty) shard's crash lost nothing.
    EXPECT_EQ(svc.stats().crashes, 1u);
    EXPECT_EQ(svc.stats().lostEntries, 0u);
}

TEST_F(FaultsTest, CorruptCachedEntryRejectedAndRecompiled)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    CompileService svc(cfg);
    faults::FaultConfig fc;
    fc.cacheCorruptProb = 1.0; // every install corrupts at rest
    faults::FaultPlan plan(fc);
    svc.setFaultPlan(&plan);

    runtime::CompileOutcome first, second;
    svc.submit(0, job(9), 100,
               [&](const runtime::CompileOutcome &o) { first = o; });
    svc.advance(50000);
    ASSERT_FALSE(first.failed);
    EXPECT_FALSE(svc.shardHasKey(0, 9)); // resident but corrupt

    // The next request's checksum probe rejects the entry and
    // recompiles instead of shipping garbage.
    svc.submit(1, job(9), 60000,
               [&](const runtime::CompileOutcome &o) { second = o; });
    svc.advance(120000);
    EXPECT_FALSE(second.failed);
    EXPECT_FALSE(second.remoteHit);
    EXPECT_EQ(svc.stats().corruptRejects, 1u);
    EXPECT_EQ(svc.stats().hits, 0u);
    // The recompile forced by the corrupt entry is accounted
    // separately from true misses (the key *was* cached).
    EXPECT_EQ(svc.stats().misses, 1u);
    EXPECT_EQ(svc.stats().corruptRecompiles, 1u);
    EXPECT_EQ(svc.stats().compiles, 2u);
}

TEST_F(FaultsTest, DroppedRequestIsNeverAnswered)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    CompileService svc(cfg);
    faults::FaultConfig fc;
    fc.requestDropProb = 1.0;
    faults::FaultPlan plan(fc);
    svc.setFaultPlan(&plan);

    bool answered = false;
    svc.submit(0, job(3), 100,
               [&](const runtime::CompileOutcome &) {
                   answered = true;
               });
    svc.advance(1000000);
    EXPECT_FALSE(answered);
    EXPECT_EQ(svc.stats().requests, 1u);
    EXPECT_EQ(svc.stats().dropped, 1u);
    EXPECT_EQ(svc.stats().batches, 0u);
}

TEST_F(FaultsTest, CorruptResponseIsFlagged)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    CompileService svc(cfg);
    faults::FaultConfig fc;
    fc.responseCorruptProb = 1.0;
    faults::FaultPlan plan(fc);
    svc.setFaultPlan(&plan);

    runtime::CompileOutcome out;
    svc.submit(0, job(5), 100,
               [&](const runtime::CompileOutcome &o) { out = o; });
    svc.advance(50000);
    EXPECT_FALSE(out.failed);
    EXPECT_TRUE(out.corrupted);
    EXPECT_EQ(svc.stats().corruptResponses, 1u);
}

// ---------------------------------------------------------------- //
//                  Client-side degradation ladder                  //
// ---------------------------------------------------------------- //

RetryPolicy
testLadder()
{
    RetryPolicy p;
    p.enabled = true;
    p.maxAttempts = 2;
    p.attemptTimeoutCycles = 2000;
    p.backoffBaseCycles = 100;
    p.backoffCapCycles = 400;
    p.breaker.failureThreshold = 100; // keep the breaker out of it
    return p;
}

TEST_F(FaultsTest, ClientTimesOutRetriesThenFallsBackLocal)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    CompileService svc(cfg);
    faults::FaultConfig fc;
    fc.requestDropProb = 1.0; // the service never answers anyone
    faults::FaultPlan plan(fc);
    svc.setFaultPlan(&plan);

    Cluster cluster(svc);
    sim::Machine m;
    cluster.addMachine(m);
    RemoteBackend backend(svc, m, 0);
    backend.setRetryPolicy(testLadder());

    runtime::CompileOutcome out;
    bool resolved = false;
    backend.compile(job(1, /*cost=*/500),
                    [&](const runtime::CompileOutcome &o) {
                        out = o;
                        resolved = true;
                    });
    cluster.runFor(50000);

    // Both remote attempts timed out; the local compiler finished
    // the job — the host never stalls.
    EXPECT_TRUE(resolved);
    EXPECT_FALSE(out.failed);
    EXPECT_EQ(out.chargedCycles, 500u);
    const ClientStats &cs = backend.clientStats();
    EXPECT_EQ(cs.remoteRequests, 2u);
    EXPECT_EQ(cs.timeouts, 2u);
    EXPECT_EQ(cs.retries, 1u);
    EXPECT_EQ(cs.localFallbacks, 1u);
    EXPECT_EQ(backend.pendingCount(), 0u);
    EXPECT_GT(cs.maxResolveCycles, 0u);
}

TEST_F(FaultsTest, ClientBreakerOpensAndShortCircuits)
{
    ServiceConfig cfg;
    cfg.numShards = 1;
    CompileService svc(cfg);
    faults::FaultConfig fc;
    fc.requestDropProb = 1.0;
    faults::FaultPlan plan(fc);
    svc.setFaultPlan(&plan);

    Cluster cluster(svc);
    sim::Machine m;
    cluster.addMachine(m);
    RemoteBackend backend(svc, m, 0);
    RetryPolicy p = testLadder();
    p.breaker.failureThreshold = 3;
    p.breaker.openCycles = 200000; // stays open for the whole test
    backend.setRetryPolicy(p);

    // Space requests out so each one's ladder finishes before the
    // next starts; the breaker trips during the second request and
    // later ones go straight to the local fallback.
    uint64_t resolved = 0;
    for (int i = 0; i < 4; ++i) {
        m.schedule(1 + 10000 * static_cast<uint64_t>(i), [&, i] {
            backend.compile(job(100 + i, 500),
                            [&](const runtime::CompileOutcome &) {
                                ++resolved;
                            });
        });
    }
    cluster.runFor(100000);

    EXPECT_EQ(resolved, 4u);
    EXPECT_EQ(backend.pendingCount(), 0u);
    EXPECT_EQ(backend.breaker().state(),
              CircuitBreaker::State::Open);
    EXPECT_GE(backend.breaker().opens(), 1u);
    const ClientStats &cs = backend.clientStats();
    // Request 1 exhausts both attempts (two breaker failures);
    // request 2's single timeout trips the breaker, so requests 3
    // and 4 never touch the service.
    EXPECT_EQ(cs.breakerShortCircuits, 2u);
    EXPECT_EQ(cs.localFallbacks, 4u);
}

// ---------------------------------------------------------------- //
//                       Faulted fleet end-to-end                   //
// ---------------------------------------------------------------- //

faults::FaultConfig
moderateFaults()
{
    faults::FaultConfig f;
    f.shardCrashMeanCycles = 60000.0;
    f.shardRestartCycles = 15000;
    f.requestDropProb = 0.05;
    f.requestDelayProb = 0.05;
    f.responseCorruptProb = 0.02;
    f.cacheCorruptProb = 0.02;
    f.serverPauseProb = 0.02;
    return f;
}

RetryPolicy
fleetLadder()
{
    RetryPolicy p;
    p.enabled = true;
    p.maxAttempts = 3;
    p.attemptTimeoutCycles = 30000;
    p.backoffBaseCycles = 1000;
    p.backoffCapCycles = 8000;
    p.hedgeAfterCycles = 15000;
    return p;
}

TEST_F(FaultsTest, FaultedFleetResolvesEveryRequest)
{
    FleetConfig cfg;
    cfg.numServers = 3;
    cfg.meanRequestMs = 2.0;
    cfg.faults = moderateFaults();
    cfg.retry = fleetLadder();
    cfg.service.replication = 2;
    FleetSim sim(cfg);
    sim.run(60.0);

    FleetStats st = sim.stats();
    // Faults actually fired...
    EXPECT_GT(st.service.crashes, 0u);
    EXPECT_GT(st.service.dropped, 0u);
    // ...the ladder absorbed them...
    EXPECT_GT(st.client.timeouts + st.client.retries +
                  st.client.localFallbacks,
              0u);
    // ...and no request stalled past its ladder budget.
    EXPECT_EQ(sim.stalledRequests(), 0u);
    EXPECT_EQ(st.stalledRequests, 0u);
}

TEST_F(FaultsTest, FaultedRunsAreByteIdenticalSerialAndParallel)
{
    auto runOnce = [](const std::string &mpath, uint32_t workers) {
        obs::metrics().reset();
        FleetConfig cfg;
        cfg.numServers = 3;
        cfg.meanRequestMs = 2.0;
        cfg.faults = moderateFaults();
        cfg.retry = fleetLadder();
        cfg.service.replication = 2;
        cfg.parallelWorkers = workers;
        FleetSim sim(cfg);
        sim.run(40.0);
        sim.exportObsMetrics();
        obs::metrics().writeJson(mpath);
    };
    std::string m1 = testing::TempDir() + "faults_m1.json";
    std::string m2 = testing::TempDir() + "faults_m2.json";
    std::string m3 = testing::TempDir() + "faults_m3.json";
    runOnce(m1, 1);
    runOnce(m2, 1);
    runOnce(m3, 2);

    auto slurp = [](const std::string &p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    std::string serial = slurp(m1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, slurp(m2)); // repeatable
    EXPECT_EQ(serial, slurp(m3)); // parallel stepping identical
    EXPECT_NE(serial.find("fleet.service.crashes"),
              std::string::npos);
    std::remove(m1.c_str());
    std::remove(m2.c_str());
    std::remove(m3.c_str());
}

} // namespace
} // namespace fleet
} // namespace protean
