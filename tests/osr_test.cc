/**
 * @file
 * Tests for on-stack replacement (DESIGN.md §14): the back-edge OSR
 * tables emitted by lowering, mid-loop variant flips through the
 * runtime (with cycle-exact Step-vs-Batch equivalence), decoded
 * superblock retirement on redirect, sandbox-differential state
 * equivalence at every OSR point, serial-vs-parallel identity of the
 * hot-loop fleet scenario, and the entry-flip fallback for loop-free
 * functions.
 */

#include <gtest/gtest.h>

#include "codegen/lowering.h"
#include "fleet/fleet.h"
#include "ir/builder.h"
#include "pcc/pcc.h"
#include "runtime/runtime.h"
#include "sim/machine.h"
#include "validate/validator.h"
#include "workloads/batch.h"
#include "workloads/registry.h"

namespace protean {
namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Reg;

// ---------------------------------------------------------------
// Back-edge table correctness across all mask depths.
// ---------------------------------------------------------------

/** Prefix NT mask of the given depth over the module's loads. */
BitVector
prefixMask(const ir::Module &m, size_t depth)
{
    BitVector mask(m.numLoads());
    for (size_t i = 0; i < depth && i < mask.size(); ++i)
        mask.set(i);
    return mask;
}

TEST(OsrTable, StableAcrossAllMaskDepths)
{
    // The hot-loop workload exercises nested loops, calls and
    // NT-maskable loads in every function.
    workloads::BatchSpec spec = workloads::batchSpec("hotloop");
    ir::Module m = workloads::buildBatch(spec);
    isa::Image img = pcc::compilePlain(m);

    size_t functions_with_loops = 0;
    for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
        codegen::LowerOptions opts;
        opts.layout = &img.layout;
        BitVector none = prefixMask(m, 0);
        opts.ntMask = &none;
        codegen::LoweredFunction base =
            codegen::lowerFunction(m, m.function(f), opts);
        if (!base.osrSites.empty())
            ++functions_with_loops;

        for (size_t depth = 1; depth <= m.numLoads(); ++depth) {
            BitVector mask = prefixMask(m, depth);
            opts.ntMask = &mask;
            codegen::LoweredFunction var =
                codegen::lowerFunction(m, m.function(f), opts);

            // Same loop structure in every variant: site count and
            // header ids match the unmasked lowering exactly.
            ASSERT_EQ(var.osrSites.size(), base.osrSites.size());
            ASSERT_EQ(var.blockStarts.size(),
                      base.blockStarts.size());
            for (size_t i = 0; i < var.osrSites.size(); ++i) {
                const codegen::OsrSite &s = var.osrSites[i];
                EXPECT_EQ(s.header, base.osrSites[i].header);
                ASSERT_LT(s.header, var.blockStarts.size());
                ASSERT_LT(s.offset, var.code.size());
                // The recorded pc is a branch whose taken target is
                // the loop header's first instruction, and it is a
                // *back* edge: the header precedes the branch.
                const isa::MInst &inst = var.code[s.offset];
                ASSERT_TRUE(inst.op == isa::MOp::Jmp ||
                            inst.op == isa::MOp::Bnz);
                EXPECT_EQ(inst.target,
                          var.blockStarts[s.header]);
                EXPECT_LE(var.blockStarts[s.header], s.offset);
            }
        }
    }
    // The scenario would be vacuous without loops to OSR into.
    EXPECT_GT(functions_with_loops, 0u);
}

// ---------------------------------------------------------------
// Runtime mid-loop flips.
// ---------------------------------------------------------------

/** Host whose hot() runs one practically-unbounded loop (two loads
 *  per iteration, result accumulates into a global): an entry-only
 *  flip of hot can never take effect inside a test window. */
ir::Module
makeLoopHost()
{
    ir::Module m("loophost");
    ir::GlobalId arr = m.addGlobal("arr", 1 << 16);
    ir::GlobalId out = m.addGlobal("out", 8);
    IRBuilder b(m);

    b.startFunction("hot", 0);
    Reg base = b.globalAddr(arr);
    Reg obase = b.globalAddr(out);
    Reg one = b.constInt(1);
    Reg n = b.constInt(1ll << 40);
    Reg mask = b.constInt((1 << 16) - 64);
    Reg i = b.constInt(0);
    Reg cur = b.constInt(0);
    Reg sum = b.constInt(0);
    Reg tmp = b.func().newReg();
    Reg x = b.func().newReg();
    b.func().noteReg(tmp);
    b.func().noteReg(x);
    BlockId loop = b.newBlock();
    BlockId done = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(tmp, ir::Opcode::And, cur, mask);
    b.binaryInto(tmp, ir::Opcode::Add, tmp, base);
    b.loadInto(x, tmp, 0);
    b.binaryInto(sum, ir::Opcode::Add, sum, x);
    b.loadInto(x, tmp, 64);
    b.binaryInto(sum, ir::Opcode::Add, sum, x);
    b.store(obase, sum);
    Reg stride = b.constInt(128);
    b.binaryInto(cur, ir::Opcode::Add, cur, stride);
    b.binaryInto(i, ir::Opcode::Add, i, one);
    Reg c = b.cmpLt(i, n);
    b.condBr(c, loop, done);
    b.setBlock(done);
    b.ret();

    b.startFunction("main", 0);
    BlockId loop2 = b.newBlock();
    b.br(loop2);
    b.setBlock(loop2);
    b.callVoid(0);
    b.br(loop2);
    return m;
}

/** Host whose hot() is loop-free (an if/else diamond keeps it
 *  multi-block, hence virtualized) and gets re-entered constantly
 *  from main's loop: the entry-flip fallback path. */
ir::Module
makeStraightHost()
{
    ir::Module m("straighthost");
    ir::GlobalId arr = m.addGlobal("arr", 1 << 12);
    ir::GlobalId out = m.addGlobal("out", 8);
    IRBuilder b(m);

    b.startFunction("hot", 0);
    Reg base = b.globalAddr(arr);
    Reg obase = b.globalAddr(out);
    Reg a = b.load(base, 0);
    Reg c = b.load(base, 64);
    BlockId bt = b.newBlock();
    BlockId bf = b.newBlock();
    BlockId join = b.newBlock();
    Reg cond = b.cmpLt(a, c);
    b.condBr(cond, bt, bf);
    b.setBlock(bt);
    b.store(obase, a);
    b.br(join);
    b.setBlock(bf);
    b.store(obase, c);
    b.br(join);
    b.setBlock(join);
    b.ret();

    b.startFunction("main", 0);
    BlockId loop = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.callVoid(0);
    b.br(loop);
    return m;
}

struct OsrRunResult
{
    uint64_t instructions = 0;
    uint64_t hints = 0;
    uint64_t codeVersion = 0;
    uint64_t osrPatches = 0;
    runtime::FlipEffectStats fe;
};

/** Deploy an all-NT variant of hot() mid-run under the given engine
 *  and OSR setting; return the observable outcome. */
OsrRunResult
runLoopScenario(sim::Engine engine, bool osr)
{
    ir::Module m = makeLoopHost();
    isa::Image image = pcc::compile(m);
    sim::Machine machine;
    machine.setEngine(engine);
    sim::Process &proc = machine.load(image, 0);
    runtime::RuntimeOptions opts;
    opts.runtimeCore = 1;
    opts.osr = osr;
    runtime::ProteanRuntime rt(machine, proc, opts);
    rt.start();
    machine.runFor(machine.msToCycles(20));
    EXPECT_EQ(machine.core(0).hpm().hints, 0u);

    ir::FuncId hot = rt.module().findFunction("hot")->id();
    BitVector mask(rt.module().numLoads(), true);
    rt.deployVariant(hot, mask);
    machine.runFor(machine.msToCycles(100));

    OsrRunResult r;
    r.instructions = machine.core(0).hpm().instructions;
    r.hints = machine.core(0).hpm().hints;
    r.codeVersion = proc.codeVersion();
    r.osrPatches = rt.osrPatchesWritten();
    r.fe = rt.flipEffectStats(machine.now());
    return r;
}

TEST(OsrFlip, MidLoopFlipExecutesNewVariant)
{
    // Control: entry-only. hot never returns, so the flip stays
    // pending and the host never executes a hint instruction.
    OsrRunResult off = runLoopScenario(sim::Engine::Batch, false);
    EXPECT_EQ(off.hints, 0u);
    EXPECT_EQ(off.fe.osrFlips, 0u);
    EXPECT_EQ(off.fe.entryFlips, 0u);
    EXPECT_EQ(off.fe.pending, 1u);
    EXPECT_EQ(off.osrPatches, 0u);

    // OSR: the same flip lands at the next back-edge — the variant
    // executes (hints retire) on the very next loop iteration.
    OsrRunResult on = runLoopScenario(sim::Engine::Batch, true);
    EXPECT_GT(on.hints, 0u);
    EXPECT_EQ(on.fe.osrFlips, 1u);
    EXPECT_EQ(on.fe.entryFlips, 0u);
    EXPECT_EQ(on.fe.pending, 0u);
    EXPECT_GT(on.osrPatches, 0u);
    // And it lands orders of magnitude faster than the censored
    // pending latency of the control.
    EXPECT_LT(on.fe.worstOsr, off.fe.worstPending / 10);
}

TEST(OsrFlip, StepVsBatchCycleExact)
{
    OsrRunResult step = runLoopScenario(sim::Engine::Step, true);
    OsrRunResult batch = runLoopScenario(sim::Engine::Batch, true);
    EXPECT_EQ(step.instructions, batch.instructions);
    EXPECT_EQ(step.hints, batch.hints);
    EXPECT_EQ(step.osrPatches, batch.osrPatches);
    EXPECT_EQ(step.fe.osrFlips, batch.fe.osrFlips);
    EXPECT_EQ(step.fe.worstOsr, batch.fe.worstOsr);
    EXPECT_EQ(step.fe.worstEntry, batch.fe.worstEntry);
}

TEST(OsrFlip, RedirectRetiresDecodedSuperblocks)
{
    // The Batch engine caches decoded superblocks keyed on the
    // process codeVersion; every osrRedirect patch must bump it so
    // stale blocks retire instead of executing the old branch.
    OsrRunResult off = runLoopScenario(sim::Engine::Batch, false);
    OsrRunResult on = runLoopScenario(sim::Engine::Batch, true);
    EXPECT_GT(on.codeVersion, off.codeVersion);
    EXPECT_GE(on.codeVersion - off.codeVersion, on.osrPatches);
    // Post-retirement execution is the variant's: hints retire.
    EXPECT_GT(on.hints, 0u);
}

TEST(OsrFlip, LoopFreeFunctionFallsBackToEntryFlip)
{
    ir::Module m = makeStraightHost();
    isa::Image image = pcc::compile(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    runtime::RuntimeOptions opts;
    opts.runtimeCore = 1;
    opts.osr = true;
    runtime::ProteanRuntime rt(machine, proc, opts);
    rt.start();
    machine.runFor(machine.msToCycles(20));

    ir::FuncId hot = rt.module().findFunction("hot")->id();
    EXPECT_EQ(rt.compiler().osrSiteCount(hot), 0u);

    BitVector mask(rt.module().numLoads(), true);
    rt.deployVariant(hot, mask);
    machine.runFor(machine.msToCycles(100));

    // No back-edges to patch: the flip takes effect at the next
    // re-entry from main's call loop instead.
    runtime::FlipEffectStats fe =
        rt.flipEffectStats(machine.now());
    EXPECT_EQ(fe.osrFlips, 0u);
    EXPECT_EQ(fe.entryFlips, 1u);
    EXPECT_EQ(fe.pending, 0u);
    EXPECT_EQ(rt.osrPatchesWritten(), 0u);
    EXPECT_GT(machine.core(0).hpm().hints, 0u);
}

// ---------------------------------------------------------------
// Sandbox-differential equivalence at every OSR point.
// ---------------------------------------------------------------

/** A virtualized kernel with a data-dependent loop and NT-maskable
 *  loads: the osrCheck subject. */
struct LoopProgram
{
    ir::Module module{"osrval"};
    ir::GlobalId buf;
    ir::FuncId kernel = ir::kInvalidId;
    isa::Image image;
    codegen::VirtualizationMap slots;

    LoopProgram() : buf(module.addGlobal("buf", 128))
    {
        IRBuilder b(module);
        ir::Function &kf = b.startFunction("kernel", 1);
        kernel = kf.id();
        Reg n{0};
        Reg base = b.globalAddr(buf);
        Reg one = b.constInt(1);
        Reg seven = b.constInt(7);
        Reg eight = b.constInt(8);
        Reg i = b.constInt(0);
        Reg sum = b.constInt(0);
        Reg idx = b.func().newReg();
        Reg addr = b.func().newReg();
        Reg x = b.func().newReg();
        b.func().noteReg(idx);
        b.func().noteReg(addr);
        b.func().noteReg(x);
        BlockId loop = b.newBlock();
        BlockId done = b.newBlock();
        b.br(loop);
        b.setBlock(loop);
        b.binaryInto(idx, ir::Opcode::Add, i, n);
        b.binaryInto(idx, ir::Opcode::And, idx, seven);
        b.binaryInto(addr, ir::Opcode::Mul, idx, eight);
        b.binaryInto(addr, ir::Opcode::Add, addr, base);
        b.loadInto(x, addr, 0);
        b.binaryInto(sum, ir::Opcode::Add, sum, x);
        b.store(addr, sum, 64);
        b.binaryInto(i, ir::Opcode::Add, i, one);
        Reg c = b.cmpLt(i, eight);
        b.condBr(c, loop, done);
        b.setBlock(done);
        b.ret(sum);

        b.startFunction("main", 0);
        b.callVoid(kernel, {b.constInt(5)});
        b.ret();

        image = pcc::compile(module);
        slots = pcc::chooseVirtualizedCallees(
            module, pcc::EdgePolicy::MultiBlockCallees);
    }
};

TEST(OsrCheck, StateEquivalentAtEveryOsrPoint)
{
    LoopProgram p;
    validate::Validator v(p.module, p.image, p.slots,
                          validate::ValidateConfig{});
    for (size_t depth = 0; depth <= p.module.numLoads(); ++depth) {
        BitVector mask(p.module.numLoads());
        for (size_t i = 0; i < depth; ++i)
            mask.set(i);
        uint64_t steps = 0;
        std::string reason;
        EXPECT_TRUE(v.osrCheck(p.kernel, mask, &steps, &reason))
            << "depth " << depth << ": " << reason;
        // The kernel has loops, so the check actually executed
        // flipped runs rather than early-returning.
        EXPECT_GT(steps, 0u) << "depth " << depth;
    }
}

// ---------------------------------------------------------------
// Hot-loop fleet scenario: serial vs parallel identity.
// ---------------------------------------------------------------

fleet::FleetStats
runHotloopFleet(uint32_t workers)
{
    fleet::FleetConfig cfg;
    cfg.numServers = 4;
    cfg.batch = "hotloop";
    cfg.hotFuncsOnly = true;
    cfg.remoteBackend = true;
    cfg.seed = 7;
    cfg.osr = true;
    cfg.parallelWorkers = workers;
    fleet::FleetSim sim(cfg);
    sim.run(150.0);
    return sim.stats();
}

TEST(OsrFleet, SerialVsParallelIdentical)
{
    fleet::FleetStats serial = runHotloopFleet(1);
    fleet::FleetStats par = runHotloopFleet(2);
    // The scenario exercises the OSR path.
    EXPECT_GT(serial.osrFlips, 0u);
    EXPECT_EQ(serial.entryFlips, 0u);
    // Identical observable state regardless of worker threads.
    EXPECT_EQ(serial.deployRequests, par.deployRequests);
    EXPECT_EQ(serial.hostBranches, par.hostBranches);
    EXPECT_EQ(serial.entryFlips, par.entryFlips);
    EXPECT_EQ(serial.osrFlips, par.osrFlips);
    EXPECT_EQ(serial.pendingFlips, par.pendingFlips);
    EXPECT_EQ(serial.worstEntryFlip, par.worstEntryFlip);
    EXPECT_EQ(serial.worstOsrFlip, par.worstOsrFlip);
    EXPECT_EQ(serial.worstPendingFlip, par.worstPendingFlip);
    EXPECT_EQ(serial.osrRedirects, par.osrRedirects);
    EXPECT_EQ(serial.osrPatches, par.osrPatches);
    EXPECT_EQ(serial.service.compiles, par.service.compiles);
    EXPECT_EQ(serial.service.requests, par.service.requests);
}

} // namespace
} // namespace protean
