/**
 * @file
 * Tests for the continuous-profiling plane: obs::Profile merge
 * algebra and stable exports, per-server VariantProfiler attribution
 * (variant masks + phase ids) and flip ledger, the fleet
 * VariantScoreboard's winner selection, and byte-identical profile /
 * flamegraph / scoreboard exports across repeats and
 * serial-vs-parallel fleet stepping.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/scoreboard.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/profiler.h"
#include "support/logging.h"

namespace protean {
namespace {

// ---------------------------------------------------------------- //
//                       Profile merge algebra                      //
// ---------------------------------------------------------------- //

obs::ProfileKey
key(uint64_t hash, const std::string &mask, uint32_t phase)
{
    obs::ProfileKey k;
    k.funcHash = hash;
    k.mask = mask;
    k.phase = phase;
    return k;
}

obs::ProfileCounts
counts(uint64_t samples, uint64_t cycles, uint64_t insts)
{
    obs::ProfileCounts c;
    c.samples = samples;
    c.cycles = cycles;
    c.instructions = insts;
    return c;
}

TEST(Profile, RecordAccumulatesIntoOneBucket)
{
    obs::Profile p;
    p.record(key(7, "m", 0), counts(1, 100, 80));
    p.record(key(7, "m", 0), counts(2, 50, 40));
    p.record(key(7, "m", 1), counts(1, 10, 5));
    ASSERT_EQ(p.entries().size(), 2u);
    EXPECT_EQ(p.totalSamples(), 4u);
    const obs::ProfileCounts &c = p.entries().at(key(7, "m", 0));
    EXPECT_EQ(c.samples, 3u);
    EXPECT_EQ(c.cycles, 150u);
    EXPECT_EQ(c.instructions, 120u);
    EXPECT_EQ(p.samplesOf(7), 4u);
}

TEST(Profile, MergeIsAssociativeAndCommutative)
{
    auto make = [](uint64_t hash, uint64_t n) {
        obs::Profile p;
        p.record(key(hash, "", 0), counts(n, n * 10, n * 8));
        p.record(key(42, "shared", 1), counts(n, n, n));
        return p;
    };
    obs::Profile a = make(1, 3), b = make(2, 5), c = make(3, 7);

    obs::Profile ab_c; // (a + b) + c
    ab_c.merge(a);
    ab_c.merge(b);
    ab_c.merge(c);
    obs::Profile c_ba; // c + (b + a), opposite order
    c_ba.merge(c);
    c_ba.merge(b);
    c_ba.merge(a);
    EXPECT_EQ(ab_c.toJson(), c_ba.toJson());
    EXPECT_EQ(ab_c.folded(), c_ba.folded());
    EXPECT_EQ(ab_c.totalSamples(), 3u + 5 + 7 + 3 + 5 + 7);
    // The shared bucket folded into one entry with summed counts.
    EXPECT_EQ(ab_c.entries().at(key(42, "shared", 1)).samples,
              3u + 5 + 7);
}

TEST(Profile, DrainMovesEverythingAndEmptiesSource)
{
    obs::Profile src;
    src.record(key(9, "x", 2), counts(4, 400, 300));
    src.setName(9, "hot_fn");
    obs::Profile dst;
    dst.record(key(9, "x", 2), counts(1, 10, 8));
    src.drainInto(dst);
    EXPECT_TRUE(src.empty());
    EXPECT_EQ(src.totalSamples(), 0u);
    EXPECT_EQ(dst.totalSamples(), 5u);
    EXPECT_EQ(dst.entries().at(key(9, "x", 2)).samples, 5u);
    EXPECT_EQ(dst.nameOf(9), "hot_fn");
}

TEST(Profile, NamesFirstWriterWinsAndFallbacks)
{
    obs::Profile p;
    p.setName(0xabc, "first");
    p.setName(0xabc, "second"); // ignored
    EXPECT_EQ(p.nameOf(0xabc), "first");
    EXPECT_EQ(p.nameOf(0), "[unattributed]");
    EXPECT_EQ(p.nameOf(0x1f), "f1f"); // never named
}

TEST(Profile, HottestFunctionSumsBucketsAndBreaksTiesLow)
{
    obs::Profile p;
    EXPECT_EQ(p.hottestFunction(), 0u);
    p.record(key(5, "", 0), counts(3, 0, 0));
    p.record(key(5, "m", 1), counts(3, 0, 0)); // 5 totals 6
    p.record(key(2, "", 0), counts(5, 0, 0));
    EXPECT_EQ(p.hottestFunction(), 5u);
    p.record(key(2, "", 1), counts(1, 0, 0)); // tie at 6 each
    EXPECT_EQ(p.hottestFunction(), 2u);       // smaller hash wins
}

TEST(Profile, FoldedLinesNameVariantAndPhaseFrames)
{
    obs::Profile p;
    p.record(key(3, "", 0), counts(2, 0, 0));
    p.record(key(3, "f0:110", 1), counts(7, 0, 0));
    p.setName(3, "kernel");
    EXPECT_EQ(p.folded(),
              "phase_0;kernel;original 2\n"
              "phase_1;kernel;mask_f0:110 7\n");
    EXPECT_NE(p.toJson().find("\"total_samples\": 9"),
              std::string::npos);
}

// ---------------------------------------------------------------- //
//                       Variant scoreboard                         //
// ---------------------------------------------------------------- //

runtime::FlipRecord
flip(uint64_t hash, const std::string &mask, uint32_t phase,
     double before, double after)
{
    runtime::FlipRecord r;
    r.funcHash = hash;
    r.mask = mask;
    r.phase = phase;
    r.ipcBefore = before;
    r.ipcAfter = after;
    return r;
}

TEST(Scoreboard, PicksThePlantedWinnerPerPhase)
{
    fleet::VariantScoreboard sb;
    EXPECT_TRUE(sb.empty());
    EXPECT_EQ(sb.recommendMask(11, 0), "");

    // Phase 0: mask "a" planted to win (+0.3 mean), "b" loses.
    sb.recordFlip(flip(11, "a", 0, 1.0, 1.3));
    sb.recordFlip(flip(11, "a", 0, 1.0, 1.3));
    sb.recordFlip(flip(11, "b", 0, 1.0, 0.9));
    // Phase 1: the tables turn — "b" wins.
    sb.recordFlip(flip(11, "a", 1, 1.0, 0.8));
    sb.recordFlip(flip(11, "b", 1, 1.0, 1.4));

    EXPECT_EQ(sb.recommendMask(11, 0), "a");
    EXPECT_EQ(sb.recommendMask(11, 1), "b");
    EXPECT_EQ(sb.recommendMask(11, 2), ""); // phase never flipped
    EXPECT_EQ(sb.recommendMask(99, 0), ""); // function never flipped
    EXPECT_EQ(sb.totalFlips(), 5u);

    const fleet::VariantOutcome *o = sb.outcome(11, "a", 0);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->flips, 2u);
    EXPECT_EQ(o->wins, 2u);
    EXPECT_NEAR(o->score(), 0.3, 1e-9);
    EXPECT_EQ(sb.outcome(11, "zzz", 0), nullptr);
}

TEST(Scoreboard, TiesBreakTowardTheSmallerMaskKey)
{
    fleet::VariantScoreboard sb;
    sb.recordFlip(flip(4, "bb", 0, 1.0, 1.2));
    sb.recordFlip(flip(4, "aa", 0, 1.0, 1.2)); // same score
    EXPECT_EQ(sb.recommendMask(4, 0), "aa");
}

TEST(Scoreboard, JsonIsStableAndListsRecommendations)
{
    fleet::VariantScoreboard sb;
    sb.recordFlip(flip(7, "m1", 0, 1.0, 1.1));
    sb.recordFlip(flip(7, "m2", 0, 1.0, 0.9));
    std::string j = sb.toJson();
    EXPECT_EQ(j, sb.toJson());
    EXPECT_NE(j.find("\"recommendations\""), std::string::npos);
    EXPECT_NE(j.find("\"m1\""), std::string::npos);
    EXPECT_NE(j.find("\"total_flips\": 2"), std::string::npos);
}

// ---------------------------------------------------------------- //
//                Fleet integration: profiled runs                  //
// ---------------------------------------------------------------- //

class FleetProfileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::metrics().reset();
        obs::tracer().clear();
        obs::tracer().setEnabled(false);
    }

    void
    TearDown() override
    {
        obs::tracer().setEnabled(false);
        obs::tracer().clear();
        obs::metrics().reset();
    }
};

fleet::FleetConfig
profiledConfig(uint32_t workers = 1)
{
    fleet::FleetConfig cfg;
    cfg.numServers = 3;
    cfg.meanRequestMs = 1.0;
    cfg.parallelWorkers = workers;
    cfg.telemetry.enabled = true;
    cfg.telemetry.profiling = true;
    return cfg;
}

TEST_F(FleetProfileTest, ProfilingOffKeepsThePlaneEmpty)
{
    fleet::FleetConfig cfg = profiledConfig();
    cfg.telemetry.profiling = false;
    fleet::FleetSim sim(cfg);
    sim.run(20.0);
    sim.flushTelemetry();
    ASSERT_NE(sim.telemetry(), nullptr);
    EXPECT_TRUE(sim.telemetry()->fleetProfile().empty());
    EXPECT_TRUE(sim.telemetry()->scoreboard().empty());
    for (const fleet::FleetWindow &w : sim.telemetry()->windows()) {
        EXPECT_EQ(w.profileSamples, 0u);
        EXPECT_EQ(w.flipRecords, 0u);
    }
}

TEST_F(FleetProfileTest, SamplesCarryVariantMasksAndFlipsScore)
{
    fleet::FleetSim sim(profiledConfig());
    // Long enough for the deploy stream to install variants and for
    // PC samples to land inside their code ranges.
    sim.run(120.0);
    sim.flushTelemetry();
    const fleet::TelemetryHub &hub = *sim.telemetry();

    // Samples landed and the hub's windows account for all of them.
    const obs::Profile &prof = hub.fleetProfile();
    ASSERT_FALSE(prof.empty());
    uint64_t window_samples = 0, window_flips = 0;
    for (const fleet::FleetWindow &w : hub.windows()) {
        window_samples += w.profileSamples;
        window_flips += w.flipRecords;
    }
    EXPECT_EQ(window_samples, prof.totalSamples());
    EXPECT_EQ(window_flips, hub.scoreboard().totalFlips());

    // The deploy stream installs variants, so some samples must be
    // attributed to a non-empty NT-mask, and each such bucket must
    // name a real function (hash != 0).
    bool variant_bucket = false;
    for (const auto &[k, c] : prof.entries()) {
        (void)c;
        if (!k.mask.empty()) {
            variant_bucket = true;
            EXPECT_NE(k.funcHash, 0u);
        }
    }
    EXPECT_TRUE(variant_bucket);

    // Flip experiments matured into the scoreboard, and the hottest
    // function was named (the profiler knows the binary's symbols).
    EXPECT_GT(hub.scoreboard().totalFlips(), 0u);
    uint64_t hot = prof.hottestFunction();
    ASSERT_NE(hot, 0u);
    EXPECT_NE(prof.nameOf(hot),
              strformat("f%llx",
                        static_cast<unsigned long long>(hot)))
        << "hottest function stayed an anonymous hash";
    // A recommendation exists for at least one flipped bucket.
    const auto &outcomes = hub.scoreboard().outcomes();
    ASSERT_FALSE(outcomes.empty());
    const obs::ProfileKey &first = outcomes.begin()->first;
    EXPECT_FALSE(
        hub.scoreboard().recommendMask(first.funcHash, first.phase)
            .empty());
}

TEST_F(FleetProfileTest, ScrapePaysForProfilePayloadBytes)
{
    fleet::FleetConfig with = profiledConfig();
    fleet::FleetConfig without = profiledConfig();
    without.telemetry.profiling = false;
    auto scrapeBytes = [](const fleet::FleetConfig &cfg) {
        obs::metrics().reset();
        fleet::FleetSim sim(cfg);
        sim.run(40.0);
        sim.flushTelemetry();
        return sim.telemetry()->scrapeBytesTotal();
    };
    // Shipping profile entries and flip records costs wire bytes;
    // the profiled fleet's scrape payload must be strictly larger.
    EXPECT_GT(scrapeBytes(with), scrapeBytes(without));
}

TEST_F(FleetProfileTest, ExportsByteIdenticalSerialVsParallel4)
{
    auto runOnce = [](uint32_t workers) {
        obs::metrics().reset();
        fleet::FleetSim sim(profiledConfig(workers));
        sim.run(40.0);
        sim.flushTelemetry();
        const fleet::TelemetryHub &hub = *sim.telemetry();
        return hub.fleetProfile().toJson() + "\n---\n" +
            hub.fleetProfile().folded() + "\n---\n" +
            hub.scoreboard().toJson() + "\n---\n" + hub.toJson();
    };
    std::string serial = runOnce(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, runOnce(1)); // repeatable
    EXPECT_EQ(serial, runOnce(4)); // parallel stepping identical
    EXPECT_NE(serial.find("\"profile\""), std::string::npos);
    EXPECT_NE(serial.find("\"scoreboard\""), std::string::npos);
}

} // namespace
} // namespace protean
