/**
 * @file
 * Tests for PC3D: the search-space heuristics (Figure 8's filters)
 * and the greedy variant search of Algorithms 1-2, validated against
 * a synthetic contention oracle with known ground truth.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.h"
#include "pc3d/heuristics.h"
#include "pc3d/search.h"
#include "workloads/registry.h"

namespace protean {
namespace pc3d {
namespace {

// --------------------------------------------------------------
// Heuristics.

TEST(Heuristics, ColdFunctionsPruned)
{
    ir::Module m =
        workloads::buildBatch(workloads::batchSpec("libquantum"));
    // Only the hot function is covered.
    ir::FuncId hot = m.findFunction("hot_0")->id();
    SearchSpace space = buildSearchSpace(m, {hot});

    EXPECT_EQ(space.fullProgramLoads, 636u);
    // Active-region loads: just hot_0's loads.
    EXPECT_EQ(space.activeRegionLoads,
              m.function(hot).loadCount());
    EXPECT_LT(space.activeRegionLoads, space.fullProgramLoads / 10);
}

TEST(Heuristics, MaxDepthFilterDropsOuterLoads)
{
    workloads::BatchSpec spec = workloads::batchSpec("libquantum");
    ir::Module m = workloads::buildBatch(spec);
    ir::FuncId hot = m.findFunction("hot_0")->id();
    SearchSpace space = buildSearchSpace(m, {hot});

    // hot_0 carries: 1 cursor load (entry), outerLoads at depth 1,
    // streamLoadsPerIter at depth 2. Only the latter survive.
    EXPECT_EQ(space.maxDepthLoads, spec.streamLoadsPerIter);
    EXPECT_EQ(space.loads.size(), space.maxDepthLoads);
    EXPECT_LT(space.maxDepthLoads, space.activeRegionLoads);
}

TEST(Heuristics, HotnessOrderPreserved)
{
    ir::Module m("two_hot");
    ir::GlobalId g = m.addGlobal("g", 4096);
    ir::IRBuilder b(m);
    for (int k = 0; k < 2; ++k) {
        b.startFunction(k == 0 ? "a" : "c", 0);
        ir::Reg base = b.globalAddr(g);
        ir::Reg one = b.constInt(1);
        ir::Reg i = b.constInt(0);
        ir::BlockId loop = b.newBlock();
        ir::BlockId done = b.newBlock();
        b.br(loop);
        b.setBlock(loop);
        ir::Reg x = b.load(base, k * 64);
        b.binaryInto(i, ir::Opcode::Add, i, x);
        b.binaryInto(i, ir::Opcode::Add, i, one);
        ir::Reg c = b.cmpLt(i, one);
        b.condBr(c, loop, done);
        b.setBlock(done);
        b.ret();
    }
    m.renumberLoads();

    SearchSpace hot_a_first = buildSearchSpace(m, {0, 1});
    SearchSpace hot_c_first = buildSearchSpace(m, {1, 0});
    ASSERT_EQ(hot_a_first.loads.size(), 2u);
    EXPECT_EQ(hot_a_first.loads[0], hot_c_first.loads[1]);
    EXPECT_EQ(hot_a_first.loads[1], hot_c_first.loads[0]);
}

TEST(Heuristics, EmptyHotSetYieldsEmptySpace)
{
    ir::Module m =
        workloads::buildBatch(workloads::batchSpec("er-naive"));
    SearchSpace space = buildSearchSpace(m, {});
    EXPECT_TRUE(space.loads.empty());
    EXPECT_EQ(space.activeRegionLoads, 0u);
    EXPECT_EQ(space.fullProgramLoads, 25u);
}

TEST(Heuristics, Figure8ReductionShape)
{
    // Across the contentious set, coverage pruning and the max-depth
    // filter must both shrink the space substantially (the paper
    // reports 12x and 44x average factors).
    double cov_product = 1.0, full_product = 1.0;
    int n = 0;
    for (const auto &name : workloads::contentiousBatchNames()) {
        ir::Module m =
            workloads::buildBatch(workloads::batchSpec(name));
        std::vector<ir::FuncId> hot;
        for (ir::FuncId f = 0; f < m.numFunctions(); ++f) {
            if (m.function(f).name().rfind("hot_", 0) == 0)
                hot.push_back(f);
        }
        SearchSpace s = buildSearchSpace(m, hot);
        ASSERT_GT(s.maxDepthLoads, 0u) << name;
        cov_product *= static_cast<double>(s.fullProgramLoads) /
            static_cast<double>(s.activeRegionLoads);
        full_product *= static_cast<double>(s.fullProgramLoads) /
            static_cast<double>(s.maxDepthLoads);
        ++n;
    }
    double cov_geo = std::pow(cov_product, 1.0 / n);
    double full_geo = std::pow(full_product, 1.0 / n);
    EXPECT_GT(cov_geo, 3.0);
    EXPECT_GT(full_geo, cov_geo);
    EXPECT_GT(full_geo, 8.0);
}

// --------------------------------------------------------------
// Variant search against a synthetic oracle.

/** Ground-truth model: each load has a contention contribution
 *  (removed when hinted) and a hint cost (paid when hinted). */
struct Oracle
{
    std::vector<double> benefit; ///< contention removed by hint i
    std::vector<double> cost;    ///< host slowdown from hint i
    double baseContention = 0.0; ///< co-runner QoS loss at nap 0

    size_t n() const { return benefit.size(); }

    double
    qos(const BitVector &mask, double nap) const
    {
        double contention = baseContention;
        for (size_t i = 0; i < n(); ++i) {
            if (mask.test(i))
                contention -= benefit[i];
        }
        contention = std::max(contention, 0.0);
        // Napping scales the host's pressure linearly.
        return std::min(1.0, 1.0 - contention * (1.0 - nap));
    }

    double
    bps(const BitVector &mask, double nap) const
    {
        double slow = 0.0;
        for (size_t i = 0; i < n(); ++i) {
            if (mask.test(i))
                slow += cost[i];
        }
        return (1.0 - nap) * std::max(0.0, 1.0 - slow);
    }
};

/** Drive a search to completion against the oracle. */
size_t
driveSearch(VariantSearch &search, const Oracle &oracle,
            size_t max_windows = 4000)
{
    size_t windows = 0;
    while (!search.done() && windows < max_windows) {
        auto req = search.current();
        Measurement m;
        m.hostBps = oracle.bps(req.mask, req.nap);
        m.minQos = oracle.qos(req.mask, req.nap);
        search.onMeasurement(m);
        ++windows;
    }
    EXPECT_TRUE(search.done());
    return windows;
}

TEST(Search, UncontendedSettlesOnOriginalImmediately)
{
    Oracle oracle;
    oracle.benefit = {0.0, 0.0};
    oracle.cost = {0.05, 0.05};
    oracle.baseContention = 0.0;

    SearchConfig cfg;
    cfg.qosTarget = 0.95;
    VariantSearch search(cfg, 2);
    size_t windows = driveSearch(search, oracle);
    EXPECT_TRUE(search.bestMask().none());
    EXPECT_DOUBLE_EQ(search.bestNap(), 0.0);
    EXPECT_EQ(windows, 1u); // single window: variant 0 at nap 0
    EXPECT_EQ(search.variantsTried(), 1u);
}

TEST(Search, KeepsBeneficialHintsDropsCostlyOnes)
{
    // Load 0: big benefit, tiny cost -> keep hinted.
    // Load 1: no benefit, big cost -> revoke.
    Oracle oracle;
    oracle.benefit = {0.30, 0.0};
    oracle.cost = {0.02, 0.25};
    oracle.baseContention = 0.30;

    SearchConfig cfg;
    cfg.qosTarget = 0.95;
    cfg.napEpsilon = 0.02;
    VariantSearch search(cfg, 2);
    driveSearch(search, oracle);

    EXPECT_TRUE(search.bestMask().test(0));
    EXPECT_FALSE(search.bestMask().test(1));
    EXPECT_LT(search.bestNap(), 0.1);
    EXPECT_GT(search.bestBps(), 0.6);
}

TEST(Search, AllHintsWhenAllBeneficial)
{
    Oracle oracle;
    oracle.benefit = {0.1, 0.1, 0.1};
    oracle.cost = {0.01, 0.01, 0.01};
    oracle.baseContention = 0.30;

    SearchConfig cfg;
    cfg.qosTarget = 0.98;
    VariantSearch search(cfg, 3);
    driveSearch(search, oracle);
    EXPECT_EQ(search.bestMask().count(), 3u);
}

TEST(Search, FallsBackToNappingWhenHintsUseless)
{
    // Hints do nothing; the co-runner still needs protection: the
    // search must settle on heavy napping (ReQoS-like behavior).
    Oracle oracle;
    oracle.benefit = {0.0, 0.0};
    oracle.cost = {0.0, 0.0};
    oracle.baseContention = 0.40;

    SearchConfig cfg;
    cfg.qosTarget = 0.95;
    cfg.napEpsilon = 0.02;
    VariantSearch search(cfg, 2);
    driveSearch(search, oracle);
    // qos = 1 - 0.4*(1-f) >= 0.95 -> f >= 0.875
    EXPECT_NEAR(search.bestNap(), 0.875, 0.03);
}

TEST(Search, BetterThanPureNapBaseline)
{
    // With useful hints, the searched configuration must beat the
    // best nap-only configuration.
    Oracle oracle;
    oracle.benefit = {0.15, 0.15, 0.10};
    oracle.cost = {0.03, 0.02, 0.04};
    oracle.baseContention = 0.40;

    SearchConfig cfg;
    cfg.qosTarget = 0.95;
    VariantSearch search(cfg, 3);
    driveSearch(search, oracle);

    // Nap-only: f = 0.875 -> bps 0.125.
    BitVector none(3);
    double nap_only = oracle.bps(none, 0.875);
    EXPECT_GT(search.bestBps(), 2.0 * nap_only);
}

TEST(Search, TaintedWindowsAreDiscarded)
{
    Oracle oracle;
    oracle.benefit = {0.2};
    oracle.cost = {0.02};
    oracle.baseContention = 0.2;

    SearchConfig cfg;
    VariantSearch search(cfg, 1);
    auto before = search.current();
    Measurement tainted;
    tainted.tainted = true;
    search.onMeasurement(tainted);
    EXPECT_EQ(search.windowsUsed(), 0u);
    auto after = search.current();
    EXPECT_TRUE(before.mask == after.mask);
    EXPECT_DOUBLE_EQ(before.nap, after.nap);
}

TEST(Search, BoundReuseSavesWindows)
{
    // Variant 1 still needs substantial napping, so the bounds
    // established by Algorithm 1 genuinely narrow each later
    // binary search.
    Oracle oracle;
    oracle.benefit = {0.06, 0.06, 0.06, 0.06, 0.06};
    oracle.cost = {0.02, 0.02, 0.02, 0.02, 0.02};
    oracle.baseContention = 0.50;

    SearchConfig with;
    with.qosTarget = 0.95;
    with.reuseNapBounds = true;
    VariantSearch s1(with, 5);
    size_t w1 = driveSearch(s1, oracle);

    SearchConfig without = with;
    without.reuseNapBounds = false;
    VariantSearch s2(without, 5);
    size_t w2 = driveSearch(s2, oracle);

    EXPECT_LT(w1, w2);
}

TEST(Search, EpsilonControlsPrecision)
{
    Oracle oracle;
    oracle.benefit = {0.0};
    oracle.cost = {0.0};
    oracle.baseContention = 0.40;

    SearchConfig coarse;
    coarse.napEpsilon = 0.10;
    VariantSearch s1(coarse, 1);
    size_t w1 = driveSearch(s1, oracle);

    SearchConfig fine;
    fine.napEpsilon = 0.01;
    VariantSearch s2(fine, 1);
    size_t w2 = driveSearch(s2, oracle);

    EXPECT_LT(w1, w2);
    // Both still protect QoS (result >= minimum feasible nap).
    EXPECT_GE(s1.bestNap(), 0.875 - 0.10);
    EXPECT_GE(s2.bestNap(), 0.875 - 0.01);
}

TEST(Search, ZeroLoadSpace)
{
    // No candidate loads: the search degenerates to nap selection.
    Oracle oracle;
    oracle.baseContention = 0.2;
    SearchConfig cfg;
    cfg.qosTarget = 0.95;
    VariantSearch search(cfg, 0);
    driveSearch(search, oracle);
    EXPECT_EQ(search.bestMask().size(), 0u);
    EXPECT_GT(search.bestNap(), 0.5);
}

TEST(Search, MonotoneNapDuringVariantEval)
{
    // The binary search must only ever query naps within [0, cap].
    Oracle oracle;
    oracle.benefit = {0.1, 0.05};
    oracle.cost = {0.02, 0.02};
    oracle.baseContention = 0.3;
    SearchConfig cfg;
    VariantSearch search(cfg, 2);
    size_t guard = 0;
    while (!search.done() && guard++ < 1000) {
        auto req = search.current();
        EXPECT_GE(req.nap, 0.0);
        EXPECT_LE(req.nap, cfg.napCap);
        Measurement m;
        m.hostBps = oracle.bps(req.mask, req.nap);
        m.minQos = oracle.qos(req.mask, req.nap);
        search.onMeasurement(m);
    }
    EXPECT_TRUE(search.done());
}

TEST(Search, WindowCountLinearInLoads)
{
    // O(n) variants, O(log 1/eps) windows each.
    auto windows_for = [](size_t n) {
        Oracle oracle;
        oracle.benefit.assign(n, 0.3 / static_cast<double>(n));
        oracle.cost.assign(n, 0.01);
        oracle.baseContention = 0.35;
        SearchConfig cfg;
        VariantSearch s(cfg, n);
        return driveSearch(s, oracle);
    };
    size_t w8 = windows_for(8);
    size_t w32 = windows_for(32);
    EXPECT_LT(w32, w8 * 8); // clearly sub-quadratic
    EXPECT_LE(w8, 8 * 8 + 24);
}

} // namespace
} // namespace pc3d
} // namespace protean
