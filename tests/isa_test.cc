/**
 * @file
 * Tests for the PISA instruction set and image format: mnemonics,
 * disassembly, control-flow classification, image lookup helpers,
 * and the initial-data word accessors.
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/builder.h"
#include "isa/image.h"
#include "pcc/pcc.h"

namespace protean {
namespace isa {
namespace {

TEST(MInst, MnemonicsUnique)
{
    std::set<std::string> names;
    for (uint8_t k = 0; k < kNumMOps; ++k)
        names.insert(mopName(static_cast<MOp>(k)));
    EXPECT_EQ(names.size(), kNumMOps);
}

TEST(MInst, ControlFlowClassification)
{
    MInst inst;
    for (MOp op : {MOp::Jmp, MOp::Bnz, MOp::CallDirect,
                   MOp::CallIndirect, MOp::Ret, MOp::Halt}) {
        inst.op = op;
        EXPECT_TRUE(inst.isControlFlow()) << mopName(op);
    }
    for (MOp op : {MOp::Const, MOp::Add, MOp::Load, MOp::Store,
                   MOp::Hint, MOp::Nop}) {
        inst.op = op;
        EXPECT_FALSE(inst.isControlFlow()) << mopName(op);
    }
}

TEST(Disassemble, LoadShowsNtMarker)
{
    MInst inst;
    inst.op = MOp::Load;
    inst.rd = 5;
    inst.rs1 = 6;
    inst.imm = 64;
    EXPECT_EQ(disassemble(inst).find("!nt"), std::string::npos);
    inst.nonTemporal = true;
    EXPECT_NE(disassemble(inst).find("!nt"), std::string::npos);
}

TEST(Disassemble, OperandFormats)
{
    MInst c;
    c.op = MOp::Const;
    c.rd = 4;
    c.imm = -7;
    EXPECT_NE(disassemble(c).find("r4, -7"), std::string::npos);

    MInst s;
    s.op = MOp::Store;
    s.rs1 = 8;
    s.rs2 = 9;
    s.imm = 128;
    EXPECT_NE(disassemble(s).find("[r8+128], r9"),
              std::string::npos);

    MInst ci;
    ci.op = MOp::CallIndirect;
    ci.evtSlot = 3;
    EXPECT_NE(disassemble(ci).find("evt[3]"), std::string::npos);
}

/** Minimal two-function module for image tests. */
ir::Module
tinyModule()
{
    ir::Module m("tiny");
    m.addGlobal("g", 64);
    ir::IRBuilder b(m);
    b.startFunction("leaf", 0);
    b.ret();
    b.startFunction("main", 0);
    b.callVoid(0);
    b.ret();
    return m;
}

TEST(Image, FunctionAtResolvesRanges)
{
    ir::Module m = tinyModule();
    Image image = pcc::compilePlain(m);
    ASSERT_EQ(image.functions.size(), 2u);
    const FunctionInfo &leaf = image.function(0);
    const FunctionInfo &mn = image.function(1);
    EXPECT_EQ(image.functionAt(leaf.entry)->name, "leaf");
    EXPECT_EQ(image.functionAt(mn.entry)->name, "main");
    EXPECT_EQ(image.functionAt(mn.end - 1)->name, "main");
    EXPECT_EQ(image.functionAt(static_cast<CodeAddr>(
        image.code.size())), nullptr);
}

TEST(Image, EntryPointIsMain)
{
    ir::Module m = tinyModule();
    Image image = pcc::compilePlain(m);
    EXPECT_EQ(image.entryPoint(), image.function(1).entry);
}

TEST(Image, InitialWordRoundtrip)
{
    ir::Module m = tinyModule();
    Image image = pcc::compile(m);
    image.setInitialWord(8, 0x1122334455667788ULL);
    EXPECT_EQ(image.initialWord(8), 0x1122334455667788ULL);
    // Little-endian byte order.
    EXPECT_EQ(image.initialData[8], 0x88);
    EXPECT_EQ(image.initialData[15], 0x11);
}

TEST(Image, DisassembleAllListsFunctions)
{
    ir::Module m = tinyModule();
    Image image = pcc::compilePlain(m);
    std::string text = image.disassembleAll();
    EXPECT_NE(text.find("leaf:"), std::string::npos);
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
    EXPECT_NE(text.find("call"), std::string::npos);
}

TEST(Image, ProteanFlag)
{
    ir::Module m1 = tinyModule();
    EXPECT_FALSE(pcc::compilePlain(m1).isProtean());
    ir::Module m2 = tinyModule();
    // main has a single block here, but embedding IR alone keeps
    // the header; virtualization needs a multi-block callee.
    pcc::PccOptions opts;
    opts.policy = pcc::EdgePolicy::AllCallees;
    EXPECT_TRUE(pcc::compile(m2, opts).isProtean());
}

TEST(DataLayout, BoundsChecked)
{
    DataLayout layout;
    layout.globalBase = {64, 128};
    EXPECT_EQ(layout.base(1), 128u);
    EXPECT_DEATH({ layout.base(2); }, "bad global");
}

} // namespace
} // namespace isa
} // namespace protean
