/**
 * @file
 * Unit tests for the support library: formatting, RNG, bit vectors,
 * byte buffers, compression, and statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "support/bitvector.h"
#include "support/bytebuffer.h"
#include "support/compression.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/random.h"
#include "support/stats.h"

namespace protean {
namespace {

TEST(Logging, StrformatBasics)
{
    EXPECT_EQ(strformat("x=%d", 42), "x=42");
    EXPECT_EQ(strformat("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(strformat("%.2f", 1.2345), "1.23");
}

TEST(Logging, StrformatLongOutput)
{
    std::string big(5000, 'q');
    EXPECT_EQ(strformat("%s", big.c_str()).size(), 5000u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng r(99);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(5);
    bool lo = false, hi = false;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.add(r.nextGaussian(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, NextBoundedInclusiveAndCovering)
{
    Rng r(21);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.nextBounded(10, 17);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u);
    // Degenerate interval and the full 64-bit domain both work.
    EXPECT_EQ(r.nextBounded(5, 5), 5u);
    (void)r.nextBounded(0, UINT64_MAX);
}

TEST(Rng, NextBoundedUniform)
{
    // Chi-square-ish sanity: each of 8 buckets gets its fair share.
    Rng r(23);
    uint64_t counts[8] = {};
    const int kDraws = 16000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.nextBounded(0, 7)];
    for (uint64_t c : counts) {
        EXPECT_GT(c, kDraws / 8 * 0.85);
        EXPECT_LT(c, kDraws / 8 * 1.15);
    }
}

TEST(Rng, ExponentialMoments)
{
    // Exponential(mean): mean == stddev == the parameter.
    Rng r(29);
    RunningStat s;
    for (int i = 0; i < 40000; ++i) {
        double v = r.nextExponential(4.0);
        EXPECT_GE(v, 0.0);
        s.add(v);
    }
    EXPECT_NEAR(s.mean(), 4.0, 0.15);
    EXPECT_NEAR(s.stddev(), 4.0, 0.25);
}

TEST(Rng, ExponentialMemoryless)
{
    // P(X > t) = exp(-t/mean): check the survival function at the
    // mean (should be ~36.8%).
    Rng r(31);
    int above = 0;
    const int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        above += r.nextExponential(2.0) > 2.0;
    double frac = static_cast<double>(above) / kDraws;
    EXPECT_NEAR(frac, std::exp(-1.0), 0.02);
}

TEST(Rng, ForkIndependence)
{
    Rng a(17);
    Rng b = a.fork();
    // Streams should not track each other.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(BitVector, Basics)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_EQ(v.count(), 3u);
    EXPECT_TRUE(v.test(64));
    EXPECT_FALSE(v.test(63));
    v.set(64, false);
    EXPECT_EQ(v.count(), 2u);
}

TEST(BitVector, InitialAllSet)
{
    BitVector v(70, true);
    EXPECT_TRUE(v.all());
    EXPECT_EQ(v.count(), 70u);
}

TEST(BitVector, FlipIsInvolution)
{
    BitVector v(100);
    Rng r(3);
    for (int i = 0; i < 50; ++i)
        v.set(r.nextBelow(100));
    BitVector before = v;
    for (size_t i = 0; i < 100; ++i) {
        v.flip(i);
        v.flip(i);
    }
    EXPECT_TRUE(v == before);
}

TEST(BitVector, SetAllClearAll)
{
    BitVector v(77);
    v.setAll();
    EXPECT_TRUE(v.all());
    v.clearAll();
    EXPECT_TRUE(v.none());
}

TEST(BitVector, OrAndOperators)
{
    BitVector a(10), b(10);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    BitVector o = a;
    o |= b;
    EXPECT_EQ(o.count(), 3u);
    BitVector n = a;
    n &= b;
    EXPECT_EQ(n.count(), 1u);
    EXPECT_TRUE(n.test(2));
}

TEST(BitVector, SetBitsAscending)
{
    BitVector v(20);
    v.set(5);
    v.set(1);
    v.set(19);
    auto bits = v.setBits();
    ASSERT_EQ(bits.size(), 3u);
    EXPECT_EQ(bits[0], 1u);
    EXPECT_EQ(bits[1], 5u);
    EXPECT_EQ(bits[2], 19u);
}

TEST(BitVector, ToStringMatchesBits)
{
    BitVector v(5);
    v.set(0);
    v.set(3);
    EXPECT_EQ(v.toString(), "10010");
}

TEST(BitVector, ZeroSize)
{
    BitVector v(0);
    EXPECT_TRUE(v.none());
    EXPECT_TRUE(v.all());
    EXPECT_EQ(v.count(), 0u);
}

TEST(ByteBuffer, VarUintRoundtrip)
{
    ByteWriter w;
    std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ULL << 20,
                                    1ULL << 40, UINT64_MAX};
    for (uint64_t v : values)
        w.writeVarUint(v);
    ByteReader r(w.bytes());
    for (uint64_t v : values)
        EXPECT_EQ(r.readVarUint(), v);
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteBuffer, VarIntRoundtrip)
{
    ByteWriter w;
    std::vector<int64_t> values = {0, -1, 1, -64, 64, INT64_MIN,
                                   INT64_MAX, -123456789};
    for (int64_t v : values)
        w.writeVarInt(v);
    ByteReader r(w.bytes());
    for (int64_t v : values)
        EXPECT_EQ(r.readVarInt(), v);
}

TEST(ByteBuffer, SmallNegativesAreCompact)
{
    ByteWriter w;
    w.writeVarInt(-1);
    EXPECT_EQ(w.bytes().size(), 1u);
}

TEST(ByteBuffer, FixedAndDouble)
{
    ByteWriter w;
    w.writeFixed64(0xdeadbeefcafef00dULL);
    w.writeDouble(3.14159);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.readFixed64(), 0xdeadbeefcafef00dULL);
    EXPECT_DOUBLE_EQ(r.readDouble(), 3.14159);
}

TEST(ByteBuffer, StringRoundtrip)
{
    ByteWriter w;
    w.writeString("");
    w.writeString("hello");
    std::string binary("\x00\x01\x02", 3);
    w.writeString(binary);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.readString(), "");
    EXPECT_EQ(r.readString(), "hello");
    EXPECT_EQ(r.readString(), binary);
}

TEST(ByteBuffer, RandomizedRoundtrip)
{
    Rng rng(21);
    for (int iter = 0; iter < 50; ++iter) {
        ByteWriter w;
        std::vector<uint64_t> vals;
        for (int i = 0; i < 100; ++i) {
            uint64_t v = rng.next() >> rng.nextBelow(64);
            vals.push_back(v);
            w.writeVarUint(v);
        }
        ByteReader r(w.bytes());
        for (uint64_t v : vals)
            EXPECT_EQ(r.readVarUint(), v);
    }
}

class CompressionRoundtrip
    : public ::testing::TestWithParam<size_t>
{};

TEST_P(CompressionRoundtrip, RandomData)
{
    Rng rng(GetParam() + 1);
    std::vector<uint8_t> data(GetParam());
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.nextBelow(256));
    auto packed = compress(data);
    EXPECT_EQ(decompress(packed), data);
}

TEST_P(CompressionRoundtrip, RepetitiveData)
{
    std::vector<uint8_t> data(GetParam());
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>((i / 7) % 5);
    auto packed = compress(data);
    EXPECT_EQ(decompress(packed), data);
    if (data.size() > 256) {
        // Repetitive data should actually shrink.
        EXPECT_LT(packed.size(), data.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressionRoundtrip,
                         ::testing::Values(0, 1, 3, 4, 5, 64, 1000,
                                           65536, 200000));

TEST(Compression, TextCompressesWell)
{
    std::string text;
    for (int i = 0; i < 200; ++i)
        text += "the quick brown fox jumps over the lazy dog ";
    std::vector<uint8_t> data(text.begin(), text.end());
    auto packed = compress(data);
    EXPECT_LT(packed.size(), data.size() / 5);
    EXPECT_EQ(decompress(packed), data);
}

TEST(Compression, OverlappingMatchesRle)
{
    // A run of one byte exercises the overlapping-copy path.
    std::vector<uint8_t> data(10000, 0xaa);
    auto packed = compress(data);
    EXPECT_LT(packed.size(), 64u);
    EXPECT_EQ(decompress(packed), data);
}

TEST(RunningStat, Moments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs = {5, 1, 4, 2, 3};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Ewma, ConvergesToConstant)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.primed());
    for (int i = 0; i < 50; ++i)
        e.add(7.0);
    EXPECT_TRUE(e.primed());
    EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, FirstValuePrimes)
{
    Ewma e(0.1);
    e.add(100.0);
    EXPECT_DOUBLE_EQ(e.value(), 100.0);
}

TEST(Ewma, Reset)
{
    Ewma e(0.5);
    e.add(3.0);
    e.reset();
    EXPECT_FALSE(e.primed());
    EXPECT_EQ(e.value(), 0.0);
}

TEST(Json, ParsesScalarsAndStructure)
{
    std::string err;
    JsonValue v = JsonValue::parse(
        "{\"n\": -12.5, \"s\": \"hi\\nthere\", \"b\": true, "
        "\"z\": null, \"a\": [1, 2, 3]}",
        &err);
    ASSERT_TRUE(v.isObject()) << err;
    EXPECT_DOUBLE_EQ(v.find("n")->asNumber(), -12.5);
    EXPECT_EQ(v.find("n")->asInt(), -12);
    EXPECT_EQ(v.find("s")->asString(), "hi\nthere");
    EXPECT_TRUE(v.find("b")->asBool());
    EXPECT_TRUE(v.find("z")->isNull());
    ASSERT_TRUE(v.find("a")->isArray());
    ASSERT_EQ(v.find("a")->items().size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("a")->items()[2].asNumber(), 3.0);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.numberOr("n", 0.0), -12.5);
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 9.0), 9.0);
    EXPECT_EQ(v.stringOr("s", ""), "hi\nthere");
    EXPECT_EQ(v.stringOr("missing", "dflt"), "dflt");
}

TEST(Json, PreservesObjectMemberOrder)
{
    JsonValue v = JsonValue::parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, ReportsErrorsWithOffsets)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated",
          "1 2", "{\"a\": 1e}"}) {
        std::string err;
        JsonValue v = JsonValue::parse(bad, &err);
        EXPECT_TRUE(v.isNull()) << "accepted: " << bad;
        EXPECT_FALSE(err.empty()) << "no message for: " << bad;
        EXPECT_NE(err.find("at byte"), std::string::npos)
            << "no byte offset in: " << err;
    }
}

TEST(Json, RoundTripsTheRepoOwnExports)
{
    // The shape appendTrajectoryRun writes and bench/trajectory
    // reads back.
    std::string doc =
        "{\n\"schema\": 1,\n\"benchmark\": \"perf_engine\",\n"
        "\"runs\": [\n{\"run\": 0, \"git\": \"abc123def\", "
        "\"label\": \"full\", \"metrics\": "
        "{\"alu_speedup_1proc\": 3.155}, \"detail\": {}}\n]\n}\n";
    std::string err;
    JsonValue v = JsonValue::parse(doc, &err);
    ASSERT_TRUE(v.isObject()) << err;
    EXPECT_EQ(v.find("schema")->asInt(), 1);
    const JsonValue &run = v.find("runs")->items().front();
    EXPECT_EQ(run.stringOr("git", ""), "abc123def");
    EXPECT_DOUBLE_EQ(
        run.find("metrics")->numberOr("alu_speedup_1proc", 0.0),
        3.155);
}

} // namespace
} // namespace protean
