# Empty compiler generated dependencies file for pcc_test.
# This may be replaced when dependencies are built.
