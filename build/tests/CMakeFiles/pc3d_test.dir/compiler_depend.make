# Empty compiler generated dependencies file for pc3d_test.
# This may be replaced when dependencies are built.
