file(REMOVE_RECURSE
  "CMakeFiles/pc3d_test.dir/pc3d_test.cc.o"
  "CMakeFiles/pc3d_test.dir/pc3d_test.cc.o.d"
  "pc3d_test"
  "pc3d_test.pdb"
  "pc3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
