# Empty dependencies file for controls_test.
# This may be replaced when dependencies are built.
