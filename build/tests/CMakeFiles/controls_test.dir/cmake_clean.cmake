file(REMOVE_RECURSE
  "CMakeFiles/controls_test.dir/controls_test.cc.o"
  "CMakeFiles/controls_test.dir/controls_test.cc.o.d"
  "controls_test"
  "controls_test.pdb"
  "controls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
