# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pcc_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/pc3d_test[1]_include.cmake")
include("/root/repo/build/tests/datacenter_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/controls_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
