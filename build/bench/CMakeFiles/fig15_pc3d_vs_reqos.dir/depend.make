# Empty dependencies file for fig15_pc3d_vs_reqos.
# This may be replaced when dependencies are built.
