file(REMOVE_RECURSE
  "CMakeFiles/fig15_pc3d_vs_reqos.dir/fig15_pc3d_vs_reqos.cc.o"
  "CMakeFiles/fig15_pc3d_vs_reqos.dir/fig15_pc3d_vs_reqos.cc.o.d"
  "fig15_pc3d_vs_reqos"
  "fig15_pc3d_vs_reqos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pc3d_vs_reqos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
