# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig15_pc3d_vs_reqos.
