file(REMOVE_RECURSE
  "CMakeFiles/fig03_nap_sweep.dir/fig03_nap_sweep.cc.o"
  "CMakeFiles/fig03_nap_sweep.dir/fig03_nap_sweep.cc.o.d"
  "fig03_nap_sweep"
  "fig03_nap_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_nap_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
