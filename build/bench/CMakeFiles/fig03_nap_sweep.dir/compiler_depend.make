# Empty compiler generated dependencies file for fig03_nap_sweep.
# This may be replaced when dependencies are built.
