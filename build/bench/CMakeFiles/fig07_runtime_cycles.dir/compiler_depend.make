# Empty compiler generated dependencies file for fig07_runtime_cycles.
# This may be replaced when dependencies are built.
