file(REMOVE_RECURSE
  "CMakeFiles/fig07_runtime_cycles.dir/fig07_runtime_cycles.cc.o"
  "CMakeFiles/fig07_runtime_cycles.dir/fig07_runtime_cycles.cc.o.d"
  "fig07_runtime_cycles"
  "fig07_runtime_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_runtime_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
