# Empty dependencies file for ablation_nt_policy.
# This may be replaced when dependencies are built.
