file(REMOVE_RECURSE
  "CMakeFiles/ablation_nt_policy.dir/ablation_nt_policy.cc.o"
  "CMakeFiles/ablation_nt_policy.dir/ablation_nt_policy.cc.o.d"
  "ablation_nt_policy"
  "ablation_nt_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nt_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
