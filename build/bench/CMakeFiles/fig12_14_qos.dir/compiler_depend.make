# Empty compiler generated dependencies file for fig12_14_qos.
# This may be replaced when dependencies are built.
