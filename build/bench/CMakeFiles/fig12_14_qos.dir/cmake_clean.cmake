file(REMOVE_RECURSE
  "CMakeFiles/fig12_14_qos.dir/fig12_14_qos.cc.o"
  "CMakeFiles/fig12_14_qos.dir/fig12_14_qos.cc.o.d"
  "fig12_14_qos"
  "fig12_14_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_14_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
