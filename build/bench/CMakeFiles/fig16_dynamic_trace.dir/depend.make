# Empty dependencies file for fig16_dynamic_trace.
# This may be replaced when dependencies are built.
