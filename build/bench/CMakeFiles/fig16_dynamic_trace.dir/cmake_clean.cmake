file(REMOVE_RECURSE
  "CMakeFiles/fig16_dynamic_trace.dir/fig16_dynamic_trace.cc.o"
  "CMakeFiles/fig16_dynamic_trace.dir/fig16_dynamic_trace.cc.o.d"
  "fig16_dynamic_trace"
  "fig16_dynamic_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_dynamic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
