# Empty dependencies file for fig08_heuristics.
# This may be replaced when dependencies are built.
