file(REMOVE_RECURSE
  "CMakeFiles/fig08_heuristics.dir/fig08_heuristics.cc.o"
  "CMakeFiles/fig08_heuristics.dir/fig08_heuristics.cc.o.d"
  "fig08_heuristics"
  "fig08_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
