# Empty dependencies file for fig09_11_utilization.
# This may be replaced when dependencies are built.
