
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_11_utilization.cc" "bench/CMakeFiles/fig09_11_utilization.dir/fig09_11_utilization.cc.o" "gcc" "bench/CMakeFiles/fig09_11_utilization.dir/fig09_11_utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacenter/CMakeFiles/protean_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/pc3d/CMakeFiles/protean_pc3d.dir/DependInfo.cmake"
  "/root/repo/build/src/reqos/CMakeFiles/protean_reqos.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/protean_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/protean_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/protean_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/protean_pcc.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/protean_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/protean_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/protean_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/protean_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/protean_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
