# Empty dependencies file for fig06_same_vs_separate_core.
# This may be replaced when dependencies are built.
