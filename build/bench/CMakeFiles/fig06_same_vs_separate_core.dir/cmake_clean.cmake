file(REMOVE_RECURSE
  "CMakeFiles/fig06_same_vs_separate_core.dir/fig06_same_vs_separate_core.cc.o"
  "CMakeFiles/fig06_same_vs_separate_core.dir/fig06_same_vs_separate_core.cc.o.d"
  "fig06_same_vs_separate_core"
  "fig06_same_vs_separate_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_same_vs_separate_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
