# Empty dependencies file for fig04_virtualization_overhead.
# This may be replaced when dependencies are built.
