file(REMOVE_RECURSE
  "CMakeFiles/fig04_virtualization_overhead.dir/fig04_virtualization_overhead.cc.o"
  "CMakeFiles/fig04_virtualization_overhead.dir/fig04_virtualization_overhead.cc.o.d"
  "fig04_virtualization_overhead"
  "fig04_virtualization_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_virtualization_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
