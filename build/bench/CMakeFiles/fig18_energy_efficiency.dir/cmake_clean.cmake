file(REMOVE_RECURSE
  "CMakeFiles/fig18_energy_efficiency.dir/fig18_energy_efficiency.cc.o"
  "CMakeFiles/fig18_energy_efficiency.dir/fig18_energy_efficiency.cc.o.d"
  "fig18_energy_efficiency"
  "fig18_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
