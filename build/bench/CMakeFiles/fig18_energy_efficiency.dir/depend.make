# Empty dependencies file for fig18_energy_efficiency.
# This may be replaced when dependencies are built.
