# Empty dependencies file for fig17_server_count.
# This may be replaced when dependencies are built.
