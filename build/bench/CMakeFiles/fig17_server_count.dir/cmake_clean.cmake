file(REMOVE_RECURSE
  "CMakeFiles/fig17_server_count.dir/fig17_server_count.cc.o"
  "CMakeFiles/fig17_server_count.dir/fig17_server_count.cc.o.d"
  "fig17_server_count"
  "fig17_server_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_server_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
