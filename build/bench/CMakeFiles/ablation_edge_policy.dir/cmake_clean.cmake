file(REMOVE_RECURSE
  "CMakeFiles/ablation_edge_policy.dir/ablation_edge_policy.cc.o"
  "CMakeFiles/ablation_edge_policy.dir/ablation_edge_policy.cc.o.d"
  "ablation_edge_policy"
  "ablation_edge_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edge_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
