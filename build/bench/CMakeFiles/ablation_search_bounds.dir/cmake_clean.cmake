file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_bounds.dir/ablation_search_bounds.cc.o"
  "CMakeFiles/ablation_search_bounds.dir/ablation_search_bounds.cc.o.d"
  "ablation_search_bounds"
  "ablation_search_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
