# Empty compiler generated dependencies file for ablation_search_bounds.
# This may be replaced when dependencies are built.
