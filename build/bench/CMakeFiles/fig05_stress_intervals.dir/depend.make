# Empty dependencies file for fig05_stress_intervals.
# This may be replaced when dependencies are built.
