file(REMOVE_RECURSE
  "CMakeFiles/fig05_stress_intervals.dir/fig05_stress_intervals.cc.o"
  "CMakeFiles/fig05_stress_intervals.dir/fig05_stress_intervals.cc.o.d"
  "fig05_stress_intervals"
  "fig05_stress_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stress_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
