file(REMOVE_RECURSE
  "libprotean_isa.a"
)
