# Empty compiler generated dependencies file for protean_isa.
# This may be replaced when dependencies are built.
