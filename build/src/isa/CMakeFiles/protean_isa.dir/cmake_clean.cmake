file(REMOVE_RECURSE
  "CMakeFiles/protean_isa.dir/image.cc.o"
  "CMakeFiles/protean_isa.dir/image.cc.o.d"
  "CMakeFiles/protean_isa.dir/minst.cc.o"
  "CMakeFiles/protean_isa.dir/minst.cc.o.d"
  "libprotean_isa.a"
  "libprotean_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
