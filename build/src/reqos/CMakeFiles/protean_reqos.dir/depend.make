# Empty dependencies file for protean_reqos.
# This may be replaced when dependencies are built.
