file(REMOVE_RECURSE
  "CMakeFiles/protean_reqos.dir/reqos.cc.o"
  "CMakeFiles/protean_reqos.dir/reqos.cc.o.d"
  "libprotean_reqos.a"
  "libprotean_reqos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_reqos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
