file(REMOVE_RECURSE
  "libprotean_reqos.a"
)
