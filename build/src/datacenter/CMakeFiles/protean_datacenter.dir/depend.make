# Empty dependencies file for protean_datacenter.
# This may be replaced when dependencies are built.
