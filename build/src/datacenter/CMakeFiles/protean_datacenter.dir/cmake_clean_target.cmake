file(REMOVE_RECURSE
  "libprotean_datacenter.a"
)
