file(REMOVE_RECURSE
  "CMakeFiles/protean_datacenter.dir/experiment.cc.o"
  "CMakeFiles/protean_datacenter.dir/experiment.cc.o.d"
  "CMakeFiles/protean_datacenter.dir/scaleout.cc.o"
  "CMakeFiles/protean_datacenter.dir/scaleout.cc.o.d"
  "libprotean_datacenter.a"
  "libprotean_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
