# Empty dependencies file for protean_codegen.
# This may be replaced when dependencies are built.
