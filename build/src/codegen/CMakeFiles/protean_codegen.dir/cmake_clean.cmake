file(REMOVE_RECURSE
  "CMakeFiles/protean_codegen.dir/cost.cc.o"
  "CMakeFiles/protean_codegen.dir/cost.cc.o.d"
  "CMakeFiles/protean_codegen.dir/lowering.cc.o"
  "CMakeFiles/protean_codegen.dir/lowering.cc.o.d"
  "CMakeFiles/protean_codegen.dir/passes.cc.o"
  "CMakeFiles/protean_codegen.dir/passes.cc.o.d"
  "libprotean_codegen.a"
  "libprotean_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
