file(REMOVE_RECURSE
  "libprotean_codegen.a"
)
