file(REMOVE_RECURSE
  "libprotean_pcc.a"
)
