# Empty dependencies file for protean_pcc.
# This may be replaced when dependencies are built.
