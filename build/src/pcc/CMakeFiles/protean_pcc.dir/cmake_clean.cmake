file(REMOVE_RECURSE
  "CMakeFiles/protean_pcc.dir/pcc.cc.o"
  "CMakeFiles/protean_pcc.dir/pcc.cc.o.d"
  "libprotean_pcc.a"
  "libprotean_pcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_pcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
