
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/protean_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/protean_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/protean_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/protean_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/protean_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/protean_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/protean_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/protean_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/memsys.cc" "src/sim/CMakeFiles/protean_sim.dir/memsys.cc.o" "gcc" "src/sim/CMakeFiles/protean_sim.dir/memsys.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/sim/CMakeFiles/protean_sim.dir/process.cc.o" "gcc" "src/sim/CMakeFiles/protean_sim.dir/process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/protean_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/protean_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/protean_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
