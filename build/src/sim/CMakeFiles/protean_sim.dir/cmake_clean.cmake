file(REMOVE_RECURSE
  "CMakeFiles/protean_sim.dir/cache.cc.o"
  "CMakeFiles/protean_sim.dir/cache.cc.o.d"
  "CMakeFiles/protean_sim.dir/core.cc.o"
  "CMakeFiles/protean_sim.dir/core.cc.o.d"
  "CMakeFiles/protean_sim.dir/machine.cc.o"
  "CMakeFiles/protean_sim.dir/machine.cc.o.d"
  "CMakeFiles/protean_sim.dir/memory.cc.o"
  "CMakeFiles/protean_sim.dir/memory.cc.o.d"
  "CMakeFiles/protean_sim.dir/memsys.cc.o"
  "CMakeFiles/protean_sim.dir/memsys.cc.o.d"
  "CMakeFiles/protean_sim.dir/process.cc.o"
  "CMakeFiles/protean_sim.dir/process.cc.o.d"
  "libprotean_sim.a"
  "libprotean_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
