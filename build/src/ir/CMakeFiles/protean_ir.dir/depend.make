# Empty dependencies file for protean_ir.
# This may be replaced when dependencies are built.
