file(REMOVE_RECURSE
  "CMakeFiles/protean_ir.dir/builder.cc.o"
  "CMakeFiles/protean_ir.dir/builder.cc.o.d"
  "CMakeFiles/protean_ir.dir/dominators.cc.o"
  "CMakeFiles/protean_ir.dir/dominators.cc.o.d"
  "CMakeFiles/protean_ir.dir/function.cc.o"
  "CMakeFiles/protean_ir.dir/function.cc.o.d"
  "CMakeFiles/protean_ir.dir/instruction.cc.o"
  "CMakeFiles/protean_ir.dir/instruction.cc.o.d"
  "CMakeFiles/protean_ir.dir/loops.cc.o"
  "CMakeFiles/protean_ir.dir/loops.cc.o.d"
  "CMakeFiles/protean_ir.dir/module.cc.o"
  "CMakeFiles/protean_ir.dir/module.cc.o.d"
  "CMakeFiles/protean_ir.dir/printer.cc.o"
  "CMakeFiles/protean_ir.dir/printer.cc.o.d"
  "CMakeFiles/protean_ir.dir/serializer.cc.o"
  "CMakeFiles/protean_ir.dir/serializer.cc.o.d"
  "CMakeFiles/protean_ir.dir/verifier.cc.o"
  "CMakeFiles/protean_ir.dir/verifier.cc.o.d"
  "libprotean_ir.a"
  "libprotean_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
