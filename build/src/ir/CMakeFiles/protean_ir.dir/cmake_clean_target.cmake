file(REMOVE_RECURSE
  "libprotean_ir.a"
)
