# CMake generated Testfile for 
# Source directory: /root/repo/src/pc3d
# Build directory: /root/repo/build/src/pc3d
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
