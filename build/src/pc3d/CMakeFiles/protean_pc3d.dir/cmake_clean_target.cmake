file(REMOVE_RECURSE
  "libprotean_pc3d.a"
)
