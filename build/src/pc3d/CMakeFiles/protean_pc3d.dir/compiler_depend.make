# Empty compiler generated dependencies file for protean_pc3d.
# This may be replaced when dependencies are built.
