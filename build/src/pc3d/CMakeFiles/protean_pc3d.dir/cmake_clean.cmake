file(REMOVE_RECURSE
  "CMakeFiles/protean_pc3d.dir/heuristics.cc.o"
  "CMakeFiles/protean_pc3d.dir/heuristics.cc.o.d"
  "CMakeFiles/protean_pc3d.dir/pc3d.cc.o"
  "CMakeFiles/protean_pc3d.dir/pc3d.cc.o.d"
  "CMakeFiles/protean_pc3d.dir/search.cc.o"
  "CMakeFiles/protean_pc3d.dir/search.cc.o.d"
  "libprotean_pc3d.a"
  "libprotean_pc3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_pc3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
