# Empty dependencies file for protean_runtime.
# This may be replaced when dependencies are built.
