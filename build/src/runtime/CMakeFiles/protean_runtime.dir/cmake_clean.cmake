file(REMOVE_RECURSE
  "CMakeFiles/protean_runtime.dir/attach.cc.o"
  "CMakeFiles/protean_runtime.dir/attach.cc.o.d"
  "CMakeFiles/protean_runtime.dir/compiler.cc.o"
  "CMakeFiles/protean_runtime.dir/compiler.cc.o.d"
  "CMakeFiles/protean_runtime.dir/evt_manager.cc.o"
  "CMakeFiles/protean_runtime.dir/evt_manager.cc.o.d"
  "CMakeFiles/protean_runtime.dir/monitor.cc.o"
  "CMakeFiles/protean_runtime.dir/monitor.cc.o.d"
  "CMakeFiles/protean_runtime.dir/qos.cc.o"
  "CMakeFiles/protean_runtime.dir/qos.cc.o.d"
  "CMakeFiles/protean_runtime.dir/runtime.cc.o"
  "CMakeFiles/protean_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/protean_runtime.dir/stress.cc.o"
  "CMakeFiles/protean_runtime.dir/stress.cc.o.d"
  "libprotean_runtime.a"
  "libprotean_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
