
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/attach.cc" "src/runtime/CMakeFiles/protean_runtime.dir/attach.cc.o" "gcc" "src/runtime/CMakeFiles/protean_runtime.dir/attach.cc.o.d"
  "/root/repo/src/runtime/compiler.cc" "src/runtime/CMakeFiles/protean_runtime.dir/compiler.cc.o" "gcc" "src/runtime/CMakeFiles/protean_runtime.dir/compiler.cc.o.d"
  "/root/repo/src/runtime/evt_manager.cc" "src/runtime/CMakeFiles/protean_runtime.dir/evt_manager.cc.o" "gcc" "src/runtime/CMakeFiles/protean_runtime.dir/evt_manager.cc.o.d"
  "/root/repo/src/runtime/monitor.cc" "src/runtime/CMakeFiles/protean_runtime.dir/monitor.cc.o" "gcc" "src/runtime/CMakeFiles/protean_runtime.dir/monitor.cc.o.d"
  "/root/repo/src/runtime/qos.cc" "src/runtime/CMakeFiles/protean_runtime.dir/qos.cc.o" "gcc" "src/runtime/CMakeFiles/protean_runtime.dir/qos.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/protean_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/protean_runtime.dir/runtime.cc.o.d"
  "/root/repo/src/runtime/stress.cc" "src/runtime/CMakeFiles/protean_runtime.dir/stress.cc.o" "gcc" "src/runtime/CMakeFiles/protean_runtime.dir/stress.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/protean_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/protean_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/pcc/CMakeFiles/protean_pcc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/protean_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/protean_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/protean_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
