file(REMOVE_RECURSE
  "libprotean_runtime.a"
)
