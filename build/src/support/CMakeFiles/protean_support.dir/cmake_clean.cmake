file(REMOVE_RECURSE
  "CMakeFiles/protean_support.dir/bitvector.cc.o"
  "CMakeFiles/protean_support.dir/bitvector.cc.o.d"
  "CMakeFiles/protean_support.dir/bytebuffer.cc.o"
  "CMakeFiles/protean_support.dir/bytebuffer.cc.o.d"
  "CMakeFiles/protean_support.dir/compression.cc.o"
  "CMakeFiles/protean_support.dir/compression.cc.o.d"
  "CMakeFiles/protean_support.dir/logging.cc.o"
  "CMakeFiles/protean_support.dir/logging.cc.o.d"
  "CMakeFiles/protean_support.dir/random.cc.o"
  "CMakeFiles/protean_support.dir/random.cc.o.d"
  "CMakeFiles/protean_support.dir/stats.cc.o"
  "CMakeFiles/protean_support.dir/stats.cc.o.d"
  "CMakeFiles/protean_support.dir/table.cc.o"
  "CMakeFiles/protean_support.dir/table.cc.o.d"
  "libprotean_support.a"
  "libprotean_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
