file(REMOVE_RECURSE
  "libprotean_support.a"
)
