# Empty compiler generated dependencies file for protean_support.
# This may be replaced when dependencies are built.
