file(REMOVE_RECURSE
  "CMakeFiles/protean_baselines.dir/dynamorio.cc.o"
  "CMakeFiles/protean_baselines.dir/dynamorio.cc.o.d"
  "libprotean_baselines.a"
  "libprotean_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
