# Empty compiler generated dependencies file for protean_baselines.
# This may be replaced when dependencies are built.
