file(REMOVE_RECURSE
  "libprotean_baselines.a"
)
