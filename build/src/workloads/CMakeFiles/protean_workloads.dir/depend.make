# Empty dependencies file for protean_workloads.
# This may be replaced when dependencies are built.
