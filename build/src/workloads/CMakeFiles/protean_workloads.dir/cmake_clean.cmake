file(REMOVE_RECURSE
  "CMakeFiles/protean_workloads.dir/batch.cc.o"
  "CMakeFiles/protean_workloads.dir/batch.cc.o.d"
  "CMakeFiles/protean_workloads.dir/driver.cc.o"
  "CMakeFiles/protean_workloads.dir/driver.cc.o.d"
  "CMakeFiles/protean_workloads.dir/registry.cc.o"
  "CMakeFiles/protean_workloads.dir/registry.cc.o.d"
  "CMakeFiles/protean_workloads.dir/service.cc.o"
  "CMakeFiles/protean_workloads.dir/service.cc.o.d"
  "libprotean_workloads.a"
  "libprotean_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protean_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
