file(REMOVE_RECURSE
  "libprotean_workloads.a"
)
