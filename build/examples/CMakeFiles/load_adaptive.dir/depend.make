# Empty dependencies file for load_adaptive.
# This may be replaced when dependencies are built.
