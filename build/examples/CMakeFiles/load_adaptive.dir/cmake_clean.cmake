file(REMOVE_RECURSE
  "CMakeFiles/load_adaptive.dir/load_adaptive.cpp.o"
  "CMakeFiles/load_adaptive.dir/load_adaptive.cpp.o.d"
  "load_adaptive"
  "load_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
