# Empty compiler generated dependencies file for colocation_qos.
# This may be replaced when dependencies are built.
