file(REMOVE_RECURSE
  "CMakeFiles/colocation_qos.dir/colocation_qos.cpp.o"
  "CMakeFiles/colocation_qos.dir/colocation_qos.cpp.o.d"
  "colocation_qos"
  "colocation_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocation_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
