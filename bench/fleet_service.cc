/**
 * @file
 * Fleet compilation service study (paper Section V-E).
 *
 * Part 1 compares a fleet of N servers compiling locally against the
 * same fleet sharing the content-addressed compilation service at
 * equal QoS proxy (host branches retired): with every server running
 * the same binary, fleet-wide compile cycles collapse by roughly the
 * dedup factor while host progress holds.
 *
 * Part 2 sweeps fleet size x shard count x cache capacity to show
 * where the hit rate and coalescing come from.
 *
 * When the common `--profile=<path>` / `--flamegraph=<path>` flags
 * are given, the shared-service configuration re-runs with the
 * telemetry plane and continuous profiler on: the fleet-merged
 * profile is exported (byte-identical serial vs --parallel) and the
 * variant scoreboard's winning-mask table is printed.
 *
 * Flags (beyond the common set): --servers=<n>, --ms=<x> (simulated
 * run length), --mean-ms=<x> (per-server request interarrival mean)
 * and --quick (tiny CI configuration). The common `--validate=<mode>`
 * flag selects the install-gate tier every fleet run pays (default:
 * the FleetConfig default, tier-1 structural); a gate summary line
 * follows the part-1 table when the gate is on.
 */

#include "common.h"
#include "profile_report.h"

#include "fleet/fleet.h"

using namespace protean;

namespace {

/** Install-gate mode every fleet run in this bench uses (set once
 *  from --validate; the FleetConfig default otherwise). */
validate::Mode g_validate = fleet::FleetConfig{}.validate.mode;

/** On-stack replacement for every fleet run in this bench (set once
 *  from the shared --osr flag; off by default). */
bool g_osr = false;

fleet::FleetStats
runFleet(uint32_t servers, bool remote, double ms, double mean_ms,
         uint64_t seed, const fleet::ServiceConfig &svc,
         bool export_obs, uint32_t workers)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.remoteBackend = remote;
    cfg.meanRequestMs = mean_ms;
    cfg.seed = seed;
    cfg.service = svc;
    cfg.parallelWorkers = workers;
    cfg.validate.mode = g_validate;
    cfg.osr = g_osr;
    fleet::FleetSim sim(cfg);
    sim.run(ms);
    if (export_obs)
        sim.exportObsMetrics();
    return sim.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t servers = 8;
    double ms = 400.0;
    double mean_ms = 4.0;
    bool quick = false;
    bench::ArgParser parser;
    parser.addFlag("servers", &servers, "fleet size (default 8)");
    parser.addFlag("ms", &ms, "simulated run length per fleet");
    parser.addFlag("mean-ms", &mean_ms,
                   "mean request interarrival per server");
    parser.addSwitch("quick", &quick, "tiny configuration for CI");
    bench::ObsConfig obs_cfg = parser.parse(argc, argv);
    if (quick) {
        servers = 4;
        ms = 120.0;
    }
    if (!obs_cfg.validateMode.empty())
        g_validate = validate::parseMode(obs_cfg.validateMode);
    g_osr = obs_cfg.osr == "on";

    fleet::ServiceConfig svc;

    {
        TextTable t("Fleet compilation service: local vs shared "
                    "backend");
        t.setHeader({"Backend", "Compile cycles", "Service compiles",
                     "Hit rate", "Host branches", "Dedup"});
        fleet::FleetStats local = runFleet(
            static_cast<uint32_t>(servers), false, ms, mean_ms,
            obs_cfg.seed, svc, false,
            static_cast<uint32_t>(obs_cfg.parallel));
        // The remote run is exported last so --metrics/--trace
        // describe the shared-service configuration.
        fleet::FleetStats remote = runFleet(
            static_cast<uint32_t>(servers), true, ms, mean_ms,
            obs_cfg.seed, svc, true,
            static_cast<uint32_t>(obs_cfg.parallel));
        t.addRow({"local",
                  strformat("%llu", static_cast<unsigned long long>(
                                        local.totalCompileCycles())),
                  "-", "-",
                  strformat("%llu", static_cast<unsigned long long>(
                                        local.hostBranches)),
                  bench::fmtRatio(local.dedupFactor())});
        t.addRow({"fleet",
                  strformat("%llu", static_cast<unsigned long long>(
                                        remote.totalCompileCycles())),
                  strformat("%llu", static_cast<unsigned long long>(
                                        remote.service.compiles)),
                  bench::fmtRatio(
                      remote.service.requests == 0 ? 0.0 :
                      static_cast<double>(remote.service.hits +
                                          remote.service.coalesced) /
                      static_cast<double>(remote.service.requests)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        remote.hostBranches)),
                  bench::fmtRatio(remote.dedupFactor())});
        t.print();
        double ratio = remote.totalCompileCycles() == 0 ? 0.0 :
            static_cast<double>(local.totalCompileCycles()) /
            static_cast<double>(remote.totalCompileCycles());
        std::printf("\nfleet-wide compile cycles: %sx fewer with the "
                    "shared service (%llu requests, %llu coalesced)\n",
                    bench::fmtRatio(ratio).c_str(),
                    static_cast<unsigned long long>(
                        remote.service.requests),
                    static_cast<unsigned long long>(
                        remote.service.coalesced));
        if (g_validate != validate::Mode::Off) {
            double ovh = remote.service.compileCycles == 0 ? 0.0 :
                static_cast<double>(remote.service.validateCycles) /
                static_cast<double>(remote.service.compileCycles);
            std::printf("install gate (%s): %llu validated, %llu "
                        "rejected, %llu escalated, overhead %.2f%% "
                        "of compile cycles\n",
                        validate::modeName(g_validate),
                        static_cast<unsigned long long>(
                            remote.service.validatePasses),
                        static_cast<unsigned long long>(
                            remote.service.validateFails),
                        static_cast<unsigned long long>(
                            remote.service.validateEscalations),
                        ovh * 100.0);
        }
    }

    if (!quick) {
        std::printf("\n");
        TextTable t("Sweep: fleet size x shards x cache capacity");
        t.setHeader({"Servers", "Shards", "Capacity", "Hit rate",
                     "Coalesced", "Evictions", "Dedup"});
        for (uint32_t n : {4u, 8u, 16u}) {
            for (uint32_t shards : {1u, 4u}) {
                for (uint32_t cap : {4u, 64u}) {
                    fleet::ServiceConfig sc;
                    sc.numShards = shards;
                    sc.shardCapacity = cap;
                    fleet::FleetStats st = runFleet(
                        n, true, ms / 2.0, mean_ms, obs_cfg.seed,
                        sc, false,
                        static_cast<uint32_t>(obs_cfg.parallel));
                    t.addRow(
                        {strformat("%u", n), strformat("%u", shards),
                         strformat("%u", cap),
                         bench::fmtRatio(
                             st.service.requests == 0 ? 0.0 :
                             static_cast<double>(st.service.hits +
                                                 st.service.coalesced) /
                             static_cast<double>(st.service.requests)),
                         strformat("%llu",
                                   static_cast<unsigned long long>(
                                       st.service.coalesced)),
                         strformat("%llu",
                                   static_cast<unsigned long long>(
                                       st.service.evictions)),
                         bench::fmtRatio(st.dedupFactor())});
                }
            }
        }
        t.print();
        std::printf("\npaper shape: one compile serves the whole "
                    "fleet; tiny caches evict and recompile\n");
    }

    // Continuous-profiling export: the shared-service configuration
    // again, telemetry plane + profiler on.
    if (!obs_cfg.profilePath.empty() ||
        !obs_cfg.flamegraphPath.empty()) {
        fleet::FleetConfig cfg;
        cfg.numServers = static_cast<uint32_t>(servers);
        cfg.remoteBackend = true;
        cfg.meanRequestMs = mean_ms;
        cfg.seed = obs_cfg.seed;
        cfg.service = svc;
        cfg.parallelWorkers = static_cast<uint32_t>(obs_cfg.parallel);
        cfg.validate.mode = g_validate;
        cfg.osr = g_osr;
        cfg.telemetry.enabled = true;
        cfg.telemetry.profiling = true;
        fleet::FleetSim sim(cfg);
        sim.run(ms);
        sim.flushTelemetry();
        bench::printWinningMasks(*sim.telemetry());
        bench::exportFleetProfile(*sim.telemetry(), obs_cfg);
    }

    bench::exportObs(obs_cfg);
    return 0;
}
