/**
 * @file
 * Figure 16: dynamic behavior of libquantum running with web-search
 * under fluctuating load, for PC3D and ReQoS.
 *
 * The paper's 900-second experiment is compressed 10x (90 simulated
 * seconds) with the same load pattern shape: high load until t=30s,
 * low load until t=60s, high load until t=90s. Expected dynamics:
 * PC3D searches at the start of each high-load phase (brief runtime-
 * cycle spikes), then runs an improved variant; during low load the
 * co-phase change reverts libquantum to its original code at full
 * speed; ReQoS instead throttles with naps during high load.
 *
 * The timeline itself rides the observability tracer — experiment
 * counters (qps/host_bpc/qos/runtime_share/nap), per-core HPM
 * tracks, search spans, phase-change and retarget events — and is
 * written as one Chrome trace JSON per system; open it in Perfetto.
 * Stdout carries the end-of-run summary.
 */

#include "common.h"

#include "datacenter/experiment.h"

using namespace protean;

namespace {

/** fig16.json + "pc3d" -> fig16.pc3d.json */
std::string
withLabel(const std::string &path, const char *label)
{
    size_t dot = path.rfind('.');
    if (dot == std::string::npos)
        return path + "." + label;
    return path.substr(0, dot) + "." + label + path.substr(dot);
}

std::string
fmtCount(const char *name)
{
    return strformat("%llu", static_cast<unsigned long long>(
        obs::metrics().counter(name).value()));
}

void
runTrace(datacenter::System system, const char *label,
         const bench::ObsConfig &base)
{
    // One timeline per system: start from a clean tracer/registry so
    // the two systems' events do not interleave in one file.
    obs::tracer().clear();
    obs::metrics().reset();

    datacenter::ColoConfig cfg;
    cfg.service = "web-search";
    cfg.batch = "libquantum";
    cfg.qosTarget = 0.95;
    cfg.system = system;
    // 10x-compressed Figure 16 load pattern.
    cfg.qpsTrace = {{0.0, 130.0}, {30'000.0, 12.0},
                    {60'000.0, 130.0}};
    cfg.settleMs = 80'000.0;
    cfg.measureMs = 10'000.0;

    datacenter::ColoResult r =
        datacenter::runColocationTrace(cfg, 2000.0);

    TextTable t(strformat("Figure 16 summary (%s)", label));
    t.setHeader({"Metric", "Value"});
    t.addRow({"utilization", strformat("%.3f", r.utilization)});
    t.addRow({"web-search QoS", strformat("%.2f", r.qos)});
    t.addRow({"runtime share",
              strformat("%.2f%%", 100 * r.runtimeShare)});
    t.addRow({"final nap", strformat("%.2f", r.nap)});
    t.addRow({"searches", fmtCount("pc3d.search.count")});
    t.addRow({"EVT retargets", fmtCount("runtime.evt.retargets")});
    t.addRow({"flux probes", fmtCount("runtime.qos.probes")});
    t.addRow({"phase changes", fmtCount("runtime.phase.changes")});
    t.addRow({"trace events",
              strformat("%zu", obs::tracer().eventCount())});
    t.print();

    bench::ObsConfig out;
    out.tracePath = withLabel(base.tracePath, label);
    if (!base.metricsPath.empty())
        out.metricsPath = withLabel(base.metricsPath, label);
    bench::exportObs(out);
    std::printf("timeline: %s\n\n", out.tracePath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    // This bench IS the timeline: trace even without --trace.
    if (obs_cfg.tracePath.empty())
        obs_cfg.tracePath = "fig16.json";
    obs::tracer().setEnabled(true);

    runTrace(datacenter::System::Pc3d, "pc3d", obs_cfg);
    runTrace(datacenter::System::ReQos, "reqos", obs_cfg);
    std::printf("paper shape: PC3D holds host progress high in "
                "high-load phases via code variants (runtime spikes "
                "at phase starts); at low load the host reverts to "
                "full speed; ReQoS relies on heavy naps during high "
                "load\n");
    return 0;
}
