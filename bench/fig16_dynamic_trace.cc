/**
 * @file
 * Figure 16: dynamic behavior of libquantum running with web-search
 * under fluctuating load, for PC3D and ReQoS.
 *
 * The paper's 900-second experiment is compressed 10x (90 simulated
 * seconds) with the same load pattern shape: high load until t=30s,
 * low load until t=60s, high load until t=90s. Expected dynamics:
 * PC3D searches at the start of each high-load phase (brief runtime-
 * cycle spikes), then runs an improved variant; during low load the
 * co-phase change reverts libquantum to its original code at full
 * speed; ReQoS instead throttles with naps during high load.
 */

#include "common.h"

#include "datacenter/experiment.h"

using namespace protean;

namespace {

void
runTrace(datacenter::System system, const char *label)
{
    datacenter::ColoConfig cfg;
    cfg.service = "web-search";
    cfg.batch = "libquantum";
    cfg.qosTarget = 0.95;
    cfg.system = system;
    // 10x-compressed Figure 16 load pattern.
    cfg.qpsTrace = {{0.0, 130.0}, {30'000.0, 12.0},
                    {60'000.0, 130.0}};
    cfg.settleMs = 80'000.0;
    cfg.measureMs = 10'000.0;

    datacenter::ColoResult r =
        datacenter::runColocationTrace(cfg, 2000.0);

    TextTable t(strformat("Figure 16 trace (%s)", label));
    t.setHeader({"t(s)", "QPS", "HostBPS(bpc)", "web-search QoS",
                 "Runtime %", "Nap"});
    for (const auto &s : r.trace) {
        t.addRow({strformat("%.0f", s.tMs / 1000.0),
                  strformat("%.0f", s.qps),
                  strformat("%.4f", s.hostBpc),
                  strformat("%.2f", s.qos),
                  strformat("%.2f%%", 100 * s.runtimeShare),
                  strformat("%.2f", s.nap)});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    runTrace(datacenter::System::Pc3d, "PC3D");
    runTrace(datacenter::System::ReQos, "ReQoS");
    std::printf("paper shape: PC3D holds host progress high in "
                "high-load phases via code variants (runtime spikes "
                "at phase starts); at low load the host reverts to "
                "full speed; ReQoS relies on heavy naps during high "
                "load\n");
    return 0;
}
