/**
 * @file
 * Figures 12-14: QoS delivered to web-search (Fig. 12),
 * media-streaming (Fig. 13) and graph-analytics (Fig. 14) while
 * co-running each contentious batch application under PC3D, at QoS
 * targets of 90%, 95% and 98%. The paper's result: PC3D reliably
 * meets its targets.
 */

#include "common.h"

#include "datacenter/experiment.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    const std::vector<double> targets = {0.90, 0.95, 0.98};
    int fig = 12;
    int met = 0, cells = 0;
    for (const auto &service : workloads::webserviceNames()) {
        TextTable t(strformat("Figure %d: QoS of %s under PC3D",
                              fig++, service.c_str()));
        t.setHeader({"Batch", "90% tgt", "95% tgt", "98% tgt"});
        for (const auto &batch : workloads::contentiousBatchNames()) {
            std::vector<std::string> row = {batch};
            for (double target : targets) {
                datacenter::ColoConfig cfg;
                cfg.service = service;
                cfg.batch = batch;
                cfg.qosTarget = target;
                cfg.qps = 120.0;
                cfg.system = datacenter::System::Pc3d;
                cfg.settleMs = 4000.0;
                cfg.measureMs = 2000.0;
                datacenter::ColoResult r =
                    datacenter::runColocation(cfg);
                ++cells;
                // 2% measurement slack, as QoS is estimated online.
                if (r.qos >= target - 0.02)
                    ++met;
                row.push_back(strformat("%.0f%%", 100.0 * r.qos));
            }
            t.addRow(row);
        }
        t.print();
        std::printf("\n");
    }
    std::printf("QoS met (within 2%% slack) in %d/%d cells\n", met,
                cells);
    bench::exportObs(obs_cfg);
    return 0;
}
