/**
 * @file
 * Microbenchmarks (google-benchmark) for the infrastructure hot
 * paths: cache access, simulated-core stepping, IR serialization and
 * compression, function lowering, and EVT retargeting.
 */

#include <benchmark/benchmark.h>

#include "ir/serializer.h"
#include "pcc/pcc.h"
#include "runtime/attach.h"
#include "runtime/compiler.h"
#include "runtime/evt_manager.h"
#include "sim/machine.h"
#include "support/compression.h"
#include "workloads/registry.h"

namespace {

using namespace protean;

workloads::BatchSpec
benchSpec()
{
    workloads::BatchSpec spec = workloads::batchSpec("milc");
    spec.targetStaticLoads = 0;
    return spec;
}

void
BM_CacheAccess(benchmark::State &state)
{
    sim::MachineConfig cfg;
    sim::Cache cache("bench", cfg.l3);
    uint64_t addr = 0;
    for (auto _ : state) {
        if (!cache.access(addr))
            cache.fill(addr, false);
        addr += 64;
        benchmark::DoNotOptimize(addr);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SimulatedInstructions(benchmark::State &state)
{
    ir::Module m = workloads::buildBatch(benchSpec());
    isa::Image image = pcc::compilePlain(m);
    sim::Machine machine;
    machine.load(image, 0);
    uint64_t before = machine.core(0).hpm().instructions;
    for (auto _ : state)
        machine.runFor(10'000);
    state.SetItemsProcessed(static_cast<int64_t>(
        machine.core(0).hpm().instructions - before));
}
BENCHMARK(BM_SimulatedInstructions);

void
BM_IrSerialize(benchmark::State &state)
{
    ir::Module m = workloads::buildBatch(benchSpec());
    m.renumberLoads();
    for (auto _ : state) {
        auto bytes = ir::serialize(m);
        benchmark::DoNotOptimize(bytes.data());
    }
}
BENCHMARK(BM_IrSerialize);

void
BM_IrCompressedRoundtrip(benchmark::State &state)
{
    ir::Module m = workloads::buildBatch(benchSpec());
    m.renumberLoads();
    auto packed = ir::serializeCompressed(m);
    state.counters["blob_bytes"] =
        static_cast<double>(packed.size());
    for (auto _ : state) {
        auto back = ir::deserializeCompressed(packed);
        benchmark::DoNotOptimize(back.get());
    }
}
BENCHMARK(BM_IrCompressedRoundtrip);

void
BM_LowerHotFunction(benchmark::State &state)
{
    ir::Module m = workloads::buildBatch(benchSpec());
    isa::Image image = pcc::compile(m);
    const ir::Function &hot = *m.findFunction("hot_0");
    BitVector mask(m.numLoads(), true);
    codegen::LowerOptions opts;
    opts.layout = &image.layout;
    opts.ntMask = &mask;
    for (auto _ : state) {
        auto lowered = codegen::lowerFunction(m, hot, opts);
        benchmark::DoNotOptimize(lowered.code.data());
    }
}
BENCHMARK(BM_LowerHotFunction);

void
BM_EvtRetarget(benchmark::State &state)
{
    ir::Module m = workloads::buildBatch(benchSpec());
    isa::Image image = pcc::compile(m);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    runtime::Attachment att = runtime::attach(proc);
    runtime::EvtManager evt(proc, att.evtBase, att.slots);
    ir::FuncId hot = m.findFunction("hot_0")->id();
    isa::CodeAddr entry = image.function(hot).entry;
    for (auto _ : state)
        evt.retarget(hot, entry);
}
BENCHMARK(BM_EvtRetarget);

void
BM_Compress(benchmark::State &state)
{
    ir::Module m = workloads::buildBatch(benchSpec());
    m.renumberLoads();
    auto raw = ir::serialize(m);
    for (auto _ : state) {
        auto packed = compress(raw);
        benchmark::DoNotOptimize(packed.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(
        state.iterations() * raw.size()));
}
BENCHMARK(BM_Compress);

} // namespace
