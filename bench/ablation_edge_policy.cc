/**
 * @file
 * Ablation: edge-virtualization policy (DESIGN.md).
 *
 * The paper virtualizes only calls whose callee has more than one
 * basic block. This ablation compares that policy's overhead and
 * EVT footprint against virtualizing every call edge, across the
 * SPEC applications.
 */

#include "common.h"

#include "support/stats.h"

using namespace protean;

namespace {

uint64_t
measureWithPolicy(const std::string &batch, pcc::EdgePolicy policy)
{
    workloads::BatchSpec spec = workloads::batchSpec(batch);
    spec.targetStaticLoads = 0;
    ir::Module module = workloads::buildBatch(spec);
    pcc::PccOptions opts;
    opts.policy = policy;
    isa::Image image = pcc::compile(module, opts);

    sim::Machine machine;
    machine.load(image, 0);
    machine.runFor(machine.msToCycles(bench::kWarmMs));
    uint64_t before = machine.core(0).hpm().branches;
    machine.runFor(machine.msToCycles(bench::kMeasureMs));
    return machine.core(0).hpm().branches - before;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    TextTable t("Ablation: edge-virtualization policy "
                "(slowdown vs native)");
    t.setHeader({"App", "MultiBlockCallees", "AllCallees"});

    std::vector<double> multi, all;
    for (const auto &name : workloads::specBenchmarkNames()) {
        uint64_t native = bench::measureBranchesPlain(name, false);
        double m = static_cast<double>(native) /
            measureWithPolicy(name,
                              pcc::EdgePolicy::MultiBlockCallees);
        double a = static_cast<double>(native) /
            measureWithPolicy(name, pcc::EdgePolicy::AllCallees);
        multi.push_back(m);
        all.push_back(a);
        t.addRow({name, bench::fmtRatio(m), bench::fmtRatio(a)});
    }
    t.addRow({"Mean", bench::fmtRatio(mean(multi)),
              bench::fmtRatio(mean(all))});
    t.print();
    std::printf("\nexpectation: both cheap; AllCallees pays extra "
                "EVT reads on hot leaf calls\n");
    bench::exportObs(obs_cfg);
    return 0;
}
