/**
 * @file
 * Figure 8: the search-space reduction heuristics, per contentious
 * application — % of static loads remaining after coverage pruning
 * ("Active Regions") and after the innermost-loop filter ("Max
 * Depth"), with absolute full-program load counts.
 *
 * Coverage comes from genuine PC samples: each application runs
 * under a protean runtime whose sampler attributes the program
 * counter to functions, exactly as PC3D does online.
 */

#include "common.h"

#include <cmath>

#include "pc3d/heuristics.h"
#include "runtime/runtime.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    TextTable t("Figure 8: search-space reduction (loads remaining)");
    t.setHeader({"App", "Full", "Active", "MaxDepth", "Active%",
                 "MaxDepth%"});

    double cov_log = 0.0, full_log = 0.0;
    double dyn_cover = 0.0;
    int n = 0;

    for (const auto &name : workloads::contentiousBatchNames()) {
        workloads::BatchSpec spec = workloads::batchSpec(name);
        ir::Module module = workloads::buildBatch(spec);
        isa::Image image = pcc::compile(module);

        sim::Machine machine;
        sim::Process &proc = machine.load(image, 0);
        runtime::RuntimeOptions opts;
        opts.runtimeCore = 1;
        opts.tickMs = 2.0;
        runtime::ProteanRuntime rt(machine, proc, opts);
        rt.start();
        machine.runFor(machine.msToCycles(600));

        auto hot = rt.sampler().hotFunctions(0.99);
        pc3d::SearchSpace space =
            pc3d::buildSearchSpace(rt.module(), hot);

        // Dynamic-load coverage of the reduced space: fraction of
        // executed loads issued by max-depth (inner-loop) code.
        // Inner loads execute innerIters times per outer trip, so
        // the exact dynamic share follows from the loop structure.
        uint64_t inner = space.maxDepthLoads;
        uint64_t active = space.activeRegionLoads;
        double coverage = active == 0 ? 0.0 :
            static_cast<double>(inner) * spec.innerIters /
            (static_cast<double>(inner) * spec.innerIters +
             static_cast<double>(active - inner));
        dyn_cover += coverage;

        t.addRow({name,
                  strformat("(%zu)", space.fullProgramLoads),
                  strformat("%zu", space.activeRegionLoads),
                  strformat("%zu", space.maxDepthLoads),
                  strformat("%.1f%%", 100.0 * active /
                            std::max<size_t>(space.fullProgramLoads,
                                             1)),
                  strformat("%.1f%%", 100.0 * inner /
                            std::max<size_t>(space.fullProgramLoads,
                                             1))});
        cov_log += std::log(static_cast<double>(
            space.fullProgramLoads) / std::max<size_t>(active, 1));
        full_log += std::log(static_cast<double>(
            space.fullProgramLoads) / std::max<size_t>(inner, 1));
        ++n;
    }
    t.print();

    std::printf("\nmean reduction: coverage pruning %.1fx, full "
                "heuristic stack %.1fx (paper: 12x and 44x)\n",
                std::exp(cov_log / n), std::exp(full_log / n));
    std::printf("mean dynamic-load coverage of reduced space: "
                "%.0f%% (paper: >80%%)\n", 100.0 * dyn_cover / n);
    bench::exportObs(obs_cfg);
    return 0;
}
