/**
 * @file
 * Shared continuous-profiling report helpers for the fleet benches.
 *
 * Fleet benches that run with `telemetry.profiling` on use these to
 * (1) honor the common `--profile=<path>` / `--flamegraph=<path>`
 * flags against the hub's fleet-merged profile and (2) print the
 * variant scoreboard's winning-mask table — the fleet-wide answer to
 * "which NT-mask should this function run in this phase".
 */

#ifndef PROTEAN_BENCH_PROFILE_REPORT_H
#define PROTEAN_BENCH_PROFILE_REPORT_H

#include <set>
#include <utility>

#include "common.h"
#include "fleet/telemetry.h"

namespace protean {
namespace bench {

/** Write the fleet-merged profile as requested on the command line
 *  (no-op for paths not given). */
inline void
exportFleetProfile(const fleet::TelemetryHub &hub,
                   const ObsConfig &cfg)
{
    if (!cfg.profilePath.empty())
        hub.fleetProfile().writeJson(cfg.profilePath);
    if (!cfg.flamegraphPath.empty())
        hub.fleetProfile().writeFolded(cfg.flamegraphPath);
}

/** The scoreboard's advisory table: one row per (function, phase)
 *  ever flipped, naming the recommended mask and its record. */
inline void
printWinningMasks(const fleet::TelemetryHub &hub)
{
    const fleet::VariantScoreboard &sb = hub.scoreboard();
    const obs::Profile &prof = hub.fleetProfile();
    std::printf("\n");
    TextTable t("Variant scoreboard: winning NT-mask per (function, "
                "phase)");
    t.setHeader({"Function", "Phase", "Best mask", "Flips", "Wins",
                 "Mean dIPC", "Samples"});
    std::set<std::pair<uint64_t, uint32_t>> pairs;
    for (const auto &[key, o] : sb.outcomes())
        pairs.emplace(key.funcHash, key.phase);
    for (const auto &[hash, phase] : pairs) {
        std::string mask = sb.recommendMask(hash, phase);
        const fleet::VariantOutcome *o =
            sb.outcome(hash, mask, phase);
        t.addRow({prof.nameOf(hash), strformat("%u", phase),
                  mask.empty() ? "original" : mask,
                  strformat("%llu",
                            static_cast<unsigned long long>(
                                o ? o->flips : 0)),
                  strformat("%llu",
                            static_cast<unsigned long long>(
                                o ? o->wins : 0)),
                  strformat("%+.4f", o ? o->score() : 0.0),
                  strformat("%llu",
                            static_cast<unsigned long long>(
                                prof.samplesOf(hash)))});
    }
    t.print();
    std::printf("profile: %llu samples in %zu (func, mask, phase) "
                "buckets; hottest %s\n",
                static_cast<unsigned long long>(
                    prof.totalSamples()),
                prof.entries().size(),
                prof.nameOf(prof.hottestFunction()).c_str());
}

} // namespace bench
} // namespace protean

#endif // PROTEAN_BENCH_PROFILE_REPORT_H
