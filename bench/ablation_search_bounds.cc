/**
 * @file
 * Ablation: nap-bound reuse in the variant search (DESIGN.md).
 *
 * Algorithm 1 narrows each VariantEval's nap binary search using
 * bounds established by variants 0/1 and tightened on each accepted
 * variant. Compares evaluation-window counts with and without the
 * bound reuse, on the live system.
 */

#include "common.h"

#include "datacenter/experiment.h"
#include "pc3d/pc3d.h"
#include "reqos/reqos.h"
#include "runtime/runtime.h"
#include "workloads/driver.h"

using namespace protean;

namespace {

/** Run a PC3D colocation with an explicit engine config; return
 *  (search windows, searches). */
std::pair<uint64_t, uint64_t>
runSearch(bool reuse_bounds)
{
    sim::MachineConfig mcfg;
    sim::Machine machine(mcfg);

    ir::Module sm = workloads::buildService(
        workloads::serviceSpec("web-search"));
    isa::Image simg = pcc::compilePlain(sm);
    sim::Process &svc = machine.load(simg, 0);
    workloads::ServiceDriver driver(
        machine, svc,
        workloads::globalAddr(simg, sm,
                              workloads::kServiceReqGlobal),
        workloads::globalAddr(simg, sm,
                              workloads::kServiceDoneGlobal));
    driver.setQps(120.0);
    driver.start();

    workloads::BatchSpec bs = workloads::batchSpec("sphinx3");
    ir::Module bm = workloads::buildBatch(bs);
    isa::Image bimg = pcc::compile(bm);
    sim::Process &batch = machine.load(bimg, 1);

    runtime::NapGovernor governor(machine, 1);
    runtime::QosMonitor qos(machine, governor, {0});

    runtime::RuntimeOptions ropts;
    ropts.runtimeCore = 2;
    runtime::ProteanRuntime rt(machine, batch, ropts);
    pc3d::Pc3dOptions popts;
    popts.qosTarget = 0.95;
    popts.reuseNapBounds = reuse_bounds;
    pc3d::Pc3dEngine engine(qos, popts);
    rt.setEngine(&engine);
    rt.start();

    machine.runFor(machine.msToCycles(8000.0));
    return {engine.searchWindowsTotal(), engine.searchesStarted()};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    auto [with_w, with_s] = runSearch(true);
    auto [without_w, without_s] = runSearch(false);

    TextTable t("Ablation: nap-bound reuse in Algorithm 1 "
                "(sphinx3 + web-search @95%)");
    t.setHeader({"Configuration", "Eval windows", "Searches",
                 "Windows/search"});
    auto row = [&](const char *label, uint64_t w, uint64_t n) {
        t.addRow({label,
                  strformat("%llu",
                            static_cast<unsigned long long>(w)),
                  strformat("%llu",
                            static_cast<unsigned long long>(n)),
                  strformat("%.1f",
                            n ? static_cast<double>(w) / n : 0.0)});
    };
    row("with bound reuse", with_w, with_s);
    row("without bound reuse", without_w, without_s);
    t.print();
    std::printf("\nexpectation: bound reuse converges in fewer "
                "evaluation windows per search\n");
    bench::exportObs(obs_cfg);
    return 0;
}
