/**
 * @file
 * Host-side throughput of the execution engines (DESIGN.md §8).
 *
 * Measures simulated-instructions per host second for the reference
 * Step engine against the horizon-batched Batch engine on a single
 * machine, across two workloads bracketing the engine's range: a
 * compute-bound ALU kernel (per-instruction model cost is tiny, so
 * the scheduler scan Step pays per instruction dominates — batching
 * at its best) and the memory-bound protean soplex binary (cache/
 * DRAM modeling dominates both engines, so batching only shaves the
 * smaller scheduling share). Each runs with one hot core — the
 * fleet shape — and colocated on two cores, the horizon's worst
 * case. Then host wall time for an 8-server FleetSim stepped
 * serially vs on `--parallel=N` worker threads. Every configuration
 * cross-checks its simulated totals against the reference run, so a
 * speedup that changed observable behavior fails the bench instead
 * of reporting a number.
 *
 * Also bounds the observability off-path cost: with the tracer
 * disabled every instrumentation site reduces to one branch on
 * tracer().enabled(), so the bench times that guard directly, counts
 * how many times a traced run of the fleet takes it, asserts an
 * obs-off run records zero events, and fails if the implied overhead
 * reaches 1% of the run's wall time.
 *
 * Emits machine-readable results as JSON (--out, default
 * BENCH_engine.json). `--min-speedup=<x>` exits nonzero when the
 * single-proc ALU batch/step ratio falls below x, which is how CI
 * keeps the fast path honest.
 *
 * Flags (beyond the common set): --ms=<x> (simulated run length,
 * single machine), --fleet-ms=<x>, --servers=<n>, --out=<path>,
 * --min-speedup=<x> and --quick.
 */

#include "common.h"

#include <chrono>
#include <thread>

#include "fleet/fleet.h"
#include "ir/builder.h"

using namespace protean;

namespace {

/** Compute-bound kernel: a dependent ALU chain and a branch, no
 *  memory traffic — the per-instruction model cost floor. */
ir::Module
aluModule()
{
    ir::Module m("alu");
    ir::IRBuilder b(m);
    b.startFunction("main", 0);
    ir::Reg one = b.constInt(1);
    ir::Reg three = b.constInt(3);
    ir::Reg acc = b.constInt(0x9e3779b9);
    ir::Reg tmp = b.func().newReg();
    b.func().noteReg(tmp);
    ir::BlockId loop = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(tmp, ir::Opcode::Shl, acc, three);
    b.binaryInto(tmp, ir::Opcode::Xor, tmp, acc);
    b.binaryInto(acc, ir::Opcode::Add, tmp, one);
    b.binaryInto(tmp, ir::Opcode::Shr, acc, one);
    b.binaryInto(acc, ir::Opcode::Or, acc, tmp);
    b.br(loop);
    return m;
}

double
elapsedSec(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct SingleResult
{
    double wallSec = 0.0;
    uint64_t instructions = 0;
    uint64_t branches = 0;

    double ips() const
    {
        return wallSec <= 0.0 ? 0.0 :
            static_cast<double>(instructions) / wallSec;
    }
};

/** One timed single-machine run: `procs` copies of the batch app on
 *  cores 0..procs-1, advanced `ms` simulated milliseconds. */
SingleResult
runSingle(sim::Engine engine, const isa::Image &image, uint32_t procs,
          double ms)
{
    sim::Machine machine;
    machine.setEngine(engine);
    for (uint32_t c = 0; c < procs; ++c)
        machine.load(image, c);
    auto t0 = std::chrono::steady_clock::now();
    machine.runFor(machine.msToCycles(ms));
    SingleResult r;
    r.wallSec = elapsedSec(t0);
    for (uint32_t c = 0; c < machine.numCores(); ++c) {
        r.instructions += machine.core(c).hpm().instructions;
        r.branches += machine.core(c).hpm().branches;
    }
    return r;
}

struct FleetResult
{
    double wallSec = 0.0;
    fleet::FleetStats stats;
};

FleetResult
runFleetTimed(uint32_t servers, uint32_t workers, double ms,
              uint64_t seed)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.seed = seed;
    cfg.parallelWorkers = workers;
    fleet::FleetSim sim(cfg);
    auto t0 = std::chrono::steady_clock::now();
    sim.run(ms);
    FleetResult r;
    r.wallSec = elapsedSec(t0);
    r.stats = sim.stats();
    return r;
}

void
checkSingleEquivalent(const SingleResult &step,
                      const SingleResult &batch, const char *what)
{
    if (step.instructions != batch.instructions ||
        step.branches != batch.branches)
        fatal("engine mismatch (%s): step retired %llu/%llu "
              "instructions/branches, batch %llu/%llu",
              what,
              static_cast<unsigned long long>(step.instructions),
              static_cast<unsigned long long>(step.branches),
              static_cast<unsigned long long>(batch.instructions),
              static_cast<unsigned long long>(batch.branches));
}

void
checkFleetEquivalent(const fleet::FleetStats &serial,
                     const fleet::FleetStats &par, uint32_t workers)
{
    if (serial.deployRequests != par.deployRequests ||
        serial.hostBranches != par.hostBranches ||
        serial.service.compiles != par.service.compiles ||
        serial.service.requests != par.service.requests)
        fatal("fleet mismatch at --parallel=%u: serial "
              "(%llu req, %llu branches) vs parallel "
              "(%llu req, %llu branches)",
              workers,
              static_cast<unsigned long long>(serial.deployRequests),
              static_cast<unsigned long long>(serial.hostBranches),
              static_cast<unsigned long long>(par.deployRequests),
              static_cast<unsigned long long>(par.hostBranches));
}

std::string
fmtIps(double ips)
{
    return strformat("%.2fM", ips / 1e6);
}

/** Seconds per tracer().enabled() check, measured with the load and
 *  test pinned in the loop (the optimizer would otherwise hoist the
 *  whole thing and report zero). */
double
guardCheckSeconds()
{
    obs::Tracer &tr = obs::tracer();
    constexpr uint64_t kIters = 50000000;
    uint64_t hits = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        bool e = tr.enabled();
        asm volatile("" : "+r"(e)::"memory");
        if (e)
            ++hits;
    }
    double sec = elapsedSec(t0);
    if (hits != 0)
        fatal("guard microbench: tracer was enabled mid-loop");
    return sec / static_cast<double>(kIters);
}

} // namespace

/** One (workload, proc-count) comparison. */
struct CaseResult
{
    std::string workload;
    uint32_t procs = 1;
    SingleResult step;
    SingleResult batch;

    double speedup() const
    {
        return batch.wallSec <= 0.0 ? 0.0 :
            step.wallSec / batch.wallSec;
    }
};

int
main(int argc, char **argv)
{
    double ms = 1500.0;
    double fleet_ms = 300.0;
    uint64_t servers = 8;
    std::string out = "BENCH_engine.json";
    double min_speedup = 0.0;
    bool quick = false;
    bench::ArgParser parser;
    parser.addFlag("ms", &ms, "simulated ms, single machine");
    parser.addFlag("fleet-ms", &fleet_ms, "simulated ms, fleet runs");
    parser.addFlag("servers", &servers, "fleet size (default 8)");
    parser.addFlag("out", &out, "JSON results path");
    parser.addFlag("min-speedup", &min_speedup,
                   "fail unless ALU batch/step >= x (0 = report only)");
    parser.addSwitch("quick", &quick, "small configuration for CI");
    bench::ObsConfig obs_cfg = parser.parse(argc, argv);
    if (quick) {
        ms = 300.0;
        fleet_ms = 60.0;
    }

    ir::Module alu_m = aluModule();
    isa::Image alu = pcc::compilePlain(alu_m);
    workloads::BatchSpec spec = workloads::batchSpec("soplex");
    spec.targetStaticLoads = 0; // padding never executes
    ir::Module soplex_m = workloads::buildBatch(spec);
    isa::Image soplex = pcc::compile(soplex_m);

    // Warm-up: touch the code paths once so the first timed run does
    // not pay one-time allocation/page-in costs.
    runSingle(sim::Engine::Batch, alu, 1, ms / 20.0);
    runSingle(sim::Engine::Batch, soplex, 1, ms / 20.0);

    std::vector<CaseResult> cases;
    struct
    {
        const char *name;
        const isa::Image *image;
    } workloads_tbl[] = {{"alu", &alu}, {"soplex", &soplex}};
    for (const auto &w : workloads_tbl) {
        for (uint32_t procs : {1u, 2u}) {
            CaseResult c;
            c.workload = w.name;
            c.procs = procs;
            c.step =
                runSingle(sim::Engine::Step, *w.image, procs, ms);
            c.batch =
                runSingle(sim::Engine::Batch, *w.image, procs, ms);
            checkSingleEquivalent(
                c.step, c.batch,
                strformat("%s/%u", w.name, procs).c_str());
            cases.push_back(std::move(c));
        }
    }

    {
        TextTable t("Single machine: simulated instructions per host "
                    "second");
        t.setHeader({"Workload", "Procs", "Engine", "Wall s",
                     "Sim instrs", "Instrs/s", "Speedup"});
        for (const CaseResult &c : cases) {
            t.addRow({c.workload, strformat("%u", c.procs), "step",
                      strformat("%.3f", c.step.wallSec),
                      strformat("%llu", static_cast<unsigned long long>(
                                            c.step.instructions)),
                      fmtIps(c.step.ips()), "-"});
            t.addRow({c.workload, strformat("%u", c.procs), "batch",
                      strformat("%.3f", c.batch.wallSec),
                      strformat("%llu", static_cast<unsigned long long>(
                                            c.batch.instructions)),
                      fmtIps(c.batch.ips()),
                      bench::fmtRatio(c.speedup())});
        }
        t.print();
    }

    // Fleet: serial reference first, then each worker count against
    // it. The serial run also serves as the equivalence baseline.
    std::vector<uint32_t> worker_counts = quick ?
        std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4};
    std::vector<FleetResult> fleet_runs;
    for (uint32_t w : worker_counts) {
        fleet_runs.push_back(runFleetTimed(
            static_cast<uint32_t>(servers), w, fleet_ms,
            obs_cfg.seed));
        if (w != 1)
            checkFleetEquivalent(fleet_runs.front().stats,
                                 fleet_runs.back().stats, w);
    }

    {
        std::printf("\n");
        TextTable t(strformat("Fleet of %llu servers: serial vs "
                              "--parallel stepping",
                              static_cast<unsigned long long>(
                                  servers)));
        t.setHeader({"Workers", "Wall s", "Host branches", "Speedup"});
        for (size_t i = 0; i < fleet_runs.size(); ++i) {
            const FleetResult &r = fleet_runs[i];
            double sp = r.wallSec <= 0.0 ? 0.0 :
                fleet_runs.front().wallSec / r.wallSec;
            t.addRow({strformat("%u", worker_counts[i]),
                      strformat("%.3f", r.wallSec),
                      strformat("%llu", static_cast<unsigned long long>(
                                            r.stats.hostBranches)),
                      i == 0 ? "-" : bench::fmtRatio(sp)});
        }
        t.print();
        unsigned hw = std::thread::hardware_concurrency();
        if (hw <= 1)
            std::printf("(host has %u hardware thread%s: --parallel "
                        "cannot scale here, shown for equivalence "
                        "only)\n",
                        hw ? hw : 1, hw == 1 ? "" : "s");
    }

    // ---- observability off-path overhead ----
    double guard_sec = 0.0;
    uint64_t traced_events = 0;
    double obs_overhead = 0.0;
    bool obs_gate_failed = false;
    if (obs::tracer().enabled()) {
        // --trace was given: the whole bench is a traced run, so the
        // "obs off" premise does not hold; skip the gate.
        std::printf("\nobs off-path overhead: skipped under "
                    "--trace\n");
    } else {
        guard_sec = guardCheckSeconds();

        // How often would the off-path branch be taken? Count the
        // events an identical traced run records: every one of them
        // is a guard that passed, so it bounds the guard takes of
        // the untraced run from above within rounding.
        obs::tracer().setEnabled(true);
        runFleetTimed(static_cast<uint32_t>(servers), 1, fleet_ms,
                      obs_cfg.seed);
        traced_events = obs::tracer().eventCount();
        obs::tracer().clear();
        obs::tracer().setEnabled(false);

        FleetResult off = runFleetTimed(
            static_cast<uint32_t>(servers), 1, fleet_ms,
            obs_cfg.seed);
        if (obs::tracer().eventCount() != 0)
            fatal("obs-off run recorded %zu trace events; gating is "
                  "broken",
                  obs::tracer().eventCount());

        obs_overhead = off.wallSec <= 0.0 ? 0.0 :
            static_cast<double>(traced_events) * guard_sec /
                off.wallSec;
        std::printf("\nobs off-path overhead: %.2f ns/check x %llu "
                    "guarded sites hit = %.4f%% of the %.3f s fleet "
                    "run (0 events recorded)\n",
                    guard_sec * 1e9,
                    static_cast<unsigned long long>(traced_events),
                    obs_overhead * 100.0, off.wallSec);
        if (obs_overhead >= 0.01)
            obs_gate_failed = true;
    }

    double alu_speedup = cases.front().speedup();
    std::printf("\nbatch engine: %sx on the ALU kernel (1 proc), "
                "%sx on soplex; exports byte-identical across all "
                "modes\n",
                bench::fmtRatio(alu_speedup).c_str(),
                bench::fmtRatio(cases[2].speedup()).c_str());

    if (!out.empty()) {
        FILE *f = std::fopen(out.c_str(), "w");
        if (!f)
            fatal("cannot write %s", out.c_str());
        std::fprintf(f,
                     "{\n  \"single\": {\n    \"sim_ms\": %g,\n"
                     "    \"cases\": [\n",
                     ms);
        for (size_t i = 0; i < cases.size(); ++i) {
            const CaseResult &c = cases[i];
            auto one = [&](const SingleResult &r) {
                return strformat(
                    "{\"wall_sec\": %.6f, \"instructions\": %llu, "
                    "\"ips\": %.1f}",
                    r.wallSec,
                    static_cast<unsigned long long>(r.instructions),
                    r.ips());
            };
            std::fprintf(
                f,
                "      {\"workload\": \"%s\", \"procs\": %u,\n"
                "       \"step\": %s,\n       \"batch\": %s,\n"
                "       \"speedup\": %.3f}%s\n",
                c.workload.c_str(), c.procs, one(c.step).c_str(),
                one(c.batch).c_str(), c.speedup(),
                i + 1 < cases.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
        std::fprintf(f,
                     "  \"fleet\": {\n    \"servers\": %llu,\n"
                     "    \"sim_ms\": %g,\n    \"hw_threads\": %u,\n"
                     "    \"runs\": [\n",
                     static_cast<unsigned long long>(servers),
                     fleet_ms,
                     std::thread::hardware_concurrency());
        for (size_t i = 0; i < fleet_runs.size(); ++i) {
            const FleetResult &r = fleet_runs[i];
            std::fprintf(
                f,
                "      {\"parallel\": %u, \"wall_sec\": %.6f, "
                "\"host_branches\": %llu, \"speedup\": %.3f}%s\n",
                worker_counts[i], r.wallSec,
                static_cast<unsigned long long>(r.stats.hostBranches),
                r.wallSec <= 0.0 ? 0.0 :
                    fleet_runs.front().wallSec / r.wallSec,
                i + 1 < fleet_runs.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
        std::fprintf(f,
                     "  \"obs_off\": {\"guard_ns\": %.3f, "
                     "\"traced_events\": %llu, "
                     "\"overhead_fraction\": %.6f}\n}\n",
                     guard_sec * 1e9,
                     static_cast<unsigned long long>(traced_events),
                     obs_overhead);
        std::fclose(f);
        std::printf("wrote %s\n", out.c_str());
    }

    bench::exportObs(obs_cfg);

    if (min_speedup > 0.0 && alu_speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: ALU batch/step speedup %.3f below "
                     "required %.3f\n",
                     alu_speedup, min_speedup);
        return 1;
    }
    if (obs_gate_failed) {
        std::fprintf(stderr,
                     "FAIL: obs off-path overhead %.4f%% reaches the "
                     "1%% budget\n",
                     obs_overhead * 100.0);
        return 1;
    }
    return 0;
}
