/**
 * @file
 * Host-side throughput of the execution engines (DESIGN.md §8).
 *
 * Measures simulated-instructions per host second for the reference
 * Step engine against the horizon-batched Batch engine on a single
 * machine, across two workloads bracketing the engine's range: a
 * compute-bound ALU kernel (per-instruction model cost is tiny, so
 * the scheduler scan Step pays per instruction dominates — batching
 * at its best) and the memory-bound protean soplex binary (cache/
 * DRAM modeling dominates both engines, so batching only shaves the
 * smaller scheduling share). Each runs with one hot core — the
 * fleet shape — and colocated on two cores, the horizon's worst
 * case. Then host wall time for an 8-server FleetSim stepped
 * serially vs on `--parallel=N` worker threads. Every configuration
 * cross-checks its simulated totals against the reference run, so a
 * speedup that changed observable behavior fails the bench instead
 * of reporting a number.
 *
 * Also bounds the observability off-path cost: with the tracer
 * disabled every instrumentation site reduces to one branch on
 * tracer().enabled(), so the bench times that guard directly, counts
 * how many times a traced run of the fleet takes it, asserts an
 * obs-off run records zero events, and fails if the implied overhead
 * reaches 1% of the run's wall time. The continuous profiler gets
 * the same treatment: disabled it is one null-pointer test per
 * monitoring tick (in PcSampler::sample and ProteanRuntime::tick),
 * so the bench times that test, counts the ticks the off run took,
 * and fails at 1% as well.
 *
 * Results append to a git-stamped trajectory (--out, default
 * BENCH_engine.json; schema-1 `{"schema","benchmark","runs":[...]}`)
 * rather than overwriting, so the file accumulates a perf history
 * that bench/trajectory gates on. `--min-speedup=<x>` still exits
 * nonzero when the single-proc ALU batch/step ratio falls below x,
 * which is how CI keeps the fast path honest. The multi-proc and
 * fleet gates (`--min-speedup-2proc`, `--min-fleet-speedup`) only
 * bind when the host reports >= 2 hardware threads — on a 1-thread
 * container the parallel fleet legitimately clamps to serial, so
 * those gates print a skip notice instead. `hw_threads` rides along
 * as a metric (and per case in detail) so the trajectory checker can
 * compare host-dependent metrics like-for-like (--match=hw_threads).
 *
 * Flags (beyond the common set): --ms=<x> (simulated run length,
 * single machine), --fleet-ms=<x>, --servers=<n>, --out=<path>,
 * --min-speedup=<x>, --min-speedup-2proc=<x>, --min-fleet-speedup=<x>
 * and --quick.
 */

#include "common.h"

#include <chrono>
#include <thread>

#include "fleet/fleet.h"
#include "ir/builder.h"

using namespace protean;

namespace {

/** Compute-bound kernel: a dependent ALU chain and a branch, no
 *  memory traffic — the per-instruction model cost floor. */
ir::Module
aluModule()
{
    ir::Module m("alu");
    ir::IRBuilder b(m);
    b.startFunction("main", 0);
    ir::Reg one = b.constInt(1);
    ir::Reg three = b.constInt(3);
    ir::Reg acc = b.constInt(0x9e3779b9);
    ir::Reg tmp = b.func().newReg();
    b.func().noteReg(tmp);
    ir::BlockId loop = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(tmp, ir::Opcode::Shl, acc, three);
    b.binaryInto(tmp, ir::Opcode::Xor, tmp, acc);
    b.binaryInto(acc, ir::Opcode::Add, tmp, one);
    b.binaryInto(tmp, ir::Opcode::Shr, acc, one);
    b.binaryInto(acc, ir::Opcode::Or, acc, tmp);
    b.br(loop);
    return m;
}

double
elapsedSec(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct SingleResult
{
    double wallSec = 0.0;
    uint64_t instructions = 0;
    uint64_t branches = 0;
    /** Decoded-superblock dispatch totals over all cores. Zero for
     *  the Step engine (which never dispatches superblocks); a pure
     *  function of the simulation, so host-independent. */
    uint64_t sbHits = 0;
    uint64_t sbMisses = 0;

    double ips() const
    {
        return wallSec <= 0.0 ? 0.0 :
            static_cast<double>(instructions) / wallSec;
    }
};

/** One timed single-machine run: `procs` copies of the batch app on
 *  cores 0..procs-1, advanced `ms` simulated milliseconds. */
SingleResult
runSingle(sim::Engine engine, const isa::Image &image, uint32_t procs,
          double ms)
{
    sim::Machine machine;
    machine.setEngine(engine);
    for (uint32_t c = 0; c < procs; ++c)
        machine.load(image, c);
    auto t0 = std::chrono::steady_clock::now();
    machine.runFor(machine.msToCycles(ms));
    SingleResult r;
    r.wallSec = elapsedSec(t0);
    for (uint32_t c = 0; c < machine.numCores(); ++c) {
        r.instructions += machine.core(c).hpm().instructions;
        r.branches += machine.core(c).hpm().branches;
        r.sbHits += machine.core(c).superblockStats().hits;
        r.sbMisses += machine.core(c).superblockStats().misses;
    }
    return r;
}

struct FleetResult
{
    double wallSec = 0.0;
    fleet::FleetStats stats;
};

FleetResult
runFleetTimed(uint32_t servers, uint32_t workers, double ms,
              uint64_t seed)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.seed = seed;
    cfg.parallelWorkers = workers;
    fleet::FleetSim sim(cfg);
    auto t0 = std::chrono::steady_clock::now();
    sim.run(ms);
    FleetResult r;
    r.wallSec = elapsedSec(t0);
    r.stats = sim.stats();
    return r;
}

/** Hot-loop flip-latency study (DESIGN.md §14): one run of the
 *  "hotloop" fleet scenario, whose single hot call per server spans
 *  the whole run, with mid-loop OSR redirection either off (flips
 *  wait at function entry forever — the tail censors at run end) or
 *  on (flips land at the next loop back-edge). The worst flip-effect
 *  latency of each run is a pure simulated-cycle count, so the
 *  OSR/entry ratio is host-speed independent and safe to gate on. */
fleet::FleetStats
runHotloop(uint32_t servers, double ms, uint64_t seed, bool osr)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.batch = "hotloop";
    cfg.hotFuncsOnly = true;
    cfg.remoteBackend = true;
    cfg.seed = seed;
    cfg.service.replication = 2;
    cfg.osr = osr;
    fleet::FleetSim sim(cfg);
    sim.run(ms);
    return sim.stats();
}

void
checkSingleEquivalent(const SingleResult &step,
                      const SingleResult &batch, const char *what)
{
    if (step.instructions != batch.instructions ||
        step.branches != batch.branches)
        fatal("engine mismatch (%s): step retired %llu/%llu "
              "instructions/branches, batch %llu/%llu",
              what,
              static_cast<unsigned long long>(step.instructions),
              static_cast<unsigned long long>(step.branches),
              static_cast<unsigned long long>(batch.instructions),
              static_cast<unsigned long long>(batch.branches));
}

void
checkFleetEquivalent(const fleet::FleetStats &serial,
                     const fleet::FleetStats &par, uint32_t workers)
{
    if (serial.deployRequests != par.deployRequests ||
        serial.hostBranches != par.hostBranches ||
        serial.service.compiles != par.service.compiles ||
        serial.service.requests != par.service.requests)
        fatal("fleet mismatch at --parallel=%u: serial "
              "(%llu req, %llu branches) vs parallel "
              "(%llu req, %llu branches)",
              workers,
              static_cast<unsigned long long>(serial.deployRequests),
              static_cast<unsigned long long>(serial.hostBranches),
              static_cast<unsigned long long>(par.deployRequests),
              static_cast<unsigned long long>(par.hostBranches));
}

std::string
fmtIps(double ips)
{
    return strformat("%.2fM", ips / 1e6);
}

/** Seconds per tracer().enabled() check, measured with the load and
 *  test pinned in the loop (the optimizer would otherwise hoist the
 *  whole thing and report zero). */
double
guardCheckSeconds()
{
    obs::Tracer &tr = obs::tracer();
    constexpr uint64_t kIters = 50000000;
    uint64_t hits = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        bool e = tr.enabled();
        asm volatile("" : "+r"(e)::"memory");
        if (e)
            ++hits;
    }
    double sec = elapsedSec(t0);
    if (hits != 0)
        fatal("guard microbench: tracer was enabled mid-loop");
    return sec / static_cast<double>(kIters);
}

/** Seconds per profiler null-pointer test — the whole off-path cost
 *  of disabled continuous profiling (`if (profiler_)` in the sample
 *  and tick paths). Same hoisting defenses as guardCheckSeconds. */
double
nullCheckSeconds()
{
    runtime::VariantProfiler *p = nullptr;
    asm volatile("" : "+r"(p));
    constexpr uint64_t kIters = 50000000;
    uint64_t hits = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        bool e = p != nullptr;
        asm volatile("" : "+r"(e)::"memory");
        if (e)
            ++hits;
    }
    double sec = elapsedSec(t0);
    if (hits != 0)
        fatal("profiler microbench: pointer became non-null");
    return sec / static_cast<double>(kIters);
}

} // namespace

/** One (workload, proc-count) comparison. */
struct CaseResult
{
    std::string workload;
    uint32_t procs = 1;
    SingleResult step;
    SingleResult batch;

    double speedup() const
    {
        return batch.wallSec <= 0.0 ? 0.0 :
            step.wallSec / batch.wallSec;
    }
};

int
main(int argc, char **argv)
{
    double ms = 1500.0;
    double fleet_ms = 300.0;
    uint64_t servers = 8;
    std::string out = "BENCH_engine.json";
    double min_speedup = 0.0;
    double min_speedup_2proc = 0.0;
    double min_fleet_speedup = 0.0;
    bool quick = false;
    bench::ArgParser parser;
    parser.addFlag("ms", &ms, "simulated ms, single machine");
    parser.addFlag("fleet-ms", &fleet_ms, "simulated ms, fleet runs");
    parser.addFlag("servers", &servers, "fleet size (default 8)");
    parser.addFlag("out", &out, "JSON results path");
    parser.addFlag("min-speedup", &min_speedup,
                   "fail unless ALU batch/step >= x (0 = report only)");
    parser.addFlag("min-speedup-2proc", &min_speedup_2proc,
                   "fail unless 2-proc ALU batch/step >= x; skipped "
                   "with a notice on a <2-hw-thread host");
    parser.addFlag("min-fleet-speedup", &min_fleet_speedup,
                   "fail unless the --parallel=2 fleet speedup >= x; "
                   "skipped with a notice on a <2-hw-thread host");
    parser.addSwitch("quick", &quick, "small configuration for CI");
    bench::ObsConfig obs_cfg = parser.parse(argc, argv);
    if (quick) {
        ms = 300.0;
        fleet_ms = 60.0;
    }

    ir::Module alu_m = aluModule();
    isa::Image alu = pcc::compilePlain(alu_m);
    workloads::BatchSpec spec = workloads::batchSpec("soplex");
    spec.targetStaticLoads = 0; // padding never executes
    ir::Module soplex_m = workloads::buildBatch(spec);
    isa::Image soplex = pcc::compile(soplex_m);

    // Warm-up: touch the code paths once so the first timed run does
    // not pay one-time allocation/page-in costs.
    runSingle(sim::Engine::Batch, alu, 1, ms / 20.0);
    runSingle(sim::Engine::Batch, soplex, 1, ms / 20.0);

    std::vector<CaseResult> cases;
    struct
    {
        const char *name;
        const isa::Image *image;
        std::vector<uint32_t> procCounts;
    } workloads_tbl[] = {{"alu", &alu, {1u, 2u, 4u}},
                         {"soplex", &soplex, {1u, 2u}}};
    for (const auto &w : workloads_tbl) {
        for (uint32_t procs : w.procCounts) {
            CaseResult c;
            c.workload = w.name;
            c.procs = procs;
            c.step =
                runSingle(sim::Engine::Step, *w.image, procs, ms);
            c.batch =
                runSingle(sim::Engine::Batch, *w.image, procs, ms);
            checkSingleEquivalent(
                c.step, c.batch,
                strformat("%s/%u", w.name, procs).c_str());
            cases.push_back(std::move(c));
        }
    }

    {
        TextTable t("Single machine: simulated instructions per host "
                    "second");
        t.setHeader({"Workload", "Procs", "Engine", "Wall s",
                     "Sim instrs", "Instrs/s", "Speedup"});
        for (const CaseResult &c : cases) {
            t.addRow({c.workload, strformat("%u", c.procs), "step",
                      strformat("%.3f", c.step.wallSec),
                      strformat("%llu", static_cast<unsigned long long>(
                                            c.step.instructions)),
                      fmtIps(c.step.ips()), "-"});
            t.addRow({c.workload, strformat("%u", c.procs), "batch",
                      strformat("%.3f", c.batch.wallSec),
                      strformat("%llu", static_cast<unsigned long long>(
                                            c.batch.instructions)),
                      fmtIps(c.batch.ips()),
                      bench::fmtRatio(c.speedup())});
        }
        t.print();
    }

    // Fleet: serial reference first, then each worker count against
    // it. The serial run also serves as the equivalence baseline.
    std::vector<uint32_t> worker_counts = quick ?
        std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4};
    std::vector<FleetResult> fleet_runs;
    for (uint32_t w : worker_counts) {
        fleet_runs.push_back(runFleetTimed(
            static_cast<uint32_t>(servers), w, fleet_ms,
            obs_cfg.seed));
        if (w != 1)
            checkFleetEquivalent(fleet_runs.front().stats,
                                 fleet_runs.back().stats, w);
    }

    {
        std::printf("\n");
        TextTable t(strformat("Fleet of %llu servers: serial vs "
                              "--parallel stepping",
                              static_cast<unsigned long long>(
                                  servers)));
        t.setHeader({"Workers", "Wall s", "Host branches", "Speedup"});
        for (size_t i = 0; i < fleet_runs.size(); ++i) {
            const FleetResult &r = fleet_runs[i];
            double sp = r.wallSec <= 0.0 ? 0.0 :
                fleet_runs.front().wallSec / r.wallSec;
            t.addRow({strformat("%u", worker_counts[i]),
                      strformat("%.3f", r.wallSec),
                      strformat("%llu", static_cast<unsigned long long>(
                                            r.stats.hostBranches)),
                      i == 0 ? "-" : bench::fmtRatio(sp)});
        }
        t.print();
        unsigned hw = std::thread::hardware_concurrency();
        if (hw <= 1)
            std::printf("(host has %u hardware thread%s: --parallel "
                        "cannot scale here, shown for equivalence "
                        "only)\n",
                        hw ? hw : 1, hw == 1 ? "" : "s");
    }

    // ---- hot-loop OSR flip-latency tail (DESIGN.md §14) ----
    // Entry-only control vs OSR under identical traffic; the worst
    // flip-effect latencies feed the trajectory as host-independent
    // simulated-cycle ratios. Run length must exceed the deploy
    // pipeline's latency or no flip ever lands; 150 simulated ms is
    // enough at the default service timings.
    double hl_ms = std::max(fleet_ms, 150.0);
    fleet::FleetStats hl_off =
        runHotloop(4, hl_ms, obs_cfg.seed, false);
    fleet::FleetStats hl_on = runHotloop(4, hl_ms, obs_cfg.seed, true);
    uint64_t hl_worst_off = hl_off.worstFlipEffect();
    uint64_t hl_worst_on = hl_on.worstFlipEffect();
    double osr_ratio = hl_worst_off == 0 ? 0.0 :
        static_cast<double>(hl_worst_on) /
        static_cast<double>(hl_worst_off);
    double osr_reduction =
        static_cast<double>(hl_worst_off) /
        static_cast<double>(hl_worst_on ? hl_worst_on : 1);
    {
        std::printf("\n");
        TextTable t("Hot-loop scenario: worst flip-effect latency "
                    "(cycles)");
        t.setHeader({"Mode", "Worst", "Entry flips", "OSR flips",
                     "Pending"});
        t.addRow({"entry-only",
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_worst_off)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_off.entryFlips)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_off.osrFlips)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_off.pendingFlips))});
        t.addRow({"osr",
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_worst_on)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_on.entryFlips)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_on.osrFlips)),
                  strformat("%llu", static_cast<unsigned long long>(
                                        hl_on.pendingFlips))});
        t.print();
        std::printf("OSR cuts the worst flip-effect latency %sx "
                    "(ratio %.6f)\n",
                    bench::fmtRatio(osr_reduction).c_str(),
                    osr_ratio);
    }

    // ---- observability + profiler off-path overhead ----
    double guard_sec = 0.0;
    uint64_t traced_events = 0;
    double obs_overhead = 0.0;
    double null_sec = 0.0;
    uint64_t profiler_checks = 0;
    double profiler_overhead = 0.0;
    bool obs_gate_failed = false;
    bool profiler_gate_failed = false;
    if (obs::tracer().enabled()) {
        // --trace was given: the whole bench is a traced run, so the
        // "obs off" premise does not hold; skip the gates.
        std::printf("\nobs off-path overhead: skipped under "
                    "--trace\n");
    } else {
        guard_sec = guardCheckSeconds();

        // How often would the off-path branch be taken? Count the
        // events an identical traced run records: every one of them
        // is a guard that passed, so it bounds the guard takes of
        // the untraced run from above within rounding.
        obs::tracer().setEnabled(true);
        runFleetTimed(static_cast<uint32_t>(servers), 1, fleet_ms,
                      obs_cfg.seed);
        traced_events = obs::tracer().eventCount();
        obs::tracer().clear();
        obs::tracer().setEnabled(false);

        uint64_t ticks_before =
            obs::metrics().counter("runtime.ticks").value();
        uint64_t prof_before =
            obs::metrics().counter("runtime.profiler.enabled").value();
        FleetResult off = runFleetTimed(
            static_cast<uint32_t>(servers), 1, fleet_ms,
            obs_cfg.seed);
        if (obs::tracer().eventCount() != 0)
            fatal("obs-off run recorded %zu trace events; gating is "
                  "broken",
                  obs::tracer().eventCount());
        if (obs::metrics().counter("runtime.profiler.enabled").value()
            != prof_before)
            fatal("profiler-off run enabled a profiler; gating is "
                  "broken");

        obs_overhead = off.wallSec <= 0.0 ? 0.0 :
            static_cast<double>(traced_events) * guard_sec /
                off.wallSec;
        std::printf("\nobs off-path overhead: %.2f ns/check x %llu "
                    "guarded sites hit = %.4f%% of the %.3f s fleet "
                    "run (0 events recorded)\n",
                    guard_sec * 1e9,
                    static_cast<unsigned long long>(traced_events),
                    obs_overhead * 100.0, off.wallSec);
        if (obs_overhead >= 0.01)
            obs_gate_failed = true;

        // Disabled continuous profiling costs one null test in
        // sample() and one in tick(), per monitoring tick.
        null_sec = nullCheckSeconds();
        uint64_t ticks =
            obs::metrics().counter("runtime.ticks").value() -
            ticks_before;
        profiler_checks = 2 * ticks;
        profiler_overhead = off.wallSec <= 0.0 ? 0.0 :
            static_cast<double>(profiler_checks) * null_sec /
                off.wallSec;
        std::printf("profiler-disabled overhead: %.2f ns/check x "
                    "%llu checks = %.4f%% of the %.3f s fleet run "
                    "(no profiler built)\n",
                    null_sec * 1e9,
                    static_cast<unsigned long long>(profiler_checks),
                    profiler_overhead * 100.0, off.wallSec);
        if (profiler_overhead >= 0.01)
            profiler_gate_failed = true;
    }

    auto case_speedup = [&cases](const char *workload,
                                 uint32_t procs) {
        for (const CaseResult &c : cases) {
            if (c.workload == workload && c.procs == procs)
                return c.speedup();
        }
        return 0.0;
    };
    double alu_speedup = case_speedup("alu", 1);
    double alu_speedup_2p = case_speedup("alu", 2);
    double fleet2_speedup = 0.0;
    for (size_t i = 1; i < fleet_runs.size(); ++i) {
        if (worker_counts[i] == 2 && fleet_runs[i].wallSec > 0.0)
            fleet2_speedup =
                fleet_runs.front().wallSec / fleet_runs[i].wallSec;
    }
    std::printf("\nbatch engine: %sx on the ALU kernel (1 proc), "
                "%sx at 2 procs, %sx on soplex; exports "
                "byte-identical across all modes\n",
                bench::fmtRatio(alu_speedup).c_str(),
                bench::fmtRatio(alu_speedup_2p).c_str(),
                bench::fmtRatio(case_speedup("soplex", 1)).c_str());

    if (!out.empty()) {
        // Comparable ratio series (host-speed independent); wall
        // times and counts ride in `detail`, outside the
        // trajectory-checker comparison.
        std::map<std::string, double> metrics;
        for (const CaseResult &c : cases)
            metrics[strformat("%s_speedup_%uproc",
                              c.workload.c_str(), c.procs)] =
                c.speedup();
        for (size_t i = 1; i < fleet_runs.size(); ++i) {
            metrics[strformat("fleet_parallel%u_speedup",
                              worker_counts[i])] =
                fleet_runs[i].wallSec <= 0.0 ? 0.0 :
                fleet_runs.front().wallSec / fleet_runs[i].wallSec;
        }
        metrics["obs_off_overhead_fraction"] = obs_overhead;
        metrics["profiler_off_overhead_fraction"] =
            profiler_overhead;
        // Host shape as a first-class metric so the trajectory
        // checker can restrict host-dependent comparisons (the
        // fleet_parallel* speedups) to like-for-like runs with
        // --match=hw_threads.
        metrics["hw_threads"] =
            static_cast<double>(std::max<unsigned>(
                std::thread::hardware_concurrency(), 1));
        // Decoded-superblock dispatch hit rate over every batch
        // case: a pure simulation ratio, identical on any host.
        {
            uint64_t hits = 0;
            uint64_t misses = 0;
            for (const CaseResult &c : cases) {
                hits += c.batch.sbHits;
                misses += c.batch.sbMisses;
            }
            metrics["superblock_hit_rate"] = hits + misses == 0
                ? 0.0
                : static_cast<double>(hits) /
                    static_cast<double>(hits + misses);
        }
        // Install-gate cost of the serial fleet run, as a ratio of
        // simulated cycles: host-speed independent, so the
        // trajectory checker can flag a validator that gets
        // expensive relative to the compiles it guards.
        if (!fleet_runs.empty()) {
            const fleet::ServiceStats &fsvc =
                fleet_runs.front().stats.service;
            metrics["validate_overhead_fraction"] =
                fsvc.compileCycles == 0 ? 0.0 :
                static_cast<double>(fsvc.validateCycles) /
                static_cast<double>(fsvc.compileCycles);
        }
        // Hot-loop OSR tail, both directions: the ratio the ISSUE
        // tracks (OSR/entry worst flip — lower is better, so it is
        // recorded but not gated by the higher-is-better trajectory
        // checker) and its reciprocal (entry/OSR — higher is
        // better), which perf-smoke gates on.
        metrics["osr_flip_latency_ratio"] = osr_ratio;
        metrics["osr_tail_reduction"] = osr_reduction;

        std::string detail = strformat(
            "{\"sim_ms\": %g, \"fleet_ms\": %g, \"servers\": %llu, "
            "\"hw_threads\": %u, \"cases\": [",
            ms, fleet_ms, static_cast<unsigned long long>(servers),
            std::thread::hardware_concurrency());
        for (size_t i = 0; i < cases.size(); ++i) {
            const CaseResult &c = cases[i];
            detail += strformat(
                "%s{\"workload\": \"%s\", \"procs\": %u, "
                "\"hw_threads\": %u, "
                "\"step_wall_sec\": %.6f, \"batch_wall_sec\": %.6f, "
                "\"instructions\": %llu, "
                "\"superblock_hits\": %llu, "
                "\"superblock_misses\": %llu}",
                i ? ", " : "", c.workload.c_str(), c.procs,
                std::thread::hardware_concurrency(),
                c.step.wallSec, c.batch.wallSec,
                static_cast<unsigned long long>(
                    c.step.instructions),
                static_cast<unsigned long long>(c.batch.sbHits),
                static_cast<unsigned long long>(c.batch.sbMisses));
        }
        detail += "], \"fleet_runs\": [";
        for (size_t i = 0; i < fleet_runs.size(); ++i) {
            detail += strformat(
                "%s{\"parallel\": %u, \"wall_sec\": %.6f, "
                "\"host_branches\": %llu}",
                i ? ", " : "", worker_counts[i],
                fleet_runs[i].wallSec,
                static_cast<unsigned long long>(
                    fleet_runs[i].stats.hostBranches));
        }
        detail += strformat(
            "], \"osr_hotloop\": {\"sim_ms\": %g, "
            "\"worst_entry_only\": %llu, \"worst_osr\": %llu, "
            "\"entry_flips\": %llu, \"osr_flips\": %llu, "
            "\"pending_flips\": %llu, \"osr_redirects\": %llu, "
            "\"osr_patches\": %llu}",
            hl_ms,
            static_cast<unsigned long long>(hl_worst_off),
            static_cast<unsigned long long>(hl_worst_on),
            static_cast<unsigned long long>(hl_on.entryFlips),
            static_cast<unsigned long long>(hl_on.osrFlips),
            static_cast<unsigned long long>(hl_on.pendingFlips),
            static_cast<unsigned long long>(hl_on.osrRedirects),
            static_cast<unsigned long long>(hl_on.osrPatches));
        detail += strformat(
            ", \"obs_off\": {\"guard_ns\": %.3f, "
            "\"traced_events\": %llu}, "
            "\"profiler_off\": {\"check_ns\": %.3f, "
            "\"checks\": %llu}}",
            guard_sec * 1e9,
            static_cast<unsigned long long>(traced_events),
            null_sec * 1e9,
            static_cast<unsigned long long>(profiler_checks));

        uint64_t run = bench::appendTrajectoryRun(
            out, "perf_engine", quick ? "quick" : "full", metrics,
            detail);
        std::printf("appended run %llu to %s\n",
                    static_cast<unsigned long long>(run),
                    out.c_str());
    }

    bench::exportObs(obs_cfg);

    if (min_speedup > 0.0 && alu_speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: ALU batch/step speedup %.3f below "
                     "required %.3f\n",
                     alu_speedup, min_speedup);
        return 1;
    }
    unsigned hw_threads = std::thread::hardware_concurrency();
    if (min_speedup_2proc > 0.0) {
        // The 2-proc joint window is a simulation-side win, but a
        // 1-thread host's wall clocks are too noisy under the OS
        // scheduler to gate on; require a real multi-thread host.
        if (hw_threads < 2) {
            std::printf("SKIP: --min-speedup-2proc gate needs >= 2 "
                        "hardware threads (host reports %u)\n",
                        hw_threads);
        } else if (alu_speedup_2p < min_speedup_2proc) {
            std::fprintf(stderr,
                         "FAIL: 2-proc ALU batch/step speedup %.3f "
                         "below required %.3f\n",
                         alu_speedup_2p, min_speedup_2proc);
            return 1;
        }
    }
    if (min_fleet_speedup > 0.0) {
        if (hw_threads < 2) {
            std::printf("SKIP: --min-fleet-speedup gate needs >= 2 "
                        "hardware threads (host reports %u; "
                        "setParallel clamps to serial here)\n",
                        hw_threads);
        } else if (fleet2_speedup < min_fleet_speedup) {
            std::fprintf(stderr,
                         "FAIL: --parallel=2 fleet speedup %.3f "
                         "below required %.3f\n",
                         fleet2_speedup, min_fleet_speedup);
            return 1;
        }
    }
    if (obs_gate_failed) {
        std::fprintf(stderr,
                     "FAIL: obs off-path overhead %.4f%% reaches the "
                     "1%% budget\n",
                     obs_overhead * 100.0);
        return 1;
    }
    if (profiler_gate_failed) {
        std::fprintf(stderr,
                     "FAIL: profiler-disabled overhead %.4f%% "
                     "reaches the 1%% budget\n",
                     profiler_overhead * 100.0);
        return 1;
    }
    return 0;
}
