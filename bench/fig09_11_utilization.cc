/**
 * @file
 * Figures 9-11: utilization achieved by PC3D for each contentious
 * batch application co-located with web-search (Fig. 9),
 * media-streaming (Fig. 10) and graph-analytics (Fig. 11), at QoS
 * targets of 90%, 95% and 98%. Also prints the Table II application
 * roster.
 */

#include "common.h"

#include "datacenter/experiment.h"
#include "support/stats.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    {
        TextTable roster("Table II: applications used in datacenter "
                         "experiments");
        roster.setHeader({"Suite", "Host (batch)",
                          "External (latency-sensitive)"});
        roster.addRow({"CloudSuite", "-",
                       "web-search, media-streaming, "
                       "graph-analytics"});
        roster.addRow({"SPEC CPU2006",
                       "bzip2, milc, soplex, libquantum, lbm, "
                       "sphinx3",
                       "mcf, milc, omnetpp, xalancbmk"});
        roster.addRow({"SmashBench", "bst, blockie, er-naive, sledge",
                       "bst, er-naive"});
        roster.addRow({"PARSEC", "-", "streamcluster"});
        roster.print();
        std::printf("\n");
    }

    const std::vector<double> targets = {0.90, 0.95, 0.98};
    int fig = 9;
    for (const auto &service : workloads::webserviceNames()) {
        TextTable t(strformat(
            "Figure %d: PC3D utilization with %s", fig++,
            service.c_str()));
        t.setHeader({"Batch", "90% tgt", "95% tgt", "98% tgt"});
        std::vector<std::vector<double>> per_target(3);
        for (const auto &batch : workloads::contentiousBatchNames()) {
            std::vector<std::string> row = {batch};
            for (size_t k = 0; k < targets.size(); ++k) {
                datacenter::ColoConfig cfg;
                cfg.service = service;
                cfg.batch = batch;
                cfg.qosTarget = targets[k];
                cfg.qps = 120.0;
                cfg.system = datacenter::System::Pc3d;
                cfg.settleMs = 4000.0;
                cfg.measureMs = 2000.0;
                datacenter::ColoResult r =
                    datacenter::runColocation(cfg);
                per_target[k].push_back(r.utilization);
                row.push_back(strformat("%.0f%%",
                                        100.0 * r.utilization));
            }
            t.addRow(row);
        }
        t.addRow({"Mean",
                  strformat("%.0f%%", 100.0 * mean(per_target[0])),
                  strformat("%.0f%%", 100.0 * mean(per_target[1])),
                  strformat("%.0f%%", 100.0 * mean(per_target[2]))});
        t.print();
        std::printf("\n");
    }

    std::printf("paper shape: utilization decreases with stricter "
                "QoS targets; media-streaming shows the lowest "
                "gains\n");
    bench::exportObs(obs_cfg);
    return 0;
}
