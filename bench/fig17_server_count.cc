/**
 * @file
 * Figure 17 (+ Table III): servers required to run each
 * webservice/batch-mix pairing at equal throughput — 10k PC3D
 * servers vs the no-co-location policy's 10k + dedicated batch
 * servers. Batch utilizations come from live PC3D colocation
 * experiments at a 95% QoS target. With --fleet, utilizations come
 * from a real small-N fleet run (cells sharing the fleet compilation
 * service) instead of independent single-server colocations.
 */

#include "common.h"

#include "datacenter/experiment.h"
#include "datacenter/fleet_calibration.h"
#include "datacenter/scaleout.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bool use_fleet = false;
    bench::ArgParser parser;
    parser.addSwitch("fleet", &use_fleet,
                     "measure utilizations from a shared-service "
                     "fleet run");
    bench::ObsConfig obs_cfg = parser.parse(argc, argv);
    {
        TextTable t3("Table III: workload mixes for scale-out "
                     "analysis");
        t3.setHeader({"Mix", "Members"});
        t3.addRow({"LS", "web-search, graph-analytics, "
                   "media-streaming"});
        for (const auto &[mix, members] :
             datacenter::tableThreeMixes()) {
            std::string joined;
            for (const auto &m : members)
                joined += (joined.empty() ? "" : ", ") + m;
            t3.addRow({mix, joined});
        }
        t3.print();
        std::printf("\n");
    }

    TextTable t("Figure 17: server count for equal throughput");
    t.setHeader({"Pairing", "PC3D", "No Co-location", "Extra"});
    for (const auto &service : workloads::webserviceNames()) {
        for (const auto &[mix, members] :
             datacenter::tableThreeMixes()) {
            datacenter::ScaleOutResult r;
            if (use_fleet) {
                datacenter::FleetMixConfig fcfg;
                fcfg.service = service;
                fcfg.qps = 120.0;
                fcfg.serversPerApp = 1;
                fcfg.settleMs = 4000.0;
                fcfg.measureMs = 2000.0;
                r = datacenter::analyzeMixFromFleet(
                        service, mix, members, {}, fcfg)
                        .scaleout;
            } else {
                std::vector<double> utils;
                for (const auto &batch : members) {
                    datacenter::ColoConfig cfg;
                    cfg.service = service;
                    cfg.batch = batch;
                    cfg.qosTarget = 0.95;
                    cfg.qps = 120.0;
                    cfg.system = datacenter::System::Pc3d;
                    cfg.settleMs = 4000.0;
                    cfg.measureMs = 2000.0;
                    utils.push_back(
                        datacenter::runColocation(cfg).utilization);
                }
                r = datacenter::analyzeMix(service, mix, utils);
            }
            t.addRow({service + "/" + mix,
                      strformat("%uk", r.pc3dServers / 1000),
                      strformat("%.1fk", r.noColoServers / 1000.0),
                      strformat("%.1fk",
                                (r.noColoServers - r.pc3dServers) /
                                1000.0)});
        }
    }
    t.print();
    std::printf("\npaper shape: 3.5k-8k extra servers needed "
                "without co-location\n");
    bench::exportObs(obs_cfg);
    return 0;
}
