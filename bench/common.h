/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * The simulator is deterministic, so overheads are measured as exact
 * ratios of retired branches over a fixed cycle window (branches are
 * control-invariant under every transformation studied, which is why
 * the paper uses BPS for host progress).
 */

#ifndef PROTEAN_BENCH_COMMON_H
#define PROTEAN_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcc/pcc.h"
#include "sim/machine.h"
#include "support/json.h"
#include "support/logging.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace protean {
namespace bench {

/**
 * Observability exports requested on the command line. Every fig
 * bench accepts `--trace=<path>` (Chrome trace JSON, open in
 * Perfetto) and `--metrics=<path>` (metrics-registry snapshot);
 * timestamps are simulated cycles, so repeated runs produce
 * byte-identical files.
 */
struct ObsConfig
{
    std::string tracePath;
    std::string metricsPath;
    /** Merged continuous-profile JSON export (--profile). */
    std::string profilePath;
    /** Folded-stack export for flamegraph.pl (--flamegraph). */
    std::string flamegraphPath;
    /** Root seed for any stochastic model in the bench (--seed). */
    uint64_t seed = 42;
    /** Host-side worker threads for fleet-stepping benches
     *  (--parallel; results stay byte-identical to serial). */
    uint64_t parallel = 1;
    /** Translation-validation install-gate mode for fleet benches
     *  (--validate=off|ir|diff|paranoid; empty keeps each bench's
     *  default). Kept as a string so common.h stays independent of
     *  src/validate; benches parse it with validate::parseMode. */
    std::string validateMode;
    /** On-stack replacement mode for fleet benches
     *  (--osr=on|off|both; empty keeps each bench's default).
     *  "both" is only meaningful to comparison studies such as
     *  fleet_faults --hotloop. */
    std::string osr;
};

/**
 * Small command-line flag parser for the benches.
 *
 * Built-in flags: `--trace=<path>`, `--metrics=<path>`,
 * `--seed=<n>`, `--engine=step|batch`, `--parallel=<n>` and `-v`.
 * `--engine` sets the process-wide default execution engine, so
 * every bench opts into (or out of) the horizon-batched fast path
 * without code changes; `--parallel` is surfaced through ObsConfig
 * for fleet-stepping benches. Benches register extra flags with
 * addFlag()/addSwitch() before parse(); unknown arguments fail with
 * the full supported-flag list rather than a bare fatal.
 */
class ArgParser
{
  public:
    /** Register `--name=<value>` bound to a string. */
    void addFlag(const std::string &name, std::string *out,
                 const std::string &help)
    {
        flags_.push_back({name, help, out, nullptr, nullptr, nullptr});
    }

    /** Register `--name=<n>` bound to an unsigned integer. */
    void addFlag(const std::string &name, uint64_t *out,
                 const std::string &help)
    {
        flags_.push_back({name, help, nullptr, out, nullptr, nullptr});
    }

    /** Register `--name=<x>` bound to a double. */
    void addFlag(const std::string &name, double *out,
                 const std::string &help)
    {
        flags_.push_back({name, help, nullptr, nullptr, out, nullptr});
    }

    /** Register a valueless `--name` switch bound to a bool. */
    void addSwitch(const std::string &name, bool *out,
                   const std::string &help)
    {
        flags_.push_back({name, help, nullptr, nullptr, nullptr, out});
    }

    /**
     * Parse the command line; fatal (listing every supported flag)
     * on anything unrecognized, and fatal on a repeated flag — a
     * duplicated `--seed=1 --seed=2` is almost always a typo whose
     * silent last-one-wins resolution corrupts sweeps. (`-v` stays
     * repeatable: it is idempotent.) Arms the tracer when --trace is
     * given.
     */
    ObsConfig parse(int argc, char **argv)
    {
        ObsConfig cfg;
        std::set<std::string> seen;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--trace=", 0) == 0) {
                markSeen("trace", seen);
                cfg.tracePath = a.substr(8);
            } else if (a.rfind("--metrics=", 0) == 0) {
                markSeen("metrics", seen);
                cfg.metricsPath = a.substr(10);
            } else if (a.rfind("--profile=", 0) == 0) {
                markSeen("profile", seen);
                cfg.profilePath = a.substr(10);
            } else if (a.rfind("--flamegraph=", 0) == 0) {
                markSeen("flamegraph", seen);
                cfg.flamegraphPath = a.substr(13);
            } else if (a.rfind("--seed=", 0) == 0) {
                markSeen("seed", seen);
                cfg.seed = std::strtoull(a.substr(7).c_str(),
                                         nullptr, 0);
            } else if (a.rfind("--engine=", 0) == 0) {
                markSeen("engine", seen);
                std::string e = a.substr(9);
                if (e == "step")
                    sim::setDefaultEngine(sim::Engine::Step);
                else if (e == "batch")
                    sim::setDefaultEngine(sim::Engine::Batch);
                else
                    fatal("unknown engine '%s' (step|batch)",
                          e.c_str());
            } else if (a.rfind("--parallel=", 0) == 0) {
                markSeen("parallel", seen);
                cfg.parallel = std::strtoull(a.substr(11).c_str(),
                                             nullptr, 0);
            } else if (a.rfind("--validate=", 0) == 0) {
                markSeen("validate", seen);
                cfg.validateMode = a.substr(11);
            } else if (a.rfind("--osr=", 0) == 0) {
                markSeen("osr", seen);
                cfg.osr = a.substr(6);
                if (cfg.osr != "on" && cfg.osr != "off" &&
                    cfg.osr != "both")
                    fatal("unknown --osr mode '%s' (on|off|both)",
                          cfg.osr.c_str());
            } else if (a == "-v") {
                setLogLevel(LogLevel::Debug);
            } else if (!parseExtra(a, seen)) {
                fatal("unknown argument %s\n%s", a.c_str(),
                      usage().c_str());
            }
        }
        if (!cfg.tracePath.empty())
            obs::tracer().setEnabled(true);
        return cfg;
    }

    /** The supported-flag list, one flag per line. */
    std::string usage() const
    {
        std::string u = "supported flags:\n"
            "  --trace=<path>    write Chrome trace JSON\n"
            "  --metrics=<path>  write metrics snapshot JSON\n"
            "  --profile=<path>  write merged continuous-profile "
            "JSON\n"
            "  --flamegraph=<path> write folded stacks for "
            "flamegraph.pl\n"
            "  --seed=<n>        root seed for stochastic models\n"
            "  --validate=<mode> install-gate mode for fleet benches "
            "(off|ir|diff|paranoid)\n"
            "  --osr=<mode>      on-stack replacement for fleet "
            "benches (on|off|both)\n"
            "  -v                debug logging";
        for (const Flag &f : flags_) {
            std::string spec = "--" + f.name +
                (f.b ? "" : f.s ? "=<value>" : f.d ? "=<x>" : "=<n>");
            u += "\n  " + spec;
            if (spec.size() < 18)
                u += std::string(18 - spec.size(), ' ');
            else
                u += ' ';
            u += f.help;
        }
        return u;
    }

  private:
    struct Flag
    {
        std::string name;
        std::string help;
        std::string *s;
        uint64_t *u;
        double *d;
        bool *b;
    };

    void markSeen(const std::string &name,
                  std::set<std::string> &seen)
    {
        if (!seen.insert(name).second)
            fatal("flag --%s given more than once\n%s", name.c_str(),
                  usage().c_str());
    }

    bool parseExtra(const std::string &a, std::set<std::string> &seen)
    {
        for (const Flag &f : flags_) {
            if (f.b && a == "--" + f.name) {
                markSeen(f.name, seen);
                *f.b = true;
                return true;
            }
            std::string prefix = "--" + f.name + "=";
            if (!f.b && a.rfind(prefix, 0) == 0) {
                markSeen(f.name, seen);
                std::string v = a.substr(prefix.size());
                if (f.s)
                    *f.s = v;
                else if (f.u)
                    *f.u = std::strtoull(v.c_str(), nullptr, 0);
                else if (f.d)
                    *f.d = std::strtod(v.c_str(), nullptr);
                return true;
            }
        }
        return false;
    }

    std::vector<Flag> flags_;
};

/** Parse the built-in flags only (--trace/--metrics/--seed/-v). */
inline ObsConfig
parseObsArgs(int argc, char **argv)
{
    ArgParser parser;
    return parser.parse(argc, argv);
}

/** Write the requested exports (call at the end of main). */
inline void
exportObs(const ObsConfig &cfg)
{
    if (!cfg.tracePath.empty())
        obs::tracer().writeChromeJson(cfg.tracePath);
    if (!cfg.metricsPath.empty())
        obs::metrics().writeJson(cfg.metricsPath);
}

/** Whole file as a string; "" when unreadable. */
inline std::string
readFileOrEmpty(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

/**
 * Short revision stamp for trajectory runs: `git rev-parse` of the
 * working tree, the GITHUB_SHA environment as fallback, "unknown"
 * when neither is available. Only trajectory files carry the stamp —
 * never determinism-diffed exports.
 */
inline std::string
gitStamp()
{
    std::FILE *p =
        ::popen("git rev-parse --short=9 HEAD 2>/dev/null", "r");
    if (p) {
        char buf[64] = {0};
        std::string sha;
        if (std::fgets(buf, sizeof buf, p))
            sha = buf;
        ::pclose(p);
        while (!sha.empty() &&
               (sha.back() == '\n' || sha.back() == '\r'))
            sha.pop_back();
        if (!sha.empty())
            return sha;
    }
    if (const char *env = std::getenv("GITHUB_SHA")) {
        std::string sha(env);
        if (sha.size() > 9)
            sha.resize(9);
        if (!sha.empty())
            return sha;
    }
    return "unknown";
}

/**
 * Append one git-stamped run to a benchmark trajectory file
 * (`{"schema": 1, "benchmark": ..., "runs": [...]}`). A missing,
 * unparsable, or pre-trajectory file starts a fresh trajectory with
 * this run as run 0 — the old snapshot-overwrite behavior, upgraded.
 * `metrics` are the comparable ratio series the trajectory checker
 * gates on; `detail_json` is a serialized JSON object of run-shaped
 * extras kept out of the comparison.
 * @return the run index written.
 */
inline uint64_t
appendTrajectoryRun(const std::string &path,
                    const std::string &benchmark,
                    const std::string &label,
                    const std::map<std::string, double> &metrics,
                    const std::string &detail_json = "{}")
{
    std::string metricsJson = "{";
    bool firstMetric = true;
    for (const auto &[name, value] : metrics) {
        metricsJson +=
            strformat("%s\"%s\": %s", firstMetric ? "" : ", ",
                      name.c_str(),
                      obs::detail::jsonNumber(value).c_str());
        firstMetric = false;
    }
    metricsJson += "}";

    uint64_t runIndex = 0;
    std::string body = readFileOrEmpty(path);
    std::string existing;
    if (!body.empty()) {
        std::string err;
        JsonValue doc = JsonValue::parse(body, &err);
        const JsonValue *runs =
            err.empty() ? doc.find("runs") : nullptr;
        if (runs && runs->isArray() &&
            doc.numberOr("schema", 0) == 1) {
            // Splice before the closing "]\n}" of the runs array —
            // prior runs keep their exact bytes.
            size_t tail = body.rfind("\n]\n}");
            if (tail != std::string::npos) {
                runIndex = runs->items().size();
                if (runIndex > 0)
                    existing = body.substr(0, tail);
            }
        } else {
            warn("trajectory: %s is not a schema-1 trajectory; "
                 "starting fresh",
                 path.c_str());
        }
    }

    std::string run = strformat(
        "  {\"run\": %llu, \"git\": \"%s\", \"label\": \"%s\", "
        "\"metrics\": %s, \"detail\": %s}",
        static_cast<unsigned long long>(runIndex),
        gitStamp().c_str(), label.c_str(), metricsJson.c_str(),
        detail_json.c_str());

    std::string out;
    if (existing.empty()) {
        out = strformat("{\n\"schema\": 1,\n\"benchmark\": \"%s\","
                        "\n\"runs\": [\n",
                        benchmark.c_str()) +
            run + "\n]\n}\n";
    } else {
        out = existing + ",\n" + run + "\n]\n}\n";
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("trajectory: cannot open %s for writing",
              path.c_str());
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return runIndex;
}

/** Measurement windows for overhead benches, in simulated ms. */
constexpr double kWarmMs = 600.0;
constexpr double kMeasureMs = 1200.0;

/** Retired branches of a batch app running alone under `setup`. */
template <typename Setup>
uint64_t
measureBranches(const std::string &batch, bool protean, Setup &&setup)
{
    workloads::BatchSpec spec = workloads::batchSpec(batch);
    spec.targetStaticLoads = 0; // padding never executes
    ir::Module module = workloads::buildBatch(spec);
    isa::Image image =
        protean ? pcc::compile(module) : pcc::compilePlain(module);

    sim::Machine machine;
    machine.load(image, 0);
    if (obs::tracer().enabled())
        machine.startObsSampling(20.0);
    setup(machine);
    machine.runFor(machine.msToCycles(kWarmMs));
    uint64_t before = machine.core(0).hpm().branches;
    machine.runFor(machine.msToCycles(kMeasureMs));
    machine.exportObsMetrics();
    return machine.core(0).hpm().branches - before;
}

/** Branches with no special setup. */
inline uint64_t
measureBranchesPlain(const std::string &batch, bool protean)
{
    return measureBranches(batch, protean, [](sim::Machine &) {});
}

/** Format a slowdown ratio. */
inline std::string
fmtRatio(double v)
{
    return TextTable::fmt(v, 3);
}

} // namespace bench
} // namespace protean

#endif // PROTEAN_BENCH_COMMON_H
