/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * The simulator is deterministic, so overheads are measured as exact
 * ratios of retired branches over a fixed cycle window (branches are
 * control-invariant under every transformation studied, which is why
 * the paper uses BPS for host progress).
 */

#ifndef PROTEAN_BENCH_COMMON_H
#define PROTEAN_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcc/pcc.h"
#include "sim/machine.h"
#include "support/logging.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace protean {
namespace bench {

/**
 * Observability exports requested on the command line. Every fig
 * bench accepts `--trace=<path>` (Chrome trace JSON, open in
 * Perfetto) and `--metrics=<path>` (metrics-registry snapshot);
 * timestamps are simulated cycles, so repeated runs produce
 * byte-identical files.
 */
struct ObsConfig
{
    std::string tracePath;
    std::string metricsPath;
};

/** Parse --trace/--metrics (and -v) and arm the tracer. */
inline ObsConfig
parseObsArgs(int argc, char **argv)
{
    ObsConfig cfg;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--trace=", 0) == 0) {
            cfg.tracePath = a.substr(8);
        } else if (a.rfind("--metrics=", 0) == 0) {
            cfg.metricsPath = a.substr(10);
        } else if (a == "-v") {
            setLogLevel(LogLevel::Debug);
        } else {
            fatal("unknown argument %s (expected --trace=<path>, "
                  "--metrics=<path> or -v)", a.c_str());
        }
    }
    if (!cfg.tracePath.empty())
        obs::tracer().setEnabled(true);
    return cfg;
}

/** Write the requested exports (call at the end of main). */
inline void
exportObs(const ObsConfig &cfg)
{
    if (!cfg.tracePath.empty())
        obs::tracer().writeChromeJson(cfg.tracePath);
    if (!cfg.metricsPath.empty())
        obs::metrics().writeJson(cfg.metricsPath);
}

/** Measurement windows for overhead benches, in simulated ms. */
constexpr double kWarmMs = 600.0;
constexpr double kMeasureMs = 1200.0;

/** Retired branches of a batch app running alone under `setup`. */
template <typename Setup>
uint64_t
measureBranches(const std::string &batch, bool protean, Setup &&setup)
{
    workloads::BatchSpec spec = workloads::batchSpec(batch);
    spec.targetStaticLoads = 0; // padding never executes
    ir::Module module = workloads::buildBatch(spec);
    isa::Image image =
        protean ? pcc::compile(module) : pcc::compilePlain(module);

    sim::Machine machine;
    machine.load(image, 0);
    if (obs::tracer().enabled())
        machine.startObsSampling(20.0);
    setup(machine);
    machine.runFor(machine.msToCycles(kWarmMs));
    uint64_t before = machine.core(0).hpm().branches;
    machine.runFor(machine.msToCycles(kMeasureMs));
    machine.exportObsMetrics();
    return machine.core(0).hpm().branches - before;
}

/** Branches with no special setup. */
inline uint64_t
measureBranchesPlain(const std::string &batch, bool protean)
{
    return measureBranches(batch, protean, [](sim::Machine &) {});
}

/** Format a slowdown ratio. */
inline std::string
fmtRatio(double v)
{
    return TextTable::fmt(v, 3);
}

} // namespace bench
} // namespace protean

#endif // PROTEAN_BENCH_COMMON_H
