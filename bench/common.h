/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * The simulator is deterministic, so overheads are measured as exact
 * ratios of retired branches over a fixed cycle window (branches are
 * control-invariant under every transformation studied, which is why
 * the paper uses BPS for host progress).
 */

#ifndef PROTEAN_BENCH_COMMON_H
#define PROTEAN_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "pcc/pcc.h"
#include "sim/machine.h"
#include "support/logging.h"
#include "support/table.h"
#include "workloads/registry.h"

namespace protean {
namespace bench {

/** Measurement windows for overhead benches, in simulated ms. */
constexpr double kWarmMs = 600.0;
constexpr double kMeasureMs = 1200.0;

/** Retired branches of a batch app running alone under `setup`. */
template <typename Setup>
uint64_t
measureBranches(const std::string &batch, bool protean, Setup &&setup)
{
    workloads::BatchSpec spec = workloads::batchSpec(batch);
    spec.targetStaticLoads = 0; // padding never executes
    ir::Module module = workloads::buildBatch(spec);
    isa::Image image =
        protean ? pcc::compile(module) : pcc::compilePlain(module);

    sim::Machine machine;
    machine.load(image, 0);
    setup(machine);
    machine.runFor(machine.msToCycles(kWarmMs));
    uint64_t before = machine.core(0).hpm().branches;
    machine.runFor(machine.msToCycles(kMeasureMs));
    return machine.core(0).hpm().branches - before;
}

/** Branches with no special setup. */
inline uint64_t
measureBranchesPlain(const std::string &batch, bool protean)
{
    return measureBranches(batch, protean, [](sim::Machine &) {});
}

/** Format a slowdown ratio. */
inline std::string
fmtRatio(double v)
{
    return TextTable::fmt(v, 3);
}

} // namespace bench
} // namespace protean

#endif // PROTEAN_BENCH_COMMON_H
