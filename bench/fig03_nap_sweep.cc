/**
 * @file
 * Figure 3: online empirical evaluation of two variants of
 * libquantum (host application) running with er-naive (high-priority
 * co-runner), as a function of the nap intensity applied to
 * libquantum.
 *
 * (a) original program variant 0 — meeting the 95% QoS target takes
 *     a very high nap intensity;
 * (b) fully non-temporal variant 1 — a far lower nap intensity
 *     suffices, leaving the host much faster at its QoS-feasible
 *     operating point.
 */

#include "common.h"

using namespace protean;

namespace {

struct Point
{
    double hostBps;
    double coIps;
};

Point
runPoint(bool nt_variant, double nap)
{
    workloads::BatchSpec host_spec = workloads::batchSpec("libquantum");
    host_spec.targetStaticLoads = 0;
    ir::Module host_m = workloads::buildBatch(host_spec);
    isa::Image host_img = pcc::compilePlain(host_m);
    if (nt_variant) {
        for (auto &inst : host_img.code) {
            if (inst.op == isa::MOp::Load)
                inst.nonTemporal = true;
        }
    }

    workloads::BatchSpec co_spec = workloads::batchSpec("er-naive");
    co_spec.targetStaticLoads = 0;
    ir::Module co_m = workloads::buildBatch(co_spec);
    isa::Image co_img = pcc::compilePlain(co_m);

    sim::Machine machine;
    machine.load(host_img, 0);
    machine.load(co_img, 1);
    machine.core(0).setNapIntensity(nap);

    machine.runFor(machine.msToCycles(300));
    sim::HpmCounters h0 = machine.core(0).hpm();
    sim::HpmCounters c0 = machine.core(1).hpm();
    uint64_t t0 = machine.now();
    machine.runFor(machine.msToCycles(1200));
    uint64_t dt = machine.now() - t0;

    Point p;
    p.hostBps = static_cast<double>(
        (machine.core(0).hpm() - h0).branches) / dt;
    p.coIps = static_cast<double>(
        (machine.core(1).hpm() - c0).instructions) / dt;
    return p;
}

double
soloBps(const std::string &name, bool branches)
{
    workloads::BatchSpec spec = workloads::batchSpec(name);
    spec.targetStaticLoads = 0;
    ir::Module m = workloads::buildBatch(spec);
    isa::Image img = pcc::compilePlain(m);
    sim::Machine machine;
    machine.load(img, 0);
    machine.runFor(machine.msToCycles(300));
    sim::HpmCounters h0 = machine.core(0).hpm();
    uint64_t t0 = machine.now();
    machine.runFor(machine.msToCycles(1200));
    sim::HpmCounters d = machine.core(0).hpm() - h0;
    uint64_t dt = machine.now() - t0;
    return static_cast<double>(branches ? d.branches
                               : d.instructions) / dt;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    constexpr double kTarget = 0.95;
    double host_solo = soloBps("libquantum", true);
    double co_solo = soloBps("er-naive", false);

    for (int variant = 0; variant <= 1; ++variant) {
        TextTable t(strformat(
            "Figure 3(%c): %s variant %d of libquantum w/ er-naive",
            variant ? 'b' : 'a',
            variant ? "fully non-temporal" : "original", variant));
        t.setHeader({"NapIntensity", "HostBPS(norm)", "CoIPS(norm)",
                     "QoS>=95%"});
        double qos_met_at = -1.0;
        for (int nap = 0; nap <= 100; nap += 10) {
            double f = nap / 100.0;
            Point p = runPoint(variant == 1, f);
            double host_norm = p.hostBps / host_solo;
            double co_norm = p.coIps / co_solo;
            bool met = co_norm >= kTarget;
            if (met && qos_met_at < 0)
                qos_met_at = f;
            t.addRow({strformat("%d%%", nap),
                      TextTable::fmt(host_norm, 3),
                      TextTable::fmt(co_norm, 3),
                      met ? "yes" : ""});
        }
        t.print();
        if (qos_met_at >= 0) {
            std::printf("QoS target first met at nap intensity "
                        "~%.0f%%\n\n", qos_met_at * 100);
        } else {
            std::printf("QoS target not met in sweep\n\n");
        }
    }
    bench::exportObs(obs_cfg);
    return 0;
}
