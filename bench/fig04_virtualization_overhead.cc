/**
 * @file
 * Figure 4: dynamic compiler overhead when making no code
 * modifications, normalized to native execution, across the SPEC
 * CPU2006 applications.
 *
 * Protean code's selectively virtualized edges cost <1% on average;
 * the DynamoRIO-style binary-translation baseline pays code-cache
 * dispatch on the application's critical path (~18% average in the
 * paper).
 */

#include "common.h"

#include "baselines/dynamorio.h"
#include "support/stats.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    TextTable t("Figure 4: slowdown vs native (no modification)");
    t.setHeader({"App", "protean code", "DynamoRIO"});

    std::vector<double> prot, dyno;
    for (const auto &name : workloads::specBenchmarkNames()) {
        uint64_t native = bench::measureBranchesPlain(name, false);
        uint64_t p = bench::measureBranchesPlain(name, true);
        uint64_t d = bench::measureBranches(
            name, false, [](sim::Machine &machine) {
                baselines::enableBinaryTranslation(machine, 0);
            });
        double ps = static_cast<double>(native) / p;
        double ds = static_cast<double>(native) / d;
        prot.push_back(ps);
        dyno.push_back(ds);
        t.addRow({name, bench::fmtRatio(ps), bench::fmtRatio(ds)});
    }
    t.addRow({"Mean", bench::fmtRatio(mean(prot)),
              bench::fmtRatio(mean(dyno))});
    t.print();

    std::printf("\npaper shape: protean <1%% mean, DynamoRIO ~18%% "
                "mean\n");
    bench::exportObs(obs_cfg);
    return 0;
}
