/**
 * @file
 * Figure 18: energy efficiency of the PC3D-enabled datacenter,
 * normalized to the no-co-location datacenter running the same
 * workload at the same throughput, under the linear CPU-utilization
 * power model. Paper: 18-34% improvements across the pairings.
 *
 * With --fleet, the per-member utilizations come from a real small-N
 * fleet run (cells sharing the fleet compilation service) instead of
 * independent single-server colocations.
 */

#include "common.h"

#include "datacenter/experiment.h"
#include "datacenter/fleet_calibration.h"
#include "datacenter/scaleout.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bool use_fleet = false;
    bench::ArgParser parser;
    parser.addSwitch("fleet", &use_fleet,
                     "measure utilizations from a shared-service "
                     "fleet run");
    bench::ObsConfig obs_cfg = parser.parse(argc, argv);
    TextTable t("Figure 18: normalized energy efficiency "
                "(PC3D / No Co-location)");
    t.setHeader({"Pairing", "Mean batch util", "Efficiency ratio"});
    for (const auto &service : workloads::webserviceNames()) {
        for (const auto &[mix, members] :
             datacenter::tableThreeMixes()) {
            datacenter::ScaleOutResult r;
            if (use_fleet) {
                datacenter::FleetMixConfig fcfg;
                fcfg.service = service;
                fcfg.qps = 120.0;
                fcfg.serversPerApp = 1;
                fcfg.settleMs = 4000.0;
                fcfg.measureMs = 2000.0;
                r = datacenter::analyzeMixFromFleet(
                        service, mix, members, {}, fcfg)
                        .scaleout;
            } else {
                std::vector<double> utils;
                for (const auto &batch : members) {
                    datacenter::ColoConfig cfg;
                    cfg.service = service;
                    cfg.batch = batch;
                    cfg.qosTarget = 0.95;
                    cfg.qps = 120.0;
                    cfg.system = datacenter::System::Pc3d;
                    cfg.settleMs = 4000.0;
                    cfg.measureMs = 2000.0;
                    utils.push_back(
                        datacenter::runColocation(cfg).utilization);
                }
                r = datacenter::analyzeMix(service, mix, utils);
            }
            t.addRow({service + "/" + mix,
                      strformat("%.2f", r.meanUtilization),
                      strformat("%.2f", r.energyEfficiencyRatio)});
        }
    }
    t.print();
    std::printf("\npaper shape: consolidation wins 18-34%%; our "
                "linear model lands in the same band (slightly "
                "higher at high utilizations)\n");
    bench::exportObs(obs_cfg);
    return 0;
}
