/**
 * @file
 * Figure 15: PC3D vs ReQoS — utilization improvement factor (top)
 * and delivered co-runner QoS (bottom) per batch application,
 * averaged over the webservice co-runners, at QoS targets of 90%,
 * 95% and 98%.
 *
 * Paper headline: PC3D improves utilization by 1.25x / 1.45x / 1.52x
 * on average at the three targets (up to 2.84x), while both systems
 * meet the QoS targets.
 */

#include "common.h"

#include "datacenter/experiment.h"
#include "support/stats.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    const std::vector<double> targets = {0.90, 0.95, 0.98};
    const char panel_u[] = {'a', 'b', 'c'};
    const char panel_q[] = {'d', 'e', 'f'};

    for (size_t k = 0; k < targets.size(); ++k) {
        double target = targets[k];
        TextTable tu(strformat(
            "Figure 15(%c): PC3D utilization improvement over ReQoS "
            "(%.0f%% QoS tgt)", panel_u[k], 100 * target));
        tu.setHeader({"Batch", "PC3D util", "ReQoS util",
                      "Improvement"});
        TextTable tq(strformat(
            "Figure 15(%c): avg co-runner QoS (%.0f%% QoS tgt)",
            panel_q[k], 100 * target));
        tq.setHeader({"Batch", "PC3D QoS", "ReQoS QoS"});

        std::vector<double> ratios;
        double best_ratio = 0.0;
        std::string best_app;
        for (const auto &batch : workloads::contentiousBatchNames()) {
            std::vector<double> pu, ru, pq, rq;
            for (const auto &service : workloads::webserviceNames()) {
                datacenter::ColoConfig cfg;
                cfg.service = service;
                cfg.batch = batch;
                cfg.qosTarget = target;
                cfg.qps = 120.0;
                cfg.settleMs = 4000.0;
                cfg.measureMs = 2000.0;
                cfg.system = datacenter::System::Pc3d;
                datacenter::ColoResult p =
                    datacenter::runColocation(cfg);
                cfg.system = datacenter::System::ReQos;
                datacenter::ColoResult r =
                    datacenter::runColocation(cfg);
                pu.push_back(p.utilization);
                ru.push_back(std::max(r.utilization, 1e-3));
                pq.push_back(p.qos);
                rq.push_back(r.qos);
            }
            double ratio = mean(pu) / mean(ru);
            ratios.push_back(ratio);
            if (ratio > best_ratio) {
                best_ratio = ratio;
                best_app = batch;
            }
            tu.addRow({batch, strformat("%.2f", mean(pu)),
                       strformat("%.2f", mean(ru)),
                       strformat("%.2fx", ratio)});
            tq.addRow({batch, strformat("%.0f%%", 100 * mean(pq)),
                       strformat("%.0f%%", 100 * mean(rq))});
        }
        tu.addRow({"Mean", "", "",
                   strformat("%.2fx", mean(ratios))});
        tu.print();
        std::printf("max improvement: %.2fx (%s)\n\n", best_ratio,
                    best_app.c_str());
        tq.print();
        std::printf("\n");
    }
    std::printf("paper shape: mean improvement grows with target "
                "strictness (1.25x / 1.45x / 1.52x); both systems "
                "meet QoS\n");
    bench::exportObs(obs_cfg);
    return 0;
}
