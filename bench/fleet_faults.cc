/**
 * @file
 * Fault injection and graceful degradation study (DESIGN.md §9).
 *
 * Sweeps fault intensity x replication factor x client retry policy
 * over the fleet compilation service and reports what the degradation
 * ladder buys: hit rate under fire, compile-cycle overhead versus the
 * benign run, retry/fallback activity, the worst-case flip latency
 * (slowest request -> variant-ready), and — the gate — host workload
 * stalls.
 *
 * The bench exits nonzero if any faulted configuration with
 * replication >= 2 and the ladder armed leaves a stalled request:
 * every request must resolve via retry, replica, or local fallback.
 * CI runs `--quick` twice (serial and --parallel=2) and byte-diffs
 * the exports, so the faulted runs double as determinism fixtures.
 *
 * The exported configuration also runs with the telemetry plane on,
 * continuous profiling included: per-window fleet p99 flip latency
 * (TelemetryHub rollups) is printed, the variant scoreboard's
 * winning-mask table follows, and `--telemetry=<path>` writes the
 * whole plane as JSON while the common `--profile=<path>` /
 * `--flamegraph=<path>` flags export the fleet-merged profile — all
 * byte-identical serial vs --parallel, so CI diffs them too.
 * `--bench-out=<path>` appends a git-stamped run of the exported
 * config's key ratios to a trajectory file (see bench/trajectory).
 *
 * `--slo` runs the alerting acceptance harness instead of exiting:
 * a benign run calibrates the flip-p99 threshold and must stay
 * silent; then each fault class runs alone and must raise its
 * matching burn-rate alert within a few windows of the first bad one.
 *
 * The translation-validation section (DESIGN.md §12) runs the
 * install gate against a miscompiling compiler: a clean run must
 * show zero false rejects with tier-1 overhead under 5% of compile
 * cycles, and every injected miscompile (dropped store, flipped NT
 * bit, swapped operand) must be rejected before any shard or replica
 * installs it — both conditions gate the exit code.
 * `--validate-out=<path>` writes the per-mode summary as stable-key
 * JSON (byte-identical serial vs --parallel, so CI diffs it), and
 * the common `--validate=<mode>` flag picks the exported
 * configuration's gate mode.
 *
 * `--hotloop` runs the on-stack-replacement acceptance study
 * (DESIGN.md §14) instead: every server executes the "hotloop" batch
 * whose single hot call spans the entire run, so entry-only flips
 * never take effect and the flip-*effect* tail is censored at the
 * run length. The study runs an entry-only control and an OSR run
 * under identical traffic (restrict with the common --osr=on|off)
 * and fails unless OSR cuts the worst-case flip-effect latency at
 * least 10x with zero validation rejects;
 * `--hotloop-out=<path>` writes the stable-key JSON summary CI
 * archives and byte-diffs.
 *
 * Flags (beyond the common set): --servers=<n>, --ms=<x> (simulated
 * run length), --mean-ms=<x> (request interarrival mean), --quick,
 * --telemetry=<path>, --validate-out=<path>, --slo, --hotloop and
 * --hotloop-out=<path>.
 */

#include "common.h"
#include "profile_report.h"

#include <algorithm>

#include "fleet/fleet.h"

using namespace protean;

namespace {

struct FaultLevel
{
    const char *name;
    faults::FaultConfig cfg;
};

struct PolicyLevel
{
    const char *name;
    fleet::RetryPolicy policy;
};

fleet::FleetStats
runFleet(uint32_t servers, double ms, double mean_ms, uint64_t seed,
         const faults::FaultConfig &faults,
         const fleet::RetryPolicy &retry, uint32_t replication,
         uint32_t workers, bool export_obs)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.remoteBackend = true;
    cfg.meanRequestMs = mean_ms;
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.retry = retry;
    cfg.service.replication = replication;
    cfg.parallelWorkers = workers;
    fleet::FleetSim sim(cfg);
    sim.run(ms);
    if (export_obs)
        sim.exportObsMetrics();
    return sim.stats();
}

faults::FaultConfig
faultsAt(double intensity)
{
    // One scalar dials every fault stream: intensity 1.0 is the
    // "moderate" point (a shard crashes about once per 40 simulated
    // ms, 2% of requests vanish, ...), 0.0 is benign.
    faults::FaultConfig f;
    if (intensity <= 0.0)
        return f;
    f.shardCrashMeanCycles = 200000.0 / intensity;
    f.shardRestartCycles = 20000;
    f.requestDropProb = 0.02 * intensity;
    f.requestDelayProb = 0.05 * intensity;
    f.responseCorruptProb = 0.01 * intensity;
    f.cacheCorruptProb = 0.01 * intensity;
    f.serverPauseProb = 0.01 * intensity;
    return f;
}

fleet::RetryPolicy
ladder(bool hedged)
{
    fleet::RetryPolicy p;
    p.enabled = true;
    p.maxAttempts = 3;
    // Sized for this bench's service model: a worst-case queued
    // compile is tens of thousands of cycles, so 60k never fires
    // spuriously yet keeps the ladder bound well inside the run.
    p.attemptTimeoutCycles = 60000;
    p.backoffBaseCycles = 2000;
    p.backoffCapCycles = 16000;
    p.hedgeAfterCycles = hedged ? 30000 : 0;
    return p;
}

std::string
fmtU64(uint64_t v)
{
    return strformat("%llu", static_cast<unsigned long long>(v));
}

fleet::FleetConfig
telemetryFleetConfig(uint32_t servers, double mean_ms, uint64_t seed,
                     const faults::FaultConfig &faults,
                     const fleet::RetryPolicy &retry,
                     uint32_t replication, uint32_t workers)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.remoteBackend = true;
    cfg.meanRequestMs = mean_ms;
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.retry = retry;
    cfg.service.replication = replication;
    cfg.parallelWorkers = workers;
    cfg.telemetry.enabled = true;
    return cfg;
}

/** The SLO set every telemetry run carries. Budget 0.10 over a short
 *  span of 2 and long span of 8: one bad window burns 5x/1.25x the
 *  budget, so sustained faults page on their first bad window while
 *  the clearing edge still needs two clean windows. */
void
addFleetSlos(fleet::TelemetryHub &hub, double flip_p99_threshold)
{
    auto spec = [](const char *name, const char *field,
                   double threshold) {
        obs::SloSpec s;
        s.name = name;
        s.field = field;
        s.threshold = threshold;
        s.budget = 0.10;
        s.shortWindows = 2;
        s.longWindows = 8;
        return s;
    };
    hub.addSlo(spec("crash_free", "crashes", 0));
    hub.addSlo(spec("no_request_loss", "timeouts", 0));
    hub.addSlo(spec("no_transit_delays", "delayed", 0));
    hub.addSlo(spec("response_integrity", "corrupt_responses", 0));
    hub.addSlo(spec("cache_integrity", "corrupt_rejects", 0));
    hub.addSlo(spec("pause_free", "server_pauses", 0));
    hub.addSlo(spec("flip_p99", "flip_p99", flip_p99_threshold));
}

// ------------------------------------------------------------------ //
//            Translation-validation gate (DESIGN.md §12)             //
// ------------------------------------------------------------------ //

/** One run of the install-gate study: `inject` turns on the
 *  miscompile stream (probability high enough that several of the
 *  handful of distinct content keys draw one; the draw is a pure
 *  hash, so the outcome is deterministic). */
fleet::FleetStats
runGate(uint32_t servers, double ms, double mean_ms, uint64_t seed,
        validate::Mode mode, bool inject, uint32_t workers)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.remoteBackend = true;
    cfg.meanRequestMs = mean_ms;
    cfg.seed = seed;
    // The ladder is armed because a key whose every compile attempt
    // miscompiles is failed by the gate and must degrade to a local
    // compile rather than stall its waiters.
    cfg.retry = ladder(true);
    cfg.service.replication = 2;
    cfg.validate.mode = mode;
    if (inject)
        cfg.faults.miscompileProb = 0.9;
    cfg.parallelWorkers = workers;
    fleet::FleetSim sim(cfg);
    sim.run(ms);
    return sim.stats();
}

/** Stats row for the gate table / JSON export. */
struct GateRow
{
    std::string config;
    validate::Mode mode;
    fleet::ServiceStats st;
    bool pass = true;
};

double
validateOverhead(const fleet::ServiceStats &st)
{
    return st.compileCycles == 0 ? 0.0 :
        static_cast<double>(st.validateCycles) /
        static_cast<double>(st.compileCycles);
}

/** The §12 acceptance: zero false rejects on clean runs, tier-1
 *  overhead under 5%, and every injected miscompile rejected at
 *  install time — zero bad installs across the fleet. Returns false
 *  if any gate condition fails. */
bool
runValidationGate(uint32_t servers, double ms, double mean_ms,
                  uint64_t seed, uint32_t workers,
                  const std::string &out_path,
                  double *efficiency_out)
{
    bool ok = true;
    std::vector<GateRow> rows;

    // Clean traffic first: the gate must be invisible except for its
    // (bounded) cycle cost.
    {
        GateRow r;
        r.config = "clean";
        r.mode = validate::Mode::Ir;
        r.st = runGate(servers, ms, mean_ms, seed, r.mode, false,
                       workers)
                   .service;
        if (r.st.validateFails != 0 || r.st.compiles == 0 ||
            validateOverhead(r.st) >= 0.05)
            r.pass = ok = false;
        rows.push_back(r);
    }

    // Then a hostile compiler: every mode with the gate on must
    // reject 100% of injected miscompiles before any install.
    for (validate::Mode mode :
         {validate::Mode::Off, validate::Mode::Ir,
          validate::Mode::Diff, validate::Mode::Paranoid}) {
        GateRow r;
        r.config = "miscompiling";
        r.mode = mode;
        r.st = runGate(servers, ms, mean_ms, seed, mode, true,
                       workers)
                   .service;
        if (mode != validate::Mode::Off &&
            (r.st.miscompilesInjected == 0 ||
             r.st.miscompilesInstalled != 0))
            r.pass = ok = false;
        rows.push_back(r);
    }

    TextTable t("Translation-validation install gate (DESIGN.md "
                "§12): R=2, ladder armed");
    t.setHeader({"Config", "Mode", "Compiles", "Injected", "Rejected",
                 "Recompiles", "Escalated", "Bad installs",
                 "Validate/compile", "Verdict"});
    for (const GateRow &r : rows) {
        bool off = r.mode == validate::Mode::Off;
        t.addRow({r.config, validate::modeName(r.mode),
                  fmtU64(r.st.compiles),
                  off ? "?" : fmtU64(r.st.miscompilesInjected),
                  off ? "-" : fmtU64(r.st.validateFails),
                  off ? "-" : fmtU64(r.st.validateRecompiles),
                  off ? "-" : fmtU64(r.st.validateEscalations),
                  off ? "?" : fmtU64(r.st.miscompilesInstalled),
                  off ? "-" :
                        bench::fmtRatio(validateOverhead(r.st)),
                  off ? "blind" : r.pass ? "PASS" : "FAIL"});
    }
    t.print();
    std::printf("\nwith the gate off the service cannot even count "
                "the bad builds it installs; any gated mode must "
                "show zero bad installs and the clean run zero "
                "false rejects (tier-1 overhead < 5%%)\n");

    if (efficiency_out) {
        // Host-independent trajectory ratio: useful compile cycles
        // over total backend (compile + validation) cycles of the
        // clean tier-1 run. 1.0 = a free gate.
        const fleet::ServiceStats &clean = rows.front().st;
        uint64_t total = clean.compileCycles + clean.validateCycles;
        *efficiency_out = total == 0 ? 1.0 :
            static_cast<double>(clean.compileCycles) /
            static_cast<double>(total);
    }

    if (!out_path.empty()) {
        // Stable-key JSON for the CI determinism byte-diff: rows in
        // fixed order, keys alphabetical, no git stamp or host data.
        std::string json = "{\n\"schema\": 1,\n\"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const GateRow &r = rows[i];
            json += strformat(
                "  {\"bad_installs\": %llu, \"compiles\": %llu, "
                "\"config\": \"%s\", \"escalations\": %llu, "
                "\"injected\": %llu, \"mode\": \"%s\", "
                "\"recompiles\": %llu, \"rejected\": %llu, "
                "\"validate_cycles\": %llu}%s\n",
                static_cast<unsigned long long>(
                    r.st.miscompilesInstalled),
                static_cast<unsigned long long>(r.st.compiles),
                r.config.c_str(),
                static_cast<unsigned long long>(
                    r.st.validateEscalations),
                static_cast<unsigned long long>(
                    r.st.miscompilesInjected),
                validate::modeName(r.mode),
                static_cast<unsigned long long>(
                    r.st.validateRecompiles),
                static_cast<unsigned long long>(r.st.validateFails),
                static_cast<unsigned long long>(r.st.validateCycles),
                i + 1 < rows.size() ? "," : "");
        }
        json += "]\n}\n";
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f)
            fatal("cannot open %s for writing", out_path.c_str());
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote validation summary to %s\n",
                    out_path.c_str());
    }
    return ok;
}

// ------------------------------------------------------------------ //
//        Hot-loop OSR flip-latency tail study (DESIGN.md §14)        //
// ------------------------------------------------------------------ //

/**
 * One hot-loop fleet run: every server executes the "hotloop" batch,
 * whose single hot call from main spans the entire run, and the
 * directive catalog is restricted to the hot kernels. With OSR off
 * this is the worst case for entry-only flips — every dispatched
 * variant stays pending forever, so the flip-effect tail is censored
 * at the whole run length. With OSR on the same flips land at the
 * next loop back-edge.
 */
fleet::FleetStats
runHotloop(uint32_t servers, double ms, double mean_ms, uint64_t seed,
           uint32_t workers, validate::Mode mode, bool osr)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.batch = "hotloop";
    cfg.hotFuncsOnly = true;
    cfg.remoteBackend = true;
    cfg.meanRequestMs = mean_ms;
    cfg.seed = seed;
    cfg.retry = ladder(true);
    cfg.service.replication = 2;
    cfg.validate.mode = mode;
    cfg.parallelWorkers = workers;
    cfg.osr = osr;
    fleet::FleetSim sim(cfg);
    sim.run(ms);
    return sim.stats();
}

/**
 * The §14 acceptance study: entry-only control vs OSR under
 * identical traffic. `osr_mode` restricts which runs happen
 * ("on"/"off" for CI export fixtures, "both"/"" for the comparison);
 * when both run, OSR must cut the worst-case flip-effect latency by
 * at least 10x, with zero validation rejects in either run. Returns
 * false when any gate condition fails.
 */
bool
runHotloopStudy(uint32_t servers, double ms, double mean_ms,
                uint64_t seed, uint32_t workers, validate::Mode mode,
                const std::string &osr_mode,
                const std::string &out_path)
{
    struct Row
    {
        const char *name;
        fleet::FleetStats st;
    };
    std::vector<Row> rows;
    if (osr_mode != "on")
        rows.push_back({"entry-only",
                        runHotloop(servers, ms, mean_ms, seed,
                                   workers, mode, false)});
    if (osr_mode != "off")
        rows.push_back({"osr",
                        runHotloop(servers, ms, mean_ms, seed,
                                   workers, mode, true)});

    bool ok = true;
    TextTable t("Hot-loop flip-effect latency: entry-only vs "
                "on-stack replacement (DESIGN.md §14)");
    t.setHeader({"Mode", "Deploys", "Entry flips", "OSR flips",
                 "Pending", "Worst effect (cyc)", "Redirects",
                 "Patches", "Rejects"});
    for (const Row &r : rows) {
        t.addRow({r.name, fmtU64(r.st.deployRequests),
                  fmtU64(r.st.entryFlips), fmtU64(r.st.osrFlips),
                  fmtU64(r.st.pendingFlips),
                  fmtU64(r.st.worstFlipEffect()),
                  fmtU64(r.st.osrRedirects),
                  fmtU64(r.st.osrPatches),
                  fmtU64(r.st.service.validateFails)});
        // Both runs carry the install gate; a hot-loop variant is the
        // restricted transform like any other and must never reject.
        if (r.st.service.validateFails != 0)
            ok = false;
    }
    t.print();

    double reduction = 0.0;
    if (rows.size() == 2) {
        uint64_t worst_off = rows[0].st.worstFlipEffect();
        uint64_t worst_on =
            std::max<uint64_t>(1, rows[1].st.worstFlipEffect());
        reduction = static_cast<double>(worst_off) /
            static_cast<double>(worst_on);
        std::printf("\nworst-case flip effect: %llu cycles "
                    "(entry-only, censored at run end) -> %llu "
                    "cycles (OSR) = %.1fx reduction\n",
                    static_cast<unsigned long long>(worst_off),
                    static_cast<unsigned long long>(
                        rows[1].st.worstFlipEffect()),
                    reduction);
        if (rows[1].st.osrFlips == 0) {
            std::printf("FAIL: no flip took effect mid-loop with "
                        "OSR on\n");
            ok = false;
        }
        if (reduction < 10.0) {
            std::printf("FAIL: OSR must cut the worst-case flip "
                        "latency at least 10x (got %.1fx)\n",
                        reduction);
            ok = false;
        }
    }

    if (!out_path.empty()) {
        // Stable-key JSON for CI archiving and determinism
        // byte-diffs: rows in run order, keys alphabetical, no git
        // stamp or host data.
        std::string json = "{\n\"schema\": 1,\n\"runs\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const fleet::FleetStats &st = rows[i].st;
            json += strformat(
                "  {\"deploys\": %llu, \"entry_flips\": %llu, "
                "\"mode\": \"%s\", \"osr_flips\": %llu, "
                "\"osr_patches\": %llu, \"osr_redirects\": %llu, "
                "\"pending\": %llu, \"validate_fails\": %llu, "
                "\"worst\": %llu, \"worst_entry\": %llu, "
                "\"worst_osr\": %llu, \"worst_pending\": %llu}%s\n",
                static_cast<unsigned long long>(st.deployRequests),
                static_cast<unsigned long long>(st.entryFlips),
                rows[i].name,
                static_cast<unsigned long long>(st.osrFlips),
                static_cast<unsigned long long>(st.osrPatches),
                static_cast<unsigned long long>(st.osrRedirects),
                static_cast<unsigned long long>(st.pendingFlips),
                static_cast<unsigned long long>(
                    st.service.validateFails),
                static_cast<unsigned long long>(
                    st.worstFlipEffect()),
                static_cast<unsigned long long>(st.worstEntryFlip),
                static_cast<unsigned long long>(st.worstOsrFlip),
                static_cast<unsigned long long>(st.worstPendingFlip),
                i + 1 < rows.size() ? "," : "");
        }
        json += "]";
        if (rows.size() == 2) {
            json += strformat(
                ",\n\"tail_reduction\": %s",
                obs::detail::jsonNumber(reduction).c_str());
        }
        json += "\n}\n";
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f)
            fatal("cannot open %s for writing", out_path.c_str());
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote hot-loop summary to %s\n",
                    out_path.c_str());
    }
    return ok;
}

/** Alerts must raise within this many windows of the first bad one. */
constexpr uint64_t kAlertWindows = 4;

/** One outage class for the acceptance harness: a single fault
 *  stream and the SLO alert it must page. */
struct SloCase
{
    const char *name;
    const char *slo;
    const char *field;
    faults::FaultConfig cfg;
};

std::vector<SloCase>
sloCases()
{
    std::vector<SloCase> cases;
    {
        faults::FaultConfig f;
        f.shardCrashMeanCycles = 200000;
        f.shardRestartCycles = 20000;
        cases.push_back({"shard crash", "crash_free", "crashes", f});
    }
    // Rates are deliberately heavy: the harness checks that a clear
    // outage pages, not how faint a fault the page can resolve.
    {
        faults::FaultConfig f;
        f.requestDropProb = 0.25;
        cases.push_back(
            {"request drop", "no_request_loss", "timeouts", f});
    }
    {
        faults::FaultConfig f;
        f.requestDelayProb = 0.25;
        cases.push_back(
            {"transit delay", "no_transit_delays", "delayed", f});
    }
    {
        faults::FaultConfig f;
        f.responseCorruptProb = 0.25;
        cases.push_back({"response corruption", "response_integrity",
                         "corrupt_responses", f});
    }
    {
        faults::FaultConfig f;
        f.cacheCorruptProb = 0.50;
        cases.push_back({"cache corruption", "cache_integrity",
                         "corrupt_rejects", f});
    }
    {
        faults::FaultConfig f;
        f.serverPauseProb = 0.02;
        cases.push_back(
            {"server pause", "pause_free", "server_pauses", f});
    }
    return cases;
}

/** Max per-window fleet flip p99 of a benign telemetry run; the
 *  calibration point for the flip_p99 SLO. */
double
calibrateFlipP99(uint32_t servers, double ms, double mean_ms,
                 uint64_t seed, uint32_t workers)
{
    fleet::FleetConfig cfg = telemetryFleetConfig(
        servers, mean_ms, seed, faultsAt(0.0), ladder(true), 2,
        workers);
    fleet::FleetSim sim(cfg);
    sim.run(ms);
    sim.flushTelemetry();
    double max_p99 = 0.0;
    for (const fleet::FleetWindow &w : sim.telemetry()->windows()) {
        max_p99 = std::max(
            max_p99, static_cast<double>(w.flip.quantile(0.99)));
    }
    return max_p99;
}

/**
 * Alerting acceptance: benign run silent, every outage class pages
 * its matching alert within kAlertWindows of the first bad window.
 * Returns false (and prints why) on any miss or false alarm.
 */
bool
runSloAcceptance(uint32_t servers, double ms, double mean_ms,
                 uint64_t seed, uint32_t workers)
{
    bool ok = true;
    // Dense request traffic: rare-event classes (drops, corruptions)
    // need enough requests per window to show up at --quick scale.
    mean_ms = std::min(mean_ms, 1.0);

    // Headroom over the worst benign window: benign runs never page
    // flip_p99, faulted runs that visibly stretch the tail do.
    double benign_p99 = calibrateFlipP99(servers, ms, mean_ms, seed,
                                         workers);
    double flip_threshold = 2.0 * std::max(benign_p99, 1000.0);
    std::printf("calibration: benign worst-window flip p99 %.0f "
                "cycles -> flip_p99 SLO threshold %.0f\n\n",
                benign_p99, flip_threshold);

    TextTable t("SLO alerting acceptance: one fault class at a time");
    t.setHeader({"Outage class", "SLO", "Bad windows", "First bad",
                 "Raised", "Verdict"});

    {
        fleet::FleetConfig cfg = telemetryFleetConfig(
            servers, mean_ms, seed, faultsAt(0.0), ladder(true), 2,
            workers);
        fleet::FleetSim sim(cfg);
        addFleetSlos(*sim.telemetry(), flip_threshold);
        sim.run(ms);
        sim.flushTelemetry();
        const obs::SloMonitor &slo = sim.telemetry()->slo();
        bool silent = slo.alerts().empty();
        if (!silent)
            ok = false;
        t.addRow({"(benign)", "all silent", "0", "-", "-",
                  silent ? "PASS" : "FALSE ALARM"});
    }

    for (const SloCase &c : sloCases()) {
        fleet::FleetConfig cfg = telemetryFleetConfig(
            servers, mean_ms, seed, c.cfg, ladder(true), 2, workers);
        fleet::FleetSim sim(cfg);
        addFleetSlos(*sim.telemetry(), flip_threshold);
        sim.run(ms);
        sim.flushTelemetry();
        const fleet::TelemetryHub &hub = *sim.telemetry();

        uint64_t first_bad = UINT64_MAX;
        uint64_t bad = 0;
        for (const fleet::FleetWindow &w : hub.windows()) {
            auto fields = w.fields();
            if (fields.at(c.field) > 0) {
                ++bad;
                first_bad = std::min(first_bad, w.index);
            }
        }
        uint64_t raised = UINT64_MAX;
        for (const obs::SloAlert &a : hub.slo().alerts()) {
            if (a.slo == c.slo) {
                raised = a.raisedWindow;
                break;
            }
        }
        const char *verdict;
        if (first_bad == UINT64_MAX) {
            // The fault stream never produced a bad window at this
            // run length: the acceptance test has no signal to
            // detect, which is itself a configuration failure.
            verdict = "NO FAULT SIGNAL";
            ok = false;
        } else if (raised == UINT64_MAX) {
            verdict = "MISSED";
            ok = false;
        } else if (raised > first_bad + kAlertWindows) {
            verdict = "TOO LATE";
            ok = false;
        } else {
            verdict = "PASS";
        }
        t.addRow({c.name, c.slo, fmtU64(bad),
                  first_bad == UINT64_MAX ? "-" : fmtU64(first_bad),
                  raised == UINT64_MAX ? "-" : fmtU64(raised),
                  verdict});
    }
    t.print();
    std::printf("\nevery outage class must page its matching alert "
                "within %llu windows; benign runs must stay "
                "silent\n",
                static_cast<unsigned long long>(kAlertWindows));
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t servers = 8;
    double ms = 300.0;
    double mean_ms = 4.0;
    bool quick = false;
    bool slo_mode = false;
    bool hotloop_mode = false;
    std::string telemetry_path;
    std::string bench_out;
    std::string validate_out;
    std::string hotloop_out;
    bench::ArgParser parser;
    parser.addFlag("servers", &servers, "fleet size (default 8)");
    parser.addFlag("ms", &ms, "simulated run length per config");
    parser.addFlag("mean-ms", &mean_ms,
                   "mean request interarrival per server");
    parser.addSwitch("quick", &quick, "tiny configuration for CI");
    parser.addFlag("telemetry", &telemetry_path,
                   "write the telemetry plane (windows/SLOs) as JSON");
    parser.addFlag("bench-out", &bench_out,
                   "append a git-stamped trajectory run");
    parser.addFlag("validate-out", &validate_out,
                   "write the validation-gate summary as stable JSON");
    parser.addSwitch("slo", &slo_mode,
                     "run the SLO alerting acceptance harness");
    parser.addSwitch("hotloop", &hotloop_mode,
                     "run the hot-loop OSR flip-latency study");
    parser.addFlag("hotloop-out", &hotloop_out,
                   "write the hot-loop summary as stable JSON");
    bench::ObsConfig obs_cfg = parser.parse(argc, argv);
    if (quick) {
        servers = 4;
        ms = 150.0;
    }
    uint32_t workers = static_cast<uint32_t>(obs_cfg.parallel);
    // Parsed up front so a typo fails before any simulation runs;
    // picks the exported telemetry configuration's gate mode.
    validate::Mode export_mode = fleet::FleetConfig{}.validate.mode;
    if (!obs_cfg.validateMode.empty())
        export_mode = validate::parseMode(obs_cfg.validateMode);

    if (hotloop_mode) {
        bool ok = runHotloopStudy(static_cast<uint32_t>(servers), ms,
                                  mean_ms, obs_cfg.seed, workers,
                                  export_mode, obs_cfg.osr,
                                  hotloop_out);
        bench::exportObs(obs_cfg);
        if (!ok) {
            std::fprintf(stderr,
                         "FAIL: hot-loop OSR study — see table "
                         "above\n");
            return 1;
        }
        return 0;
    }

    if (slo_mode) {
        bool ok = runSloAcceptance(static_cast<uint32_t>(servers), ms,
                                   mean_ms, obs_cfg.seed, workers);
        bench::exportObs(obs_cfg);
        if (!ok) {
            std::fprintf(stderr,
                         "FAIL: SLO alerting acceptance — an outage "
                         "class went unalerted or a benign run "
                         "paged\n");
            return 1;
        }
        return 0;
    }

    bool gate_failed = false;

    fleet::FleetStats benign = runFleet(
        static_cast<uint32_t>(servers), ms, mean_ms, obs_cfg.seed,
        faultsAt(0.0), ladder(false), 1, workers, false);
    uint64_t benign_cycles = benign.totalCompileCycles();

    {
        TextTable t("Degradation ladder: fault level x replication "
                    "x retry policy");
        t.setHeader({"Faults", "R", "Policy", "Hit rate",
                     "Cycle overhead", "Retries", "Fallbacks",
                     "Worst flip (cyc)", "Stalled"});
        std::vector<FaultLevel> levels;
        levels.push_back({"moderate", faultsAt(1.0)});
        if (!quick)
            levels.push_back({"heavy", faultsAt(3.0)});
        std::vector<PolicyLevel> policies;
        policies.push_back({"retry", ladder(false)});
        policies.push_back({"retry+hedge", ladder(true)});

        for (const FaultLevel &lv : levels) {
            for (uint32_t repl : {1u, 2u}) {
                for (const PolicyLevel &pol : policies) {
                    fleet::FleetStats st = runFleet(
                        static_cast<uint32_t>(servers), ms, mean_ms,
                        obs_cfg.seed, lv.cfg, pol.policy, repl,
                        workers, false);
                    double overhead = benign_cycles == 0 ? 0.0 :
                        static_cast<double>(
                            st.totalCompileCycles()) /
                        static_cast<double>(benign_cycles);
                    t.addRow({lv.name, strformat("%u", repl),
                              pol.name,
                              bench::fmtRatio(
                                  st.service.hitRateOf()),
                              bench::fmtRatio(overhead),
                              fmtU64(st.client.retries),
                              fmtU64(st.client.localFallbacks),
                              fmtU64(st.client.maxResolveCycles),
                              fmtU64(st.stalledRequests)});
                    if (repl >= 2 && st.stalledRequests > 0)
                        gate_failed = true;
                }
            }
        }
        t.print();
        std::printf("\nevery request resolves via retry, replica or "
                    "local fallback; stalls gate the build\n");
    }

    if (!quick) {
        std::printf("\n");
        TextTable t("Sweep: drop probability x replication "
                    "(retry ladder, no hedge)");
        t.setHeader({"Drop", "R", "Hit rate", "Timeouts", "Retries",
                     "Fallbacks", "Worst flip (cyc)", "Stalled"});
        for (double drop : {0.0, 0.02, 0.10}) {
            for (uint32_t repl : {1u, 2u, 3u}) {
                faults::FaultConfig f;
                f.requestDropProb = drop;
                fleet::FleetStats st = runFleet(
                    static_cast<uint32_t>(servers), ms / 2.0,
                    mean_ms, obs_cfg.seed, f, ladder(false), repl,
                    workers, false);
                t.addRow({TextTable::fmt(drop, 2),
                          strformat("%u", repl),
                          bench::fmtRatio(st.service.hitRateOf()),
                          fmtU64(st.client.timeouts),
                          fmtU64(st.client.retries),
                          fmtU64(st.client.localFallbacks),
                          fmtU64(st.client.maxResolveCycles),
                          fmtU64(st.stalledRequests)});
                if (drop > 0.0 && repl >= 2 &&
                    st.stalledRequests > 0)
                    gate_failed = true;
            }
        }
        t.print();
        std::printf("\ndropped requests cost one timeout; replicas "
                    "absorb crash losses\n");
    }

    // Translation-validation gate study: clean traffic must sail
    // through (zero false rejects, <5% tier-1 overhead), injected
    // miscompiles must all be rejected before any install.
    std::printf("\n");
    double validate_efficiency = 1.0;
    if (!runValidationGate(static_cast<uint32_t>(servers), ms,
                           mean_ms, obs_cfg.seed, workers,
                           validate_out, &validate_efficiency))
        gate_failed = true;

    // The exported configuration: moderate faults, R=2, full ladder,
    // telemetry plane on. CI re-runs this twice (serial and
    // --parallel=2) and byte-diffs the files — fault injection and
    // the scrape plane must not break determinism. The common
    // --validate flag picks its install-gate mode (default tier 1).
    fleet::FleetConfig ecfg = telemetryFleetConfig(
        static_cast<uint32_t>(servers), mean_ms, obs_cfg.seed,
        faultsAt(1.0), ladder(true), 2, workers);
    ecfg.validate.mode = export_mode;
    // The shared --osr flag turns on-stack replacement on for the
    // exported config ("both" is only meaningful to --hotloop).
    ecfg.osr = obs_cfg.osr == "on";
    ecfg.telemetry.profiling = true;
    fleet::FleetSim esim(ecfg);
    esim.run(ms);
    esim.flushTelemetry();
    esim.exportObsMetrics();
    fleet::FleetStats exported = esim.stats();
    if (exported.stalledRequests > 0)
        gate_failed = true;

    {
        const fleet::TelemetryHub &hub = *esim.telemetry();
        std::printf("\n");
        TextTable t("Fleet rollups under moderate faults (10 ms "
                    "windows, scrape cost modeled)");
        t.setHeader({"Win", "End (ms)", "Requests", "Hit rate",
                     "Flips", "Flip p50", "Flip p99", "Stranded",
                     "Scrape B"});
        for (const fleet::FleetWindow &w : hub.windows()) {
            t.addRow({fmtU64(w.index),
                      TextTable::fmt(
                          static_cast<double>(w.endCycle) /
                              static_cast<double>(
                                  ecfg.machine.msToCycles(1.0)),
                          1),
                      fmtU64(w.requests),
                      bench::fmtRatio(w.hitRate),
                      fmtU64(w.flip.total()),
                      fmtU64(w.flip.quantile(0.50)),
                      fmtU64(w.flip.quantile(0.99)),
                      fmtU64(w.stranded), fmtU64(w.scrapeBytes)});
        }
        t.print();
        obs::HdrHistogram all = hub.fleetFlip();
        std::printf("\nwhole-run fleet flip latency: p50 %llu  "
                    "p95 %llu  p99 %llu  p999 %llu cycles "
                    "(%llu flips)\n",
                    static_cast<unsigned long long>(
                        all.quantile(0.50)),
                    static_cast<unsigned long long>(
                        all.quantile(0.95)),
                    static_cast<unsigned long long>(
                        all.quantile(0.99)),
                    static_cast<unsigned long long>(
                        all.quantile(0.999)),
                    static_cast<unsigned long long>(all.total()));
        std::printf("telemetry plane cost: %llu bytes shipped, "
                    "%llu network cycles, %llu server cpu cycles\n",
                    static_cast<unsigned long long>(
                        hub.scrapeBytesTotal()),
                    static_cast<unsigned long long>(
                        hub.scrapeNetworkCyclesTotal()),
                    static_cast<unsigned long long>(
                        hub.scrapeCpuCyclesTotal()));
        if (!telemetry_path.empty())
            hub.writeJson(telemetry_path);

        bench::printWinningMasks(hub);
        bench::exportFleetProfile(hub, obs_cfg);

        if (!bench_out.empty()) {
            obs::HdrHistogram flips = hub.fleetFlip();
            std::map<std::string, double> metrics;
            metrics["hit_rate"] = exported.service.hitRateOf();
            metrics["flip_p99_cycles"] =
                static_cast<double>(flips.quantile(0.99));
            metrics["profile_samples"] = static_cast<double>(
                hub.fleetProfile().totalSamples());
            metrics["flip_records"] = static_cast<double>(
                hub.scoreboard().totalFlips());
            // Useful-compile fraction of the clean gated run (see
            // runValidationGate); host-independent like every other
            // trajectory ratio.
            metrics["validate_efficiency"] = validate_efficiency;
            uint64_t run = bench::appendTrajectoryRun(
                bench_out, "fleet_faults",
                quick ? "quick" : "full", metrics,
                strformat(
                    "{\"servers\": %llu, \"sim_ms\": %g, "
                    "\"stalled\": %llu}",
                    static_cast<unsigned long long>(servers), ms,
                    static_cast<unsigned long long>(
                        exported.stalledRequests)));
            std::printf("appended run %llu to %s\n",
                        static_cast<unsigned long long>(run),
                        bench_out.c_str());
        }
    }
    std::printf("\nexported config: %llu crashes, %llu dropped, "
                "%llu retries, %llu fallbacks, %llu stalled\n",
                static_cast<unsigned long long>(
                    exported.service.crashes),
                static_cast<unsigned long long>(
                    exported.service.dropped),
                static_cast<unsigned long long>(
                    exported.client.retries),
                static_cast<unsigned long long>(
                    exported.client.localFallbacks),
                static_cast<unsigned long long>(
                    exported.stalledRequests));

    bench::exportObs(obs_cfg);
    if (gate_failed) {
        std::fprintf(stderr,
                     "FAIL: stalled requests under faults with "
                     "replication >= 2 — the degradation ladder "
                     "must resolve every request\n");
        return 1;
    }
    return 0;
}
