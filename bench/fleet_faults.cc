/**
 * @file
 * Fault injection and graceful degradation study (DESIGN.md §9).
 *
 * Sweeps fault intensity x replication factor x client retry policy
 * over the fleet compilation service and reports what the degradation
 * ladder buys: hit rate under fire, compile-cycle overhead versus the
 * benign run, retry/fallback activity, the worst-case flip latency
 * (slowest request -> variant-ready), and — the gate — host workload
 * stalls.
 *
 * The bench exits nonzero if any faulted configuration with
 * replication >= 2 and the ladder armed leaves a stalled request:
 * every request must resolve via retry, replica, or local fallback.
 * CI runs `--quick` twice (serial and --parallel=2) and byte-diffs
 * the exports, so the faulted runs double as determinism fixtures.
 *
 * Flags (beyond the common set): --servers=<n>, --ms=<x> (simulated
 * run length), --mean-ms=<x> (request interarrival mean) and --quick.
 */

#include "common.h"

#include "fleet/fleet.h"

using namespace protean;

namespace {

struct FaultLevel
{
    const char *name;
    faults::FaultConfig cfg;
};

struct PolicyLevel
{
    const char *name;
    fleet::RetryPolicy policy;
};

fleet::FleetStats
runFleet(uint32_t servers, double ms, double mean_ms, uint64_t seed,
         const faults::FaultConfig &faults,
         const fleet::RetryPolicy &retry, uint32_t replication,
         uint32_t workers, bool export_obs)
{
    fleet::FleetConfig cfg;
    cfg.numServers = servers;
    cfg.remoteBackend = true;
    cfg.meanRequestMs = mean_ms;
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.retry = retry;
    cfg.service.replication = replication;
    cfg.parallelWorkers = workers;
    fleet::FleetSim sim(cfg);
    sim.run(ms);
    if (export_obs)
        sim.exportObsMetrics();
    return sim.stats();
}

faults::FaultConfig
faultsAt(double intensity)
{
    // One scalar dials every fault stream: intensity 1.0 is the
    // "moderate" point (a shard crashes about once per 40 simulated
    // ms, 2% of requests vanish, ...), 0.0 is benign.
    faults::FaultConfig f;
    if (intensity <= 0.0)
        return f;
    f.shardCrashMeanCycles = 200000.0 / intensity;
    f.shardRestartCycles = 20000;
    f.requestDropProb = 0.02 * intensity;
    f.requestDelayProb = 0.05 * intensity;
    f.responseCorruptProb = 0.01 * intensity;
    f.cacheCorruptProb = 0.01 * intensity;
    f.serverPauseProb = 0.01 * intensity;
    return f;
}

fleet::RetryPolicy
ladder(bool hedged)
{
    fleet::RetryPolicy p;
    p.enabled = true;
    p.maxAttempts = 3;
    // Sized for this bench's service model: a worst-case queued
    // compile is tens of thousands of cycles, so 60k never fires
    // spuriously yet keeps the ladder bound well inside the run.
    p.attemptTimeoutCycles = 60000;
    p.backoffBaseCycles = 2000;
    p.backoffCapCycles = 16000;
    p.hedgeAfterCycles = hedged ? 30000 : 0;
    return p;
}

std::string
fmtU64(uint64_t v)
{
    return strformat("%llu", static_cast<unsigned long long>(v));
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t servers = 8;
    double ms = 300.0;
    double mean_ms = 4.0;
    bool quick = false;
    bench::ArgParser parser;
    parser.addFlag("servers", &servers, "fleet size (default 8)");
    parser.addFlag("ms", &ms, "simulated run length per config");
    parser.addFlag("mean-ms", &mean_ms,
                   "mean request interarrival per server");
    parser.addSwitch("quick", &quick, "tiny configuration for CI");
    bench::ObsConfig obs_cfg = parser.parse(argc, argv);
    if (quick) {
        servers = 4;
        ms = 150.0;
    }
    uint32_t workers = static_cast<uint32_t>(obs_cfg.parallel);

    bool gate_failed = false;

    fleet::FleetStats benign = runFleet(
        static_cast<uint32_t>(servers), ms, mean_ms, obs_cfg.seed,
        faultsAt(0.0), ladder(false), 1, workers, false);
    uint64_t benign_cycles = benign.totalCompileCycles();

    {
        TextTable t("Degradation ladder: fault level x replication "
                    "x retry policy");
        t.setHeader({"Faults", "R", "Policy", "Hit rate",
                     "Cycle overhead", "Retries", "Fallbacks",
                     "Worst flip (cyc)", "Stalled"});
        std::vector<FaultLevel> levels;
        levels.push_back({"moderate", faultsAt(1.0)});
        if (!quick)
            levels.push_back({"heavy", faultsAt(3.0)});
        std::vector<PolicyLevel> policies;
        policies.push_back({"retry", ladder(false)});
        policies.push_back({"retry+hedge", ladder(true)});

        for (const FaultLevel &lv : levels) {
            for (uint32_t repl : {1u, 2u}) {
                for (const PolicyLevel &pol : policies) {
                    fleet::FleetStats st = runFleet(
                        static_cast<uint32_t>(servers), ms, mean_ms,
                        obs_cfg.seed, lv.cfg, pol.policy, repl,
                        workers, false);
                    double overhead = benign_cycles == 0 ? 0.0 :
                        static_cast<double>(
                            st.totalCompileCycles()) /
                        static_cast<double>(benign_cycles);
                    t.addRow({lv.name, strformat("%u", repl),
                              pol.name,
                              bench::fmtRatio(
                                  st.service.hitRateOf()),
                              bench::fmtRatio(overhead),
                              fmtU64(st.client.retries),
                              fmtU64(st.client.localFallbacks),
                              fmtU64(st.client.maxResolveCycles),
                              fmtU64(st.stalledRequests)});
                    if (repl >= 2 && st.stalledRequests > 0)
                        gate_failed = true;
                }
            }
        }
        t.print();
        std::printf("\nevery request resolves via retry, replica or "
                    "local fallback; stalls gate the build\n");
    }

    if (!quick) {
        std::printf("\n");
        TextTable t("Sweep: drop probability x replication "
                    "(retry ladder, no hedge)");
        t.setHeader({"Drop", "R", "Hit rate", "Timeouts", "Retries",
                     "Fallbacks", "Worst flip (cyc)", "Stalled"});
        for (double drop : {0.0, 0.02, 0.10}) {
            for (uint32_t repl : {1u, 2u, 3u}) {
                faults::FaultConfig f;
                f.requestDropProb = drop;
                fleet::FleetStats st = runFleet(
                    static_cast<uint32_t>(servers), ms / 2.0,
                    mean_ms, obs_cfg.seed, f, ladder(false), repl,
                    workers, false);
                t.addRow({TextTable::fmt(drop, 2),
                          strformat("%u", repl),
                          bench::fmtRatio(st.service.hitRateOf()),
                          fmtU64(st.client.timeouts),
                          fmtU64(st.client.retries),
                          fmtU64(st.client.localFallbacks),
                          fmtU64(st.client.maxResolveCycles),
                          fmtU64(st.stalledRequests)});
                if (drop > 0.0 && repl >= 2 &&
                    st.stalledRequests > 0)
                    gate_failed = true;
            }
        }
        t.print();
        std::printf("\ndropped requests cost one timeout; replicas "
                    "absorb crash losses\n");
    }

    // The exported configuration: moderate faults, R=2, full ladder.
    // CI re-runs this twice (serial and --parallel=2) and byte-diffs
    // the files — fault injection must not break determinism.
    fleet::FleetStats exported = runFleet(
        static_cast<uint32_t>(servers), ms, mean_ms, obs_cfg.seed,
        faultsAt(1.0), ladder(true), 2, workers, true);
    if (exported.stalledRequests > 0)
        gate_failed = true;
    std::printf("\nexported config: %llu crashes, %llu dropped, "
                "%llu retries, %llu fallbacks, %llu stalled\n",
                static_cast<unsigned long long>(
                    exported.service.crashes),
                static_cast<unsigned long long>(
                    exported.service.dropped),
                static_cast<unsigned long long>(
                    exported.client.retries),
                static_cast<unsigned long long>(
                    exported.client.localFallbacks),
                static_cast<unsigned long long>(
                    exported.stalledRequests));

    bench::exportObs(obs_cfg);
    if (gate_failed) {
        std::fprintf(stderr,
                     "FAIL: stalled requests under faults with "
                     "replication >= 2 — the degradation ladder "
                     "must resolve every request\n");
        return 1;
    }
    return 0;
}
