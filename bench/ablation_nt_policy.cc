/**
 * @file
 * Ablation: non-temporal fill policy (DESIGN.md).
 *
 * LruInsert keeps NT lines resident-but-first-victim in the shared
 * levels; Bypass never allocates them. Compares co-runner QoS and
 * host utilization for a PC3D colocation under each policy.
 */

#include "common.h"

#include "datacenter/experiment.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    TextTable t("Ablation: NT insertion policy (libquantum + "
                "web-search, PC3D @95%)");
    t.setHeader({"Policy", "Utilization", "QoS", "Final nap"});
    for (auto policy : {sim::NtPolicy::LruInsert,
                        sim::NtPolicy::Bypass}) {
        datacenter::ColoConfig cfg;
        cfg.service = "web-search";
        cfg.batch = "libquantum";
        cfg.qosTarget = 0.95;
        cfg.qps = 120.0;
        cfg.system = datacenter::System::Pc3d;
        cfg.settleMs = 9000.0;
        cfg.measureMs = 2000.0;
        cfg.machine.ntPolicy = policy;
        datacenter::ColoResult r = datacenter::runColocation(cfg);
        t.addRow({policy == sim::NtPolicy::LruInsert ? "LruInsert"
                  : "Bypass",
                  strformat("%.2f", r.utilization),
                  strformat("%.2f", r.qos),
                  strformat("%.2f", r.nap)});
    }
    t.print();
    std::printf("\nexpectation: LruInsert shields the co-runner at "
                "almost no host cost. Bypass denies the host its own "
                "prefetch/L2 residency, so every hinted load pays "
                "full DRAM latency: the host slows drastically and "
                "its raw bandwidth demand still harms the co-runner "
                "- which is why LruInsert is the default policy.\n");
    bench::exportObs(obs_cfg);
    return 0;
}
