/**
 * @file
 * Figure 5: dynamic compilation stress tests — the runtime
 * recompiles randomly selected functions at a fixed interval, on a
 * core separate from the host application. Slowdown vs native for
 * each SPEC application, for intervals from 5000 ms down to 5 ms,
 * plus the bare edge-virtualization cost.
 */

#include "common.h"

#include "runtime/runtime.h"
#include "runtime/stress.h"
#include "support/stats.h"

using namespace protean;

namespace {

uint64_t
measureStressed(const std::string &batch, double interval_ms)
{
    workloads::BatchSpec spec = workloads::batchSpec(batch);
    spec.targetStaticLoads = 0;
    ir::Module module = workloads::buildBatch(spec);
    isa::Image image = pcc::compile(module);

    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);

    runtime::RuntimeOptions opts;
    opts.runtimeCore = 1; // separate core
    runtime::ProteanRuntime rt(machine, proc, opts);
    runtime::StressEngine engine(interval_ms, 7);
    rt.setEngine(&engine);
    rt.start();

    machine.runFor(machine.msToCycles(bench::kWarmMs));
    uint64_t before = machine.core(0).hpm().branches;
    machine.runFor(machine.msToCycles(bench::kMeasureMs));
    return machine.core(0).hpm().branches - before;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    const std::vector<double> intervals = {5000, 500, 50, 5};

    TextTable t("Figure 5: recompilation stress, separate core "
                "(slowdown vs native)");
    std::vector<std::string> header = {"App", "Edge virt."};
    for (double iv : intervals)
        header.push_back(strformat("%gms", iv));
    t.setHeader(header);

    std::vector<std::vector<double>> cols(intervals.size() + 1);
    for (const auto &name : workloads::specBenchmarkNames()) {
        uint64_t native = bench::measureBranchesPlain(name, false);
        std::vector<std::string> row = {name};
        double ev = static_cast<double>(native) /
            bench::measureBranchesPlain(name, true);
        cols[0].push_back(ev);
        row.push_back(bench::fmtRatio(ev));
        for (size_t i = 0; i < intervals.size(); ++i) {
            double s = static_cast<double>(native) /
                measureStressed(name, intervals[i]);
            cols[i + 1].push_back(s);
            row.push_back(bench::fmtRatio(s));
        }
        t.addRow(row);
    }
    std::vector<std::string> mean_row = {"Mean"};
    for (const auto &col : cols)
        mean_row.push_back(bench::fmtRatio(mean(col)));
    t.addRow(mean_row);
    t.print();

    std::printf("\npaper shape: negligible overhead at every "
                "interval when compilation runs on a separate "
                "core\n");
    bench::exportObs(obs_cfg);
    return 0;
}
