/**
 * @file
 * Figure 6: dynamic compilation stress on the same core as the host
 * vs a separate core, mean slowdown across SPEC as a function of the
 * code-generation interval.
 *
 * Same-core compilation steals host cycles, so overhead grows as the
 * interval shrinks; it becomes negligible by ~800 ms. Separate-core
 * compilation is free at every interval.
 */

#include "common.h"

#include "runtime/runtime.h"
#include "runtime/stress.h"
#include "support/stats.h"

using namespace protean;

namespace {

uint64_t
measureStressed(const std::string &batch, double interval_ms,
                bool same_core)
{
    workloads::BatchSpec spec = workloads::batchSpec(batch);
    spec.targetStaticLoads = 0;
    ir::Module module = workloads::buildBatch(spec);
    isa::Image image = pcc::compile(module);

    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);

    runtime::RuntimeOptions opts;
    opts.runtimeCore = same_core ? 0 : 1;
    runtime::ProteanRuntime rt(machine, proc, opts);
    runtime::StressEngine engine(interval_ms, 7);
    rt.setEngine(&engine);
    rt.start();

    machine.runFor(machine.msToCycles(bench::kWarmMs));
    uint64_t before = machine.core(0).hpm().branches;
    machine.runFor(machine.msToCycles(bench::kMeasureMs));
    return machine.core(0).hpm().branches - before;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    const std::vector<double> intervals = {5, 10, 50, 200, 1000,
                                           5000};

    TextTable t("Figure 6: same vs separate core (mean slowdown "
                "across SPEC)");
    t.setHeader({"Interval(ms)", "Same Core", "Separate Core"});

    for (double iv : intervals) {
        std::vector<double> same, sep;
        for (const auto &name : workloads::specBenchmarkNames()) {
            uint64_t native = bench::measureBranchesPlain(name, false);
            same.push_back(static_cast<double>(native) /
                           measureStressed(name, iv, true));
            sep.push_back(static_cast<double>(native) /
                          measureStressed(name, iv, false));
        }
        t.addRow({strformat("%g", iv), bench::fmtRatio(mean(same)),
                  bench::fmtRatio(mean(sep))});
    }
    t.print();

    std::printf("\npaper shape: same-core overhead significant at "
                "5ms, negligible by ~800ms; separate core always "
                "negligible\n");
    bench::exportObs(obs_cfg);
    return 0;
}
