/**
 * @file
 * Table I: comparison between protean code and prior dynamic
 * compilation infrastructures.
 *
 * The prior-system rows are the paper's qualitative claims; the
 * protean-code row is verified programmatically against this
 * implementation: the low-overhead cell is measured, the
 * full-IR/commodity/no-programmer/extrospective cells are checked
 * against the attachment metadata and runtime capabilities.
 */

#include "common.h"

#include "runtime/attach.h"
#include "support/stats.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    // --- Measured: virtualization overhead across SPEC.
    std::vector<double> slowdowns;
    for (const auto &name : workloads::specBenchmarkNames()) {
        uint64_t native = bench::measureBranchesPlain(name, false);
        uint64_t prot = bench::measureBranchesPlain(name, true);
        slowdowns.push_back(static_cast<double>(native) /
                            static_cast<double>(prot));
    }
    double avg = mean(slowdowns);
    bool low_overhead = avg < 1.01;

    // --- Verified: a protean binary carries full IR that re-hydrates
    // into the original program.
    workloads::BatchSpec spec = workloads::batchSpec("libquantum");
    ir::Module module = workloads::buildBatch(spec);
    isa::Image image = pcc::compile(module);
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    runtime::Attachment att = runtime::attach(proc);
    bool full_ir = att.hasIr() &&
        att.module->numLoads() == module.numLoads();

    TextTable t("Table I: protean code vs prior dynamic compilers");
    t.setHeader({"System", "LowOverhead", "FullIR", "Commodity",
                 "NoProgrammer", "Extrospective"});
    t.addRow({"ADAPT", "", "", "yes", "", "yes"});
    t.addRow({"ADORE", "yes", "", "yes", "yes", ""});
    t.addRow({"DynamoRIO", "", "", "yes", "yes", ""});
    t.addRow({"Mojo", "", "", "yes", "yes", ""});
    t.addRow({"protean code",
              low_overhead ? "yes (verified)" : "VIOLATED",
              full_ir ? "yes (verified)" : "VIOLATED",
              "yes", "yes", "yes"});
    t.print();
    std::printf("\nmeasured mean protean slowdown vs native: %.4fx\n",
                avg);
    bench::exportObs(obs_cfg);
    return low_overhead && full_ir ? 0 : 1;
}
