/**
 * @file
 * Figure 7: average fraction of server cycles consumed by the PC3D
 * runtime while managing each of the ten contentious batch
 * applications (co-located with web-search). The paper reports less
 * than 1% in every case.
 */

#include "common.h"

#include "datacenter/experiment.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    TextTable t("Figure 7: PC3D runtime share of server cycles");
    t.setHeader({"Batch app", "% of server cycles"});

    bool all_ok = true;
    for (const auto &name : workloads::contentiousBatchNames()) {
        datacenter::ColoConfig cfg;
        cfg.service = "web-search";
        cfg.batch = name;
        cfg.qosTarget = 0.95;
        cfg.qps = 120.0;
        cfg.system = datacenter::System::Pc3d;
        cfg.settleMs = 4000.0;
        cfg.measureMs = 2000.0;
        datacenter::ColoResult r = datacenter::runColocation(cfg);
        t.addRow({name, strformat("%.3f%%", r.runtimeShare * 100)});
        all_ok &= r.runtimeShare < 0.01;
    }
    t.print();
    std::printf("\npaper shape: below 1%% in all cases -> %s\n",
                all_ok ? "reproduced" : "NOT reproduced");
    bench::exportObs(obs_cfg);
    return 0;
}
