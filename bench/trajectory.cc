/**
 * @file
 * Perf-trajectory regression gate.
 *
 * Reads a schema-1 benchmark trajectory (the append-format
 * BENCH_engine.json that bench/perf_engine and the fleet benches
 * write), prints the history of the gated metric, and compares the
 * newest run against the best prior run: the gate fails when
 *
 *     newest < best_prior * (1 - tolerance)
 *
 * Gating against the *best* prior run rather than the immediately
 * preceding one means a slow regression across many commits cannot
 * ratchet the baseline down with it — the trajectory remembers the
 * high-water mark. Metrics are host-speed-independent ratios
 * (engine speedups, overhead fractions), so runs from different
 * machines are comparable; the noise tolerance absorbs what ratio
 * metrics cannot.
 *
 * Flags: --file=<path> (default BENCH_engine.json), --metric=<name>
 * (default alu_speedup_1proc), --tolerance=<x> (default 0.35, the
 * allowed fractional drop below the best prior run). A trajectory
 * with a single run passes trivially — there is no prior to regress
 * against. Exits nonzero on a regression, a missing or unparsable
 * file, or a newest run lacking the gated metric.
 *
 * Some metrics are only comparable across like hosts: a fleet
 * --parallel speedup depends on how many hardware threads the runner
 * has, even though it is a ratio. --match=<metric> restricts the
 * best-prior search to runs whose value of that metric equals the
 * newest run's value (runs lacking it are excluded), so e.g.
 * --metric=fleet_parallel2_speedup --match=hw_threads gates a
 * 2-thread runner only against prior 2-thread runs.
 */

#include <cstdio>

#include "support/json.h"
#include "support/logging.h"
#include "support/table.h"

using namespace protean;

namespace {

struct Run
{
    uint64_t index = 0;
    std::string git;
    std::string label;
    double value = 0.0;
    bool hasMetric = false;
    double matchValue = 0.0;
    bool hasMatch = false;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string file = "BENCH_engine.json";
    std::string metric = "alu_speedup_1proc";
    std::string match;
    double tolerance = 0.35;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--file=", 0) == 0)
            file = a.substr(7);
        else if (a.rfind("--metric=", 0) == 0)
            metric = a.substr(9);
        else if (a.rfind("--match=", 0) == 0)
            match = a.substr(8);
        else if (a.rfind("--tolerance=", 0) == 0)
            tolerance = std::strtod(a.substr(12).c_str(), nullptr);
        else if (a == "-v")
            setLogLevel(LogLevel::Debug);
        else
            fatal("unknown argument %s\nsupported flags:\n"
                  "  --file=<path>      trajectory file\n"
                  "  --metric=<name>    metric to gate on\n"
                  "  --match=<name>     only compare against runs "
                  "whose value of this metric equals the newest "
                  "run's\n"
                  "  --tolerance=<x>    allowed fractional drop\n"
                  "  -v                 debug logging",
                  a.c_str());
    }
    if (tolerance < 0.0 || tolerance >= 1.0)
        fatal("trajectory: --tolerance must be in [0, 1)");

    std::FILE *f = std::fopen(file.c_str(), "rb");
    if (!f) {
        std::fprintf(stderr, "trajectory: cannot read %s\n",
                     file.c_str());
        return 1;
    }
    std::string body;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        body.append(buf, n);
    std::fclose(f);

    std::string err;
    JsonValue doc = JsonValue::parse(body, &err);
    if (!err.empty()) {
        std::fprintf(stderr, "trajectory: %s: %s\n", file.c_str(),
                     err.c_str());
        return 1;
    }
    if (doc.numberOr("schema", 0) != 1) {
        std::fprintf(stderr,
                     "trajectory: %s is not a schema-1 trajectory "
                     "(run the bench once to convert it)\n",
                     file.c_str());
        return 1;
    }
    const JsonValue *runsNode = doc.find("runs");
    if (!runsNode || !runsNode->isArray() ||
        runsNode->items().empty()) {
        std::fprintf(stderr, "trajectory: %s has no runs\n",
                     file.c_str());
        return 1;
    }

    std::vector<Run> runs;
    for (const JsonValue &rv : runsNode->items()) {
        Run r;
        r.index = static_cast<uint64_t>(rv.numberOr("run", 0));
        r.git = rv.stringOr("git", "?");
        r.label = rv.stringOr("label", "");
        const JsonValue *m = rv.find("metrics");
        const JsonValue *v = m ? m->find(metric) : nullptr;
        if (v && v->isNumber()) {
            r.hasMetric = true;
            r.value = v->asNumber();
        }
        if (!match.empty()) {
            const JsonValue *mv = m ? m->find(match) : nullptr;
            if (mv && mv->isNumber()) {
                r.hasMatch = true;
                r.matchValue = mv->asNumber();
            }
        }
        runs.push_back(std::move(r));
    }

    // Best prior = max over all runs except the newest; with --match,
    // only runs recorded on a like host (equal match-metric value)
    // are eligible. Runs lacking the match metric predate it being
    // recorded, so their host is unknown — exclude them.
    const Run &newest = runs.back();
    const Run *best = nullptr;
    for (size_t i = 0; i + 1 < runs.size(); ++i) {
        if (!runs[i].hasMetric)
            continue;
        if (!match.empty() &&
            (!runs[i].hasMatch || !newest.hasMatch ||
             runs[i].matchValue != newest.matchValue))
            continue;
        if (!best || runs[i].value > best->value)
            best = &runs[i];
    }

    TextTable t(strformat("%s: %s trajectory (%zu runs)",
                          file.c_str(), metric.c_str(), runs.size()));
    t.setHeader({"Run", "Git", "Label", metric, "Note"});
    for (const Run &r : runs) {
        std::string note;
        if (best && r.index == best->index)
            note = "best prior";
        if (&r == &newest)
            note = note.empty() ? "newest" : note + ", newest";
        t.addRow({strformat("%llu",
                            static_cast<unsigned long long>(r.index)),
                  r.git, r.label,
                  r.hasMetric ? strformat("%.3f", r.value) : "-",
                  note});
    }
    t.print();

    if (!newest.hasMetric) {
        std::fprintf(stderr,
                     "FAIL: newest run %llu lacks metric %s\n",
                     static_cast<unsigned long long>(newest.index),
                     metric.c_str());
        return 1;
    }
    if (!best) {
        if (!match.empty())
            std::printf("no prior run with %s matches the newest "
                        "run's %s: nothing to regress against, "
                        "pass\n",
                        metric.c_str(), match.c_str());
        else
            std::printf("single run with %s: nothing prior to "
                        "regress against, pass\n",
                        metric.c_str());
        return 0;
    }

    double floor = best->value * (1.0 - tolerance);
    std::printf("newest %.3f vs best prior %.3f (run %llu, %s); "
                "floor at tolerance %.2f = %.3f\n",
                newest.value, best->value,
                static_cast<unsigned long long>(best->index),
                best->git.c_str(), tolerance, floor);
    if (newest.value < floor) {
        std::fprintf(stderr,
                     "FAIL: %s regressed: %.3f < %.3f "
                     "(best prior %.3f - %.0f%%)\n",
                     metric.c_str(), newest.value, floor,
                     best->value, tolerance * 100.0);
        return 1;
    }
    std::printf("PASS: %s within tolerance\n", metric.c_str());
    return 0;
}
