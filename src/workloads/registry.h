/**
 * @file
 * Named workload registry.
 *
 * Central catalogue of the applications the paper evaluates:
 *  - the 18 SPEC CPU2006 benchmarks used in the overhead studies
 *    (Figures 4-6);
 *  - the 10 contentious batch applications of Figures 7-15
 *    (SmashBench blockie/bst/er-naive/sledge + SPEC bzip2/milc/
 *    soplex/libquantum/lbm/sphinx3), with static load counts matching
 *    Figure 8's annotations;
 *  - the latency-sensitive applications of Table II (CloudSuite
 *    web-search/media-streaming/graph-analytics, PARSEC
 *    streamcluster, and the SPEC co-runners).
 *
 * Every entry is a synthetic program tuned to the contention
 * character the paper reports for its namesake (see DESIGN.md's
 * substitution table).
 */

#ifndef PROTEAN_WORKLOADS_REGISTRY_H
#define PROTEAN_WORKLOADS_REGISTRY_H

#include <string>
#include <vector>

#include "workloads/batch.h"
#include "workloads/service.h"

namespace protean {
namespace workloads {

/** Batch spec by name; fatal when unknown. */
BatchSpec batchSpec(const std::string &name);

/** True when a batch spec of this name exists. */
bool hasBatchSpec(const std::string &name);

/** The 18 SPEC CPU2006 names used in Figures 4-6. */
const std::vector<std::string> &specBenchmarkNames();

/** The 10 contentious batch applications of Figures 7-15. */
const std::vector<std::string> &contentiousBatchNames();

/** Service spec by name; fatal when unknown. */
ServiceSpec serviceSpec(const std::string &name);

/** The three CloudSuite webservices of Figures 9-14. */
const std::vector<std::string> &webserviceNames();

} // namespace workloads
} // namespace protean

#endif // PROTEAN_WORKLOADS_REGISTRY_H
