/**
 * @file
 * Batch (throughput) workload generator.
 *
 * Generates IR programs that stand in for the paper's batch
 * applications (SPEC CPU2006, SmashBench). Each program has:
 *
 *  - one hot function per phase, containing a doubly nested loop: the
 *    innermost body issues a mix of streaming loads (walking a large
 *    array with line stride) and reuse loads (walking a small array
 *    repeatedly), the outer body issues a few additional loads — the
 *    depth distinction PC3D's max-depth heuristic exploits;
 *  - optional pointer-chasing (full-period LCG permutation walk) for
 *    latency-bound workloads such as bst;
 *  - cold padding functions carrying loads that never execute — the
 *    "uncovered code" the coverage heuristic prunes — sized so the
 *    program's total static load count matches the counts the paper
 *    reports in Figure 8;
 *  - a main dispatcher that cycles through phases, calling the hot
 *    functions (through virtualizable call edges) forever.
 */

#ifndef PROTEAN_WORKLOADS_BATCH_H
#define PROTEAN_WORKLOADS_BATCH_H

#include <cstdint>
#include <string>

#include "ir/module.h"

namespace protean {
namespace workloads {

/** Parameters of one generated batch program. */
struct BatchSpec
{
    std::string name = "batch";
    /** Streaming array size (power of two). */
    uint64_t streamBytes = 1ULL << 22;
    /** Reuse array size (power of two). */
    uint64_t reuseBytes = 1ULL << 14;
    /** Number of program phases (hot functions). */
    uint32_t phases = 1;
    /** Streaming loads per inner-loop iteration. */
    uint32_t streamLoadsPerIter = 8;
    /** Reuse loads per inner-loop iteration. */
    uint32_t reuseLoadsPerIter = 0;
    /** ALU operations per load (compute intensity). */
    uint32_t aluPerLoad = 2;
    /** Inner-loop trip count. */
    uint32_t innerIters = 128;
    /** Outer-loop trip count per hot call. */
    uint32_t outerIters = 4;
    /** Loads in the outer-loop body (depth 1, not max depth). */
    uint32_t outerLoads = 2;
    /** Walk the streaming array as a pointer chase. */
    bool pointerChase = false;
    /** Pad with cold functions so the module's total static load
     *  count reaches this value (0 = no padding). */
    uint32_t targetStaticLoads = 0;
    /** Loads per cold padding function. */
    uint32_t coldLoadsPerFunc = 16;
    /** Hot calls before the dispatcher advances to the next phase. */
    uint64_t callsPerPhase = 64;
    uint64_t seed = 42;
};

/** Generate the program. The returned module verifies and carries a
 *  "main" entry. */
ir::Module buildBatch(const BatchSpec &spec);

} // namespace workloads
} // namespace protean

#endif // PROTEAN_WORKLOADS_BATCH_H
