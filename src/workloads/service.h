/**
 * @file
 * Latency-sensitive service workload generator.
 *
 * Models the CloudSuite-style webservices (web-search,
 * media-streaming, graph-analytics) and latency-sensitive PARSEC
 * workloads the paper co-runs against batch applications. The
 * service's main loop polls a request counter that an external
 * ServiceDriver (workloads/driver.h) increments according to a QPS
 * trace. Pending requests are processed by walking a working set
 * whose residency in the shared LLC determines the service's
 * sensitivity to cache contention; with no pending work the service
 * spins in a compute-only idle loop, making it insensitive at low
 * load — the behavior Figure 16 of the paper depends on.
 */

#ifndef PROTEAN_WORKLOADS_SERVICE_H
#define PROTEAN_WORKLOADS_SERVICE_H

#include <cstdint>
#include <string>

#include "ir/module.h"

namespace protean {
namespace workloads {

/** Parameters of one generated service program. */
struct ServiceSpec
{
    std::string name = "service";
    /** Request working set (power of two). */
    uint64_t wsBytes = 1ULL << 16;
    /** Loads per inner iteration of request processing. */
    uint32_t loadsPerIter = 4;
    /** Passes over the walked segment per request (reuse factor). */
    uint32_t repsPerRequest = 3;
    /** Fraction of the working set each request walks. The walk
     *  cursor persists across requests, so a given line is
     *  re-referenced only every 1/walkFraction requests — the
     *  request-local locality of a real service, which determines
     *  how fast a polluter can evict the service's footprint. */
    double walkFraction = 0.5;
    /** ALU operations per load. */
    uint32_t aluPerLoad = 2;
    /** Iterations of the compute-only idle spin per poll. */
    uint32_t idleSpinIters = 300;
    /** Stream fresh data per request instead of re-walking the same
     *  working set (media-streaming behavior). */
    bool stream = false;
};

/** Names of the globals the ServiceDriver needs to locate. */
constexpr const char *kServiceReqGlobal = "svc_req";
constexpr const char *kServiceDoneGlobal = "svc_done";

/** Generate the service program (entry "main"). */
ir::Module buildService(const ServiceSpec &spec);

} // namespace workloads
} // namespace protean

#endif // PROTEAN_WORKLOADS_SERVICE_H
