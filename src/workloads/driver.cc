#include "workloads/driver.h"

#include <cmath>

#include "support/logging.h"

namespace protean {
namespace workloads {

uint64_t
globalAddr(const isa::Image &image, const ir::Module &module,
           const std::string &name)
{
    for (const auto &g : module.globals()) {
        if (g.name == name)
            return image.layout.base(g.id);
    }
    fatal("globalAddr: module %s has no global '%s'",
          module.name().c_str(), name.c_str());
}

ServiceDriver::ServiceDriver(sim::Machine &machine, sim::Process &proc,
                             uint64_t req_addr, uint64_t done_addr,
                             double tick_ms)
    : machine_(machine), proc_(proc), reqAddr_(req_addr),
      doneAddr_(done_addr), tickMs_(tick_ms),
      alive_(std::make_shared<bool>(true))
{
    trace_.push_back(LoadStep{0.0, 0.0});
}

ServiceDriver::~ServiceDriver()
{
    *alive_ = false;
}

void
ServiceDriver::setQps(double qps)
{
    trace_ = {LoadStep{0.0, qps}};
}

void
ServiceDriver::setTrace(std::vector<LoadStep> trace)
{
    if (trace.empty())
        fatal("ServiceDriver: empty trace");
    for (size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].startMs < trace[i - 1].startMs)
            fatal("ServiceDriver: trace steps out of order");
    }
    trace_ = std::move(trace);
}

double
ServiceDriver::currentQps() const
{
    double elapsed_ms = machine_.config().cyclesToMs(
        machine_.now() - startCycle_);
    double qps = trace_.front().qps;
    for (const auto &step : trace_) {
        if (elapsed_ms >= step.startMs)
            qps = step.qps;
        else
            break;
    }
    return qps;
}

void
ServiceDriver::start()
{
    if (started_)
        return;
    started_ = true;
    startCycle_ = machine_.now();
    machine_.scheduleAfter(machine_.msToCycles(tickMs_),
                           [this, alive = alive_] {
                               if (*alive)
                                   tick();
                           });
}

void
ServiceDriver::tick()
{
    accum_ += currentQps() * tickMs_ / 1000.0;
    auto n = static_cast<uint64_t>(std::floor(accum_));
    if (n > 0) {
        accum_ -= static_cast<double>(n);
        proc_.writeWord(reqAddr_, proc_.readWord(reqAddr_) + n);
        issued_ += n;
    }
    machine_.scheduleAfter(machine_.msToCycles(tickMs_),
                           [this, alive = alive_] {
                               if (*alive)
                                   tick();
                           });
}

uint64_t
ServiceDriver::completed() const
{
    return proc_.readWord(doneAddr_);
}

uint64_t
ServiceDriver::backlog() const
{
    return proc_.readWord(reqAddr_);
}

} // namespace workloads
} // namespace protean
