/**
 * @file
 * Load generation for latency-sensitive services.
 *
 * ServiceDriver injects requests into a running service process by
 * incrementing its request counter according to a QPS trace — the
 * mechanism behind the fluctuating-load experiment of Figure 16.
 */

#ifndef PROTEAN_WORKLOADS_DRIVER_H
#define PROTEAN_WORKLOADS_DRIVER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "isa/image.h"
#include "sim/machine.h"

namespace protean {
namespace workloads {

/** One step of a piecewise-constant QPS trace. */
struct LoadStep
{
    double startMs = 0.0;
    double qps = 0.0;
};

/** Locate a named global's data address in a compiled image. */
uint64_t globalAddr(const isa::Image &image, const ir::Module &module,
                    const std::string &name);

/** Periodically injects requests per a QPS trace. */
class ServiceDriver
{
  public:
    /**
     * @param machine The machine.
     * @param proc The running service process.
     * @param req_addr Data address of the request counter.
     * @param done_addr Data address of the completion counter.
     * @param tick_ms Injection granularity.
     */
    ServiceDriver(sim::Machine &machine, sim::Process &proc,
                  uint64_t req_addr, uint64_t done_addr,
                  double tick_ms = 20.0);

    ~ServiceDriver();

    /** Constant load. */
    void setQps(double qps);

    /** Piecewise-constant trace; steps must be time-ordered.
     *  Times are relative to start(). The trace repeats after its
     *  last step's level indefinitely. */
    void setTrace(std::vector<LoadStep> trace);

    /** Begin injecting. */
    void start();

    double currentQps() const;

    uint64_t issued() const { return issued_; }

    /** Requests the service has completed (reads its counter). */
    uint64_t completed() const;

    /** Requests currently queued. */
    uint64_t backlog() const;

  private:
    sim::Machine &machine_;
    sim::Process &proc_;
    uint64_t reqAddr_;
    uint64_t doneAddr_;
    double tickMs_;
    std::vector<LoadStep> trace_;
    uint64_t startCycle_ = 0;
    bool started_ = false;
    double accum_ = 0.0;
    uint64_t issued_ = 0;
    std::shared_ptr<bool> alive_;

    void tick();
};

} // namespace workloads
} // namespace protean

#endif // PROTEAN_WORKLOADS_DRIVER_H
