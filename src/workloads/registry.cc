#include "workloads/registry.h"

#include <map>

#include "support/logging.h"

namespace protean {
namespace workloads {

namespace {

/** Construct the full batch catalogue. Field meanings are described
 *  in workloads/batch.h; load-count targets for the ten contentious
 *  applications come from Figure 8 of the paper. */
std::map<std::string, BatchSpec>
makeBatchTable()
{
    std::map<std::string, BatchSpec> t;
    auto add = [&](BatchSpec s) { t[s.name] = std::move(s); };

    // KiB helpers.
    constexpr uint64_t KiB = 1024;
    constexpr uint64_t MiB = 1024 * KiB;

    // --- SmashBench microbenchmarks (highly contentious).
    add({.name = "blockie", .streamBytes = 1 * MiB,
         .reuseBytes = 16 * KiB, .streamLoadsPerIter = 6,
         .reuseLoadsPerIter = 2, .aluPerLoad = 2, .innerIters = 128,
         .outerLoads = 2, .targetStaticLoads = 64, .seed = 11});
    add({.name = "bst", .streamBytes = 512 * KiB, .reuseBytes = 16 * KiB,
         .streamLoadsPerIter = 4, .aluPerLoad = 1, .innerIters = 128,
         .outerLoads = 2, .pointerChase = true,
         .targetStaticLoads = 70, .seed = 12});
    add({.name = "er-naive", .streamBytes = 4 * MiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 6,
         .reuseLoadsPerIter = 6, .aluPerLoad = 1, .innerIters = 192,
         .outerLoads = 2, .targetStaticLoads = 25,
         .coldLoadsPerFunc = 8, .seed = 13});
    add({.name = "sledge", .streamBytes = 2 * MiB,
         .reuseBytes = 8 * KiB, .streamLoadsPerIter = 8,
         .aluPerLoad = 1, .innerIters = 160, .outerLoads = 2,
         .targetStaticLoads = 35, .coldLoadsPerFunc = 8, .seed = 14});

    // --- Hot-loop OSR scenario (DESIGN.md §14): one hot function
    //     whose single call from main spans the entire run
    //     (outerIters is effectively unbounded), so an entry-only
    //     flip dispatched mid-run can never take effect — the
    //     worst-case flip-latency tail on-stack replacement exists
    //     to collapse.
    add({.name = "hotloop", .streamBytes = 256 * KiB,
         .reuseBytes = 16 * KiB, .streamLoadsPerIter = 4,
         .reuseLoadsPerIter = 2, .aluPerLoad = 2, .innerIters = 64,
         .outerIters = 1u << 30, .outerLoads = 2,
         .targetStaticLoads = 64, .callsPerPhase = 1, .seed = 41});

    // --- SPEC CPU2006 (Figures 4-6 use all 18; the contentious set
    //     of Figures 7-15 reuses six of them).
    add({.name = "bzip2", .streamBytes = 512 * KiB,
         .reuseBytes = 32 * KiB, .phases = 2, .streamLoadsPerIter = 4,
         .reuseLoadsPerIter = 4, .aluPerLoad = 3, .innerIters = 128,
         .outerLoads = 2, .targetStaticLoads = 2582, .seed = 21});
    add({.name = "gcc", .streamBytes = 256 * KiB,
         .reuseBytes = 64 * KiB, .phases = 3, .streamLoadsPerIter = 2,
         .reuseLoadsPerIter = 4, .aluPerLoad = 4, .innerIters = 48,
         .outerLoads = 3, .targetStaticLoads = 5000, .seed = 22});
    add({.name = "mcf", .streamBytes = 512 * KiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 4,
         .aluPerLoad = 1, .innerIters = 96, .outerLoads = 2,
         .pointerChase = true, .targetStaticLoads = 1500,
         .seed = 23});
    add({.name = "milc", .streamBytes = 2 * MiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 8,
         .reuseLoadsPerIter = 2, .aluPerLoad = 2, .innerIters = 160,
         .outerLoads = 2, .targetStaticLoads = 3632, .seed = 24});
    add({.name = "namd", .streamBytes = 64 * KiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 2,
         .reuseLoadsPerIter = 2, .aluPerLoad = 6, .innerIters = 96,
         .outerLoads = 1, .targetStaticLoads = 1000, .seed = 25});
    add({.name = "gobmk", .streamBytes = 128 * KiB,
         .reuseBytes = 64 * KiB, .phases = 2, .streamLoadsPerIter = 2,
         .reuseLoadsPerIter = 3, .aluPerLoad = 4, .innerIters = 16,
         .outerLoads = 2, .targetStaticLoads = 2000, .seed = 26});
    add({.name = "dealII", .streamBytes = 256 * KiB,
         .reuseBytes = 64 * KiB, .streamLoadsPerIter = 4,
         .reuseLoadsPerIter = 4, .aluPerLoad = 3, .innerIters = 96,
         .outerLoads = 2, .targetStaticLoads = 3000, .seed = 27});
    add({.name = "soplex", .streamBytes = 1 * MiB,
         .reuseBytes = 64 * KiB, .streamLoadsPerIter = 6,
         .reuseLoadsPerIter = 4, .aluPerLoad = 2, .innerIters = 128,
         .outerLoads = 3, .targetStaticLoads = 15666, .seed = 28});
    add({.name = "povray", .streamBytes = 64 * KiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 1,
         .reuseLoadsPerIter = 3, .aluPerLoad = 6, .innerIters = 64,
         .outerLoads = 1, .targetStaticLoads = 2000, .seed = 29});
    add({.name = "hmmer", .streamBytes = 128 * KiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 2,
         .reuseLoadsPerIter = 6, .aluPerLoad = 3, .innerIters = 96,
         .outerLoads = 2, .targetStaticLoads = 1500, .seed = 30});
    add({.name = "sjeng", .streamBytes = 128 * KiB,
         .reuseBytes = 64 * KiB, .streamLoadsPerIter = 2,
         .reuseLoadsPerIter = 2, .aluPerLoad = 4, .innerIters = 24,
         .outerLoads = 2, .targetStaticLoads = 1200, .seed = 31});
    add({.name = "libquantum", .streamBytes = 4 * MiB,
         .reuseBytes = 8 * KiB, .streamLoadsPerIter = 8,
         .aluPerLoad = 1, .innerIters = 192, .outerLoads = 2,
         .targetStaticLoads = 636, .seed = 32});
    add({.name = "h264ref", .streamBytes = 256 * KiB,
         .reuseBytes = 64 * KiB, .streamLoadsPerIter = 4,
         .reuseLoadsPerIter = 4, .aluPerLoad = 3, .innerIters = 96,
         .outerLoads = 2, .targetStaticLoads = 3000, .seed = 33});
    add({.name = "lbm", .streamBytes = 4 * MiB,
         .reuseBytes = 8 * KiB, .streamLoadsPerIter = 10,
         .aluPerLoad = 2, .innerIters = 192, .outerLoads = 2,
         .targetStaticLoads = 257, .seed = 34});
    add({.name = "omnetpp", .streamBytes = 512 * KiB,
         .reuseBytes = 64 * KiB, .streamLoadsPerIter = 3,
         .reuseLoadsPerIter = 2, .aluPerLoad = 2, .innerIters = 64,
         .outerLoads = 2, .pointerChase = true,
         .targetStaticLoads = 2000, .seed = 35});
    add({.name = "astar", .streamBytes = 256 * KiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 3,
         .reuseLoadsPerIter = 2, .aluPerLoad = 2, .innerIters = 64,
         .outerLoads = 2, .pointerChase = true,
         .targetStaticLoads = 1000, .seed = 36});
    add({.name = "sphinx3", .streamBytes = 2 * MiB,
         .reuseBytes = 32 * KiB, .streamLoadsPerIter = 6,
         .reuseLoadsPerIter = 3, .aluPerLoad = 2, .innerIters = 128,
         .outerLoads = 2, .targetStaticLoads = 4963, .seed = 37});
    add({.name = "xalancbmk", .streamBytes = 512 * KiB,
         .reuseBytes = 64 * KiB, .phases = 2, .streamLoadsPerIter = 3,
         .reuseLoadsPerIter = 4, .aluPerLoad = 3, .innerIters = 96,
         .outerLoads = 2, .targetStaticLoads = 3500, .seed = 38});

    return t;
}

std::map<std::string, ServiceSpec>
makeServiceTable()
{
    std::map<std::string, ServiceSpec> t;
    auto add = [&](ServiceSpec s) { t[s.name] = std::move(s); };
    constexpr uint64_t KiB = 1024;

    // web-search: moderate working set with reuse; sensitive to LLC
    // pollution, fully shielded by non-temporal co-runners.
    add({.name = "web-search", .wsBytes = 64 * KiB,
         .loadsPerIter = 4, .repsPerRequest = 2, .aluPerLoad = 2,
         .idleSpinIters = 300});
    // media-streaming: streams fresh data per request — the most
    // contention-sensitive of the three (Figure 10).
    add({.name = "media-streaming", .wsBytes = 256 * KiB,
         .loadsPerIter = 8, .repsPerRequest = 1, .aluPerLoad = 1,
         .idleSpinIters = 300, .stream = true});
    // graph-analytics: heavier requests over a reused set.
    add({.name = "graph-analytics", .wsBytes = 64 * KiB,
         .loadsPerIter = 4, .repsPerRequest = 3, .aluPerLoad = 3,
         .idleSpinIters = 300});
    // PARSEC streamcluster (Table II external application).
    add({.name = "streamcluster", .wsBytes = 64 * KiB,
         .loadsPerIter = 6, .repsPerRequest = 2, .aluPerLoad = 2,
         .idleSpinIters = 300});
    return t;
}

} // namespace

BatchSpec
batchSpec(const std::string &name)
{
    static const std::map<std::string, BatchSpec> table =
        makeBatchTable();
    auto it = table.find(name);
    if (it == table.end())
        fatal("batchSpec: unknown workload '%s'", name.c_str());
    return it->second;
}

bool
hasBatchSpec(const std::string &name)
{
    static const std::map<std::string, BatchSpec> table =
        makeBatchTable();
    return table.count(name) > 0;
}

const std::vector<std::string> &
specBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "gcc", "mcf", "milc", "namd", "gobmk", "dealII",
        "soplex", "povray", "hmmer", "sjeng", "libquantum", "h264ref",
        "lbm", "omnetpp", "astar", "sphinx3", "xalancbmk",
    };
    return names;
}

const std::vector<std::string> &
contentiousBatchNames()
{
    static const std::vector<std::string> names = {
        "blockie", "bst", "er-naive", "sledge", "bzip2", "milc",
        "soplex", "libquantum", "lbm", "sphinx3",
    };
    return names;
}

ServiceSpec
serviceSpec(const std::string &name)
{
    static const std::map<std::string, ServiceSpec> table =
        makeServiceTable();
    auto it = table.find(name);
    if (it == table.end())
        fatal("serviceSpec: unknown service '%s'", name.c_str());
    return it->second;
}

const std::vector<std::string> &
webserviceNames()
{
    static const std::vector<std::string> names = {
        "web-search", "media-streaming", "graph-analytics",
    };
    return names;
}

} // namespace workloads
} // namespace protean
