#include "workloads/service.h"

#include <bit>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "support/logging.h"

namespace protean {
namespace workloads {

namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Opcode;
using ir::Reg;

/** Request-processing function: walks the working set. */
void
buildProcess(IRBuilder &b, const ServiceSpec &spec, ir::GlobalId ws,
             ir::GlobalId sink, ir::GlobalId stream_cursor)
{
    uint64_t mask = spec.wsBytes - 1;
    uint64_t lines = spec.wsBytes / 64;
    double frac = spec.stream ? 1.0 : spec.walkFraction;
    uint32_t iters_per_rep = static_cast<uint32_t>(std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(lines) * frac) /
            spec.loadsPerIter));
    // The inter-iteration stride jumps past the stride prefetcher's
    // reach and uses an odd line count, so the walk still covers the
    // whole working set (latency-sensitive access pattern). Within
    // an iteration the unrolled loads keep spatial locality.
    uint64_t stride_lines = (2ULL * spec.loadsPerIter + 5) | 1;

    b.startFunction("process", 0);
    Reg base = b.globalAddr(ws);
    Reg maskR = b.constInt(static_cast<int64_t>(mask));
    Reg one = b.constInt(1);
    Reg repsN = b.constInt(spec.repsPerRequest);
    Reg innerN = b.constInt(iters_per_rep);
    Reg stride = b.constInt(
        static_cast<int64_t>(spec.stream
                             ? 64ULL * spec.loadsPerIter
                             : 64ULL * stride_lines));
    Reg curBase = b.globalAddr(stream_cursor);
    Reg sum = b.constInt(0);
    Reg rep = b.constInt(0);

    // The walk cursor persists across requests (see walkFraction).
    Reg cur = b.load(curBase);
    Reg segment = b.mov(cur);
    Reg j = b.func().newReg();
    Reg tmp = b.func().newReg();
    Reg x = b.func().newReg();
    b.func().noteReg(j);
    b.func().noteReg(tmp);
    b.func().noteReg(x);

    BlockId outer = b.newBlock();
    BlockId inner = b.newBlock();
    BlockId after = b.newBlock();
    BlockId exit = b.newBlock();
    b.br(outer);

    b.setBlock(outer);
    if (!spec.stream)
        b.movInto(cur, segment); // re-walk this request's segment
    b.constInto(j, 0);
    b.br(inner);

    b.setBlock(inner);
    b.binaryInto(tmp, Opcode::And, cur, maskR);
    b.binaryInto(tmp, Opcode::Add, tmp, base);
    for (uint32_t u = 0; u < spec.loadsPerIter; ++u) {
        b.loadInto(x, tmp, static_cast<int64_t>(u) * 64);
        for (uint32_t a = 0; a < spec.aluPerLoad; ++a) {
            b.binaryInto(sum, a % 2 == 0 ? Opcode::Add : Opcode::Xor,
                         sum, x);
        }
    }
    b.binaryInto(cur, Opcode::Add, cur, stride);
    b.binaryInto(j, Opcode::Add, j, one);
    Reg c1 = b.cmpLt(j, innerN);
    b.condBr(c1, inner, after);

    b.setBlock(after);
    b.binaryInto(rep, Opcode::Add, rep, one);
    Reg c2 = b.cmpLt(rep, repsN);
    b.condBr(c2, outer, exit);

    b.setBlock(exit);
    b.store(curBase, cur);
    Reg kbase = b.globalAddr(sink);
    b.store(kbase, sum);
    b.ret();
}

} // namespace

ir::Module
buildService(const ServiceSpec &spec)
{
    if (!std::has_single_bit(spec.wsBytes))
        fatal("buildService: wsBytes must be a power of two");

    ir::Module module(spec.name);
    uint64_t slack = 64ULL * 64;
    ir::GlobalId ws = module.addGlobal("svc_ws", spec.wsBytes + slack);
    ir::GlobalId req = module.addGlobal(kServiceReqGlobal, 8);
    ir::GlobalId done = module.addGlobal(kServiceDoneGlobal, 8);
    ir::GlobalId sink = module.addGlobal("svc_sink", 8);
    ir::GlobalId cursor = module.addGlobal("svc_cursor", 8);

    IRBuilder b(module);
    buildProcess(b, spec, ws, sink, cursor);
    ir::FuncId process = module.findFunction("process")->id();

    b.startFunction("main", 0);
    Reg reqBase = b.globalAddr(req);
    Reg doneBase = b.globalAddr(done);
    Reg wsBase = b.globalAddr(ws);
    Reg one = b.constInt(1);
    Reg spinN = b.constInt(spec.idleSpinIters);
    Reg spin = b.func().newReg();
    Reg zero = b.constInt(0);
    Reg noise = b.constInt(0);
    Reg r = b.func().newReg();
    Reg d = b.func().newReg();
    b.func().noteReg(spin);
    b.func().noteReg(r);
    b.func().noteReg(d);

    BlockId loop = b.newBlock();
    BlockId idle = b.newBlock();
    BlockId idle_loop = b.newBlock();
    BlockId work = b.newBlock();
    b.br(loop);

    b.setBlock(loop);
    b.loadInto(r, reqBase);
    Reg has = b.cmpNe(r, zero);
    b.condBr(has, work, idle);

    // Idle spin: touches only an L1-resident line, so it is
    // insensitive to shared-cache contention, while its IPC is kept
    // close to request-processing IPC (the div models the polling
    // path's longer-latency work) so the flux probe's idle/busy mix
    // does not bias the IPS-based QoS estimate.
    b.setBlock(idle);
    b.constInto(spin, 0);
    b.br(idle_loop);
    b.setBlock(idle_loop);
    b.loadInto(d, wsBase, 0);
    b.binaryInto(noise, Opcode::Add, noise, d);
    b.binaryInto(noise, Opcode::Div, noise, spinN);
    b.binaryInto(noise, Opcode::Xor, noise, spin);
    b.binaryInto(spin, Opcode::Add, spin, one);
    Reg c = b.cmpLt(spin, spinN);
    b.condBr(c, idle_loop, loop);

    b.setBlock(work);
    Reg rm = b.sub(r, one);
    b.store(reqBase, rm);
    b.callVoid(process);
    b.loadInto(d, doneBase);
    b.binaryInto(d, Opcode::Add, d, one);
    b.store(doneBase, d);
    b.br(loop);

    module.renumberLoads();
    ir::verifyOrDie(module);
    return module;
}

} // namespace workloads
} // namespace protean
