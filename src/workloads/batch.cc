#include "workloads/batch.h"

#include <bit>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "support/logging.h"

namespace protean {
namespace workloads {

namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Opcode;
using ir::Reg;

void
checkPow2(uint64_t v, const char *what)
{
    if (v == 0 || !std::has_single_bit(v))
        fatal("buildBatch: %s (%llu) must be a power of two", what,
              static_cast<unsigned long long>(v));
}

/** Emit aluPerLoad dependent ALU operations folding x into sum. */
void
emitCompute(IRBuilder &b, Reg sum, Reg x, uint32_t alu_per_load)
{
    for (uint32_t a = 0; a < alu_per_load; ++a) {
        b.binaryInto(sum, a % 2 == 0 ? Opcode::Add : Opcode::Xor,
                     sum, x);
    }
}

/** Build the pointer-chase initializer (full-period LCG permutation
 *  over the streaming array's word slots). */
void
buildChaseInit(IRBuilder &b, ir::GlobalId stream, uint64_t words)
{
    b.startFunction("init", 0);
    Reg base = b.globalAddr(stream);
    Reg mask = b.constInt(static_cast<int64_t>(words - 1));
    Reg mul = b.constInt(1664525);
    Reg inc = b.constInt(1013904223);
    Reg three = b.constInt(3);
    Reg n = b.constInt(static_cast<int64_t>(words));
    Reg one = b.constInt(1);
    Reg i = b.constInt(0);

    BlockId loop = b.newBlock();
    BlockId done = b.newBlock();
    b.br(loop);

    b.setBlock(loop);
    // value = ((i * mul + inc) & (words-1)) * 8
    Reg v = b.mul(i, mul);
    b.binaryInto(v, Opcode::Add, v, inc);
    b.binaryInto(v, Opcode::And, v, mask);
    b.binaryInto(v, Opcode::Shl, v, three);
    // slot address = base + i*8
    Reg a = b.shl(i, three);
    b.binaryInto(a, Opcode::Add, a, base);
    b.store(a, v);
    b.binaryInto(i, Opcode::Add, i, one);
    Reg c = b.cmpLt(i, n);
    b.condBr(c, loop, done);

    b.setBlock(done);
    b.ret();
}

/** Build one hot phase function. */
void
buildHot(IRBuilder &b, const BatchSpec &spec, uint32_t phase,
         ir::GlobalId stream, ir::GlobalId reuse, ir::GlobalId cursor,
         ir::GlobalId sink)
{
    uint64_t smask = spec.streamBytes - 1;
    uint64_t rmask = spec.reuseBytes - 1;

    // hot_<p>(iters): outer loop of `iters` trips around an inner
    // loop of spec.innerIters trips.
    b.startFunction(strformat("hot_%u", phase), 1);
    Reg iters = 0; // parameter register

    Reg sbase = b.globalAddr(stream);
    Reg rbase = b.globalAddr(reuse);
    Reg cbase = b.globalAddr(cursor);
    Reg kbase = b.globalAddr(sink);
    Reg smaskR = b.constInt(static_cast<int64_t>(smask));
    Reg rmaskR = b.constInt(static_cast<int64_t>(rmask));
    Reg one = b.constInt(1);
    Reg innerN = b.constInt(spec.innerIters);
    // Per-phase offset decorrelates the phases' streaming patterns.
    Reg phaseOff = b.constInt(static_cast<int64_t>(
        phase * 8192 + 128));
    Reg strideS = b.constInt(
        static_cast<int64_t>(spec.streamLoadsPerIter) * 64);
    // Reuse walks stride past the prefetcher (odd line count keeps
    // full coverage of the reuse array), so the reuse loads' latency
    // genuinely depends on L2/L3 residency — the cost PC3D weighs
    // when deciding whether a load tolerates a non-temporal hint.
    Reg strideR = b.constInt(static_cast<int64_t>(
        64ULL * ((2ULL * spec.reuseLoadsPerIter + 5) | 1)));

    Reg cur = b.load(cbase);            // persistent stream cursor
    Reg rcur = b.constInt(0);           // per-call reuse cursor
    Reg sum = b.constInt(0);
    Reg o = b.constInt(0);
    Reg j = b.func().newReg();
    Reg tmp = b.func().newReg();
    Reg x = b.func().newReg();
    b.func().noteReg(j);
    b.func().noteReg(tmp);
    b.func().noteReg(x);

    BlockId outer = b.newBlock();
    BlockId inner = b.newBlock();
    BlockId after_inner = b.newBlock();
    BlockId exit = b.newBlock();
    b.br(outer);

    // --- Outer-loop body (depth 1): a few strided loads.
    b.setBlock(outer);
    if (spec.outerLoads > 0) {
        b.binaryInto(tmp, Opcode::Add, cur, phaseOff);
        b.binaryInto(tmp, Opcode::And, tmp, smaskR);
        b.binaryInto(tmp, Opcode::Add, tmp, sbase);
        for (uint32_t u = 0; u < spec.outerLoads; ++u) {
            b.loadInto(x, tmp, static_cast<int64_t>(u) * 4096);
            emitCompute(b, sum, x, 1);
        }
    }
    b.constInto(j, 0);
    b.br(inner);

    // --- Inner-loop body (max depth): the PC3D search targets.
    b.setBlock(inner);
    if (spec.pointerChase) {
        for (uint32_t u = 0; u < spec.streamLoadsPerIter; ++u) {
            // cur = mem[sbase + (cur & smask)] — dependent chain.
            b.binaryInto(tmp, Opcode::And, cur, smaskR);
            b.binaryInto(tmp, Opcode::Add, tmp, sbase);
            b.loadInto(cur, tmp);
            emitCompute(b, sum, cur, spec.aluPerLoad);
        }
    } else if (spec.streamLoadsPerIter > 0) {
        b.binaryInto(tmp, Opcode::And, cur, smaskR);
        b.binaryInto(tmp, Opcode::Add, tmp, sbase);
        for (uint32_t u = 0; u < spec.streamLoadsPerIter; ++u) {
            b.loadInto(x, tmp, static_cast<int64_t>(u) * 64);
            emitCompute(b, sum, x, spec.aluPerLoad);
        }
        b.binaryInto(cur, Opcode::Add, cur, strideS);
    }
    if (spec.reuseLoadsPerIter > 0) {
        b.binaryInto(tmp, Opcode::And, rcur, rmaskR);
        b.binaryInto(tmp, Opcode::Add, tmp, rbase);
        for (uint32_t u = 0; u < spec.reuseLoadsPerIter; ++u) {
            b.loadInto(x, tmp, static_cast<int64_t>(u) * 64);
            emitCompute(b, sum, x, spec.aluPerLoad);
        }
        b.binaryInto(rcur, Opcode::Add, rcur, strideR);
    }
    b.binaryInto(j, Opcode::Add, j, one);
    Reg c1 = b.cmpLt(j, innerN);
    b.condBr(c1, inner, after_inner);

    b.setBlock(after_inner);
    b.binaryInto(o, Opcode::Add, o, one);
    Reg c2 = b.cmpLt(o, iters);
    b.condBr(c2, outer, exit);

    b.setBlock(exit);
    b.store(cbase, cur);
    b.store(kbase, sum);
    b.ret();
}

/** Cold padding function: loads that are never executed. */
void
buildCold(IRBuilder &b, uint32_t index, uint32_t num_loads,
          ir::GlobalId stream)
{
    b.startFunction(strformat("cold_%u", index), 0);
    Reg base = b.globalAddr(stream);
    Reg sum = b.constInt(0);
    Reg x = b.func().newReg();
    b.func().noteReg(x);
    for (uint32_t u = 0; u < num_loads; ++u) {
        b.loadInto(x, base, static_cast<int64_t>(u) * 64);
        b.binaryInto(sum, Opcode::Add, sum, x);
    }
    b.ret();
}

/** The phase-cycling dispatcher. */
void
buildMain(IRBuilder &b, const BatchSpec &spec,
          const std::vector<ir::FuncId> &hot, ir::FuncId init_fn)
{
    b.startFunction("main", 0);
    if (init_fn != ir::kInvalidId)
        b.callVoid(init_fn);
    Reg outerN = b.constInt(spec.outerIters);
    Reg callsN = b.constInt(static_cast<int64_t>(spec.callsPerPhase));
    Reg phasesN = b.constInt(spec.phases);
    Reg one = b.constInt(1);
    Reg p = b.constInt(0);
    Reg rep = b.constInt(0);

    BlockId loop = b.newBlock();
    BlockId join = b.newBlock();
    BlockId advance = b.newBlock();
    b.br(loop);

    // Dispatch chain: if (p == k) call hot_k.
    std::vector<BlockId> checks;
    std::vector<BlockId> calls;
    for (uint32_t k = 0; k < spec.phases; ++k) {
        checks.push_back(k == 0 ? loop : b.newBlock());
        calls.push_back(b.newBlock());
    }
    for (uint32_t k = 0; k < spec.phases; ++k) {
        b.setBlock(checks[k]);
        if (k + 1 < spec.phases) {
            Reg kc = b.constInt(k);
            Reg c = b.cmpEq(p, kc);
            b.condBr(c, calls[k], checks[k + 1]);
        } else {
            b.br(calls[k]);
        }
        b.setBlock(calls[k]);
        b.callVoid(hot[k], {outerN});
        b.br(join);
    }

    b.setBlock(join);
    b.binaryInto(rep, Opcode::Add, rep, one);
    Reg c = b.cmpLt(rep, callsN);
    b.condBr(c, loop, advance);

    b.setBlock(advance);
    b.constInto(rep, 0);
    b.binaryInto(p, Opcode::Add, p, one);
    b.binaryInto(p, Opcode::Mod, p, phasesN);
    b.br(loop);
}

} // namespace

ir::Module
buildBatch(const BatchSpec &spec)
{
    checkPow2(spec.streamBytes, "streamBytes");
    checkPow2(spec.reuseBytes, "reuseBytes");
    if (spec.phases == 0)
        fatal("buildBatch: %s needs at least one phase",
              spec.name.c_str());

    ir::Module module(spec.name);
    // Slack past the masked index covers the unrolled imm offsets.
    uint64_t slack = 64ULL * 64 + 8192;
    ir::GlobalId stream =
        module.addGlobal("stream", spec.streamBytes + slack);
    ir::GlobalId reuse =
        module.addGlobal("reuse", spec.reuseBytes + slack);
    ir::GlobalId cursor = module.addGlobal("cursor", 8);
    ir::GlobalId sink = module.addGlobal("sink", 8);

    IRBuilder b(module);

    ir::FuncId init_fn = ir::kInvalidId;
    if (spec.pointerChase) {
        buildChaseInit(b, stream, spec.streamBytes / 8);
        init_fn = module.findFunction("init")->id();
    }

    std::vector<ir::FuncId> hot;
    for (uint32_t p = 0; p < spec.phases; ++p) {
        buildHot(b, spec, p, stream, reuse, cursor, sink);
        hot.push_back(
            module.findFunction(strformat("hot_%u", p))->id());
    }

    buildMain(b, spec, hot, init_fn);

    // Cold padding to the target static load count.
    if (spec.targetStaticLoads > 0) {
        size_t have = 0;
        for (ir::FuncId f = 0; f < module.numFunctions(); ++f)
            have += module.function(f).loadCount();
        uint32_t index = 0;
        while (have < spec.targetStaticLoads) {
            auto want = static_cast<uint32_t>(std::min<uint64_t>(
                spec.coldLoadsPerFunc, spec.targetStaticLoads - have));
            buildCold(b, index++, want, stream);
            have += want;
        }
    }

    module.renumberLoads();
    ir::verifyOrDie(module);
    return module;
}

} // namespace workloads
} // namespace protean
