/**
 * @file
 * Textual IR dumping, for debugging and golden tests.
 */

#ifndef PROTEAN_IR_PRINTER_H
#define PROTEAN_IR_PRINTER_H

#include <string>

#include "ir/module.h"

namespace protean {
namespace ir {

/** Render one instruction as text. */
std::string toString(const Instruction &inst);

/** Render one function as text. */
std::string toString(const Function &fn);

/** Render a whole module as text. */
std::string toString(const Module &module);

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_PRINTER_H
