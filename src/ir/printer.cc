#include "ir/printer.h"

#include "support/logging.h"

namespace protean {
namespace ir {

std::string
toString(const Instruction &inst)
{
    std::string s = opcodeName(inst.op);
    if (inst.hasDest())
        s = strformat("r%u = %s", inst.dest, s.c_str());
    switch (inst.op) {
      case Opcode::ConstInt:
        s += strformat(" %lld", static_cast<long long>(inst.imm));
        break;
      case Opcode::GlobalAddr:
        s += strformat(" @g%lld", static_cast<long long>(inst.imm));
        break;
      case Opcode::Load:
        s += strformat(" [r%u%+lld]", inst.srcs[0],
                       static_cast<long long>(inst.imm));
        if (inst.loadId != kInvalidId)
            s += strformat(" ; load#%u", inst.loadId);
        break;
      case Opcode::Store:
        s += strformat(" [r%u%+lld], r%u", inst.srcs[0],
                       static_cast<long long>(inst.imm), inst.srcs[1]);
        break;
      case Opcode::Br:
        s += strformat(" bb%u", inst.targets[0]);
        break;
      case Opcode::CondBr:
        s += strformat(" r%u, bb%u, bb%u", inst.srcs[0],
                       inst.targets[0], inst.targets[1]);
        break;
      case Opcode::Call:
        s += strformat(" f%u(", inst.callee);
        for (size_t i = 0; i < inst.srcs.size(); ++i)
            s += strformat("%sr%u", i ? ", " : "", inst.srcs[i]);
        s += ")";
        break;
      case Opcode::Ret:
        if (!inst.srcs.empty())
            s += strformat(" r%u", inst.srcs[0]);
        break;
      default:
        for (size_t i = 0; i < inst.srcs.size(); ++i)
            s += strformat("%s r%u", i ? "," : "", inst.srcs[i]);
        break;
    }
    return s;
}

std::string
toString(const Function &fn)
{
    std::string s = strformat("func %s(%u) regs=%u {\n",
                              fn.name().c_str(), fn.numParams(),
                              fn.numRegs());
    for (const auto &bb : fn.blocks()) {
        s += strformat("  bb%u:\n", bb.id);
        for (const auto &inst : bb.insts)
            s += "    " + toString(inst) + "\n";
    }
    s += "}\n";
    return s;
}

std::string
toString(const Module &module)
{
    std::string s = strformat("module %s\n", module.name().c_str());
    for (const auto &g : module.globals()) {
        s += strformat("global @g%u %s [%llu bytes]\n", g.id,
                       g.name.c_str(),
                       static_cast<unsigned long long>(g.sizeBytes));
    }
    for (FuncId f = 0; f < module.numFunctions(); ++f)
        s += toString(module.function(f));
    return s;
}

} // namespace ir
} // namespace protean
