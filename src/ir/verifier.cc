#include "ir/verifier.h"

#include "support/logging.h"

namespace protean {
namespace ir {

namespace {

class Checker
{
  public:
    explicit Checker(const Module &module, std::vector<std::string> *out)
        : module_(module), out_(out) {}

    bool
    run()
    {
        for (FuncId f = 0; f < module_.numFunctions(); ++f)
            checkFunction(module_.function(f));
        return ok_;
    }

  private:
    const Module &module_;
    std::vector<std::string> *out_;
    bool ok_ = true;

    void
    report(const Function &fn, BlockId bb, const std::string &msg)
    {
        ok_ = false;
        if (out_) {
            out_->push_back(strformat("%s: block %u: %s",
                                      fn.name().c_str(), bb, msg.c_str()));
        }
    }

    void
    checkFunction(const Function &fn)
    {
        if (fn.numBlocks() == 0) {
            report(fn, 0, "function has no blocks");
            return;
        }
        int ret_arity = -1; // -1 unknown, else 0/1
        for (const auto &bb : fn.blocks()) {
            if (bb.insts.empty()) {
                report(fn, bb.id, "empty block");
                continue;
            }
            for (size_t k = 0; k < bb.insts.size(); ++k) {
                const Instruction &inst = bb.insts[k];
                bool last = (k + 1 == bb.insts.size());
                if (inst.isTerminator() != last) {
                    report(fn, bb.id, strformat(
                        "%s at %zu: terminator placement",
                        opcodeName(inst.op), k));
                }
                checkInstruction(fn, bb.id, inst, ret_arity);
            }
        }
    }

    void
    checkInstruction(const Function &fn, BlockId bb,
                     const Instruction &inst, int &ret_arity)
    {
        // Register bounds.
        if (inst.hasDest() && inst.dest >= fn.numRegs())
            report(fn, bb, strformat("%s: dest r%u out of range",
                                     opcodeName(inst.op), inst.dest));
        for (Reg r : inst.srcs) {
            if (r >= fn.numRegs())
                report(fn, bb, strformat("%s: src r%u out of range",
                                         opcodeName(inst.op), r));
        }

        // Operand arity.
        uint32_t want = expectedSrcCount(inst.op);
        if (want != kInvalidId && inst.srcs.size() != want) {
            report(fn, bb, strformat("%s: expected %u srcs, got %zu",
                                     opcodeName(inst.op), want,
                                     inst.srcs.size()));
        }

        switch (inst.op) {
          case Opcode::GlobalAddr:
            if (inst.imm < 0 ||
                static_cast<uint64_t>(inst.imm) >= module_.numGlobals()) {
                report(fn, bb, strformat("gaddr: bad global %lld",
                                         static_cast<long long>(inst.imm)));
            }
            break;
          case Opcode::Br:
            if (inst.targets[0] >= fn.numBlocks())
                report(fn, bb, "br: bad target");
            break;
          case Opcode::CondBr:
            if (inst.targets[0] >= fn.numBlocks() ||
                inst.targets[1] >= fn.numBlocks()) {
                report(fn, bb, "condbr: bad target");
            }
            break;
          case Opcode::Call: {
            if (inst.callee >= module_.numFunctions()) {
                report(fn, bb, strformat("call: bad callee %u",
                                         inst.callee));
                break;
            }
            const Function &callee = module_.function(inst.callee);
            if (inst.srcs.size() != callee.numParams()) {
                report(fn, bb, strformat(
                    "call %s: %zu args for %u params",
                    callee.name().c_str(), inst.srcs.size(),
                    callee.numParams()));
            }
            break;
          }
          case Opcode::Ret: {
            int arity = static_cast<int>(inst.srcs.size());
            if (arity > 1) {
                report(fn, bb, "ret: more than one value");
            } else if (ret_arity == -1) {
                ret_arity = arity;
            } else if (ret_arity != arity) {
                report(fn, bb, "ret: inconsistent arity in function");
            }
            break;
          }
          default:
            break;
        }
    }
};

} // namespace

bool
verify(const Module &module, std::vector<std::string> *errors)
{
    Checker checker(module, errors);
    return checker.run();
}

void
verifyOrDie(const Module &module)
{
    std::vector<std::string> errors;
    if (!verify(module, &errors)) {
        panic("IR verification failed for module %s: %s (%zu errors)",
              module.name().c_str(),
              errors.empty() ? "?" : errors.front().c_str(),
              errors.size());
    }
}

} // namespace ir
} // namespace protean
