/**
 * @file
 * Natural-loop detection and nesting depth.
 *
 * PC3D's "only innermost loops" heuristic (paper Section IV-C) prunes
 * every load that is not at the maximum loop depth within its
 * function. LoopInfo supplies per-block depth and per-function
 * maximum depth from the IR, which is exactly the information the
 * paper extracts from the embedded LLVM IR.
 */

#ifndef PROTEAN_IR_LOOPS_H
#define PROTEAN_IR_LOOPS_H

#include <vector>

#include "ir/dominators.h"
#include "ir/function.h"

namespace protean {
namespace ir {

/** One natural loop: a header plus its body blocks. */
struct Loop
{
    BlockId header = kInvalidId;
    /** All blocks in the loop, header included. */
    std::vector<BlockId> blocks;
};

/** Loop structure of one function. */
class LoopInfo
{
  public:
    /** Analyze a function. */
    explicit LoopInfo(const Function &fn);

    /** Detected natural loops (loops sharing a header are merged). */
    const std::vector<Loop> &loops() const { return loops_; }

    /** Loop nesting depth of a block (0 = not in any loop). */
    uint32_t depth(BlockId b) const;

    /** Maximum nesting depth over the whole function. */
    uint32_t maxDepth() const { return maxDepth_; }

    /** True when the block's depth equals the function's maximum and
     *  that maximum is at least 1. */
    bool atMaxDepth(BlockId b) const;

  private:
    std::vector<uint32_t> depth_;
    std::vector<Loop> loops_;
    uint32_t maxDepth_ = 0;
};

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_LOOPS_H
