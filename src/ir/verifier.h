/**
 * @file
 * Structural verification of IR modules.
 *
 * The verifier enforces the invariants the rest of the stack relies
 * on: every block ends in exactly one terminator, every register and
 * block reference is in range, call targets and argument counts
 * match, and Ret arity is consistent within a function.
 */

#ifndef PROTEAN_IR_VERIFIER_H
#define PROTEAN_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/module.h"

namespace protean {
namespace ir {

/**
 * Verify a module.
 * @param module The module to check.
 * @param errors If non-null, receives one message per violation.
 * @return true when the module is well-formed.
 */
bool verify(const Module &module, std::vector<std::string> *errors
            = nullptr);

/** Verify and panic with the first error if malformed. */
void verifyOrDie(const Module &module);

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_VERIFIER_H
