/**
 * @file
 * IR module: functions plus global data.
 */

#ifndef PROTEAN_IR_MODULE_H
#define PROTEAN_IR_MODULE_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace protean {
namespace ir {

/** A named region of zero-initialized global data. */
struct Global
{
    GlobalId id = kInvalidId;
    std::string name;
    /** Size in bytes (word-aligned by the linker). */
    uint64_t sizeBytes = 0;
};

/**
 * A whole-program IR module.
 *
 * Owns functions and globals. Static loads are numbered module-wide
 * by renumberLoads(); that numbering is the coordinate system for
 * PC3D's non-temporal variant bit vectors.
 */
class Module
{
  public:
    explicit Module(std::string name = "module");

    const std::string &name() const { return name_; }

    /** Create a function; the returned reference stays valid. */
    Function &addFunction(const std::string &name, uint32_t num_params);

    /** Create a global data region. */
    GlobalId addGlobal(const std::string &name, uint64_t size_bytes);

    size_t numFunctions() const { return functions_.size(); }
    Function &function(FuncId id);
    const Function &function(FuncId id) const;

    /** Find a function by name; nullptr if absent. */
    Function *findFunction(const std::string &name);
    const Function *findFunction(const std::string &name) const;

    size_t numGlobals() const { return globals_.size(); }
    const Global &global(GlobalId id) const;
    const std::vector<Global> &globals() const { return globals_; }

    /**
     * Assign dense module-wide LoadIds to every Load in function and
     * block order. Returns the total static load count. Must be
     * called after the module is structurally complete and before
     * lowering.
     */
    uint32_t renumberLoads();

    /** Static load count from the last renumberLoads() (0 before). */
    uint32_t numLoads() const { return numLoads_; }

    /** Sum of instructionCount over functions. */
    size_t instructionCount() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<Global> globals_;
    std::unordered_map<std::string, FuncId> funcByName_;
    uint32_t numLoads_ = 0;
};

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_MODULE_H
