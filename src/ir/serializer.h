/**
 * @file
 * Binary (de)serialization of IR modules.
 *
 * This is the payload the protean code compiler compresses and embeds
 * in the program's data region (paper Section III-A2), and that the
 * runtime extracts and re-hydrates to drive online analysis and
 * recompilation. The format is versioned and self-checking.
 */

#ifndef PROTEAN_IR_SERIALIZER_H
#define PROTEAN_IR_SERIALIZER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/module.h"

namespace protean {
namespace ir {

/** Serialize a module to bytes. */
std::vector<uint8_t> serialize(const Module &module);

/**
 * Reconstruct a module from bytes produced by serialize().
 * Panics on malformed input (embedded blobs are produced by this
 * library; corruption indicates an internal error).
 */
std::unique_ptr<Module> deserialize(const std::vector<uint8_t> &bytes);

/** Serialize, then compress (the embedded on-binary form). */
std::vector<uint8_t> serializeCompressed(const Module &module);

/** Decompress, then deserialize. */
std::unique_ptr<Module>
deserializeCompressed(const std::vector<uint8_t> &bytes);

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_SERIALIZER_H
