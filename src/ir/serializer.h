/**
 * @file
 * Binary (de)serialization of IR modules.
 *
 * This is the payload the protean code compiler compresses and embeds
 * in the program's data region (paper Section III-A2), and that the
 * runtime extracts and re-hydrates to drive online analysis and
 * recompilation. The format is versioned and self-checking.
 */

#ifndef PROTEAN_IR_SERIALIZER_H
#define PROTEAN_IR_SERIALIZER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/module.h"

namespace protean {
namespace ir {

/** Serialize a module to bytes. */
std::vector<uint8_t> serialize(const Module &module);

/**
 * Reconstruct a module from bytes produced by serialize().
 * Panics on malformed input (embedded blobs are produced by this
 * library; corruption indicates an internal error).
 */
std::unique_ptr<Module> deserialize(const std::vector<uint8_t> &bytes);

/**
 * Stable 64-bit content hash of one function.
 *
 * Hashes the function's serialized body (params, registers, blocks,
 * instructions — not its name), so two functions with identical
 * content hash equal and the value is reproducible across processes
 * and machines. This is the content-address the fleet compilation
 * service keys its variant cache on: every server running the same
 * binary derives the same hash for the same function.
 */
uint64_t functionHash(const Module &module, FuncId func);

/** Serialize, then compress (the embedded on-binary form). */
std::vector<uint8_t> serializeCompressed(const Module &module);

/** Decompress, then deserialize. */
std::unique_ptr<Module>
deserializeCompressed(const std::vector<uint8_t> &bytes);

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_SERIALIZER_H
