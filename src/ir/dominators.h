/**
 * @file
 * Dominator tree construction.
 *
 * Uses the Cooper-Harvey-Kennedy iterative algorithm over reverse
 * post order. Dominators feed natural-loop detection, which PC3D
 * uses to restrict its variant search to maximum-depth loops.
 */

#ifndef PROTEAN_IR_DOMINATORS_H
#define PROTEAN_IR_DOMINATORS_H

#include <vector>

#include "ir/function.h"

namespace protean {
namespace ir {

/** Immediate-dominator table for one function. */
class DominatorTree
{
  public:
    /** Build for a function (entry = block 0). */
    explicit DominatorTree(const Function &fn);

    /**
     * Immediate dominator of block b; the entry block's idom is
     * itself. Unreachable blocks report kInvalidId.
     */
    BlockId idom(BlockId b) const;

    /** True when a dominates b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

    /** True when block b is reachable from the entry. */
    bool reachable(BlockId b) const;

  private:
    std::vector<BlockId> idom_;
};

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_DOMINATORS_H
