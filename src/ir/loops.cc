#include "ir/loops.h"

#include <algorithm>
#include <map>

#include "support/logging.h"

namespace protean {
namespace ir {

LoopInfo::LoopInfo(const Function &fn)
    : depth_(fn.numBlocks(), 0)
{
    DominatorTree dom(fn);
    auto preds = fn.predecessors();

    // Collect back edges: u -> h where h dominates u.
    // Loops with the same header are merged into a single loop.
    std::map<BlockId, std::vector<BlockId>> latches_by_header;
    for (const auto &bb : fn.blocks()) {
        if (!dom.reachable(bb.id))
            continue;
        for (BlockId succ : bb.successors()) {
            if (dom.dominates(succ, bb.id))
                latches_by_header[succ].push_back(bb.id);
        }
    }

    for (const auto &[header, latches] : latches_by_header) {
        // Natural loop body: header + all blocks that reach a latch
        // without passing through the header (walk predecessors).
        std::vector<uint8_t> in_loop(fn.numBlocks(), 0);
        in_loop[header] = 1;
        std::vector<BlockId> work;
        for (BlockId l : latches) {
            if (!in_loop[l]) {
                in_loop[l] = 1;
                work.push_back(l);
            }
        }
        while (!work.empty()) {
            BlockId b = work.back();
            work.pop_back();
            for (BlockId p : preds[b]) {
                if (!in_loop[p] && dom.reachable(p)) {
                    in_loop[p] = 1;
                    work.push_back(p);
                }
            }
        }
        Loop loop;
        loop.header = header;
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            if (in_loop[b]) {
                loop.blocks.push_back(b);
                ++depth_[b];
            }
        }
        loops_.push_back(std::move(loop));
    }

    for (uint32_t d : depth_)
        maxDepth_ = std::max(maxDepth_, d);
}

uint32_t
LoopInfo::depth(BlockId b) const
{
    if (b >= depth_.size())
        panic("LoopInfo: bad block %u", b);
    return depth_[b];
}

bool
LoopInfo::atMaxDepth(BlockId b) const
{
    return maxDepth_ >= 1 && depth(b) == maxDepth_;
}

} // namespace ir
} // namespace protean
