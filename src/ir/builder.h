/**
 * @file
 * Convenience builder for constructing IR.
 *
 * IRBuilder tracks an insertion point (a basic block) and provides
 * one call per opcode, allocating destination registers on demand.
 * Workload generators and tests construct all programs through it.
 */

#ifndef PROTEAN_IR_BUILDER_H
#define PROTEAN_IR_BUILDER_H

#include "ir/module.h"

namespace protean {
namespace ir {

/** Streaming IR constructor bound to one function at a time. */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module);

    /** Create a function and make its entry block current. */
    Function &startFunction(const std::string &name, uint32_t num_params);

    /** The function currently being built. */
    Function &func();

    /** Create a new block in the current function. */
    BlockId newBlock();

    /** Move the insertion point. */
    void setBlock(BlockId id);

    /** Current insertion block. */
    BlockId currentBlock() const { return curBlock_; }

    Reg constInt(int64_t value);
    Reg globalAddr(GlobalId g);
    Reg mov(Reg src);
    Reg binary(Opcode op, Reg a, Reg b);
    Reg add(Reg a, Reg b) { return binary(Opcode::Add, a, b); }
    Reg sub(Reg a, Reg b) { return binary(Opcode::Sub, a, b); }
    Reg mul(Reg a, Reg b) { return binary(Opcode::Mul, a, b); }
    Reg div(Reg a, Reg b) { return binary(Opcode::Div, a, b); }
    Reg mod(Reg a, Reg b) { return binary(Opcode::Mod, a, b); }
    Reg andOp(Reg a, Reg b) { return binary(Opcode::And, a, b); }
    Reg orOp(Reg a, Reg b) { return binary(Opcode::Or, a, b); }
    Reg xorOp(Reg a, Reg b) { return binary(Opcode::Xor, a, b); }
    Reg shl(Reg a, Reg b) { return binary(Opcode::Shl, a, b); }
    Reg shr(Reg a, Reg b) { return binary(Opcode::Shr, a, b); }
    Reg cmpEq(Reg a, Reg b) { return binary(Opcode::CmpEq, a, b); }
    Reg cmpNe(Reg a, Reg b) { return binary(Opcode::CmpNe, a, b); }
    Reg cmpLt(Reg a, Reg b) { return binary(Opcode::CmpLt, a, b); }
    Reg cmpLe(Reg a, Reg b) { return binary(Opcode::CmpLe, a, b); }

    /** dest = mem64[addr + offset] */
    Reg load(Reg addr, int64_t offset = 0);
    /** mem64[addr + offset] = value */
    void store(Reg addr, Reg value, int64_t offset = 0);

    void br(BlockId target);
    void condBr(Reg cond, BlockId if_true, BlockId if_false);

    /** Call with a result register. */
    Reg call(FuncId callee, const std::vector<Reg> &args = {});
    /** Call discarding any result. */
    void callVoid(FuncId callee, const std::vector<Reg> &args = {});

    void ret();
    void ret(Reg value);
    void nop();

    /** Existing-destination variants (reuse a register). */
    void movInto(Reg dest, Reg src);
    void constInto(Reg dest, int64_t value);
    void binaryInto(Reg dest, Opcode op, Reg a, Reg b);
    void loadInto(Reg dest, Reg addr, int64_t offset = 0);

  private:
    Module &module_;
    Function *fn_ = nullptr;
    BlockId curBlock_ = kInvalidId;

    Instruction &emit(Instruction inst);
};

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_BUILDER_H
