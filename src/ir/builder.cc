#include "ir/builder.h"

#include "support/logging.h"

namespace protean {
namespace ir {

IRBuilder::IRBuilder(Module &module)
    : module_(module)
{
}

Function &
IRBuilder::startFunction(const std::string &name, uint32_t num_params)
{
    fn_ = &module_.addFunction(name, num_params);
    curBlock_ = fn_->newBlock();
    return *fn_;
}

Function &
IRBuilder::func()
{
    if (!fn_)
        panic("IRBuilder: no current function");
    return *fn_;
}

BlockId
IRBuilder::newBlock()
{
    return func().newBlock();
}

void
IRBuilder::setBlock(BlockId id)
{
    func().block(id); // bounds check
    curBlock_ = id;
}

Instruction &
IRBuilder::emit(Instruction inst)
{
    BasicBlock &bb = func().block(curBlock_);
    if (!bb.insts.empty() && bb.insts.back().isTerminator())
        panic("IRBuilder: emitting %s after terminator in block %u of %s",
              opcodeName(inst.op), curBlock_, func().name().c_str());
    bb.insts.push_back(std::move(inst));
    return bb.insts.back();
}

Reg
IRBuilder::constInt(int64_t value)
{
    Reg d = func().newReg();
    constInto(d, value);
    return d;
}

void
IRBuilder::constInto(Reg dest, int64_t value)
{
    Instruction i;
    i.op = Opcode::ConstInt;
    i.dest = dest;
    i.imm = value;
    func().noteReg(dest);
    emit(std::move(i));
}

Reg
IRBuilder::globalAddr(GlobalId g)
{
    module_.global(g); // bounds check
    Instruction i;
    i.op = Opcode::GlobalAddr;
    i.dest = func().newReg();
    i.imm = static_cast<int64_t>(g);
    Reg d = i.dest;
    emit(std::move(i));
    return d;
}

Reg
IRBuilder::mov(Reg src)
{
    Reg d = func().newReg();
    movInto(d, src);
    return d;
}

void
IRBuilder::movInto(Reg dest, Reg src)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.dest = dest;
    i.srcs = {src};
    func().noteReg(dest);
    emit(std::move(i));
}

Reg
IRBuilder::binary(Opcode op, Reg a, Reg b)
{
    Reg d = func().newReg();
    binaryInto(d, op, a, b);
    return d;
}

void
IRBuilder::binaryInto(Reg dest, Opcode op, Reg a, Reg b)
{
    Instruction probe;
    probe.op = op;
    if (!probe.isBinaryAlu())
        panic("IRBuilder::binary: %s is not a binary ALU op",
              opcodeName(op));
    Instruction i;
    i.op = op;
    i.dest = dest;
    i.srcs = {a, b};
    func().noteReg(dest);
    emit(std::move(i));
}

Reg
IRBuilder::load(Reg addr, int64_t offset)
{
    Reg d = func().newReg();
    loadInto(d, addr, offset);
    return d;
}

void
IRBuilder::loadInto(Reg dest, Reg addr, int64_t offset)
{
    Instruction i;
    i.op = Opcode::Load;
    i.dest = dest;
    i.srcs = {addr};
    i.imm = offset;
    func().noteReg(dest);
    emit(std::move(i));
}

void
IRBuilder::store(Reg addr, Reg value, int64_t offset)
{
    Instruction i;
    i.op = Opcode::Store;
    i.srcs = {addr, value};
    i.imm = offset;
    emit(std::move(i));
}

void
IRBuilder::br(BlockId target)
{
    Instruction i;
    i.op = Opcode::Br;
    i.targets[0] = target;
    emit(std::move(i));
}

void
IRBuilder::condBr(Reg cond, BlockId if_true, BlockId if_false)
{
    Instruction i;
    i.op = Opcode::CondBr;
    i.srcs = {cond};
    i.targets[0] = if_true;
    i.targets[1] = if_false;
    emit(std::move(i));
}

Reg
IRBuilder::call(FuncId callee, const std::vector<Reg> &args)
{
    Instruction i;
    i.op = Opcode::Call;
    i.dest = func().newReg();
    i.srcs = args;
    i.callee = callee;
    Reg d = i.dest;
    emit(std::move(i));
    return d;
}

void
IRBuilder::callVoid(FuncId callee, const std::vector<Reg> &args)
{
    Instruction i;
    i.op = Opcode::Call;
    i.srcs = args;
    i.callee = callee;
    emit(std::move(i));
}

void
IRBuilder::ret()
{
    Instruction i;
    i.op = Opcode::Ret;
    emit(std::move(i));
}

void
IRBuilder::ret(Reg value)
{
    Instruction i;
    i.op = Opcode::Ret;
    i.srcs = {value};
    emit(std::move(i));
}

void
IRBuilder::nop()
{
    Instruction i;
    i.op = Opcode::Nop;
    emit(std::move(i));
}

} // namespace ir
} // namespace protean
