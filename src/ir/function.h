/**
 * @file
 * IR basic blocks and functions.
 */

#ifndef PROTEAN_IR_FUNCTION_H
#define PROTEAN_IR_FUNCTION_H

#include <string>
#include <vector>

#include "ir/instruction.h"

namespace protean {
namespace ir {

/** A straight-line sequence of instructions ending in a terminator. */
struct BasicBlock
{
    BlockId id = kInvalidId;
    std::vector<Instruction> insts;

    /** The terminator (last instruction); panics if absent. */
    const Instruction &terminator() const;

    /** Successor block ids implied by the terminator. */
    std::vector<BlockId> successors() const;
};

/**
 * An IR function: a CFG of basic blocks over a private virtual
 * register file. Parameters arrive in registers 0..numParams-1.
 * Block 0 is always the entry block.
 */
class Function
{
  public:
    Function(FuncId id, std::string name, uint32_t num_params);

    FuncId id() const { return id_; }
    const std::string &name() const { return name_; }
    uint32_t numParams() const { return numParams_; }

    /** Number of virtual registers in use (params included). */
    uint32_t numRegs() const { return numRegs_; }

    /** Raise the register count to cover reg (used by deserializer). */
    void noteReg(Reg reg);

    /** Allocate a fresh virtual register. */
    Reg newReg() { return numRegs_++; }

    /** Append a new empty basic block and return its id. */
    BlockId newBlock();

    size_t numBlocks() const { return blocks_.size(); }
    BasicBlock &block(BlockId id);
    const BasicBlock &block(BlockId id) const;

    std::vector<BasicBlock> &blocks() { return blocks_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Predecessor lists for every block (recomputed on call). */
    std::vector<std::vector<BlockId>> predecessors() const;

    /** Blocks in reverse post order from the entry. */
    std::vector<BlockId> reversePostOrder() const;

    /** Total static instruction count. */
    size_t instructionCount() const;

    /** Static Load instruction count. */
    size_t loadCount() const;

  private:
    FuncId id_;
    std::string name_;
    uint32_t numParams_;
    uint32_t numRegs_;
    std::vector<BasicBlock> blocks_;
};

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_FUNCTION_H
