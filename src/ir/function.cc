#include "ir/function.h"

#include <algorithm>

#include "support/logging.h"

namespace protean {
namespace ir {

const Instruction &
BasicBlock::terminator() const
{
    if (insts.empty() || !insts.back().isTerminator())
        panic("block %u has no terminator", id);
    return insts.back();
}

std::vector<BlockId>
BasicBlock::successors() const
{
    const Instruction &term = terminator();
    switch (term.op) {
      case Opcode::Br:
        return {term.targets[0]};
      case Opcode::CondBr:
        return {term.targets[0], term.targets[1]};
      case Opcode::Ret:
        return {};
      default:
        panic("bad terminator in block %u", id);
    }
}

Function::Function(FuncId id, std::string name, uint32_t num_params)
    : id_(id), name_(std::move(name)), numParams_(num_params),
      numRegs_(num_params)
{
}

void
Function::noteReg(Reg reg)
{
    if (reg != kInvalidReg && reg >= numRegs_)
        numRegs_ = reg + 1;
}

BlockId
Function::newBlock()
{
    BlockId id = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(BasicBlock{id, {}});
    return id;
}

BasicBlock &
Function::block(BlockId id)
{
    if (id >= blocks_.size())
        panic("function %s: bad block id %u", name_.c_str(), id);
    return blocks_[id];
}

const BasicBlock &
Function::block(BlockId id) const
{
    if (id >= blocks_.size())
        panic("function %s: bad block id %u", name_.c_str(), id);
    return blocks_[id];
}

std::vector<std::vector<BlockId>>
Function::predecessors() const
{
    std::vector<std::vector<BlockId>> preds(blocks_.size());
    for (const auto &bb : blocks_) {
        for (BlockId succ : bb.successors())
            preds[succ].push_back(bb.id);
    }
    return preds;
}

std::vector<BlockId>
Function::reversePostOrder() const
{
    std::vector<uint8_t> state(blocks_.size(), 0); // 0=new 1=open 2=done
    std::vector<BlockId> post;
    post.reserve(blocks_.size());

    // Iterative DFS to avoid deep recursion on long chains.
    std::vector<std::pair<BlockId, size_t>> stack;
    if (blocks_.empty())
        return {};
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[bb, idx] = stack.back();
        auto succs = blocks_[bb].successors();
        if (idx < succs.size()) {
            BlockId next = succs[idx++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[bb] = 2;
            post.push_back(bb);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb.insts.size();
    return n;
}

size_t
Function::loadCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_) {
        for (const auto &inst : bb.insts) {
            if (inst.op == Opcode::Load)
                ++n;
        }
    }
    return n;
}

} // namespace ir
} // namespace protean
