#include "ir/dominators.h"

#include "support/logging.h"

namespace protean {
namespace ir {

DominatorTree::DominatorTree(const Function &fn)
    : idom_(fn.numBlocks(), kInvalidId)
{
    if (fn.numBlocks() == 0)
        return;

    std::vector<BlockId> rpo = fn.reversePostOrder();
    std::vector<uint32_t> rpo_index(fn.numBlocks(), kInvalidId);
    for (uint32_t i = 0; i < rpo.size(); ++i)
        rpo_index[rpo[i]] = i;

    auto preds = fn.predecessors();

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = idom_[a];
            while (rpo_index[b] > rpo_index[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[rpo[0]] = rpo[0];
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < rpo.size(); ++i) {
            BlockId b = rpo[i];
            BlockId new_idom = kInvalidId;
            for (BlockId p : preds[b]) {
                if (rpo_index[p] == kInvalidId || idom_[p] == kInvalidId)
                    continue; // unreachable or not yet processed
                new_idom = (new_idom == kInvalidId)
                    ? p : intersect(p, new_idom);
            }
            if (new_idom != kInvalidId && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

BlockId
DominatorTree::idom(BlockId b) const
{
    if (b >= idom_.size())
        panic("DominatorTree: bad block %u", b);
    return idom_[b];
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    if (!reachable(a) || !reachable(b))
        return false;
    BlockId cur = b;
    for (;;) {
        if (cur == a)
            return true;
        BlockId up = idom_[cur];
        if (up == cur)
            return false; // reached entry
        cur = up;
    }
}

bool
DominatorTree::reachable(BlockId b) const
{
    return b < idom_.size() && idom_[b] != kInvalidId;
}

} // namespace ir
} // namespace protean
