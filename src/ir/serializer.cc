#include "ir/serializer.h"

#include "support/bytebuffer.h"
#include "support/compression.h"
#include "support/logging.h"

namespace protean {
namespace ir {

namespace {

constexpr uint32_t kMagic = 0x50436972; // "PCir"
constexpr uint32_t kVersion = 2;

void
writeInstruction(ByteWriter &w, const Instruction &inst)
{
    w.writeByte(static_cast<uint8_t>(inst.op));
    w.writeVarUint(inst.dest == kInvalidReg ? 0 : inst.dest + 1);
    w.writeVarUint(inst.srcs.size());
    for (Reg r : inst.srcs)
        w.writeVarUint(r);
    w.writeVarInt(inst.imm);
    w.writeVarUint(inst.targets[0] == kInvalidId ? 0 : inst.targets[0] + 1);
    w.writeVarUint(inst.targets[1] == kInvalidId ? 0 : inst.targets[1] + 1);
    w.writeVarUint(inst.callee == kInvalidId ? 0 : inst.callee + 1);
    w.writeVarUint(inst.loadId == kInvalidId ? 0 : inst.loadId + 1);
}

Instruction
readInstruction(ByteReader &r)
{
    Instruction inst;
    uint8_t op = r.readByte();
    if (op >= kNumOpcodes)
        panic("IR deserialize: bad opcode %u", op);
    inst.op = static_cast<Opcode>(op);
    uint64_t dest = r.readVarUint();
    inst.dest = dest == 0 ? kInvalidReg : static_cast<Reg>(dest - 1);
    uint64_t nsrcs = r.readVarUint();
    if (nsrcs > 64)
        panic("IR deserialize: absurd src count %llu",
              static_cast<unsigned long long>(nsrcs));
    inst.srcs.resize(static_cast<size_t>(nsrcs));
    for (auto &s : inst.srcs)
        s = static_cast<Reg>(r.readVarUint());
    inst.imm = r.readVarInt();
    uint64_t t0 = r.readVarUint();
    uint64_t t1 = r.readVarUint();
    inst.targets[0] = t0 == 0 ? kInvalidId : static_cast<BlockId>(t0 - 1);
    inst.targets[1] = t1 == 0 ? kInvalidId : static_cast<BlockId>(t1 - 1);
    uint64_t callee = r.readVarUint();
    inst.callee = callee == 0 ? kInvalidId
        : static_cast<FuncId>(callee - 1);
    uint64_t load_id = r.readVarUint();
    inst.loadId = load_id == 0 ? kInvalidId
        : static_cast<LoadId>(load_id - 1);
    return inst;
}

/** Serialize a function's body (everything but its name). */
void
writeFunctionBody(ByteWriter &w, const Function &fn)
{
    w.writeVarUint(fn.numParams());
    w.writeVarUint(fn.numRegs());
    w.writeVarUint(fn.numBlocks());
    for (const auto &bb : fn.blocks()) {
        w.writeVarUint(bb.insts.size());
        for (const auto &inst : bb.insts)
            writeInstruction(w, inst);
    }
}

} // namespace

uint64_t
functionHash(const Module &module, FuncId func)
{
    ByteWriter w;
    writeFunctionBody(w, module.function(func));
    // FNV-1a over the serialized body: stable across processes, so
    // identical binaries on different servers agree on the hash.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint8_t b : w.bytes()) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::vector<uint8_t>
serialize(const Module &module)
{
    ByteWriter w;
    w.writeFixed64((static_cast<uint64_t>(kMagic) << 32) | kVersion);
    w.writeString(module.name());

    w.writeVarUint(module.numGlobals());
    for (const auto &g : module.globals()) {
        w.writeString(g.name);
        w.writeVarUint(g.sizeBytes);
    }

    w.writeVarUint(module.numFunctions());
    for (FuncId f = 0; f < module.numFunctions(); ++f) {
        const Function &fn = module.function(f);
        w.writeString(fn.name());
        writeFunctionBody(w, fn);
    }
    return w.take();
}

std::unique_ptr<Module>
deserialize(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    uint64_t header = r.readFixed64();
    if ((header >> 32) != kMagic)
        panic("IR deserialize: bad magic 0x%llx",
              static_cast<unsigned long long>(header >> 32));
    if ((header & 0xffffffff) != kVersion)
        panic("IR deserialize: unsupported version %llu",
              static_cast<unsigned long long>(header & 0xffffffff));

    auto module = std::make_unique<Module>(r.readString());

    uint64_t nglobals = r.readVarUint();
    for (uint64_t i = 0; i < nglobals; ++i) {
        std::string name = r.readString();
        uint64_t size = r.readVarUint();
        module->addGlobal(name, size);
    }

    uint64_t nfuncs = r.readVarUint();
    for (uint64_t i = 0; i < nfuncs; ++i) {
        std::string name = r.readString();
        uint32_t nparams = static_cast<uint32_t>(r.readVarUint());
        uint32_t nregs = static_cast<uint32_t>(r.readVarUint());
        Function &fn = module->addFunction(name, nparams);
        if (nregs > 0)
            fn.noteReg(nregs - 1);
        uint64_t nblocks = r.readVarUint();
        for (uint64_t b = 0; b < nblocks; ++b) {
            BlockId bid = fn.newBlock();
            uint64_t ninsts = r.readVarUint();
            auto &insts = fn.block(bid).insts;
            insts.reserve(static_cast<size_t>(ninsts));
            for (uint64_t k = 0; k < ninsts; ++k)
                insts.push_back(readInstruction(r));
        }
    }

    // Recover the module-wide load numbering without renumbering (the
    // embedded blob already carries LoadIds; count them).
    uint32_t max_load = 0;
    bool any = false;
    for (FuncId f = 0; f < module->numFunctions(); ++f) {
        for (const auto &bb : module->function(f).blocks()) {
            for (const auto &inst : bb.insts) {
                if (inst.op == Opcode::Load &&
                    inst.loadId != kInvalidId) {
                    any = true;
                    max_load = std::max(max_load, inst.loadId);
                }
            }
        }
    }
    if (any)
        module->renumberLoads(); // deterministic order == stored order
    return module;
}

std::vector<uint8_t>
serializeCompressed(const Module &module)
{
    return compress(serialize(module));
}

std::unique_ptr<Module>
deserializeCompressed(const std::vector<uint8_t> &bytes)
{
    return deserialize(decompress(bytes));
}

} // namespace ir
} // namespace protean
