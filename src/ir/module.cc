#include "ir/module.h"

#include "support/logging.h"

namespace protean {
namespace ir {

Module::Module(std::string name)
    : name_(std::move(name))
{
}

Function &
Module::addFunction(const std::string &name, uint32_t num_params)
{
    if (funcByName_.count(name))
        panic("module %s: duplicate function %s", name_.c_str(),
              name.c_str());
    FuncId id = static_cast<FuncId>(functions_.size());
    functions_.push_back(std::make_unique<Function>(id, name, num_params));
    funcByName_[name] = id;
    return *functions_.back();
}

GlobalId
Module::addGlobal(const std::string &name, uint64_t size_bytes)
{
    GlobalId id = static_cast<GlobalId>(globals_.size());
    globals_.push_back(Global{id, name, size_bytes});
    return id;
}

Function &
Module::function(FuncId id)
{
    if (id >= functions_.size())
        panic("module %s: bad function id %u", name_.c_str(), id);
    return *functions_[id];
}

const Function &
Module::function(FuncId id) const
{
    if (id >= functions_.size())
        panic("module %s: bad function id %u", name_.c_str(), id);
    return *functions_[id];
}

Function *
Module::findFunction(const std::string &name)
{
    auto it = funcByName_.find(name);
    return it == funcByName_.end() ? nullptr : functions_[it->second].get();
}

const Function *
Module::findFunction(const std::string &name) const
{
    auto it = funcByName_.find(name);
    return it == funcByName_.end() ? nullptr : functions_[it->second].get();
}

const Global &
Module::global(GlobalId id) const
{
    if (id >= globals_.size())
        panic("module %s: bad global id %u", name_.c_str(), id);
    return globals_[id];
}

uint32_t
Module::renumberLoads()
{
    uint32_t next = 0;
    for (auto &fn : functions_) {
        for (auto &bb : fn->blocks()) {
            for (auto &inst : bb.insts) {
                if (inst.op == Opcode::Load)
                    inst.loadId = next++;
            }
        }
    }
    numLoads_ = next;
    return next;
}

size_t
Module::instructionCount() const
{
    size_t n = 0;
    for (const auto &fn : functions_)
        n += fn->instructionCount();
    return n;
}

} // namespace ir
} // namespace protean
