#include "ir/instruction.h"

#include "support/logging.h"

namespace protean {
namespace ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt: return "const";
      case Opcode::GlobalAddr: return "gaddr";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Mod: return "mod";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Nop: return "nop";
    }
    panic("opcodeName: bad opcode %d", static_cast<int>(op));
}

bool
Instruction::isTerminator() const
{
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

bool
Instruction::hasDest() const
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::GlobalAddr:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::Load:
        return true;
      case Opcode::Call:
        return dest != kInvalidReg;
      default:
        return false;
    }
}

bool
Instruction::isBinaryAlu() const
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Mod:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
        return true;
      default:
        return false;
    }
}

uint32_t
expectedSrcCount(Opcode op)
{
    switch (op) {
      case Opcode::ConstInt:
      case Opcode::GlobalAddr:
      case Opcode::Nop:
      case Opcode::Br:
        return 0;
      case Opcode::Mov:
      case Opcode::Load:
      case Opcode::CondBr:
        return 1;
      case Opcode::Store:
        return 2;
      case Opcode::Ret:
        return kInvalidId; // 0 or 1
      case Opcode::Call:
        return kInvalidId; // variadic
      default:
        return 2; // binary ALU
    }
}

} // namespace ir
} // namespace protean
