/**
 * @file
 * IR instruction definitions.
 *
 * The protean IR is a register-transfer IR (not SSA): each function
 * owns a set of virtual registers that instructions read and write.
 * All values are 64-bit unsigned words. This deliberately small IR
 * carries exactly the high-level information the paper's runtime
 * needs from LLVM IR: static load identity (for non-temporal hint
 * masks), control-flow structure (for loop nesting depth), and call
 * structure (for edge virtualization).
 */

#ifndef PROTEAN_IR_INSTRUCTION_H
#define PROTEAN_IR_INSTRUCTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace protean {
namespace ir {

/** Virtual register index, local to a function. */
using Reg = uint32_t;
/** Basic block index, local to a function. */
using BlockId = uint32_t;
/** Function index, local to a module. */
using FuncId = uint32_t;
/** Global-variable index, local to a module. */
using GlobalId = uint32_t;
/** Module-unique static load index (position in PC3D variant masks). */
using LoadId = uint32_t;

constexpr uint32_t kInvalidId = 0xffffffffu;
constexpr Reg kInvalidReg = 0xffffffffu;

/** IR operation codes. */
enum class Opcode : uint8_t {
    ConstInt,   ///< dest = imm
    GlobalAddr, ///< dest = byte address of global #imm
    Mov,        ///< dest = src0
    Add,        ///< dest = src0 + src1
    Sub,        ///< dest = src0 - src1
    Mul,        ///< dest = src0 * src1
    Div,        ///< dest = src0 / src1 (unsigned; x/0 == 0)
    Mod,        ///< dest = src0 % src1 (unsigned; x%0 == x)
    And,        ///< dest = src0 & src1
    Or,         ///< dest = src0 | src1
    Xor,        ///< dest = src0 ^ src1
    Shl,        ///< dest = src0 << (src1 & 63)
    Shr,        ///< dest = src0 >> (src1 & 63) (logical)
    CmpEq,      ///< dest = src0 == src1 ? 1 : 0
    CmpNe,      ///< dest = src0 != src1 ? 1 : 0
    CmpLt,      ///< dest = src0 <  src1 ? 1 : 0 (unsigned)
    CmpLe,      ///< dest = src0 <= src1 ? 1 : 0 (unsigned)
    Load,       ///< dest = mem64[src0 + imm]; carries a LoadId
    Store,      ///< mem64[src0 + imm] = src1
    Br,         ///< jump targets[0]
    CondBr,     ///< if src0 != 0 jump targets[0] else targets[1]
    Call,       ///< dest = callee(srcs...) (dest optional)
    Ret,        ///< return src0 if present, else void
    Nop,        ///< no effect
};

/** Printable mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Number of distinct opcodes (for serialization validation). */
constexpr uint8_t kNumOpcodes = static_cast<uint8_t>(Opcode::Nop) + 1;

/** A single IR instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    /** Destination register, or kInvalidReg when none. */
    Reg dest = kInvalidReg;
    /** Source registers (operand count depends on op). */
    std::vector<Reg> srcs;
    /** Immediate: constant value, load/store offset, or global id. */
    int64_t imm = 0;
    /** Branch targets; [0] = taken/unconditional, [1] = fallthrough. */
    BlockId targets[2] = {kInvalidId, kInvalidId};
    /** Callee for Call. */
    FuncId callee = kInvalidId;
    /** Static load index for Load (assigned by Module::renumberLoads). */
    LoadId loadId = kInvalidId;

    /** True for Br/CondBr/Ret. */
    bool isTerminator() const;

    /** True when the op writes dest. */
    bool hasDest() const;

    /** True for a pure binary ALU op (Add..CmpLe). */
    bool isBinaryAlu() const;
};

/** Number of source operands expected for an opcode (Call: variadic,
 *  returns kInvalidId sentinel meaning "any"). */
uint32_t expectedSrcCount(Opcode op);

} // namespace ir
} // namespace protean

#endif // PROTEAN_IR_INSTRUCTION_H
