/**
 * @file
 * PC3D's code-variant search (paper Algorithms 1 and 2).
 *
 * VariantSearch is a window-driven state machine. Each step the
 * driver (the PC3D engine) reads current() — which variant mask to
 * have dispatched and which nap intensity to apply — runs one
 * evaluation window on the live system, and feeds the measurement
 * back through onMeasurement().
 *
 * Algorithm 1 (greedy over loads, most-impactful first) evaluates
 * variants 0 and 1 to establish program-wide nap-intensity bounds,
 * then walks the loads of the reduced search space, revoking one
 * hint at a time and keeping the revocation only when it improves
 * host performance at QoS-satisfying nap levels. Accepting a variant
 * lowers the nap upper bound, shrinking every later evaluation.
 *
 * Algorithm 2 (VariantEval) finds the minimum nap intensity at which
 * co-runner QoS is satisfied by binary search, exploiting the
 * monotonicity of performance in nap intensity. As an optimization
 * the lower bound is probed first, so an uncontended system settles
 * in a single window.
 *
 * One deliberate deviation from the paper's pseudocode: after the
 * greedy walk, the result is compared against variant 0 at its
 * measured nap level, so a host that needs no mitigation ends at its
 * original code rather than at the all-hints variant (the pseudocode
 * initializes best <- 1 and never revisits R0).
 */

#ifndef PROTEAN_PC3D_SEARCH_H
#define PROTEAN_PC3D_SEARCH_H

#include <cstddef>

#include "support/bitvector.h"

namespace protean {
namespace pc3d {

/** Search tuning. */
struct SearchConfig
{
    double qosTarget = 0.95;
    /** Binary-search resolution on nap intensity. */
    double napEpsilon = 0.04;
    /** Maximum nap intensity (napping never fully stops the host). */
    double napCap = 0.98;
    /** Reuse nap bounds across variants (ablation knob; Algorithm 1
     *  behavior when true). */
    bool reuseNapBounds = true;
};

/** One evaluation window's observations. */
struct Measurement
{
    /** Host progress (branches per cycle or per second — any unit,
     *  used only for comparisons). */
    double hostBps = 0.0;
    /** Minimum co-runner QoS over the window. */
    double minQos = 0.0;
    /** Window overlapped a flux probe; it will be discarded. */
    bool tainted = false;
};

/** The greedy variant search. */
class VariantSearch
{
  public:
    /**
     * @param cfg Tuning.
     * @param num_loads Size of the reduced search space (bit i of
     *        every mask refers to the space's i-th load).
     */
    VariantSearch(const SearchConfig &cfg, size_t num_loads);

    /** What the engine should have in place for the next window. */
    struct Request
    {
        /** Variant mask over the search space. */
        BitVector mask;
        /** Nap intensity to apply. */
        double nap = 0.0;
    };

    /** Current request; valid until done(). */
    Request current() const;

    /** Feed one window's measurement; advances the state machine. */
    void onMeasurement(const Measurement &m);

    bool done() const { return phase_ == Phase::Done; }

    /** Winning mask (valid once done). */
    const BitVector &bestMask() const { return bestMask_; }
    /** Nap intensity of the winning configuration. */
    double bestNap() const { return bestNap_; }
    /** Host progress of the winning configuration. */
    double bestBps() const { return bestBps_; }

    /** Total (untainted) evaluation windows consumed. */
    size_t windowsUsed() const { return windows_; }
    /** Variants dispatched for evaluation. */
    size_t variantsTried() const { return variants_; }

  private:
    enum class Phase { Eval0, Eval1, Flip, Done };

    SearchConfig cfg_;
    size_t n_;
    Phase phase_ = Phase::Eval0;

    // Active VariantEval (Algorithm 2) state.
    BitVector evalMask_;
    double lb_ = 0.0;
    double ub_ = 0.0;
    double cur_ = 0.0;
    bool probingLb_ = true;
    bool everOk_ = false;
    double evalBps_ = 0.0;

    // Algorithm 1 state.
    double nap0_ = 0.0, bps0_ = 0.0;
    double napLB_ = 0.0, napUB_ = 0.0;
    BitVector m_;       // working variant
    BitVector bestMask_;
    double bestBps_ = 0.0;
    double bestNap_ = 0.0;
    size_t flipIndex_ = 0;

    size_t windows_ = 0;
    size_t variants_ = 0;

    void startEval(const BitVector &mask, double lb, double ub);
    /** Called when the active VariantEval completes. */
    void evalFinished(double nap, double bps);
    void advanceAlgorithm1(double nap, double bps);
    void startNextFlip();
    void finish();
};

} // namespace pc3d
} // namespace protean

#endif // PROTEAN_PC3D_SEARCH_H
