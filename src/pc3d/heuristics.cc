#include "pc3d/heuristics.h"

#include "ir/loops.h"
#include "support/logging.h"

namespace protean {
namespace pc3d {

SearchSpace
buildSearchSpace(const ir::Module &module,
                 const std::vector<ir::FuncId> &hot_funcs)
{
    SearchSpace space;
    space.fullProgramLoads = module.numLoads();
    space.functions = hot_funcs;

    for (ir::FuncId f : hot_funcs) {
        const ir::Function &fn = module.function(f);
        space.activeRegionLoads += fn.loadCount();

        ir::LoopInfo loops(fn);
        for (const auto &bb : fn.blocks()) {
            if (!loops.atMaxDepth(bb.id))
                continue;
            for (const auto &inst : bb.insts) {
                if (inst.op == ir::Opcode::Load &&
                    inst.loadId != ir::kInvalidId) {
                    space.loads.push_back(inst.loadId);
                }
            }
        }
    }
    space.maxDepthLoads = space.loads.size();
    return space;
}

} // namespace pc3d
} // namespace protean
