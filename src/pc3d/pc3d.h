/**
 * @file
 * PC3D — Protean Code for Cache Contention in Datacenters (paper
 * Section IV).
 *
 * Pc3dEngine is a protean-runtime decision engine that dynamically
 * mixes non-temporal-hint code variants with napping so that
 * co-running latency-sensitive applications meet their QoS targets
 * while the host batch application retains as much throughput as
 * possible.
 *
 * Lifecycle:
 *  - Warmup: prime the flux-probe solo reference and accumulate PC
 *    samples.
 *  - Search: build the reduced search space (pc3d/heuristics.h) and
 *    drive the greedy variant search (pc3d/search.h), one evaluation
 *    window at a time, dispatching variants through the protean
 *    runtime as the search requests them.
 *  - Settled: run the winning variant at its nap level; watch QoS
 *    and host/co-runner phases; re-enter Search on a violation or a
 *    co-phase change (reverting to the original code first, so an
 *    unloaded co-runner lets the host run at full speed).
 */

#ifndef PROTEAN_PC3D_PC3D_H
#define PROTEAN_PC3D_PC3D_H

#include <unordered_map>

#include "pc3d/heuristics.h"
#include "pc3d/search.h"
#include "runtime/qos.h"
#include "runtime/runtime.h"

namespace protean {
namespace pc3d {

/** Engine tuning. */
struct Pc3dOptions
{
    double qosTarget = 0.95;
    /** Evaluation-window length during search. */
    double windowMs = 60.0;
    /** Settled-mode check interval. */
    double settledWindowMs = 200.0;
    /** Warmup before the first search. */
    double warmupMs = 250.0;
    double napEpsilon = 0.04;
    double napCap = 0.98;
    /** Hotness mass that defines "covered" functions. */
    double hotFraction = 0.98;
    /** Hard cap on the search-space size (keeps search time
     *  proportionate; the hottest loads survive). */
    size_t maxSearchLoads = 24;
    /** Reuse nap bounds across variants (ablation knob). */
    bool reuseNapBounds = true;
    /** QoS hysteresis below target before reacting while settled. */
    double qosSlack = 0.015;
    /** Nap adjustment step while settled. */
    double napStep = 0.05;
    /** Modeled analysis cost per window, in cycles. */
    uint64_t windowAnalysisCycles = 120;
};

/** The PC3D decision engine. */
class Pc3dEngine : public runtime::DecisionEngine
{
  public:
    /**
     * @param qos QoS monitor over the co-runners (the engine calls
     *        start() on it).
     * @param opts Tuning.
     */
    explicit Pc3dEngine(runtime::QosMonitor &qos,
                        const Pc3dOptions &opts = Pc3dOptions{});

    void onStart(runtime::ProteanRuntime &rt) override;
    void onTick(runtime::ProteanRuntime &rt) override;

    enum class Mode { Warmup, Search, Settled };
    Mode mode() const { return mode_; }

    /** Search space of the most recent search. */
    const SearchSpace &space() const { return space_; }

    /** Current controller nap intensity. */
    double currentNap() const { return nap_; }

    /** Module-wide mask currently dispatched. */
    const BitVector &currentMask() const { return dispatchedMask_; }

    uint64_t searchesStarted() const { return searches_; }
    uint64_t searchWindowsTotal() const { return searchWindows_; }

    /** Most recent settled-mode QoS observation. */
    double lastQos() const { return lastQos_; }

  private:
    runtime::QosMonitor &qos_;
    Pc3dOptions opts_;

    Mode mode_ = Mode::Warmup;
    SearchSpace space_;
    std::unique_ptr<VariantSearch> search_;
    BitVector dispatchedMask_;
    double nap_ = 0.0;
    double settledBestNap_ = 0.0;

    uint64_t windowEnd_ = 0;
    uint64_t searchStartCycle_ = 0;
    uint32_t pendingDispatch_ = 0;
    bool discardNextWindow_ = false;
    uint64_t searches_ = 0;
    uint64_t searchWindows_ = 0;
    double lastQos_ = 1.0;

    runtime::PhaseDetector hostPhase_{0.35};
    std::vector<runtime::PhaseDetector> coPhase_;

    /** Per-function loads (for per-function dispatch diffs). */
    std::unordered_map<ir::FuncId, std::vector<ir::LoadId>> funcLoads_;

    void buildFuncLoads(const ir::Module &module);
    void startSearch(runtime::ProteanRuntime &rt);
    void applyRequest(runtime::ProteanRuntime &rt);
    void applyMask(runtime::ProteanRuntime &rt, const BitVector &mask);
    void setNap(runtime::ProteanRuntime &rt, double nap);
    BitVector spaceToModuleMask(const BitVector &space_mask) const;
    void windowSearch(runtime::ProteanRuntime &rt);
    void windowSettled(runtime::ProteanRuntime &rt);
};

} // namespace pc3d
} // namespace protean

#endif // PROTEAN_PC3D_PC3D_H
