#include "pc3d/pc3d.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace pc3d {

Pc3dEngine::Pc3dEngine(runtime::QosMonitor &qos, const Pc3dOptions &opts)
    : qos_(qos), opts_(opts), dispatchedMask_(0)
{
}

void
Pc3dEngine::onStart(runtime::ProteanRuntime &rt)
{
    qos_.start();
    buildFuncLoads(rt.module());
    dispatchedMask_ = BitVector(rt.module().numLoads());
    for (size_t i = 0; i < qos_.coCores().size(); ++i)
        coPhase_.emplace_back(0.5);
    windowEnd_ = rt.machine().now() +
        rt.machine().msToCycles(opts_.warmupMs);
}

void
Pc3dEngine::buildFuncLoads(const ir::Module &module)
{
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        auto &loads = funcLoads_[f];
        for (const auto &bb : module.function(f).blocks()) {
            for (const auto &inst : bb.insts) {
                if (inst.op == ir::Opcode::Load &&
                    inst.loadId != ir::kInvalidId) {
                    loads.push_back(inst.loadId);
                }
            }
        }
    }
}

BitVector
Pc3dEngine::spaceToModuleMask(const BitVector &space_mask) const
{
    BitVector mask(dispatchedMask_.size());
    for (size_t i = 0; i < space_mask.size(); ++i) {
        if (space_mask.test(i))
            mask.set(space_.loads[i]);
    }
    return mask;
}

void
Pc3dEngine::setNap(runtime::ProteanRuntime &rt, double nap)
{
    nap_ = std::clamp(nap, 0.0, opts_.napCap);
    rt.napGovernor().setControllerNap(nap_);
}

void
Pc3dEngine::applyMask(runtime::ProteanRuntime &rt,
                      const BitVector &mask)
{
    const ir::Module &module = rt.module();
    for (ir::FuncId f : space_.functions) {
        const auto &loads = funcLoads_[f];
        bool changed = false;
        bool all_clear = true;
        for (ir::LoadId id : loads) {
            bool want = id < mask.size() && mask.test(id);
            bool have = id < dispatchedMask_.size() &&
                dispatchedMask_.test(id);
            changed |= want != have;
            all_clear &= !want;
        }
        if (!changed)
            continue;
        if (!rt.evt().virtualized(f)) {
            warn("pc3d: hot function %s is not virtualized; skipping",
                 module.function(f).name().c_str());
            continue;
        }
        if (all_clear) {
            // Empty mask == the original code: dispatch the static
            // entry directly, no compile needed.
            obs::metrics().counter("pc3d.dispatch.reverts").inc();
            rt.evt().retarget(f, rt.host().image().function(f).entry);
        } else {
            obs::metrics().counter("pc3d.dispatch.variants").inc();
            ++pendingDispatch_;
            rt.deployVariant(f, mask, [this] {
                if (pendingDispatch_ > 0)
                    --pendingDispatch_;
            });
        }
    }
    dispatchedMask_ = mask;
    discardNextWindow_ = true;
}

void
Pc3dEngine::startSearch(runtime::ProteanRuntime &rt)
{
    // Heuristic search-space construction from current hotness.
    auto hot = rt.sampler().hotFunctions(opts_.hotFraction);
    space_ = buildSearchSpace(rt.module(), hot);
    if (space_.loads.size() > opts_.maxSearchLoads)
        space_.loads.resize(opts_.maxSearchLoads);

    // Charge the analysis (coverage pruning + loop analysis).
    rt.chargeWork(300 * hot.size() + 4 * space_.activeRegionLoads);

    searchStartCycle_ = rt.machine().now();
    obs::metrics().counter("pc3d.search.count").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "pc3d", "search_start",
            strformat("\"hot_functions\":%zu,\"space_loads\":%zu",
                      hot.size(), space_.loads.size()));
    }

    SearchConfig scfg;
    scfg.qosTarget = opts_.qosTarget;
    scfg.napEpsilon = opts_.napEpsilon;
    scfg.napCap = opts_.napCap;
    scfg.reuseNapBounds = opts_.reuseNapBounds;
    search_ = std::make_unique<VariantSearch>(scfg,
                                              space_.loads.size());
    ++searches_;
    mode_ = Mode::Search;
    applyRequest(rt);
}

void
Pc3dEngine::applyRequest(runtime::ProteanRuntime &rt)
{
    VariantSearch::Request req = search_->current();
    BitVector mask = spaceToModuleMask(req.mask);
    if (!(mask == dispatchedMask_))
        applyMask(rt, mask);
    setNap(rt, req.nap);
    // Fresh measurement window from here.
    rt.hpm().window(rt.hostCore());
    qos_.minQosWindow();
    qos_.clearTaint();
    windowEnd_ = rt.machine().now() +
        rt.machine().msToCycles(opts_.windowMs);
}

void
Pc3dEngine::onTick(runtime::ProteanRuntime &rt)
{
    if (rt.machine().now() < windowEnd_)
        return;
    rt.chargeWork(opts_.windowAnalysisCycles);
    rt.sampler().decay(0.96);

    switch (mode_) {
      case Mode::Warmup:
        startSearch(rt);
        break;
      case Mode::Search:
        windowSearch(rt);
        break;
      case Mode::Settled:
        windowSettled(rt);
        break;
    }
}

void
Pc3dEngine::windowSearch(runtime::ProteanRuntime &rt)
{
    uint64_t window = rt.machine().msToCycles(opts_.windowMs);

    if (pendingDispatch_ > 0) {
        // Compiles still in flight; give them another window.
        windowEnd_ = rt.machine().now() + window;
        return;
    }
    if (discardNextWindow_) {
        // First boundary after a dispatch ran partially on old code.
        discardNextWindow_ = false;
        rt.hpm().window(rt.hostCore());
        qos_.minQosWindow();
        qos_.clearTaint();
        windowEnd_ = rt.machine().now() + window;
        return;
    }

    Measurement meas;
    sim::HpmCounters host = rt.hpm().window(rt.hostCore());
    meas.hostBps = host.bpc();
    meas.minQos = qos_.minQosWindow();
    meas.tainted = qos_.windowTainted();
    qos_.clearTaint();
    if (!meas.tainted)
        ++searchWindows_;

    search_->onMeasurement(meas);

    if (search_->done()) {
        BitVector mask = spaceToModuleMask(search_->bestMask());
        if (obs::tracer().enabled()) {
            obs::tracer().complete(
                "pc3d", "search", searchStartCycle_,
                rt.machine().now(),
                strformat("\"windows\":%zu,\"variants\":%zu,"
                          "\"best_nap\":%.3f,\"best_bps\":%.6f,"
                          "\"best_mask_bits\":%zu",
                          search_->windowsUsed(),
                          search_->variantsTried(),
                          search_->bestNap(), search_->bestBps(),
                          mask.count()));
        }
        if (!(mask == dispatchedMask_))
            applyMask(rt, mask);
        setNap(rt, search_->bestNap());
        settledBestNap_ = search_->bestNap();
        mode_ = Mode::Settled;
        obs::tracer().instant("pc3d", "settled");
        rt.hpm().window(rt.hostCore());
        qos_.minQosWindow();
        qos_.clearTaint();
        windowEnd_ = rt.machine().now() +
            rt.machine().msToCycles(opts_.settledWindowMs);
        return;
    }
    applyRequest(rt);
}

void
Pc3dEngine::windowSettled(runtime::ProteanRuntime &rt)
{
    uint64_t window = rt.machine().msToCycles(opts_.settledWindowMs);
    windowEnd_ = rt.machine().now() + window;

    if (pendingDispatch_ > 0 || discardNextWindow_) {
        discardNextWindow_ = false;
        rt.hpm().window(rt.hostCore());
        qos_.minQosWindow();
        qos_.clearTaint();
        return;
    }

    sim::HpmCounters host = rt.hpm().window(rt.hostCore());
    double min_qos = qos_.minQosWindow();
    bool tainted = qos_.windowTainted();
    qos_.clearTaint();
    if (tainted)
        return;
    lastQos_ = min_qos;
    obs::metrics().gauge("pc3d.qos.last").set(lastQos_);
    obs::tracer().counter("pc3d", "settled_qos", min_qos);
    obs::tracer().counter("pc3d", "host_bpc", host.bpc());

    // Phase analysis: host progress + hot set, co-runner progress.
    bool host_changed =
        hostPhase_.update(host.ipc(),
                          rt.sampler().hotFunctions(opts_.hotFraction));
    bool co_changed = false;
    for (size_t i = 0; i < qos_.coCores().size(); ++i) {
        sim::HpmCounters co = rt.hpm().window(qos_.coCores()[i]);
        co_changed |= coPhase_[i].update(co.ipc());
    }

    if (host_changed || co_changed) {
        // Co-phase change: the solo reference describes the old
        // phase, so re-prime it, revert to the original code, and
        // search again from scratch (Figure 16's t=300/t=600
        // behavior).
        obs::metrics()
            .counter(co_changed ? "pc3d.research.co_phase"
                                : "pc3d.research.host_phase")
            .inc();
        if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "pc3d", "research",
                strformat("\"reason\":\"%s\"",
                          co_changed ? "co_phase_change"
                                     : "host_phase_change"));
        }
        if (co_changed)
            qos_.reprime();
        applyMask(rt, BitVector(dispatchedMask_.size()));
        setNap(rt, 0.0);
        startSearch(rt);
        return;
    }

    // Drift control: nap absorbs small QoS shifts; a large excursion
    // beyond the searched level triggers a fresh search.
    if (min_qos < opts_.qosTarget - opts_.qosSlack) {
        setNap(rt, nap_ + opts_.napStep);
        if (nap_ > settledBestNap_ + 0.25) {
            obs::metrics().counter("pc3d.research.qos_excursion")
                .inc();
            if (obs::tracer().enabled()) {
                obs::tracer().instant(
                    "pc3d", "research",
                    strformat("\"reason\":\"qos_excursion\","
                              "\"qos\":%.4f",
                              min_qos));
            }
            startSearch(rt);
        }
    } else if (min_qos > opts_.qosTarget + 2 * opts_.qosSlack &&
               nap_ > settledBestNap_) {
        setNap(rt, std::max(settledBestNap_, nap_ - opts_.napStep / 2));
    }
}

} // namespace pc3d
} // namespace protean
