#include "pc3d/search.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace pc3d {

VariantSearch::VariantSearch(const SearchConfig &cfg, size_t num_loads)
    : cfg_(cfg), n_(num_loads), evalMask_(num_loads), m_(num_loads),
      bestMask_(num_loads)
{
    // Algorithm 1 begins by evaluating variant 0 over the full nap
    // range.
    startEval(BitVector(n_), 0.0, cfg_.napCap);
}

void
VariantSearch::startEval(const BitVector &mask, double lb, double ub)
{
    evalMask_ = mask;
    lb_ = lb;
    ub_ = ub;
    cur_ = lb;
    probingLb_ = true;
    everOk_ = false;
    evalBps_ = 0.0;
    ++variants_;
}

VariantSearch::Request
VariantSearch::current() const
{
    if (done())
        return Request{bestMask_, bestNap_};
    return Request{evalMask_, cur_};
}

void
VariantSearch::onMeasurement(const Measurement &meas)
{
    if (done())
        return;
    if (meas.tainted) {
        obs::metrics().counter("pc3d.search.tainted_windows").inc();
        return; // re-run the same window
    }
    ++windows_;
    obs::metrics().counter("pc3d.search.steps").inc();

    bool ok = meas.minQos >= cfg_.qosTarget;
    if (ok) {
        everOk_ = true;
        evalBps_ = meas.hostBps;
    }

    if (probingLb_) {
        probingLb_ = false;
        if (ok) {
            // The lower bound already satisfies QoS: done with this
            // variant in one window.
            evalFinished(lb_, evalBps_);
            return;
        }
        cur_ = (lb_ + ub_) / 2.0;
        if (ub_ - lb_ <= cfg_.napEpsilon) {
            // Bounds already tight and lb fails: report ub.
            evalFinished(ub_, everOk_ ? evalBps_ : 0.0);
        }
        return;
    }

    if (ok)
        ub_ = cur_;
    else
        lb_ = cur_;
    if (ub_ - lb_ <= cfg_.napEpsilon) {
        evalFinished(ub_, everOk_ ? evalBps_ : 0.0);
        return;
    }
    cur_ = (lb_ + ub_) / 2.0;
}

void
VariantSearch::evalFinished(double nap, double bps)
{
    switch (phase_) {
      case Phase::Eval0:
        nap0_ = nap;
        bps0_ = bps;
        if (nap0_ <= cfg_.napEpsilon / 2.0 && bps > 0.0) {
            // No mitigation needed: settle on the original code.
            bestMask_.clearAll();
            bestNap_ = 0.0;
            bestBps_ = bps;
            phase_ = Phase::Done;
            return;
        }
        phase_ = Phase::Eval1;
        m_.setAll();
        startEval(m_, 0.0, cfg_.napCap);
        return;

      case Phase::Eval1:
        napUB_ = nap0_;
        napLB_ = nap;
        bestMask_ = m_;
        bestNap_ = nap;
        bestBps_ = bps;
        flipIndex_ = 0;
        phase_ = Phase::Flip;
        startNextFlip();
        return;

      case Phase::Flip: {
        bool accept = bps > bestBps_;
        obs::metrics()
            .counter(accept ? "pc3d.search.accepted"
                            : "pc3d.search.rejected")
            .inc();
        if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "pc3d.search",
                accept ? "flip_accept" : "flip_reject",
                strformat("\"load_index\":%zu,"
                          "\"candidate_bps\":%.6f,"
                          "\"best_bps\":%.6f,\"nap\":%.3f,"
                          "\"reason\":\"%s\"",
                          flipIndex_, bps, bestBps_, nap,
                          accept ? "host_bps_improved"
                                 : "no_bps_improvement"));
        }
        if (accept) {
            // Keep the revoked hint.
            bestMask_ = m_;
            bestBps_ = bps;
            bestNap_ = nap;
            if (cfg_.reuseNapBounds)
                napUB_ = nap;
        } else {
            m_.flip(flipIndex_); // reject: restore the hint
        }
        ++flipIndex_;
        startNextFlip();
        return;
      }

      case Phase::Done:
        panic("VariantSearch: eval finished after Done");
    }
}

void
VariantSearch::startNextFlip()
{
    bool bounds_open = !cfg_.reuseNapBounds ||
        napLB_ + cfg_.napEpsilon < napUB_;
    if (flipIndex_ >= n_ || !bounds_open) {
        finish();
        return;
    }
    m_.flip(flipIndex_);
    double lb = cfg_.reuseNapBounds ? napLB_ : 0.0;
    double ub = cfg_.reuseNapBounds ? napUB_ : cfg_.napCap;
    startEval(m_, lb, ub);
}

void
VariantSearch::finish()
{
    // Deviation from the pseudocode (documented in the header):
    // variant 0 wins when it performs at least as well at its own
    // QoS-satisfying nap level.
    if (bps0_ >= bestBps_) {
        bestMask_.clearAll();
        bestBps_ = bps0_;
        bestNap_ = nap0_;
        if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "pc3d.search", "variant0_wins",
                strformat("\"bps0\":%.6f,\"nap0\":%.3f", bps0_,
                          nap0_));
        }
    }
    phase_ = Phase::Done;
}

} // namespace pc3d
} // namespace protean
