/**
 * @file
 * PC3D variant search-space reduction heuristics (paper Section
 * IV-C, evaluated in Figure 8).
 *
 * Three stacked filters shrink the set of static loads the search
 * considers:
 *  1. Exclude uncovered code — only functions that appear in the PC
 *     samples survive;
 *  2. Prioritize hotter code — surviving loads are ordered by their
 *     function's sample weight, hottest first;
 *  3. Only innermost loops — within each surviving function, only
 *     loads in blocks at the function's maximum loop depth survive
 *     (depth comes from the embedded IR's loop analysis).
 */

#ifndef PROTEAN_PC3D_HEURISTICS_H
#define PROTEAN_PC3D_HEURISTICS_H

#include <vector>

#include "ir/module.h"

namespace protean {
namespace pc3d {

/** The reduced, ordered search space plus reduction accounting. */
struct SearchSpace
{
    /** Surviving loads, ordered by decreasing expected impact. */
    std::vector<ir::LoadId> loads;
    /** Functions contributing loads, hottest first. */
    std::vector<ir::FuncId> functions;

    // Figure 8 accounting.
    size_t fullProgramLoads = 0;  ///< all static loads
    size_t activeRegionLoads = 0; ///< after coverage pruning
    size_t maxDepthLoads = 0;     ///< after the max-depth filter
};

/**
 * Build the search space.
 * @param module The embedded IR.
 * @param hot_funcs Covered functions, hottest first (from the PC
 *        sampler). Functions absent here are "uncovered code".
 */
SearchSpace buildSearchSpace(const ir::Module &module,
                             const std::vector<ir::FuncId> &hot_funcs);

} // namespace pc3d
} // namespace protean

#endif // PROTEAN_PC3D_HEURISTICS_H
