/**
 * @file
 * IR-to-PISA lowering.
 *
 * lowerFunction() compiles one IR function to machine code. It is
 * used in two places with the same semantics:
 *  - statically, by the protean code compiler (pcc) when producing
 *    the original binary; and
 *  - online, by the protean runtime's dynamic compiler when minting
 *    a new variant of a function from the embedded IR.
 *
 * A variant is selected by a non-temporal mask over the module's
 * static LoadIds: a masked load is lowered as a Hint instruction
 * followed by the load with its nonTemporal flag set, mirroring the
 * prefetchnta idiom of Figure 2 in the paper.
 *
 * Calls to virtualized callees lower to CallIndirect through the
 * callee's EVT slot; other calls lower to CallDirect with a fixup
 * recorded so the caller can patch the target once every function
 * has a final placement.
 */

#ifndef PROTEAN_CODEGEN_LOWERING_H
#define PROTEAN_CODEGEN_LOWERING_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/module.h"
#include "isa/image.h"
#include "support/bitvector.h"

namespace protean {
namespace codegen {

/** Map from callee FuncId to its EVT slot. */
using VirtualizationMap = std::unordered_map<ir::FuncId, uint32_t>;

/** Inputs that parameterize lowering. */
struct LowerOptions
{
    /** Global placement (required). */
    const isa::DataLayout *layout = nullptr;
    /** Callees reached indirectly through the EVT; may be null. */
    const VirtualizationMap *virtualized = nullptr;
    /** Non-temporal mask over module LoadIds; may be null (all 0). */
    const BitVector *ntMask = nullptr;
};

/**
 * One OSR point: a loop back-edge branch instruction. `offset` is the
 * function-relative code offset of the Jmp/Bnz whose (taken) target
 * is the loop header's first instruction; `header` is the IR block it
 * jumps to. Because the restricted NT-mask transform preserves block
 * structure, the same `header` id names the corresponding loop entry
 * in every variant of the function, so redirecting the branch to
 * another variant's `blockStarts[header]` transfers a mid-loop
 * execution with identity compensation (same machineReg assignment).
 */
struct OsrSite
{
    uint32_t offset = 0;
    ir::BlockId header = 0;
};

/** Result of lowering one function. */
struct LoweredFunction
{
    std::vector<isa::MInst> code;
    /** (offset in code, callee) pairs needing a direct-call target. */
    std::vector<std::pair<uint32_t, ir::FuncId>> directCallFixups;
    /**
     * Function-relative code offset of each IR block's first emitted
     * instruction, indexed by BlockId. Stays function-relative across
     * relocate(); add the placement entry to get absolute addresses.
     */
    std::vector<uint32_t> blockStarts;
    /** Loop back-edges (branch target dominates its source block),
     *  in emission order. Offsets stay function-relative too. */
    std::vector<OsrSite> osrSites;
};

/**
 * Lower one function.
 * Panics if the function exceeds machine limits (more than 60 virtual
 * registers or more than 4 call arguments) — workloads are generated
 * within those limits by construction.
 *
 * Internal branch targets (Jmp/Bnz) are function-local; call
 * relocate() with the function's placement address before installing
 * the code into an image or code cache.
 */
LoweredFunction lowerFunction(const ir::Module &module,
                              const ir::Function &fn,
                              const LowerOptions &opts);

/** Rebase internal branch targets to an absolute placement.
 *  `blockStarts`/`osrSites` are left function-relative. */
void relocate(LoweredFunction &fn, isa::CodeAddr base);

/** Machine register assigned to a virtual register. */
uint8_t machineReg(ir::Reg v);

} // namespace codegen
} // namespace protean

#endif // PROTEAN_CODEGEN_LOWERING_H
