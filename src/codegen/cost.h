/**
 * @file
 * Dynamic-compilation cost model.
 *
 * The paper reports that "the LLVM compiler backend uses an average
 * of around 5ms to compile a function". The runtime charges compile
 * work to a core through this model: a fixed per-invocation cost plus
 * a per-instruction cost, calibrated so a typical hot function costs
 * about 5 simulated milliseconds.
 */

#ifndef PROTEAN_CODEGEN_COST_H
#define PROTEAN_CODEGEN_COST_H

#include <cstdint>

#include "ir/function.h"

namespace protean {
namespace codegen {

/** Cycle cost model for one dynamic-compiler invocation. */
struct CompileCostModel
{
    /** Fixed cost per compile (IR lookup, dispatch bookkeeping). */
    uint64_t baseCycles = 2000;
    /** Marginal cost per IR instruction compiled; calibrated so a
     *  typical hot function costs a few simulated milliseconds, as
     *  the paper reports for the LLVM backend (~5 ms/function). */
    uint64_t cyclesPerInst = 100;

    /** Total cycle cost of compiling fn. */
    uint64_t cost(const ir::Function &fn) const
    {
        return baseCycles + cyclesPerInst * fn.instructionCount();
    }
};

} // namespace codegen
} // namespace protean

#endif // PROTEAN_CODEGEN_COST_H
