#include "codegen/lowering.h"

#include "ir/dominators.h"
#include "support/logging.h"

namespace protean {
namespace codegen {

using isa::MInst;
using isa::MOp;

namespace {

MOp
aluMOp(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Add: return MOp::Add;
      case ir::Opcode::Sub: return MOp::Sub;
      case ir::Opcode::Mul: return MOp::Mul;
      case ir::Opcode::Div: return MOp::Div;
      case ir::Opcode::Mod: return MOp::Mod;
      case ir::Opcode::And: return MOp::And;
      case ir::Opcode::Or: return MOp::Or;
      case ir::Opcode::Xor: return MOp::Xor;
      case ir::Opcode::Shl: return MOp::Shl;
      case ir::Opcode::Shr: return MOp::Shr;
      case ir::Opcode::CmpEq: return MOp::CmpEq;
      case ir::Opcode::CmpNe: return MOp::CmpNe;
      case ir::Opcode::CmpLt: return MOp::CmpLt;
      case ir::Opcode::CmpLe: return MOp::CmpLe;
      default:
        panic("aluMOp: %s is not a binary ALU op", opcodeName(op));
    }
}

class FunctionLowering
{
  public:
    FunctionLowering(const ir::Module &module, const ir::Function &fn,
                     const LowerOptions &opts)
        : module_(module), fn_(fn), opts_(opts)
    {
        if (!opts.layout)
            panic("lowerFunction: LowerOptions.layout is required");
    }

    LoweredFunction
    run()
    {
        if (fn_.numRegs() >
            isa::kNumMachineRegs - isa::kFirstGeneralReg) {
            panic("lowerFunction: %s uses %u virtual registers; "
                  "machine limit is %u", fn_.name().c_str(),
                  fn_.numRegs(),
                  isa::kNumMachineRegs - isa::kFirstGeneralReg);
        }

        emitPrologue();
        blockStart_.assign(fn_.numBlocks(), isa::kInvalidCodeAddr);
        for (const auto &bb : fn_.blocks()) {
            blockStart_[bb.id] =
                static_cast<isa::CodeAddr>(out_.code.size());
            lowerBlock(bb);
        }
        patchBranches();
        markOsrSites();
        out_.blockStarts.assign(blockStart_.begin(),
                                blockStart_.end());
        return std::move(out_);
    }

  private:
    const ir::Module &module_;
    const ir::Function &fn_;
    const LowerOptions &opts_;
    LoweredFunction out_;
    std::vector<isa::CodeAddr> blockStart_;
    /** Branch awaiting block placement; `src` is the block the
     *  branch was emitted from (for back-edge classification). */
    struct BranchFixup
    {
        uint32_t offset;
        ir::BlockId target;
        ir::BlockId src;
    };
    std::vector<BranchFixup> branchFixups_;

    MInst &
    emit(MInst inst)
    {
        out_.code.push_back(inst);
        return out_.code.back();
    }

    void
    emitPrologue()
    {
        if (fn_.numParams() > 4)
            panic("lowerFunction: %s has %u params; max is 4",
                  fn_.name().c_str(), fn_.numParams());
        // Move incoming arguments from r0..r3 into the general regs
        // assigned to the parameter virtual registers.
        for (uint32_t i = 0; i < fn_.numParams(); ++i) {
            MInst m;
            m.op = MOp::Mov;
            m.rd = machineReg(i);
            m.rs1 = static_cast<uint8_t>(i);
            emit(m);
        }
    }

    bool
    masked(ir::LoadId id) const
    {
        return opts_.ntMask && id != ir::kInvalidId &&
            id < opts_.ntMask->size() && opts_.ntMask->test(id);
    }

    void
    lowerBlock(const ir::BasicBlock &bb)
    {
        for (size_t k = 0; k < bb.insts.size(); ++k) {
            const ir::Instruction &inst = bb.insts[k];
            bool last_in_layout = (bb.id + 1 == fn_.numBlocks());
            lowerInst(inst, bb.id, last_in_layout &&
                      (k + 1 == bb.insts.size()));
        }
    }

    void
    lowerInst(const ir::Instruction &inst, ir::BlockId bb, bool is_end)
    {
        switch (inst.op) {
          case ir::Opcode::ConstInt: {
            MInst m;
            m.op = MOp::Const;
            m.rd = machineReg(inst.dest);
            m.imm = inst.imm;
            emit(m);
            break;
          }
          case ir::Opcode::GlobalAddr: {
            MInst m;
            m.op = MOp::Const;
            m.rd = machineReg(inst.dest);
            m.imm = static_cast<int64_t>(
                opts_.layout->base(
                    static_cast<ir::GlobalId>(inst.imm)));
            emit(m);
            break;
          }
          case ir::Opcode::Mov: {
            MInst m;
            m.op = MOp::Mov;
            m.rd = machineReg(inst.dest);
            m.rs1 = machineReg(inst.srcs[0]);
            emit(m);
            break;
          }
          case ir::Opcode::Load: {
            bool nt = masked(inst.loadId);
            if (nt) {
                MInst h;
                h.op = MOp::Hint;
                h.rs1 = machineReg(inst.srcs[0]);
                h.imm = inst.imm;
                h.loadId = inst.loadId;
                h.nonTemporal = true;
                emit(h);
            }
            MInst m;
            m.op = MOp::Load;
            m.rd = machineReg(inst.dest);
            m.rs1 = machineReg(inst.srcs[0]);
            m.imm = inst.imm;
            m.loadId = inst.loadId;
            m.nonTemporal = nt;
            emit(m);
            break;
          }
          case ir::Opcode::Store: {
            MInst m;
            m.op = MOp::Store;
            m.rs1 = machineReg(inst.srcs[0]);
            m.rs2 = machineReg(inst.srcs[1]);
            m.imm = inst.imm;
            emit(m);
            break;
          }
          case ir::Opcode::Br:
            // Fall through when the target is the next block in
            // layout order; otherwise emit a jump.
            if (inst.targets[0] != bb + 1) {
                MInst m;
                m.op = MOp::Jmp;
                branchFixups_.push_back(
                    {static_cast<uint32_t>(out_.code.size()),
                     inst.targets[0], bb});
                emit(m);
            }
            break;
          case ir::Opcode::CondBr: {
            MInst m;
            m.op = MOp::Bnz;
            m.rs1 = machineReg(inst.srcs[0]);
            branchFixups_.push_back(
                {static_cast<uint32_t>(out_.code.size()),
                 inst.targets[0], bb});
            emit(m);
            if (inst.targets[1] != bb + 1) {
                MInst j;
                j.op = MOp::Jmp;
                branchFixups_.push_back(
                    {static_cast<uint32_t>(out_.code.size()),
                     inst.targets[1], bb});
                emit(j);
            }
            break;
          }
          case ir::Opcode::Call:
            lowerCall(inst);
            break;
          case ir::Opcode::Ret: {
            if (!inst.srcs.empty()) {
                MInst m;
                m.op = MOp::Mov;
                m.rd = 0;
                m.rs1 = machineReg(inst.srcs[0]);
                emit(m);
            }
            MInst r;
            r.op = MOp::Ret;
            emit(r);
            (void)is_end;
            break;
          }
          case ir::Opcode::Nop: {
            MInst m;
            m.op = MOp::Nop;
            emit(m);
            break;
          }
          default:
            if (inst.isBinaryAlu()) {
                MInst m;
                m.op = aluMOp(inst.op);
                m.rd = machineReg(inst.dest);
                m.rs1 = machineReg(inst.srcs[0]);
                m.rs2 = machineReg(inst.srcs[1]);
                emit(m);
            } else {
                panic("lowerInst: unhandled opcode %s",
                      opcodeName(inst.op));
            }
            break;
        }
    }

    void
    lowerCall(const ir::Instruction &inst)
    {
        if (inst.srcs.size() > 4)
            panic("lowerCall: %zu args; max is 4", inst.srcs.size());
        for (size_t i = 0; i < inst.srcs.size(); ++i) {
            MInst m;
            m.op = MOp::Mov;
            m.rd = static_cast<uint8_t>(i);
            m.rs1 = machineReg(inst.srcs[i]);
            emit(m);
        }
        bool indirect = opts_.virtualized &&
            opts_.virtualized->count(inst.callee) > 0;
        if (indirect) {
            MInst m;
            m.op = MOp::CallIndirect;
            m.evtSlot = opts_.virtualized->at(inst.callee);
            emit(m);
        } else {
            MInst m;
            m.op = MOp::CallDirect;
            out_.directCallFixups.emplace_back(
                static_cast<uint32_t>(out_.code.size()), inst.callee);
            emit(m);
        }
        if (inst.dest != ir::kInvalidReg) {
            MInst m;
            m.op = MOp::Mov;
            m.rd = machineReg(inst.dest);
            m.rs1 = 0;
            emit(m);
        }
    }

    void
    patchBranches()
    {
        for (const BranchFixup &f : branchFixups_) {
            if (f.target >= blockStart_.size() ||
                blockStart_[f.target] == isa::kInvalidCodeAddr) {
                panic("lowerFunction: unplaced block %u", f.target);
            }
            out_.code[f.offset].target = blockStart_[f.target];
        }
    }

    /**
     * Classify every recorded branch whose target dominates its
     * source block as a loop back-edge: each such branch is an OSR
     * point. A fallthrough Br never qualifies (a branch to bb+1 is
     * forward), so every back-edge has an emitted, patchable Jmp or
     * Bnz — the emitted code is not changed here.
     */
    void
    markOsrSites()
    {
        if (branchFixups_.empty())
            return;
        ir::DominatorTree dom(fn_);
        for (const BranchFixup &f : branchFixups_) {
            if (dom.dominates(f.target, f.src))
                out_.osrSites.push_back({f.offset, f.target});
        }
    }
};

} // namespace

uint8_t
machineReg(ir::Reg v)
{
    uint32_t r = isa::kFirstGeneralReg + v;
    if (r >= isa::kNumMachineRegs)
        panic("machineReg: virtual register %u exceeds machine limit", v);
    return static_cast<uint8_t>(r);
}

LoweredFunction
lowerFunction(const ir::Module &module, const ir::Function &fn,
              const LowerOptions &opts)
{
    FunctionLowering lowering(module, fn, opts);
    return lowering.run();
}

void
relocate(LoweredFunction &fn, isa::CodeAddr base)
{
    for (auto &inst : fn.code) {
        if (inst.op == MOp::Jmp || inst.op == MOp::Bnz)
            inst.target += base;
    }
}

} // namespace codegen
} // namespace protean
