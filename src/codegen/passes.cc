#include "codegen/passes.h"

#include <optional>
#include <unordered_map>

#include "support/logging.h"

namespace protean {
namespace codegen {

namespace {

uint64_t
foldBinary(ir::Opcode op, uint64_t a, uint64_t b)
{
    switch (op) {
      case ir::Opcode::Add: return a + b;
      case ir::Opcode::Sub: return a - b;
      case ir::Opcode::Mul: return a * b;
      case ir::Opcode::Div: return b == 0 ? 0 : a / b;
      case ir::Opcode::Mod: return b == 0 ? a : a % b;
      case ir::Opcode::And: return a & b;
      case ir::Opcode::Or: return a | b;
      case ir::Opcode::Xor: return a ^ b;
      case ir::Opcode::Shl: return a << (b & 63);
      case ir::Opcode::Shr: return a >> (b & 63);
      case ir::Opcode::CmpEq: return a == b;
      case ir::Opcode::CmpNe: return a != b;
      case ir::Opcode::CmpLt: return a < b;
      case ir::Opcode::CmpLe: return a <= b;
      default:
        panic("foldBinary: not an ALU op");
    }
}

} // namespace

size_t
foldConstants(ir::Function &fn)
{
    size_t changed = 0;
    for (auto &bb : fn.blocks()) {
        // reg -> known constant, and reg -> copy source, within the
        // block. A write to a register invalidates both tables for
        // that register and any copies of it.
        std::unordered_map<ir::Reg, uint64_t> consts;
        std::unordered_map<ir::Reg, ir::Reg> copies;

        auto invalidate = [&](ir::Reg r) {
            consts.erase(r);
            copies.erase(r);
            for (auto it = copies.begin(); it != copies.end();) {
                if (it->second == r)
                    it = copies.erase(it);
                else
                    ++it;
            }
        };
        auto resolve = [&](ir::Reg r) {
            auto it = copies.find(r);
            return it == copies.end() ? r : it->second;
        };

        for (auto &inst : bb.insts) {
            // Copy-propagate sources first.
            for (auto &s : inst.srcs) {
                ir::Reg repl = resolve(s);
                if (repl != s) {
                    s = repl;
                    ++changed;
                }
            }

            if (inst.isBinaryAlu()) {
                auto a = consts.find(inst.srcs[0]);
                auto b = consts.find(inst.srcs[1]);
                if (a != consts.end() && b != consts.end()) {
                    uint64_t v = foldBinary(inst.op, a->second,
                                            b->second);
                    ir::Reg dest = inst.dest;
                    inst = ir::Instruction{};
                    inst.op = ir::Opcode::ConstInt;
                    inst.dest = dest;
                    inst.imm = static_cast<int64_t>(v);
                    ++changed;
                }
            }

            if (inst.hasDest()) {
                invalidate(inst.dest);
                if (inst.op == ir::Opcode::ConstInt) {
                    consts[inst.dest] =
                        static_cast<uint64_t>(inst.imm);
                } else if (inst.op == ir::Opcode::Mov &&
                           inst.srcs[0] != inst.dest) {
                    copies[inst.dest] = inst.srcs[0];
                    auto it = consts.find(inst.srcs[0]);
                    if (it != consts.end())
                        consts[inst.dest] = it->second;
                }
            }
        }
    }
    return changed;
}

size_t
eliminateDeadCode(ir::Function &fn)
{
    size_t nblocks = fn.numBlocks();

    // Per-block liveness over virtual registers (bit per reg).
    size_t nregs = fn.numRegs();
    auto bitWords = (nregs + 63) / 64;
    using LiveSet = std::vector<uint64_t>;
    auto testBit = [&](const LiveSet &s, ir::Reg r) {
        return (s[r / 64] >> (r % 64)) & 1ULL;
    };
    auto setBit = [&](LiveSet &s, ir::Reg r) {
        s[r / 64] |= 1ULL << (r % 64);
    };
    auto clearBit = [&](LiveSet &s, ir::Reg r) {
        s[r / 64] &= ~(1ULL << (r % 64));
    };

    std::vector<LiveSet> live_in(nblocks, LiveSet(bitWords, 0));
    std::vector<LiveSet> live_out(nblocks, LiveSet(bitWords, 0));

    bool changed_sets = true;
    while (changed_sets) {
        changed_sets = false;
        for (size_t b = nblocks; b-- > 0;) {
            const auto &bb = fn.block(static_cast<ir::BlockId>(b));
            LiveSet out(bitWords, 0);
            for (ir::BlockId succ : bb.successors()) {
                for (size_t w = 0; w < bitWords; ++w)
                    out[w] |= live_in[succ][w];
            }
            LiveSet in = out;
            for (size_t k = bb.insts.size(); k-- > 0;) {
                const auto &inst = bb.insts[k];
                if (inst.hasDest())
                    clearBit(in, inst.dest);
                for (ir::Reg s : inst.srcs)
                    setBit(in, s);
            }
            if (out != live_out[b] || in != live_in[b]) {
                live_out[b] = std::move(out);
                live_in[b] = std::move(in);
                changed_sets = true;
            }
        }
    }

    auto hasSideEffect = [](const ir::Instruction &inst) {
        switch (inst.op) {
          case ir::Opcode::Store:
          case ir::Opcode::Call:
          case ir::Opcode::Br:
          case ir::Opcode::CondBr:
          case ir::Opcode::Ret:
            return true;
          default:
            return false;
        }
    };

    size_t removed = 0;
    for (auto &bb : fn.blocks()) {
        LiveSet live = live_out[bb.id];
        std::vector<bool> keep(bb.insts.size(), true);
        for (size_t k = bb.insts.size(); k-- > 0;) {
            const auto &inst = bb.insts[k];
            bool dead = inst.hasDest() && !hasSideEffect(inst) &&
                !testBit(live, inst.dest);
            if (dead) {
                keep[k] = false;
                ++removed;
                continue;
            }
            if (inst.hasDest())
                clearBit(live, inst.dest);
            for (ir::Reg s : inst.srcs)
                setBit(live, s);
        }
        if (removed > 0) {
            std::vector<ir::Instruction> kept;
            kept.reserve(bb.insts.size());
            for (size_t k = 0; k < bb.insts.size(); ++k) {
                if (keep[k])
                    kept.push_back(std::move(bb.insts[k]));
            }
            bb.insts = std::move(kept);
        }
    }
    return removed;
}

size_t
optimizeModule(ir::Module &module)
{
    size_t total = 0;
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        ir::Function &fn = module.function(f);
        for (;;) {
            size_t n = foldConstants(fn) + eliminateDeadCode(fn);
            total += n;
            if (n == 0)
                break;
        }
    }
    if (total > 0)
        module.renumberLoads();
    return total;
}

} // namespace codegen
} // namespace protean
