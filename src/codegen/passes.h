/**
 * @file
 * IR optimization passes.
 *
 * The paper argues that carrying real IR gives the dynamic compiler
 * "the flexibility of a static compiler". These passes are the
 * concrete demonstration: classic local constant folding / copy
 * propagation and a global liveness-based dead-code elimination that
 * the runtime compiler may run before lowering a variant.
 *
 * Passes mutate the module in place and return the number of
 * instructions they changed or removed, so callers (and tests) can
 * assert on fixpoints.
 */

#ifndef PROTEAN_CODEGEN_PASSES_H
#define PROTEAN_CODEGEN_PASSES_H

#include <cstddef>

#include "ir/module.h"

namespace protean {
namespace codegen {

/**
 * Local constant folding and copy propagation.
 * Tracks register contents within each basic block; binary ALU ops
 * over two known constants become ConstInt, and Mov chains collapse.
 */
size_t foldConstants(ir::Function &fn);

/**
 * Global dead-code elimination.
 * Removes side-effect-free instructions whose destinations are never
 * live. Loads are considered removable (the IR has no volatile), but
 * stores, calls, and terminators are kept.
 */
size_t eliminateDeadCode(ir::Function &fn);

/** Run both passes on every function to a fixpoint. */
size_t optimizeModule(ir::Module &module);

} // namespace codegen
} // namespace protean

#endif // PROTEAN_CODEGEN_PASSES_H
