#include "codegen/cost.h"

// CompileCostModel is header-only; this translation unit anchors the
// library target.
