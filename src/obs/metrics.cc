#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "support/logging.h"

namespace protean {
namespace obs {

namespace detail {

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // %.17g round-trips every double and is deterministic for a
    // given bit pattern; trim to a plain integer form when exact.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        return strformat("%lld",
                         static_cast<long long>(v));
    }
    return strformat("%.17g", v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

} // namespace detail

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    if (bounds_.empty())
        panic("Histogram: needs at least one bucket bound");
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i] <= bounds_[i - 1])
            panic("Histogram: bounds must be ascending");
    }
}

void
Histogram::observe(double x)
{
    size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b])
        ++b;
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[b];
    ++total_;
    sum_ += x;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot) {
        if (bounds.empty()) {
            for (double b = 1.0; b <= 16'777'216.0; b *= 4.0)
                bounds.push_back(b);
        }
        slot = std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot;
}

std::string
MetricsRegistry::toJson() const
{
    using detail::jsonEscape;
    using detail::jsonNumber;

    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        out += strformat("%s\n    \"%s\": %llu", first ? "" : ",",
                         jsonEscape(name).c_str(),
                         static_cast<unsigned long long>(c->value()));
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        out += strformat("%s\n    \"%s\": %s", first ? "" : ",",
                         jsonEscape(name).c_str(),
                         jsonNumber(g->value()).c_str());
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        std::string bounds, counts;
        for (size_t i = 0; i < h->bounds().size(); ++i) {
            bounds += (i ? "," : "") + jsonNumber(h->bounds()[i]);
        }
        for (size_t i = 0; i < h->counts().size(); ++i) {
            counts += strformat(
                "%s%llu", i ? "," : "",
                static_cast<unsigned long long>(h->counts()[i]));
        }
        out += strformat(
            "%s\n    \"%s\": {\"bounds\": [%s], \"counts\": [%s], "
            "\"total\": %llu, \"sum\": %s}",
            first ? "" : ",", jsonEscape(name).c_str(),
            bounds.c_str(), counts.c_str(),
            static_cast<unsigned long long>(h->total()),
            jsonNumber(h->sum()).c_str());
        first = false;
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::string json = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("metrics: cannot open %s for writing", path.c_str());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    debug("metrics: wrote %zu metrics to %s", size(), path.c_str());
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace obs
} // namespace protean
