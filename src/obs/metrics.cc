#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "support/logging.h"

namespace protean {
namespace obs {

namespace detail {

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // %.17g round-trips every double and is deterministic for a
    // given bit pattern; trim to a plain integer form when exact.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        return strformat("%lld",
                         static_cast<long long>(v));
    }
    return strformat("%.17g", v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

std::string
hdrJson(const HdrHistogram &h)
{
    std::string buckets;
    for (const HdrHistogram::Bucket &b : h.nonZeroBuckets()) {
        buckets += strformat(
            "%s[%llu,%llu,%llu]", buckets.empty() ? "" : ",",
            static_cast<unsigned long long>(b.lower),
            static_cast<unsigned long long>(b.upper),
            static_cast<unsigned long long>(b.count));
    }
    return strformat(
        "{\"buckets\": [%s], \"max\": %llu, \"min\": %llu, "
        "\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, "
        "\"p999\": %llu, \"sum\": %llu, \"total\": %llu}",
        buckets.c_str(),
        static_cast<unsigned long long>(h.maxValue()),
        static_cast<unsigned long long>(h.minValue()),
        static_cast<unsigned long long>(h.quantile(0.50)),
        static_cast<unsigned long long>(h.quantile(0.95)),
        static_cast<unsigned long long>(h.quantile(0.99)),
        static_cast<unsigned long long>(h.quantile(0.999)),
        static_cast<unsigned long long>(h.sum()),
        static_cast<unsigned long long>(h.total()));
}

} // namespace detail

void
Histogram::observe(double x)
{
    std::lock_guard<std::mutex> lock(mu_);
    hdr_.observe(x);
}

uint64_t
Histogram::total() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hdr_.total();
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(hdr_.sum());
}

uint64_t
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hdr_.quantile(q);
}

uint64_t
Histogram::minValue() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hdr_.minValue();
}

uint64_t
Histogram::maxValue() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hdr_.maxValue();
}

HdrHistogram
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hdr_;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::setHostScoped(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    hostScoped_.insert(name);
}

bool
MetricsRegistry::isHostScoped(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hostScoped_.count(name) != 0;
}

std::string
MetricsRegistry::toJson() const
{
    using detail::jsonEscape;
    using detail::jsonNumber;

    std::lock_guard<std::mutex> lock(mu_);
    // Host-scoped metrics describe the execution host, not the run;
    // leaving them out keeps snapshots byte-identical across hosts
    // and serial/parallel modes.
    auto skip = [this](const std::string &name) {
        return hostScoped_.count(name) != 0;
    };
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (skip(name))
            continue;
        out += strformat("%s\n    \"%s\": %llu", first ? "" : ",",
                         jsonEscape(name).c_str(),
                         static_cast<unsigned long long>(c->value()));
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (skip(name))
            continue;
        out += strformat("%s\n    \"%s\": %s", first ? "" : ",",
                         jsonEscape(name).c_str(),
                         jsonNumber(g->value()).c_str());
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (skip(name))
            continue;
        out += strformat("%s\n    \"%s\": %s", first ? "" : ",",
                         jsonEscape(name).c_str(),
                         detail::hdrJson(h->snapshot()).c_str());
        first = false;
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::string json = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("metrics: cannot open %s for writing", path.c_str());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    debug("metrics: wrote %zu metrics to %s", size(), path.c_str());
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    hostScoped_.clear();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace obs
} // namespace protean
