/**
 * @file
 * HDR-style log-bucketed histogram with mergeable state and
 * deterministic quantile queries.
 *
 * Values are non-negative integers (simulated cycles, bytes, batch
 * sizes). Small values (< 64) get one bucket each and are recorded
 * exactly; larger values fall into log2 octaves subdivided into 32
 * sub-buckets, bounding the relative quantile error at 1/32
 * (~3.1%) across the full 64-bit range — no configuration, no
 * per-metric bucket bounds, no overflow loss.
 *
 * Everything is integer arithmetic on a fixed bucket layout, so
 * quantile queries are exact-deterministic: the same recorded
 * multiset produces bit-identical p50/p95/p99/p999 on every
 * platform, and merging per-server histograms then querying equals
 * querying a histogram that saw every sample directly. That is the
 * property the fleet telemetry plane is built on: servers record
 * locally, the TelemetryHub merges deltas, and fleet-wide tail
 * latency falls out without shipping raw samples.
 */

#ifndef PROTEAN_OBS_HDR_H
#define PROTEAN_OBS_HDR_H

#include <cstdint>
#include <vector>

namespace protean {
namespace obs {

/** Log-bucketed histogram; see file comment for the layout. */
class HdrHistogram
{
  public:
    /** Sub-bucket precision: 2^kSubBits exact unit buckets, then
     *  kSubCount/2 sub-buckets per octave. */
    static constexpr uint32_t kSubBits = 6;
    static constexpr uint64_t kSubCount = 1ull << kSubBits;
    static constexpr uint64_t kHalf = kSubCount / 2;
    /** Fixed bucket-index space covering all of uint64. */
    static constexpr uint32_t kNumBuckets =
        static_cast<uint32_t>(kSubCount + (63 - kSubBits + 1) * kHalf);

    HdrHistogram() = default;

    /** Record `count` occurrences of `value`. */
    void record(uint64_t value, uint64_t count = 1);

    /** Record a double observation: negatives clamp to 0, huge
     *  values saturate into the top bucket. */
    void observe(double x);

    /** Add another histogram's counts into this one. */
    void merge(const HdrHistogram &other);

    /** Remove every count (state reuse across rollup windows). */
    void clear();

    bool empty() const { return total_ == 0; }
    uint64_t total() const { return total_; }
    /** Sum of recorded values (callers record cycle-scale values;
     *  the accumulator is not overflow-checked). */
    uint64_t sum() const { return sum_; }
    /** Exact smallest/largest recorded value; 0 when empty. */
    uint64_t minValue() const { return total_ == 0 ? 0 : min_; }
    uint64_t maxValue() const { return max_; }

    /**
     * Value at quantile q in [0, 1]: the upper edge of the bucket
     * holding the sample of rank ceil(q * total) (rank clamps to
     * [1, total]). Exact for values < 64; within 1/32 above the true
     * sample otherwise. Returns 0 when empty.
     */
    uint64_t quantile(double q) const;

    /** Mean of recorded values (0 when empty). */
    double mean() const
    {
        return total_ == 0 ? 0.0 :
            static_cast<double>(sum_) / static_cast<double>(total_);
    }

    /** One non-empty bucket, for exports. */
    struct Bucket
    {
        uint64_t lower; //!< Smallest value mapping to this bucket.
        uint64_t upper; //!< Largest value mapping to this bucket.
        uint64_t count;
    };

    /** Non-empty buckets in ascending value order. */
    std::vector<Bucket> nonZeroBuckets() const;

    /** Bucket index a value maps to (exposed for tests). */
    static uint32_t indexFor(uint64_t value);
    /** Inclusive value range of a bucket index. */
    static uint64_t lowerEdge(uint32_t index);
    static uint64_t upperEdge(uint32_t index);

  private:
    /** Dense counts, sized on first record (kNumBuckets entries). */
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

} // namespace obs
} // namespace protean

#endif // PROTEAN_OBS_HDR_H
