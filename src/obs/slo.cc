#include "obs/slo.h"

#include <algorithm>

#include "obs/metrics.h"
#include "support/logging.h"

namespace protean {
namespace obs {

void
SloMonitor::addSpec(SloSpec spec)
{
    if (spec.name.empty() || spec.field.empty())
        panic("SloMonitor: spec needs a name and a field");
    if (spec.shortWindows == 0 ||
        spec.shortWindows > spec.longWindows)
        panic("SloMonitor: need 0 < shortWindows <= longWindows");
    if (spec.budget <= 0.0)
        panic("SloMonitor: budget must be positive");
    State st;
    st.spec = specs_.size();
    specs_.push_back(std::move(spec));
    states_.push_back(std::move(st));
}

double
SloMonitor::burnRate(const State &st, uint32_t span, double budget)
{
    if (st.history.empty())
        return 0.0;
    uint32_t n = std::min<uint32_t>(
        span, static_cast<uint32_t>(st.history.size()));
    uint64_t bad = 0;
    for (uint32_t i = 0; i < n; ++i)
        bad += st.history[st.history.size() - 1 - i];
    // Burn relative to the *full* span: a single bad window early in
    // a run must not read as a 100% burn.
    return (static_cast<double>(bad) / span) / budget;
}

std::vector<std::string>
SloMonitor::observeWindow(uint64_t windowIndex,
                          const std::map<std::string, double> &fields)
{
    std::vector<std::string> raised;
    for (State &st : states_) {
        const SloSpec &spec = specs_[st.spec];
        auto it = fields.find(spec.field);
        bool bad = it != fields.end() && it->second > spec.threshold;
        st.history.push_back(bad ? 1 : 0);
        if (st.history.size() > spec.longWindows)
            st.history.pop_front();
        st.badTotal += bad ? 1 : 0;

        double shortBurn =
            burnRate(st, spec.shortWindows, spec.budget);
        double longBurn = burnRate(st, spec.longWindows, spec.budget);
        bool over = shortBurn >= spec.burnThreshold &&
                    longBurn >= spec.burnThreshold;
        if (over && !st.firing) {
            st.firing = true;
            st.activeAlert = alerts_.size();
            alerts_.push_back(SloAlert{spec.name, windowIndex,
                                       UINT64_MAX, shortBurn,
                                       longBurn});
            raised.push_back(spec.name);
        } else if (st.firing &&
                   shortBurn < spec.burnThreshold) {
            st.firing = false;
            alerts_[st.activeAlert].clearedWindow = windowIndex;
        }
    }
    return raised;
}

bool
SloMonitor::firing(const std::string &slo) const
{
    for (const State &st : states_) {
        if (specs_[st.spec].name == slo)
            return st.firing;
    }
    return false;
}

bool
SloMonitor::everFired(const std::string &slo) const
{
    for (const SloAlert &a : alerts_) {
        if (a.slo == slo)
            return true;
    }
    return false;
}

uint64_t
SloMonitor::badWindows(const std::string &slo) const
{
    for (const State &st : states_) {
        if (specs_[st.spec].name == slo)
            return st.badTotal;
    }
    return 0;
}

std::string
SloMonitor::toJson() const
{
    using detail::jsonEscape;
    using detail::jsonNumber;

    std::string out = "{\"alerts\": [";
    for (size_t i = 0; i < alerts_.size(); ++i) {
        const SloAlert &a = alerts_[i];
        std::string cleared =
            a.clearedWindow == UINT64_MAX ?
                "null" :
                strformat("%llu", static_cast<unsigned long long>(
                                      a.clearedWindow));
        out += strformat(
            "%s{\"cleared_window\": %s, \"long_burn\": %s, "
            "\"raised_window\": %llu, \"short_burn\": %s, "
            "\"slo\": \"%s\"}",
            i ? "," : "", cleared.c_str(),
            jsonNumber(a.longBurn).c_str(),
            static_cast<unsigned long long>(a.raisedWindow),
            jsonNumber(a.shortBurn).c_str(),
            jsonEscape(a.slo).c_str());
    }
    out += "], \"specs\": [";
    for (size_t i = 0; i < specs_.size(); ++i) {
        const SloSpec &s = specs_[i];
        out += strformat(
            "%s{\"bad_windows\": %llu, \"budget\": %s, "
            "\"burn_threshold\": %s, \"field\": \"%s\", "
            "\"long_windows\": %u, \"name\": \"%s\", "
            "\"short_windows\": %u, \"threshold\": %s}",
            i ? "," : "",
            static_cast<unsigned long long>(states_[i].badTotal),
            jsonNumber(s.budget).c_str(),
            jsonNumber(s.burnThreshold).c_str(),
            jsonEscape(s.field).c_str(), s.longWindows,
            jsonEscape(s.name).c_str(), s.shortWindows,
            jsonNumber(s.threshold).c_str());
    }
    out += "]}";
    return out;
}

} // namespace obs
} // namespace protean
