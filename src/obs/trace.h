/**
 * @file
 * Span/event tracer stamped with simulated-cycle time.
 *
 * Timestamps come from a pluggable clock — in practice the live
 * `sim::Machine`, which registers itself on construction — so traces
 * are fully deterministic: no wall clock anywhere. Recording is
 * disabled by default; benches enable it when `--trace=<path>` is
 * given. The export is Chrome `chrome://tracing` JSON (the `ts`
 * field carries simulated cycles, not microseconds), so a run can be
 * opened directly in Perfetto.
 *
 * Lanes ("runtime", "pc3d", "sim.core0", ...) map to Chrome thread
 * ids in first-use order and are named via thread_name metadata
 * records, giving each subsystem its own track in the viewer.
 */

#ifndef PROTEAN_OBS_TRACE_H
#define PROTEAN_OBS_TRACE_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace protean {
namespace obs {

/** Cycle-stamped event recorder with a Chrome-trace exporter. */
class Tracer
{
  public:
    /**
     * Install the cycle clock. Clocks stack: the newest owner wins,
     * and clearClock(owner) removes that owner's entry wherever it
     * sits, restoring the previous clock (machines nest, e.g. a solo
     * reference measured inside a colocation run).
     */
    void setClock(std::function<uint64_t()> clock, const void *owner);
    void clearClock(const void *owner);

    /** Current cycle stamp; 0 without a clock. */
    uint64_t now() const;

    /** Enable/disable recording (disabled records nothing). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Instant event on a lane.
     * @param args_json Optional JSON object *body* — key/value pairs
     *        without the surrounding braces, e.g. "\"func\":3".
     */
    void instant(const std::string &lane, const std::string &name,
                 std::string args_json = "");

    /** Completed span with explicit cycle bounds. */
    void complete(const std::string &lane, const std::string &name,
                  uint64_t start_cycle, uint64_t end_cycle,
                  std::string args_json = "");

    /** Counter-track sample (renders as a value graph). */
    void counter(const std::string &lane, const std::string &name,
                 double value);

    size_t eventCount() const { return events_.size(); }

    /** Drop recorded events and lane mappings (clocks persist). */
    void clear();

    /** Serialize as Chrome trace JSON ({"traceEvents": [...]}). */
    std::string toChromeJson() const;

    /** Write the Chrome trace; fatal on I/O failure. */
    void writeChromeJson(const std::string &path) const;

  private:
    enum class Kind : uint8_t { Instant, Complete, Counter };

    struct Event
    {
        Kind kind;
        uint32_t lane;
        uint64_t ts;
        uint64_t dur;      // Complete only
        double value;      // Counter only
        std::string name;
        std::string args;  // Instant/Complete: JSON body or empty
    };

    struct Clock
    {
        const void *owner;
        std::function<uint64_t()> fn;
    };

    bool enabled_ = false;
    std::vector<Clock> clocks_;
    std::vector<Event> events_;
    std::vector<std::string> lanes_;
    std::unordered_map<std::string, uint32_t> laneIds_;

    uint32_t laneId(const std::string &lane);
};

/** The process-wide tracer used by all instrumentation. */
Tracer &tracer();

} // namespace obs
} // namespace protean

#endif // PROTEAN_OBS_TRACE_H
