/**
 * @file
 * Metrics registry: named counters, gauges, and HDR log-bucketed
 * histograms with hierarchical dotted names (`runtime.compile.cycles`,
 * `sim.l3.misses`, `pc3d.search.steps`).
 *
 * Increments are cheap inline operations on handles that stay valid
 * for the registry's lifetime, so hot paths can look a metric up once
 * and update it directly. Snapshots export to JSON with sorted,
 * stable keys: two identical (deterministic) runs produce
 * byte-identical files. Histogram exports carry deterministic
 * quantile summaries (p50/p95/p99/p999) computed from the bucket
 * layout — see obs/hdr.h.
 */

#ifndef PROTEAN_OBS_METRICS_H
#define PROTEAN_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/hdr.h"

namespace protean {
namespace obs {

/**
 * Monotonic counter. Increments are relaxed atomics so machine
 * callbacks running on a parallel fleet's worker threads (see
 * fleet::Cluster::setParallel) can instrument concurrently; sums are
 * order-independent, keeping exports byte-identical to serial runs.
 */
class Counter
{
  public:
    void inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-value gauge. Writes race-free but last-write-wins; parallel
 *  fleet phases must not set the same gauge from two machines (the
 *  instrumented paths only set gauges from the coordinator). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** HDR log-bucketed histogram (obs/hdr.h) behind a lock: values
 *  below 64 record exactly, larger ones with <=1/32 relative error,
 *  across the full 64-bit range with no per-metric bucket
 *  configuration. observe() is internally locked; bucket counts and
 *  integer sums are order-independent, so parallel observation keeps
 *  exports deterministic. */
class Histogram
{
  public:
    Histogram() = default;

    void observe(double x);

    uint64_t total() const;
    /** Sum of recorded (rounded-to-integer) observations. */
    double sum() const;
    /** Deterministic quantile: upper bucket edge at rank
     *  ceil(q * total); 0 when empty (see HdrHistogram::quantile). */
    uint64_t quantile(double q) const;
    uint64_t minValue() const;
    uint64_t maxValue() const;

    /** Copy of the underlying state (merging, deltas, exports). */
    HdrHistogram snapshot() const;

  private:
    HdrHistogram hdr_;
    mutable std::mutex mu_;
};

/** Named metrics, hierarchically dotted, exported with stable keys.
 *  Find-or-create is internally locked, so instrumentation may run
 *  from fleet worker threads; handles stay valid until reset(). */
class MetricsRegistry
{
  public:
    /** Find-or-create; the reference stays valid until reset(). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /** Find-or-create; HDR layout needs no per-metric bounds. */
    Histogram &histogram(const std::string &name);

    /**
     * Mark a metric name host-scoped: it describes the machine the
     * simulation happens to run on (clamped worker pools, hardware
     * thread counts), not the simulation itself, so it legitimately
     * differs across hosts and serial/parallel modes. Host-scoped
     * metrics stay queryable through their handles but are excluded
     * from toJson()/writeJson() — deterministic exports must be
     * byte-identical wherever a run executes.
     */
    void setHostScoped(const std::string &name);
    bool isHostScoped(const std::string &name) const;

    /** Snapshot as a JSON object with sorted keys (host-scoped
     *  metrics omitted; see setHostScoped). */
    std::string toJson() const;

    /** Write the snapshot; fatal on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Drop every metric (test isolation between runs). Invalidates
     *  previously returned handles — no instrumented object may be
     *  live across a reset. */
    void reset();

    size_t size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_.size() + gauges_.size() + histograms_.size();
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::set<std::string> hostScoped_;
};

/** The process-wide registry used by all instrumentation. */
MetricsRegistry &metrics();

namespace detail {
/** Deterministic JSON number formatting (shortest round-trip). */
std::string jsonNumber(double v);
/** JSON string escaping. */
std::string jsonEscape(const std::string &s);
/** HDR histogram as a JSON object with fixed key order:
 *  {"buckets": [[lo,hi,count],...], "max", "min", "p50", "p95",
 *   "p99", "p999", "sum", "total"}. Byte-stable for a given state. */
std::string hdrJson(const HdrHistogram &h);
} // namespace detail

} // namespace obs
} // namespace protean

#endif // PROTEAN_OBS_METRICS_H
