#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"
#include "support/logging.h"

namespace protean {
namespace obs {

void
Tracer::setClock(std::function<uint64_t()> clock, const void *owner)
{
    clearClock(owner);
    clocks_.push_back(Clock{owner, std::move(clock)});
}

void
Tracer::clearClock(const void *owner)
{
    for (size_t i = clocks_.size(); i > 0; --i) {
        if (clocks_[i - 1].owner == owner) {
            clocks_.erase(clocks_.begin() +
                          static_cast<ptrdiff_t>(i - 1));
            return;
        }
    }
}

uint64_t
Tracer::now() const
{
    return clocks_.empty() ? 0 : clocks_.back().fn();
}

uint32_t
Tracer::laneId(const std::string &lane)
{
    auto it = laneIds_.find(lane);
    if (it != laneIds_.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(lanes_.size());
    lanes_.push_back(lane);
    laneIds_.emplace(lane, id);
    return id;
}

void
Tracer::instant(const std::string &lane, const std::string &name,
                std::string args_json)
{
    if (!enabled_)
        return;
    events_.push_back(Event{Kind::Instant, laneId(lane), now(), 0,
                            0.0, name, std::move(args_json)});
}

void
Tracer::complete(const std::string &lane, const std::string &name,
                 uint64_t start_cycle, uint64_t end_cycle,
                 std::string args_json)
{
    if (!enabled_)
        return;
    uint64_t dur =
        end_cycle >= start_cycle ? end_cycle - start_cycle : 0;
    events_.push_back(Event{Kind::Complete, laneId(lane), start_cycle,
                            dur, 0.0, name, std::move(args_json)});
}

void
Tracer::counter(const std::string &lane, const std::string &name,
                double value)
{
    if (!enabled_)
        return;
    events_.push_back(Event{Kind::Counter, laneId(lane), now(), 0,
                            value, name, ""});
}

void
Tracer::clear()
{
    events_.clear();
    lanes_.clear();
    laneIds_.clear();
}

std::string
Tracer::toChromeJson() const
{
    using detail::jsonEscape;
    using detail::jsonNumber;

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        out += first ? "\n" : ",\n";
        first = false;
    };

    for (size_t i = 0; i < lanes_.size(); ++i) {
        sep();
        out += strformat(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
            i, jsonEscape(lanes_[i]).c_str());
    }

    for (const auto &e : events_) {
        sep();
        std::string head = strformat(
            "{\"name\":\"%s\",\"pid\":1,\"tid\":%u,\"ts\":%llu",
            jsonEscape(e.name).c_str(), e.lane,
            static_cast<unsigned long long>(e.ts));
        switch (e.kind) {
          case Kind::Instant:
            out += head + ",\"ph\":\"i\",\"s\":\"t\"";
            if (!e.args.empty())
                out += ",\"args\":{" + e.args + "}";
            out += "}";
            break;
          case Kind::Complete:
            out += head +
                strformat(",\"ph\":\"X\",\"dur\":%llu",
                          static_cast<unsigned long long>(e.dur));
            if (!e.args.empty())
                out += ",\"args\":{" + e.args + "}";
            out += "}";
            break;
          case Kind::Counter:
            out += head + ",\"ph\":\"C\",\"args\":{\"value\":" +
                jsonNumber(e.value) + "}}";
            break;
        }
    }
    out += "\n],\"displayTimeUnit\":\"ns\"}\n";
    return out;
}

void
Tracer::writeChromeJson(const std::string &path) const
{
    std::string json = toChromeJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("tracer: cannot open %s for writing", path.c_str());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    debug("tracer: wrote %zu events (%zu lanes) to %s",
          events_.size(), lanes_.size(), path.c_str());
}

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

} // namespace obs
} // namespace protean
