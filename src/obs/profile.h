/**
 * @file
 * GWP-style continuous profile: mergeable sample counts keyed by
 * (function content hash, variant NT-mask, phase id).
 *
 * The fleet's whole-system profiler (paper Section III-B3 scaled to
 * a warehouse) needs one data structure: a map from "what code was
 * running, in which variant, during which workload phase" to "how
 * many PC samples landed there and what they cost". Every server
 * records into its own Profile during its own quanta; the telemetry
 * hub drains and merges them at cluster barriers. Merging is plain
 * count addition — associative, commutative, quantile-free — so a
 * fleet-merged profile equals the profile one observer recording
 * every sample would have produced, regardless of merge order or
 * worker count.
 *
 * Exports are byte-stable: entries live in a std::map ordered by
 * (hash, mask, phase); JSON emits that order; the folded-stack
 * export (`phase;function;variant count` lines) is consumable by
 * flamegraph.pl and speedscope as collapsed stacks.
 */

#ifndef PROTEAN_OBS_PROFILE_H
#define PROTEAN_OBS_PROFILE_H

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

namespace protean {
namespace obs {

/** Attribution key of one profile bucket. */
struct ProfileKey
{
    /** ir::functionHash content address (0 = unattributed). */
    uint64_t funcHash = 0;
    /** Restricted NT-mask key of the running variant ("" = the
     *  original static code). */
    std::string mask;
    /** Workload phase id at sample time (monotonic per server). */
    uint32_t phase = 0;

    bool operator<(const ProfileKey &o) const
    {
        return std::tie(funcHash, mask, phase) <
            std::tie(o.funcHash, o.mask, o.phase);
    }
    bool operator==(const ProfileKey &o) const
    {
        return funcHash == o.funcHash && mask == o.mask &&
            phase == o.phase;
    }
};

/** What accumulated under one key. */
struct ProfileCounts
{
    uint64_t samples = 0;
    /** Host-core cycle delta attributed to these samples. */
    uint64_t cycles = 0;
    /** Host-core instruction delta attributed to these samples. */
    uint64_t instructions = 0;

    void add(const ProfileCounts &o)
    {
        samples += o.samples;
        cycles += o.cycles;
        instructions += o.instructions;
    }
};

/** Deterministic, mergeable continuous profile. */
class Profile
{
  public:
    /** Fold counts into the bucket for `key`. */
    void record(const ProfileKey &key, const ProfileCounts &counts);

    /** Attach a human-readable name to a function hash (idempotent;
     *  first writer wins — identical binaries agree anyway). */
    void setName(uint64_t func_hash, const std::string &name);

    /** Add another profile's buckets and names into this one. */
    void merge(const Profile &other);

    /** Move this profile's contents into `into`, leaving this one
     *  empty (window drains). */
    void drainInto(Profile &into);

    void clear();

    bool empty() const { return entries_.empty(); }
    uint64_t totalSamples() const { return totalSamples_; }

    const std::map<ProfileKey, ProfileCounts> &entries() const
    {
        return entries_;
    }
    const std::map<uint64_t, std::string> &names() const
    {
        return names_;
    }

    /** Name for a hash; "f<hex>" when never named, "[unattributed]"
     *  for hash 0. */
    std::string nameOf(uint64_t func_hash) const;

    /** Hash of the function with the most samples summed over all
     *  its (mask, phase) buckets; 0 when empty. Ties break toward
     *  the smaller hash, so the answer is deterministic. */
    uint64_t hottestFunction() const;

    /** Samples of one function summed over masks and phases. */
    uint64_t samplesOf(uint64_t func_hash) const;

    /**
     * Whole profile as one JSON object with stable key order:
     * {"entries": [{"func","hash","mask","phase","samples","cycles",
     * "instructions"}...], "total_samples"}. Byte-identical for
     * identical contents.
     */
    std::string toJson() const;

    /**
     * Folded-stack export: one `phase_P;func;variant count` line per
     * bucket, ordered by key — pipe into flamegraph.pl or import
     * into speedscope. The variant frame is `mask_<key>` or
     * `original`.
     */
    std::string folded() const;

    /** Write folded() / toJson(); fatal on I/O failure. */
    void writeFolded(const std::string &path) const;
    void writeJson(const std::string &path) const;

  private:
    std::map<ProfileKey, ProfileCounts> entries_;
    std::map<uint64_t, std::string> names_;
    uint64_t totalSamples_ = 0;
};

} // namespace obs
} // namespace protean

#endif // PROTEAN_OBS_PROFILE_H
