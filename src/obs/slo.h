/**
 * @file
 * Declarative SLO specs with multi-window burn-rate alerting.
 *
 * An SLO names a per-window telemetry field and a threshold: a rollup
 * window is *bad* when the field exceeds the threshold (e.g.
 * `p99_flip_latency < N cycles` is bad when the window's p99 goes
 * above N). Each SLO carries an error budget — the tolerated fraction
 * of bad windows — and the monitor tracks the *burn rate*: the
 * observed bad-window fraction divided by that budget, over both a
 * short and a long trailing span of windows.
 *
 * An alert fires only when BOTH burn rates reach the alerting
 * threshold: the long window keeps one-off blips from paging, the
 * short window makes the alert clear quickly once the fault stops.
 * This is the standard multi-window burn-rate construction from SRE
 * practice, scaled down to simulated windows.
 *
 * Everything is counting on integer window verdicts, so alert
 * sequences are exact-deterministic: the same telemetry stream raises
 * byte-identical alert logs on every platform and regardless of
 * serial vs. parallel fleet stepping.
 */

#ifndef PROTEAN_OBS_SLO_H
#define PROTEAN_OBS_SLO_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace protean {
namespace obs {

/** One declarative SLO: `field <= threshold` per window. */
struct SloSpec
{
    std::string name;  //!< e.g. "flip_latency_p99"
    std::string field; //!< telemetry window field to evaluate
    /** A window is bad when the field's value exceeds this. */
    double threshold = 0.0;
    /** Tolerated bad-window fraction (the error budget). */
    double budget = 0.05;
    /** Trailing spans, in windows. shortWindows <= longWindows. */
    uint32_t shortWindows = 2;
    uint32_t longWindows = 8;
    /** Fire when both spans' burn rates reach this multiple. */
    double burnThreshold = 1.0;
};

/** One alert episode (raised, possibly later cleared). */
struct SloAlert
{
    std::string slo;
    uint64_t raisedWindow = 0;  //!< window index at raise time
    uint64_t clearedWindow = 0; //!< UINT64_MAX while still firing
    double shortBurn = 0.0;     //!< burn rates at raise time
    double longBurn = 0.0;
};

/**
 * Evaluates SLO specs against a stream of closed rollup windows.
 * Feed each window's field values in order; alerts are rising-edge
 * episodes that clear when the short-window burn drops back under
 * the threshold.
 */
class SloMonitor
{
  public:
    void addSpec(SloSpec spec);

    const std::vector<SloSpec> &specs() const { return specs_; }

    /**
     * Evaluate one closed window. `fields` maps field name to the
     * window's value; an SLO whose field is absent treats the window
     * as good. Returns the names of alerts newly raised by this
     * window.
     */
    std::vector<std::string>
    observeWindow(uint64_t windowIndex,
                  const std::map<std::string, double> &fields);

    /** All alert episodes, in raise order. */
    const std::vector<SloAlert> &alerts() const { return alerts_; }

    /** Is this SLO's alert currently raised? */
    bool firing(const std::string &slo) const;

    /** Did this SLO ever raise an alert? */
    bool everFired(const std::string &slo) const;

    /** Total bad windows seen for an SLO (0 if unknown). */
    uint64_t badWindows(const std::string &slo) const;

    /** Specs and alert episodes as a JSON object with stable key
     *  order (byte-identical for identical streams). */
    std::string toJson() const;

  private:
    struct State
    {
        size_t spec;                  //!< index into specs_
        std::deque<uint8_t> history;  //!< 1 = bad, newest at back
        uint64_t badTotal = 0;
        bool firing = false;
        size_t activeAlert = 0;       //!< index into alerts_
    };

    /** Bad-window fraction over the trailing `span` windows,
     *  divided by the budget. */
    static double burnRate(const State &st, uint32_t span,
                           double budget);

    std::vector<SloSpec> specs_;
    std::vector<State> states_;
    std::vector<SloAlert> alerts_;
};

} // namespace obs
} // namespace protean

#endif // PROTEAN_OBS_SLO_H
