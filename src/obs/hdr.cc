#include "obs/hdr.h"

#include <algorithm>
#include <cmath>

namespace protean {
namespace obs {

namespace {

/** Position of the most significant set bit (value must be > 0). */
inline uint32_t
msbPosition(uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return 63u - static_cast<uint32_t>(__builtin_clzll(v));
#else
    uint32_t p = 0;
    while (v >>= 1)
        ++p;
    return p;
#endif
}

} // namespace

uint32_t
HdrHistogram::indexFor(uint64_t value)
{
    if (value < kSubCount)
        return static_cast<uint32_t>(value);
    uint32_t msb = msbPosition(value);
    // Octave group g >= 1 holds [kHalf << g, kSubCount << g) with
    // kHalf sub-buckets of width 2^g each.
    uint32_t g = msb - kSubBits + 1;
    uint64_t sub = value >> g; // in [kHalf, kSubCount)
    return static_cast<uint32_t>(kSubCount + (g - 1) * kHalf +
                                 (sub - kHalf));
}

uint64_t
HdrHistogram::lowerEdge(uint32_t index)
{
    if (index < kSubCount)
        return index;
    uint32_t g = (index - kSubCount) / kHalf + 1;
    uint64_t sub = kHalf + (index - kSubCount) % kHalf;
    return sub << g;
}

uint64_t
HdrHistogram::upperEdge(uint32_t index)
{
    if (index < kSubCount)
        return index;
    uint32_t g = (index - kSubCount) / kHalf + 1;
    uint64_t sub = kHalf + (index - kSubCount) % kHalf;
    // ((sub + 1) << g) - 1; the very top bucket saturates.
    uint64_t next = (sub + 1) << g;
    return next == 0 ? UINT64_MAX : next - 1;
}

void
HdrHistogram::record(uint64_t value, uint64_t count)
{
    if (count == 0)
        return;
    if (counts_.empty())
        counts_.assign(kNumBuckets, 0);
    counts_[indexFor(value)] += count;
    total_ += count;
    sum_ += value * count;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
HdrHistogram::observe(double x)
{
    uint64_t v;
    if (!(x > 0.0)) // negatives and NaN clamp to zero
        v = 0;
    else if (x >= 18446744073709549568.0) // largest double < 2^64
        v = UINT64_MAX;
    else
        v = static_cast<uint64_t>(x + 0.5);
    record(v);
}

void
HdrHistogram::merge(const HdrHistogram &other)
{
    if (other.total_ == 0)
        return;
    if (counts_.empty())
        counts_.assign(kNumBuckets, 0);
    for (uint32_t i = 0; i < kNumBuckets; ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
HdrHistogram::clear()
{
    if (!counts_.empty())
        std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
}

uint64_t
HdrHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    rank = std::min(total_, std::max<uint64_t>(1, rank));
    uint64_t cum = 0;
    for (uint32_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (cum >= rank) {
            // Clamp the bucket's upper edge to the exact max: the
            // top non-empty bucket must never report past the
            // largest recorded value.
            return std::min(upperEdge(i), max_);
        }
    }
    return max_;
}

std::vector<HdrHistogram::Bucket>
HdrHistogram::nonZeroBuckets() const
{
    std::vector<Bucket> out;
    for (uint32_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] != 0)
            out.push_back(Bucket{lowerEdge(i), upperEdge(i),
                                 counts_[i]});
    }
    return out;
}

} // namespace obs
} // namespace protean
