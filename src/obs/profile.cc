#include "obs/profile.h"

#include <cstdio>

#include "support/logging.h"

namespace protean {
namespace obs {

void
Profile::record(const ProfileKey &key, const ProfileCounts &counts)
{
    entries_[key].add(counts);
    totalSamples_ += counts.samples;
}

void
Profile::setName(uint64_t func_hash, const std::string &name)
{
    names_.emplace(func_hash, name);
}

void
Profile::merge(const Profile &other)
{
    for (const auto &[key, counts] : other.entries_)
        entries_[key].add(counts);
    for (const auto &[hash, name] : other.names_)
        names_.emplace(hash, name);
    totalSamples_ += other.totalSamples_;
}

void
Profile::drainInto(Profile &into)
{
    into.merge(*this);
    clear();
}

void
Profile::clear()
{
    entries_.clear();
    names_.clear();
    totalSamples_ = 0;
}

std::string
Profile::nameOf(uint64_t func_hash) const
{
    if (func_hash == 0)
        return "[unattributed]";
    auto it = names_.find(func_hash);
    if (it != names_.end())
        return it->second;
    return strformat("f%llx",
                     static_cast<unsigned long long>(func_hash));
}

uint64_t
Profile::hottestFunction() const
{
    // Per-function sums in hash order; strict '>' keeps the first
    // (smallest) hash on ties.
    std::map<uint64_t, uint64_t> byFunc;
    for (const auto &[key, counts] : entries_)
        byFunc[key.funcHash] += counts.samples;
    uint64_t best = 0, bestSamples = 0;
    for (const auto &[hash, samples] : byFunc) {
        if (samples > bestSamples) {
            best = hash;
            bestSamples = samples;
        }
    }
    return best;
}

uint64_t
Profile::samplesOf(uint64_t func_hash) const
{
    uint64_t n = 0;
    for (const auto &[key, counts] : entries_) {
        if (key.funcHash == func_hash)
            n += counts.samples;
    }
    return n;
}

std::string
Profile::toJson() const
{
    std::string out = "{\n\"entries\": [";
    bool first = true;
    for (const auto &[key, counts] : entries_) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        out += strformat(
            "{\"func\": \"%s\", \"hash\": \"%llx\", "
            "\"mask\": \"%s\", \"phase\": %u, \"samples\": %llu, "
            "\"cycles\": %llu, \"instructions\": %llu}",
            nameOf(key.funcHash).c_str(),
            static_cast<unsigned long long>(key.funcHash),
            key.mask.c_str(), key.phase,
            static_cast<unsigned long long>(counts.samples),
            static_cast<unsigned long long>(counts.cycles),
            static_cast<unsigned long long>(counts.instructions));
    }
    out += first ? "],\n" : "\n],\n";
    out += strformat("\"total_samples\": %llu\n}\n",
                     static_cast<unsigned long long>(totalSamples_));
    return out;
}

std::string
Profile::folded() const
{
    std::string out;
    for (const auto &[key, counts] : entries_) {
        out += strformat(
            "phase_%u;%s;%s %llu\n", key.phase,
            nameOf(key.funcHash).c_str(),
            key.mask.empty() ? "original" :
                               ("mask_" + key.mask).c_str(),
            static_cast<unsigned long long>(counts.samples));
    }
    return out;
}

namespace {

void
writeFile(const std::string &path, const std::string &data,
          const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("profile: cannot open %s for writing (%s)",
              path.c_str(), what);
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
}

} // namespace

void
Profile::writeFolded(const std::string &path) const
{
    writeFile(path, folded(), "folded stacks");
    debug("profile: wrote %zu folded buckets to %s", entries_.size(),
          path.c_str());
}

void
Profile::writeJson(const std::string &path) const
{
    writeFile(path, toJson(), "json");
    debug("profile: wrote %zu buckets to %s", entries_.size(),
          path.c_str());
}

} // namespace obs
} // namespace protean
