#include "reqos/reqos.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace reqos {

ReQosController::ReQosController(sim::Machine &machine,
                                 runtime::NapGovernor &governor,
                                 runtime::QosMonitor &qos,
                                 const ReQosOptions &opts)
    : machine_(machine), governor_(governor), qos_(qos), opts_(opts),
      hpm_(machine), qosSmooth_(opts.qosAlpha),
      alive_(std::make_shared<bool>(true))
{
    for (size_t i = 0; i < qos.coCores().size(); ++i)
        coPhase_.emplace_back(0.5);
}

ReQosController::~ReQosController()
{
    *alive_ = false;
}

void
ReQosController::start()
{
    if (started_)
        return;
    started_ = true;
    qos_.start();
    qos_.clearTaint();
    machine_.scheduleAfter(machine_.msToCycles(opts_.windowMs),
                           [this, alive = alive_] {
                               if (*alive)
                                   window();
                           });
}

void
ReQosController::window()
{
    // Co-runner phase changes invalidate the flux solo reference:
    // re-prime it and hold the nap until it is re-established.
    bool phase_change = false;
    for (size_t i = 0; i < qos_.coCores().size(); ++i) {
        sim::HpmCounters d = hpm_.window(qos_.coCores()[i]);
        phase_change |= coPhase_[i].update(d.ipc());
    }
    if (phase_change) {
        obs::tracer().instant("reqos", "co_phase_change");
        qos_.reprime();
    }

    double raw = qos_.minQosWindow();
    bool tainted = qos_.windowTainted() || phase_change;
    qos_.clearTaint();
    if (phase_change)
        qosSmooth_.reset();
    if (!tainted) {
        ++windows_;
        obs::metrics().counter("reqos.windows").inc();
        double smooth = qosSmooth_.add(raw);
        lastQos_ = smooth;
        obs::metrics().gauge("reqos.qos.last").set(smooth);
        obs::tracer().counter("reqos", "qos", smooth);
        // Fast attack on the raw signal (a QoS violation must be
        // arrested immediately), slow release on the smoothed one
        // (request quantization makes single windows noisy).
        if (raw < opts_.qosTarget - opts_.slack) {
            nap_ += opts_.gain * (opts_.qosTarget - raw);
        } else if (smooth > opts_.qosTarget + opts_.slack) {
            nap_ -= std::min(opts_.release +
                             0.3 * (smooth - opts_.qosTarget), 0.08);
        }
        nap_ = std::clamp(nap_, 0.0, opts_.napCap);
        governor_.setControllerNap(nap_);
    }
    machine_.scheduleAfter(machine_.msToCycles(opts_.windowMs),
                           [this, alive = alive_] {
                               if (*alive)
                                   window();
                           });
}

} // namespace reqos
} // namespace protean
