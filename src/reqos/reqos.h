/**
 * @file
 * ReQoS baseline (Tang et al., ASPLOS 2013 — reference [10] of the
 * paper).
 *
 * ReQoS protects high-priority co-runners purely by napping the
 * low-priority application: a feedback controller adjusts the nap
 * intensity until the co-runners' QoS (measured with the same
 * flux-probe mechanism PC3D uses) meets the target. It never
 * transforms code, which is exactly why PC3D outperforms it on
 * hint-friendly workloads — napping sacrifices host throughput
 * one-for-one, while non-temporal hints shed cache pressure almost
 * for free.
 */

#ifndef PROTEAN_REQOS_REQOS_H
#define PROTEAN_REQOS_REQOS_H

#include <memory>

#include "runtime/monitor.h"
#include "runtime/qos.h"
#include "sim/machine.h"

namespace protean {
namespace reqos {

/** Controller tuning. */
struct ReQosOptions
{
    double qosTarget = 0.95;
    /** Control interval. */
    double windowMs = 150.0;
    /** EWMA weight for smoothing the per-window QoS estimate before
     *  acting on it (request quantization makes single windows
     *  noisy, especially at low load). */
    double qosAlpha = 0.3;
    /** Proportional gain on QoS deficit. */
    double gain = 1.4;
    /** Nap released per interval when QoS is comfortably met. */
    double release = 0.02;
    double napCap = 0.98;
    /** Hysteresis around the target. */
    double slack = 0.01;
};

/** Nap-only QoS feedback controller. */
class ReQosController
{
  public:
    /**
     * @param machine The machine.
     * @param governor Nap governor of the throttled (host) core.
     * @param qos QoS monitor over the co-runners (start() is called
     *        by this controller).
     */
    ReQosController(sim::Machine &machine,
                    runtime::NapGovernor &governor,
                    runtime::QosMonitor &qos,
                    const ReQosOptions &opts = ReQosOptions{});

    ~ReQosController();

    /** Begin controlling. */
    void start();

    /** Current nap intensity. */
    double nap() const { return nap_; }

    /** Most recent QoS observation. */
    double lastQos() const { return lastQos_; }

    uint64_t windows() const { return windows_; }

  private:
    sim::Machine &machine_;
    runtime::NapGovernor &governor_;
    runtime::QosMonitor &qos_;
    ReQosOptions opts_;
    runtime::HpmMonitor hpm_;
    std::vector<runtime::PhaseDetector> coPhase_;
    Ewma qosSmooth_;
    double nap_ = 0.0;
    double lastQos_ = 1.0;
    uint64_t windows_ = 0;
    bool started_ = false;
    std::shared_ptr<bool> alive_;

    void window();
};

} // namespace reqos
} // namespace protean

#endif // PROTEAN_REQOS_REQOS_H
