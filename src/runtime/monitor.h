/**
 * @file
 * Lightweight monitoring: PC sampling, HPM windows, phase analysis
 * (paper Section III-B3).
 *
 * Introspection: the runtime samples the host's program counter
 * through the debug interface and attributes samples to high-level
 * code structures (functions), tracking which regions are hot and
 * how hotness shifts over time.
 *
 * Extrospection: per-core hardware performance-monitor deltas give
 * progress rates (IPC/BPC) and memory behavior for both the host and
 * external co-runners. The phase detector reports a change when a
 * core's progress rate moves beyond a threshold or the host's hot
 * set turns over.
 */

#ifndef PROTEAN_RUNTIME_MONITOR_H
#define PROTEAN_RUNTIME_MONITOR_H

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/instruction.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "support/stats.h"

namespace protean {
namespace runtime {

class VariantProfiler;

/** Program-counter sampler with decayed per-function hotness. */
class PcSampler
{
  public:
    PcSampler(sim::Machine &machine, sim::Process &proc,
              uint32_t host_core);

    /** Take one PC sample and attribute it. */
    void sample();

    /**
     * Teach the sampler a runtime variant's code range. `mask` is
     * the variant's restricted NT-mask key; samples landing in the
     * range are tagged with it for the profiler ("" tags original
     * code).
     */
    void registerVariantRange(isa::CodeAddr entry, isa::CodeAddr end,
                              ir::FuncId func,
                              const std::string &mask = "");

    /**
     * Feed attributed samples to a continuous profiler (nullptr
     * detaches). Off path this is a single null check per sample.
     */
    void setProfiler(VariantProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Add hotness weight directly (offline attribution, tests). */
    void addWeight(ir::FuncId f, double w) { hot_[f] += w; }

    /** Decayed hotness per function (unnormalized weights). */
    const std::unordered_map<ir::FuncId, double> &hotness() const
    {
        return hot_;
    }

    /**
     * Functions covering cum_fraction of total hotness, hottest
     * first. Functions with zero weight never appear — they are the
     * "uncovered code" PC3D prunes.
     */
    std::vector<ir::FuncId> hotFunctions(double cum_fraction
                                         = 0.99) const;

    /** Exponential decay applied between analysis windows. */
    void decay(double factor = 0.9);

    uint64_t totalSamples() const { return samples_; }

  private:
    struct VariantRange
    {
        isa::CodeAddr entry;
        isa::CodeAddr end;
        ir::FuncId func;
        /** Restricted NT-mask key of the installed variant. */
        std::string mask;
    };

    sim::Machine &machine_;
    sim::Process &proc_;
    uint32_t hostCore_;
    std::unordered_map<ir::FuncId, double> hot_;
    std::vector<VariantRange> variantRanges_;
    uint64_t samples_ = 0;
    VariantProfiler *profiler_ = nullptr;
    /** Cached registry handles (sample() is the hot path). */
    obs::Counter *samplesCtr_;
    obs::Counter *unattributedCtr_;

    /** Attribute a PC; `*range` is set to the variant range it
     *  landed in, nullptr for original code or a miss. */
    ir::FuncId attribute(isa::CodeAddr pc,
                         const VariantRange **range) const;
};

/** Per-core HPM delta windows. */
class HpmMonitor
{
  public:
    explicit HpmMonitor(sim::Machine &machine);

    /** Counter delta on core since the previous window() call. */
    sim::HpmCounters window(uint32_t core);

    /** Peek at the delta without consuming it. */
    sim::HpmCounters peek(uint32_t core) const;

  private:
    sim::Machine &machine_;
    std::vector<sim::HpmCounters> last_;
};

/** Progress-rate + hot-set phase detection. */
class PhaseDetector
{
  public:
    /**
     * @param rate_threshold Relative IPC shift that signals a phase
     *        change (e.g. 0.3 = 30%).
     * @param alpha EWMA weight for smoothing the rate signal; heavy
     *        smoothing rides out bursty services whose per-window
     *        IPC alternates between idle and request processing.
     * @param cooldown Windows to stay quiet after reporting a change
     *        (the fresh anchor needs time to stabilize).
     */
    explicit PhaseDetector(double rate_threshold = 0.3,
                           double alpha = 0.25,
                           uint32_t cooldown = 6);

    /**
     * Fold in one window.
     * @param ipc Progress rate of the window.
     * @param hot Hot-function set of the window (may be empty for
     *        external programs monitored only through HPMs).
     * @return true when a phase change is detected (anchor resets).
     */
    bool update(double ipc, const std::vector<ir::FuncId> &hot = {});

    /** Current anchor progress rate. */
    double anchorIpc() const { return anchorIpc_; }

  private:
    double threshold_;
    uint32_t cooldown_;
    uint32_t quiet_ = 0;
    bool primed_ = false;
    double anchorIpc_ = 0.0;
    std::vector<ir::FuncId> anchorHot_;
    Ewma smoothed_;

    static bool hotSetChanged(const std::vector<ir::FuncId> &a,
                              const std::vector<ir::FuncId> &b);
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_MONITOR_H
