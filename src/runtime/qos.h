/**
 * @file
 * Nap governance and flux-based QoS monitoring (paper Section IV-F).
 *
 * NapGovernor composes the two users of the nap mechanism — a QoS
 * controller's steady throttle and the flux probe's temporary full
 * nap — into a single effective intensity on the host core.
 *
 * QosMonitor measures co-runner quality of service as IPS relative
 * to IPS-running-alone, where the solo reference comes from flux
 * probes: periodically the host is fully napped for a short window
 * (40 ms every 4 s by default, matching the paper's 1% overhead) and
 * the co-runners' interference-free IPS is recorded.
 */

#ifndef PROTEAN_RUNTIME_QOS_H
#define PROTEAN_RUNTIME_QOS_H

#include <vector>

#include "sim/machine.h"
#include "support/stats.h"

namespace protean {
namespace runtime {

/** Composes controller and probe nap intensities on one core. */
class NapGovernor
{
  public:
    NapGovernor(sim::Machine &machine, uint32_t core);

    /** Steady throttle requested by a QoS controller. */
    void setControllerNap(double f);
    double controllerNap() const { return controllerNap_; }

    /** Flux probe engagement (full nap while active). */
    void setProbeActive(bool active);
    bool probeActive() const { return probeActive_; }

  private:
    sim::Machine &machine_;
    uint32_t core_;
    double controllerNap_ = 0.0;
    bool probeActive_ = false;

    void apply();
};

/** Flux-probe configuration. */
struct QosOptions
{
    /** Steady-state probe cadence (the paper's 40 ms per 4 s keeps
     *  flux overhead around 1%). */
    double probePeriodMs = 4000.0;
    double probeLenMs = 40.0;
    /** EWMA weight for the solo-IPS reference. */
    double soloAlpha = 0.5;
    /** Delay before the first probe, so the co-runners have reached
     *  representative behavior. */
    double initialDelayMs = 200.0;
    /** The first few probes run at a faster cadence and are averaged
     *  arithmetically, priming the solo reference quickly before the
     *  steady 1%-overhead cadence takes over. */
    uint32_t primingProbes = 3;
    double primingPeriodMs = 400.0;
};

/** Co-runner QoS measurement. */
class QosMonitor
{
  public:
    /**
     * @param machine The machine.
     * @param governor Nap governor of the host (probed) core.
     * @param co_cores Cores of the latency-sensitive co-runners.
     */
    QosMonitor(sim::Machine &machine, NapGovernor &governor,
               std::vector<uint32_t> co_cores,
               const QosOptions &opts = QosOptions{});

    /** Begin probing: runs a short priming burst to establish the
     *  solo reference, then settles into the probePeriodMs cadence. */
    void start();

    /**
     * Invalidate the solo reference and re-prime it with a fresh
     * probe burst. Call on a detected co-runner phase change: the
     * old reference describes the previous phase's behavior, and
     * QoS ratios against it are meaningless. Windows remain tainted
     * until the new reference is primed.
     */
    void reprime();

    /** True while the solo reference is not yet (re)established. */
    bool priming() const { return primingLeft_ > 0; }

    /** Solo-IPS reference for a co-runner core (0 until primed). */
    double soloIps(uint32_t co_core) const;

    /**
     * QoS of a co-runner over the window since the last qosWindow()
     * call on that core: windowed IPS / solo reference.
     */
    double qosWindow(uint32_t co_core);

    /** Minimum QoS across co-runners over their current windows. */
    double minQosWindow();

    /** True if a probe overlapped the window since the last reset,
     *  or the solo reference is still (re)priming — such windows are
     *  discarded by searchers and controllers. */
    bool windowTainted() const { return tainted_ || priming(); }

    /** Reset the taint flag (call when starting a new window). A
     *  window that begins while a probe is still in flight starts
     *  tainted. */
    void clearTaint() { tainted_ = governor_.probeActive(); }

    const std::vector<uint32_t> &coCores() const { return coCores_; }

    uint64_t probeCount() const { return probes_; }

  private:
    sim::Machine &machine_;
    NapGovernor &governor_;
    std::vector<uint32_t> coCores_;
    QosOptions opts_;

    /** Solo-IPS estimator: arithmetic mean over the priming probes,
     *  EWMA afterwards. */
    struct SoloEstimator
    {
        double sum = 0.0;
        uint32_t n = 0;
        Ewma ewma;

        explicit SoloEstimator(double alpha) : ewma(alpha) {}

        void
        add(double x, uint32_t priming)
        {
            ++n;
            if (n <= priming) {
                sum += x;
                ewma.reset();
                ewma.add(sum / n);
            } else {
                ewma.add(x);
            }
        }

        void
        invalidate()
        {
            sum = 0.0;
            n = 0;
            ewma.reset();
        }

        double value() const { return ewma.value(); }
        bool primed() const { return ewma.primed(); }
    };

    std::vector<SoloEstimator> solo_;
    /** Per-co-core (instructions, cycles) snapshot for windows. */
    std::vector<sim::HpmCounters> winStart_;
    std::vector<uint64_t> winStartCycle_;
    bool tainted_ = false;
    bool started_ = false;
    bool probeInFlight_ = false;
    uint32_t primingLeft_ = 0;
    uint64_t probes_ = 0;

    size_t indexOf(uint32_t co_core) const;
    void beginProbe();
    void endProbe(std::vector<sim::HpmCounters> snaps,
                  uint64_t start_cycle);
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_QOS_H
