#include "runtime/monitor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/profiler.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

PcSampler::PcSampler(sim::Machine &machine, sim::Process &proc,
                     uint32_t host_core)
    : machine_(machine), proc_(proc), hostCore_(host_core),
      samplesCtr_(&obs::metrics().counter("runtime.sampler.samples")),
      unattributedCtr_(
          &obs::metrics().counter("runtime.sampler.unattributed"))
{
}

ir::FuncId
PcSampler::attribute(isa::CodeAddr pc,
                     const VariantRange **range) const
{
    *range = nullptr;
    const isa::FunctionInfo *fi = proc_.image().functionAt(pc);
    if (fi)
        return fi->irFunc;
    for (const auto &vr : variantRanges_) {
        if (pc >= vr.entry && pc < vr.end) {
            *range = &vr;
            return vr.func;
        }
    }
    return ir::kInvalidId;
}

void
PcSampler::sample()
{
    if (proc_.state() != sim::ProcState::Running)
        return;
    isa::CodeAddr pc = machine_.core(hostCore_).pc();
    const VariantRange *vr = nullptr;
    ir::FuncId f = attribute(pc, &vr);
    if (f != ir::kInvalidId)
        hot_[f] += 1.0;
    else
        unattributedCtr_->inc();
    ++samples_;
    samplesCtr_->inc();
    if (profiler_) {
        static const std::string kNoMask;
        profiler_->recordSample(f, vr ? vr->mask : kNoMask);
    }
}

void
PcSampler::registerVariantRange(isa::CodeAddr entry, isa::CodeAddr end,
                                ir::FuncId func,
                                const std::string &mask)
{
    variantRanges_.push_back(VariantRange{entry, end, func, mask});
}

std::vector<ir::FuncId>
PcSampler::hotFunctions(double cum_fraction) const
{
    std::vector<std::pair<ir::FuncId, double>> items(hot_.begin(),
                                                     hot_.end());
    std::sort(items.begin(), items.end(), [](const auto &a,
                                             const auto &b) {
        return a.second != b.second ? a.second > b.second
            : a.first < b.first;
    });
    double total = 0.0;
    for (const auto &[f, w] : items)
        total += w;
    std::vector<ir::FuncId> out;
    double acc = 0.0;
    for (const auto &[f, w] : items) {
        if (w <= 0.0)
            break;
        out.push_back(f);
        acc += w;
        if (acc >= cum_fraction * total)
            break;
    }
    return out;
}

void
PcSampler::decay(double factor)
{
    for (auto &[f, w] : hot_)
        w *= factor;
}

HpmMonitor::HpmMonitor(sim::Machine &machine)
    : machine_(machine), last_(machine.numCores())
{
}

sim::HpmCounters
HpmMonitor::window(uint32_t core)
{
    sim::HpmCounters cur = machine_.core(core).hpm();
    sim::HpmCounters delta = cur - last_[core];
    last_[core] = cur;
    return delta;
}

sim::HpmCounters
HpmMonitor::peek(uint32_t core) const
{
    return machine_.core(core).hpm() - last_[core];
}

PhaseDetector::PhaseDetector(double rate_threshold, double alpha,
                             uint32_t cooldown)
    : threshold_(rate_threshold), cooldown_(cooldown),
      smoothed_(alpha)
{
    if (rate_threshold <= 0.0)
        panic("PhaseDetector: threshold must be positive");
}

bool
PhaseDetector::hotSetChanged(const std::vector<ir::FuncId> &a,
                             const std::vector<ir::FuncId> &b)
{
    if (a.empty() && b.empty())
        return false;
    // Jaccard similarity below 0.5 counts as turnover.
    size_t inter = 0;
    for (ir::FuncId f : a) {
        if (std::find(b.begin(), b.end(), f) != b.end())
            ++inter;
    }
    size_t uni = a.size() + b.size() - inter;
    return uni != 0 &&
        static_cast<double>(inter) / static_cast<double>(uni) < 0.5;
}

bool
PhaseDetector::update(double ipc, const std::vector<ir::FuncId> &hot)
{
    double smooth = smoothed_.add(ipc);
    if (!primed_) {
        primed_ = true;
        anchorIpc_ = smooth;
        anchorHot_ = hot;
        return false;
    }

    if (quiet_ > 0) {
        // Cooling down after a reported change: let the smoothed
        // signal settle on the new phase before re-arming, and keep
        // the anchor tracking it.
        --quiet_;
        anchorIpc_ = smooth;
        anchorHot_ = hot;
        return false;
    }

    bool rate_shift = anchorIpc_ > 0.0 &&
        std::abs(smooth - anchorIpc_) / anchorIpc_ > threshold_;
    bool hot_shift = hotSetChanged(anchorHot_, hot);
    if (rate_shift || hot_shift) {
        obs::metrics().counter("runtime.phase.changes").inc();
        if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "monitor", "phase_change",
                strformat("\"anchor_ipc_before\":%.6f,"
                          "\"anchor_ipc_after\":%.6f,"
                          "\"cause\":\"%s\"",
                          anchorIpc_, smooth,
                          rate_shift ? (hot_shift ? "rate+hotset"
                                                  : "rate")
                                     : "hotset"));
        }
        anchorIpc_ = smooth;
        anchorHot_ = hot;
        quiet_ = cooldown_;
        return true;
    }
    return false;
}

} // namespace runtime
} // namespace protean
