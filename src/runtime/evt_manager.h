/**
 * @file
 * EVT manager (paper Section III-B2).
 *
 * Redirects execution by rewriting target addresses in the Edge
 * Virtualization Table. Each update is a single word write — the
 * atomicity property the paper relies on for synchronization-free
 * dispatch.
 */

#ifndef PROTEAN_RUNTIME_EVT_MANAGER_H
#define PROTEAN_RUNTIME_EVT_MANAGER_H

#include "codegen/lowering.h"
#include "sim/process.h"

namespace protean {
namespace runtime {

/** Owns the mapping from functions to EVT slots and performs
 *  retargeting writes into the host process. */
class EvtManager
{
  public:
    EvtManager(sim::Process &proc, uint64_t evt_base,
               codegen::VirtualizationMap slots);

    /** True when the function has a virtualized edge. */
    bool virtualized(ir::FuncId f) const { return slots_.count(f) > 0; }

    /** Point the function's EVT slot at a new code address. */
    void retarget(ir::FuncId f, isa::CodeAddr entry);

    /** Current target of the function's slot. */
    isa::CodeAddr target(ir::FuncId f) const;

    /** Restore every slot to the original static entry. */
    void revertAll();

    /** Number of retarget writes performed (stats). */
    uint64_t retargetCount() const { return retargets_; }

    const codegen::VirtualizationMap &slots() const { return slots_; }

  private:
    sim::Process &proc_;
    uint64_t evtBase_;
    codegen::VirtualizationMap slots_;
    uint64_t retargets_ = 0;

    uint64_t slotAddr(ir::FuncId f) const;
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_EVT_MANAGER_H
