/**
 * @file
 * Dynamic-compilation stress engine (paper Section V-A).
 *
 * Reproduces the paper's stress tests: "the host program is run with
 * a protean runtime configured to periodically recompile randomly
 * selected functions throughout the life of the running application."
 * The recompile interval (5 ms .. 5000 ms) and the runtime core
 * placement (same vs. separate core) are the two studied axes.
 */

#ifndef PROTEAN_RUNTIME_STRESS_H
#define PROTEAN_RUNTIME_STRESS_H

#include "runtime/runtime.h"
#include "support/random.h"

namespace protean {
namespace runtime {

/** Recompiles a random virtualized function every interval. */
class StressEngine : public DecisionEngine
{
  public:
    /**
     * @param interval_ms Time between recompilations.
     * @param seed Deterministic function selection.
     */
    explicit StressEngine(double interval_ms, uint64_t seed = 1);

    void onStart(ProteanRuntime &rt) override;
    void onTick(ProteanRuntime &rt) override;

    uint64_t recompiles() const { return recompiles_; }

  private:
    double intervalMs_;
    Rng rng_;
    uint64_t nextFire_ = 0;
    uint64_t recompiles_ = 0;
    std::vector<ir::FuncId> candidates_;
    /** Toggles between identity recompile and mask-variant recompile
     *  so the cache does not absorb every request. */
    uint64_t salt_ = 0;
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_STRESS_H
