/**
 * @file
 * Runtime attachment and metadata discovery (paper Section III-B1).
 *
 * Operating on an executable prepared by pcc, the runtime begins by
 * attaching to the process: it locates the discovery header in the
 * data region, reads the EVT geometry, extracts and decompresses the
 * embedded IR, and recovers the slot-to-function mapping by matching
 * the EVT's initial targets against the binary's symbol table.
 */

#ifndef PROTEAN_RUNTIME_ATTACH_H
#define PROTEAN_RUNTIME_ATTACH_H

#include <memory>

#include "codegen/lowering.h"
#include "ir/module.h"
#include "sim/process.h"

namespace protean {
namespace runtime {

/** Everything discovered from a protean binary at attach time. */
struct Attachment
{
    uint64_t evtBase = 0;
    uint32_t evtCount = 0;
    /** Re-hydrated IR (null when the binary embeds none). */
    std::unique_ptr<ir::Module> module;
    /** Virtualized callee -> EVT slot. */
    codegen::VirtualizationMap slots;

    bool hasIr() const { return module != nullptr; }
};

/**
 * Attach to a process.
 * Fatal when the process is not a protean binary (no magic header).
 */
Attachment attach(const sim::Process &proc);

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_ATTACH_H
