#include "runtime/compiler.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

RuntimeCompiler::RuntimeCompiler(sim::Machine &machine,
                                 sim::Process &proc,
                                 const ir::Module &module,
                                 const codegen::VirtualizationMap &slots,
                                 uint32_t runtime_core)
    : machine_(machine), proc_(proc), module_(module), slots_(slots),
      runtimeCore_(runtime_core)
{
    funcLoads_.resize(module.numFunctions());
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        for (const auto &bb : module.function(f).blocks()) {
            for (const auto &inst : bb.insts) {
                if (inst.op == ir::Opcode::Load &&
                    inst.loadId != ir::kInvalidId) {
                    funcLoads_[f].push_back(inst.loadId);
                }
            }
        }
    }
}

std::string
RuntimeCompiler::maskKey(ir::FuncId func, const BitVector &mask) const
{
    if (func >= funcLoads_.size())
        panic("RuntimeCompiler: bad function %u", func);
    std::string key = strformat("f%u:", func);
    for (ir::LoadId id : funcLoads_[func])
        key.push_back(id < mask.size() && mask.test(id) ? '1' : '0');
    return key;
}

isa::CodeAddr
RuntimeCompiler::cachedEntry(ir::FuncId func, const BitVector &mask) const
{
    auto it = cache_.find(maskKey(func, mask));
    return it == cache_.end() ? isa::kInvalidCodeAddr : it->second;
}

isa::CodeAddr
RuntimeCompiler::compileNow(ir::FuncId func, const BitVector &mask,
                            const std::string &key)
{
    const ir::Function &fn = module_.function(func);

    codegen::LowerOptions opts;
    opts.layout = &proc_.image().layout;
    opts.virtualized = slots_.empty() ? nullptr : &slots_;
    opts.ntMask = &mask;
    codegen::LoweredFunction lowered =
        codegen::lowerFunction(module_, fn, opts);
    codegen::relocate(lowered, proc_.codeSize());

    isa::CodeAddr entry = proc_.appendCode(lowered.code);
    // Direct calls inside the variant resolve to the original static
    // entries; virtualized callees already go through the EVT.
    for (auto [offset, callee] : lowered.directCallFixups) {
        isa::MInst patched = proc_.inst(entry + offset);
        patched.target = proc_.image().function(callee).entry;
        proc_.patchInst(entry + offset, patched);
    }

    VariantRecord rec;
    rec.func = func;
    rec.entry = entry;
    rec.end = proc_.codeSize();
    rec.key = key;
    variants_.push_back(rec);
    cache_[key] = entry;
    return entry;
}

void
RuntimeCompiler::requestVariant(ir::FuncId func, const BitVector &mask,
                                std::function<void(isa::CodeAddr)>
                                on_ready, bool force_recompile)
{
    std::string key = maskKey(func, mask);
    auto it = cache_.find(key);
    if (!force_recompile && it != cache_.end()) {
        obs::metrics().counter("runtime.compile.cache_hits").inc();
        isa::CodeAddr entry = it->second;
        machine_.scheduleAfter(0, [on_ready = std::move(on_ready),
                                   entry] { on_ready(entry); });
        return;
    }

    uint64_t cycles = cost_.cost(module_.function(func));
    ++compiles_;
    compileCycles_ += cycles;
    machine_.core(runtimeCore_).stealCycles(cycles);
    obs::metrics().counter("runtime.compile.count").inc();
    obs::metrics().counter("runtime.compile.cycles").inc(cycles);
    obs::metrics().histogram("runtime.compile.cycles_hist")
        .observe(static_cast<double>(cycles));

    // The compiler backend is serial: queued compiles finish in
    // order, each after its own latency.
    uint64_t start = std::max(machine_.now(), backendFree_);
    uint64_t done = start + cycles;
    backendFree_ = done;
    // Both endpoints of the async compile are known at request time,
    // so the span can be recorded immediately (compile_start ==
    // backend pickup, not request arrival).
    obs::tracer().complete(
        "runtime.compiler",
        strformat("compile %s",
                  module_.function(func).name().c_str()),
        start, done,
        strformat("\"func\":%u,\"cycles\":%llu", func,
                  static_cast<unsigned long long>(cycles)));

    isa::CodeAddr entry = compileNow(func, mask, key);
    machine_.schedule(done, [on_ready = std::move(on_ready), entry] {
        on_ready(entry);
    });
}

} // namespace runtime
} // namespace protean
