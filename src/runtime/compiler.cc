#include "runtime/compiler.h"

#include <algorithm>

#include "ir/serializer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

void
LocalCompileBackend::compile(const CompileJob &job,
                             std::function<
                                 void(const CompileOutcome &)> done)
{
    machine_.core(core_).stealCycles(job.costCycles);
    // The compiler backend is serial: queued compiles finish in
    // order, each after its own latency.
    uint64_t start = std::max(machine_.now(), backendFree_);
    CompileOutcome out;
    out.startCycle = start;
    out.readyCycle = start + job.costCycles;
    out.chargedCycles = job.costCycles;
    out.traceId = job.traceId;
    backendFree_ = out.readyCycle;
    done(out);
}

RuntimeCompiler::RuntimeCompiler(sim::Machine &machine,
                                 sim::Process &proc,
                                 const ir::Module &module,
                                 const codegen::VirtualizationMap &slots,
                                 uint32_t runtime_core,
                                 CompileBackend *backend)
    : machine_(machine), proc_(proc), module_(module), slots_(slots),
      runtimeCore_(runtime_core)
{
    if (backend) {
        backend_ = backend;
    } else {
        ownedBackend_ = std::make_unique<LocalCompileBackend>(
            machine, runtime_core);
        backend_ = ownedBackend_.get();
    }
    funcLoads_.resize(module.numFunctions());
    funcHashes_.resize(module.numFunctions());
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        for (const auto &bb : module.function(f).blocks()) {
            for (const auto &inst : bb.insts) {
                if (inst.op == ir::Opcode::Load &&
                    inst.loadId != ir::kInvalidId) {
                    funcLoads_[f].push_back(inst.loadId);
                }
            }
        }
        funcHashes_[f] = ir::functionHash(module, f);
    }
}

void
RuntimeCompiler::setRuntimeCore(uint32_t core)
{
    runtimeCore_ = core;
    if (ownedBackend_)
        ownedBackend_->setCore(core);
}

std::string
RuntimeCompiler::maskKey(ir::FuncId func, const BitVector &mask) const
{
    if (func >= funcLoads_.size())
        panic("RuntimeCompiler: bad function %u", func);
    std::string key = strformat("f%u:", func);
    for (ir::LoadId id : funcLoads_[func])
        key.push_back(id < mask.size() && mask.test(id) ? '1' : '0');
    return key;
}

uint64_t
RuntimeCompiler::contentKey(ir::FuncId func,
                            const std::string &key) const
{
    if (func >= funcHashes_.size())
        panic("RuntimeCompiler: bad function %u", func);
    // FNV-1a over the function's IR hash, the restricted mask bits
    // (skipping the function-id prefix, which is already covered by
    // the IR hash) and the codegen options in effect. Stable across
    // servers running the same binary.
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(funcHashes_[func]);
    size_t colon = key.find(':');
    for (size_t i = colon + 1; i < key.size(); ++i) {
        h ^= static_cast<uint8_t>(key[i]);
        h *= 0x100000001b3ULL;
    }
    mix(static_cast<uint64_t>(slots_.size()));
    return h;
}

isa::CodeAddr
RuntimeCompiler::cachedEntry(ir::FuncId func, const BitVector &mask) const
{
    auto it = cache_.find(maskKey(func, mask));
    return it == cache_.end() ? isa::kInvalidCodeAddr : it->second;
}

isa::CodeAddr
RuntimeCompiler::compileNow(ir::FuncId func, const BitVector &mask,
                            const std::string &key)
{
    const ir::Function &fn = module_.function(func);

    codegen::LowerOptions opts;
    opts.layout = &proc_.image().layout;
    opts.virtualized = slots_.empty() ? nullptr : &slots_;
    opts.ntMask = &mask;
    codegen::LoweredFunction lowered =
        codegen::lowerFunction(module_, fn, opts);
    codegen::relocate(lowered, proc_.codeSize());

    // The append and every fixup below bump the process's
    // codeVersion(), so the core's decoded superblock cache retires
    // all stale blocks before the next dispatch — a flip can never
    // execute pre-install code for the installed range (DESIGN.md
    // §13).
    isa::CodeAddr entry = proc_.appendCode(lowered.code);
    // Direct calls inside the variant resolve to the original static
    // entries; virtualized callees already go through the EVT.
    for (auto [offset, callee] : lowered.directCallFixups) {
        isa::MInst patched = proc_.inst(entry + offset);
        patched.target = proc_.image().function(callee).entry;
        proc_.patchInst(entry + offset, patched);
    }

    VariantRecord rec;
    rec.func = func;
    rec.entry = entry;
    rec.end = proc_.codeSize();
    rec.key = key;
    rec.osr.entry = entry;
    rec.osr.headerPc.reserve(lowered.blockStarts.size());
    for (uint32_t off : lowered.blockStarts)
        rec.osr.headerPc.push_back(entry + off);
    rec.osr.sites.reserve(lowered.osrSites.size());
    for (const codegen::OsrSite &s : lowered.osrSites)
        rec.osr.sites.push_back({entry + s.offset, s.header});
    variants_.push_back(std::move(rec));
    cache_[key] = entry;
    return entry;
}

const OsrLowering &
RuntimeCompiler::staticOsr(ir::FuncId func)
{
    auto it = staticOsr_.find(func);
    if (it != staticOsr_.end())
        return it->second;

    // Re-lower with the image's own options (layout, virtualization,
    // no NT mask) to reproduce pcc's placement. Only the block/
    // back-edge structure is consumed; unpatched direct-call targets
    // are irrelevant here.
    const isa::FunctionInfo &fi = proc_.image().function(func);
    codegen::LowerOptions opts;
    opts.layout = &proc_.image().layout;
    opts.virtualized = slots_.empty() ? nullptr : &slots_;
    codegen::LoweredFunction lowered =
        codegen::lowerFunction(module_, module_.function(func), opts);
    if (fi.entry + lowered.code.size() != fi.end)
        panic("staticOsr: re-lowering %s produced %zu instructions; "
              "the image holds %u",
              module_.function(func).name().c_str(),
              lowered.code.size(), fi.end - fi.entry);

    OsrLowering tbl;
    tbl.entry = fi.entry;
    tbl.headerPc.reserve(lowered.blockStarts.size());
    for (uint32_t off : lowered.blockStarts)
        tbl.headerPc.push_back(fi.entry + off);
    tbl.sites.reserve(lowered.osrSites.size());
    for (const codegen::OsrSite &s : lowered.osrSites)
        tbl.sites.push_back({fi.entry + s.offset, s.header});
    return staticOsr_.emplace(func, std::move(tbl)).first->second;
}

size_t
RuntimeCompiler::osrSiteCount(ir::FuncId func)
{
    return staticOsr(func).sites.size();
}

uint32_t
RuntimeCompiler::osrRedirect(ir::FuncId func,
                             isa::CodeAddr target_entry)
{
    const OsrLowering *target = nullptr;
    if (target_entry == proc_.image().function(func).entry) {
        target = &staticOsr(func);
    } else {
        for (const VariantRecord &v : variants_) {
            if (v.func == func && v.entry == target_entry) {
                target = &v.osr;
                break;
            }
        }
    }
    if (!target)
        panic("osrRedirect: %u has no lowering at entry %u", func,
              target_entry);

    uint32_t patched = 0;
    auto redirect = [&](const OsrLowering &from) {
        for (const OsrLowering::Site &s : from.sites) {
            if (s.header >= target->headerPc.size())
                panic("osrRedirect: variant of %u lost block %u",
                      func, s.header);
            isa::CodeAddr dest = target->headerPc[s.header];
            isa::MInst inst = proc_.inst(s.pc);
            if (inst.op != isa::MOp::Jmp && inst.op != isa::MOp::Bnz)
                panic("osrRedirect: site %u of %u is not a branch",
                      s.pc, func);
            if (inst.target == dest)
                continue; // already points at the target lowering
            inst.target = dest;
            proc_.patchInst(s.pc, inst);
            ++patched;
        }
    };
    redirect(staticOsr(func));
    for (const VariantRecord &v : variants_) {
        if (v.func == func)
            redirect(v.osr);
    }
    return patched;
}

void
RuntimeCompiler::requestVariant(ir::FuncId func, const BitVector &mask,
                                std::function<void(isa::CodeAddr)>
                                on_ready, bool force_recompile)
{
    std::string key = maskKey(func, mask);
    auto it = cache_.find(key);
    if (!force_recompile && it != cache_.end()) {
        obs::metrics().counter("runtime.compile.cache_hits").inc();
        isa::CodeAddr entry = it->second;
        machine_.scheduleAfter(0, [on_ready = std::move(on_ready),
                                   entry] { on_ready(entry); });
        return;
    }

    const ir::Function &fn = module_.function(func);
    CompileJob job;
    job.contentKey = contentKey(func, key);
    job.func = func;
    job.costCycles = cost_.cost(fn);
    job.codeBytes = fn.instructionCount() * sizeof(isa::MInst);
    job.name = fn.name();
    job.ntMask = mask;

    backend_->compile(
        job,
        [this, func, mask, key,
         on_ready = std::move(on_ready)](const CompileOutcome &out) {
            if (out.failed || out.corrupted)
                panic("RuntimeCompiler: backend surfaced an "
                      "unresolved fault outcome; backends must "
                      "retry or fall back before completing");
            ++compiles_;
            compileCycles_ += out.chargedCycles;
            if (out.remoteHit)
                ++remoteHits_;
            obs::metrics().counter("runtime.compile.count").inc();
            obs::metrics().counter("runtime.compile.cycles")
                .inc(out.chargedCycles);
            obs::metrics().histogram("runtime.compile.cycles_hist")
                .observe(static_cast<double>(out.chargedCycles));
            // Both endpoints of the async compile are known once the
            // backend resolves, so the span can be recorded
            // immediately (compile_start == backend pickup, not
            // request arrival).
            if (obs::tracer().enabled()) {
                obs::tracer().complete(
                    "runtime.compiler",
                    strformat("compile %s",
                              module_.function(func).name().c_str()),
                    out.startCycle, out.readyCycle,
                    strformat("\"func\":%u,\"cycles\":%llu,"
                              "\"backend\":\"%s\",\"trace\":%llu",
                              func,
                              static_cast<unsigned long long>(
                                  out.chargedCycles),
                              backend_->backendName(),
                              static_cast<unsigned long long>(
                                  out.traceId)));
            }

            isa::CodeAddr entry = compileNow(func, mask, key);
            uint64_t at = std::max(out.readyCycle, machine_.now());
            machine_.schedule(at,
                              [on_ready = std::move(on_ready),
                               entry] { on_ready(entry); });
        });
}

} // namespace runtime
} // namespace protean
