#include "runtime/evt_manager.h"

#include "isa/image.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

EvtManager::EvtManager(sim::Process &proc, uint64_t evt_base,
                       codegen::VirtualizationMap slots)
    : proc_(proc), evtBase_(evt_base), slots_(std::move(slots))
{
}

uint64_t
EvtManager::slotAddr(ir::FuncId f) const
{
    auto it = slots_.find(f);
    if (it == slots_.end())
        panic("EvtManager: function %u is not virtualized", f);
    return evtBase_ + 8ULL * it->second;
}

void
EvtManager::retarget(ir::FuncId f, isa::CodeAddr entry)
{
    // Single atomic word write; the host observes either the old or
    // the new target, never a torn value.
    proc_.writeWord(slotAddr(f), entry);
    ++retargets_;
    obs::metrics().counter("runtime.evt.retargets").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "runtime", "evt_retarget",
            strformat("\"func\":%u,\"target\":%llu", f,
                      static_cast<unsigned long long>(entry)));
    }
}

isa::CodeAddr
EvtManager::target(ir::FuncId f) const
{
    return static_cast<isa::CodeAddr>(proc_.readWord(slotAddr(f)));
}

void
EvtManager::revertAll()
{
    for (auto [func, slot] : slots_) {
        (void)slot;
        retarget(func, proc_.image().function(func).entry);
    }
}

} // namespace runtime
} // namespace protean
