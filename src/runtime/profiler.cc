#include "runtime/profiler.h"

#include "ir/serializer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

VariantProfiler::VariantProfiler(sim::Machine &machine,
                                 uint32_t host_core,
                                 const ir::Module &module,
                                 const ProfilerOptions &opts)
    : machine_(machine), hostCore_(host_core), opts_(opts),
      detector_(opts.phaseRateThreshold, opts.phaseAlpha,
                opts.phaseCooldown)
{
    // Content hashes and names are derived from the binary once at
    // attach; identical binaries on every server derive identical
    // hashes, which is what makes fleet-wide profile merging mean
    // something.
    hashes_.reserve(module.numFunctions());
    names_.reserve(module.numFunctions());
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        hashes_.push_back(ir::functionHash(module, f));
        names_.push_back(module.function(f).name());
    }
    lastTick_ = hostHpm();
    lastSample_ = lastTick_;
}

sim::HpmCounters
VariantProfiler::hostHpm() const
{
    return machine_.core(hostCore_).hpm();
}

double
VariantProfiler::ipcOf(const sim::HpmCounters &delta)
{
    if (delta.cycles == 0)
        return 0.0;
    return static_cast<double>(delta.instructions) /
        static_cast<double>(delta.cycles);
}

uint64_t
VariantProfiler::funcHash(ir::FuncId func) const
{
    if (func == ir::kInvalidId || func >= hashes_.size())
        return 0;
    return hashes_[func];
}

void
VariantProfiler::recordSample(ir::FuncId func,
                              const std::string &mask)
{
    sim::HpmCounters cur = hostHpm();
    sim::HpmCounters delta = cur - lastSample_;
    lastSample_ = cur;

    obs::ProfileKey key;
    key.funcHash = funcHash(func);
    key.mask = mask;
    key.phase = phase_;
    obs::ProfileCounts counts;
    counts.samples = 1;
    counts.cycles = delta.cycles;
    counts.instructions = delta.instructions;
    profile_.record(key, counts);
    if (key.funcHash != 0 && func < names_.size())
        profile_.setName(key.funcHash, names_[func]);
}

void
VariantProfiler::onTick()
{
    sim::HpmCounters cur = hostHpm();
    sim::HpmCounters window = cur - lastTick_;
    lastTick_ = cur;
    lastWindowIpc_ = ipcOf(window);

    if (detector_.update(lastWindowIpc_)) {
        ++phase_;
        obs::metrics().counter("runtime.profiler.phase_changes")
            .inc();
        if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "profiler", "phase_advance",
                strformat("\"phase\":%u,\"ipc\":%.6f", phase_,
                          lastWindowIpc_));
        }
    }

    // Mature flip experiments whose window elapsed. Completion order
    // follows dispatch order (stable erase), so the ledger is
    // deterministic.
    for (size_t i = 0; i < experiments_.size();) {
        Experiment &e = experiments_[i];
        if (--e.ticksLeft > 0) {
            ++i;
            continue;
        }
        sim::HpmCounters after = hostHpm() - e.start;
        e.record.ipcAfter = ipcOf(after);
        ledger_.push_back(e.record);
        obs::metrics().counter("runtime.profiler.flip_records")
            .inc();
        experiments_.erase(experiments_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
}

void
VariantProfiler::onFlipDispatched(ir::FuncId func,
                                  const std::string &mask)
{
    Experiment e;
    e.record.funcHash = funcHash(func);
    if (e.record.funcHash != 0 && func < names_.size())
        profile_.setName(e.record.funcHash, names_[func]);
    e.record.mask = mask;
    e.record.phase = phase_;
    e.record.ipcBefore = lastWindowIpc_;
    e.record.cycle = machine_.now();
    e.ticksLeft = opts_.experimentTicks == 0 ?
        1 :
        opts_.experimentTicks;
    e.start = hostHpm();
    experiments_.push_back(std::move(e));
}

std::vector<FlipRecord>
VariantProfiler::drainLedger()
{
    std::vector<FlipRecord> out;
    out.swap(ledger_);
    return out;
}

} // namespace runtime
} // namespace protean
