#include "runtime/qos.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

NapGovernor::NapGovernor(sim::Machine &machine, uint32_t core)
    : machine_(machine), core_(core)
{
}

void
NapGovernor::setControllerNap(double f)
{
    controllerNap_ = std::clamp(f, 0.0, 1.0);
    obs::metrics().counter("runtime.nap.interventions").inc();
    obs::metrics().gauge("runtime.nap.controller")
        .set(controllerNap_);
    obs::tracer().counter("runtime.qos", "controller_nap",
                          controllerNap_);
    apply();
}

void
NapGovernor::setProbeActive(bool active)
{
    probeActive_ = active;
    apply();
}

void
NapGovernor::apply()
{
    machine_.core(core_).setNapIntensity(
        probeActive_ ? 1.0 : controllerNap_);
}

QosMonitor::QosMonitor(sim::Machine &machine, NapGovernor &governor,
                       std::vector<uint32_t> co_cores,
                       const QosOptions &opts)
    : machine_(machine), governor_(governor),
      coCores_(std::move(co_cores)), opts_(opts)
{
    for (size_t i = 0; i < coCores_.size(); ++i) {
        solo_.emplace_back(SoloEstimator(opts_.soloAlpha));
        winStart_.push_back(machine_.core(coCores_[i]).hpm());
        winStartCycle_.push_back(machine_.now());
    }
}

size_t
QosMonitor::indexOf(uint32_t co_core) const
{
    for (size_t i = 0; i < coCores_.size(); ++i) {
        if (coCores_[i] == co_core)
            return i;
    }
    panic("QosMonitor: core %u is not a monitored co-runner", co_core);
}

void
QosMonitor::start()
{
    if (started_)
        return;
    started_ = true;
    primingLeft_ = opts_.primingProbes;
    machine_.scheduleAfter(machine_.msToCycles(opts_.initialDelayMs),
                           [this] { beginProbe(); });
}

void
QosMonitor::reprime()
{
    obs::metrics().counter("runtime.qos.reprimes").inc();
    obs::tracer().instant("runtime.qos", "reprime");
    for (auto &est : solo_)
        est.invalidate();
    primingLeft_ = opts_.primingProbes;
    // The regular cadence keeps running; the next probes simply feed
    // the fresh estimators. Pull the next probe forward if one is
    // not already imminent.
    if (started_ && !probeInFlight_) {
        machine_.scheduleAfter(machine_.msToCycles(20.0), [this] {
            if (!probeInFlight_)
                beginProbe();
        });
    }
}

void
QosMonitor::beginProbe()
{
    if (probeInFlight_)
        return;
    probeInFlight_ = true;
    governor_.setProbeActive(true);
    tainted_ = true;
    ++probes_;

    std::vector<sim::HpmCounters> snaps;
    snaps.reserve(coCores_.size());
    for (uint32_t c : coCores_)
        snaps.push_back(machine_.core(c).hpm());
    uint64_t start_cycle = machine_.now();

    machine_.scheduleAfter(
        machine_.msToCycles(opts_.probeLenMs),
        [this, snaps = std::move(snaps), start_cycle]() mutable {
            endProbe(std::move(snaps), start_cycle);
        });
}

void
QosMonitor::endProbe(std::vector<sim::HpmCounters> snaps,
                     uint64_t start_cycle)
{
    uint64_t elapsed = machine_.now() - start_cycle;
    obs::metrics().counter("runtime.qos.probes").inc();
    obs::tracer().complete("runtime.qos", "flux_probe", start_cycle,
                           machine_.now());
    for (size_t i = 0; i < coCores_.size(); ++i) {
        sim::HpmCounters delta =
            machine_.core(coCores_[i]).hpm() - snaps[i];
        if (elapsed > 0) {
            double ips = static_cast<double>(delta.instructions) /
                static_cast<double>(elapsed);
            if (ips > 0.0)
                solo_[i].add(ips, opts_.primingProbes);
        }
    }
    governor_.setProbeActive(false);
    probeInFlight_ = false;
    if (primingLeft_ > 0)
        --primingLeft_;

    double period = primingLeft_ > 0 ? opts_.primingPeriodMs
        : opts_.probePeriodMs;
    machine_.scheduleAfter(
        machine_.msToCycles(period - opts_.probeLenMs),
        [this] { beginProbe(); });
}

double
QosMonitor::soloIps(uint32_t co_core) const
{
    return solo_[indexOf(co_core)].value();
}

double
QosMonitor::qosWindow(uint32_t co_core)
{
    size_t i = indexOf(co_core);
    sim::HpmCounters cur = machine_.core(co_core).hpm();
    sim::HpmCounters delta = cur - winStart_[i];
    uint64_t elapsed = machine_.now() - winStartCycle_[i];
    winStart_[i] = cur;
    winStartCycle_[i] = machine_.now();

    if (elapsed == 0 || !solo_[i].primed())
        return 1.0;
    double ips = static_cast<double>(delta.instructions) /
        static_cast<double>(elapsed);
    double q = ips / solo_[i].value();
    return std::min(q, 1.5); // clamp probe-window artifacts
}

double
QosMonitor::minQosWindow()
{
    double q = 1.0;
    for (uint32_t c : coCores_)
        q = std::min(q, qosWindow(c));
    obs::metrics().gauge("runtime.qos.min").set(q);
    obs::tracer().counter("runtime.qos", "min_qos", q);
    return q;
}

} // namespace runtime
} // namespace protean
