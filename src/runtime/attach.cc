#include "runtime/attach.h"

#include "ir/serializer.h"
#include "isa/image.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

Attachment
attach(const sim::Process &proc)
{
    Attachment att;

    uint64_t magic = proc.readWord(isa::kHdrMagic);
    if (magic != isa::kImageMagic)
        fatal("attach: process %s is not a protean binary "
              "(magic 0x%llx)", proc.name().c_str(),
              static_cast<unsigned long long>(magic));

    att.evtBase = proc.readWord(isa::kHdrEvtBase);
    att.evtCount =
        static_cast<uint32_t>(proc.readWord(isa::kHdrEvtCount));
    uint64_t ir_base = proc.readWord(isa::kHdrIrBase);
    uint64_t ir_size = proc.readWord(isa::kHdrIrSize);

    // Extract and re-hydrate the embedded IR.
    if (ir_base != 0 && ir_size != 0) {
        std::vector<uint8_t> blob(static_cast<size_t>(ir_size));
        for (uint64_t i = 0; i < ir_size; ++i) {
            // Byte extraction from word-oriented ptrace-style reads.
            uint64_t addr = ir_base + i;
            uint64_t word = proc.readWord(addr & ~7ULL);
            blob[static_cast<size_t>(i)] =
                static_cast<uint8_t>(word >> (8 * (addr & 7)));
        }
        att.module = ir::deserializeCompressed(blob);
    }

    // Recover slot -> function from the EVT's initial targets using
    // the binary's function table (symbol information).
    const isa::Image &image = proc.image();
    for (uint32_t slot = 0; slot < att.evtCount; ++slot) {
        auto entry = static_cast<isa::CodeAddr>(
            proc.readWord(att.evtBase + 8ULL * slot));
        const isa::FunctionInfo *fi = image.functionAt(entry);
        if (!fi || fi->entry != entry) {
            warn("attach: EVT slot %u does not point at a function "
                 "entry; skipping", slot);
            continue;
        }
        att.slots[fi->irFunc] = slot;
    }
    return att;
}

} // namespace runtime
} // namespace protean
