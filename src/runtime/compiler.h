/**
 * @file
 * The runtime (dynamic) compiler.
 *
 * Compiles variants of host functions from the embedded IR,
 * asynchronously with respect to the host: compile work is charged
 * through a pluggable CompileBackend, and the variant becomes
 * dispatchable once the modeled latency has elapsed. Variants are
 * cached locally by (function, restricted non-temporal mask).
 *
 * Backends decide where the compile cycles are spent:
 *  - LocalCompileBackend (the default) charges the designated runtime
 *    core on this server, serially — the single-server model of the
 *    paper's Section III-B;
 *  - fleet::RemoteBackend forwards the request to a fleet-wide
 *    compilation service keyed by content hash, so servers running
 *    the same binary amortize compiles across the cluster
 *    (Section V-E's WSC argument).
 */

#ifndef PROTEAN_RUNTIME_COMPILER_H
#define PROTEAN_RUNTIME_COMPILER_H

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/cost.h"
#include "codegen/lowering.h"
#include "sim/machine.h"
#include "support/bitvector.h"

namespace protean {
namespace runtime {

/**
 * OSR geometry of one lowering of a function (the static image copy
 * or a cached variant), in absolute code addresses. Because the
 * restricted NT-mask transform preserves block structure, the same
 * BlockId indexes the corresponding loop header in every lowering,
 * so a back-edge in lowering A can be retargeted to
 * `B.headerPc[site.header]` with register/stack-identity
 * compensation (DESIGN.md §14).
 */
struct OsrLowering
{
    isa::CodeAddr entry = isa::kInvalidCodeAddr;
    /** Absolute address of each IR block's first instruction. */
    std::vector<isa::CodeAddr> headerPc;
    /** One loop back-edge branch (absolute pc of the Jmp/Bnz). */
    struct Site
    {
        isa::CodeAddr pc = isa::kInvalidCodeAddr;
        ir::BlockId header = 0;
    };
    std::vector<Site> sites;
};

/** A compiled variant's bookkeeping record. */
struct VariantRecord
{
    ir::FuncId func = ir::kInvalidId;
    isa::CodeAddr entry = isa::kInvalidCodeAddr;
    isa::CodeAddr end = isa::kInvalidCodeAddr;
    /** Restricted mask key (the function's own load bits). */
    std::string key;
    /** Back-edge table for on-stack replacement. */
    OsrLowering osr;
};

/** One compile request as a backend sees it. */
struct CompileJob
{
    /**
     * Content address of the requested variant: a stable hash over
     * (function IR content, restricted NT mask, codegen options).
     * Identical binaries on different servers produce identical keys
     * for identical requests — the fleet cache's index.
     */
    uint64_t contentKey = 0;
    ir::FuncId func = ir::kInvalidId;
    /** Modeled backend compile cost, in cycles. */
    uint64_t costCycles = 0;
    /** Estimated variant code size (network transfer modeling). */
    uint64_t codeBytes = 0;
    /**
     * Distributed trace id (0 = untraced). Assigned by the
     * requesting client, carried through every hop — shard queue,
     * replica, compile, response — and echoed in the outcome, so all
     * spans of one request's cross-server life share an id in the
     * exported trace.
     */
    uint64_t traceId = 0;
    /** Function name (spans and debugging). */
    std::string name;
    /**
     * The module-wide NT mask the variant was requested under.
     * Carried so a service-side install gate (validate::Validator)
     * can re-derive what a correct backend must have produced for
     * this contentKey.
     */
    BitVector ntMask;
};

/** What a backend resolved a job to. */
struct CompileOutcome
{
    /** Cycle the backend started working on the job. */
    uint64_t startCycle = 0;
    /** Cycle the variant may be installed on the requester. */
    uint64_t readyCycle = 0;
    /** Cycles charged to the requesting server. */
    uint64_t chargedCycles = 0;
    /** Satisfied from a shared cache (no fresh compile anywhere). */
    bool remoteHit = false;
    /**
     * The service could not serve this request (shard down, crash
     * mid-compile). Only fault-aware layers (fleet::RemoteBackend)
     * ever see this: they retry, reroute, or fall back to a local
     * compile, so RuntimeCompiler never observes a failed outcome.
     */
    bool failed = false;
    /** Payload failed its checksum on delivery (in-transit
     *  corruption); same contract as `failed`. */
    bool corrupted = false;
    /** The request's distributed trace id, echoed back (0 = none). */
    uint64_t traceId = 0;
};

/**
 * Where compile work happens and what it costs.
 *
 * compile() may invoke `done` synchronously (local backend) or later
 * (remote backend, once the service responds); either way the
 * outcome's readyCycle is the earliest cycle the caller may dispatch
 * the variant.
 */
class CompileBackend
{
  public:
    virtual ~CompileBackend() = default;

    virtual void compile(const CompileJob &job,
                         std::function<void(const CompileOutcome &)>
                             done) = 0;

    /** Short label for traces ("local", "fleet"). */
    virtual const char *backendName() const = 0;
};

/**
 * The paper's single-server backend: compiles are charged to one
 * designated core and queue serially (one compiler thread).
 */
class LocalCompileBackend : public CompileBackend
{
  public:
    LocalCompileBackend(sim::Machine &machine, uint32_t core)
        : machine_(machine), core_(core)
    {
    }

    void setCore(uint32_t core) { core_ = core; }

    void compile(const CompileJob &job,
                 std::function<void(const CompileOutcome &)> done)
        override;

    const char *backendName() const override { return "local"; }

  private:
    sim::Machine &machine_;
    uint32_t core_;
    /** Completion time of the last queued compile. */
    uint64_t backendFree_ = 0;
};

/** Asynchronous variant compiler with a code cache. */
class RuntimeCompiler
{
  public:
    /**
     * @param machine The simulated machine (for time and cycles).
     * @param proc The host process (receives appended code).
     * @param module The re-hydrated IR from the attachment.
     * @param slots Virtualization map (nested calls stay indirect).
     * @param runtime_core Core charged with compile work.
     * @param backend Compile backend; nullptr selects an owned
     *        LocalCompileBackend on runtime_core.
     */
    RuntimeCompiler(sim::Machine &machine, sim::Process &proc,
                    const ir::Module &module,
                    const codegen::VirtualizationMap &slots,
                    uint32_t runtime_core,
                    CompileBackend *backend = nullptr);

    /** Change which core absorbs compile work (local backend only). */
    void setRuntimeCore(uint32_t core);

    /** Override the compile cost model. */
    void setCostModel(const codegen::CompileCostModel &m) { cost_ = m; }

    /**
     * Request a variant of func under a module-wide NT mask.
     * If an identical variant is cached locally, on_ready fires
     * immediately (still through the event queue at now). Otherwise
     * the request goes to the backend and on_ready fires when the
     * modeled latency elapses.
     */
    void requestVariant(ir::FuncId func, const BitVector &mask,
                        std::function<void(isa::CodeAddr)> on_ready,
                        bool force_recompile = false);

    /** All variants compiled so far (newest last). */
    const std::vector<VariantRecord> &variants() const
    {
        return variants_;
    }

    /** Look up a cached variant; kInvalidCodeAddr if absent. */
    isa::CodeAddr cachedEntry(ir::FuncId func,
                              const BitVector &mask) const;

    /** Variants materialized into this server's code cache. */
    uint64_t compileCount() const { return compiles_; }
    /** Compile cycles charged to this server (backend-dependent). */
    uint64_t compileCycles() const { return compileCycles_; }
    /** Requests the backend satisfied from a shared cache. */
    uint64_t remoteHits() const { return remoteHits_; }

    /** Restrict a module mask to one function's loads (cache key). */
    std::string maskKey(ir::FuncId func, const BitVector &mask) const;

    /** Content address of (func, restricted mask, options). */
    uint64_t contentKey(ir::FuncId func, const std::string &key) const;

    CompileBackend &backend() { return *backend_; }

    /**
     * OSR geometry of the function's *static* lowering, derived
     * lazily by re-lowering the embedded IR with the image's own
     * options (no NT mask) — only the structural metadata is used,
     * so direct-call targets need no patching. Panics if the
     * re-lowering disagrees with the image's code placement.
     */
    const OsrLowering &staticOsr(ir::FuncId func);

    /** Loop back-edges in the function (0 = no loops: a flip of
     *  this function can only take effect at re-entry). */
    size_t osrSiteCount(ir::FuncId func);

    /**
     * On-stack replacement redirect: patch the back-edge branches of
     * *every* lowering of `func` — the static code and each cached
     * variant, including the target's own (restoring a previously
     * redirected variant when flipping back) — to the corresponding
     * loop-header pcs of the lowering at `target_entry` (a variant
     * entry or the static entry). Writes go through
     * `Process::patchInst`, so the decoded superblock caches retire
     * via the codeVersion bump; branches already pointing at the
     * desired header are skipped.
     *
     * @return Number of branch instructions actually patched.
     */
    uint32_t osrRedirect(ir::FuncId func, isa::CodeAddr target_entry);

  private:
    sim::Machine &machine_;
    sim::Process &proc_;
    const ir::Module &module_;
    const codegen::VirtualizationMap &slots_;
    uint32_t runtimeCore_;
    codegen::CompileCostModel cost_;
    std::unique_ptr<LocalCompileBackend> ownedBackend_;
    CompileBackend *backend_;

    /** Per-function list of its LoadIds (restriction support). */
    std::vector<std::vector<ir::LoadId>> funcLoads_;
    /** Per-function stable IR content hashes. */
    std::vector<uint64_t> funcHashes_;

    std::unordered_map<std::string, isa::CodeAddr> cache_;
    std::vector<VariantRecord> variants_;
    /** Lazily derived static-lowering OSR tables, by function. */
    std::unordered_map<ir::FuncId, OsrLowering> staticOsr_;
    uint64_t compiles_ = 0;
    uint64_t compileCycles_ = 0;
    uint64_t remoteHits_ = 0;

    isa::CodeAddr compileNow(ir::FuncId func, const BitVector &mask,
                             const std::string &key);
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_COMPILER_H
