/**
 * @file
 * The runtime (dynamic) compiler.
 *
 * Compiles variants of host functions from the embedded IR,
 * asynchronously with respect to the host: compile work is charged
 * to the runtime's core (stalling the host only when they share a
 * core), and the variant becomes dispatchable once the modeled
 * compile latency has elapsed. Variants are cached by
 * (function, restricted non-temporal mask).
 */

#ifndef PROTEAN_RUNTIME_COMPILER_H
#define PROTEAN_RUNTIME_COMPILER_H

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/cost.h"
#include "codegen/lowering.h"
#include "sim/machine.h"
#include "support/bitvector.h"

namespace protean {
namespace runtime {

/** A compiled variant's bookkeeping record. */
struct VariantRecord
{
    ir::FuncId func = ir::kInvalidId;
    isa::CodeAddr entry = isa::kInvalidCodeAddr;
    isa::CodeAddr end = isa::kInvalidCodeAddr;
    /** Restricted mask key (the function's own load bits). */
    std::string key;
};

/** Asynchronous variant compiler with a code cache. */
class RuntimeCompiler
{
  public:
    /**
     * @param machine The simulated machine (for time and cycles).
     * @param proc The host process (receives appended code).
     * @param module The re-hydrated IR from the attachment.
     * @param slots Virtualization map (nested calls stay indirect).
     * @param runtime_core Core charged with compile work.
     */
    RuntimeCompiler(sim::Machine &machine, sim::Process &proc,
                    const ir::Module &module,
                    const codegen::VirtualizationMap &slots,
                    uint32_t runtime_core);

    /** Change which core absorbs compile work. */
    void setRuntimeCore(uint32_t core) { runtimeCore_ = core; }

    /** Override the compile cost model. */
    void setCostModel(const codegen::CompileCostModel &m) { cost_ = m; }

    /**
     * Request a variant of func under a module-wide NT mask.
     * If an identical variant is cached, on_ready fires immediately
     * (still through the event queue at now). Otherwise the compile
     * is charged to the runtime core and on_ready fires when the
     * modeled latency elapses.
     */
    void requestVariant(ir::FuncId func, const BitVector &mask,
                        std::function<void(isa::CodeAddr)> on_ready,
                        bool force_recompile = false);

    /** All variants compiled so far (newest last). */
    const std::vector<VariantRecord> &variants() const
    {
        return variants_;
    }

    /** Look up a cached variant; kInvalidCodeAddr if absent. */
    isa::CodeAddr cachedEntry(ir::FuncId func,
                              const BitVector &mask) const;

    uint64_t compileCount() const { return compiles_; }
    uint64_t compileCycles() const { return compileCycles_; }

    /** Restrict a module mask to one function's loads (cache key). */
    std::string maskKey(ir::FuncId func, const BitVector &mask) const;

  private:
    sim::Machine &machine_;
    sim::Process &proc_;
    const ir::Module &module_;
    const codegen::VirtualizationMap &slots_;
    uint32_t runtimeCore_;
    codegen::CompileCostModel cost_;

    /** Per-function list of its LoadIds (restriction support). */
    std::vector<std::vector<ir::LoadId>> funcLoads_;

    std::unordered_map<std::string, isa::CodeAddr> cache_;
    std::vector<VariantRecord> variants_;
    uint64_t compiles_ = 0;
    uint64_t compileCycles_ = 0;
    /** Completion time of the last queued compile (serial backend). */
    uint64_t backendFree_ = 0;

    isa::CodeAddr compileNow(ir::FuncId func, const BitVector &mask,
                             const std::string &key);
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_COMPILER_H
