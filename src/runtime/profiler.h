/**
 * @file
 * Per-server continuous profiler: variant- and phase-attributed PC
 * samples plus a flip-experiment ledger.
 *
 * The paper's monitoring stack (Section III-B3) tells one server
 * which functions are hot; at fleet scale the interesting question
 * is *which variant of which function wins in which phase*. The
 * VariantProfiler closes that loop on each server:
 *
 *  - every PC sample the PcSampler attributes is folded into an
 *    obs::Profile bucket keyed by (function content hash, running
 *    variant's NT-mask key, current phase id), with the host core's
 *    cycle/instruction delta since the previous sample riding along;
 *  - a PhaseDetector fed the host's windowed IPC advances a
 *    monotonic per-server phase id (tests and scenario drivers can
 *    also script phases via advancePhase());
 *  - each dispatched flip opens an experiment: the windowed IPC
 *    before the flip is latched, and after `experimentTicks`
 *    monitoring ticks the IPC of the post-flip window is measured
 *    and the (before, after) pair is appended to the flip ledger.
 *
 * Everything here runs inside the owning machine's own quanta (tick
 * events and compile callbacks), touching only this server's state,
 * so fleet runs stay byte-identical serial or parallel; the
 * telemetry hub drains the profile and ledger at cluster barriers.
 */

#ifndef PROTEAN_RUNTIME_PROFILER_H
#define PROTEAN_RUNTIME_PROFILER_H

#include <string>
#include <vector>

#include "ir/module.h"
#include "obs/profile.h"
#include "runtime/monitor.h"
#include "sim/machine.h"

namespace protean {
namespace runtime {

/** One completed flip experiment. */
struct FlipRecord
{
    /** ir::functionHash of the flipped function. */
    uint64_t funcHash = 0;
    /** Restricted NT-mask key of the installed variant. */
    std::string mask;
    /** Phase id at dispatch time. */
    uint32_t phase = 0;
    /** Host windowed IPC over the ticks before the flip. */
    double ipcBefore = 0.0;
    /** Host windowed IPC over the experiment window after it. */
    double ipcAfter = 0.0;
    /** Cycle the variant went live. */
    uint64_t cycle = 0;
};

/** Profiler knobs. */
struct ProfilerOptions
{
    /** Monitoring ticks a flip experiment spans before its after-IPC
     *  is read. */
    uint32_t experimentTicks = 2;
    /** PhaseDetector sensitivity (see monitor.h). */
    double phaseRateThreshold = 0.3;
    double phaseAlpha = 0.25;
    uint32_t phaseCooldown = 6;
};

/** Per-server sampling profile + flip ledger (see file comment). */
class VariantProfiler
{
  public:
    VariantProfiler(sim::Machine &machine, uint32_t host_core,
                    const ir::Module &module,
                    const ProfilerOptions &opts = ProfilerOptions{});

    /**
     * Fold one attributed PC sample into the profile. Called by the
     * PcSampler on its own sample cadence; `func` may be
     * ir::kInvalidId (unattributed), `mask` is the running variant's
     * restricted key ("" = original code).
     */
    void recordSample(ir::FuncId func, const std::string &mask);

    /**
     * One monitoring tick: folds the host's windowed IPC into the
     * phase detector (advancing the phase id on a detected change)
     * and matures any flip experiments whose window elapsed.
     */
    void onTick();

    /** A variant went live on the EVT: open a flip experiment. */
    void onFlipDispatched(ir::FuncId func, const std::string &mask);

    /** Script a phase change directly (tests, scenario drivers). */
    void advancePhase() { ++phase_; }

    uint32_t phase() const { return phase_; }

    const obs::Profile &profile() const { return profile_; }

    /** Move the profile's contents into `into` (telemetry scrape;
     *  the local profile restarts empty). */
    void drainProfile(obs::Profile &into)
    {
        profile_.drainInto(into);
    }

    /** Completed flip experiments since the last drain. */
    const std::vector<FlipRecord> &ledger() const { return ledger_; }

    /** Take the ledger (telemetry scrape). */
    std::vector<FlipRecord> drainLedger();

    /** Content hash the profiler attributes `func` to. */
    uint64_t funcHash(ir::FuncId func) const;

  private:
    struct Experiment
    {
        FlipRecord record;
        uint32_t ticksLeft = 0;
        /** Host HPM snapshot at dispatch (after-IPC baseline). */
        sim::HpmCounters start;
    };

    sim::Machine &machine_;
    uint32_t hostCore_;
    ProfilerOptions opts_;
    obs::Profile profile_;
    std::vector<FlipRecord> ledger_;
    std::vector<Experiment> experiments_;
    PhaseDetector detector_;
    uint32_t phase_ = 0;
    /** Host windowed IPC of the last completed tick window. */
    double lastWindowIpc_ = 0.0;
    /** HPM snapshot at the last tick (IPC windows). */
    sim::HpmCounters lastTick_;
    /** HPM snapshot at the last recorded sample (attribution). */
    sim::HpmCounters lastSample_;
    /** Per-FuncId content hashes and names, precomputed once. */
    std::vector<uint64_t> hashes_;
    std::vector<std::string> names_;

    sim::HpmCounters hostHpm() const;
    static double ipcOf(const sim::HpmCounters &delta);
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_PROFILER_H
