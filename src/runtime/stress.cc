#include "runtime/stress.h"

#include "support/logging.h"

namespace protean {
namespace runtime {

StressEngine::StressEngine(double interval_ms, uint64_t seed)
    : intervalMs_(interval_ms), rng_(seed)
{
    if (interval_ms <= 0.0)
        panic("StressEngine: interval must be positive");
}

void
StressEngine::onStart(ProteanRuntime &rt)
{
    for (const auto &[func, slot] : rt.evt().slots()) {
        (void)slot;
        candidates_.push_back(func);
    }
    std::sort(candidates_.begin(), candidates_.end());
    nextFire_ = rt.machine().now();
}

void
StressEngine::onTick(ProteanRuntime &rt)
{
    if (candidates_.empty())
        return;
    uint64_t interval = rt.machine().msToCycles(intervalMs_);
    while (rt.machine().now() >= nextFire_) {
        nextFire_ += interval;
        ir::FuncId f = candidates_[static_cast<size_t>(
            rng_.nextBelow(candidates_.size()))];

        // The paper's stress test makes *no* code modifications:
        // recompile the unmodified function (bypassing the variant
        // cache so the dynamic compiler genuinely works) and
        // dispatch the fresh copy.
        BitVector mask(rt.module().numLoads());
        ++recompiles_;
        ++salt_;
        rt.compiler().requestVariant(
            f, mask,
            [&rt, f](isa::CodeAddr entry) {
                if (rt.evt().virtualized(f))
                    rt.evt().retarget(f, entry);
            },
            /*force_recompile=*/true);
    }
}

} // namespace runtime
} // namespace protean
