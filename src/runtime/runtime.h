/**
 * @file
 * The protean code runtime (paper Section III-B).
 *
 * ProteanRuntime assembles the runtime mechanisms — attachment, EVT
 * management, the asynchronous dynamic compiler, PC sampling, HPM
 * monitoring — and drives a pluggable DecisionEngine on a periodic
 * tick. The runtime's own work (sampling, analysis, compiles) is
 * charged to a designated core, which may be the host's own core or
 * a separate one (Figures 5/6 of the paper study exactly this).
 */

#ifndef PROTEAN_RUNTIME_RUNTIME_H
#define PROTEAN_RUNTIME_RUNTIME_H

#include <memory>
#include <vector>

#include "obs/hdr.h"
#include "runtime/attach.h"
#include "runtime/compiler.h"
#include "runtime/evt_manager.h"
#include "runtime/monitor.h"
#include "runtime/profiler.h"
#include "runtime/qos.h"

namespace protean {
namespace runtime {

class ProteanRuntime;

/** Policy plug-in invoked on every monitoring tick. */
class DecisionEngine
{
  public:
    virtual ~DecisionEngine() = default;

    /** Called once when the runtime starts. */
    virtual void onStart(ProteanRuntime &rt) { (void)rt; }

    /** Called every tick after monitoring updates. */
    virtual void onTick(ProteanRuntime &rt) = 0;
};

/** Runtime configuration. */
struct RuntimeOptions
{
    /** Core charged with runtime work (compiles, analysis). */
    uint32_t runtimeCore = 0;
    /** Monitoring tick period. */
    double tickMs = 5.0;
    /** Modeled analysis cost per tick, in cycles. */
    uint64_t tickCostCycles = 60;
    /** Dynamic-compile cost model. */
    codegen::CompileCostModel costModel;
    /**
     * Compile backend (non-owning; must outlive the runtime).
     * nullptr = a local backend on runtimeCore (the single-server
     * behavior); a fleet::RemoteBackend shares compiles fleet-wide.
     */
    CompileBackend *compileBackend = nullptr;
    /**
     * On-stack replacement: when a variant is dispatched, also
     * redirect the loop back-edges of every other lowering of the
     * function at its OSR points, so an *executing* long-running
     * loop flips at its next back-edge instead of waiting for
     * function re-entry (DESIGN.md §14). Compensation is
     * register/stack identity for the restricted NT-mask transform.
     * Off by default: entry-flip-only, the pre-OSR behavior.
     */
    bool osr = false;
    /** Cycles charged per OSR redirect (table walk/bookkeeping). */
    uint64_t osrBaseCycles = 40;
    /** Cycles charged per back-edge branch actually patched. */
    uint64_t osrPatchCycles = 4;
};

/**
 * Point-in-time flip-*effect* latency accounting: request →
 * new-variant code first executing on the host core. Distinct from
 * resolve latency (request → variant installed): a dispatched flip
 * whose function never re-enters has resolved but taken no effect —
 * exactly the hot-loop tail OSR collapses. Pending flips are
 * censored at `now` without mutating state.
 */
struct FlipEffectStats
{
    uint64_t entryFlips = 0;   ///< Took effect at function re-entry.
    uint64_t osrFlips = 0;     ///< Took effect mid-loop via OSR.
    uint64_t pending = 0;      ///< Dispatched, not yet in effect.
    uint64_t worstEntry = 0;   ///< Worst entry-flip latency (cycles).
    uint64_t worstOsr = 0;     ///< Worst OSR-flip latency (cycles).
    uint64_t worstPending = 0; ///< Oldest pending flip, censored.

    /** Worst-case effect latency across fired and pending flips. */
    uint64_t worst() const
    {
        uint64_t w = worstEntry > worstOsr ? worstEntry : worstOsr;
        return w > worstPending ? w : worstPending;
    }
};

/** The runtime process attached to one host. */
class ProteanRuntime
{
  public:
    /**
     * Attach to a host process.
     * Fatal when the host carries no embedded IR.
     */
    ProteanRuntime(sim::Machine &machine, sim::Process &host,
                   const RuntimeOptions &opts = RuntimeOptions{});

    ~ProteanRuntime();

    /** Install the decision engine (must outlive the runtime). */
    void setEngine(DecisionEngine *engine) { engine_ = engine; }

    /** Begin ticking. */
    void start();

    /** Stop ticking (the host keeps running). */
    void stop();

    // --- Services for engines.
    sim::Machine &machine() { return machine_; }
    sim::Process &host() { return host_; }
    uint32_t hostCore() const { return host_.coreId(); }
    uint32_t runtimeCore() const { return opts_.runtimeCore; }

    const ir::Module &module() const { return *att_.module; }
    EvtManager &evt() { return *evt_; }
    RuntimeCompiler &compiler() { return *compiler_; }
    PcSampler &sampler() { return *sampler_; }
    HpmMonitor &hpm() { return *hpm_; }
    NapGovernor &napGovernor() { return *governor_; }

    /**
     * Attach a continuous profiler (idempotent). Samples are
     * attributed by variant and phase from then on; flips dispatched
     * through deployVariant open flip experiments. Profiling is
     * strictly opt-in: without this call the only added cost on the
     * monitoring path is one null check per sample.
     */
    void enableProfiling(const ProfilerOptions &opts
                         = ProfilerOptions{});

    /** The attached profiler, or nullptr when profiling is off. */
    VariantProfiler *profiler() { return profiler_.get(); }

    /**
     * Compile (or fetch) a variant and dispatch it through the EVT
     * once ready. No-op callback variant of the common pattern.
     */
    void deployVariant(ir::FuncId func, const BitVector &mask,
                       std::function<void()> on_dispatched = {});

    /** Revert every virtualized function to its original code. */
    void revertAll();

    /** Charge ad-hoc runtime work (engines' own analysis). */
    void chargeWork(uint64_t cycles);

    /** Flip-effect latency snapshot; pending flips censored at
     *  `now` (non-mutating — repeatable at barriers). */
    FlipEffectStats flipEffectStats(uint64_t now) const;

    /** Cumulative flip-effect latency histograms (cycles). */
    const obs::HdrHistogram &flipEffectEntry() const
    {
        return flipEntryHist_;
    }
    const obs::HdrHistogram &flipEffectOsr() const
    {
        return flipOsrHist_;
    }

    /** Merge-and-clear the since-last-drain flip-effect windows into
     *  the given histograms (telemetry scrape). */
    void drainFlipEffectWindow(obs::HdrHistogram &entry_h,
                               obs::HdrHistogram &osr_h);

    /** OSR redirects performed / back-edge branches patched. */
    uint64_t osrRedirects() const { return osrRedirects_; }
    uint64_t osrPatchesWritten() const { return osrPatches_; }

    /** Total cycles the runtime has consumed so far. */
    uint64_t runtimeCycles() const { return runtimeCycles_; }

    /** Fraction of all server cycles consumed by the runtime since
     *  attach. */
    double serverCycleShare() const;

    uint64_t ticks() const { return ticks_; }

  private:
    sim::Machine &machine_;
    sim::Process &host_;
    RuntimeOptions opts_;
    Attachment att_;
    std::unique_ptr<EvtManager> evt_;
    std::unique_ptr<RuntimeCompiler> compiler_;
    std::unique_ptr<PcSampler> sampler_;
    std::unique_ptr<HpmMonitor> hpm_;
    std::unique_ptr<NapGovernor> governor_;
    std::unique_ptr<VariantProfiler> profiler_;
    DecisionEngine *engine_ = nullptr;
    bool running_ = false;
    bool destroyed_ = false;
    std::shared_ptr<bool> alive_;
    uint64_t ticks_ = 0;
    uint64_t runtimeCycles_ = 0;
    uint64_t attachCycle_ = 0;

    /** A dispatched flip whose effect has not been observed yet. */
    struct PendingFlip
    {
        uint64_t id;
        uint64_t requestCycle;
    };
    std::vector<PendingFlip> pendingFlips_;
    obs::HdrHistogram flipEntryHist_;
    obs::HdrHistogram flipOsrHist_;
    /** Since-last-drain windows for the telemetry scrape. */
    obs::HdrHistogram flipEntryWindow_;
    obs::HdrHistogram flipOsrWindow_;
    uint64_t worstEntryFlip_ = 0;
    uint64_t worstOsrFlip_ = 0;
    uint64_t nextFlipId_ = 1;
    uint64_t osrRedirects_ = 0;
    uint64_t osrPatches_ = 0;

    void tick();

    /** Flip-watch fire callback (installed on the host core). */
    void onFlipEffect(uint64_t id, bool osr, uint64_t cycle);
};

} // namespace runtime
} // namespace protean

#endif // PROTEAN_RUNTIME_RUNTIME_H
