#include "runtime/runtime.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

ProteanRuntime::ProteanRuntime(sim::Machine &machine,
                               sim::Process &host,
                               const RuntimeOptions &opts)
    : machine_(machine), host_(host), opts_(opts),
      att_(attach(host)), alive_(std::make_shared<bool>(true))
{
    if (!att_.hasIr())
        fatal("ProteanRuntime: host %s carries no embedded IR",
              host.name().c_str());
    evt_ = std::make_unique<EvtManager>(host_, att_.evtBase,
                                        att_.slots);
    compiler_ = std::make_unique<RuntimeCompiler>(
        machine_, host_, *att_.module, evt_->slots(),
        opts_.runtimeCore, opts_.compileBackend);
    compiler_->setCostModel(opts_.costModel);
    sampler_ = std::make_unique<PcSampler>(machine_, host_,
                                           host_.coreId());
    hpm_ = std::make_unique<HpmMonitor>(machine_);
    governor_ = std::make_unique<NapGovernor>(machine_,
                                              host_.coreId());
    attachCycle_ = machine_.now();
    obs::metrics().counter("runtime.attach.count").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "runtime", "attach",
            strformat(
                "\"host\":\"%s\",\"functions\":%u,\"slots\":%zu",
                host.name().c_str(),
                static_cast<uint32_t>(att_.module->numFunctions()),
                att_.slots.size()));
    }
}

ProteanRuntime::~ProteanRuntime()
{
    *alive_ = false;
}

void
ProteanRuntime::start()
{
    if (running_)
        return;
    running_ = true;
    if (engine_)
        engine_->onStart(*this);
    machine_.scheduleAfter(machine_.msToCycles(opts_.tickMs),
                           [this, alive = alive_] {
                               if (*alive)
                                   tick();
                           });
}

void
ProteanRuntime::stop()
{
    running_ = false;
}

void
ProteanRuntime::tick()
{
    if (!running_)
        return;
    ++ticks_;
    obs::metrics().counter("runtime.ticks").inc();
    sampler_->sample();
    if (profiler_)
        profiler_->onTick();
    chargeWork(opts_.tickCostCycles);
    if (engine_)
        engine_->onTick(*this);
    machine_.scheduleAfter(machine_.msToCycles(opts_.tickMs),
                           [this, alive = alive_] {
                               if (*alive)
                                   tick();
                           });
}

void
ProteanRuntime::deployVariant(ir::FuncId func, const BitVector &mask,
                              std::function<void()> on_dispatched)
{
    obs::metrics().counter("runtime.deploy.requests").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "runtime", "compile_enqueue",
            strformat("\"func\":%u,\"mask_bits\":%zu", func,
                      mask.count()));
    }
    uint64_t before = compiler_->compileCycles();
    compiler_->requestVariant(
        func, mask,
        [this, func, alive = alive_,
         on_dispatched = std::move(on_dispatched)](isa::CodeAddr e) {
            if (!*alive)
                return;
            if (obs::tracer().enabled()) {
                obs::tracer().instant(
                    "runtime", "variant_dispatch",
                    strformat("\"func\":%u", func));
            }
            // Teach the PC sampler the new range, then dispatch by
            // retargeting the EVT slot.
            for (const auto &v : compiler_->variants()) {
                if (v.entry == e) {
                    sampler_->registerVariantRange(v.entry, v.end,
                                                   v.func, v.key);
                    if (profiler_)
                        profiler_->onFlipDispatched(v.func, v.key);
                    break;
                }
            }
            if (evt_->virtualized(func))
                evt_->retarget(func, e);
            else
                warn("deployVariant: %u is not virtualized; variant "
                     "compiled but not dispatched", func);
            if (on_dispatched)
                on_dispatched();
        });
    runtimeCycles_ += compiler_->compileCycles() - before;
}

void
ProteanRuntime::enableProfiling(const ProfilerOptions &opts)
{
    if (profiler_)
        return;
    profiler_ = std::make_unique<VariantProfiler>(
        machine_, host_.coreId(), *att_.module, opts);
    sampler_->setProfiler(profiler_.get());
    obs::metrics().counter("runtime.profiler.enabled").inc();
}

void
ProteanRuntime::revertAll()
{
    evt_->revertAll();
}

void
ProteanRuntime::chargeWork(uint64_t cycles)
{
    machine_.core(opts_.runtimeCore).stealCycles(cycles);
    runtimeCycles_ += cycles;
    obs::metrics().counter("runtime.cycles").inc(cycles);
}

double
ProteanRuntime::serverCycleShare() const
{
    uint64_t elapsed = machine_.now() - attachCycle_;
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(runtimeCycles_) /
        (static_cast<double>(elapsed) * machine_.numCores());
}

} // namespace runtime
} // namespace protean
