#include "runtime/runtime.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace runtime {

ProteanRuntime::ProteanRuntime(sim::Machine &machine,
                               sim::Process &host,
                               const RuntimeOptions &opts)
    : machine_(machine), host_(host), opts_(opts),
      att_(attach(host)), alive_(std::make_shared<bool>(true))
{
    if (!att_.hasIr())
        fatal("ProteanRuntime: host %s carries no embedded IR",
              host.name().c_str());
    evt_ = std::make_unique<EvtManager>(host_, att_.evtBase,
                                        att_.slots);
    compiler_ = std::make_unique<RuntimeCompiler>(
        machine_, host_, *att_.module, evt_->slots(),
        opts_.runtimeCore, opts_.compileBackend);
    compiler_->setCostModel(opts_.costModel);
    sampler_ = std::make_unique<PcSampler>(machine_, host_,
                                           host_.coreId());
    hpm_ = std::make_unique<HpmMonitor>(machine_);
    governor_ = std::make_unique<NapGovernor>(machine_,
                                              host_.coreId());
    attachCycle_ = machine_.now();
    // Flip-effect watches fire from the host core's transferTo; the
    // alive guard covers watches outliving this runtime.
    machine_.core(host_.coreId())
        .setFlipHook([this, alive = alive_](uint64_t id, bool osr,
                                            uint64_t cycle) {
            if (*alive)
                onFlipEffect(id, osr, cycle);
        });
    obs::metrics().counter("runtime.attach.count").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "runtime", "attach",
            strformat(
                "\"host\":\"%s\",\"functions\":%u,\"slots\":%zu",
                host.name().c_str(),
                static_cast<uint32_t>(att_.module->numFunctions()),
                att_.slots.size()));
    }
}

ProteanRuntime::~ProteanRuntime()
{
    *alive_ = false;
}

void
ProteanRuntime::start()
{
    if (running_)
        return;
    running_ = true;
    if (engine_)
        engine_->onStart(*this);
    machine_.scheduleAfter(machine_.msToCycles(opts_.tickMs),
                           [this, alive = alive_] {
                               if (*alive)
                                   tick();
                           });
}

void
ProteanRuntime::stop()
{
    running_ = false;
}

void
ProteanRuntime::tick()
{
    if (!running_)
        return;
    ++ticks_;
    obs::metrics().counter("runtime.ticks").inc();
    sampler_->sample();
    if (profiler_)
        profiler_->onTick();
    chargeWork(opts_.tickCostCycles);
    if (engine_)
        engine_->onTick(*this);
    machine_.scheduleAfter(machine_.msToCycles(opts_.tickMs),
                           [this, alive = alive_] {
                               if (*alive)
                                   tick();
                           });
}

void
ProteanRuntime::deployVariant(ir::FuncId func, const BitVector &mask,
                              std::function<void()> on_dispatched)
{
    obs::metrics().counter("runtime.deploy.requests").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "runtime", "compile_enqueue",
            strformat("\"func\":%u,\"mask_bits\":%zu", func,
                      mask.count()));
    }
    uint64_t before = compiler_->compileCycles();
    uint64_t request_cycle = machine_.now();
    compiler_->requestVariant(
        func, mask,
        [this, func, request_cycle, alive = alive_,
         on_dispatched = std::move(on_dispatched)](isa::CodeAddr e) {
            if (!*alive)
                return;
            if (obs::tracer().enabled()) {
                obs::tracer().instant(
                    "runtime", "variant_dispatch",
                    strformat("\"func\":%u", func));
            }
            // Teach the PC sampler the new range, then dispatch by
            // retargeting the EVT slot.
            const VariantRecord *rec = nullptr;
            for (const auto &v : compiler_->variants()) {
                if (v.entry == e) {
                    sampler_->registerVariantRange(v.entry, v.end,
                                                   v.func, v.key);
                    if (profiler_)
                        profiler_->onFlipDispatched(v.func, v.key);
                    rec = &v;
                    break;
                }
            }
            if (evt_->virtualized(func)) {
                evt_->retarget(func, e);
                if (rec) {
                    // Watch for the flip taking *effect*: any pending
                    // watch for this function now waits for the newer
                    // variant (its flip is subsumed), and the fresh
                    // dispatch gets its own watch. Pure observation —
                    // zero modeled cycles.
                    sim::Core &hc = machine_.core(host_.coreId());
                    hc.retargetFlipWatches(func, rec->entry, rec->end,
                                           rec->entry);
                    uint64_t id = nextFlipId_++;
                    hc.armFlipWatch(
                        {id, func, rec->entry, rec->end, rec->entry});
                    pendingFlips_.push_back({id, request_cycle});
                    if (opts_.osr &&
                        compiler_->osrSiteCount(func) > 0) {
                        uint32_t patches =
                            compiler_->osrRedirect(func, rec->entry);
                        ++osrRedirects_;
                        osrPatches_ += patches;
                        obs::metrics()
                            .counter("runtime.osr.redirects").inc();
                        obs::metrics()
                            .counter("runtime.osr.patches")
                            .inc(patches);
                        chargeWork(opts_.osrBaseCycles +
                                   opts_.osrPatchCycles * patches);
                    }
                }
            } else {
                warn("deployVariant: %u is not virtualized; variant "
                     "compiled but not dispatched", func);
            }
            if (on_dispatched)
                on_dispatched();
        });
    runtimeCycles_ += compiler_->compileCycles() - before;
}

void
ProteanRuntime::enableProfiling(const ProfilerOptions &opts)
{
    if (profiler_)
        return;
    profiler_ = std::make_unique<VariantProfiler>(
        machine_, host_.coreId(), *att_.module, opts);
    sampler_->setProfiler(profiler_.get());
    obs::metrics().counter("runtime.profiler.enabled").inc();
}

void
ProteanRuntime::revertAll()
{
    evt_->revertAll();
    if (opts_.osr) {
        // Undo OSR redirects too: every flipped function's back-edges
        // return to the static lowering's loop headers, so a running
        // loop falls back to original code at its next back-edge.
        std::vector<bool> done(att_.module->numFunctions(), false);
        for (const auto &v : compiler_->variants()) {
            if (done[v.func])
                continue;
            done[v.func] = true;
            compiler_->osrRedirect(
                v.func, host_.image().function(v.func).entry);
        }
    }
}

void
ProteanRuntime::onFlipEffect(uint64_t id, bool osr, uint64_t cycle)
{
    for (size_t i = 0; i < pendingFlips_.size(); ++i) {
        if (pendingFlips_[i].id != id)
            continue;
        uint64_t req = pendingFlips_[i].requestCycle;
        uint64_t lat = cycle > req ? cycle - req : 0;
        if (osr) {
            flipOsrHist_.record(lat);
            flipOsrWindow_.record(lat);
            if (lat > worstOsrFlip_)
                worstOsrFlip_ = lat;
            obs::metrics().counter("runtime.flip.effect_osr").inc();
        } else {
            flipEntryHist_.record(lat);
            flipEntryWindow_.record(lat);
            if (lat > worstEntryFlip_)
                worstEntryFlip_ = lat;
            obs::metrics().counter("runtime.flip.effect_entry").inc();
        }
        pendingFlips_.erase(pendingFlips_.begin() +
                            static_cast<ptrdiff_t>(i));
        return;
    }
}

FlipEffectStats
ProteanRuntime::flipEffectStats(uint64_t now) const
{
    FlipEffectStats s;
    s.entryFlips = flipEntryHist_.total();
    s.osrFlips = flipOsrHist_.total();
    s.worstEntry = worstEntryFlip_;
    s.worstOsr = worstOsrFlip_;
    s.pending = pendingFlips_.size();
    for (const PendingFlip &p : pendingFlips_) {
        uint64_t lat = now > p.requestCycle ? now - p.requestCycle : 0;
        if (lat > s.worstPending)
            s.worstPending = lat;
    }
    return s;
}

void
ProteanRuntime::drainFlipEffectWindow(obs::HdrHistogram &entry_h,
                                      obs::HdrHistogram &osr_h)
{
    entry_h.merge(flipEntryWindow_);
    osr_h.merge(flipOsrWindow_);
    flipEntryWindow_.clear();
    flipOsrWindow_.clear();
}

void
ProteanRuntime::chargeWork(uint64_t cycles)
{
    machine_.core(opts_.runtimeCore).stealCycles(cycles);
    runtimeCycles_ += cycles;
    obs::metrics().counter("runtime.cycles").inc(cycles);
}

double
ProteanRuntime::serverCycleShare() const
{
    uint64_t elapsed = machine_.now() - attachCycle_;
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(runtimeCycles_) /
        (static_cast<double>(elapsed) * machine_.numCores());
}

} // namespace runtime
} // namespace protean
