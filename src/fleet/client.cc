#include "fleet/client.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace fleet {

// ---------------------------------------------------------------- //
//                         CircuitBreaker                           //
// ---------------------------------------------------------------- //

bool
CircuitBreaker::allowRequest(uint64_t now)
{
    switch (state_) {
    case State::Closed:
        return true;
    case State::Open:
        if (now < openUntil_)
            return false;
        state_ = State::HalfOpen;
        halfOpenSuccesses_ = 0;
        return true;
    case State::HalfOpen:
        return true;
    }
    return true;
}

void
CircuitBreaker::onSuccess(uint64_t now)
{
    (void)now;
    consecutiveFailures_ = 0;
    if (state_ == State::HalfOpen) {
        if (++halfOpenSuccesses_ >= cfg_.closeThreshold)
            state_ = State::Closed;
    }
}

void
CircuitBreaker::onFailure(uint64_t now)
{
    if (state_ == State::HalfOpen) {
        // A failed probe re-opens immediately.
        trip(now);
        return;
    }
    if (state_ == State::Open)
        return;
    if (++consecutiveFailures_ >= cfg_.failureThreshold)
        trip(now);
}

void
CircuitBreaker::trip(uint64_t now)
{
    state_ = State::Open;
    openUntil_ = now + cfg_.openCycles;
    consecutiveFailures_ = 0;
    halfOpenSuccesses_ = 0;
    ++opens_;
    obs::metrics().counter("fleet.client.breaker_opens").inc();
}

// ---------------------------------------------------------------- //
//                          RemoteBackend                           //
// ---------------------------------------------------------------- //

RemoteBackend::RemoteBackend(CompileService &svc,
                             sim::Machine &machine,
                             uint32_t server_id, uint32_t install_core,
                             uint64_t install_cycles)
    : svc_(svc), machine_(machine), serverId_(server_id),
      installCore_(install_core), installCycles_(install_cycles),
      breaker_(CircuitBreaker::Config{}), jitterRng_(0),
      local_(machine, install_core)
{
}

void
RemoteBackend::drainFlipWindow(obs::HdrHistogram &into)
{
    into.merge(flipWindow_);
    flipWindow_.clear();
}

void
RemoteBackend::recordResolve(uint64_t send_cycle,
                             uint64_t ready_cycle)
{
    uint64_t resolve =
        ready_cycle > send_cycle ? ready_cycle - send_cycle : 0;
    cstats_.maxResolveCycles =
        std::max(cstats_.maxResolveCycles, resolve);
    flipWindow_.record(resolve);
}

size_t
RemoteBackend::stalledCount(uint64_t now, uint64_t age_bound) const
{
    size_t stalled = 0;
    for (const auto &[id, p] : pending_) {
        (void)id;
        if (p->sendCycle + age_bound <= now)
            ++stalled;
    }
    return stalled;
}

void
RemoteBackend::setRetryPolicy(const RetryPolicy &policy)
{
    policy_ = policy;
    breaker_ = CircuitBreaker(policy.breaker);
    // Per-server jitter stream: independent across servers, consumed
    // in this machine's event order, so it never couples servers.
    jitterRng_ =
        Rng(mix64(policy.jitterSeed) ^ mix64(serverId_ + 0x9e37));
}

void
RemoteBackend::compile(const runtime::CompileJob &job,
                       std::function<
                           void(const runtime::CompileOutcome &)> done)
{
    ++requests_;
    obs::metrics().counter("fleet.client.requests").inc();

    // Every request gets a distributed trace id at its origin; it
    // rides the job to the service and comes back in the outcome, so
    // the whole cross-server life of the request shares one id.
    runtime::CompileJob traced = job;
    traced.traceId = nextTraceId();

    if (!policy_.enabled) {
        // Fire-and-wait path: no timeouts, no fallback — the
        // pre-fault behavior, kept for direct-service tests and
        // calibration runs.
        uint64_t send = machine_.now();
        uint64_t arrival =
            send + svc_.config().net.requestLatencyCycles;
        if (obs::tracer().enabled()) {
            obs::tracer().complete(
                "fleet.client", "request hop", send, arrival,
                strformat("\"server\":%u,\"trace\":%llu", serverId_,
                          static_cast<unsigned long long>(
                              traced.traceId)));
        }
        svc_.submit(
            serverId_, traced, arrival,
            [this, send, done = std::move(done)](
                const runtime::CompileOutcome &out) {
                machine_.core(installCore_)
                    .stealCycles(installCycles_);
                recordResolve(send, out.readyCycle);
                if (obs::tracer().enabled()) {
                    obs::tracer().instant(
                        "fleet.client",
                        out.remoteHit ? "install cached variant" :
                                        "install compiled variant",
                        strformat("\"server\":%u,\"trace\":%llu",
                                  serverId_,
                                  static_cast<unsigned long long>(
                                      out.traceId)));
                    obs::tracer().complete(
                        "fleet.client", "flip", send, out.readyCycle,
                        strformat("\"server\":%u,\"trace\":%llu,"
                                  "\"outcome\":\"%s\"",
                                  serverId_,
                                  static_cast<unsigned long long>(
                                      out.traceId),
                                  out.remoteHit ? "hit" : "miss"));
                }
                runtime::CompileOutcome charged = out;
                charged.chargedCycles = installCycles_;
                done(charged);
            });
        return;
    }

    auto p = std::make_shared<PendingReq>();
    p->id = nextId_++;
    p->job = std::move(traced);
    p->done = std::move(done);
    p->sendCycle = machine_.now();
    pending_[p->id] = p;

    if (!breaker_.allowRequest(machine_.now())) {
        // Breaker open: don't even knock — degrade straight to the
        // local compiler until the open window elapses.
        ++cstats_.breakerShortCircuits;
        obs::metrics()
            .counter("fleet.client.breaker_short_circuits")
            .inc();
        localFallback(p, "breaker open");
        return;
    }
    startAttempt(p);
}

void
RemoteBackend::startAttempt(const PendingPtr &p)
{
    uint32_t attempt = p->attempts++;
    p->closed.push_back(0);
    ++p->outstanding;
    ++cstats_.remoteRequests;
    obs::metrics().counter("fleet.client.remote_attempts").inc();

    uint64_t now = machine_.now();
    uint64_t arrival = now + svc_.config().net.requestLatencyCycles;
    if (obs::tracer().enabled()) {
        obs::tracer().complete(
            "fleet.client", "request hop", now, arrival,
            strformat("\"server\":%u,\"trace\":%llu,\"attempt\":%u",
                      serverId_,
                      static_cast<unsigned long long>(p->job.traceId),
                      attempt));
    }
    // Rotate each attempt to a different member of the key's replica
    // set: if the primary shard is sick, the retry/hedge lands
    // elsewhere instead of queueing behind the same failure.
    svc_.submit(
        serverId_, p->job, arrival,
        [this, p, attempt](const runtime::CompileOutcome &out) {
            if (p->resolved)
                return; // stale: another attempt/fallback already won
            if (out.failed) {
                ++cstats_.failedResponses;
                obs::metrics()
                    .counter("fleet.client.failed_responses")
                    .inc();
                closeAttempt(p, attempt, "failure response");
                return;
            }
            if (out.corrupted) {
                // Payload checksum mismatch on delivery: unusable,
                // treated exactly like a failure (recompile
                // elsewhere), never installed.
                ++cstats_.corruptResponses;
                obs::metrics()
                    .counter("fleet.client.corrupt_responses")
                    .inc();
                closeAttempt(p, attempt, "corrupt payload");
                return;
            }
            resolveSuccess(p, out);
        },
        attempt);

    machine_.scheduleAfter(
        policy_.attemptTimeoutCycles, [this, p, attempt] {
            if (p->resolved || p->closed[attempt])
                return;
            ++cstats_.timeouts;
            obs::metrics().counter("fleet.client.timeouts").inc();
            closeAttempt(p, attempt, "timeout");
        });

    if (attempt == 0 && policy_.hedgeAfterCycles > 0) {
        machine_.scheduleAfter(policy_.hedgeAfterCycles, [this, p] {
            if (p->resolved || p->hedged || p->outstanding == 0)
                return;
            p->hedged = true;
            ++cstats_.hedges;
            obs::metrics().counter("fleet.client.hedges").inc();
            if (obs::tracer().enabled()) {
                obs::tracer().instant(
                    "fleet.client", "hedge request",
                    strformat("\"server\":%u,\"trace\":%llu",
                              serverId_,
                              static_cast<unsigned long long>(
                                  p->job.traceId)));
            }
            startAttempt(p);
        });
    }
}

void
RemoteBackend::closeAttempt(const PendingPtr &p, uint32_t attempt,
                            const char *reason)
{
    if (p->resolved || p->closed[attempt])
        return;
    p->closed[attempt] = 1;
    --p->outstanding;
    breaker_.onFailure(machine_.now());
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "fleet.client", "attempt failed",
            strformat("\"server\":%u,\"reason\":\"%s\","
                      "\"trace\":%llu,\"attempt\":%u",
                      serverId_, reason,
                      static_cast<unsigned long long>(p->job.traceId),
                      attempt));
    }
    if (p->outstanding > 0)
        return; // a sibling (hedge) is still in flight
    escalate(p);
}

void
RemoteBackend::escalate(const PendingPtr &p)
{
    uint64_t now = machine_.now();
    if (p->attempts < policy_.maxAttempts &&
        breaker_.allowRequest(now)) {
        ++cstats_.retries;
        obs::metrics().counter("fleet.client.retries").inc();
        machine_.scheduleAfter(backoffCycles(p->attempts),
                               [this, p] {
                                   if (!p->resolved)
                                       startAttempt(p);
                               });
        return;
    }
    localFallback(p, p->attempts >= policy_.maxAttempts ?
                         "attempts exhausted" :
                         "breaker open");
}

uint64_t
RemoteBackend::backoffCycles(uint32_t attempt)
{
    uint32_t shift = std::min<uint32_t>(attempt > 0 ? attempt - 1 : 0,
                                        20);
    uint64_t base =
        std::min(policy_.backoffCapCycles,
                 policy_.backoffBaseCycles << shift);
    double mult = 1.0 - policy_.jitterFrac +
        2.0 * policy_.jitterFrac * jitterRng_.nextDouble();
    uint64_t cycles =
        static_cast<uint64_t>(static_cast<double>(base) * mult);
    return std::max<uint64_t>(1, cycles);
}

void
RemoteBackend::resolveSuccess(const PendingPtr &p,
                              const runtime::CompileOutcome &out)
{
    p->resolved = true;
    pending_.erase(p->id);
    breaker_.onSuccess(machine_.now());
    recordResolve(p->sendCycle, out.readyCycle);

    machine_.core(installCore_).stealCycles(installCycles_);
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "fleet.client",
            out.remoteHit ? "install cached variant" :
                            "install compiled variant",
            strformat("\"server\":%u,\"trace\":%llu", serverId_,
                      static_cast<unsigned long long>(out.traceId)));
        // The whole-request span: compile() call to variant-ready,
        // however many ladder rungs it took.
        obs::tracer().complete(
            "fleet.client", "flip", p->sendCycle, out.readyCycle,
            strformat("\"server\":%u,\"trace\":%llu,"
                      "\"attempts\":%u,\"outcome\":\"%s\"",
                      serverId_,
                      static_cast<unsigned long long>(out.traceId),
                      p->attempts,
                      out.remoteHit ? "hit" : "miss"));
    }
    runtime::CompileOutcome charged = out;
    charged.chargedCycles = installCycles_;
    p->done(charged);
}

void
RemoteBackend::localFallback(const PendingPtr &p, const char *reason)
{
    p->resolved = true;
    pending_.erase(p->id);
    ++cstats_.localFallbacks;
    obs::metrics().counter("fleet.client.local_fallbacks").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "fleet.client", "local fallback",
            strformat("\"server\":%u,\"reason\":\"%s\","
                      "\"trace\":%llu",
                      serverId_, reason,
                      static_cast<unsigned long long>(
                          p->job.traceId)));
    }
    // The bottom of the ladder: compile on this server, stealing
    // host cycles like the single-server model. Always resolves.
    local_.compile(p->job,
                   [this, p](const runtime::CompileOutcome &out) {
                       recordResolve(p->sendCycle, out.readyCycle);
                       if (obs::tracer().enabled()) {
                           obs::tracer().complete(
                               "fleet.client", "flip", p->sendCycle,
                               out.readyCycle,
                               strformat(
                                   "\"server\":%u,\"trace\":%llu,"
                                   "\"attempts\":%u,"
                                   "\"outcome\":\"local\"",
                                   serverId_,
                                   static_cast<unsigned long long>(
                                       out.traceId),
                                   p->attempts));
                       }
                       p->done(out);
                   });
}

} // namespace fleet
} // namespace protean
