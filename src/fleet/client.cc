#include "fleet/client.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace fleet {

RemoteBackend::RemoteBackend(CompileService &svc,
                             sim::Machine &machine,
                             uint32_t server_id, uint32_t install_core,
                             uint64_t install_cycles)
    : svc_(svc), machine_(machine), serverId_(server_id),
      installCore_(install_core), installCycles_(install_cycles)
{
}

void
RemoteBackend::compile(const runtime::CompileJob &job,
                       std::function<
                           void(const runtime::CompileOutcome &)> done)
{
    ++requests_;
    obs::metrics().counter("fleet.client.requests").inc();
    uint64_t arrival =
        machine_.now() + svc_.config().net.requestLatencyCycles;
    svc_.submit(
        serverId_, job, arrival,
        [this, done = std::move(done)](
            const runtime::CompileOutcome &out) {
            // Fires from CompileService::advance() at a cluster time
            // barrier; the caller schedules dispatch no earlier than
            // out.readyCycle on this machine's event queue.
            machine_.core(installCore_).stealCycles(installCycles_);
            obs::tracer().instant(
                "fleet.client",
                out.remoteHit ? "install cached variant" :
                                "install compiled variant",
                strformat("\"server\":%u", serverId_));
            runtime::CompileOutcome charged = out;
            charged.chargedCycles = installCycles_;
            done(charged);
        });
}

} // namespace fleet
} // namespace protean
