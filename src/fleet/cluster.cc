#include "fleet/cluster.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace fleet {

Cluster::Cluster(CompileService &svc) : svc_(svc)
{
    // A request submitted just after a barrier arrives at the
    // service requestLatency later and responds at least
    // responseLatency after its batch closes, so with the quantum
    // capped at the round trip every ready cycle is >= the barrier
    // that resolves it: responses always land in the future.
    const NetworkModel &net = svc.config().net;
    quantum_ = std::max<uint64_t>(
        1, net.requestLatencyCycles + net.responseLatencyCycles);
}

Cluster::~Cluster() = default;

void
Cluster::addMachine(sim::Machine &m)
{
    if (m.now() != now_)
        fatal("Cluster: machine joins at cycle %llu, cluster is at "
              "%llu",
              static_cast<unsigned long long>(m.now()),
              static_cast<unsigned long long>(now_));
    machines_.push_back(&m);
}

void
Cluster::setParallel(uint32_t workers)
{
    uint32_t requested = std::max<uint32_t>(workers, 1);
    uint32_t lanes =
        std::min(requested, WorkerPool::recommendedLanes());
    if (lanes < requested) {
        // Lanes beyond the host's hardware threads only spin against
        // each other (a 1-hw-thread container at --parallel=4 used
        // to run 5x slower than serial). The clamp count is host-
        // scoped: it describes this host, so it stays out of the
        // deterministic metric exports.
        obs::MetricsRegistry &reg = obs::metrics();
        reg.setHostScoped("fleet.pool.clamped");
        reg.counter("fleet.pool.clamped").inc();
        warn("Cluster: clamping %u workers to %u (host has %u "
             "hardware threads)",
             requested, lanes, WorkerPool::recommendedLanes());
    }
    if (workers_ != lanes)
        pool_.reset();
    workers_ = lanes;
}

void
Cluster::setFaultPlan(faults::FaultPlan *plan)
{
    plan_ = plan;
}

void
Cluster::applyServerPauses()
{
    if (!plan_ || !plan_->enabled())
        return;
    for (size_t i = 0; i < machines_.size(); ++i) {
        uint64_t pause = plan_->serverPauseCycles(
            static_cast<uint32_t>(i), now_);
        if (pause == 0)
            continue;
        ++pauses_;
        obs::metrics().counter("fleet.faults.server_pauses").inc();
        if (obs::tracer().enabled()) {
            obs::tracer().instant(
                "fleet.faults", "server pause",
                strformat("\"server\":%zu,\"cycles\":%llu", i,
                          static_cast<unsigned long long>(pause)));
        }
        // The whole server loses `pause` cycles of forward progress:
        // every core's clock advances without retiring work, exactly
        // like an antagonist or a hypervisor stall.
        sim::Machine &m = *machines_[i];
        for (uint32_t c = 0; c < m.numCores(); ++c)
            m.core(c).stealCycles(pause);
    }
}

void
Cluster::run(uint64_t until_cycle)
{
    if (until_cycle < now_)
        panic("Cluster: running into the past");
    while (now_ < until_cycle) {
        uint64_t t = std::min(until_cycle, now_ + quantum_);
        applyServerPauses();
        // Tracing forces serial stepping: the trace log records
        // events in append order, which only the serial schedule
        // reproduces. Metrics are commutative, so they do not.
        bool parallel = workers_ > 1 && machines_.size() > 1 &&
            !obs::tracer().enabled();
        if (parallel) {
            if (!pool_) {
                uint32_t n = std::min<uint32_t>(
                    workers_,
                    static_cast<uint32_t>(machines_.size()));
                pool_ = std::make_unique<WorkerPool>(n);
            }
            // Machines only meet the service this quantum; stage
            // their submissions and replay them in machine order at
            // the barrier so sequencing matches the serial schedule.
            svc_.setDeferSubmissions(true);
            pool_->parallelFor(machines_.size(), [this, t](size_t i) {
                machines_[i]->run(t);
            });
            svc_.setDeferSubmissions(false);
            svc_.flushDeferred();
        } else {
            // Fixed server order per quantum keeps the interleaving
            // of service submissions deterministic.
            for (sim::Machine *m : machines_)
                m->run(t);
        }
        svc_.advance(t);
        now_ = t;
        if (barrierHook_)
            barrierHook_(t);
    }
}

} // namespace fleet
} // namespace protean
