#include "fleet/cluster.h"

#include <algorithm>

#include "support/logging.h"

namespace protean {
namespace fleet {

Cluster::Cluster(CompileService &svc) : svc_(svc)
{
    // A request submitted just after a barrier arrives at the
    // service requestLatency later and responds at least
    // responseLatency after its batch closes, so with the quantum
    // capped at the round trip every ready cycle is >= the barrier
    // that resolves it: responses always land in the future.
    const NetworkModel &net = svc.config().net;
    quantum_ = std::max<uint64_t>(
        1, net.requestLatencyCycles + net.responseLatencyCycles);
}

void
Cluster::addMachine(sim::Machine &m)
{
    if (m.now() != now_)
        fatal("Cluster: machine joins at cycle %llu, cluster is at "
              "%llu",
              static_cast<unsigned long long>(m.now()),
              static_cast<unsigned long long>(now_));
    machines_.push_back(&m);
}

void
Cluster::run(uint64_t until_cycle)
{
    if (until_cycle < now_)
        panic("Cluster: running into the past");
    while (now_ < until_cycle) {
        uint64_t t = std::min(until_cycle, now_ + quantum_);
        // Fixed server order per quantum keeps the interleaving of
        // service submissions deterministic.
        for (sim::Machine *m : machines_)
            m->run(t);
        svc_.advance(t);
        now_ = t;
    }
}

} // namespace fleet
} // namespace protean
