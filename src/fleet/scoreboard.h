/**
 * @file
 * Fleet-wide variant scoreboard: which NT-mask wins where.
 *
 * Every server's flip ledger (runtime/profiler.h) records windowed
 * IPC before and after each accepted flip. The telemetry hub drains
 * those ledgers at cluster barriers and feeds them here; the
 * scoreboard accumulates per-(function content hash, variant
 * NT-mask, phase id) outcome statistics and answers the advisory
 * question a fleet-wide optimizer actually asks: "for this function
 * in this phase, which variant has the best track record across the
 * whole fleet?"
 *
 * Scores are mean IPC deltas over all recorded flips of a bucket —
 * plain sums, so merge order never matters and serial and parallel
 * fleet runs agree byte-for-byte. recommendMask breaks score ties
 * toward the lexicographically smaller mask key, keeping the advice
 * deterministic too.
 */

#ifndef PROTEAN_FLEET_SCOREBOARD_H
#define PROTEAN_FLEET_SCOREBOARD_H

#include <cstdint>
#include <map>
#include <string>

#include "obs/profile.h"
#include "runtime/profiler.h"

namespace protean {
namespace fleet {

/** Accumulated flip outcomes of one (hash, mask, phase) bucket. */
struct VariantOutcome
{
    /** Flip experiments recorded. */
    uint64_t flips = 0;
    /** Experiments whose after-IPC beat the before-IPC. */
    uint64_t wins = 0;
    /** Sum of (ipcAfter - ipcBefore) over all experiments. */
    double ipcDeltaSum = 0.0;

    /** Mean IPC delta; the scoreboard's ranking signal. */
    double score() const
    {
        return flips == 0 ?
            0.0 :
            ipcDeltaSum / static_cast<double>(flips);
    }
};

/** Fleet-merged outcome scores + advisory mask recommendation. */
class VariantScoreboard
{
  public:
    /** Fold one flip experiment in (any server, any order). */
    void recordFlip(const runtime::FlipRecord &record);

    bool empty() const { return outcomes_.empty(); }

    /** Total flip experiments recorded. */
    uint64_t totalFlips() const { return totalFlips_; }

    /** All buckets, ordered by (hash, mask, phase). */
    const std::map<obs::ProfileKey, VariantOutcome> &outcomes() const
    {
        return outcomes_;
    }

    /** Outcome of one bucket; nullptr when never recorded. */
    const VariantOutcome *outcome(uint64_t func_hash,
                                  const std::string &mask,
                                  uint32_t phase) const;

    /**
     * The mask with the best mean IPC delta for (func_hash, phase)
     * across the fleet; "" when no flip of that function in that
     * phase was ever recorded. Ties break toward the smaller mask
     * key.
     */
    std::string recommendMask(uint64_t func_hash,
                              uint32_t phase) const;

    /**
     * Stable JSON: {"outcomes": [{"hash","mask","phase","flips",
     * "wins","mean_ipc_delta"}...], "recommendations": [{"hash",
     * "phase","mask"}...], "total_flips"}. Byte-identical for
     * identical contents.
     */
    std::string toJson() const;

  private:
    std::map<obs::ProfileKey, VariantOutcome> outcomes_;
    uint64_t totalFlips_ = 0;
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_SCOREBOARD_H
