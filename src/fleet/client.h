/**
 * @file
 * Fleet cache client: the remote CompileBackend.
 *
 * Plugs into runtime::RuntimeCompiler in place of the local backend.
 * A variant request becomes a network message to the shared
 * CompileService; the server pays only a small install cost (EVT
 * patch, code-cache append bookkeeping) plus the modeled network
 * round trip — never the compile cycles, which land on the service
 * (and are amortized fleet-wide by its content-addressed cache).
 *
 * The client is also the fleet's last line of defense against service
 * faults (DESIGN.md §9). With a RetryPolicy attached it climbs a
 * degradation ladder, so host QoS never depends on service health:
 *
 *   1. per-attempt timeout — a dropped request or a crash-stranded
 *      compile fires the attempt's timeout on this machine's own
 *      event queue;
 *   2. capped exponential backoff with seeded jitter, each retry
 *      rotated to a different member of the key's replica set;
 *   3. optional hedging — a duplicate request to the secondary shard
 *      when the first attempt is slow, first success wins;
 *   4. a circuit breaker that stops hammering a sick service and
 *      sends requests straight to the local fallback, with half-open
 *      recovery probes;
 *   5. the LocalCompileBackend fallback — the single-server model —
 *      which always resolves, at the cost of stolen host cycles.
 *
 * Every rung is deterministic: timeouts/backoffs/hedges are machine
 * events, jitter comes from a per-server seeded Rng consumed in event
 * order, and responses fire at cluster barriers — so faulted runs are
 * byte-identical serial or parallel.
 */

#ifndef PROTEAN_FLEET_CLIENT_H
#define PROTEAN_FLEET_CLIENT_H

#include <memory>
#include <unordered_map>

#include "fleet/service.h"
#include "obs/hdr.h"
#include "sim/machine.h"
#include "support/random.h"

namespace protean {
namespace fleet {

/**
 * Client-side circuit breaker (Closed -> Open -> HalfOpen -> Closed).
 *
 * Closed: requests flow; `failureThreshold` consecutive failures trip
 * it Open. Open: requests short-circuit to the local fallback until
 * `openCycles` elapse, then the breaker goes HalfOpen. HalfOpen:
 * requests probe the service; one failure re-opens, `closeThreshold`
 * consecutive successes close. Pure state machine — no clocks of its
 * own, callers pass the current cycle — so it is trivially
 * deterministic and unit-testable.
 */
class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    struct Config
    {
        /** Consecutive failures that trip Closed -> Open. */
        uint32_t failureThreshold = 4;
        /** Cycles spent Open before probing (HalfOpen). */
        uint64_t openCycles = 50000;
        /** Consecutive HalfOpen successes that close the breaker. */
        uint32_t closeThreshold = 2;
    };

    CircuitBreaker() = default;
    explicit CircuitBreaker(const Config &cfg) : cfg_(cfg) {}

    /** May a request go to the service at `now`? Transitions
     *  Open -> HalfOpen when the open window has elapsed. */
    bool allowRequest(uint64_t now);

    /** Record a successful service interaction at `now`. */
    void onSuccess(uint64_t now);

    /** Record a failed service interaction (timeout, failure or
     *  corrupt response) at `now`. */
    void onFailure(uint64_t now);

    State state() const { return state_; }
    /** Times the breaker tripped to Open (incl. HalfOpen re-opens). */
    uint64_t opens() const { return opens_; }

  private:
    Config cfg_;
    State state_ = State::Closed;
    uint32_t consecutiveFailures_ = 0;
    uint32_t halfOpenSuccesses_ = 0;
    uint64_t openUntil_ = 0;
    uint64_t opens_ = 0;

    void trip(uint64_t now);
};

/** Client-side fault-tolerance knobs. Disabled by default, so plain
 *  RemoteBackend users keep the fire-and-wait-forever behavior. */
struct RetryPolicy
{
    /** Master switch for the whole degradation ladder. */
    bool enabled = false;
    /** Remote attempts per request before local fallback. */
    uint32_t maxAttempts = 3;
    /** Per-attempt timeout (request -> response), in cycles. Must
     *  comfortably exceed a worst-case queued compile so benign runs
     *  never retry spuriously. */
    uint64_t attemptTimeoutCycles = 400000;
    /** Backoff before retry k is base << (k-1), capped. */
    uint64_t backoffBaseCycles = 2000;
    uint64_t backoffCapCycles = 64000;
    /** Backoff jitter: multiplier drawn uniformly from
     *  [1-frac, 1+frac) out of the per-server seeded stream. */
    double jitterFrac = 0.5;
    /** Seed domain for the per-server jitter stream. */
    uint64_t jitterSeed = 0x7e77a;
    /** Hedge the first attempt with a duplicate to the next replica
     *  after this many cycles without a response (0 = no hedging). */
    uint64_t hedgeAfterCycles = 0;
    CircuitBreaker::Config breaker;
};

/** Client-side fault/degradation counters (per server). */
struct ClientStats
{
    /** compile() calls routed to the service. */
    uint64_t remoteRequests = 0;
    /** Attempt timeouts fired. */
    uint64_t timeouts = 0;
    /** Retry attempts issued (after backoff). */
    uint64_t retries = 0;
    /** Hedged duplicates issued. */
    uint64_t hedges = 0;
    /** Explicit failure responses received. */
    uint64_t failedResponses = 0;
    /** Responses rejected by the payload checksum. */
    uint64_t corruptResponses = 0;
    /** Requests resolved by the local fallback compiler. */
    uint64_t localFallbacks = 0;
    /** Requests short-circuited by an open breaker. */
    uint64_t breakerShortCircuits = 0;
    /** Worst request -> variant-ready latency seen, in cycles (the
     *  fleet's worst-case flip latency). */
    uint64_t maxResolveCycles = 0;
};

/** Per-server client for the fleet compilation service. */
class RemoteBackend : public runtime::CompileBackend
{
  public:
    /**
     * @param svc The shared service (must outlive the backend).
     * @param machine This server's machine (send times, installs).
     * @param server_id Fleet-wide server index (stats, traces).
     * @param install_core Core charged with variant installation.
     * @param install_cycles Modeled cost of installing a received
     *        variant (EVT patch + bookkeeping).
     */
    RemoteBackend(CompileService &svc, sim::Machine &machine,
                  uint32_t server_id, uint32_t install_core = 0,
                  uint64_t install_cycles = 100);

    /** Arm the degradation ladder. Call before any compile(). */
    void setRetryPolicy(const RetryPolicy &policy);

    void compile(const runtime::CompileJob &job,
                 std::function<void(const runtime::CompileOutcome &)>
                     done) override;

    const char *backendName() const override { return "fleet"; }

    uint32_t serverId() const { return serverId_; }
    uint64_t requestCount() const { return requests_; }

    const ClientStats &clientStats() const { return cstats_; }
    const CircuitBreaker &breaker() const { return breaker_; }

    /**
     * Merge this server's flip-latency histogram for the current
     * rollup window into `into`, then reset it. Called by the
     * telemetry hub at cluster barriers (coordinator thread);
     * resolve latencies are recorded by this machine's own callbacks
     * during quanta, so the two never race.
     */
    void drainFlipWindow(obs::HdrHistogram &into);

    /** Requests neither resolved nor handed to the local fallback —
     *  a host workload stall if nonzero once the sim has drained. */
    size_t pendingCount() const { return pending_.size(); }

    /** Pending requests older than `age_bound` cycles at `now`:
     *  requests the degradation ladder should have resolved by now.
     *  Recently-sent requests still inside their ladder budget are
     *  excluded, so this is a true stall count even mid-run. */
    size_t stalledCount(uint64_t now, uint64_t age_bound) const;

  private:
    /** One logical request climbing the ladder. Kept behind a
     *  shared_ptr: timeout/hedge/response closures may outlive its
     *  slot in pending_ (stale events check `resolved`/`closed`). */
    struct PendingReq
    {
        uint64_t id = 0;
        runtime::CompileJob job;
        std::function<void(const runtime::CompileOutcome &)> done;
        /** Cycle compile() was called (resolve-latency baseline). */
        uint64_t sendCycle = 0;
        /** Attempts started so far (also the next route offset). */
        uint32_t attempts = 0;
        /** Attempts in flight (started, not closed/resolved). */
        uint32_t outstanding = 0;
        bool resolved = false;
        bool hedged = false;
        /** Per-attempt closed flags (timeout vs late failure). */
        std::vector<char> closed;
    };
    using PendingPtr = std::shared_ptr<PendingReq>;

    CompileService &svc_;
    sim::Machine &machine_;
    uint32_t serverId_;
    uint32_t installCore_;
    uint64_t installCycles_;
    uint64_t requests_ = 0;

    RetryPolicy policy_;
    CircuitBreaker breaker_;
    Rng jitterRng_;
    runtime::LocalCompileBackend local_;
    ClientStats cstats_;
    /** Request -> variant-ready latencies since the last window
     *  drain (fleet p99 flip latency source). */
    obs::HdrHistogram flipWindow_;
    uint64_t nextId_ = 0;
    std::unordered_map<uint64_t, PendingPtr> pending_;

    /** Record a resolved request's flip latency (stats + window). */
    void recordResolve(uint64_t send_cycle, uint64_t ready_cycle);
    /** Distributed trace id for the next request (unique fleet-wide:
     *  server id in the high bits, request counter in the low). */
    uint64_t nextTraceId() const
    {
        return (static_cast<uint64_t>(serverId_) + 1) << 32 |
            requests_;
    }

    void startAttempt(const PendingPtr &p);
    void closeAttempt(const PendingPtr &p, uint32_t attempt,
                      const char *reason);
    void escalate(const PendingPtr &p);
    void resolveSuccess(const PendingPtr &p,
                        const runtime::CompileOutcome &out);
    void localFallback(const PendingPtr &p, const char *reason);
    uint64_t backoffCycles(uint32_t attempt);
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_CLIENT_H
