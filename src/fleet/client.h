/**
 * @file
 * Fleet cache client: the remote CompileBackend.
 *
 * Plugs into runtime::RuntimeCompiler in place of the local backend.
 * A variant request becomes a network message to the shared
 * CompileService; the server pays only a small install cost (EVT
 * patch, code-cache append bookkeeping) plus the modeled network
 * round trip — never the compile cycles, which land on the service
 * (and are amortized fleet-wide by its content-addressed cache).
 */

#ifndef PROTEAN_FLEET_CLIENT_H
#define PROTEAN_FLEET_CLIENT_H

#include "fleet/service.h"
#include "sim/machine.h"

namespace protean {
namespace fleet {

/** Per-server client for the fleet compilation service. */
class RemoteBackend : public runtime::CompileBackend
{
  public:
    /**
     * @param svc The shared service (must outlive the backend).
     * @param machine This server's machine (send times, installs).
     * @param server_id Fleet-wide server index (stats, traces).
     * @param install_core Core charged with variant installation.
     * @param install_cycles Modeled cost of installing a received
     *        variant (EVT patch + bookkeeping).
     */
    RemoteBackend(CompileService &svc, sim::Machine &machine,
                  uint32_t server_id, uint32_t install_core = 0,
                  uint64_t install_cycles = 100);

    void compile(const runtime::CompileJob &job,
                 std::function<void(const runtime::CompileOutcome &)>
                     done) override;

    const char *backendName() const override { return "fleet"; }

    uint32_t serverId() const { return serverId_; }
    uint64_t requestCount() const { return requests_; }

  private:
    CompileService &svc_;
    sim::Machine &machine_;
    uint32_t serverId_;
    uint32_t installCore_;
    uint64_t installCycles_;
    uint64_t requests_ = 0;
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_CLIENT_H
