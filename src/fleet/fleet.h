/**
 * @file
 * The simulated fleet: N servers, one binary, one compile service.
 *
 * Every server is a full sim::Machine running the same protean
 * binary with a ProteanRuntime attached. Variant requests arrive at
 * each server as an independent exponential process (its own
 * monitoring stack deciding to retune), drawn from a shared catalog
 * of (function, NT mask) directives — the same binary produces the
 * same catalog on every server, which is exactly the WSC redundancy
 * the compilation service amortizes (paper Section V-E).
 *
 * With cfg.remoteBackend=false every server compiles locally (the
 * single-server baseline); with true, all requests route through the
 * shared content-addressed CompileService, and the fleet-wide compile
 * cycle total collapses by roughly the server count.
 */

#ifndef PROTEAN_FLEET_FLEET_H
#define PROTEAN_FLEET_FLEET_H

#include <memory>
#include <string>
#include <vector>

#include "fleet/client.h"
#include "fleet/cluster.h"
#include "fleet/service.h"
#include "fleet/telemetry.h"
#include "ir/module.h"
#include "isa/image.h"
#include "runtime/runtime.h"
#include "sim/machine.h"
#include "support/random.h"
#include "validate/validator.h"

namespace protean {
namespace fleet {

/** Fleet simulation parameters. */
struct FleetConfig
{
    uint32_t numServers = 8;
    /** Batch application every server runs (same binary fleet-wide). */
    std::string batch = "soplex";
    ServiceConfig service;
    /** false = local compile backend on every server (baseline). */
    bool remoteBackend = true;
    /** Mean per-server variant-request interarrival, simulated ms. */
    double meanRequestMs = 4.0;
    /** Catalog depth: NT masks generated per virtualized function. */
    uint32_t masksPerFunction = 4;
    uint64_t seed = 42;
    /** Server-side cost of installing a received variant. */
    uint64_t installCycles = 100;
    /** Worker threads stepping machines per quantum (host-side
     *  parallelism only; 0/1 = serial). Results are byte-identical
     *  across settings — see Cluster::setParallel. */
    uint32_t parallelWorkers = 1;
    /** Core charged with runtime/compile/install work. Defaults to
     *  the host's own core, the WSC configuration: no server
     *  dedicates a core to compilation, so local compiles steal host
     *  cycles and the service's value shows up as host progress. */
    uint32_t runtimeCore = 0;
    /** Fault injection (all-zero = benign; see faults::FaultConfig).
     *  When any rate is non-zero the sim builds a FaultPlan and
     *  attaches it to the service and the cluster. */
    faults::FaultConfig faults;
    /** Client-side degradation ladder (retry.enabled=false keeps the
     *  pre-fault fire-and-wait client). */
    RetryPolicy retry;
    /** On-stack replacement: dispatched flips also redirect loop
     *  back-edges, so executing loops flip at their next back-edge
     *  instead of waiting for function re-entry (DESIGN.md §14). */
    bool osr = false;
    /** Restrict the directive catalog to the generated hot kernels
     *  ("hot_*"). The hot-loop scenario sets this: `main` sits
     *  suspended on the call stack for the whole run (its hot call
     *  never returns), so a directive against it can never take
     *  effect in either flip mode and would only pollute the
     *  pending-flip census. */
    bool hotFuncsOnly = false;
    /** Telemetry plane (enabled=false: no hub, no scrape cost). */
    TelemetryConfig telemetry;
    /** Translation-validation install gate (DESIGN.md §12). The
     *  default Ir mode keeps the cheap structural tier always on;
     *  mode=Off builds no validator (the pre-§12 service). */
    validate::ValidateConfig validate;
    sim::MachineConfig machine;
};

/** Aggregated fleet results. */
struct FleetStats
{
    /** Variant deploy requests issued across all servers. */
    uint64_t deployRequests = 0;
    /** Variants materialized into server code caches. */
    uint64_t serverCompiles = 0;
    /** Compile cycles charged to servers (stolen from hosts). */
    uint64_t serverCompileCycles = 0;
    /** Requests the service satisfied without a fresh compile. */
    uint64_t remoteHits = 0;
    /** Host progress: retired branches summed over all servers. */
    uint64_t hostBranches = 0;
    /** Requests pending on some client for longer than the ladder's
     *  worst-case budget: unresolved by retry, replica, or local
     *  fallback. Any nonzero value is a host workload stall — the
     *  thing the degradation ladder forbids. (Recently-sent requests
     *  still inside their budget don't count.) */
    uint64_t stalledRequests = 0;
    /** Whole-server pauses the cluster injected. */
    uint64_t serverPauses = 0;
    // ----- flip-*effect* latency census (summed over servers) -----
    /** Flips that took effect at function re-entry. */
    uint64_t entryFlips = 0;
    /** Flips that took effect mid-loop via OSR. */
    uint64_t osrFlips = 0;
    /** Dispatched flips not yet executing (censored). */
    uint64_t pendingFlips = 0;
    /** Worst request→effect latencies, in cycles. */
    uint64_t worstEntryFlip = 0;
    uint64_t worstOsrFlip = 0;
    uint64_t worstPendingFlip = 0;
    /** OSR redirect passes / back-edge branches patched. */
    uint64_t osrRedirects = 0;
    uint64_t osrPatches = 0;
    ServiceStats service;
    /** Degradation-ladder activity summed over all clients. */
    ClientStats client;

    /** Worst-case flip-effect latency anywhere in the fleet, fired
     *  or still pending — the tail OSR is built to collapse. */
    uint64_t worstFlipEffect() const
    {
        uint64_t w = worstEntryFlip > worstOsrFlip ? worstEntryFlip :
            worstOsrFlip;
        return w > worstPendingFlip ? w : worstPendingFlip;
    }

    /** Fleet-wide compile cycles: servers + service. */
    uint64_t totalCompileCycles() const
    {
        return serverCompileCycles + service.compileCycles;
    }

    /** Variants materialized per fresh compile anywhere: the
     *  amortization the service buys (1.0 for the local baseline). */
    double dedupFactor() const
    {
        uint64_t compiles = service.compiles > 0 ? service.compiles :
            serverCompiles;
        if (compiles == 0)
            return 1.0;
        return static_cast<double>(serverCompiles) /
            static_cast<double>(compiles);
    }
};

/** N servers + shared compile service, run in lockstep. */
class FleetSim
{
  public:
    explicit FleetSim(const FleetConfig &cfg);
    ~FleetSim();

    FleetSim(const FleetSim &) = delete;
    FleetSim &operator=(const FleetSim &) = delete;

    /** Advance the whole fleet by a simulated duration. */
    void run(double ms);

    FleetStats stats() const;

    CompileService &service() { return svc_; }
    Cluster &cluster() { return cluster_; }
    size_t catalogSize() const { return catalog_.size(); }

    /** The attached fault plan (nullptr when cfg.faults is benign). */
    faults::FaultPlan *faultPlan() { return plan_.get(); }

    /** The install gate (nullptr when cfg.validate.mode is Off). */
    const validate::Validator *validator() const
    {
        return validator_.get();
    }

    /** The telemetry hub (nullptr when cfg.telemetry.enabled is
     *  false). Non-const so callers can addSlo() before run() and
     *  flush()/export after. */
    TelemetryHub *telemetry() { return hub_.get(); }
    const TelemetryHub *telemetry() const { return hub_.get(); }

    /** Close the hub's current partial window at the present cluster
     *  cycle (no-op without telemetry). Call once after the last
     *  run() so the tail of the run is rolled up too. */
    void flushTelemetry();

    /** Requests pending longer than the degradation ladder's
     *  worst-case budget (see FleetStats::stalledRequests). */
    uint64_t stalledRequests() const;

    /** Worst-case cycles the ladder may take to resolve a request
     *  (timeouts + capped backoffs + the local-fallback compile). */
    uint64_t ladderBoundCycles() const;

    /** Publish fleet gauges + per-shard service gauges. */
    void exportObsMetrics() const;

  private:
    struct Server
    {
        std::unique_ptr<sim::Machine> machine;
        std::unique_ptr<RemoteBackend> backend;
        std::unique_ptr<runtime::ProteanRuntime> rt;
        Rng rng;
        /** Deploy requests issued by this server (kept per-server so
         *  parallel quanta never contend on a shared counter). */
        uint64_t deploys = 0;
    };

    /** One catalog entry: a deployable transformation directive. */
    struct Directive
    {
        ir::FuncId func = ir::kInvalidId;
        BitVector mask;
    };

    FleetConfig cfg_;
    ir::Module module_;
    isa::Image image_;
    /** Owned fault schedule; must outlive svc_/cluster_ wiring. */
    std::unique_ptr<faults::FaultPlan> plan_;
    CompileService svc_;
    Cluster cluster_;
    /** Virtualization map the whole fleet lowers under (also what
     *  the validator re-derives candidates with). */
    codegen::VirtualizationMap slots_;
    /** Owned install gate; must outlive svc_. */
    std::unique_ptr<validate::Validator> validator_;
    std::unique_ptr<TelemetryHub> hub_;
    std::vector<Directive> catalog_;
    std::vector<std::unique_ptr<Server>> servers_;

    void buildCatalog();
    void scheduleNextRequest(Server &s);
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_FLEET_H
