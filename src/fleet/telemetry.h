/**
 * @file
 * Fleet telemetry plane: windowed rollups shipped to a hub.
 *
 * The TelemetryHub is the fleet's aggregation point. At cluster
 * barriers it closes fixed-width rollup windows: it snapshots the
 * service's and every client's cumulative counters, takes the delta
 * against the previous window, drains each server's flip-latency
 * HDR histogram (obs/hdr.h) and merges them into one fleet-wide
 * distribution — so per-window fleet p50/p95/p99/p999 flip latency
 * falls out without shipping raw samples anywhere.
 *
 * Scraping is not free, and the model says so: each server pays a
 * CPU cost (cycles stolen from its runtime core, like any other
 * agent) to serialize its delta, and the delta payload rides the
 * existing NetworkModel (latency + bytes/cycle), so the telemetry
 * plane's own overhead is cycle-accounted and visible in the same
 * exports it produces.
 *
 * Every closed window is fed to an embedded obs::SloMonitor, so
 * declarative SLOs (`flip_p99 < N`, `crashes == 0`, ...) raise
 * multi-window burn-rate alerts while the simulation runs.
 *
 * Determinism: the hub only runs on the coordinator thread at
 * barriers, reading state that machines last touched inside their
 * own quanta; serial and parallel fleet runs therefore produce
 * byte-identical telemetry JSON.
 */

#ifndef PROTEAN_FLEET_TELEMETRY_H
#define PROTEAN_FLEET_TELEMETRY_H

#include <map>
#include <string>
#include <vector>

#include "fleet/client.h"
#include "fleet/scoreboard.h"
#include "fleet/service.h"
#include "obs/hdr.h"
#include "obs/profile.h"
#include "obs/slo.h"
#include "runtime/profiler.h"

namespace protean {

namespace runtime {
class ProteanRuntime;
}

namespace fleet {

class Cluster;

/** Telemetry plane sizing and scrape cost model. */
struct TelemetryConfig
{
    /** Master switch; off = the hub is never built and the hot path
     *  pays nothing. */
    bool enabled = false;
    /** Rollup window width, in cycles (10 simulated ms at the
     *  default 5000 cycles/ms). Windows close at the first cluster
     *  barrier at or past each boundary. */
    uint64_t windowCycles = 50000;
    /** Fixed per-server delta payload (headers + counters), bytes. */
    uint64_t scrapeBaseBytes = 256;
    /** Additional payload per non-empty histogram bucket shipped. */
    uint64_t scrapeBucketBytes = 24;
    /** CPU cycles each server spends serializing its delta, stolen
     *  from its runtime core at the window close. */
    uint64_t scrapeCpuCycles = 150;
    /** Core charged with scrape serialization. */
    uint32_t scrapeCore = 0;
    /** Scrape continuous profiles and flip ledgers too (requires
     *  per-server VariantProfilers; FleetSim enables them when this
     *  is set). */
    bool profiling = false;
    /** Additional payload per profile bucket shipped. */
    uint64_t scrapeProfileEntryBytes = 48;
    /** Additional payload per flip-ledger record shipped. */
    uint64_t scrapeFlipBytes = 32;
};

/** One closed rollup window of fleet-wide deltas. */
struct FleetWindow
{
    uint64_t index = 0;
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;

    // ----- service deltas -----
    uint64_t requests = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t coalesced = 0;
    uint64_t dropped = 0;
    uint64_t delayed = 0;
    uint64_t failed = 0;
    uint64_t crashes = 0;
    uint64_t replicaRoutes = 0;
    uint64_t corruptRejects = 0;
    uint64_t corruptResponses = 0;
    // ----- install-gate deltas (DESIGN.md §12) -----
    uint64_t validatePasses = 0;
    uint64_t validateFails = 0;
    uint64_t validateEscalations = 0;
    uint64_t validateCycles = 0;

    // ----- client deltas (summed over servers) -----
    uint64_t timeouts = 0;
    uint64_t retries = 0;
    uint64_t hedges = 0;
    uint64_t localFallbacks = 0;
    uint64_t breakerShortCircuits = 0;
    uint64_t breakerOpens = 0;

    // ----- state sampled at the window close -----
    /** Breakers currently not Closed. */
    uint64_t breakersOpen = 0;
    /** Requests stalled past the ladder bound. */
    uint64_t stranded = 0;
    /** Whole-server pauses injected this window. */
    uint64_t serverPauses = 0;
    /** Per-shard health/occupancy at the close. */
    std::vector<uint8_t> shardUp;
    std::vector<uint64_t> shardOccupancy;

    /** Window hit rate (hits + coalesced over classified). */
    double hitRate = 0.0;

    /** Fleet-merged flip latencies recorded this window. */
    obs::HdrHistogram flip;

    /** Fleet-merged flip-*effect* latencies (request → new code
     *  executing) recorded this window, split by how the flip took
     *  effect: at function re-entry vs mid-loop via OSR
     *  (DESIGN.md §14). Empty when servers were registered without
     *  their runtimes. */
    obs::HdrHistogram flipEffectEntry;
    obs::HdrHistogram flipEffectOsr;

    // ----- continuous-profiling deltas (0 when profiling off) -----
    /** PC samples scraped from server profilers this window. */
    uint64_t profileSamples = 0;
    /** Flip-experiment records scraped this window. */
    uint64_t flipRecords = 0;

    // ----- the scrape's own cost -----
    uint64_t scrapeBytes = 0;
    uint64_t scrapeNetworkCycles = 0;
    uint64_t scrapeCpuCycles = 0;

    /** Flat field map for SLO evaluation (stable key set). */
    std::map<std::string, double> fields() const;
};

/**
 * Aggregation point for per-server metric deltas. Built by FleetSim
 * when telemetry is enabled and driven from the cluster's barrier
 * hook.
 */
class TelemetryHub
{
  public:
    TelemetryHub(const TelemetryConfig &cfg, CompileService &svc,
                 Cluster &cluster);

    /** Register a server in id order. `backend` may be null (local
     *  compile config: only service-side series then); `profiler`
     *  may be null (no continuous profiling on that server); `rt`
     *  may be null (no flip-effect series for that server). */
    void addServer(RemoteBackend *backend, sim::Machine *machine,
                   runtime::VariantProfiler *profiler = nullptr,
                   runtime::ProteanRuntime *rt = nullptr);

    /** Age bound for the stranded-request count (the degradation
     *  ladder's worst-case budget). */
    void setStallBound(uint64_t cycles) { stallBound_ = cycles; }

    /** Declare an SLO evaluated on every closed window. */
    void addSlo(const obs::SloSpec &spec) { slo_.addSpec(spec); }

    const obs::SloMonitor &slo() const { return slo_; }

    /** Barrier callback: closes every window boundary crossed by
     *  `cycle` (coordinator thread only). */
    void onBarrier(uint64_t cycle);

    /** Close the current partial window, if it saw any cycles. Call
     *  once after the run; further barriers start a fresh window. */
    void flush(uint64_t cycle);

    const std::vector<FleetWindow> &windows() const
    {
        return windows_;
    }

    /** All windows' flip latencies merged (whole-run fleet tail). */
    obs::HdrHistogram fleetFlip() const;

    /** All windows' flip-effect latencies merged, by kind. */
    obs::HdrHistogram fleetFlipEffectEntry() const;
    obs::HdrHistogram fleetFlipEffectOsr() const;

    /** Fleet-merged continuous profile (all servers, all windows).
     *  Empty when profiling is off. */
    const obs::Profile &fleetProfile() const { return profile_; }

    /** Fleet-merged variant scoreboard (flip outcomes by function,
     *  mask and phase). Empty when profiling is off. */
    const VariantScoreboard &scoreboard() const
    {
        return scoreboard_;
    }

    /** Total scrape cost paid so far. */
    uint64_t scrapeBytesTotal() const { return scrapeBytes_; }
    uint64_t scrapeNetworkCyclesTotal() const
    {
        return scrapeNetCycles_;
    }
    uint64_t scrapeCpuCyclesTotal() const { return scrapeCpu_; }

    /** Whole plane as one JSON object (config, windows, scrape
     *  totals, SLO state), byte-stable across identical runs. */
    std::string toJson() const;

    /** Write toJson(); fatal on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Publish summary gauges (window count, fleet flip quantiles,
     *  scrape totals) into the global metrics registry. */
    void exportObsMetrics() const;

  private:
    struct ServerSlot
    {
        RemoteBackend *backend = nullptr;
        sim::Machine *machine = nullptr;
        runtime::VariantProfiler *profiler = nullptr;
        runtime::ProteanRuntime *rt = nullptr;
        ClientStats prev;
        uint64_t prevOpens = 0;
    };

    void closeWindow(uint64_t cycle);

    TelemetryConfig cfg_;
    CompileService &svc_;
    Cluster &cluster_;
    std::vector<ServerSlot> servers_;
    std::vector<FleetWindow> windows_;
    obs::Profile profile_;
    VariantScoreboard scoreboard_;
    obs::SloMonitor slo_;
    ServiceStats prevService_;
    uint64_t prevPauses_ = 0;
    uint64_t windowStart_ = 0;
    uint64_t stallBound_ = UINT64_MAX;
    uint64_t scrapeBytes_ = 0;
    uint64_t scrapeNetCycles_ = 0;
    uint64_t scrapeCpu_ = 0;
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_TELEMETRY_H
