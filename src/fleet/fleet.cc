#include "fleet/fleet.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "pcc/pcc.h"
#include "support/logging.h"
#include "workloads/registry.h"

namespace protean {
namespace fleet {

namespace {

ir::Module
buildFleetModule(const FleetConfig &cfg)
{
    workloads::BatchSpec spec = workloads::batchSpec(cfg.batch);
    return workloads::buildBatch(spec);
}

} // namespace

FleetSim::FleetSim(const FleetConfig &cfg)
    : cfg_(cfg), module_(buildFleetModule(cfg)),
      image_(pcc::compile(module_)), svc_(cfg.service), cluster_(svc_)
{
    if (cfg_.numServers == 0)
        fatal("FleetSim: numServers must be > 0");
    if (cfg_.runtimeCore >= cfg_.machine.numCores)
        fatal("FleetSim: runtimeCore %u out of range (%u cores)",
              cfg_.runtimeCore, cfg_.machine.numCores);
    if (cfg_.faults.anyEnabled()) {
        plan_ = std::make_unique<faults::FaultPlan>(cfg_.faults);
        svc_.setFaultPlan(plan_.get());
        cluster_.setFaultPlan(plan_.get());
    }
    buildCatalog();
    if (cfg_.validate.mode != validate::Mode::Off &&
        cfg_.remoteBackend) {
        // The install gate. It re-derives candidates under the same
        // module/image/slots every server lowers with, so the
        // structural tier's reference is exactly what a correct
        // backend must produce.
        validator_ = std::make_unique<validate::Validator>(
            module_, image_, slots_, cfg_.validate);
        svc_.setValidator(validator_.get());
    }

    // One seed stream forked per server, in server order, so every
    // server's arrival process is independent yet the whole fleet is
    // reproducible from cfg.seed.
    Rng seeder(cfg_.seed);
    servers_.reserve(cfg_.numServers);
    for (uint32_t i = 0; i < cfg_.numServers; ++i) {
        auto s = std::make_unique<Server>();
        s->rng = seeder.fork();
        s->machine = std::make_unique<sim::Machine>(cfg_.machine);
        sim::Process &proc = s->machine->load(image_, 0);
        runtime::RuntimeOptions opts;
        opts.runtimeCore = cfg_.runtimeCore;
        opts.osr = cfg_.osr;
        if (cfg_.remoteBackend) {
            s->backend = std::make_unique<RemoteBackend>(
                svc_, *s->machine, i, cfg_.runtimeCore,
                cfg_.installCycles);
            if (cfg_.retry.enabled)
                s->backend->setRetryPolicy(cfg_.retry);
            opts.compileBackend = s->backend.get();
        }
        s->rt = std::make_unique<runtime::ProteanRuntime>(
            *s->machine, proc, opts);
        cluster_.addMachine(*s->machine);
        servers_.push_back(std::move(s));
    }
    for (auto &s : servers_)
        scheduleNextRequest(*s);
    cluster_.setParallel(cfg_.parallelWorkers);

    if (cfg_.telemetry.enabled) {
        if (cfg_.telemetry.scrapeCore >= cfg_.machine.numCores)
            fatal("FleetSim: telemetry scrapeCore %u out of range "
                  "(%u cores)",
                  cfg_.telemetry.scrapeCore, cfg_.machine.numCores);
        hub_ = std::make_unique<TelemetryHub>(cfg_.telemetry, svc_,
                                              cluster_);
        // Server registration order matches server ids, so per-window
        // scrape order is the serial stepping order.
        for (auto &s : servers_) {
            if (cfg_.telemetry.profiling) {
                // Continuous profiling rides the monitoring tick, so
                // profiled fleets run the tick loop; its modeled cost
                // (sampling + analysis cycles) is charged like any
                // other runtime work.
                s->rt->enableProfiling();
                s->rt->start();
            }
            hub_->addServer(s->backend.get(), s->machine.get(),
                            s->rt->profiler(), s->rt.get());
        }
        hub_->setStallBound(ladderBoundCycles());
        cluster_.setBarrierHook(
            [this](uint64_t cycle) { hub_->onBarrier(cycle); });
    }
}

FleetSim::~FleetSim() = default;

void
FleetSim::buildCatalog()
{
    // The catalog is derived from the binary alone, so every server
    // (running the same binary) would derive the same one — which is
    // why requests collide fleet-wide and the service's content
    // addressing pays off.
    slots_ = pcc::chooseVirtualizedCallees(
        module_, pcc::EdgePolicy::MultiBlockCallees);
    const codegen::VirtualizationMap &slots = slots_;
    std::vector<ir::FuncId> funcs;
    funcs.reserve(slots.size());
    for (const auto &[f, slot] : slots) {
        (void)slot;
        funcs.push_back(f);
    }
    std::sort(funcs.begin(), funcs.end());

    for (ir::FuncId f : funcs) {
        if (cfg_.hotFuncsOnly &&
            module_.function(f).name().rfind("hot_", 0) != 0)
            continue;
        std::vector<ir::LoadId> loads;
        for (const auto &bb : module_.function(f).blocks()) {
            for (const auto &inst : bb.insts) {
                if (inst.op == ir::Opcode::Load &&
                    inst.loadId != ir::kInvalidId)
                    loads.push_back(inst.loadId);
            }
        }
        if (loads.empty()) {
            Directive d;
            d.func = f;
            d.mask = BitVector(module_.numLoads());
            catalog_.push_back(std::move(d));
            continue;
        }
        // Nested prefix masks of increasing NT aggressiveness — the
        // shapes PC3D's peeling search actually deploys.
        std::set<size_t> depths;
        for (uint32_t k = 1; k <= cfg_.masksPerFunction; ++k) {
            size_t n = (loads.size() * k + cfg_.masksPerFunction - 1) /
                cfg_.masksPerFunction;
            depths.insert(std::max<size_t>(1, n));
        }
        for (size_t n : depths) {
            Directive d;
            d.func = f;
            d.mask = BitVector(module_.numLoads());
            for (size_t i = 0; i < n; ++i)
                d.mask.set(loads[i]);
            catalog_.push_back(std::move(d));
        }
    }
    if (catalog_.empty())
        fatal("FleetSim: batch '%s' has no virtualized functions",
              cfg_.batch.c_str());
}

void
FleetSim::scheduleNextRequest(Server &s)
{
    double wait_ms = s.rng.nextExponential(cfg_.meanRequestMs);
    uint64_t delay =
        std::max<uint64_t>(1, s.machine->msToCycles(wait_ms));
    s.machine->scheduleAfter(delay, [this, &s] {
        const Directive &d = catalog_[s.rng.nextBelow(catalog_.size())];
        ++s.deploys;
        s.rt->deployVariant(d.func, d.mask);
        scheduleNextRequest(s);
    });
}

void
FleetSim::run(double ms)
{
    cluster_.runFor(cfg_.machine.msToCycles(ms));
}

void
FleetSim::flushTelemetry()
{
    if (hub_)
        hub_->flush(cluster_.now());
}

uint64_t
FleetSim::ladderBoundCycles() const
{
    // Each attempt can burn a full timeout plus a (jittered, capped)
    // backoff; the final rung is the local fallback, which resolves
    // within one queued compile. Padded with a few quanta of slack so
    // barrier granularity never produces a false stall.
    const RetryPolicy &r = cfg_.retry;
    uint64_t per_attempt =
        r.attemptTimeoutCycles + 2 * r.backoffCapCycles;
    uint64_t attempts = r.enabled ? r.maxAttempts : 1;
    return attempts * per_attempt + 8 * cluster_.quantum() + 100000;
}

uint64_t
FleetSim::stalledRequests() const
{
    uint64_t stalled = 0;
    uint64_t bound = ladderBoundCycles();
    for (const auto &s : servers_) {
        if (s->backend)
            stalled += s->backend->stalledCount(cluster_.now(),
                                                bound);
    }
    return stalled;
}

FleetStats
FleetSim::stats() const
{
    FleetStats st;
    st.service = svc_.stats();
    st.serverPauses = cluster_.pausesApplied();
    for (const auto &s : servers_) {
        st.deployRequests += s->deploys;
        const runtime::RuntimeCompiler &rc = s->rt->compiler();
        st.serverCompiles += rc.compileCount();
        st.serverCompileCycles += rc.compileCycles();
        st.remoteHits += rc.remoteHits();
        st.hostBranches += s->machine->core(0).hpm().branches;
        // Pending flips are censored at the cluster barrier clock,
        // which serial and parallel runs agree on byte-for-byte.
        runtime::FlipEffectStats fe =
            s->rt->flipEffectStats(cluster_.now());
        st.entryFlips += fe.entryFlips;
        st.osrFlips += fe.osrFlips;
        st.pendingFlips += fe.pending;
        st.worstEntryFlip = std::max(st.worstEntryFlip,
                                     fe.worstEntry);
        st.worstOsrFlip = std::max(st.worstOsrFlip, fe.worstOsr);
        st.worstPendingFlip = std::max(st.worstPendingFlip,
                                       fe.worstPending);
        st.osrRedirects += s->rt->osrRedirects();
        st.osrPatches += s->rt->osrPatchesWritten();
        if (s->backend) {
            const ClientStats &cs = s->backend->clientStats();
            st.client.remoteRequests += cs.remoteRequests;
            st.client.timeouts += cs.timeouts;
            st.client.retries += cs.retries;
            st.client.hedges += cs.hedges;
            st.client.failedResponses += cs.failedResponses;
            st.client.corruptResponses += cs.corruptResponses;
            st.client.localFallbacks += cs.localFallbacks;
            st.client.breakerShortCircuits +=
                cs.breakerShortCircuits;
            st.client.maxResolveCycles = std::max(
                st.client.maxResolveCycles, cs.maxResolveCycles);
        }
    }
    st.stalledRequests = stalledRequests();
    return st;
}

void
FleetSim::exportObsMetrics() const
{
    // Per-machine exportObsMetrics() publishes under shared names
    // with max semantics — wrong summed across a fleet — so the fleet
    // publishes its own aggregates instead.
    svc_.exportObsMetrics();
    FleetStats st = stats();
    obs::MetricsRegistry &m = obs::metrics();
    m.gauge("fleet.sim.servers").set(
        static_cast<double>(cfg_.numServers));
    m.gauge("fleet.sim.catalog_size").set(
        static_cast<double>(catalog_.size()));
    m.gauge("fleet.sim.deploy_requests").set(
        static_cast<double>(st.deployRequests));
    m.gauge("fleet.sim.server_compiles").set(
        static_cast<double>(st.serverCompiles));
    m.gauge("fleet.sim.server_compile_cycles").set(
        static_cast<double>(st.serverCompileCycles));
    m.gauge("fleet.sim.total_compile_cycles").set(
        static_cast<double>(st.totalCompileCycles()));
    m.gauge("fleet.sim.host_branches").set(
        static_cast<double>(st.hostBranches));
    m.gauge("fleet.sim.dedup_factor").set(st.dedupFactor());
    m.gauge("fleet.sim.stalled_requests").set(
        static_cast<double>(st.stalledRequests));
    m.gauge("fleet.sim.server_pauses").set(
        static_cast<double>(st.serverPauses));
    m.gauge("fleet.sim.local_fallbacks").set(
        static_cast<double>(st.client.localFallbacks));
    m.gauge("fleet.sim.retries").set(
        static_cast<double>(st.client.retries));
    m.gauge("fleet.sim.timeouts").set(
        static_cast<double>(st.client.timeouts));
    m.gauge("fleet.sim.max_resolve_cycles").set(
        static_cast<double>(st.client.maxResolveCycles));
    m.gauge("fleet.sim.entry_flips").set(
        static_cast<double>(st.entryFlips));
    m.gauge("fleet.sim.osr_flips").set(
        static_cast<double>(st.osrFlips));
    m.gauge("fleet.sim.pending_flips").set(
        static_cast<double>(st.pendingFlips));
    m.gauge("fleet.sim.worst_flip_effect").set(
        static_cast<double>(st.worstFlipEffect()));
    m.gauge("fleet.sim.osr_redirects").set(
        static_cast<double>(st.osrRedirects));
    m.gauge("fleet.sim.osr_patches").set(
        static_cast<double>(st.osrPatches));
    if (hub_)
        hub_->exportObsMetrics();
}

} // namespace fleet
} // namespace protean
