#include "fleet/telemetry.h"

#include <cstdio>

#include "fleet/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/runtime.h"
#include "support/logging.h"

namespace protean {
namespace fleet {

std::map<std::string, double>
FleetWindow::fields() const
{
    std::map<std::string, double> f;
    f["breaker_opens"] = static_cast<double>(breakerOpens);
    f["breaker_short_circuits"] =
        static_cast<double>(breakerShortCircuits);
    f["breakers_open"] = static_cast<double>(breakersOpen);
    f["coalesced"] = static_cast<double>(coalesced);
    f["corrupt_rejects"] = static_cast<double>(corruptRejects);
    f["corrupt_responses"] = static_cast<double>(corruptResponses);
    f["crashes"] = static_cast<double>(crashes);
    f["delayed"] = static_cast<double>(delayed);
    f["dropped"] = static_cast<double>(dropped);
    f["failed"] = static_cast<double>(failed);
    f["flip_count"] = static_cast<double>(flip.total());
    f["flip_effect_entry_count"] =
        static_cast<double>(flipEffectEntry.total());
    f["flip_effect_entry_max"] =
        static_cast<double>(flipEffectEntry.maxValue());
    f["flip_effect_entry_p99"] =
        static_cast<double>(flipEffectEntry.quantile(0.99));
    f["flip_effect_osr_count"] =
        static_cast<double>(flipEffectOsr.total());
    f["flip_effect_osr_max"] =
        static_cast<double>(flipEffectOsr.maxValue());
    f["flip_effect_osr_p99"] =
        static_cast<double>(flipEffectOsr.quantile(0.99));
    f["flip_max"] = static_cast<double>(flip.maxValue());
    f["flip_p50"] = static_cast<double>(flip.quantile(0.50));
    f["flip_p95"] = static_cast<double>(flip.quantile(0.95));
    f["flip_p99"] = static_cast<double>(flip.quantile(0.99));
    f["flip_p999"] = static_cast<double>(flip.quantile(0.999));
    f["hedges"] = static_cast<double>(hedges);
    f["hit_rate"] = hitRate;
    f["hits"] = static_cast<double>(hits);
    f["local_fallbacks"] = static_cast<double>(localFallbacks);
    f["flip_records"] = static_cast<double>(flipRecords);
    f["misses"] = static_cast<double>(misses);
    f["profile_samples"] = static_cast<double>(profileSamples);
    f["replica_routes"] = static_cast<double>(replicaRoutes);
    f["requests"] = static_cast<double>(requests);
    f["retries"] = static_cast<double>(retries);
    f["scrape_bytes"] = static_cast<double>(scrapeBytes);
    f["server_pauses"] = static_cast<double>(serverPauses);
    f["stranded"] = static_cast<double>(stranded);
    f["timeouts"] = static_cast<double>(timeouts);
    f["validate_cycles"] = static_cast<double>(validateCycles);
    f["validate_escalate"] =
        static_cast<double>(validateEscalations);
    f["validate_fail"] = static_cast<double>(validateFails);
    f["validate_pass"] = static_cast<double>(validatePasses);
    return f;
}

TelemetryHub::TelemetryHub(const TelemetryConfig &cfg,
                           CompileService &svc, Cluster &cluster)
    : cfg_(cfg), svc_(svc), cluster_(cluster)
{
    if (cfg_.windowCycles == 0)
        fatal("TelemetryHub: windowCycles must be positive");
}

void
TelemetryHub::addServer(RemoteBackend *backend, sim::Machine *machine,
                        runtime::VariantProfiler *profiler,
                        runtime::ProteanRuntime *rt)
{
    ServerSlot slot;
    slot.backend = backend;
    slot.machine = machine;
    slot.profiler = profiler;
    slot.rt = rt;
    servers_.push_back(std::move(slot));
}

void
TelemetryHub::onBarrier(uint64_t cycle)
{
    // Windows close at the first barrier at or past each boundary;
    // the barrier cycle becomes the window's recorded end, so window
    // edges are identical serial vs. parallel (barriers are).
    while (cycle >= windowStart_ + cfg_.windowCycles)
        closeWindow(cycle);
}

void
TelemetryHub::flush(uint64_t cycle)
{
    if (cycle > windowStart_)
        closeWindow(cycle);
}

void
TelemetryHub::closeWindow(uint64_t cycle)
{
    FleetWindow w;
    w.index = windows_.size();
    w.startCycle = windowStart_;
    w.endCycle = std::min(cycle, windowStart_ + cfg_.windowCycles);

    // ----- service deltas -----
    const ServiceStats &s = svc_.stats();
    w.requests = s.requests - prevService_.requests;
    w.hits = s.hits - prevService_.hits;
    w.misses = s.misses - prevService_.misses;
    w.coalesced = s.coalesced - prevService_.coalesced;
    w.dropped = s.dropped - prevService_.dropped;
    w.delayed = s.delayed - prevService_.delayed;
    w.failed = s.failed - prevService_.failed;
    w.crashes = s.crashes - prevService_.crashes;
    w.replicaRoutes = s.replicaRoutes - prevService_.replicaRoutes;
    w.corruptRejects =
        s.corruptRejects - prevService_.corruptRejects;
    w.corruptResponses =
        s.corruptResponses - prevService_.corruptResponses;
    w.validatePasses =
        s.validatePasses - prevService_.validatePasses;
    w.validateFails = s.validateFails - prevService_.validateFails;
    w.validateEscalations =
        s.validateEscalations - prevService_.validateEscalations;
    w.validateCycles =
        s.validateCycles - prevService_.validateCycles;
    // Corrupt-rejected hits are classified non-hits: the key was
    // known but its payload could not be served.
    uint64_t classified =
        w.hits + w.misses + w.coalesced + w.corruptRejects;
    w.hitRate = classified == 0 ?
        0.0 :
        static_cast<double>(w.hits + w.coalesced) /
            static_cast<double>(classified);
    prevService_ = s;

    // ----- per-shard health at the close -----
    uint32_t shards = svc_.config().numShards;
    w.shardUp.reserve(shards);
    w.shardOccupancy.reserve(shards);
    for (uint32_t sh = 0; sh < shards; ++sh) {
        w.shardUp.push_back(svc_.shardUp(sh, w.endCycle) ? 1 : 0);
        w.shardOccupancy.push_back(svc_.shardOccupancy(sh));
    }

    // ----- per-server scrape: client deltas + flip histograms -----
    const NetworkModel &net = svc_.config().net;
    for (ServerSlot &slot : servers_) {
        uint64_t payload = cfg_.scrapeBaseBytes;
        if (slot.backend) {
            RemoteBackend &b = *slot.backend;
            const ClientStats &c = b.clientStats();
            w.timeouts += c.timeouts - slot.prev.timeouts;
            w.retries += c.retries - slot.prev.retries;
            w.hedges += c.hedges - slot.prev.hedges;
            w.localFallbacks +=
                c.localFallbacks - slot.prev.localFallbacks;
            w.breakerShortCircuits += c.breakerShortCircuits -
                slot.prev.breakerShortCircuits;
            w.breakerOpens +=
                b.breaker().opens() - slot.prevOpens;
            slot.prev = c;
            slot.prevOpens = b.breaker().opens();
            if (b.breaker().state() !=
                CircuitBreaker::State::Closed)
                ++w.breakersOpen;
            if (stallBound_ != UINT64_MAX)
                w.stranded += b.stalledCount(w.endCycle, stallBound_);

            obs::HdrHistogram server_flip;
            b.drainFlipWindow(server_flip);
            payload += cfg_.scrapeBucketBytes *
                server_flip.nonZeroBuckets().size();
            w.flip.merge(server_flip);
        }
        if (slot.rt) {
            // Flip-*effect* latencies (request → new code executing)
            // drained per server and fleet-merged, split entry/OSR —
            // the series the hot-loop scenario's tail lives in.
            obs::HdrHistogram fe_entry, fe_osr;
            slot.rt->drainFlipEffectWindow(fe_entry, fe_osr);
            payload += cfg_.scrapeBucketBytes *
                (fe_entry.nonZeroBuckets().size() +
                 fe_osr.nonZeroBuckets().size());
            w.flipEffectEntry.merge(fe_entry);
            w.flipEffectOsr.merge(fe_osr);
        }
        if (cfg_.profiling && slot.profiler) {
            // Drain the server's continuous profile and flip
            // ledger; both are payload like any other scrape data.
            obs::Profile server_profile;
            slot.profiler->drainProfile(server_profile);
            payload += cfg_.scrapeProfileEntryBytes *
                server_profile.entries().size();
            w.profileSamples += server_profile.totalSamples();
            profile_.merge(server_profile);

            std::vector<runtime::FlipRecord> records =
                slot.profiler->drainLedger();
            payload += cfg_.scrapeFlipBytes * records.size();
            w.flipRecords += records.size();
            for (const runtime::FlipRecord &r : records)
                scoreboard_.recordFlip(r);
        }
        // The delta rides the modeled network; serialization steals
        // real cycles from the server like any other runtime agent.
        w.scrapeBytes += payload;
        w.scrapeNetworkCycles += net.requestLatencyCycles +
            net.transferCycles(payload);
        if (slot.machine && cfg_.scrapeCpuCycles > 0) {
            slot.machine->core(cfg_.scrapeCore)
                .stealCycles(cfg_.scrapeCpuCycles);
            w.scrapeCpuCycles += cfg_.scrapeCpuCycles;
        }
    }
    scrapeBytes_ += w.scrapeBytes;
    scrapeNetCycles_ += w.scrapeNetworkCycles;
    scrapeCpu_ += w.scrapeCpuCycles;

    uint64_t pauses = cluster_.pausesApplied();
    w.serverPauses = pauses - prevPauses_;
    prevPauses_ = pauses;

    if (obs::tracer().enabled()) {
        obs::tracer().complete(
            "fleet.telemetry",
            strformat("scrape window%llu",
                      static_cast<unsigned long long>(w.index)),
            w.startCycle, w.endCycle,
            strformat("\"bytes\":%llu,\"net_cycles\":%llu,"
                      "\"cpu_cycles\":%llu,\"flip_p99\":%llu",
                      static_cast<unsigned long long>(w.scrapeBytes),
                      static_cast<unsigned long long>(
                          w.scrapeNetworkCycles),
                      static_cast<unsigned long long>(
                          w.scrapeCpuCycles),
                      static_cast<unsigned long long>(
                          w.flip.quantile(0.99))));
    }

    slo_.observeWindow(w.index, w.fields());
    windowStart_ += cfg_.windowCycles;
    if (windowStart_ > w.endCycle)
        windowStart_ = w.endCycle; // flush() of a partial window
    windows_.push_back(std::move(w));
}

obs::HdrHistogram
TelemetryHub::fleetFlip() const
{
    obs::HdrHistogram all;
    for (const FleetWindow &w : windows_)
        all.merge(w.flip);
    return all;
}

obs::HdrHistogram
TelemetryHub::fleetFlipEffectEntry() const
{
    obs::HdrHistogram all;
    for (const FleetWindow &w : windows_)
        all.merge(w.flipEffectEntry);
    return all;
}

obs::HdrHistogram
TelemetryHub::fleetFlipEffectOsr() const
{
    obs::HdrHistogram all;
    for (const FleetWindow &w : windows_)
        all.merge(w.flipEffectOsr);
    return all;
}

std::string
TelemetryHub::toJson() const
{
    using obs::detail::hdrJson;
    using obs::detail::jsonNumber;

    std::string out = strformat(
        "{\n\"config\": {\"profiling\": %s, "
        "\"scrape_base_bytes\": %llu, "
        "\"scrape_bucket_bytes\": %llu, \"scrape_cpu_cycles\": %llu, "
        "\"scrape_flip_bytes\": %llu, "
        "\"scrape_profile_entry_bytes\": %llu, "
        "\"servers\": %zu, \"window_cycles\": %llu},\n",
        cfg_.profiling ? "true" : "false",
        static_cast<unsigned long long>(cfg_.scrapeBaseBytes),
        static_cast<unsigned long long>(cfg_.scrapeBucketBytes),
        static_cast<unsigned long long>(cfg_.scrapeCpuCycles),
        static_cast<unsigned long long>(cfg_.scrapeFlipBytes),
        static_cast<unsigned long long>(cfg_.scrapeProfileEntryBytes),
        servers_.size(),
        static_cast<unsigned long long>(cfg_.windowCycles));
    out += strformat("\"fleet_flip\": %s,\n",
                     hdrJson(fleetFlip()).c_str());
    out += strformat("\"fleet_flip_effect_entry\": %s,\n",
                     hdrJson(fleetFlipEffectEntry()).c_str());
    out += strformat("\"fleet_flip_effect_osr\": %s,\n",
                     hdrJson(fleetFlipEffectOsr()).c_str());
    if (cfg_.profiling) {
        out += "\"profile\": " + profile_.toJson() + ",\n";
        out += "\"scoreboard\": " + scoreboard_.toJson() + ",\n";
    }
    out += strformat(
        "\"scrape\": {\"bytes\": %llu, \"cpu_cycles\": %llu, "
        "\"network_cycles\": %llu},\n",
        static_cast<unsigned long long>(scrapeBytes_),
        static_cast<unsigned long long>(scrapeCpu_),
        static_cast<unsigned long long>(scrapeNetCycles_));
    out += "\"slo\": " + slo_.toJson() + ",\n";
    out += "\"windows\": [";
    for (size_t i = 0; i < windows_.size(); ++i) {
        const FleetWindow &w = windows_[i];
        out += i ? ",\n  " : "\n  ";
        out += strformat(
            "{\"index\": %llu, \"start\": %llu, \"end\": %llu",
            static_cast<unsigned long long>(w.index),
            static_cast<unsigned long long>(w.startCycle),
            static_cast<unsigned long long>(w.endCycle));
        // Scalar fields in the same stable order as fields().
        for (const auto &[name, value] : w.fields()) {
            out += strformat(", \"%s\": %s", name.c_str(),
                             jsonNumber(value).c_str());
        }
        out += ", \"flip\": " + hdrJson(w.flip);
        out += ", \"flip_effect_entry\": " +
            hdrJson(w.flipEffectEntry);
        out += ", \"flip_effect_osr\": " + hdrJson(w.flipEffectOsr);
        out += ", \"shards\": [";
        for (size_t sh = 0; sh < w.shardUp.size(); ++sh) {
            out += strformat(
                "%s[%u,%llu]", sh ? "," : "", w.shardUp[sh],
                static_cast<unsigned long long>(
                    w.shardOccupancy[sh]));
        }
        out += "]}";
    }
    out += windows_.empty() ? "]\n}\n" : "\n]\n}\n";
    return out;
}

void
TelemetryHub::writeJson(const std::string &path) const
{
    std::string json = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("telemetry: cannot open %s for writing", path.c_str());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    debug("telemetry: wrote %zu windows to %s", windows_.size(),
          path.c_str());
}

void
TelemetryHub::exportObsMetrics() const
{
    obs::MetricsRegistry &m = obs::metrics();
    m.gauge("fleet.telemetry.windows")
        .set(static_cast<double>(windows_.size()));
    obs::HdrHistogram flip = fleetFlip();
    m.gauge("fleet.telemetry.flip_p50")
        .set(static_cast<double>(flip.quantile(0.50)));
    m.gauge("fleet.telemetry.flip_p99")
        .set(static_cast<double>(flip.quantile(0.99)));
    m.gauge("fleet.telemetry.flip_p999")
        .set(static_cast<double>(flip.quantile(0.999)));
    obs::HdrHistogram fe_entry = fleetFlipEffectEntry();
    obs::HdrHistogram fe_osr = fleetFlipEffectOsr();
    m.gauge("fleet.telemetry.flip_effect_entry_count")
        .set(static_cast<double>(fe_entry.total()));
    m.gauge("fleet.telemetry.flip_effect_entry_max")
        .set(static_cast<double>(fe_entry.maxValue()));
    m.gauge("fleet.telemetry.flip_effect_osr_count")
        .set(static_cast<double>(fe_osr.total()));
    m.gauge("fleet.telemetry.flip_effect_osr_max")
        .set(static_cast<double>(fe_osr.maxValue()));
    m.gauge("fleet.telemetry.scrape_bytes")
        .set(static_cast<double>(scrapeBytes_));
    m.gauge("fleet.telemetry.scrape_network_cycles")
        .set(static_cast<double>(scrapeNetCycles_));
    m.gauge("fleet.telemetry.scrape_cpu_cycles")
        .set(static_cast<double>(scrapeCpu_));
    m.gauge("fleet.telemetry.slo_alerts")
        .set(static_cast<double>(slo_.alerts().size()));
    if (cfg_.profiling) {
        m.gauge("fleet.telemetry.profile_samples")
            .set(static_cast<double>(profile_.totalSamples()));
        m.gauge("fleet.telemetry.profile_buckets")
            .set(static_cast<double>(profile_.entries().size()));
        m.gauge("fleet.telemetry.flip_records")
            .set(static_cast<double>(scoreboard_.totalFlips()));
    }
}

} // namespace fleet
} // namespace protean
