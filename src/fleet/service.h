/**
 * @file
 * Fleet-wide compilation service (paper Section V-E).
 *
 * Thousands of servers in a warehouse-scale cluster run the *same*
 * binary, so protean-code transformations requested on one server are
 * requested — byte-for-byte identically — on every other. The service
 * exploits that: a content-addressed variant cache keyed by
 * (IR function hash, restricted NT mask, codegen options), sharded
 * K ways by key hash, with LRU eviction per shard, request
 * batching/coalescing (concurrent misses for one key collapse into a
 * single compile), and a network latency/bandwidth cost model charged
 * through the requesting machine's event queue.
 *
 * Warehouse scale also means shards die. The service is fault-aware
 * (DESIGN.md §9): an attached faults::FaultPlan injects seeded shard
 * crashes, dropped/delayed requests, and payload corruption; the
 * service tracks shard health, routes requests to the first live
 * member of each key's replica set (replication factor R), verifies
 * cached variants by checksum on every hit (reject-and-recompile on
 * corruption), and answers requests stranded on a crashed shard with
 * explicit failure responses so clients can retry or fall back —
 * never silently stall.
 *
 * Determinism rules (see DESIGN.md §7): the service only mutates
 * state inside advance(), which processes work in strict
 * (cycle, submission order) order; submissions carry explicit arrival
 * cycles; all responses resolve to explicit ready cycles. Fault
 * decisions are pure functions of the plan's seed and the request's
 * sequence number, so two identical runs — serial or parallel —
 * produce byte-identical metrics and traces.
 */

#ifndef PROTEAN_FLEET_SERVICE_H
#define PROTEAN_FLEET_SERVICE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "faults/plan.h"
#include "runtime/compiler.h"

namespace protean {
namespace validate {
class Validator;
} // namespace validate

namespace fleet {

/** Client <-> service network cost model, in cycles. */
struct NetworkModel
{
    /** One-way client -> service latency. */
    uint64_t requestLatencyCycles = 400;
    /** One-way service -> client latency. */
    uint64_t responseLatencyCycles = 400;
    /** Response-payload bandwidth (variant code shipping). */
    double bytesPerCycle = 16.0;

    /** Cycles to push `bytes` through the response link. */
    uint64_t transferCycles(uint64_t bytes) const
    {
        if (bytesPerCycle <= 0.0)
            return 0;
        return static_cast<uint64_t>(
            (static_cast<double>(bytes) + bytesPerCycle - 1.0) /
            bytesPerCycle);
    }
};

/** Service sizing and cost parameters. */
struct ServiceConfig
{
    /** K-way sharding by content-key hash. */
    uint32_t numShards = 4;
    /** Cached variants per shard (LRU beyond this). */
    size_t shardCapacity = 64;
    /** Requests arriving within this window of the first queued
     *  request are processed as one batch at the shard. */
    uint64_t batchWindowCycles = 200;
    /** Per-batch-member shard work (cache probe, bookkeeping). */
    uint64_t lookupCycles = 20;
    /**
     * Replication factor R: each variant installs on its primary
     * shard plus the next R-1 shards in the ring, so a single-shard
     * crash loses no unique work. Clamped to numShards; 1 = no
     * replication (the pre-fault behavior).
     */
    uint32_t replication = 1;
    NetworkModel net;
};

/** Cumulative service statistics (also exported through obs). */
struct ServiceStats
{
    uint64_t requests = 0;
    uint64_t hits = 0;
    /** Misses that started a fresh compile. */
    uint64_t misses = 0;
    /** Misses that joined an in-flight compile for the same key. */
    uint64_t coalesced = 0;
    uint64_t evictions = 0;
    uint64_t batches = 0;
    uint64_t compiles = 0;
    uint64_t compileCycles = 0;
    uint64_t bytesOut = 0;
    // ----- fault injection and degradation -----
    /** Requests lost in transit (injected drops; never answered). */
    uint64_t dropped = 0;
    /** Requests hit by an injected in-transit delay. */
    uint64_t delayed = 0;
    /** Failure responses sent (replica set down, crash mid-work). */
    uint64_t failed = 0;
    /** Requests routed to a replica because the preferred shard was
     *  down (health-based rerouting). */
    uint64_t replicaRoutes = 0;
    /** Cached-variant installs on non-primary replica shards. */
    uint64_t replicaInstalls = 0;
    /** Cached entries that failed checksum verification on a hit
     *  and were rejected + recompiled. */
    uint64_t corruptRejects = 0;
    /** Responses shipped with an injected payload corruption (the
     *  client's checksum catches these). */
    uint64_t corruptResponses = 0;
    /** Shard crashes applied. */
    uint64_t crashes = 0;
    /** Cached variants wiped by crashes. */
    uint64_t lostEntries = 0;
    /** Recompiles started because a checksum-rejected cache entry
     *  had to be replaced (split out of `misses`: the key *was*
     *  known, the payload was just bad at rest). */
    uint64_t corruptRecompiles = 0;
    // ----- translation-validation install gate (DESIGN.md §12) ----
    /** Variants the gate proved equivalent and installed. */
    uint64_t validatePasses = 0;
    /** Variants the gate refuted (never installed anywhere). */
    uint64_t validateFails = 0;
    /** Verdicts that needed tier-2 differential execution. */
    uint64_t validateEscalations = 0;
    /** Modeled validation cycles, charged to shard backends. */
    uint64_t validateCycles = 0;
    /** Recompiles started after a validate reject. */
    uint64_t validateRecompiles = 0;
    /** Injected miscompiles that actually mutated a build. */
    uint64_t miscompilesInjected = 0;
    /** Injected miscompiles the gate *missed* (bad installs — the
     *  number bench/fleet_faults requires to be zero). */
    uint64_t miscompilesInstalled = 0;

    /** Hit fraction of classified requests (hits + coalesced count
     *  as served-without-compile; corrupt-rejected hits count as
     *  classified non-hits). */
    double hitRateOf() const
    {
        uint64_t classified = hits + misses + coalesced +
            corruptRejects;
        if (classified == 0)
            return 0.0;
        return static_cast<double>(hits + coalesced) /
            static_cast<double>(classified);
    }
};

/**
 * The shared compilation service.
 *
 * Clients submit jobs with explicit arrival cycles; a coordinator
 * (fleet::Cluster) calls advance(T) at time barriers, which resolves
 * everything arriving or completing at or before T and invokes the
 * response callbacks with the computed ready cycles.
 *
 * Responses for cache hits fire at batch close; responses for
 * misses and coalesced requests fire when the compile *completes* —
 * so a shard crash can strand them (waiters get failure responses,
 * or nothing at all if the request itself was dropped in transit),
 * which is exactly what client-side timeouts exist to catch.
 */
class CompileService
{
  public:
    using Response =
        std::function<void(const runtime::CompileOutcome &)>;

    explicit CompileService(const ServiceConfig &cfg);

    const ServiceConfig &config() const { return cfg_; }

    /**
     * Attach a fault plan (nullptr = benign). The plan must outlive
     * the service. Outage schedule consumption happens inside
     * advance(), so one plan must not be shared by two services
     * (clusters share the plan's pure decisions only).
     */
    void setFaultPlan(faults::FaultPlan *plan);

    /**
     * Attach the translation-validation install gate (nullptr =
     * ungated, the pre-§12 behavior). When set, every completed
     * compile is validated *before* it installs or answers waiters:
     * a refuted variant is discarded and recompiled (bounded
     * attempts), and validation cycles extend the shard backend like
     * compile cycles. The validator must outlive the service; it is
     * only consulted inside advance() on the coordinator, and its
     * verdicts are pure, so parallel stepping stays byte-identical.
     */
    void setValidator(const validate::Validator *v);

    /**
     * Submit a compile request.
     * @param server Requesting server id (stats, traces).
     * @param job The compile job (content key, cost, size).
     * @param arrival_cycle When the request reaches the service.
     * @param done Invoked (from a later advance()) with the outcome;
     *        outcome.readyCycle is when the client holds the variant.
     * @param route_offset Rotates the key's replica set before
     *        health-based selection: 0 prefers the primary, 1 the
     *        first replica, ... Hedged and retried requests use it to
     *        land on a different shard than the attempt they back up.
     */
    void submit(uint32_t server, const runtime::CompileJob &job,
                uint64_t arrival_cycle, Response done,
                uint32_t route_offset = 0);

    /**
     * Enter/leave deferred-submission mode (parallel fleet
     * stepping). While on, submit() only appends to a per-server
     * staging buffer under an internal lock — no stats, metrics or
     * ordering decisions are made — so machines on worker threads may
     * submit concurrently. flushDeferred() replays the buffers.
     */
    void setDeferSubmissions(bool on);

    /**
     * Replay deferred submissions through the normal submit path, in
     * ascending server order (submission order within one server is
     * preserved). When server ids follow the coordinator's machine
     * stepping order — as fleet::FleetSim guarantees — the resulting
     * sequence numbering is identical to a serial quantum, making
     * parallel runs byte-identical to serial ones.
     */
    void flushDeferred();

    /** Resolve all work arriving/completing at or before cycle. */
    void advance(uint64_t cycle);

    /** Shard a content key routes to (stable across instances). */
    uint32_t shardOf(uint64_t content_key) const;

    /** The key's replica set: primary + next R-1 ring shards. */
    std::vector<uint32_t> replicaSet(uint64_t content_key) const;

    /** Health view: false while the shard is inside an applied
     *  outage at `cycle` (crashed, not yet restarted). */
    bool shardUp(uint32_t shard, uint64_t cycle) const;

    /** Cached variants currently resident in one shard. */
    size_t shardOccupancy(uint32_t shard) const;

    /** Compile cycles spent by one shard's backend. */
    uint64_t shardCompileCycles(uint32_t shard) const;

    /** True when `key` is resident (uncorrupted) in `shard`. */
    bool shardHasKey(uint32_t shard, uint64_t key) const;

    const ServiceStats &stats() const { return stats_; }

    /** Hit fraction of all classified requests (hits + coalesced
     *  count as served-without-compile). */
    double hitRate() const;

    /** Publish per-shard occupancy/compile/health gauges
     *  (idempotent). */
    void exportObsMetrics() const;

  private:
    struct Request
    {
        uint64_t arrival = 0;
        uint64_t seq = 0;
        uint32_t server = 0;
        uint32_t routeOffset = 0;
        runtime::CompileJob job;
        Response done;
    };

    struct CacheEntry
    {
        uint64_t key = 0;
        uint64_t codeBytes = 0;
        /** Injected at-rest corruption; the checksum verification on
         *  the next hit rejects the entry and recompiles. */
        bool corrupt = false;
    };

    /** A request waiting on an in-flight compile (the miss that
     *  started it, or a coalesced rider). Answered at completion —
     *  or failed if the shard crashes first. */
    struct Waiter
    {
        Request req;
        /** Started the compile (false = coalesced rider). */
        bool isMiss = false;
        /** Compile start cycle (outcome reporting). */
        uint64_t startCycle = 0;
    };

    struct Shard
    {
        /** LRU order, most recently used first. */
        std::list<CacheEntry> lru;
        std::unordered_map<uint64_t, std::list<CacheEntry>::iterator>
            index;
        /** Arrival-ordered requests not yet in a closed batch. */
        std::deque<Request> queue;
        /** One in-flight compile: when it finishes, what it ships,
         *  and what was asked for (the job is what the install gate
         *  validates; attempt feeds the miscompile stream and bounds
         *  reject-and-recompile loops). */
        struct Inflight
        {
            uint64_t done = 0;
            uint64_t bytes = 0;
            runtime::CompileJob job;
            uint32_t attempt = 0;
        };
        /** In-flight compiles by content key. */
        std::unordered_map<uint64_t, Inflight> inflight;
        /** Completion cycle -> keys finishing then (install order). */
        std::map<uint64_t, std::vector<uint64_t>> completions;
        /** Requests answered when their key's compile completes. */
        std::unordered_map<uint64_t, std::vector<Waiter>> waiters;
        /** Serial compile backend availability. */
        uint64_t backendFree = 0;
        uint64_t compileCycles = 0;
        /** Crashed until this cycle (0 = healthy). */
        uint64_t downUntil = 0;
    };

    ServiceConfig cfg_;
    std::vector<Shard> shards_;
    /** Submitted but not yet routed (sorted into shards at
     *  advance()). */
    std::vector<Request> pending_;
    uint64_t seq_ = 0;
    ServiceStats stats_;
    faults::FaultPlan *plan_ = nullptr;
    const validate::Validator *validator_ = nullptr;
    /** Compile attempts per key before the gate gives up and fails
     *  the waiters (clients retry or fall back locally). */
    static constexpr uint32_t kMaxCompileAttempts = 4;
    /** Deferred-submission staging (parallel quanta). */
    bool defer_ = false;
    std::mutex deferMu_;
    std::map<uint32_t, std::vector<Request>> deferred_;

    /** Seq assignment + fault (drop/delay) application; shared by
     *  submit() and flushDeferred(). */
    void admit(Request r);
    void advanceShard(uint32_t s, uint64_t cycle);
    /** Move keys completing at or before cycle into the cache and
     *  answer their waiters. */
    void installCompletions(uint32_t s, Shard &sh, uint64_t cycle);
    void installKey(uint32_t s, Shard &sh, uint64_t key,
                    uint64_t code_bytes, uint64_t cycle);
    void resolveBatch(uint32_t s, Shard &sh, uint64_t close);
    /** Apply one outage: wipe the shard, fail stranded requests. */
    void crashShard(uint32_t s, Shard &sh,
                    const faults::ShardOutage &outage);
    /** Send a failure response at `cycle` (+ response latency). */
    void failRequest(Request &r, uint64_t cycle, const char *reason);
    /** Deliver a success response, applying in-transit corruption. */
    void respond(Request &r, runtime::CompileOutcome out,
                 const char *verdict, uint32_t shard);
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_SERVICE_H
