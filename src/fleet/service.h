/**
 * @file
 * Fleet-wide compilation service (paper Section V-E).
 *
 * Thousands of servers in a warehouse-scale cluster run the *same*
 * binary, so protean-code transformations requested on one server are
 * requested — byte-for-byte identically — on every other. The service
 * exploits that: a content-addressed variant cache keyed by
 * (IR function hash, restricted NT mask, codegen options), sharded
 * K ways by key hash, with LRU eviction per shard, request
 * batching/coalescing (concurrent misses for one key collapse into a
 * single compile), and a network latency/bandwidth cost model charged
 * through the requesting machine's event queue.
 *
 * Determinism rules (see DESIGN.md §7): the service only mutates
 * state inside advance(), which processes work in strict
 * (cycle, submission order) order; submissions carry explicit arrival
 * cycles; all responses resolve to explicit ready cycles. Two
 * identical runs therefore produce byte-identical metrics and traces.
 */

#ifndef PROTEAN_FLEET_SERVICE_H
#define PROTEAN_FLEET_SERVICE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/compiler.h"

namespace protean {
namespace fleet {

/** Client <-> service network cost model, in cycles. */
struct NetworkModel
{
    /** One-way client -> service latency. */
    uint64_t requestLatencyCycles = 400;
    /** One-way service -> client latency. */
    uint64_t responseLatencyCycles = 400;
    /** Response-payload bandwidth (variant code shipping). */
    double bytesPerCycle = 16.0;

    /** Cycles to push `bytes` through the response link. */
    uint64_t transferCycles(uint64_t bytes) const
    {
        if (bytesPerCycle <= 0.0)
            return 0;
        return static_cast<uint64_t>(
            (static_cast<double>(bytes) + bytesPerCycle - 1.0) /
            bytesPerCycle);
    }
};

/** Service sizing and cost parameters. */
struct ServiceConfig
{
    /** K-way sharding by content-key hash. */
    uint32_t numShards = 4;
    /** Cached variants per shard (LRU beyond this). */
    size_t shardCapacity = 64;
    /** Requests arriving within this window of the first queued
     *  request are processed as one batch at the shard. */
    uint64_t batchWindowCycles = 200;
    /** Per-batch-member shard work (cache probe, bookkeeping). */
    uint64_t lookupCycles = 20;
    NetworkModel net;
};

/** Cumulative service statistics (also exported through obs). */
struct ServiceStats
{
    uint64_t requests = 0;
    uint64_t hits = 0;
    /** Misses that started a fresh compile. */
    uint64_t misses = 0;
    /** Misses that joined an in-flight compile for the same key. */
    uint64_t coalesced = 0;
    uint64_t evictions = 0;
    uint64_t batches = 0;
    uint64_t compiles = 0;
    uint64_t compileCycles = 0;
    uint64_t bytesOut = 0;
};

/**
 * The shared compilation service.
 *
 * Clients submit jobs with explicit arrival cycles; a coordinator
 * (fleet::Cluster) calls advance(T) at time barriers, which resolves
 * everything arriving or completing at or before T and invokes the
 * response callbacks with the computed ready cycles.
 */
class CompileService
{
  public:
    using Response =
        std::function<void(const runtime::CompileOutcome &)>;

    explicit CompileService(const ServiceConfig &cfg);

    const ServiceConfig &config() const { return cfg_; }

    /**
     * Submit a compile request.
     * @param server Requesting server id (stats, traces).
     * @param job The compile job (content key, cost, size).
     * @param arrival_cycle When the request reaches the service.
     * @param done Invoked (from a later advance()) with the outcome;
     *        outcome.readyCycle is when the client holds the variant.
     */
    void submit(uint32_t server, const runtime::CompileJob &job,
                uint64_t arrival_cycle, Response done);

    /**
     * Enter/leave deferred-submission mode (parallel fleet
     * stepping). While on, submit() only appends to a per-server
     * staging buffer under an internal lock — no stats, metrics or
     * ordering decisions are made — so machines on worker threads may
     * submit concurrently. flushDeferred() replays the buffers.
     */
    void setDeferSubmissions(bool on);

    /**
     * Replay deferred submissions through the normal submit path, in
     * ascending server order (submission order within one server is
     * preserved). When server ids follow the coordinator's machine
     * stepping order — as fleet::FleetSim guarantees — the resulting
     * sequence numbering is identical to a serial quantum, making
     * parallel runs byte-identical to serial ones.
     */
    void flushDeferred();

    /** Resolve all work arriving/completing at or before cycle. */
    void advance(uint64_t cycle);

    /** Shard a content key routes to (stable across instances). */
    uint32_t shardOf(uint64_t content_key) const;

    /** Cached variants currently resident in one shard. */
    size_t shardOccupancy(uint32_t shard) const;

    /** Compile cycles spent by one shard's backend. */
    uint64_t shardCompileCycles(uint32_t shard) const;

    const ServiceStats &stats() const { return stats_; }

    /** Hit fraction of all classified requests (hits + coalesced
     *  count as served-without-compile). */
    double hitRate() const;

    /** Publish per-shard occupancy/compile gauges (idempotent). */
    void exportObsMetrics() const;

  private:
    struct Request
    {
        uint64_t arrival = 0;
        uint64_t seq = 0;
        uint32_t server = 0;
        runtime::CompileJob job;
        Response done;
    };

    struct CacheEntry
    {
        uint64_t key = 0;
        uint64_t codeBytes = 0;
    };

    struct Shard
    {
        /** LRU order, most recently used first. */
        std::list<CacheEntry> lru;
        std::unordered_map<uint64_t, std::list<CacheEntry>::iterator>
            index;
        /** Arrival-ordered requests not yet in a closed batch. */
        std::deque<Request> queue;
        /** In-flight compiles: key -> (completion cycle, bytes). */
        std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>>
            inflight;
        /** Completion cycle -> keys finishing then (install order). */
        std::map<uint64_t, std::vector<uint64_t>> completions;
        /** Serial compile backend availability. */
        uint64_t backendFree = 0;
        uint64_t compileCycles = 0;
    };

    ServiceConfig cfg_;
    std::vector<Shard> shards_;
    /** Submitted but not yet routed (sorted into shards at
     *  advance()). */
    std::vector<Request> pending_;
    uint64_t seq_ = 0;
    ServiceStats stats_;
    /** Deferred-submission staging (parallel quanta). */
    bool defer_ = false;
    std::mutex deferMu_;
    std::map<uint32_t, std::vector<Request>> deferred_;

    void advanceShard(uint32_t s, uint64_t cycle);
    /** Move keys completing at or before cycle into the cache. */
    void installCompletions(uint32_t s, Shard &sh, uint64_t cycle);
    void installKey(uint32_t s, Shard &sh, uint64_t key,
                    uint64_t code_bytes);
    void resolveBatch(uint32_t s, Shard &sh, uint64_t close);
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_SERVICE_H
