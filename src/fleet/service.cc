#include "fleet/service.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"
#include "validate/validator.h"

namespace protean {
namespace fleet {

CompileService::CompileService(const ServiceConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numShards == 0)
        fatal("CompileService: numShards must be positive");
    if (cfg_.replication == 0)
        fatal("CompileService: replication must be positive");
    shards_.resize(cfg_.numShards);
}

void
CompileService::setFaultPlan(faults::FaultPlan *plan)
{
    plan_ = plan;
}

void
CompileService::setValidator(const validate::Validator *v)
{
    validator_ = v;
}

uint32_t
CompileService::shardOf(uint64_t content_key) const
{
    return static_cast<uint32_t>(mix64(content_key) %
                                 cfg_.numShards);
}

std::vector<uint32_t>
CompileService::replicaSet(uint64_t content_key) const
{
    uint32_t r = std::min<uint32_t>(cfg_.replication, cfg_.numShards);
    uint32_t primary = shardOf(content_key);
    std::vector<uint32_t> set;
    set.reserve(r);
    for (uint32_t i = 0; i < r; ++i)
        set.push_back((primary + i) % cfg_.numShards);
    return set;
}

bool
CompileService::shardUp(uint32_t shard, uint64_t cycle) const
{
    if (shard >= shards_.size())
        panic("CompileService: bad shard %u", shard);
    return shards_[shard].downUntil <= cycle;
}

size_t
CompileService::shardOccupancy(uint32_t shard) const
{
    if (shard >= shards_.size())
        panic("CompileService: bad shard %u", shard);
    return shards_[shard].index.size();
}

uint64_t
CompileService::shardCompileCycles(uint32_t shard) const
{
    if (shard >= shards_.size())
        panic("CompileService: bad shard %u", shard);
    return shards_[shard].compileCycles;
}

bool
CompileService::shardHasKey(uint32_t shard, uint64_t key) const
{
    if (shard >= shards_.size())
        panic("CompileService: bad shard %u", shard);
    auto it = shards_[shard].index.find(key);
    return it != shards_[shard].index.end() && !it->second->corrupt;
}

double
CompileService::hitRate() const
{
    return stats_.hitRateOf();
}

void
CompileService::admit(Request r)
{
    ++stats_.requests;
    obs::metrics().counter("fleet.service.requests").inc();
    r.seq = seq_++;
    if (plan_ && plan_->enabled()) {
        if (plan_->dropRequest(r.seq)) {
            // Lost in transit: never routed, never answered. The
            // client's timeout is the only thing that notices.
            ++stats_.dropped;
            obs::metrics().counter("fleet.service.dropped").inc();
            if (obs::tracer().enabled()) {
                obs::tracer().instant(
                    "fleet.faults", "drop request",
                    strformat("\"server\":%u,\"seq\":%llu,"
                              "\"trace\":%llu",
                              r.server,
                              static_cast<unsigned long long>(r.seq),
                              static_cast<unsigned long long>(
                                  r.job.traceId)));
            }
            return;
        }
        uint64_t delay = plan_->requestDelay(r.seq);
        if (delay > 0) {
            r.arrival += delay;
            ++stats_.delayed;
            obs::metrics().counter("fleet.service.delayed").inc();
        }
    }
    pending_.push_back(std::move(r));
}

void
CompileService::submit(uint32_t server,
                       const runtime::CompileJob &job,
                       uint64_t arrival_cycle, Response done,
                       uint32_t route_offset)
{
    Request r;
    r.arrival = arrival_cycle;
    r.server = server;
    r.routeOffset = route_offset;
    r.job = job;
    r.done = std::move(done);
    if (defer_) {
        // Worker-thread path: stage only; sequencing, stats and
        // metrics all happen at flushDeferred() on the coordinator.
        std::lock_guard<std::mutex> lock(deferMu_);
        deferred_[server].push_back(std::move(r));
        return;
    }
    admit(std::move(r));
}

void
CompileService::setDeferSubmissions(bool on)
{
    defer_ = on;
}

void
CompileService::flushDeferred()
{
    if (defer_)
        panic("CompileService: flushDeferred() while still "
              "deferring");
    std::map<uint32_t, std::vector<Request>> staged;
    staged.swap(deferred_);
    for (auto &entry : staged) {
        for (Request &r : entry.second)
            admit(std::move(r));
    }
}

void
CompileService::failRequest(Request &r, uint64_t cycle,
                            const char *reason)
{
    runtime::CompileOutcome out;
    out.startCycle = cycle;
    out.readyCycle = cycle + cfg_.net.responseLatencyCycles;
    out.failed = true;
    out.traceId = r.job.traceId;
    ++stats_.failed;
    obs::metrics().counter("fleet.service.failures").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().instant(
            "fleet.faults", "fail request",
            strformat("\"server\":%u,\"reason\":\"%s\","
                      "\"trace\":%llu",
                      r.server, reason,
                      static_cast<unsigned long long>(
                          r.job.traceId)));
        obs::tracer().complete(
            "fleet.faults", "response hop", cycle, out.readyCycle,
            strformat("\"server\":%u,\"trace\":%llu", r.server,
                      static_cast<unsigned long long>(
                          r.job.traceId)));
    }
    r.done(out);
}

void
CompileService::advance(uint64_t cycle)
{
    if (!deferred_.empty())
        panic("CompileService: advance() with unflushed deferred "
              "submissions");
    // Route everything that has reached the service, in strict
    // (arrival, submission) order, preserving per-shard arrival
    // order. Later-arriving requests stay pending.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival != b.arrival ?
                             a.arrival < b.arrival : a.seq < b.seq;
                     });
    std::vector<Request> later;
    for (auto &r : pending_) {
        if (r.arrival > cycle) {
            later.push_back(std::move(r));
            continue;
        }
        // Health-based routing: first live member of the key's
        // replica set, rotated by the request's route offset (hedges
        // and retries prefer a different shard than attempt zero).
        // The fault plan's schedule is the health oracle, so routing
        // does not depend on shard-loop processing order below.
        std::vector<uint32_t> set = replicaSet(r.job.contentKey);
        int target = -1;
        for (size_t i = 0; i < set.size(); ++i) {
            uint32_t s = set[(r.routeOffset + i) % set.size()];
            if (!plan_ || !plan_->shardDownAt(s, r.arrival)) {
                target = static_cast<int>(s);
                if (i > 0) {
                    ++stats_.replicaRoutes;
                    obs::metrics()
                        .counter("fleet.service.replica_routes")
                        .inc();
                }
                break;
            }
        }
        if (target < 0) {
            // Whole replica set down: explicit failure, so the
            // client retries or falls back instead of stalling.
            failRequest(r, r.arrival, "unavailable");
            continue;
        }
        shards_[static_cast<uint32_t>(target)].queue.push_back(
            std::move(r));
    }
    pending_ = std::move(later);

    for (uint32_t s = 0; s < shards_.size(); ++s)
        advanceShard(s, cycle);
}

void
CompileService::advanceShard(uint32_t s, uint64_t cycle)
{
    Shard &sh = shards_[s];
    // Interleave compile completions, injected crashes, and batch
    // closes in cycle order. Ties: completions first (a just-finished
    // variant both beats the crash out the door and is a cache hit
    // for a batch closing the same cycle), then crashes (a batch
    // closing as the shard dies is lost), then closes.
    for (;;) {
        uint64_t next_done = sh.completions.empty() ?
            UINT64_MAX : sh.completions.begin()->first;
        const faults::ShardOutage *outage =
            plan_ ? plan_->peekOutage(s, cycle) : nullptr;
        uint64_t next_crash = outage ? outage->at : UINT64_MAX;
        uint64_t next_close = sh.queue.empty() ?
            UINT64_MAX :
            sh.queue.front().arrival + cfg_.batchWindowCycles;
        if (next_done <= next_crash && next_done <= next_close &&
            next_done <= cycle) {
            installCompletions(s, sh, next_done);
        } else if (next_crash <= next_close &&
                   next_crash <= cycle) {
            crashShard(s, sh, *outage);
            plan_->consumeOutage(s);
        } else if (next_close <= cycle) {
            resolveBatch(s, sh, next_close);
        } else {
            break;
        }
    }
}

void
CompileService::crashShard(uint32_t s, Shard &sh,
                           const faults::ShardOutage &outage)
{
    ++stats_.crashes;
    obs::metrics().counter("fleet.service.crashes").inc();
    if (obs::tracer().enabled()) {
        obs::tracer().complete(
            "fleet.faults", strformat("shard%u down", s), outage.at,
            outage.until,
            strformat("\"lost_entries\":%zu", sh.index.size()));
    }

    stats_.lostEntries += sh.index.size();
    obs::metrics().counter("fleet.service.lost_entries")
        .inc(sh.index.size());
    sh.lru.clear();
    sh.index.clear();

    // Everything stranded on this shard — queued requests, the
    // misses that started in-flight compiles, and their coalesced
    // riders — gets an explicit failure response at the crash cycle,
    // in deterministic (arrival, seq) order. Queued requests with
    // arrivals past the restart were routed here *because* the
    // schedule says the shard will be back; they survive. (Arrivals
    // inside the outage window are never routed here at all.)
    std::vector<Request> stranded;
    std::deque<Request> survivors;
    for (auto &r : sh.queue) {
        if (r.arrival >= outage.until)
            survivors.push_back(std::move(r));
        else
            stranded.push_back(std::move(r));
    }
    sh.queue = std::move(survivors);
    for (auto &[key, ws] : sh.waiters) {
        (void)key;
        for (Waiter &w : ws)
            stranded.push_back(std::move(w.req));
    }
    sh.waiters.clear();
    sh.inflight.clear();
    sh.completions.clear();
    std::sort(stranded.begin(), stranded.end(),
              [](const Request &a, const Request &b) {
                  return a.arrival != b.arrival ?
                      a.arrival < b.arrival : a.seq < b.seq;
              });
    for (Request &r : stranded)
        failRequest(r, outage.at, "shard crash");

    sh.downUntil = outage.until;
    sh.backendFree = outage.until;
}

void
CompileService::installCompletions(uint32_t s, Shard &sh,
                                   uint64_t cycle)
{
    while (!sh.completions.empty() &&
           sh.completions.begin()->first <= cycle) {
        auto it = sh.completions.begin();
        uint64_t done = it->first;
        // The map node must outlive installs (installKey touches
        // only lru/index, never completions, but keys are answered
        // after potential eviction churn).
        std::vector<uint64_t> keys = std::move(it->second);
        sh.completions.erase(it);
        for (uint64_t key : keys) {
            auto inflight = sh.inflight.find(key);
            bool known = inflight != sh.inflight.end();
            uint64_t bytes = known ? inflight->second.bytes : 0;
            runtime::CompileJob job;
            uint32_t attempt = 0;
            if (known) {
                job = std::move(inflight->second.job);
                attempt = inflight->second.attempt;
            }
            sh.inflight.erase(key);

            // Translation-validation install gate (DESIGN.md §12):
            // the finished build must be *proved* equivalent to its
            // request before any shard caches it or any waiter gets
            // it. The fault plan decides — purely from
            // (seed, key, attempt) — whether this build emerged
            // miscompiled; the validator re-derives the candidate,
            // applies that mutation, and judges it. Validation
            // cycles extend the shard backend like compile cycles.
            uint64_t install_at = done;
            if (validator_ && known) {
                faults::MiscompileSpec spec;
                const faults::MiscompileSpec *inject =
                    plan_ && plan_->miscompile(key, attempt, &spec) ?
                    &spec : nullptr;
                validate::Verdict v =
                    validator_->validate(job, inject);
                install_at = done + v.cycles;
                sh.backendFree =
                    std::max(sh.backendFree, install_at);
                stats_.validateCycles += v.cycles;
                obs::metrics().counter("fleet.validate.cycles")
                    .inc(v.cycles);
                if (v.escalated) {
                    ++stats_.validateEscalations;
                    obs::metrics()
                        .counter("fleet.validate.escalate")
                        .inc();
                }
                if (v.injectedApplied) {
                    ++stats_.miscompilesInjected;
                    obs::metrics()
                        .counter("fleet.validate.miscompile_injected")
                        .inc();
                }
                if (!v.pass) {
                    ++stats_.validateFails;
                    obs::metrics().counter("fleet.validate.fail")
                        .inc();
                    if (obs::tracer().enabled()) {
                        obs::tracer().instant(
                            strformat("fleet.shard%u", s),
                            "validate reject",
                            strformat(
                                "\"key\":%llu,\"tier\":%u,"
                                "\"reason\":\"%s\"",
                                static_cast<unsigned long long>(key),
                                v.tier, v.reason.c_str()));
                    }
                    if (attempt + 1 >= kMaxCompileAttempts) {
                        // Give up on this key: answer the waiters
                        // with explicit failures so clients retry
                        // or fall back to a local compile.
                        auto ws = sh.waiters.find(key);
                        if (ws != sh.waiters.end()) {
                            std::vector<Waiter> waiters =
                                std::move(ws->second);
                            sh.waiters.erase(ws);
                            for (Waiter &w : waiters)
                                failRequest(w.req, install_at,
                                            "validate reject");
                        }
                    } else {
                        // Reject-and-recompile: the bad build is
                        // discarded, a fresh attempt queues on the
                        // same serial backend, and the waiters stay
                        // registered for its completion.
                        ++stats_.validateRecompiles;
                        uint64_t start =
                            std::max(install_at, sh.backendFree);
                        uint64_t redone = start + job.costCycles;
                        sh.backendFree = redone;
                        sh.compileCycles += job.costCycles;
                        ++stats_.compiles;
                        stats_.compileCycles += job.costCycles;
                        obs::metrics()
                            .counter("fleet.service.compiles")
                            .inc();
                        obs::metrics()
                            .counter("fleet.service.compile_cycles")
                            .inc(job.costCycles);
                        obs::metrics()
                            .histogram(
                                "fleet.service.compile_cycles_hist")
                            .observe(static_cast<double>(
                                job.costCycles));
                        sh.completions[redone].push_back(key);
                        sh.inflight[key] = Shard::Inflight{
                            redone, bytes, std::move(job),
                            attempt + 1};
                    }
                    continue;
                }
                ++stats_.validatePasses;
                obs::metrics().counter("fleet.validate.pass").inc();
                if (v.injectedApplied) {
                    // The gate passed a build the plan says was
                    // miscompiled: a bad install. bench/fleet_faults
                    // gates on this staying zero.
                    ++stats_.miscompilesInstalled;
                    obs::metrics()
                        .counter(
                            "fleet.validate.miscompile_installed")
                        .inc();
                }
            }

            installKey(s, sh, key, bytes, install_at);

            // Replication: mirror the fresh variant onto the other
            // live members of the key's replica set so a
            // single-shard crash loses no unique work. Skipped when
            // the target is down at install time or crashed after
            // the install would have landed (the copy would have
            // been wiped anyway — same final state, any processing
            // order).
            for (uint32_t t : replicaSet(key)) {
                if (t == s)
                    continue;
                Shard &tsh = shards_[t];
                if ((plan_ && plan_->shardDownAt(t, install_at)) ||
                    tsh.downUntil > install_at)
                    continue;
                if (tsh.index.count(key))
                    continue;
                installKey(t, tsh, key, bytes, install_at);
                ++stats_.replicaInstalls;
                obs::metrics()
                    .counter("fleet.service.replica_installs")
                    .inc();
            }

            // Answer everyone waiting on this compile: the miss
            // that started it, then its coalesced riders, in
            // arrival order.
            auto ws = sh.waiters.find(key);
            if (ws == sh.waiters.end())
                continue;
            std::vector<Waiter> waiters = std::move(ws->second);
            sh.waiters.erase(ws);
            for (Waiter &w : waiters) {
                uint64_t ship = w.req.job.codeBytes;
                uint64_t ready = install_at +
                    cfg_.net.responseLatencyCycles +
                    cfg_.net.transferCycles(ship);
                runtime::CompileOutcome out;
                out.startCycle = w.startCycle;
                out.readyCycle = ready;
                out.remoteHit = !w.isMiss;
                respond(w.req, out,
                        w.isMiss ? "miss" : "coalesced", s);
            }
        }
    }
}

void
CompileService::installKey(uint32_t s, Shard &sh, uint64_t key,
                           uint64_t code_bytes, uint64_t cycle)
{
    if (cfg_.shardCapacity == 0)
        return; // cache disabled: compile results are not retained
    if (sh.index.count(key))
        return;
    if (sh.index.size() >= cfg_.shardCapacity) {
        uint64_t victim_key = sh.lru.back().key;
        sh.index.erase(victim_key);
        sh.lru.pop_back();
        ++stats_.evictions;
        obs::metrics().counter("fleet.service.evictions").inc();
        if (obs::tracer().enabled()) {
            obs::tracer().instant(
                strformat("fleet.shard%u", s), "evict",
                strformat("\"key\":%llu",
                          static_cast<unsigned long long>(
                              victim_key)));
        }
    }
    CacheEntry entry{key, code_bytes, false};
    if (plan_ && plan_->corruptCachedEntry(key, cycle)) {
        // At-rest corruption: the entry sits in the cache with a bad
        // checksum until the next hit rejects it.
        entry.corrupt = true;
    }
    sh.lru.push_front(entry);
    sh.index[key] = sh.lru.begin();
}

void
CompileService::respond(Request &r, runtime::CompileOutcome out,
                        const char *verdict, uint32_t shard)
{
    const NetworkModel &net = cfg_.net;
    if (plan_ && plan_->corruptResponse(r.seq)) {
        out.corrupted = true;
        ++stats_.corruptResponses;
        obs::metrics().counter("fleet.service.corrupt_responses")
            .inc();
        verdict = "corrupt";
    }
    stats_.bytesOut += r.job.codeBytes;
    out.traceId = r.job.traceId;
    uint64_t send = r.arrival >= net.requestLatencyCycles ?
        r.arrival - net.requestLatencyCycles : 0;
    obs::metrics().histogram("fleet.service.latency")
        .observe(static_cast<double>(out.readyCycle - send));
    if (obs::tracer().enabled()) {
        std::string lane = strformat("fleet.shard%u", shard);
        obs::tracer().complete(
            lane, strformat("request %s", r.job.name.c_str()),
            r.arrival, out.readyCycle,
            strformat("\"server\":%u,\"outcome\":\"%s\","
                      "\"trace\":%llu",
                      r.server, verdict,
                      static_cast<unsigned long long>(
                          r.job.traceId)));
        // The service -> client network hop (latency + payload
        // transfer) as its own span, so a slow flip visibly
        // decomposes into queue/compile/network time.
        uint64_t hop = net.responseLatencyCycles +
            net.transferCycles(r.job.codeBytes);
        uint64_t hop_start =
            out.readyCycle >= hop ? out.readyCycle - hop : 0;
        obs::tracer().complete(
            lane, "response hop", hop_start, out.readyCycle,
            strformat("\"server\":%u,\"trace\":%llu,\"bytes\":%llu",
                      r.server,
                      static_cast<unsigned long long>(r.job.traceId),
                      static_cast<unsigned long long>(
                          r.job.codeBytes)));
    }
    r.done(out);
}

void
CompileService::resolveBatch(uint32_t s, Shard &sh, uint64_t close)
{
    std::vector<Request> batch;
    while (!sh.queue.empty() && sh.queue.front().arrival <= close) {
        batch.push_back(std::move(sh.queue.front()));
        sh.queue.pop_front();
    }
    ++stats_.batches;
    obs::metrics().counter("fleet.service.batches").inc();
    obs::metrics().histogram("fleet.service.batch_size")
        .observe(static_cast<double>(batch.size()));
    const bool traced = obs::tracer().enabled();
    std::string lane;
    if (traced) {
        lane = strformat("fleet.shard%u", s);
        obs::tracer().instant(
            lane, "batch_close",
            strformat("\"size\":%zu", batch.size()));
    }

    const NetworkModel &net = cfg_.net;
    for (Request &r : batch) {
        uint64_t key = r.job.contentKey;
        if (traced && close > r.arrival) {
            // Time spent queued at the shard before its batch
            // closed: the first cross-server segment of the
            // request's trace.
            obs::tracer().complete(
                lane, "queue wait", r.arrival, close,
                strformat("\"server\":%u,\"trace\":%llu", r.server,
                          static_cast<unsigned long long>(
                              r.job.traceId)));
        }

        bool corrupt_reject = false;
        auto hit = sh.index.find(key);
        if (hit != sh.index.end() && hit->second->corrupt) {
            // Checksum verification: the cached variant is
            // corrupted at rest. Reject it and recompile instead of
            // shipping garbage.
            ++stats_.corruptRejects;
            obs::metrics().counter("fleet.service.corrupt_rejects")
                .inc();
            if (traced) {
                obs::tracer().instant(
                    lane, "checksum reject",
                    strformat("\"key\":%llu,\"trace\":%llu",
                              static_cast<unsigned long long>(key),
                              static_cast<unsigned long long>(
                                  r.job.traceId)));
            }
            sh.lru.erase(hit->second);
            sh.index.erase(hit);
            hit = sh.index.end();
            corrupt_reject = true;
        }
        auto inflight = sh.inflight.find(key);
        if (hit != sh.index.end()) {
            // Cache hit: touch LRU, ship the cached variant now.
            sh.lru.splice(sh.lru.begin(), sh.lru, hit->second);
            uint64_t done = close + cfg_.lookupCycles;
            runtime::CompileOutcome out;
            out.startCycle = close;
            out.readyCycle = done + net.responseLatencyCycles +
                net.transferCycles(hit->second->codeBytes);
            out.remoteHit = true;
            ++stats_.hits;
            obs::metrics().counter("fleet.service.hits").inc();
            respond(r, out, "hit", s);
        } else if (inflight != sh.inflight.end()) {
            // Another server's miss is already compiling this key:
            // coalesce onto its completion (answered when the
            // compile finishes — or failed if the shard crashes
            // first).
            ++stats_.coalesced;
            obs::metrics().counter("fleet.service.coalesced").inc();
            sh.waiters[key].push_back(
                Waiter{std::move(r), false, close});
        } else {
            // Miss: compile on this shard's serial backend. The
            // requester waits on the completion like any coalesced
            // rider, so a crash mid-compile strands it (explicit
            // failure) rather than pretending the variant shipped.
            uint64_t start = std::max(close + cfg_.lookupCycles,
                                      sh.backendFree);
            uint64_t done = start + r.job.costCycles;
            sh.backendFree = done;
            sh.inflight[key] =
                Shard::Inflight{done, r.job.codeBytes, r.job, 0};
            sh.completions[done].push_back(key);
            sh.compileCycles += r.job.costCycles;
            ++stats_.compiles;
            stats_.compileCycles += r.job.costCycles;
            if (corrupt_reject) {
                // Not a miss: the key *was* cached, its payload was
                // just corrupt at rest. Accounted separately so the
                // hit rate reflects cache coverage, not disk rot.
                ++stats_.corruptRecompiles;
                obs::metrics()
                    .counter("fleet.cache.corrupt_reject")
                    .inc();
            } else {
                ++stats_.misses;
                obs::metrics().counter("fleet.service.misses").inc();
            }
            obs::metrics().counter("fleet.service.compiles").inc();
            obs::metrics().counter("fleet.service.compile_cycles")
                .inc(r.job.costCycles);
            obs::metrics()
                .histogram("fleet.service.compile_cycles_hist")
                .observe(static_cast<double>(r.job.costCycles));
            if (traced) {
                obs::tracer().complete(
                    lane,
                    strformat("compile %s", r.job.name.c_str()),
                    start, done,
                    strformat("\"key\":%llu,\"server\":%u,"
                              "\"trace\":%llu",
                              static_cast<unsigned long long>(key),
                              r.server,
                              static_cast<unsigned long long>(
                                  r.job.traceId)));
            }
            sh.waiters[key].push_back(
                Waiter{std::move(r), true, start});
        }
    }
}

void
CompileService::exportObsMetrics() const
{
    obs::MetricsRegistry &reg = obs::metrics();
    for (uint32_t s = 0; s < shards_.size(); ++s) {
        std::string p = strformat("fleet.shard%u.", s);
        reg.gauge(p + "occupancy")
            .set(static_cast<double>(shards_[s].index.size()));
        reg.gauge(p + "compile_cycles")
            .set(static_cast<double>(shards_[s].compileCycles));
    }
    reg.gauge("fleet.service.hit_rate").set(hitRate());
}

} // namespace fleet
} // namespace protean
