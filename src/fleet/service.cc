#include "fleet/service.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace fleet {

namespace {

/** SplitMix64 finalizer: spreads content keys across shards. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

CompileService::CompileService(const ServiceConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numShards == 0)
        fatal("CompileService: numShards must be positive");
    shards_.resize(cfg_.numShards);
}

uint32_t
CompileService::shardOf(uint64_t content_key) const
{
    return static_cast<uint32_t>(mix64(content_key) %
                                 cfg_.numShards);
}

size_t
CompileService::shardOccupancy(uint32_t shard) const
{
    if (shard >= shards_.size())
        panic("CompileService: bad shard %u", shard);
    return shards_[shard].index.size();
}

uint64_t
CompileService::shardCompileCycles(uint32_t shard) const
{
    if (shard >= shards_.size())
        panic("CompileService: bad shard %u", shard);
    return shards_[shard].compileCycles;
}

double
CompileService::hitRate() const
{
    uint64_t classified = stats_.hits + stats_.misses +
        stats_.coalesced;
    if (classified == 0)
        return 0.0;
    return static_cast<double>(stats_.hits + stats_.coalesced) /
        static_cast<double>(classified);
}

void
CompileService::submit(uint32_t server,
                       const runtime::CompileJob &job,
                       uint64_t arrival_cycle, Response done)
{
    Request r;
    r.arrival = arrival_cycle;
    r.server = server;
    r.job = job;
    r.done = std::move(done);
    if (defer_) {
        // Worker-thread path: stage only; sequencing, stats and
        // metrics all happen at flushDeferred() on the coordinator.
        std::lock_guard<std::mutex> lock(deferMu_);
        deferred_[server].push_back(std::move(r));
        return;
    }
    ++stats_.requests;
    obs::metrics().counter("fleet.service.requests").inc();
    r.seq = seq_++;
    pending_.push_back(std::move(r));
}

void
CompileService::setDeferSubmissions(bool on)
{
    defer_ = on;
}

void
CompileService::flushDeferred()
{
    if (defer_)
        panic("CompileService: flushDeferred() while still "
              "deferring");
    std::map<uint32_t, std::vector<Request>> staged;
    staged.swap(deferred_);
    for (auto &entry : staged) {
        for (Request &r : entry.second) {
            ++stats_.requests;
            obs::metrics().counter("fleet.service.requests").inc();
            r.seq = seq_++;
            pending_.push_back(std::move(r));
        }
    }
}

void
CompileService::advance(uint64_t cycle)
{
    if (!deferred_.empty())
        panic("CompileService: advance() with unflushed deferred "
              "submissions");
    // Route everything that has reached the service, in strict
    // (arrival, submission) order, preserving per-shard arrival
    // order. Later-arriving requests stay pending.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival != b.arrival ?
                             a.arrival < b.arrival : a.seq < b.seq;
                     });
    std::vector<Request> later;
    for (auto &r : pending_) {
        if (r.arrival <= cycle)
            shards_[shardOf(r.job.contentKey)].queue.push_back(
                std::move(r));
        else
            later.push_back(std::move(r));
    }
    pending_ = std::move(later);

    for (uint32_t s = 0; s < shards_.size(); ++s)
        advanceShard(s, cycle);
}

void
CompileService::advanceShard(uint32_t s, uint64_t cycle)
{
    Shard &sh = shards_[s];
    // Interleave compile completions and batch closes in cycle order
    // (completions first on ties, so a just-finished variant is a
    // cache hit for a batch closing the same cycle).
    for (;;) {
        uint64_t next_done = sh.completions.empty() ?
            UINT64_MAX : sh.completions.begin()->first;
        uint64_t next_close = sh.queue.empty() ?
            UINT64_MAX :
            sh.queue.front().arrival + cfg_.batchWindowCycles;
        if (next_done <= next_close && next_done <= cycle) {
            installCompletions(s, sh, next_done);
        } else if (next_close <= cycle) {
            resolveBatch(s, sh, next_close);
        } else {
            break;
        }
    }
}

void
CompileService::installCompletions(uint32_t s, Shard &sh,
                                   uint64_t cycle)
{
    while (!sh.completions.empty() &&
           sh.completions.begin()->first <= cycle) {
        auto it = sh.completions.begin();
        for (uint64_t key : it->second) {
            auto inflight = sh.inflight.find(key);
            uint64_t bytes = inflight == sh.inflight.end() ?
                0 : inflight->second.second;
            sh.inflight.erase(key);
            installKey(s, sh, key, bytes);
        }
        sh.completions.erase(it);
    }
}

void
CompileService::installKey(uint32_t s, Shard &sh, uint64_t key,
                           uint64_t code_bytes)
{
    if (cfg_.shardCapacity == 0)
        return; // cache disabled: compile results are not retained
    if (sh.index.count(key))
        return;
    if (sh.index.size() >= cfg_.shardCapacity) {
        uint64_t victim_key = sh.lru.back().key;
        sh.index.erase(victim_key);
        sh.lru.pop_back();
        ++stats_.evictions;
        obs::metrics().counter("fleet.service.evictions").inc();
        obs::tracer().instant(
            strformat("fleet.shard%u", s), "evict",
            strformat("\"key\":%llu",
                      static_cast<unsigned long long>(victim_key)));
    }
    sh.lru.push_front(CacheEntry{key, code_bytes});
    sh.index[key] = sh.lru.begin();
}

void
CompileService::resolveBatch(uint32_t s, Shard &sh, uint64_t close)
{
    std::vector<Request> batch;
    while (!sh.queue.empty() && sh.queue.front().arrival <= close) {
        batch.push_back(std::move(sh.queue.front()));
        sh.queue.pop_front();
    }
    ++stats_.batches;
    obs::metrics().counter("fleet.service.batches").inc();
    obs::metrics().histogram("fleet.service.batch_size",
                             {1, 2, 4, 8, 16, 32, 64, 128})
        .observe(static_cast<double>(batch.size()));
    std::string lane = strformat("fleet.shard%u", s);
    obs::tracer().instant(lane, "batch_close",
                          strformat("\"size\":%zu", batch.size()));

    const NetworkModel &net = cfg_.net;
    for (Request &r : batch) {
        uint64_t key = r.job.contentKey;
        runtime::CompileOutcome out;
        const char *verdict = nullptr;

        auto hit = sh.index.find(key);
        auto inflight = sh.inflight.find(key);
        if (hit != sh.index.end()) {
            // Cache hit: touch LRU, ship the cached variant.
            sh.lru.splice(sh.lru.begin(), sh.lru, hit->second);
            uint64_t done = close + cfg_.lookupCycles;
            out.startCycle = close;
            out.readyCycle = done + net.responseLatencyCycles +
                net.transferCycles(hit->second->codeBytes);
            out.remoteHit = true;
            ++stats_.hits;
            stats_.bytesOut += hit->second->codeBytes;
            obs::metrics().counter("fleet.service.hits").inc();
            verdict = "hit";
        } else if (inflight != sh.inflight.end()) {
            // Another server's miss is already compiling this key:
            // coalesce onto its completion.
            uint64_t done = inflight->second.first;
            out.startCycle = close;
            out.readyCycle = done + net.responseLatencyCycles +
                net.transferCycles(r.job.codeBytes);
            out.remoteHit = true;
            ++stats_.coalesced;
            stats_.bytesOut += r.job.codeBytes;
            obs::metrics().counter("fleet.service.coalesced").inc();
            verdict = "coalesced";
        } else {
            // Miss: compile on this shard's serial backend.
            uint64_t start = std::max(close + cfg_.lookupCycles,
                                      sh.backendFree);
            uint64_t done = start + r.job.costCycles;
            sh.backendFree = done;
            sh.inflight[key] = {done, r.job.codeBytes};
            sh.completions[done].push_back(key);
            sh.compileCycles += r.job.costCycles;
            ++stats_.misses;
            ++stats_.compiles;
            stats_.compileCycles += r.job.costCycles;
            stats_.bytesOut += r.job.codeBytes;
            obs::metrics().counter("fleet.service.misses").inc();
            obs::metrics().counter("fleet.service.compiles").inc();
            obs::metrics().counter("fleet.service.compile_cycles")
                .inc(r.job.costCycles);
            obs::metrics()
                .histogram("fleet.service.compile_cycles_hist")
                .observe(static_cast<double>(r.job.costCycles));
            obs::tracer().complete(
                lane, strformat("compile %s", r.job.name.c_str()),
                start, done,
                strformat("\"key\":%llu,\"server\":%u",
                          static_cast<unsigned long long>(key),
                          r.server));
            out.startCycle = start;
            out.readyCycle = done + net.responseLatencyCycles +
                net.transferCycles(r.job.codeBytes);
            out.remoteHit = false;
            verdict = "miss";
        }

        uint64_t send = r.arrival >= net.requestLatencyCycles ?
            r.arrival - net.requestLatencyCycles : 0;
        obs::metrics().histogram("fleet.service.latency")
            .observe(static_cast<double>(out.readyCycle - send));
        obs::tracer().complete(
            lane, strformat("request %s", r.job.name.c_str()),
            r.arrival, out.readyCycle,
            strformat("\"server\":%u,\"outcome\":\"%s\"", r.server,
                      verdict));
        r.done(out);
    }
}

void
CompileService::exportObsMetrics() const
{
    obs::MetricsRegistry &reg = obs::metrics();
    for (uint32_t s = 0; s < shards_.size(); ++s) {
        std::string p = strformat("fleet.shard%u.", s);
        reg.gauge(p + "occupancy")
            .set(static_cast<double>(shards_[s].index.size()));
        reg.gauge(p + "compile_cycles")
            .set(static_cast<double>(shards_[s].compileCycles));
    }
    reg.gauge("fleet.service.hit_rate").set(hitRate());
}

} // namespace fleet
} // namespace protean
