/**
 * @file
 * Lockstep cluster coordinator.
 *
 * Advances N independent sim::Machines and the shared CompileService
 * through global time together: machines run one quantum each (in
 * fixed server order), then the service resolves everything that
 * reached it (advance(T)). The quantum is capped at the service's
 * network round trip, so every response's ready cycle lands at or
 * after the barrier that produced it — responses are scheduled into
 * each machine's future, never its past, and the whole simulation
 * stays deterministic (see DESIGN.md §7 for the rules).
 */

#ifndef PROTEAN_FLEET_CLUSTER_H
#define PROTEAN_FLEET_CLUSTER_H

#include <vector>

#include "fleet/service.h"
#include "sim/machine.h"

namespace protean {
namespace fleet {

/** Runs machines + service in lockstep quanta. */
class Cluster
{
  public:
    explicit Cluster(CompileService &svc);

    /** Register a machine (non-owning). All machines must share the
     *  cluster's current time. */
    void addMachine(sim::Machine &m);

    /** Advance everything to an absolute global cycle. */
    void run(uint64_t until_cycle);

    /** Advance everything by a duration. */
    void runFor(uint64_t cycles) { run(now_ + cycles); }

    uint64_t now() const { return now_; }
    uint64_t quantum() const { return quantum_; }
    size_t numMachines() const { return machines_.size(); }

  private:
    CompileService &svc_;
    std::vector<sim::Machine *> machines_;
    uint64_t now_ = 0;
    uint64_t quantum_;
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_CLUSTER_H
