/**
 * @file
 * Lockstep cluster coordinator.
 *
 * Advances N independent sim::Machines and the shared CompileService
 * through global time together: machines run one quantum each, then
 * the service resolves everything that reached it (advance(T)). The
 * quantum is capped at the service's network round trip, so every
 * response's ready cycle lands at or after the barrier that produced
 * it — responses are scheduled into each machine's future, never its
 * past, and the whole simulation stays deterministic (see DESIGN.md
 * §7 for the rules).
 *
 * Within one quantum, machines never read each other's state: their
 * only shared interaction is submitting compile requests to the
 * service, which is resolved at the barrier. setParallel(N) exploits
 * that — machines advance concurrently on a worker pool while the
 * service stages submissions, then the coordinator replays them in
 * fixed machine order, so the parallel run is byte-identical to the
 * serial one (DESIGN.md §8). Tracing forces the serial path: the
 * tracer's event log is append-ordered, and only serial stepping
 * keeps that order reproducible.
 */

#ifndef PROTEAN_FLEET_CLUSTER_H
#define PROTEAN_FLEET_CLUSTER_H

#include <functional>
#include <memory>
#include <vector>

#include "fleet/service.h"
#include "sim/machine.h"
#include "support/threadpool.h"

namespace protean {
namespace fleet {

/** Runs machines + service in lockstep quanta. */
class Cluster
{
  public:
    explicit Cluster(CompileService &svc);
    ~Cluster();

    /** Register a machine (non-owning). All machines must share the
     *  cluster's current time. Registration order defines the serial
     *  stepping order; for byte-identical parallel runs, clients'
     *  server ids must follow it (FleetSim registers in id order). */
    void addMachine(sim::Machine &m);

    /**
     * Advance machines on up to `workers` threads per quantum
     * (0 or 1 = serial). The count is clamped to
     * WorkerPool::recommendedLanes() — oversubscribed lanes only
     * spin against each other — with a warning and a host-scoped
     * `fleet.pool.clamped` counter when the clamp bites, so a
     * 1-hw-thread host degrades to serial instead of a 0.2x cliff.
     * Exports stay byte-identical to serial runs; when the tracer is
     * enabled, quanta silently run serially so trace event order is
     * preserved too.
     */
    void setParallel(uint32_t workers);
    /** Effective (post-clamp) worker count. */
    uint32_t parallel() const { return workers_; }

    /**
     * Attach a fault plan (nullptr = benign). The cluster consults it
     * at each quantum start for whole-server pauses — scheduler
     * stalls, reboots, antagonists — applied by stealing cycles on
     * every core of the paused machine. The decision is a pure hash
     * of (server index, quantum start), applied by the coordinator
     * before machines step, so serial and parallel runs pause
     * identically.
     */
    void setFaultPlan(faults::FaultPlan *plan);

    /**
     * Install a callback invoked on the coordinator thread at every
     * barrier, after the service has resolved the quantum, with the
     * new global cycle. Machines are quiescent at that point, so the
     * hook may read any of their state (the telemetry hub scrapes
     * here). One hook; set to nullptr to remove.
     */
    void setBarrierHook(std::function<void(uint64_t)> hook)
    {
        barrierHook_ = std::move(hook);
    }

    /** Advance everything to an absolute global cycle. */
    void run(uint64_t until_cycle);

    /** Advance everything by a duration. */
    void runFor(uint64_t cycles) { run(now_ + cycles); }

    uint64_t now() const { return now_; }
    uint64_t quantum() const { return quantum_; }
    /** Injected whole-server pauses applied so far. */
    uint64_t pausesApplied() const { return pauses_; }
    size_t numMachines() const { return machines_.size(); }

  private:
    CompileService &svc_;
    std::vector<sim::Machine *> machines_;
    uint64_t now_ = 0;
    uint64_t quantum_;
    uint32_t workers_ = 1;
    std::unique_ptr<WorkerPool> pool_;
    faults::FaultPlan *plan_ = nullptr;
    uint64_t pauses_ = 0;
    std::function<void(uint64_t)> barrierHook_;

    /** Apply injected whole-server pauses for the quantum starting
     *  at now_ (coordinator thread, before machines step). */
    void applyServerPauses();
};

} // namespace fleet
} // namespace protean

#endif // PROTEAN_FLEET_CLUSTER_H
