#include "fleet/scoreboard.h"

#include <set>

#include "support/logging.h"

namespace protean {
namespace fleet {

void
VariantScoreboard::recordFlip(const runtime::FlipRecord &record)
{
    obs::ProfileKey key;
    key.funcHash = record.funcHash;
    key.mask = record.mask;
    key.phase = record.phase;
    VariantOutcome &o = outcomes_[key];
    ++o.flips;
    if (record.ipcAfter > record.ipcBefore)
        ++o.wins;
    o.ipcDeltaSum += record.ipcAfter - record.ipcBefore;
    ++totalFlips_;
}

const VariantOutcome *
VariantScoreboard::outcome(uint64_t func_hash,
                           const std::string &mask,
                           uint32_t phase) const
{
    obs::ProfileKey key;
    key.funcHash = func_hash;
    key.mask = mask;
    key.phase = phase;
    auto it = outcomes_.find(key);
    return it == outcomes_.end() ? nullptr : &it->second;
}

std::string
VariantScoreboard::recommendMask(uint64_t func_hash,
                                 uint32_t phase) const
{
    // The map is ordered by (hash, mask, phase): buckets of this
    // function appear consecutively, smaller masks first, so strict
    // '>' keeps the smaller mask on score ties.
    std::string best;
    double bestScore = 0.0;
    bool found = false;
    for (const auto &[key, o] : outcomes_) {
        if (key.funcHash != func_hash || key.phase != phase)
            continue;
        double s = o.score();
        if (!found || s > bestScore) {
            found = true;
            best = key.mask;
            bestScore = s;
        }
    }
    return best;
}

std::string
VariantScoreboard::toJson() const
{
    std::string out = "{\n\"outcomes\": [";
    bool first = true;
    for (const auto &[key, o] : outcomes_) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        out += strformat(
            "{\"hash\": \"%llx\", \"mask\": \"%s\", \"phase\": %u, "
            "\"flips\": %llu, \"wins\": %llu, "
            "\"mean_ipc_delta\": %.6f}",
            static_cast<unsigned long long>(key.funcHash),
            key.mask.c_str(), key.phase,
            static_cast<unsigned long long>(o.flips),
            static_cast<unsigned long long>(o.wins), o.score());
    }
    out += first ? "],\n" : "\n],\n";

    // One advisory line per (function, phase) ever flipped.
    std::set<std::pair<uint64_t, uint32_t>> pairs;
    for (const auto &[key, o] : outcomes_)
        pairs.emplace(key.funcHash, key.phase);
    out += "\"recommendations\": [";
    first = true;
    for (const auto &[hash, phase] : pairs) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        out += strformat(
            "{\"hash\": \"%llx\", \"phase\": %u, \"mask\": \"%s\"}",
            static_cast<unsigned long long>(hash), phase,
            recommendMask(hash, phase).c_str());
    }
    out += first ? "],\n" : "\n],\n";
    out += strformat("\"total_flips\": %llu\n}\n",
                     static_cast<unsigned long long>(totalFlips_));
    return out;
}

} // namespace fleet
} // namespace protean
