/**
 * @file
 * PISA: the protean virtual instruction set.
 *
 * PISA is the machine-level target of the compiler backend and the
 * input of the simulated cores. It is held in decoded form (one
 * MInst struct per instruction; code addresses are indices into a
 * flat instruction array).
 *
 * Register convention (enforced by the code generator):
 *  - r0..r3   argument / return-value registers, caller-managed;
 *  - r4..r63  general registers; the hardware call stack saves and
 *             restores r4..r63 across calls (register windows), so
 *             compiled code needs no callee-save sequences.
 *
 * Non-temporal support mirrors x86 prefetchnta: a Hint instruction
 * placed before a load marks the line's fills as non-temporal, and
 * the load itself carries the nonTemporal flag that the memory
 * hierarchy's insertion policy consumes.
 */

#ifndef PROTEAN_ISA_MINST_H
#define PROTEAN_ISA_MINST_H

#include <cstdint>
#include <string>

#include "ir/instruction.h"

namespace protean {
namespace isa {

/** Index into a process's flat code array. */
using CodeAddr = uint32_t;

constexpr CodeAddr kInvalidCodeAddr = 0xffffffffu;

/** Total machine registers. */
constexpr uint32_t kNumMachineRegs = 64;
/** First general (window-saved) register. */
constexpr uint32_t kFirstGeneralReg = 4;

/** Machine opcodes. */
enum class MOp : uint8_t {
    Const,        ///< rd = imm
    Mov,          ///< rd = rs1
    Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe,
    Load,         ///< rd = mem64[rs1 + imm]
    Store,        ///< mem64[rs1 + imm] = rs2
    Hint,         ///< prefetchnta-style hint for [rs1 + imm]
    Jmp,          ///< pc = target
    Bnz,          ///< if rs1 != 0: pc = target
    CallDirect,   ///< push window; pc = target
    CallIndirect, ///< push window; pc = mem64[evt + 8*evtSlot]
    Ret,          ///< pop window; pc = return address
    Halt,         ///< stop the process
    Nop,
};

constexpr uint8_t kNumMOps = static_cast<uint8_t>(MOp::Nop) + 1;

/** Printable mnemonic. */
const char *mopName(MOp op);

/** One decoded machine instruction. */
struct MInst
{
    MOp op = MOp::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    /** Constant / memory offset (bytes). */
    int64_t imm = 0;
    /** Branch or direct-call target. */
    CodeAddr target = kInvalidCodeAddr;
    /** EVT slot for CallIndirect. */
    uint32_t evtSlot = 0;
    /** Static load id (Load/Hint), from the IR numbering. */
    ir::LoadId loadId = ir::kInvalidId;
    /** Non-temporal insertion for this access (Load/Hint). */
    bool nonTemporal = false;

    /** True for ops that end a basic block at machine level. */
    bool isControlFlow() const;
};

/** Disassemble one instruction (addr only affects formatting). */
std::string disassemble(const MInst &inst, CodeAddr addr = 0);

} // namespace isa
} // namespace protean

#endif // PROTEAN_ISA_MINST_H
