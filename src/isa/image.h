/**
 * @file
 * Executable image format.
 *
 * An Image is the output of the compiler: machine code plus an
 * initialized data segment. For protean binaries the data segment
 * additionally carries the metadata the paper describes (Section
 * III-A2): a discovery header, the Edge Virtualization Table (EVT),
 * and the compressed serialized IR.
 *
 * Data-segment layout (byte addresses within the process):
 *
 *   0x00  header: magic, evtBase, evtCount, irBase, irSizeBytes,
 *         dataSizeBytes (6 x 8 bytes)
 *   evtBase            EVT: one 8-byte code address per slot
 *   irBase             compressed IR blob (byte-packed)
 *   globals            each global, 64-byte aligned
 *
 * Non-protean images keep the header with evtCount == 0 and no IR.
 */

#ifndef PROTEAN_ISA_IMAGE_H
#define PROTEAN_ISA_IMAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "isa/minst.h"

namespace protean {
namespace isa {

/** Magic value in the discovery header. */
constexpr uint64_t kImageMagic = 0x50524f5445414e31ULL; // "PROTEAN1"

/** Byte offsets of the discovery-header fields. */
enum HeaderField : uint64_t {
    kHdrMagic = 0,
    kHdrEvtBase = 8,
    kHdrEvtCount = 16,
    kHdrIrBase = 24,
    kHdrIrSize = 32,
    kHdrDataSize = 40,
    kHdrBytes = 48,
};

/** Compiled-function descriptor. */
struct FunctionInfo
{
    std::string name;
    ir::FuncId irFunc = ir::kInvalidId;
    CodeAddr entry = kInvalidCodeAddr;
    CodeAddr end = kInvalidCodeAddr; ///< one past the last instruction
};

/** Placement of globals inside the data segment. */
struct DataLayout
{
    /** Byte base address of each global, indexed by GlobalId. */
    std::vector<uint64_t> globalBase;
    /** Total data-segment size in bytes. */
    uint64_t sizeBytes = kHdrBytes;

    uint64_t base(ir::GlobalId g) const;
};

/** An executable image. */
struct Image
{
    std::string name;
    /** Flat code array; CodeAddr indexes into it. */
    std::vector<MInst> code;
    /** One entry per compiled function, in ir::FuncId order. */
    std::vector<FunctionInfo> functions;
    /** Global placement. */
    DataLayout layout;
    /** Initial data-segment contents (bytes). */
    std::vector<uint8_t> initialData;
    /** Entry function (index into functions). */
    ir::FuncId entryFunc = ir::kInvalidId;

    // Protean metadata (zero / empty for plain binaries).
    uint64_t evtBase = 0;
    uint32_t evtCount = 0;
    /** EVT slot -> function it virtualizes. */
    std::vector<ir::FuncId> evtSlotFunc;
    uint64_t irBase = 0;
    uint64_t irSizeBytes = 0;

    /** True when the image carries protean metadata. */
    bool isProtean() const { return evtCount > 0; }

    /** Entry code address of the program. */
    CodeAddr entryPoint() const;

    /** Function containing a code address, or nullptr (e.g. for
     *  runtime-added variants not in the static table). */
    const FunctionInfo *functionAt(CodeAddr addr) const;

    /** Function by IR id. */
    const FunctionInfo &function(ir::FuncId id) const;

    /** Read a 64-bit little-endian word from initialData. */
    uint64_t initialWord(uint64_t byte_addr) const;

    /** Write a 64-bit little-endian word into initialData. */
    void setInitialWord(uint64_t byte_addr, uint64_t value);

    /** Full disassembly (tests / debugging). */
    std::string disassembleAll() const;
};

} // namespace isa
} // namespace protean

#endif // PROTEAN_ISA_IMAGE_H
