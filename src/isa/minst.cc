#include "isa/minst.h"

#include "support/logging.h"

namespace protean {
namespace isa {

const char *
mopName(MOp op)
{
    switch (op) {
      case MOp::Const: return "const";
      case MOp::Mov: return "mov";
      case MOp::Add: return "add";
      case MOp::Sub: return "sub";
      case MOp::Mul: return "mul";
      case MOp::Div: return "div";
      case MOp::Mod: return "mod";
      case MOp::And: return "and";
      case MOp::Or: return "or";
      case MOp::Xor: return "xor";
      case MOp::Shl: return "shl";
      case MOp::Shr: return "shr";
      case MOp::CmpEq: return "cmpeq";
      case MOp::CmpNe: return "cmpne";
      case MOp::CmpLt: return "cmplt";
      case MOp::CmpLe: return "cmple";
      case MOp::Load: return "load";
      case MOp::Store: return "store";
      case MOp::Hint: return "hint.nta";
      case MOp::Jmp: return "jmp";
      case MOp::Bnz: return "bnz";
      case MOp::CallDirect: return "call";
      case MOp::CallIndirect: return "calli";
      case MOp::Ret: return "ret";
      case MOp::Halt: return "halt";
      case MOp::Nop: return "nop";
    }
    panic("mopName: bad opcode %d", static_cast<int>(op));
}

bool
MInst::isControlFlow() const
{
    switch (op) {
      case MOp::Jmp:
      case MOp::Bnz:
      case MOp::CallDirect:
      case MOp::CallIndirect:
      case MOp::Ret:
      case MOp::Halt:
        return true;
      default:
        return false;
    }
}

std::string
disassemble(const MInst &inst, CodeAddr addr)
{
    std::string s = strformat("%6u: %-8s", addr, mopName(inst.op));
    switch (inst.op) {
      case MOp::Const:
        s += strformat("r%u, %lld", inst.rd,
                       static_cast<long long>(inst.imm));
        break;
      case MOp::Mov:
        s += strformat("r%u, r%u", inst.rd, inst.rs1);
        break;
      case MOp::Load:
        s += strformat("r%u, [r%u%+lld]%s", inst.rd, inst.rs1,
                       static_cast<long long>(inst.imm),
                       inst.nonTemporal ? " !nt" : "");
        break;
      case MOp::Store:
        s += strformat("[r%u%+lld], r%u", inst.rs1,
                       static_cast<long long>(inst.imm), inst.rs2);
        break;
      case MOp::Hint:
        s += strformat("[r%u%+lld]", inst.rs1,
                       static_cast<long long>(inst.imm));
        break;
      case MOp::Jmp:
        s += strformat("%u", inst.target);
        break;
      case MOp::Bnz:
        s += strformat("r%u, %u", inst.rs1, inst.target);
        break;
      case MOp::CallDirect:
        s += strformat("%u", inst.target);
        break;
      case MOp::CallIndirect:
        s += strformat("evt[%u]", inst.evtSlot);
        break;
      case MOp::Ret:
      case MOp::Halt:
      case MOp::Nop:
        break;
      default:
        s += strformat("r%u, r%u, r%u", inst.rd, inst.rs1, inst.rs2);
        break;
    }
    return s;
}

} // namespace isa
} // namespace protean
