#include "isa/image.h"

#include "support/logging.h"

namespace protean {
namespace isa {

uint64_t
DataLayout::base(ir::GlobalId g) const
{
    if (g >= globalBase.size())
        panic("DataLayout: bad global %u", g);
    return globalBase[g];
}

CodeAddr
Image::entryPoint() const
{
    return function(entryFunc).entry;
}

const FunctionInfo *
Image::functionAt(CodeAddr addr) const
{
    for (const auto &fi : functions) {
        if (addr >= fi.entry && addr < fi.end)
            return &fi;
    }
    return nullptr;
}

const FunctionInfo &
Image::function(ir::FuncId id) const
{
    if (id >= functions.size())
        panic("Image %s: bad function id %u", name.c_str(), id);
    return functions[id];
}

uint64_t
Image::initialWord(uint64_t byte_addr) const
{
    if (byte_addr + 8 > initialData.size())
        panic("Image %s: initialWord at %llu out of range", name.c_str(),
              static_cast<unsigned long long>(byte_addr));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(initialData[byte_addr + i]) << (8 * i);
    return v;
}

void
Image::setInitialWord(uint64_t byte_addr, uint64_t value)
{
    if (byte_addr + 8 > initialData.size())
        panic("Image %s: setInitialWord at %llu out of range",
              name.c_str(),
              static_cast<unsigned long long>(byte_addr));
    for (int i = 0; i < 8; ++i)
        initialData[byte_addr + i] =
            static_cast<uint8_t>(value >> (8 * i));
}

std::string
Image::disassembleAll() const
{
    std::string out = strformat("image %s (%zu insts)\n", name.c_str(),
                                code.size());
    for (const auto &fi : functions) {
        out += strformat("%s:\n", fi.name.c_str());
        for (CodeAddr a = fi.entry; a < fi.end; ++a)
            out += disassemble(code[a], a) + "\n";
    }
    return out;
}

} // namespace isa
} // namespace protean
