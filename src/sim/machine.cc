#include "sim/machine.h"

#include "support/logging.h"

namespace protean {
namespace sim {

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), memsys_(std::make_unique<MemorySystem>(cfg))
{
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(c, cfg_, *memsys_));
}

Core &
Machine::core(uint32_t id)
{
    if (id >= cores_.size())
        panic("machine: bad core %u", id);
    return *cores_[id];
}

const Core &
Machine::core(uint32_t id) const
{
    if (id >= cores_.size())
        panic("machine: bad core %u", id);
    return *cores_[id];
}

Process &
Machine::load(const isa::Image &image, uint32_t core_id)
{
    Core &c = core(core_id);
    if (c.process() && c.process()->state() == ProcState::Running)
        fatal("machine: core %u already busy with %s", core_id,
              c.process()->name().c_str());
    auto proc = std::make_unique<Process>(
        static_cast<uint32_t>(procs_.size()), image);
    procs_.push_back(std::move(proc));
    c.syncIdleClock(now_);
    c.bind(procs_.back().get());
    return *procs_.back();
}

void
Machine::unload(uint32_t core_id)
{
    Core &c = core(core_id);
    if (c.process())
        c.process()->setState(ProcState::Halted);
    c.bind(nullptr);
}

Process &
Machine::process(uint32_t proc_id)
{
    if (proc_id >= procs_.size())
        panic("machine: bad process %u", proc_id);
    return *procs_[proc_id];
}

Core *
Machine::nextCore()
{
    Core *best = nullptr;
    for (auto &c : cores_) {
        if (c->runnable() && (!best || c->cycle() < best->cycle()))
            best = c.get();
    }
    return best;
}

void
Machine::run(uint64_t until_cycle)
{
    for (;;) {
        Core *c = nextCore();
        uint64_t core_t = c ? c->cycle() : UINT64_MAX;
        uint64_t event_t =
            events_.empty() ? UINT64_MAX : events_.top().cycle;

        uint64_t t = std::min(core_t, event_t);
        if (t >= until_cycle) {
            now_ = until_cycle;
            break;
        }

        if (event_t <= core_t) {
            // const_cast: priority_queue::top() is const but we must
            // move the callback out before popping.
            auto fn =
                std::move(const_cast<Event &>(events_.top()).fn);
            events_.pop();
            now_ = event_t;
            fn();
        } else {
            now_ = core_t;
            c->step();
        }
    }
}

void
Machine::runToCompletion(uint64_t max_cycles)
{
    uint64_t cap = now_ + max_cycles;
    while (!allHalted() && now_ < cap) {
        uint64_t chunk = std::min<uint64_t>(cap - now_, 1 << 20);
        run(now_ + chunk);
    }
    if (!allHalted())
        warn("runToCompletion: cycle cap reached before halt");
}

bool
Machine::allHalted() const
{
    for (const auto &c : cores_) {
        if (c->runnable())
            return false;
    }
    return true;
}

void
Machine::schedule(uint64_t cycle, std::function<void()> fn)
{
    if (cycle < now_)
        panic("machine: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(cycle),
              static_cast<unsigned long long>(now_));
    events_.push(Event{cycle, eventSeq_++, std::move(fn)});
}

} // namespace sim
} // namespace protean
