#include "sim/machine.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace protean {
namespace sim {

namespace {
Engine g_defaultEngine = Engine::Batch;
} // namespace

Engine
defaultEngine()
{
    return g_defaultEngine;
}

void
setDefaultEngine(Engine e)
{
    g_defaultEngine = e;
}

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), memsys_(std::make_unique<MemorySystem>(cfg)),
      engine_(g_defaultEngine)
{
    for (uint32_t c = 0; c < cfg.numCores; ++c)
        cores_.push_back(std::make_unique<Core>(c, cfg_, *memsys_));
    // This machine's clock stamps all trace events until it dies (or
    // a newer machine takes over; clocks stack, see obs::Tracer).
    obs::tracer().setClock([this] { return now_; }, this);
}

Machine::~Machine()
{
    obs::tracer().clearClock(this);
}

Core &
Machine::core(uint32_t id)
{
    if (id >= cores_.size())
        panic("machine: bad core %u", id);
    return *cores_[id];
}

const Core &
Machine::core(uint32_t id) const
{
    if (id >= cores_.size())
        panic("machine: bad core %u", id);
    return *cores_[id];
}

Process &
Machine::load(const isa::Image &image, uint32_t core_id)
{
    Core &c = core(core_id);
    if (c.process() && c.process()->state() == ProcState::Running)
        fatal("machine: core %u already busy with %s", core_id,
              c.process()->name().c_str());
    auto proc = std::make_unique<Process>(
        static_cast<uint32_t>(procs_.size()), image);
    procs_.push_back(std::move(proc));
    c.syncIdleClock(now_);
    c.bind(procs_.back().get());
    return *procs_.back();
}

void
Machine::unload(uint32_t core_id)
{
    Core &c = core(core_id);
    if (c.process())
        c.process()->setState(ProcState::Halted);
    c.bind(nullptr);
}

Process &
Machine::process(uint32_t proc_id)
{
    if (proc_id >= procs_.size())
        panic("machine: bad process %u", proc_id);
    return *procs_[proc_id];
}

Core *
Machine::nextCore()
{
    Core *best = nullptr;
    for (auto &c : cores_) {
        if (c->runnable() && (!best || c->cycle() < best->cycle()))
            best = c.get();
    }
    return best;
}

void
Machine::run(uint64_t until_cycle)
{
    if (engine_ == Engine::Step)
        runStep(until_cycle);
    else
        runBatch(until_cycle);
}

void
Machine::runStep(uint64_t until_cycle)
{
    for (;;) {
        Core *c = nextCore();
        uint64_t core_t = c ? c->cycle() : UINT64_MAX;
        uint64_t event_t =
            events_.empty() ? UINT64_MAX : events_.topCycle();

        uint64_t t = std::min(core_t, event_t);
        if (t >= until_cycle) {
            now_ = until_cycle;
            break;
        }

        if (event_t <= core_t) {
            EventHeap::Entry e = events_.pop();
            now_ = event_t;
            e.fn();
        } else {
            now_ = core_t;
            c->step();
        }
    }
}

void
Machine::runBatch(uint64_t until_cycle)
{
    for (;;) {
        // One scan finds both the scheduler's choice (min cycle,
        // lowest index on ties — exactly nextCore()) and the core
        // that would be chosen if `best` were absent, which bounds
        // how far `best` may run without changing the interleaving.
        Core *best = nullptr;
        Core *other = nullptr;
        for (auto &u : cores_) {
            Core *k = u.get();
            if (!k->runnable())
                continue;
            if (!best) {
                best = k;
            } else if (k->cycle() < best->cycle()) {
                other = best;
                best = k;
            } else if (!other || k->cycle() < other->cycle()) {
                other = k;
            }
        }

        uint64_t core_t = best ? best->cycle() : UINT64_MAX;
        uint64_t event_t =
            events_.empty() ? UINT64_MAX : events_.topCycle();

        uint64_t t = std::min(core_t, event_t);
        if (t >= until_cycle) {
            now_ = until_cycle;
            break;
        }

        if (event_t <= core_t) {
            EventHeap::Entry e = events_.pop();
            now_ = event_t;
            e.fn();
            continue;
        }

        // The window ends at the next event or the until-cycle (both
        // fire when the min core cycle reaches them: `t >= bound`).
        uint64_t horizon = std::min(event_t, until_cycle);
        now_ = core_t;
        if (!other) {
            // One runnable core owns the whole window.
            best->run(horizon);
            continue;
        }

        // Joint multi-core window. Cores interact only through the
        // shared memory system (L3 state, the DRAM queue) — never
        // through events (none fire inside the window) or throttles
        // (core-local). So run every runnable core up to the fence:
        // instructions that touch only core-local state and the
        // core's private process memory commute across cores, and
        // the per-core loop order is immaterial. Only when a core
        // parks at a shared-memsys access does the rest of the
        // window fall back to interleaved stepping — per window, not
        // per instruction.
        bool blocked = false;
        for (auto &u : cores_) {
            Core *k = u.get();
            if (k->runnable() && k->cycle() < horizon &&
                k->runFenced(horizon))
                blocked = true;
        }
        if (blocked)
            runWindowInterleaved(horizon);
    }
}

void
Machine::runWindowInterleaved(uint64_t horizon)
{
    // Pairwise-bounded batching: run the scheduler's choice until
    // another core would be chosen, preserving the exact (cycle, id)
    // step interleaving of shared-memsys accesses. This is the
    // pre-joint-window engine, now scoped to the remainder of a
    // window that a fenced core could not prove interference-free.
    for (;;) {
        // One scan finds both the scheduler's choice (min cycle,
        // lowest index on ties — exactly nextCore()) and the core
        // that would be chosen if `best` were absent, which bounds
        // how far `best` may run without changing the interleaving.
        Core *best = nullptr;
        Core *other = nullptr;
        for (auto &u : cores_) {
            Core *k = u.get();
            if (!k->runnable())
                continue;
            if (!best) {
                best = k;
            } else if (k->cycle() < best->cycle()) {
                other = best;
                best = k;
            } else if (!other || k->cycle() < other->cycle()) {
                other = k;
            }
        }
        if (!best || best->cycle() >= horizon)
            return;
        // best stays the scheduler's choice while its cycle is below
        // every other runnable core's — and, when it has the lower
        // index, also on ties (nextCore keeps the first minimum).
        uint64_t bound = horizon;
        if (other) {
            uint64_t b = other->cycle();
            if (best->id() < other->id())
                ++b; // best also wins the tie at bound
            bound = std::min(bound, b);
        }
        best->run(bound);
    }
}

void
Machine::runToCompletion(uint64_t max_cycles)
{
    uint64_t cap = now_ + max_cycles;
    while (!allHalted() && now_ < cap) {
        uint64_t chunk = std::min<uint64_t>(cap - now_, 1 << 20);
        run(now_ + chunk);
    }
    if (!allHalted())
        warn("runToCompletion: cycle cap reached before halt");
}

bool
Machine::allHalted() const
{
    for (const auto &c : cores_) {
        if (c->runnable())
            return false;
    }
    return true;
}

void
Machine::startObsSampling(double period_ms)
{
    if (obsSampling_)
        return;
    // Sampling only feeds the tracer; with it disabled, scheduling
    // per-period events would just churn the event heap for nothing.
    if (!obs::tracer().enabled())
        return;
    obsSampling_ = true;
    obsPeriod_ = std::max<uint64_t>(msToCycles(period_ms), 1);
    obsLast_.resize(cores_.size());
    obsLanes_.resize(cores_.size());
    for (size_t c = 0; c < cores_.size(); ++c) {
        obsLast_[c] = cores_[c]->hpm();
        obsLanes_[c] = strformat("sim.core%zu", c);
    }
    obsLastDram_ = memsys_->dramAccesses();
    scheduleAfter(obsPeriod_, [this] { obsSample(); });
}

void
Machine::obsSample()
{
    obs::Tracer &tr = obs::tracer();
    if (!tr.enabled()) {
        // Tracer turned off mid-run: stop sampling; a later
        // startObsSampling may arm it again.
        obsSampling_ = false;
        return;
    }
    for (size_t c = 0; c < cores_.size(); ++c) {
        HpmCounters delta = cores_[c]->hpm() - obsLast_[c];
        obsLast_[c] = cores_[c]->hpm();
        const std::string &lane = obsLanes_[c];
        tr.counter(lane, "ipc", delta.ipc());
        tr.counter(lane, "l3_misses",
                   static_cast<double>(delta.l3Misses));
        tr.counter(lane, "nap_share",
                   delta.cycles == 0 ? 0.0 :
                   static_cast<double>(delta.nappedCycles) /
                   static_cast<double>(delta.cycles));
    }
    uint64_t dram = memsys_->dramAccesses();
    tr.counter("sim.mem", "dram_accesses",
               static_cast<double>(dram - obsLastDram_));
    obsLastDram_ = dram;
    scheduleAfter(obsPeriod_, [this] { obsSample(); });
}

void
Machine::exportObsMetrics() const
{
    obs::MetricsRegistry &reg = obs::metrics();
    // Counters are monotonic; publish cumulative totals by topping
    // each one up to the live value, so repeated exports stay
    // idempotent.
    auto top_up = [&reg](const std::string &name, uint64_t total) {
        obs::Counter &c = reg.counter(name);
        c.inc(total - std::min(total, c.value()));
    };
    uint64_t l3_misses = 0;
    for (size_t c = 0; c < cores_.size(); ++c) {
        const HpmCounters &h = cores_[c]->hpm();
        std::string p = strformat("sim.core%zu.", c);
        top_up(p + "instructions", h.instructions);
        top_up(p + "cycles", h.cycles);
        top_up(p + "branches", h.branches);
        top_up(p + "l3.misses", h.l3Misses);
        top_up(p + "stolen_cycles", h.stolenCycles);
        top_up(p + "napped_cycles", h.nappedCycles);
        reg.gauge(p + "ipc").set(h.ipc());
        l3_misses += h.l3Misses;
    }
    top_up("sim.l3.misses", l3_misses);
    top_up("sim.dram.accesses", memsys_->dramAccesses());
}

void
Machine::schedule(uint64_t cycle, std::function<void()> fn)
{
    if (cycle < now_)
        panic("machine: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(cycle),
              static_cast<unsigned long long>(now_));
    events_.push(EventHeap::Entry{cycle, eventSeq_++, std::move(fn)});
}

} // namespace sim
} // namespace protean
