/**
 * @file
 * A simulated process: an executable image plus functional memory.
 *
 * The process owns a mutable copy of the image code array; the
 * protean runtime's code cache is realized by appending newly
 * compiled variants to it (the shared-mmap region of the paper's
 * Section III-B1). Each process occupies a disjoint physical address
 * window so co-running processes contend in the shared cache without
 * aliasing.
 */

#ifndef PROTEAN_SIM_PROCESS_H
#define PROTEAN_SIM_PROCESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/image.h"
#include "sim/memory.h"

namespace protean {
namespace sim {

/** Process lifecycle states. */
enum class ProcState : uint8_t { Running, Halted };

/** One simulated process. */
class Process
{
  public:
    /** Physical address stride between processes (1 TiB). */
    static constexpr uint64_t kPhysStride = 1ULL << 40;

    Process(uint32_t id, isa::Image image);

    uint32_t id() const { return id_; }
    const std::string &name() const { return image_.name; }

    const isa::Image &image() const { return image_; }

    /** Fetch an instruction; panics on a wild PC. */
    const isa::MInst &inst(isa::CodeAddr addr) const;

    /** Current code size (static image + appended variants). */
    isa::CodeAddr codeSize() const
    {
        return static_cast<isa::CodeAddr>(image_.code.size());
    }

    /**
     * Append a compiled variant to the code cache region.
     * @return The entry address of the appended code.
     */
    isa::CodeAddr appendCode(const std::vector<isa::MInst> &code);

    /** Patch one instruction in place (direct-call fixups). */
    void patchInst(isa::CodeAddr addr, const isa::MInst &inst);

    /**
     * Monotonic code-mutation epoch: bumped by every appendCode and
     * patchInst. Cores key their decoded superblock caches on it, so
     * a variant install (append + direct-call fixup) atomically
     * retires every stale decoded block before the next dispatch —
     * the OSR-style invalidation protocol (DESIGN.md §13).
     */
    uint64_t codeVersion() const { return codeVersion_; }

    /** Functional (untimed) word read — the ptrace analogue. */
    uint64_t readWord(uint64_t vaddr) const { return mem_.read(vaddr); }

    /** Functional word write — EVT updates, pokes from the runtime. */
    void writeWord(uint64_t vaddr, uint64_t v) { mem_.write(vaddr, v); }

    /** Physical address of a virtual address (for cache indexing). */
    uint64_t physAddr(uint64_t vaddr) const { return physBase_ + vaddr; }

    uint64_t physBase() const { return physBase_; }

    ProcState state() const { return state_; }
    void setState(ProcState s) { state_ = s; }

    /** Core this process is bound to (set by Machine::load). */
    uint32_t coreId() const { return coreId_; }
    void setCoreId(uint32_t c) { coreId_ = c; }

  private:
    uint32_t id_;
    isa::Image image_;
    PagedMemory mem_;
    uint64_t physBase_;
    ProcState state_ = ProcState::Running;
    uint32_t coreId_ = 0xffffffffu;
    uint64_t codeVersion_ = 0;
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_PROCESS_H
