#include "sim/memory.h"

#include "support/logging.h"

namespace protean {
namespace sim {

void
PagedMemory::checkAligned(uint64_t byte_addr)
{
    if (byte_addr % 8 != 0)
        panic("PagedMemory: unaligned access at %llu",
              static_cast<unsigned long long>(byte_addr));
}

uint64_t
PagedMemory::read(uint64_t byte_addr) const
{
    checkAligned(byte_addr);
    uint64_t word = byte_addr / 8;
    uint64_t page_no = word / kPageWords;
    if (page_no == cachedPageNo_)
        return (*cachedPage_)[word % kPageWords];
    auto it = pages_.find(page_no);
    if (it == pages_.end())
        return 0;
    cachedPageNo_ = page_no;
    cachedPage_ = it->second.get();
    return (*cachedPage_)[word % kPageWords];
}

void
PagedMemory::write(uint64_t byte_addr, uint64_t value)
{
    checkAligned(byte_addr);
    uint64_t word = byte_addr / 8;
    uint64_t page_no = word / kPageWords;
    if (page_no == cachedPageNo_) {
        (*cachedPage_)[word % kPageWords] = value;
        return;
    }
    auto &page = pages_[page_no];
    if (!page)
        page = std::make_unique<Page>(kPageWords, 0);
    cachedPageNo_ = page_no;
    cachedPage_ = page.get();
    (*page)[word % kPageWords] = value;
}

void
PagedMemory::loadImage(const std::vector<uint8_t> &bytes)
{
    for (uint64_t off = 0; off + 8 <= bytes.size(); off += 8) {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
        if (v != 0)
            write(off, v);
    }
    // A trailing partial word (images are word-aligned by the linker,
    // but be safe).
    uint64_t rem = bytes.size() % 8;
    if (rem != 0) {
        uint64_t off = bytes.size() - rem;
        uint64_t v = 0;
        for (uint64_t i = 0; i < rem; ++i)
            v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
        if (v != 0)
            write(off, v);
    }
}

} // namespace sim
} // namespace protean
