#include "sim/process.h"

#include "support/logging.h"

namespace protean {
namespace sim {

Process::Process(uint32_t id, isa::Image image)
    : id_(id), image_(std::move(image)),
      physBase_(static_cast<uint64_t>(id + 1) * kPhysStride)
{
    mem_.loadImage(image_.initialData);
}

const isa::MInst &
Process::inst(isa::CodeAddr addr) const
{
    if (addr >= image_.code.size())
        panic("process %s: wild pc %u (code size %zu)",
              name().c_str(), addr, image_.code.size());
    return image_.code[addr];
}

isa::CodeAddr
Process::appendCode(const std::vector<isa::MInst> &code)
{
    auto entry = static_cast<isa::CodeAddr>(image_.code.size());
    image_.code.insert(image_.code.end(), code.begin(), code.end());
    ++codeVersion_;
    return entry;
}

void
Process::patchInst(isa::CodeAddr addr, const isa::MInst &inst)
{
    if (addr >= image_.code.size())
        panic("process %s: patch at wild pc %u", name().c_str(), addr);
    image_.code[addr] = inst;
    ++codeVersion_;
}

} // namespace sim
} // namespace protean
