/**
 * @file
 * Hardware performance-monitor counters.
 *
 * Each simulated core exposes the counters the protean runtime's
 * monitoring layer samples: cycles, instructions, branches retired,
 * memory traffic at each level. Deltas between snapshots give the
 * IPS/BPS/miss-rate signals used for phase analysis and QoS
 * monitoring (paper Section III-B3).
 */

#ifndef PROTEAN_SIM_HPM_H
#define PROTEAN_SIM_HPM_H

#include <cstdint>

namespace protean {
namespace sim {

/** One core's counter file. */
struct HpmCounters
{
    uint64_t cycles = 0;
    uint64_t nappedCycles = 0;
    uint64_t instructions = 0;
    uint64_t branches = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t hints = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Accesses = 0;
    uint64_t l3Misses = 0;
    uint64_t dramAccesses = 0;
    /** Cycles consumed by injected runtime work (compiles etc.). */
    uint64_t stolenCycles = 0;

    HpmCounters operator-(const HpmCounters &o) const
    {
        HpmCounters d;
        d.cycles = cycles - o.cycles;
        d.nappedCycles = nappedCycles - o.nappedCycles;
        d.instructions = instructions - o.instructions;
        d.branches = branches - o.branches;
        d.loads = loads - o.loads;
        d.stores = stores - o.stores;
        d.hints = hints - o.hints;
        d.l1Misses = l1Misses - o.l1Misses;
        d.l2Misses = l2Misses - o.l2Misses;
        d.l3Accesses = l3Accesses - o.l3Accesses;
        d.l3Misses = l3Misses - o.l3Misses;
        d.dramAccesses = dramAccesses - o.dramAccesses;
        d.stolenCycles = stolenCycles - o.stolenCycles;
        return d;
    }

    /** Instructions per cycle over this (delta) window. */
    double ipc() const
    {
        return cycles == 0 ? 0.0 :
            static_cast<double>(instructions) /
            static_cast<double>(cycles);
    }

    /** Branches per cycle over this (delta) window. */
    double bpc() const
    {
        return cycles == 0 ? 0.0 :
            static_cast<double>(branches) / static_cast<double>(cycles);
    }
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_HPM_H
