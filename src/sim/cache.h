/**
 * @file
 * Set-associative cache model (timing/occupancy only).
 *
 * Caches track tags and recency; data values live in the functional
 * memory (sim/memory.h). The non-temporal insertion policy implements
 * the microarchitectural effect of prefetchnta-style hints: lines
 * filled on behalf of a non-temporal access are inserted at the LRU
 * position (or bypass the level entirely, per NtPolicy), so they
 * relinquish the level's capacity quickly instead of polluting it.
 */

#ifndef PROTEAN_SIM_CACHE_H
#define PROTEAN_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"

namespace protean {
namespace sim {

/** Cumulative per-cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t ntFills = 0;

    double missRate() const
    {
        return accesses == 0 ? 0.0 :
            static_cast<double>(misses) / static_cast<double>(accesses);
    }
};

/** One level of set-associative cache with LRU replacement. */
class Cache
{
  public:
    /**
     * @param name Stats label.
     * @param cfg Geometry; sizeBytes must be divisible by
     *            ways * lineBytes and the set count must be a power
     *            of two.
     */
    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Look up a line; updates recency on hit.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /**
     * Install a line after a miss.
     * @param nonTemporal Insert with the non-temporal policy.
     */
    void fill(uint64_t addr, bool nonTemporal);

    /** Probe without updating recency or stats (tests/occupancy). */
    bool contains(uint64_t addr) const;

    /** Number of resident lines whose address tag matches the given
     *  owner id in the upper address bits (occupancy accounting). */
    uint64_t linesOwnedBy(uint64_t owner_base, uint64_t owner_span) const;

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    const std::string &name() const { return name_; }
    uint32_t numSets() const { return sets_; }
    uint32_t numWays() const { return ways_; }
    uint32_t lineBytes() const { return lineBytes_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    std::string name_;
    uint32_t sets_;
    uint32_t ways_;
    uint32_t lineBytes_;
    uint32_t indexShift_;
    uint64_t useCounter_ = 1;
    std::vector<Line> lines_; // sets_ * ways_, set-major
    /** Per-set way of the last hit/fill: a pure lookup shortcut —
     *  temporal locality makes the next access to a set usually hit
     *  the same way, skipping the associative scan. Never consulted
     *  for replacement, so recency semantics are untouched. */
    std::vector<uint32_t> mruWay_;
    CacheStats stats_;

    uint64_t lineAddr(uint64_t addr) const;
    uint32_t setIndex(uint64_t line_addr) const;
    Line *findLine(uint64_t line_addr);
    const Line *findLine(uint64_t line_addr) const;
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_CACHE_H
