/**
 * @file
 * Memory-system timing: private L1/L2 per core, shared L3, DRAM
 * bandwidth model.
 *
 * The L3 is the contention surface the paper's PC3D targets: all
 * cores' fills compete for its capacity, and non-temporal accesses
 * from one core surrender that capacity to the others. DRAM is a
 * single channel with an occupancy-based queueing model so bandwidth
 * contention also manifests.
 */

#ifndef PROTEAN_SIM_MEMSYS_H
#define PROTEAN_SIM_MEMSYS_H

#include <memory>
#include <vector>

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/hpm.h"

namespace protean {
namespace sim {

/** Outcome of one timed access. */
struct AccessResult
{
    uint64_t latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    bool l3Hit = false;
    bool dram = false;
};

/** The timed memory hierarchy shared by all cores. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &cfg);

    /**
     * Perform one timed access.
     * @param core Issuing core index.
     * @param addr Physical byte address.
     * @param nonTemporal Fill L2/L3 with the NT policy.
     * @param now Issue time (for DRAM queueing).
     * @param hpm Counter file to charge.
     */
    AccessResult access(uint32_t core, uint64_t addr, bool nonTemporal,
                        uint64_t now, HpmCounters &hpm);

    /** Shared L3 (stats / occupancy inspection). */
    Cache &l3() { return *l3_; }
    const Cache &l3() const { return *l3_; }

    Cache &l1(uint32_t core) { return *l1_[core]; }
    Cache &l2(uint32_t core) { return *l2_[core]; }

    /** Total DRAM accesses issued so far (prefetches included). */
    uint64_t dramAccesses() const { return dramAccesses_; }

    /** Prefetch fills issued so far. */
    uint64_t prefetches() const { return prefetches_; }

    void resetStats();

  private:
    MachineConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;
    uint64_t dramNextFree_ = 0;
    uint64_t dramAccesses_ = 0;
    uint64_t prefetches_ = 0;

    /** Per-core stride detection: last accessed line and the length
     *  of the current sequential run. */
    std::vector<uint64_t> lastLine_;
    std::vector<uint32_t> seqRun_;

    void noteAccess(uint32_t core, uint64_t addr);
    bool streaming(uint32_t core) const;
    void prefetch(uint32_t core, uint64_t addr, bool nonTemporal);
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_MEMSYS_H
