#include "sim/core.h"

#include "sim/memsys.h"
#include "support/logging.h"

namespace protean {
namespace sim {

using isa::MInst;
using isa::MOp;

Core::Core(uint32_t id, const MachineConfig &cfg, MemorySystem &memsys)
    : id_(id), cfg_(cfg), memsys_(memsys)
{
}

void
Core::bind(Process *proc)
{
    proc_ = proc;
    regs_.fill(0);
    stack_.clear();
    btBlocks_.clear();
    sbCache_.clear();
    flipWatches_.clear();
    sbVersion_ = proc ? proc->codeVersion() : 0;
    if (proc_) {
        proc_->setCoreId(id_);
        pc_ = proc_->image().entryPoint();
        if (bt_.enabled) {
            // Entry block translation.
            btBlocks_.insert(pc_);
            cycle_ += bt_.translateCycles;
            hpm_.cycles += bt_.translateCycles;
        }
    }
}

bool
Core::runnable() const
{
    if (stolenBacklog_ > 0)
        return true;
    return proc_ && proc_->state() == ProcState::Running;
}

void
Core::syncIdleClock(uint64_t now)
{
    if (cycle_ < now)
        cycle_ = now;
}

void
Core::setNapIntensity(double f)
{
    if (f < 0.0 || f > 1.0)
        panic("nap intensity %g out of [0, 1]", f);
    napIntensity_ = f;
    refreshThrottleFlag();
}

void
Core::stealCycles(uint64_t cycles)
{
    stolenBacklog_ += cycles;
    refreshThrottleFlag();
}

void
Core::setBtConfig(const BtConfig &bt)
{
    bt_ = bt;
    btBlocks_.clear();
    if (bt_.enabled && proc_) {
        btBlocks_.insert(pc_);
        cycle_ += bt_.translateCycles;
        hpm_.cycles += bt_.translateCycles;
    }
}

bool
Core::consumeThrottles()
{
    // Runtime work charged to this core runs ahead of the host.
    if (stolenBacklog_ > 0) {
        cycle_ += stolenBacklog_;
        hpm_.cycles += stolenBacklog_;
        hpm_.stolenCycles += stolenBacklog_;
        stolenBacklog_ = 0;
        refreshThrottleFlag();
        return true;
    }
    // Nap: sleep for the first f of every period.
    if (napIntensity_ > 0.0) {
        uint64_t period = cfg_.napPeriodCycles;
        uint64_t pos = cycle_ % period;
        auto sleep_len = static_cast<uint64_t>(
            napIntensity_ * static_cast<double>(period));
        if (pos < sleep_len) {
            uint64_t delta = sleep_len - pos;
            cycle_ += delta;
            hpm_.cycles += delta;
            hpm_.nappedCycles += delta;
            return true;
        }
    }
    return false;
}

void
Core::step()
{
    if (consumeThrottles())
        return;
    if (!proc_ || proc_->state() != ProcState::Running)
        panic("core %u stepped without runnable work", id_);
    const MInst &inst = proc_->inst(pc_);
    execute(inst);
}

const Core::Superblock &
Core::fetchSuperblock()
{
    uint64_t v = proc_->codeVersion();
    if (v != sbVersion_) {
        // Code moved under us (variant append or call-site patch):
        // retire every decoded block before dispatching, so a flip
        // can never execute a stale instruction.
        sbStats_.invalidations += sbCache_.size();
        sbCache_.clear();
        sbVersion_ = v;
    }
    auto it = sbCache_.find(pc_);
    if (it != sbCache_.end()) {
        ++sbStats_.hits;
        return it->second;
    }
    ++sbStats_.misses;
    Superblock sb;
    isa::CodeAddr end = proc_->codeSize();
    for (isa::CodeAddr a = pc_; a < end; ++a) {
        const MInst &in = proc_->inst(a);
        sb.insts.push_back(in);
        if (in.isControlFlow() || sb.insts.size() >= kMaxSuperblockLen)
            break;
    }
    if (sb.insts.empty())
        proc_->inst(pc_); // canonical wild-pc panic
    sb.memFence = static_cast<uint32_t>(sb.insts.size());
    for (uint32_t i = 0; i < sb.insts.size(); ++i) {
        if (touchesMemsys(sb.insts[i].op)) {
            sb.memFence = i;
            break;
        }
    }
    return sbCache_.emplace(pc_, std::move(sb)).first->second;
}

void
Core::run(uint64_t horizon)
{
    // The hot loop of the batched engine: no scheduler scan, no
    // event-heap peek — just decoded superblocks until the horizon.
    // A block's instructions execute from a dense local array, so the
    // per-instruction work is one bounds-free dispatch. A consumed
    // throttle may overshoot the horizon, exactly as one step() can.
    while (cycle_ < horizon) {
        if (throttleActive_) {
            // Nap windows are re-checked before every instruction in
            // the reference engine, so an armed throttle keeps the
            // core on the per-instruction path.
            if (consumeThrottles())
                continue;
            if (!proc_ || proc_->state() != ProcState::Running)
                return;
            execute(proc_->inst(pc_));
            continue;
        }
        if (!proc_ || proc_->state() != ProcState::Running)
            return;
        const Superblock &sb = fetchSuperblock();
        const MInst *insts = sb.insts.data();
        const size_t n = sb.insts.size();
        for (size_t i = 0; i < n && cycle_ < horizon; ++i)
            execute(insts[i]);
    }
}

bool
Core::runFenced(uint64_t horizon)
{
    // Superblocks make the fence check cheap: each block records the
    // index of its first memsys-touching instruction, so proving a
    // whole block interference-free is one comparison.
    while (cycle_ < horizon) {
        if (throttleActive_) {
            if (consumeThrottles())
                continue;
            if (!proc_ || proc_->state() != ProcState::Running)
                return false;
            const MInst &in = proc_->inst(pc_);
            if (touchesMemsys(in.op))
                return true;
            execute(in);
            continue;
        }
        if (!proc_ || proc_->state() != ProcState::Running)
            return false;
        const Superblock &sb = fetchSuperblock();
        const MInst *insts = sb.insts.data();
        const size_t fence = sb.memFence;
        for (size_t i = 0; i < fence && cycle_ < horizon; ++i)
            execute(insts[i]);
        if (cycle_ >= horizon)
            return false;
        if (fence < sb.insts.size())
            return true; // parked at a shared-memsys access
    }
    return false;
}

uint64_t
Core::memAccess(uint64_t vaddr, bool nonTemporal)
{
    AccessResult res = memsys_.access(id_, proc_->physAddr(vaddr),
                                      nonTemporal, cycle_, hpm_);
    return res.latency;
}

void
Core::doCall(isa::CodeAddr target)
{
    Frame frame;
    frame.ret = pc_ + 1;
    for (uint32_t i = 0; i < kSavedRegs; ++i)
        frame.saved[i] = regs_[isa::kFirstGeneralReg + i];
    stack_.push_back(frame);
    transferTo(target, false);
}

void
Core::doRet()
{
    if (stack_.empty()) {
        halt();
        return;
    }
    Frame frame = stack_.back();
    stack_.pop_back();
    for (uint32_t i = 0; i < kSavedRegs; ++i)
        regs_[isa::kFirstGeneralReg + i] = frame.saved[i];
    transferTo(frame.ret, true);
}

void
Core::transferTo(isa::CodeAddr target, bool indirect)
{
    pc_ = target;
    if (!flipWatches_.empty())
        fireFlipWatches(target);
    if (bt_.enabled) {
        uint64_t extra = indirect ? bt_.indirectCycles
            : bt_.takenExtraCycles;
        if (btBlocks_.insert(target).second)
            extra += bt_.translateCycles;
        cycle_ += extra;
        hpm_.cycles += extra;
    }
}

void
Core::fireFlipWatches(isa::CodeAddr target)
{
    // Kept out of the transferTo fast path: watches exist only while
    // a dispatched flip has not yet taken effect. Watches fire in
    // arming order, deterministically, before the transfer's cycle
    // cost is charged — and cost nothing themselves.
    size_t kept = 0;
    for (size_t i = 0; i < flipWatches_.size(); ++i) {
        const FlipWatch &w = flipWatches_[i];
        if (target >= w.lo && target < w.hi) {
            if (flipHook_)
                flipHook_(w.id, target != w.entry, cycle_);
        } else {
            flipWatches_[kept++] = flipWatches_[i];
        }
    }
    flipWatches_.resize(kept);
}

void
Core::retargetFlipWatches(uint32_t func, isa::CodeAddr lo,
                          isa::CodeAddr hi, isa::CodeAddr entry)
{
    for (FlipWatch &w : flipWatches_) {
        if (w.func == func) {
            w.lo = lo;
            w.hi = hi;
            w.entry = entry;
        }
    }
}

void
Core::halt()
{
    proc_->setState(ProcState::Halted);
}

void
Core::execute(const MInst &inst)
{
    uint64_t cost = 1;
    ++hpm_.instructions;
    isa::CodeAddr next = pc_ + 1;
    bool transferred = false;

    auto &r = regs_;
    switch (inst.op) {
      case MOp::Const:
        r[inst.rd] = static_cast<uint64_t>(inst.imm);
        break;
      case MOp::Mov:
        r[inst.rd] = r[inst.rs1];
        break;
      case MOp::Add: r[inst.rd] = r[inst.rs1] + r[inst.rs2]; break;
      case MOp::Sub: r[inst.rd] = r[inst.rs1] - r[inst.rs2]; break;
      case MOp::Mul:
        r[inst.rd] = r[inst.rs1] * r[inst.rs2];
        cost = 3;
        break;
      case MOp::Div:
        r[inst.rd] = r[inst.rs2] == 0 ? 0 : r[inst.rs1] / r[inst.rs2];
        cost = 12;
        break;
      case MOp::Mod:
        r[inst.rd] = r[inst.rs2] == 0 ? r[inst.rs1]
            : r[inst.rs1] % r[inst.rs2];
        cost = 12;
        break;
      case MOp::And: r[inst.rd] = r[inst.rs1] & r[inst.rs2]; break;
      case MOp::Or: r[inst.rd] = r[inst.rs1] | r[inst.rs2]; break;
      case MOp::Xor: r[inst.rd] = r[inst.rs1] ^ r[inst.rs2]; break;
      case MOp::Shl:
        r[inst.rd] = r[inst.rs1] << (r[inst.rs2] & 63);
        break;
      case MOp::Shr:
        r[inst.rd] = r[inst.rs1] >> (r[inst.rs2] & 63);
        break;
      case MOp::CmpEq: r[inst.rd] = r[inst.rs1] == r[inst.rs2]; break;
      case MOp::CmpNe: r[inst.rd] = r[inst.rs1] != r[inst.rs2]; break;
      case MOp::CmpLt: r[inst.rd] = r[inst.rs1] < r[inst.rs2]; break;
      case MOp::CmpLe: r[inst.rd] = r[inst.rs1] <= r[inst.rs2]; break;
      case MOp::Load: {
        uint64_t vaddr = r[inst.rs1] + static_cast<uint64_t>(inst.imm);
        ++hpm_.loads;
        cost += memAccess(vaddr, inst.nonTemporal);
        r[inst.rd] = proc_->readWord(vaddr);
        break;
      }
      case MOp::Store: {
        uint64_t vaddr = r[inst.rs1] + static_cast<uint64_t>(inst.imm);
        ++hpm_.stores;
        // Stores retire through a write buffer: cache state is
        // updated but the core does not stall on the fill.
        memsys_.access(id_, proc_->physAddr(vaddr), inst.nonTemporal,
                       cycle_, hpm_);
        proc_->writeWord(vaddr, r[inst.rs2]);
        break;
      }
      case MOp::Hint:
        // The executed prefetchnta: costs its slot; the line's
        // insertion policy is carried by the following NT load.
        ++hpm_.hints;
        break;
      case MOp::Jmp:
        ++hpm_.branches;
        transferTo(inst.target, false);
        transferred = true;
        break;
      case MOp::Bnz:
        ++hpm_.branches;
        if (r[inst.rs1] != 0) {
            transferTo(inst.target, false);
            transferred = true;
        }
        break;
      case MOp::CallDirect:
        ++hpm_.branches;
        if (inst.target == isa::kInvalidCodeAddr)
            panic("core %u: unpatched direct call at %u", id_, pc_);
        doCall(inst.target);
        transferred = true;
        break;
      case MOp::CallIndirect: {
        ++hpm_.branches;
        uint64_t slot_addr = proc_->image().evtBase +
            8ULL * inst.evtSlot;
        // The EVT read is a real (cached) memory access; this is the
        // entire cost of edge virtualization.
        cost += memAccess(slot_addr, false);
        auto target =
            static_cast<isa::CodeAddr>(proc_->readWord(slot_addr));
        doCall(target);
        transferred = true;
        break;
      }
      case MOp::Ret:
        ++hpm_.branches;
        doRet();
        transferred = true;
        break;
      case MOp::Halt:
        halt();
        transferred = true;
        break;
      case MOp::Nop:
        break;
    }

    if (!transferred)
        pc_ = next;
    cycle_ += cost;
    hpm_.cycles += cost;
}

} // namespace sim
} // namespace protean
