/**
 * @file
 * The multicore machine: cores, shared memory system, processes and
 * an event calendar.
 *
 * Simulation is event-driven at instruction granularity: the core
 * with the smallest local clock steps next, so interleaving at the
 * shared L3 and DRAM is deterministic. Scheduled events (runtime
 * monitoring ticks, compile completions, load-trace changes) fire
 * between instructions at exact cycles.
 */

#ifndef PROTEAN_SIM_MACHINE_H
#define PROTEAN_SIM_MACHINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/image.h"
#include "sim/core.h"
#include "sim/event_heap.h"
#include "sim/memsys.h"
#include "sim/process.h"

namespace protean {
namespace sim {

/**
 * Execution engine selection.
 *
 * Step is the reference semantics: one global scheduling decision
 * (min-cycle core scan + event peek) per instruction. Batch runs
 * whole horizons of instructions — bounded by the next event and the
 * until-cycle — as joint multi-core windows: every runnable core
 * runs fenced at shared-memory accesses, falling back to interleaved
 * stepping only for windows where cores actually interact. This
 * amortizes the scheduling overhead without changing a single
 * observable cycle (DESIGN.md §8, §13).
 */
enum class Engine : uint8_t { Step, Batch };

/** Process-wide default engine for new machines (initially Batch). */
Engine defaultEngine();
void setDefaultEngine(Engine e);

/** The simulated server. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg = MachineConfig{});
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return cfg_; }

    uint32_t numCores() const
    {
        return static_cast<uint32_t>(cores_.size());
    }

    Core &core(uint32_t id);
    const Core &core(uint32_t id) const;

    MemorySystem &memsys() { return *memsys_; }

    /** Current global simulated time. */
    uint64_t now() const { return now_; }

    /** Select the execution engine (default: defaultEngine()). */
    void setEngine(Engine e) { engine_ = e; }
    Engine engine() const { return engine_; }

    /**
     * Create a process from an image and bind it to a core.
     * The core must currently be free.
     */
    Process &load(const isa::Image &image, uint32_t core_id);

    /** Unbind and discard a core's process. */
    void unload(uint32_t core_id);

    size_t numProcesses() const { return procs_.size(); }
    Process &process(uint32_t proc_id);

    /** Run until the global clock reaches until_cycle. */
    void run(uint64_t until_cycle);

    /** Run for a duration from now. */
    void runFor(uint64_t cycles) { run(now_ + cycles); }

    /** Run until every bound process halts (or until the cap). */
    void runToCompletion(uint64_t max_cycles = 1ULL << 40);

    /** True when no bound process is runnable. */
    bool allHalted() const;

    /** Schedule a callback at an absolute cycle (>= now). */
    void schedule(uint64_t cycle, std::function<void()> fn);

    /** Schedule a callback after a delay. */
    void scheduleAfter(uint64_t delay, std::function<void()> fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** Convert simulated milliseconds to cycles. */
    uint64_t msToCycles(double ms) const { return cfg_.msToCycles(ms); }

    /**
     * Begin periodic observability sampling: every period, per-core
     * HPM window deltas (IPC, L3 misses, nap share) land on the
     * tracer's `sim.core<N>` counter tracks and the shared memory
     * system's pressure on `sim.mem`. No-op when already sampling.
     */
    void startObsSampling(double period_ms);

    /**
     * Publish cumulative machine-level counters and gauges
     * (`sim.core<N>.*`, `sim.l3.misses`, `sim.dram.accesses`) into
     * the global metrics registry. Idempotent; call before export.
     */
    void exportObsMetrics() const;

  private:
    MachineConfig cfg_;
    std::unique_ptr<MemorySystem> memsys_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<Process>> procs_;
    EventHeap events_;
    uint64_t now_ = 0;
    uint64_t eventSeq_ = 0;
    Engine engine_;
    bool obsSampling_ = false;
    uint64_t obsPeriod_ = 0;
    std::vector<HpmCounters> obsLast_;
    uint64_t obsLastDram_ = 0;
    /** Precomputed "sim.core<N>" tracer lane names. */
    std::vector<std::string> obsLanes_;

    /** Runnable core with the smallest clock; null if none. */
    Core *nextCore();

    /** Reference engine: one scheduling decision per instruction. */
    void runStep(uint64_t until_cycle);

    /**
     * Horizon-batched engine (same observable behavior). Windows are
     * joint across cores: every runnable core runs fenced (stopping
     * before shared-memsys accesses, which commute-free instructions
     * never reach); only a window where some core parks at a shared
     * access falls back to runWindowInterleaved — per window, never
     * per instruction (DESIGN.md §13).
     */
    void runBatch(uint64_t until_cycle);

    /** Fallback for a window with shared-memsys interaction: pairwise
     *  (cycle, id)-bounded batching that reproduces the reference
     *  step interleaving exactly. */
    void runWindowInterleaved(uint64_t horizon);

    /** One observability sampling step (reschedules itself while the
     *  tracer stays enabled). */
    void obsSample();
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_MACHINE_H
