/**
 * @file
 * Movable binary min-heap for the machine's event calendar.
 *
 * std::priority_queue only exposes a const top(), which forced a
 * const_cast to move the callback out before popping. This heap is
 * the same O(log n) binary heap but pop() returns the entry by move,
 * so event callbacks (std::function, potentially with captured
 * state) never need to be copied or const_cast.
 *
 * Ordering is (cycle, seq): events at the same cycle fire in
 * scheduling order, which keeps the calendar deterministic.
 */

#ifndef PROTEAN_SIM_EVENT_HEAP_H
#define PROTEAN_SIM_EVENT_HEAP_H

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace protean {
namespace sim {

/** Min-heap of timed callbacks, ordered by (cycle, seq). */
class EventHeap
{
  public:
    struct Entry
    {
        uint64_t cycle = 0;
        uint64_t seq = 0;
        std::function<void()> fn;
    };

    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }

    /** Earliest entry; heap must be non-empty. */
    const Entry &top() const { return heap_.front(); }

    /** Cycle of the earliest entry; heap must be non-empty. */
    uint64_t topCycle() const { return heap_.front().cycle; }

    void push(Entry e)
    {
        heap_.push_back(std::move(e));
        siftUp(heap_.size() - 1);
    }

    /** Remove and return the earliest entry by move. */
    Entry pop()
    {
        Entry out = std::move(heap_.front());
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        return out;
    }

    void clear() { heap_.clear(); }

  private:
    static bool before(const Entry &a, const Entry &b)
    {
        return a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq;
    }

    void siftUp(size_t i)
    {
        while (i > 0) {
            size_t parent = (i - 1) / 2;
            if (!before(heap_[i], heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void siftDown(size_t i)
    {
        for (;;) {
            size_t l = 2 * i + 1;
            size_t r = l + 1;
            size_t best = i;
            if (l < heap_.size() && before(heap_[l], heap_[best]))
                best = l;
            if (r < heap_.size() && before(heap_[r], heap_[best]))
                best = r;
            if (best == i)
                break;
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
    }

    std::vector<Entry> heap_;
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_EVENT_HEAP_H
