/**
 * @file
 * Functional (value) memory.
 *
 * Values are held separately from cache timing state. PagedMemory is
 * a sparse word store: reads of untouched addresses return zero,
 * which the workload generators rely on for zero-initialized global
 * data. Addresses are byte addresses and must be 8-byte aligned —
 * the compiler only emits aligned word accesses.
 */

#ifndef PROTEAN_SIM_MEMORY_H
#define PROTEAN_SIM_MEMORY_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace protean {
namespace sim {

/** Sparse paged 64-bit word memory. */
class PagedMemory
{
  public:
    /** Read the word at an 8-byte-aligned byte address. */
    uint64_t read(uint64_t byte_addr) const;

    /** Write the word at an 8-byte-aligned byte address. */
    void write(uint64_t byte_addr, uint64_t value);

    /** Bulk-initialize from a byte image starting at address 0. */
    void loadImage(const std::vector<uint8_t> &bytes);

    /** Number of resident pages (tests). */
    size_t residentPages() const { return pages_.size(); }

  private:
    static constexpr uint64_t kPageWords = 512; // 4 KiB pages
    using Page = std::vector<uint64_t>;
    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    /** Last-touched page: consecutive accesses overwhelmingly hit
     *  the same page, skipping the hash lookup. Pages are never
     *  freed, so the cached pointer cannot dangle. */
    mutable uint64_t cachedPageNo_ = ~0ULL;
    mutable Page *cachedPage_ = nullptr;

    static void checkAligned(uint64_t byte_addr);
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_MEMORY_H
