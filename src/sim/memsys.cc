#include "sim/memsys.h"

#include "support/logging.h"

namespace protean {
namespace sim {

MemorySystem::MemorySystem(const MachineConfig &cfg)
    : cfg_(cfg)
{
    for (uint32_t c = 0; c < cfg.numCores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            strformat("l1.%u", c), cfg.l1));
        l2_.push_back(std::make_unique<Cache>(
            strformat("l2.%u", c), cfg.l2));
    }
    l3_ = std::make_unique<Cache>("l3", cfg.l3);
    lastLine_.assign(cfg.numCores, ~0ULL);
    seqRun_.assign(cfg.numCores, 0);
}

void
MemorySystem::noteAccess(uint32_t core, uint64_t addr)
{
    uint64_t line = addr / cfg_.l1.lineBytes;
    uint64_t last = lastLine_[core];
    if (line == last) {
        // Same line: no change to the run.
    } else if (line == last + 1) {
        ++seqRun_[core];
    } else {
        seqRun_[core] = 0;
    }
    lastLine_[core] = line;
}

bool
MemorySystem::streaming(uint32_t core) const
{
    return seqRun_[core] >= cfg_.prefetchMinRun;
}

AccessResult
MemorySystem::access(uint32_t core, uint64_t addr, bool nonTemporal,
                     uint64_t now, HpmCounters &hpm)
{
    if (core >= l1_.size())
        panic("MemorySystem: bad core %u", core);

    noteAccess(core, addr);

    AccessResult res;
    res.latency = cfg_.l1.latency;
    if (l1_[core]->access(addr)) {
        res.l1Hit = true;
        return res;
    }
    ++hpm.l1Misses;

    res.latency += cfg_.l2.latency;
    if (l2_[core]->access(addr)) {
        res.l2Hit = true;
        // L1 always fills normally: the hint targets shared levels.
        l1_[core]->fill(addr, false);
        return res;
    }
    ++hpm.l2Misses;

    res.latency += cfg_.l3.latency;
    ++hpm.l3Accesses;
    bool l3_hit = l3_->access(addr);
    if (!l3_hit) {
        ++hpm.l3Misses;
        ++hpm.dramAccesses;
        ++dramAccesses_;
        res.dram = true;
        uint64_t start = std::max(now, dramNextFree_);
        uint64_t queue = start - now;
        dramNextFree_ = start + cfg_.dramOccupancy;
        res.latency += queue + cfg_.dramLatency;
    } else {
        res.l3Hit = true;
    }

    bool nt = nonTemporal;
    bool bypass = nt && cfg_.ntPolicy == NtPolicy::Bypass;
    if (!l3_hit && !bypass)
        l3_->fill(addr, nt);
    if (!bypass)
        l2_[core]->fill(addr, nt);
    l1_[core]->fill(addr, false);

    if (!l3_hit && streaming(core))
        prefetch(core, addr, nt);
    return res;
}

void
MemorySystem::prefetch(uint32_t core, uint64_t addr, bool nonTemporal)
{
    // Next-line stride prefetches: background fills into L2/L3 that
    // consume DRAM bandwidth but never stall the core. They inherit
    // the demand access's non-temporal flag, as prefetchnta does.
    uint32_t line = cfg_.l3.lineBytes;
    // Under the bypass policy there is nowhere to put a non-temporal
    // prefetch, so none is issued (and no bandwidth is spent).
    if (nonTemporal && cfg_.ntPolicy == NtPolicy::Bypass)
        return;
    for (uint32_t i = 1; i <= cfg_.prefetchDegree; ++i) {
        uint64_t target = addr + static_cast<uint64_t>(i) * line;
        if (l2_[core]->contains(target) || l3_->contains(target))
            continue;
        dramNextFree_ += cfg_.dramOccupancy;
        ++dramAccesses_;
        l3_->fill(target, nonTemporal);
        l2_[core]->fill(target, nonTemporal);
        ++prefetches_;
    }
}

void
MemorySystem::resetStats()
{
    for (auto &c : l1_)
        c->resetStats();
    for (auto &c : l2_)
        c->resetStats();
    l3_->resetStats();
    dramAccesses_ = 0;
}

} // namespace sim
} // namespace protean
